#include "models/narm.h"

#include "tensor/init.h"
#include "tensor/ops.h"

namespace etude::models {

using tensor::Tensor;

Narm::Narm(const ModelConfig& config)
    : SessionModel(config),
      gru_(config_.embedding_dim, config_.embedding_dim, &rng_),
      attn_global_(config_.embedding_dim, config_.embedding_dim, false,
                   &rng_),
      attn_local_(config_.embedding_dim, config_.embedding_dim, false,
                  &rng_),
      attn_v_(tensor::XavierUniform({config_.embedding_dim}, &rng_)),
      head_(2 * config_.embedding_dim, config_.embedding_dim, false, &rng_) {}

Tensor Narm::EncodeSession(const std::vector<int64_t>& session) const {
  const Tensor embedded = tensor::Embedding(item_embeddings_, session);
  const Tensor states = gru_.RunSequence(embedded);  // [l, d]
  const int64_t l = states.dim(0), d = states.dim(1);
  const Tensor global = states.Row(l - 1);

  // Additive attention: alpha_j = v^T sigmoid(A1 h_l + A2 h_j).
  const Tensor proj_global = attn_global_.ForwardVector(global);  // [d]
  const Tensor proj_states = attn_local_.Forward(states);         // [l, d]
  const bool fused = tensor::exec::JitDispatchEnabled();
  Tensor local({d});
  for (int64_t j = 0; j < l; ++j) {
    // JIT dispatch fuses the gate's Sigmoid(Add(...)) chain into one
    // kernel (bit-identical; proved safe by the fusion-legality pass).
    const Tensor gate =
        fused ? tensor::AddSigmoid(proj_global, proj_states.Row(j))
              : tensor::Sigmoid(
                    tensor::Add(proj_global, proj_states.Row(j)));
    const float alpha = tensor::Dot(attn_v_, gate);
    for (int64_t i = 0; i < d; ++i) local[i] += alpha * states.at(j, i);
  }
  return head_.ForwardVector(tensor::Concat(global, local));
}

tensor::SymTensor Narm::TraceEncode(tensor::ShapeChecker& checker,
                                    ExecutionMode mode) const {
  namespace sym = tensor::sym;
  const bool fused = mode == ExecutionMode::kJit;
  const tensor::SymTensor embedded =
      checker.Embedding(TraceEmbeddingTable(checker), sym::L());
  const tensor::SymTensor states =
      trace::Gru(checker, embedded, sym::d(), sym::d());  // [L, d]
  const tensor::SymTensor global = checker.Row(states);   // [d]
  // Additive attention: alpha_j = v^T sigmoid(A1 h_l + A2 h_j), with the
  // alpha-weighted sum of states accumulated into a preallocated [d]
  // vector by a manual loop (no tensor op dispatched for the weighted
  // sum itself).
  const tensor::SymTensor proj_global = trace::DenseVector(
      checker, global, sym::d(), sym::d(), /*bias=*/false);
  const tensor::SymTensor proj_states =
      trace::Dense(checker, states, sym::d(), sym::d(), /*bias=*/false);
  const tensor::SymTensor attn_v = checker.Input("narm.attn_v", {sym::d()});
  const tensor::SymTensor local =
      checker.Materialize("narm.local", {sym::d()}, {});
  checker.BeginRepeat(sym::L());
  const tensor::SymTensor gate =
      fused ? checker.AddSigmoid(proj_global, checker.Row(proj_states))
            : checker.Sigmoid(
                  checker.Add(proj_global, checker.Row(proj_states)));
  const tensor::SymTensor alpha = checker.Dot(attn_v, gate);
  checker.EndRepeat();
  checker.Link(local, alpha);
  checker.Link(local, states);
  return trace::DenseVector(checker, checker.Concat(global, local),
                            sym::d() * 2, sym::d(), /*bias=*/false);
}

int64_t Narm::OpCount(int64_t l) const {
  (void)l;
  // Fused GRU + vectorised additive attention + projection head.
  return 22;
}

}  // namespace etude::models

#include "models/plan_report.h"

#include <cstdio>

#include "models/model_factory.h"
#include "tensor/plan_analysis.h"
#include "tensor/plan_exec.h"
#include "tensor/plan_ir.h"

namespace etude::models {

namespace {

JsonValue ModeReport(const SessionModel& model, ExecutionMode mode) {
  const tensor::PlanGraph plan = model.BuildPlan(mode);
  const tensor::CostSummary cost = tensor::AnalyzeCost(plan);
  const tensor::Bindings bindings =
      model.PlanBindings(kPlanReportSessionLength);
  const tensor::LivenessResult liveness =
      tensor::AnalyzeLiveness(plan, bindings);

  JsonValue cell = JsonValue::MakeObject();
  cell.Set("op_count", JsonValue(static_cast<int64_t>(cost.op_count)));
  cell.Set("flops_poly", JsonValue(cost.total_flops.ToString()));
  cell.Set("encode_flops_poly", JsonValue(cost.encode_flops.ToString()));
  cell.Set("score_flops_poly", JsonValue(cost.score_flops.ToString()));
  cell.Set("traffic_poly",
           JsonValue((cost.encode_traffic_bytes + cost.score_traffic_bytes)
                         .ToString()));
  cell.Set("peak_memory_poly", JsonValue(liveness.peak_poly.ToString()));
  cell.Set("flops_at_reference",
           JsonValue(cost.total_flops.Eval(bindings)));
  cell.Set("peak_memory_at_reference", JsonValue(liveness.peak_bytes));
  // The compiled execution plan at the reference point: the exact arena
  // footprint its offset assignment needs, the symbolic bound it stays
  // under, and the fusion/CSE findings of the legality passes.
  const tensor::ExecutionPlan exec =
      tensor::CompileExecutionPlan(plan, bindings);
  cell.Set("arena_bytes", JsonValue(exec.arena.arena_bytes));
  cell.Set("arena_bound_poly", JsonValue(exec.arena_bound_poly.ToString()));
  cell.Set("fusion_groups",
           JsonValue(static_cast<int64_t>(exec.fusion_groups.size())));
  cell.Set("cse_duplicates",
           JsonValue(static_cast<int64_t>(exec.cse.size())));
  // Batched columns (schema 3): the batched-encode plan's cost split —
  // which traffic amortizes across a batch (weight streaming) and which
  // scales per session (the MIPS scan) — plus the compiled batched arena
  // at the reference batch size B = 16.
  const tensor::PlanGraph batched = model.BuildBatchedPlan(mode);
  const tensor::BatchedCostSummary batched_cost =
      tensor::AnalyzeBatchedCost(batched);
  cell.Set("batched_flops_poly",
           JsonValue(batched_cost.total_flops.ToString()));
  cell.Set("batched_amortized_traffic_poly",
           JsonValue(batched_cost.amortized_bytes.ToString()));
  cell.Set("batched_marginal_traffic_poly",
           JsonValue((batched_cost.marginal_encode_bytes +
                      batched_cost.marginal_score_bytes)
                         .ToString()));
  tensor::Bindings batched_bindings = bindings;
  batched_bindings["B"] = 16.0;
  const tensor::ExecutionPlan batched_exec =
      tensor::CompileExecutionPlan(batched, batched_bindings);
  cell.Set("batched_arena_bytes_b16",
           JsonValue(batched_exec.arena.arena_bytes));
  cell.Set("batched_arena_bound_poly",
           JsonValue(batched_exec.arena_bound_poly.ToString()));
  JsonValue diags = JsonValue::MakeArray();
  for (const tensor::PlanDiagnostic& diag : tensor::AnalyzePlan(plan)) {
    diags.Append(JsonValue(diag.ToString()));
  }
  cell.Set("diagnostics", std::move(diags));
  return cell;
}

}  // namespace

ModelConfig PlanReportConfig() {
  ModelConfig config;
  config.catalog_size = 1'000'000;
  config.embedding_dim = 0;  // heuristic: d = ceil(C^(1/4)) = 32
  config.top_k = 21;
  config.max_session_length = kPlanReportSessionLength;
  config.materialize_embeddings = false;  // cost-only: no [C, d] alloc
  return config;
}

JsonValue PlanReportJson() {
  const ModelConfig config = PlanReportConfig();
  JsonValue root = JsonValue::MakeObject();
  // Schema 3: adds the batched columns (batched_flops_poly, the
  // amortized/marginal traffic split, and the compiled B=16 arena) per
  // mode cell. Schema 2 added the execution-plan columns (arena_bytes,
  // arena_bound_poly, fusion_groups, cse_duplicates).
  root.Set("schema", JsonValue(static_cast<int64_t>(3)));

  JsonValue ref = JsonValue::MakeObject();
  ref.Set("catalog_size", JsonValue(config.catalog_size));
  ref.Set("embedding_dim",
          JsonValue(HeuristicEmbeddingDim(config.catalog_size)));
  ref.Set("top_k", JsonValue(config.top_k));
  ref.Set("max_session_length", JsonValue(config.max_session_length));
  ref.Set("session_length", JsonValue(kPlanReportSessionLength));
  root.Set("reference", std::move(ref));

  JsonValue models = JsonValue::MakeObject();
  for (const ModelKind kind : AllModelKinds()) {
    auto model = CreateModel(kind, config);
    ETUDE_CHECK(model.ok()) << model.status().ToString();
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("jit_compatible", JsonValue((*model)->jit_compatible()));
    entry.Set("jit_incompatibility_reason",
              JsonValue((*model)->jit_incompatibility_reason()));
    JsonValue modes = JsonValue::MakeObject();
    modes.Set("eager", ModeReport(**model, ExecutionMode::kEager));
    modes.Set("jit", ModeReport(**model, ExecutionMode::kJit));
    entry.Set("modes", std::move(modes));
    models.Set(std::string((*model)->name()), std::move(entry));
  }
  root.Set("models", std::move(models));
  return root;
}

std::string PlanReportText() {
  const JsonValue report = PlanReportJson();
  const JsonValue& ref = report.Get("reference");
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line),
                "plan report at C=%lld d=%lld k=%lld L=%lld\n\n",
                static_cast<long long>(ref.GetIntOr("catalog_size", 0)),
                static_cast<long long>(ref.GetIntOr("embedding_dim", 0)),
                static_cast<long long>(ref.GetIntOr("top_k", 0)),
                static_cast<long long>(ref.GetIntOr("session_length", 0)));
  out += line;
  std::snprintf(line, sizeof(line),
                "%-10s %-6s %4s %14s %12s %12s %6s %4s  %s\n", "model",
                "mode", "ops", "static FLOPs", "peak bytes", "arena bytes",
                "fusion", "cse", "peak-memory polynomial");
  out += line;
  for (const auto& [name, entry] : report.Get("models").members()) {
    for (const char* mode : {"eager", "jit"}) {
      const JsonValue& cell = entry.Get("modes").Get(mode);
      std::snprintf(line, sizeof(line),
                    "%-10s %-6s %4lld %14.6g %12.6g %12lld %6lld %4lld  %s\n",
                    name.c_str(), mode,
                    static_cast<long long>(cell.GetIntOr("op_count", 0)),
                    cell.GetNumberOr("flops_at_reference", 0.0),
                    cell.GetNumberOr("peak_memory_at_reference", 0.0),
                    static_cast<long long>(cell.GetIntOr("arena_bytes", 0)),
                    static_cast<long long>(cell.GetIntOr("fusion_groups", 0)),
                    static_cast<long long>(cell.GetIntOr("cse_duplicates", 0)),
                    cell.GetStringOr("peak_memory_poly", "").c_str());
      out += line;
    }
  }
  out += "\nFLOP polynomials:\n";
  for (const auto& [name, entry] : report.Get("models").members()) {
    const JsonValue& cell = entry.Get("modes").Get("eager");
    out += "  " + name + ": " + cell.GetStringOr("flops_poly", "") + "\n";
  }
  out += "\nbatched traffic split (amortized | per-session):\n";
  for (const auto& [name, entry] : report.Get("models").members()) {
    const JsonValue& cell = entry.Get("modes").Get("eager");
    out += "  " + name + ": " +
           cell.GetStringOr("batched_amortized_traffic_poly", "") + " | " +
           cell.GetStringOr("batched_marginal_traffic_poly", "") + "\n";
  }
  out += "\ndiagnostics:\n";
  bool any = false;
  for (const auto& [name, entry] : report.Get("models").members()) {
    const std::string reason =
        entry.GetStringOr("jit_incompatibility_reason", "");
    if (!reason.empty()) {
      out += "  " + name + ": jit fallback: " + reason + "\n";
      any = true;
    }
    for (const JsonValue& diag :
         entry.Get("modes").Get("eager").Get("diagnostics").items()) {
      out += "  " + name + ": " + diag.as_string() + "\n";
      any = true;
    }
  }
  if (!any) out += "  (none)\n";
  return out;
}

namespace {

void DiffValues(const JsonValue& golden, const JsonValue& current,
                const std::string& path, std::vector<std::string>* out) {
  if (golden.type() != current.type()) {
    out->push_back(path + ": value kinds differ");
    return;
  }
  switch (golden.type()) {
    case JsonValue::Type::kObject: {
      for (const auto& [key, value] : golden.members()) {
        const std::string child = path + "/" + key;
        if (!current.Contains(key)) {
          out->push_back(child + ": missing from current report");
        } else {
          DiffValues(value, current.Get(key), child, out);
        }
      }
      for (const auto& [key, value] : current.members()) {
        if (!golden.Contains(key)) {
          out->push_back(path + "/" + key + ": missing from golden report");
        }
      }
      break;
    }
    case JsonValue::Type::kArray: {
      if (golden.items().size() != current.items().size()) {
        out->push_back(path + ": " + std::to_string(golden.items().size()) +
                       " vs " + std::to_string(current.items().size()) +
                       " entries");
        break;
      }
      for (size_t i = 0; i < golden.items().size(); ++i) {
        DiffValues(golden.items()[i], current.items()[i],
                   path + "[" + std::to_string(i) + "]", out);
      }
      break;
    }
    default:
      if (golden.Dump() != current.Dump()) {
        out->push_back(path + ": " + golden.Dump() + " -> " + current.Dump());
      }
  }
}

}  // namespace

std::vector<std::string> DiffPlanReports(const JsonValue& golden,
                                         const JsonValue& current) {
  std::vector<std::string> diffs;
  DiffValues(golden, current, "", &diffs);
  return diffs;
}

}  // namespace etude::models

#include "models/gc_san.h"

#include "models/session_graph.h"
#include "tensor/ops.h"

namespace etude::models {

using tensor::Tensor;

GcSan::GcSan(const ModelConfig& config) : SrGnn(config) {
  blocks_.reserve(kAttentionLayers);
  for (int i = 0; i < kAttentionLayers; ++i) {
    blocks_.emplace_back(config_.embedding_dim, 4 * config_.embedding_dim,
                         &rng_);
  }
}

Tensor GcSan::EncodeSession(const std::vector<int64_t>& session) const {
  const SessionGraph graph = SessionGraph::Build(session);
  const Tensor node_states = EncodeGraph(graph);
  const int64_t l = static_cast<int64_t>(session.size());
  const int64_t d = config_.embedding_dim;

  // Map node states back onto the click sequence.
  Tensor sequence({l, d});
  for (int64_t t = 0; t < l; ++t) {
    const int64_t node = graph.alias[static_cast<size_t>(t)];
    for (int64_t j = 0; j < d; ++j) {
      sequence.at(t, j) = node_states.at(node, j);
    }
  }
  // Feed the first block straight from the gathered sequence: a seeding
  // copy (`Tensor attended = sequence`) would be an allocation the
  // symbolic trace never records, desynchronising the arena script.
  Tensor attended = blocks_.front().Forward(sequence);
  for (size_t i = 1; i < blocks_.size(); ++i) {
    attended = blocks_[i].Forward(attended);
  }
  const Tensor attn_last = attended.Row(l - 1);
  const Tensor gnn_last = sequence.Row(l - 1);
  // Blend self-attention output with the GNN representation.
  return tensor::Add(tensor::Scale(attn_last, kBlend),
                     tensor::Scale(gnn_last, 1.0f - kBlend));
}

tensor::SymTensor GcSan::TraceEncode(tensor::ShapeChecker& checker,
                                     ExecutionMode mode) const {
  namespace sym = tensor::sym;
  const bool fused = mode == ExecutionMode::kJit;
  const tensor::SymTensor node_states = TraceGraphEncode(checker);  // [n, d]
  // A manual gather of the alias rows maps the node states back onto the
  // click sequence, [n, d] -> [L, d] (allocates, dispatches no op).
  const tensor::SymTensor sequence = checker.Materialize(
      "gcsan.sequence", {sym::L(), sym::d()}, {&node_states});
  tensor::SymTensor attended = sequence;
  for (int i = 0; i < kAttentionLayers; ++i) {
    checker.SetContext(std::string(name()) + " block " + std::to_string(i));
    attended =
        trace::Transformer(checker, attended, sym::d(), sym::d() * 4, fused);
  }
  checker.SetContext(std::string(name()) + " encoder");
  const tensor::SymTensor attn_last = checker.Row(attended);
  const tensor::SymTensor gnn_last = checker.Row(sequence);
  return checker.Add(checker.Scale(attn_last), checker.Scale(gnn_last));
}

int64_t GcSan::OpCount(int64_t l) const {
  return SrGnn::OpCount(l) + kAttentionLayers * 14 + 3;
}

}  // namespace etude::models

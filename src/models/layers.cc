#include "models/layers.h"

#include "tensor/init.h"
#include "tensor/ops.h"

namespace etude::models {

using tensor::Tensor;

GruLayer::GruLayer(int64_t input_dim, int64_t hidden_dim, Rng* rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      w_ih_(tensor::XavierUniform({3 * hidden_dim, input_dim}, rng)),
      w_hh_(tensor::XavierUniform({3 * hidden_dim, hidden_dim}, rng)),
      b_ih_(Tensor({3 * hidden_dim})),
      b_hh_(Tensor({3 * hidden_dim})) {}

Tensor GruLayer::RunSequence(const Tensor& inputs) const {
  ETUDE_CHECK(inputs.rank() == 2 && inputs.dim(1) == input_dim_)
      << "GRU input shape mismatch";
  const int64_t l = inputs.dim(0);
  Tensor states({l, hidden_dim_});
  Tensor hidden({hidden_dim_});
  for (int64_t t = 0; t < l; ++t) {
    hidden = tensor::GruCell(inputs.Row(t), hidden, w_ih_, w_hh_, b_ih_,
                             b_hh_);
    for (int64_t j = 0; j < hidden_dim_; ++j) states.at(t, j) = hidden[j];
  }
  return states;
}

DenseLayer::DenseLayer(int64_t input_dim, int64_t output_dim, bool bias,
                       Rng* rng)
    : weight_(tensor::XavierUniform({output_dim, input_dim}, rng)),
      bias_(bias ? Tensor({output_dim}) : Tensor()) {}

Tensor DenseLayer::Forward(const Tensor& x) const {
  return tensor::Linear(x, weight_, bias_);
}

Tensor DenseLayer::ForwardVector(const Tensor& x) const {
  ETUDE_CHECK(x.rank() == 1) << "ForwardVector requires rank 1";
  const Tensor out =
      tensor::Linear(x.Reshaped({1, x.dim(0)}), weight_, bias_);
  return out.Reshaped({out.dim(1)});
}

TransformerBlock::TransformerBlock(int64_t dim, int64_t ffn_dim, Rng* rng)
    : wq_(dim, dim, /*bias=*/true, rng),
      wk_(dim, dim, /*bias=*/true, rng),
      wv_(dim, dim, /*bias=*/true, rng),
      wo_(dim, dim, /*bias=*/true, rng),
      ffn1_(dim, ffn_dim, /*bias=*/true, rng),
      ffn2_(ffn_dim, dim, /*bias=*/true, rng),
      norm1_gain_({dim}),
      norm1_bias_({dim}),
      norm2_gain_({dim}),
      norm2_bias_({dim}) {
  norm1_gain_.Fill(1.0f);
  norm2_gain_.Fill(1.0f);
}

Tensor TransformerBlock::Forward(const Tensor& x) const {
  const Tensor q = wq_.Forward(x);
  const Tensor k = wk_.Forward(x);
  const Tensor v = wv_.Forward(x);
  const Tensor attended =
      wo_.Forward(tensor::ScaledDotProductAttention(q, k, v));
  // Under JIT dispatch both residual joins run the fused AddLayerNorm
  // kernel the fusion-legality pass proved safe: bit-identical output,
  // one dispatch and no materialised Add intermediate.
  if (tensor::exec::JitDispatchEnabled()) {
    const Tensor h =
        tensor::AddLayerNorm(x, attended, norm1_gain_, norm1_bias_);
    const Tensor ffn = ffn2_.Forward(tensor::Gelu(ffn1_.Forward(h)));
    return tensor::AddLayerNorm(h, ffn, norm2_gain_, norm2_bias_);
  }
  const Tensor h = tensor::LayerNorm(tensor::Add(x, attended), norm1_gain_,
                                     norm1_bias_);
  const Tensor ffn = ffn2_.Forward(tensor::Gelu(ffn1_.Forward(h)));
  return tensor::LayerNorm(tensor::Add(h, ffn), norm2_gain_, norm2_bias_);
}

PositionalEmbedding::PositionalEmbedding(int64_t max_length, int64_t dim,
                                         Rng* rng)
    : table_(tensor::RandomNormal({max_length, dim}, 0.02f, rng)) {}

Tensor PositionalEmbedding::AddTo(const Tensor& x) const {
  ETUDE_CHECK(x.rank() == 2 && x.dim(1) == table_.dim(1))
      << "positional embedding width mismatch";
  ETUDE_CHECK(x.dim(0) <= table_.dim(0))
      << "session longer than positional table";
  const int64_t l = x.dim(0), d = x.dim(1);
  Tensor out(x.shape());
  for (int64_t t = 0; t < l; ++t) {
    for (int64_t j = 0; j < d; ++j) {
      out.at(t, j) = x.at(t, j) + table_.at(t, j);
    }
  }
  return out;
}

namespace trace {

using tensor::ShapeChecker;
using tensor::SymDim;
using tensor::SymTensor;

SymTensor Dense(ShapeChecker& checker, const SymTensor& x, const SymDim& in,
                const SymDim& out, bool bias) {
  const SymTensor weight = checker.Input("dense.weight", {out, in});
  const SymTensor bias_vec =
      bias ? checker.Input("dense.bias", {out}) : SymTensor{{}, true};
  return checker.Linear(x, weight, bias_vec);
}

SymTensor DenseVector(ShapeChecker& checker, const SymTensor& x,
                      const SymDim& in, const SymDim& out, bool bias) {
  // ForwardVector reshapes [in] -> [1, in], applies Linear, and flattens
  // the [1, out] result.
  const SymTensor widened = checker.Reshape(x, {1, in});
  const SymTensor result = Dense(checker, widened, in, out, bias);
  return checker.Reshape(result, {out});
}

SymTensor Gru(ShapeChecker& checker, const SymTensor& inputs,
              const SymDim& in, const SymDim& hidden) {
  if (!inputs.valid) return tensor::SymTensor::Invalid();
  const SymDim three_h = hidden * 3;
  const SymTensor w_ih = checker.Input("gru.w_ih", {three_h, in});
  const SymTensor w_hh = checker.Input("gru.w_hh", {three_h, hidden});
  const SymTensor b_ih = checker.Input("gru.b_ih", {three_h});
  const SymTensor b_hh = checker.Input("gru.b_hh", {three_h});
  // RunSequence preallocates the [len, hidden] state stack and the zero
  // initial hidden state, then dispatches one GruCell per step. The step
  // shapes are loop-invariant, so one symbolic step under a repeat of
  // `len` covers every length.
  checker.PushScope();
  const SymTensor states =
      checker.Materialize("gru.states", {inputs.shape[0], hidden}, {});
  const SymTensor h0 = checker.Materialize("gru.h0", {hidden}, {});
  checker.BeginRepeat(inputs.shape[0]);
  const SymTensor step_input = checker.Row(inputs);  // [in]
  const SymTensor next =
      checker.GruCell(step_input, h0, w_ih, w_hh, b_ih, b_hh);
  checker.EndRepeat();
  // Each step's hidden state is written into the preallocated stack.
  checker.Link(states, next);
  checker.PopScope();
  if (!next.valid) return tensor::SymTensor::Invalid();
  return states;
}

SymTensor Transformer(ShapeChecker& checker, const SymTensor& x,
                      const SymDim& dim, const SymDim& ffn_dim, bool fused) {
  // Forward's locals (q, k, v, the attended/ffn activations) live until
  // the block returns — the scope mirrors that for the liveness pass.
  checker.PushScope();
  const SymTensor q = Dense(checker, x, dim, dim, /*bias=*/true);
  const SymTensor k = Dense(checker, x, dim, dim, /*bias=*/true);
  const SymTensor v = Dense(checker, x, dim, dim, /*bias=*/true);
  const SymTensor attended =
      Dense(checker, checker.Attention(q, k, v), dim, dim, /*bias=*/true);
  const SymTensor norm_gain = checker.Input("block.norm_gain", {dim});
  const SymTensor norm_bias = checker.Input("block.norm_bias", {dim});
  // The fused trace mirrors the JIT-dispatch runtime path exactly, so the
  // compiled arena script lines up with the kernels Forward dispatches.
  const SymTensor h =
      fused ? checker.AddLayerNorm(x, attended, norm_gain, norm_bias)
            : checker.LayerNorm(checker.Add(x, attended), norm_gain,
                                norm_bias);
  const SymTensor ffn = Dense(
      checker, checker.Gelu(Dense(checker, h, dim, ffn_dim, /*bias=*/true)),
      ffn_dim, dim, /*bias=*/true);
  const SymTensor out =
      fused ? checker.AddLayerNorm(h, ffn, norm_gain, norm_bias)
            : checker.LayerNorm(checker.Add(h, ffn), norm_gain, norm_bias);
  checker.PopScope();
  return out;
}

SymTensor PositionalAdd(ShapeChecker& checker, const SymTensor& x,
                        const SymDim& dim) {
  if (!x.valid) return tensor::SymTensor::Invalid();
  if (x.rank() != 2) {
    checker.Require(x, {tensor::sym::L(), dim}, "PositionalEmbedding input");
    return tensor::SymTensor::Invalid();
  }
  // AddTo is a manual element loop over the first len rows of the
  // [max_len, dim] table: it allocates the output tensor but dispatches
  // no tensor op (zero recorded FLOPs).
  const SymTensor table =
      checker.Input("positions.table", {SymDim::Sym("max_len"), dim});
  return checker.Materialize("positions.add", {x.shape[0], dim},
                             {&x, &table});
}

}  // namespace trace

}  // namespace etude::models

#include "models/layers.h"

#include "tensor/init.h"
#include "tensor/ops.h"

namespace etude::models {

using tensor::Tensor;

GruLayer::GruLayer(int64_t input_dim, int64_t hidden_dim, Rng* rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      w_ih_(tensor::XavierUniform({3 * hidden_dim, input_dim}, rng)),
      w_hh_(tensor::XavierUniform({3 * hidden_dim, hidden_dim}, rng)),
      b_ih_(Tensor({3 * hidden_dim})),
      b_hh_(Tensor({3 * hidden_dim})) {}

Tensor GruLayer::RunSequence(const Tensor& inputs) const {
  ETUDE_CHECK(inputs.rank() == 2 && inputs.dim(1) == input_dim_)
      << "GRU input shape mismatch";
  const int64_t l = inputs.dim(0);
  Tensor states({l, hidden_dim_});
  Tensor hidden({hidden_dim_});
  for (int64_t t = 0; t < l; ++t) {
    hidden = tensor::GruCell(inputs.Row(t), hidden, w_ih_, w_hh_, b_ih_,
                             b_hh_);
    for (int64_t j = 0; j < hidden_dim_; ++j) states.at(t, j) = hidden[j];
  }
  return states;
}

DenseLayer::DenseLayer(int64_t input_dim, int64_t output_dim, bool bias,
                       Rng* rng)
    : weight_(tensor::XavierUniform({output_dim, input_dim}, rng)),
      bias_(bias ? Tensor({output_dim}) : Tensor()) {}

Tensor DenseLayer::Forward(const Tensor& x) const {
  return tensor::Linear(x, weight_, bias_);
}

Tensor DenseLayer::ForwardVector(const Tensor& x) const {
  ETUDE_CHECK(x.rank() == 1) << "ForwardVector requires rank 1";
  const Tensor out =
      tensor::Linear(x.Reshaped({1, x.dim(0)}), weight_, bias_);
  return out.Reshaped({out.dim(1)});
}

TransformerBlock::TransformerBlock(int64_t dim, int64_t ffn_dim, Rng* rng)
    : wq_(dim, dim, /*bias=*/true, rng),
      wk_(dim, dim, /*bias=*/true, rng),
      wv_(dim, dim, /*bias=*/true, rng),
      wo_(dim, dim, /*bias=*/true, rng),
      ffn1_(dim, ffn_dim, /*bias=*/true, rng),
      ffn2_(ffn_dim, dim, /*bias=*/true, rng),
      norm1_gain_({dim}),
      norm1_bias_({dim}),
      norm2_gain_({dim}),
      norm2_bias_({dim}) {
  norm1_gain_.Fill(1.0f);
  norm2_gain_.Fill(1.0f);
}

Tensor TransformerBlock::Forward(const Tensor& x) const {
  const Tensor q = wq_.Forward(x);
  const Tensor k = wk_.Forward(x);
  const Tensor v = wv_.Forward(x);
  const Tensor attended =
      wo_.Forward(tensor::ScaledDotProductAttention(q, k, v));
  const Tensor h = tensor::LayerNorm(tensor::Add(x, attended), norm1_gain_,
                                     norm1_bias_);
  const Tensor ffn = ffn2_.Forward(tensor::Gelu(ffn1_.Forward(h)));
  return tensor::LayerNorm(tensor::Add(h, ffn), norm2_gain_, norm2_bias_);
}

PositionalEmbedding::PositionalEmbedding(int64_t max_length, int64_t dim,
                                         Rng* rng)
    : table_(tensor::RandomNormal({max_length, dim}, 0.02f, rng)) {}

Tensor PositionalEmbedding::AddTo(const Tensor& x) const {
  ETUDE_CHECK(x.rank() == 2 && x.dim(1) == table_.dim(1))
      << "positional embedding width mismatch";
  ETUDE_CHECK(x.dim(0) <= table_.dim(0))
      << "session longer than positional table";
  const int64_t l = x.dim(0), d = x.dim(1);
  Tensor out(x.shape());
  for (int64_t t = 0; t < l; ++t) {
    for (int64_t j = 0; j < d; ++j) {
      out.at(t, j) = x.at(t, j) + table_.at(t, j);
    }
  }
  return out;
}

}  // namespace etude::models

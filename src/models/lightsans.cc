#include "models/lightsans.h"

#include <algorithm>

#include "tensor/ops.h"

namespace etude::models {

using tensor::Tensor;

LightSans::LightSans(const ModelConfig& config)
    : SessionModel(config),
      positions_(config_.max_session_length, config_.embedding_dim, &rng_) {
  const int64_t d = config_.embedding_dim;
  layers_.reserve(kNumLayers);
  for (int i = 0; i < kNumLayers; ++i) {
    Layer layer{
        DenseLayer(d, d, true, &rng_),  // wq
        DenseLayer(d, d, true, &rng_),  // wk
        DenseLayer(d, d, true, &rng_),  // wv
        DenseLayer(d, d, true, &rng_),  // wo
        DenseLayer(d, kMaxInterests, false, &rng_),
        DenseLayer(d, 4 * d, true, &rng_),
        DenseLayer(4 * d, d, true, &rng_),
        Tensor({d}), Tensor({d}), Tensor({d}), Tensor({d})};
    layer.norm1_gain.Fill(1.0f);
    layer.norm2_gain.Fill(1.0f);
    layers_.push_back(std::move(layer));
  }
}

Tensor LightSans::RunLayer(const Layer& layer, const Tensor& x) const {
  const int64_t l = x.dim(0);
  // Dynamic low-rank decomposition: the number of latent interests is a
  // runtime function of the session length (non-JIT-able control flow).
  const int64_t k_interests = std::min<int64_t>(kMaxInterests, l);

  const Tensor q = layer.wq.Forward(x);
  const Tensor k = layer.wk.Forward(x);
  const Tensor v = layer.wv.Forward(x);
  // Interest assignment: softmax over positions for each latent interest.
  Tensor assign_logits = layer.interest_proj.Forward(x);  // [l, kMax]
  Tensor assign({k_interests, l});
  for (int64_t i = 0; i < k_interests; ++i) {
    for (int64_t j = 0; j < l; ++j) assign.at(i, j) = assign_logits.at(j, i);
  }
  const Tensor assign_soft = tensor::Softmax(assign);       // [k, l]
  const Tensor latent_k = tensor::MatMul(assign_soft, k);   // [k, d]
  const Tensor latent_v = tensor::MatMul(assign_soft, v);   // [k, d]
  const Tensor attended = layer.wo.Forward(
      tensor::ScaledDotProductAttention(q, latent_k, latent_v));
  const Tensor h = tensor::LayerNorm(tensor::Add(x, attended),
                                     layer.norm1_gain, layer.norm1_bias);
  const Tensor ffn = layer.ffn2.Forward(tensor::Gelu(layer.ffn1.Forward(h)));
  return tensor::LayerNorm(tensor::Add(h, ffn), layer.norm2_gain,
                           layer.norm2_bias);
}

Tensor LightSans::EncodeSession(const std::vector<int64_t>& session) const {
  Tensor x = positions_.AddTo(tensor::Embedding(item_embeddings_, session));
  for (const Layer& layer : layers_) {
    x = RunLayer(layer, x);
  }
  return x.Row(x.dim(0) - 1);
}

double LightSans::EncodeFlops(int64_t l) const {
  const double d = static_cast<double>(config_.embedding_dim);
  const double ll = static_cast<double>(l);
  const double k = static_cast<double>(std::min<int64_t>(kMaxInterests, l));
  // Per layer: QKVO (8 l d^2) + interest projection (2 l d k) + latent
  // key/value (4 k l d) + attention over k latents (4 l k d) + FFN
  // (16 l d^2).
  return kNumLayers *
         (24.0 * ll * d * d + 2.0 * ll * d * k + 8.0 * k * ll * d);
}

int64_t LightSans::OpCount(int64_t l) const {
  (void)l;
  return 3 + kNumLayers * 18;
}

}  // namespace etude::models

#include "models/lightsans.h"

#include <algorithm>

#include "tensor/ops.h"

namespace etude::models {

using tensor::Tensor;

LightSans::LightSans(const ModelConfig& config)
    : SessionModel(config),
      positions_(config_.max_session_length, config_.embedding_dim, &rng_) {
  const int64_t d = config_.embedding_dim;
  layers_.reserve(kNumLayers);
  for (int i = 0; i < kNumLayers; ++i) {
    Layer layer{
        DenseLayer(d, d, true, &rng_),  // wq
        DenseLayer(d, d, true, &rng_),  // wk
        DenseLayer(d, d, true, &rng_),  // wv
        DenseLayer(d, d, true, &rng_),  // wo
        DenseLayer(d, kMaxInterests, false, &rng_),
        DenseLayer(d, 4 * d, true, &rng_),
        DenseLayer(4 * d, d, true, &rng_),
        Tensor({d}), Tensor({d}), Tensor({d}), Tensor({d})};
    layer.norm1_gain.Fill(1.0f);
    layer.norm2_gain.Fill(1.0f);
    layers_.push_back(std::move(layer));
  }
}

Tensor LightSans::RunLayer(const Layer& layer, const Tensor& x) const {
  const int64_t l = x.dim(0);
  // Dynamic low-rank decomposition: the number of latent interests is a
  // runtime function of the session length (non-JIT-able control flow).
  const int64_t k_interests = std::min<int64_t>(kMaxInterests, l);

  const Tensor q = layer.wq.Forward(x);
  const Tensor k = layer.wk.Forward(x);
  const Tensor v = layer.wv.Forward(x);
  // Interest assignment: softmax over positions for each latent interest.
  Tensor assign_logits = layer.interest_proj.Forward(x);  // [l, kMax]
  Tensor assign({k_interests, l});
  for (int64_t i = 0; i < k_interests; ++i) {
    for (int64_t j = 0; j < l; ++j) assign.at(i, j) = assign_logits.at(j, i);
  }
  const Tensor assign_soft = tensor::Softmax(assign);       // [k, l]
  const Tensor latent_k = tensor::MatMul(assign_soft, k);   // [k, d]
  const Tensor latent_v = tensor::MatMul(assign_soft, v);   // [k, d]
  const Tensor attended = layer.wo.Forward(
      tensor::ScaledDotProductAttention(q, latent_k, latent_v));
  const Tensor h = tensor::LayerNorm(tensor::Add(x, attended),
                                     layer.norm1_gain, layer.norm1_bias);
  const Tensor ffn = layer.ffn2.Forward(tensor::Gelu(layer.ffn1.Forward(h)));
  return tensor::LayerNorm(tensor::Add(h, ffn), layer.norm2_gain,
                           layer.norm2_bias);
}

Tensor LightSans::EncodeSession(const std::vector<int64_t>& session) const {
  Tensor x = positions_.AddTo(tensor::Embedding(item_embeddings_, session));
  for (const Layer& layer : layers_) {
    x = RunLayer(layer, x);
  }
  return x.Row(x.dim(0) - 1);
}

tensor::SymTensor LightSans::TraceEncode(tensor::ShapeChecker& checker,
                                         ExecutionMode mode) const {
  (void)mode;  // not JIT-compatible; the compiled plan equals eager
  namespace sym = tensor::sym;
  const tensor::SymTensor embedded =
      checker.Embedding(TraceEmbeddingTable(checker), sym::L());
  tensor::SymTensor x = trace::PositionalAdd(checker, embedded, sym::d());
  // The runtime number of latent interests min(kMaxInterests, L) is a
  // fresh symbol: the dynamic control flow that defeats torch.jit.
  const tensor::SymDim k_int = tensor::SymDim::Sym("k_int");
  for (int i = 0; i < kNumLayers; ++i) {
    checker.SetContext(std::string(name()) + " layer " + std::to_string(i));
    // RunLayer's locals live until the layer returns.
    checker.PushScope();
    const tensor::SymTensor q =
        trace::Dense(checker, x, sym::d(), sym::d(), /*bias=*/true);
    const tensor::SymTensor k =
        trace::Dense(checker, x, sym::d(), sym::d(), /*bias=*/true);
    const tensor::SymTensor v =
        trace::Dense(checker, x, sym::d(), sym::d(), /*bias=*/true);
    const tensor::SymTensor assign_logits = trace::Dense(
        checker, x, sym::d(), kMaxInterests, /*bias=*/false);  // [L, kMax]
    // The truncated transpose into [k_int, L] is a manual element loop:
    // it allocates but dispatches no tensor op.
    const tensor::SymTensor assign = checker.Materialize(
        "lightsans.assign", {k_int, sym::L()}, {&assign_logits});
    const tensor::SymTensor assign_soft = checker.Softmax(assign);
    const tensor::SymTensor latent_k =
        checker.MatMul(assign_soft, k);  // [k_int, d]
    const tensor::SymTensor latent_v =
        checker.MatMul(assign_soft, v);  // [k_int, d]
    const tensor::SymTensor attended =
        trace::Dense(checker, checker.Attention(q, latent_k, latent_v),
                     sym::d(), sym::d(), /*bias=*/true);
    const tensor::SymTensor norm1_gain =
        checker.Input("layer.norm1_gain", {sym::d()});
    const tensor::SymTensor norm1_bias =
        checker.Input("layer.norm1_bias", {sym::d()});
    const tensor::SymTensor h = checker.LayerNorm(checker.Add(x, attended),
                                                  norm1_gain, norm1_bias);
    const tensor::SymTensor ffn = trace::Dense(
        checker,
        checker.Gelu(trace::Dense(checker, h, sym::d(), sym::d() * 4,
                                  /*bias=*/true)),
        sym::d() * 4, sym::d(), /*bias=*/true);
    const tensor::SymTensor norm2_gain =
        checker.Input("layer.norm2_gain", {sym::d()});
    const tensor::SymTensor norm2_bias =
        checker.Input("layer.norm2_bias", {sym::d()});
    x = checker.LayerNorm(checker.Add(h, ffn), norm2_gain, norm2_bias);
    checker.PopScope();
  }
  checker.SetContext(std::string(name()) + " encoder");
  return checker.Row(x);
}

int64_t LightSans::OpCount(int64_t l) const {
  (void)l;
  return 3 + kNumLayers * 18;
}

void LightSans::AddPlanBindings(int64_t session_length,
                                tensor::Bindings& bindings) const {
  bindings["k_int"] = static_cast<double>(
      std::min<int64_t>(kMaxInterests, session_length));
}

}  // namespace etude::models

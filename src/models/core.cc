#include "models/core.h"

#include "tensor/ops.h"

namespace etude::models {

using tensor::Tensor;

Core::Core(const ModelConfig& config)
    : SessionModel(config),
      positions_(config_.max_session_length, config_.embedding_dim, &rng_),
      weight_head_(config_.embedding_dim, 1, /*bias=*/false, &rng_) {
  blocks_.reserve(kNumLayers);
  for (int i = 0; i < kNumLayers; ++i) {
    blocks_.emplace_back(config_.embedding_dim, 4 * config_.embedding_dim,
                         &rng_);
  }
  // Consistent representation space: cosine scoring over an L2-normalised
  // item table. Normalising once at load time keeps Recommend a pure MIPS.
  item_embeddings_ = tensor::L2NormalizeRows(item_embeddings_);
}

Tensor Core::EncodeSession(const std::vector<int64_t>& session) const {
  const Tensor embedded = tensor::Embedding(item_embeddings_, session);
  Tensor x = positions_.AddTo(embedded);
  for (const TransformerBlock& block : blocks_) {
    x = block.Forward(x);
  }
  // Per-position weights from the encoder, softmax-normalised.
  const Tensor logits =
      weight_head_.Forward(x).Reshaped({x.dim(0)});  // [l]
  const Tensor alpha = tensor::Softmax(logits);
  // Weighted sum of the raw item embeddings (representation-consistent).
  const int64_t l = embedded.dim(0), d = embedded.dim(1);
  Tensor repr({d});
  for (int64_t i = 0; i < l; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      repr[j] += alpha[i] * embedded.at(i, j);
    }
  }
  // Cosine similarity with temperature == inner product of the normalised
  // query (scaled by 1/tau) against the normalised item table.
  return tensor::Scale(tensor::L2NormalizeRows(repr), 1.0f / kTemperature);
}

tensor::SymTensor Core::TraceEncode(tensor::ShapeChecker& checker,
                                    ExecutionMode mode) const {
  namespace sym = tensor::sym;
  const bool fused = mode == ExecutionMode::kJit;
  const tensor::SymTensor embedded =
      checker.Embedding(TraceEmbeddingTable(checker), sym::L());
  tensor::SymTensor x = trace::PositionalAdd(checker, embedded, sym::d());
  for (int i = 0; i < kNumLayers; ++i) {
    checker.SetContext(std::string(name()) + " block " + std::to_string(i));
    x = trace::Transformer(checker, x, sym::d(), sym::d() * 4, fused);
  }
  checker.SetContext(std::string(name()) + " encoder");
  // Per-position weights from the encoder, softmax-normalised.
  const tensor::SymTensor logits = checker.Reshape(
      trace::Dense(checker, x, sym::d(), 1, /*bias=*/false), {sym::L()});
  const tensor::SymTensor alpha = checker.Softmax(logits);
  // Weighted sum of the raw item embeddings (representation-consistent),
  // accumulated into a preallocated [d] vector by a manual loop.
  const tensor::SymTensor repr = checker.Materialize(
      "core.repr", {sym::d()}, {&alpha, &embedded});  // [d]
  return checker.Scale(checker.L2NormalizeRows(repr));
}

int64_t Core::OpCount(int64_t l) const {
  (void)l;
  return 3 + kNumLayers * 14 + 5;
}

}  // namespace etude::models

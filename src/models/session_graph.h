#ifndef ETUDE_MODELS_SESSION_GRAPH_H_
#define ETUDE_MODELS_SESSION_GRAPH_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace etude::models {

/// The session graph shared by SR-GNN and GC-SAN: unique items become
/// nodes; each consecutive click pair (i -> j) becomes a directed edge.
/// Incoming and outgoing adjacency matrices are row-normalised.
///
/// In the RecBole implementations this graph is constructed with NumPy
/// inside the inference function — the host-side step that forces
/// CPU<->GPU transfers at inference time (the performance bug the paper
/// reports). Our deployment simulator charges those host syncs via the
/// models' calibration profile.
struct SessionGraph {
  std::vector<int64_t> nodes;  // unique item ids, in first-seen order
  std::vector<int64_t> alias;  // click position -> node index
  tensor::Tensor adj_in;       // [n, n], row-normalised incoming edges
  tensor::Tensor adj_out;      // [n, n], row-normalised outgoing edges

  int64_t num_nodes() const { return static_cast<int64_t>(nodes.size()); }

  static SessionGraph Build(const std::vector<int64_t>& session);
};

}  // namespace etude::models

#endif  // ETUDE_MODELS_SESSION_GRAPH_H_

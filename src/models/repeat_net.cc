#include "models/repeat_net.h"

#include <cmath>

#include "tensor/arena.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace etude::models {

using tensor::Tensor;

RepeatNet::RepeatNet(const ModelConfig& config)
    : SessionModel(config),
      gru_(config_.embedding_dim, config_.embedding_dim, &rng_),
      mode_gate_(2 * config_.embedding_dim, 2, true, &rng_),
      repeat_attn_(config_.embedding_dim, config_.embedding_dim, false,
                   &rng_),
      repeat_q_(tensor::XavierUniform({config_.embedding_dim}, &rng_)),
      explore_head_(2 * config_.embedding_dim, config_.embedding_dim, false,
                    &rng_),
      context_attn_(config_.embedding_dim, config_.embedding_dim, false,
                    &rng_),
      context_q_(tensor::XavierUniform({config_.embedding_dim}, &rng_)) {}

Tensor RepeatNet::PoolContext(const Tensor& states) const {
  const int64_t l = states.dim(0), d = states.dim(1);
  const Tensor proj = context_attn_.Forward(states);  // [l, d]
  Tensor logits({l});
  for (int64_t t = 0; t < l; ++t) {
    logits[t] = tensor::Dot(context_q_, tensor::Tanh(proj.Row(t)));
  }
  const Tensor weights = tensor::Softmax(logits);
  Tensor context({d});
  for (int64_t t = 0; t < l; ++t) {
    for (int64_t j = 0; j < d; ++j) {
      context[j] += weights[t] * states.at(t, j);
    }
  }
  return context;
}

Tensor RepeatNet::EncodeSession(const std::vector<int64_t>& session) const {
  const Tensor embedded = tensor::Embedding(item_embeddings_, session);
  const Tensor states = gru_.RunSequence(embedded);
  const Tensor last = states.Row(states.dim(0) - 1);
  const Tensor context = PoolContext(states);
  return explore_head_.ForwardVector(tensor::Concat(last, context));
}

Result<Recommendation> RepeatNet::RecommendBody(
    const std::vector<int64_t>& window) const {
  const int64_t l = static_cast<int64_t>(window.size());
  const int64_t c = config_.catalog_size;
  const bool jit = tensor::exec::JitDispatchEnabled();

  const Tensor embedded = tensor::Embedding(item_embeddings_, window);
  const Tensor states = gru_.RunSequence(embedded);
  const Tensor last = states.Row(l - 1);
  const Tensor context = PoolContext(states);

  // Mode gate: p(repeat) vs p(explore). The JIT plan deduplicates the
  // [last; context] Concat and its [1, 2d] widening, which the explore
  // decoder below re-dispatches in the faithful eager path (the CSE
  // pass's finding).
  Tensor lc_wide;  // [1, 2d]; JIT only
  Tensor mode;
  if (jit) {
    const Tensor lc = tensor::Concat(last, context);
    lc_wide = lc.Reshaped({1, 2 * config_.embedding_dim});
    mode = tensor::Softmax(mode_gate_.Forward(lc_wide).Reshaped({2}));
  } else {
    mode = tensor::Softmax(
        mode_gate_.ForwardVector(tensor::Concat(last, context)));
  }
  const float p_repeat = mode[0];
  const float p_explore = mode[1];

  // Repeat decoder: attention over the session positions.
  const Tensor rep_proj = repeat_attn_.Forward(states);  // [l, d]
  Tensor rep_logits({l});
  for (int64_t t = 0; t < l; ++t) {
    rep_logits[t] = tensor::Dot(repeat_q_, tensor::Tanh(rep_proj.Row(t)));
  }
  const Tensor rep_weights = tensor::Softmax(rep_logits);  // [l]

  // --- RecBole performance bug, reproduced faithfully: ---
  // The l-sparse repeat distribution is expanded to the full catalog with
  // a dense one-hot [l, C] matrix multiplication (l*C multiply-adds and a
  // C-sized dense allocation instead of an l-sized scatter).
  Tensor onehot({l, c});
  for (int64_t t = 0; t < l; ++t) {
    onehot.at(t, window[static_cast<size_t>(t)]) = 1.0f;
  }
  const Tensor repeat_dense =
      tensor::MatMul(rep_weights.Reshaped({1, l}), onehot)
          .Reshaped({c});  // [C]

  // Explore decoder: dense softmax over the whole catalog.
  const Tensor query =
      jit ? explore_head_.Forward(lc_wide).Reshaped({config_.embedding_dim})
          : explore_head_.ForwardVector(tensor::Concat(last, context));
  const Tensor explore_scores = tensor::MatVec(item_embeddings_, query);
  const Tensor explore_probs = tensor::Softmax(explore_scores);  // [C]

  // Mixture of the two distributions, again materialised densely.
  Tensor final_scores({c});
  for (int64_t i = 0; i < c; ++i) {
    final_scores[i] =
        p_repeat * repeat_dense[i] + p_explore * explore_probs[i];
  }
  const tensor::TopKResult top = tensor::TopK(final_scores, config_.top_k);
  Recommendation rec;
  rec.items = top.indices;
  rec.scores = top.scores;
  return rec;
}

tensor::SymTensor RepeatNet::TracePoolContext(
    tensor::ShapeChecker& checker, const tensor::SymTensor& states) const {
  namespace sym = tensor::sym;
  // context_attn projection, then per-step additive scoring; the scalar
  // scores are stacked into a preallocated [L] logit vector and the
  // weighted sum of the state rows is a manual accumulation loop.
  const tensor::SymTensor proj =
      trace::Dense(checker, states, sym::d(), sym::d(), /*bias=*/false);
  const tensor::SymTensor context_q =
      checker.Input("repeatnet.context_q", {sym::d()});
  const tensor::SymTensor logits =
      checker.Materialize("repeatnet.context_logits", {sym::L()}, {});
  checker.BeginRepeat(sym::L());
  const tensor::SymTensor score =
      checker.Dot(context_q, checker.Tanh(checker.Row(proj)));
  checker.EndRepeat();
  checker.Link(logits, score);
  const tensor::SymTensor weights = checker.Softmax(logits);  // [L]
  return checker.Materialize("repeatnet.context", {sym::d()},
                             {&weights, &states});
}

tensor::SymTensor RepeatNet::TraceEncode(tensor::ShapeChecker& checker,
                                         ExecutionMode mode) const {
  (void)mode;
  namespace sym = tensor::sym;
  const tensor::SymTensor embedded =
      checker.Embedding(TraceEmbeddingTable(checker), sym::L());
  const tensor::SymTensor states =
      trace::Gru(checker, embedded, sym::d(), sym::d());
  const tensor::SymTensor last = checker.Row(states);
  const tensor::SymTensor context = TracePoolContext(checker, states);
  return trace::DenseVector(checker, checker.Concat(last, context),
                            sym::d() * 2, sym::d(), /*bias=*/false);
}

tensor::SymTensor RepeatNet::TraceRecommendBody(tensor::ShapeChecker& checker,
                                                ExecutionMode mode) const {
  namespace sym = tensor::sym;
  const bool fused = mode == ExecutionMode::kJit;
  // RecommendBody's locals all live until the function returns.
  checker.BeginEncodePhase();
  checker.PushScope();
  checker.SetContext(std::string(name()) + " encoder");
  const tensor::SymTensor embedded =
      checker.Embedding(TraceEmbeddingTable(checker), sym::L());
  const tensor::SymTensor states =
      trace::Gru(checker, embedded, sym::d(), sym::d());
  const tensor::SymTensor last = checker.Row(states);
  const tensor::SymTensor context = TracePoolContext(checker, states);
  // Mode gate: p(repeat) vs p(explore) over [last; context]. The JIT
  // trace hoists the Concat and its widening reshape shared with the
  // explore decoder (mirroring Recommend's deduplicated dispatch).
  tensor::SymTensor lc_wide;
  tensor::SymTensor mode_probs;
  if (fused) {
    const tensor::SymTensor lc = checker.Concat(last, context);
    lc_wide = checker.Reshape(lc, {1, sym::d() * 2});
    mode_probs = checker.Softmax(checker.Reshape(
        trace::Dense(checker, lc_wide, sym::d() * 2, 2, /*bias=*/true),
        {2}));
  } else {
    mode_probs = checker.Softmax(
        trace::DenseVector(checker, checker.Concat(last, context),
                           sym::d() * 2, 2, /*bias=*/true));
  }
  // Repeat decoder: additive attention over the session positions.
  const tensor::SymTensor rep_proj =
      trace::Dense(checker, states, sym::d(), sym::d(), /*bias=*/false);
  const tensor::SymTensor repeat_q =
      checker.Input("repeatnet.repeat_q", {sym::d()});
  const tensor::SymTensor rep_logits =
      checker.Materialize("repeatnet.repeat_logits", {sym::L()}, {});
  checker.BeginRepeat(sym::L());
  const tensor::SymTensor rep_score =
      checker.Dot(repeat_q, checker.Tanh(checker.Row(rep_proj)));
  checker.EndRepeat();
  checker.Link(rep_logits, rep_score);
  const tensor::SymTensor rep_weights = checker.Softmax(rep_logits);  // [L]

  checker.BeginScorePhase();
  checker.SetContext(std::string(name()) + " scoring");
  // The RecBole bug: the L-sparse repeat distribution is expanded to the
  // full catalog via a dense one-hot [L, C] matrix multiplication.
  const tensor::SymTensor onehot = checker.Materialize(
      "repeatnet.onehot", {sym::L(), sym::C()}, {});
  const tensor::SymTensor repeat_dense = checker.Reshape(
      checker.MatMul(checker.Reshape(rep_weights, {1, sym::L()}), onehot),
      {sym::C()});  // [C]
  // Explore decoder: dense softmax over all catalog scores. In eager
  // mode the second Concat over the same [last; context] pair is a
  // genuine duplicated dispatch in the implementation (reported by the
  // CSE pass); the JIT trace reuses the hoisted widened pair.
  const tensor::SymTensor query =
      fused ? checker.Reshape(trace::Dense(checker, lc_wide, sym::d() * 2,
                                           sym::d(), /*bias=*/false),
                              {sym::d()})
            : trace::DenseVector(checker, checker.Concat(last, context),
                                 sym::d() * 2, sym::d(), /*bias=*/false);
  checker.SetContext(std::string(name()) + " encoder output");
  checker.Require(query, {tensor::sym::d()},
                  "the explore-decoder query must be a [d] session vector");
  checker.SetContext(std::string(name()) + " scoring");
  const tensor::SymTensor table = TraceEmbeddingTable(checker);
  const tensor::SymTensor explore_probs =
      checker.Softmax(checker.MatVec(table, query));  // [C]
  // Dense mixture of the two distributions (a manual loop over all C
  // entries), then top-k over the materialised catalog scores.
  const tensor::SymTensor final_scores = checker.Materialize(
      "repeatnet.final_scores", {sym::C()},
      {&mode_probs, &repeat_dense, &explore_probs});
  const tensor::SymTensor scores = checker.TopK(final_scores, sym::k());
  checker.PopScope();
  checker.SetContext(std::string(name()) + " scoring output");
  checker.Require(scores, {tensor::sym::k()},
                  "scoring must produce a [k] recommendation list");
  return scores;
}

int64_t RepeatNet::OpCount(int64_t l) const {
  (void)l;
  // Encoder GRU + both decoders + the dense scatter/mixture ops.
  return 45;
}

}  // namespace etude::models

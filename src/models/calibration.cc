#include "models/calibration.h"

namespace etude::models {

namespace {
ModelCalibration Make(double cpu, double t4, double a100,
                      double batch_share = 0.06, int host_syncs = 0,
                      double host_us = 0.0) {
  ModelCalibration c;
  c.cpu_efficiency = cpu;
  c.t4_efficiency = t4;
  c.a100_efficiency = a100;
  c.batch_share = batch_share;
  c.host_sync_points = host_syncs;
  c.host_compute_us = host_us;
  return c;
}
}  // namespace

const ModelCalibration& GetCalibration(ModelKind kind) {
  // Calibration targets (paper, Sec. III):
  //  * SASRec & STAMP: only models cheap enough for Fashion on 3 CPU
  //    instances (service time well under the 50 ms p90 bound at C=1e6).
  //  * CORE & SASRec: unable to handle Platform (C=2e7) on 3 A100s, while
  //    GRU4Rec/NARM/SINE/STAMP can.
  //  * RepeatNet: dense ops over sparse matrices -> ~4x device time and
  //    largely unbatchable work; fails all but the grocery scenarios.
  //  * SR-GNN / GC-SAN: 3 NumPy host syncs per request (~0.8 ms host work
  //    each) that stall the GPU pipeline and never batch.
  static const ModelCalibration kGru4Rec = Make(1.12, 1.00, 1.05);
  static const ModelCalibration kRepeatNet =
      Make(4.0, 4.0, 4.0, /*batch_share=*/0.60);
  static const ModelCalibration kGcSan =
      Make(1.45, 1.25, 1.25, 0.06, /*host_syncs=*/3, /*host_us=*/800.0);
  static const ModelCalibration kSrGnn =
      Make(1.40, 1.20, 1.20, 0.06, /*host_syncs=*/3, /*host_us=*/800.0);
  static const ModelCalibration kNarm = Make(1.18, 1.05, 1.03);
  static const ModelCalibration kSine = Make(1.25, 1.05, 1.00);
  static const ModelCalibration kStamp = Make(0.40, 0.95, 0.95);
  static const ModelCalibration kLightSans = Make(1.05, 1.05, 1.10);
  static const ModelCalibration kCore = Make(1.00, 1.00, 1.60);
  static const ModelCalibration kSasRec = Make(0.40, 1.00, 1.60);

  switch (kind) {
    case ModelKind::kGru4Rec:
      return kGru4Rec;
    case ModelKind::kRepeatNet:
      return kRepeatNet;
    case ModelKind::kGcSan:
      return kGcSan;
    case ModelKind::kSrGnn:
      return kSrGnn;
    case ModelKind::kNarm:
      return kNarm;
    case ModelKind::kSine:
      return kSine;
    case ModelKind::kStamp:
      return kStamp;
    case ModelKind::kLightSans:
      return kLightSans;
    case ModelKind::kCore:
      return kCore;
    case ModelKind::kSasRec:
      return kSasRec;
  }
  return kGru4Rec;
}

}  // namespace etude::models

#include "models/model_factory.h"

#include "models/core.h"
#include "models/gc_san.h"
#include "models/gru4rec.h"
#include "models/lightsans.h"
#include "models/narm.h"
#include "models/repeat_net.h"
#include "models/sasrec.h"
#include "models/sine.h"
#include "models/sr_gnn.h"
#include "models/stamp.h"

namespace etude::models {

Result<std::unique_ptr<SessionModel>> CreateModel(ModelKind kind,
                                                  const ModelConfig& config) {
  if (config.catalog_size < 1) {
    return Status::InvalidArgument("catalog size must be >= 1");
  }
  if (config.top_k < 1) {
    return Status::InvalidArgument("top_k must be >= 1");
  }
  if (config.max_session_length < 1) {
    return Status::InvalidArgument("max_session_length must be >= 1");
  }
  if (config.embedding_dim < 0) {
    return Status::InvalidArgument("embedding_dim must be >= 0");
  }
  switch (kind) {
    case ModelKind::kGru4Rec:
      return std::unique_ptr<SessionModel>(new Gru4Rec(config));
    case ModelKind::kRepeatNet:
      return std::unique_ptr<SessionModel>(new RepeatNet(config));
    case ModelKind::kGcSan:
      return std::unique_ptr<SessionModel>(new GcSan(config));
    case ModelKind::kSrGnn:
      return std::unique_ptr<SessionModel>(new SrGnn(config));
    case ModelKind::kNarm:
      return std::unique_ptr<SessionModel>(new Narm(config));
    case ModelKind::kSine:
      return std::unique_ptr<SessionModel>(new Sine(config));
    case ModelKind::kStamp:
      return std::unique_ptr<SessionModel>(new Stamp(config));
    case ModelKind::kLightSans:
      return std::unique_ptr<SessionModel>(new LightSans(config));
    case ModelKind::kCore:
      return std::unique_ptr<SessionModel>(new Core(config));
    case ModelKind::kSasRec:
      return std::unique_ptr<SessionModel>(new SasRec(config));
  }
  return Status::InvalidArgument("unknown model kind");
}

Result<std::unique_ptr<SessionModel>> CreateModel(std::string_view name,
                                                  const ModelConfig& config) {
  ETUDE_ASSIGN_OR_RETURN(ModelKind kind, ModelKindFromString(name));
  return CreateModel(kind, config);
}

}  // namespace etude::models

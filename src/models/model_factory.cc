#include "models/model_factory.h"

#include "models/core.h"
#include "models/gc_san.h"
#include "models/gru4rec.h"
#include "models/lightsans.h"
#include "models/narm.h"
#include "models/repeat_net.h"
#include "models/sasrec.h"
#include "models/sine.h"
#include "models/sr_gnn.h"
#include "models/stamp.h"

namespace etude::models {

namespace {
// Every freshly constructed model passes the static plan lints before it
// is handed out: a mis-wired architecture (shape mismatches) or a wasteful
// one (dead ops, catalog-sized tensors no op consumes) is rejected here,
// at load time, instead of aborting — or silently burning cycles —
// mid-benchmark on the first request.
Status CheckPlan(const SessionModel& model, ExecutionMode mode) {
  ETUDE_RETURN_NOT_OK(model.CheckShapes(mode));
  const tensor::PlanGraph plan = model.BuildPlan(mode);
  const std::vector<tensor::PlanDiagnostic> errors = tensor::PlanErrors(plan);
  if (!errors.empty()) {
    std::string report;
    for (const tensor::PlanDiagnostic& error : errors) {
      report += "  " + error.ToString() + "\n";
    }
    return Status::InvalidArgument(
        "plan lint failed for " + std::string(model.name()) + " (" +
        (mode == ExecutionMode::kJit ? "jit" : "eager") + "):\n" + report);
  }
  return Status::OK();
}

Result<std::unique_ptr<SessionModel>> LintAndReturn(
    std::unique_ptr<SessionModel> model) {
  ETUDE_RETURN_NOT_OK(CheckPlan(*model, ExecutionMode::kEager));
  ETUDE_RETURN_NOT_OK(CheckPlan(*model, ExecutionMode::kJit));
  return model;
}
}  // namespace

Result<std::unique_ptr<SessionModel>> CreateModel(ModelKind kind,
                                                  const ModelConfig& config) {
  if (config.catalog_size < 1) {
    return Status::InvalidArgument("catalog size must be >= 1");
  }
  if (config.top_k < 1) {
    return Status::InvalidArgument("top_k must be >= 1");
  }
  if (config.max_session_length < 1) {
    return Status::InvalidArgument("max_session_length must be >= 1");
  }
  if (config.embedding_dim < 0) {
    return Status::InvalidArgument("embedding_dim must be >= 0");
  }
  switch (kind) {
    case ModelKind::kGru4Rec:
      return LintAndReturn(std::unique_ptr<SessionModel>(new Gru4Rec(config)));
    case ModelKind::kRepeatNet:
      return LintAndReturn(
          std::unique_ptr<SessionModel>(new RepeatNet(config)));
    case ModelKind::kGcSan:
      return LintAndReturn(std::unique_ptr<SessionModel>(new GcSan(config)));
    case ModelKind::kSrGnn:
      return LintAndReturn(std::unique_ptr<SessionModel>(new SrGnn(config)));
    case ModelKind::kNarm:
      return LintAndReturn(std::unique_ptr<SessionModel>(new Narm(config)));
    case ModelKind::kSine:
      return LintAndReturn(std::unique_ptr<SessionModel>(new Sine(config)));
    case ModelKind::kStamp:
      return LintAndReturn(std::unique_ptr<SessionModel>(new Stamp(config)));
    case ModelKind::kLightSans:
      return LintAndReturn(
          std::unique_ptr<SessionModel>(new LightSans(config)));
    case ModelKind::kCore:
      return LintAndReturn(std::unique_ptr<SessionModel>(new Core(config)));
    case ModelKind::kSasRec:
      return LintAndReturn(std::unique_ptr<SessionModel>(new SasRec(config)));
  }
  return Status::InvalidArgument("unknown model kind");
}

Result<std::unique_ptr<SessionModel>> CreateModel(std::string_view name,
                                                  const ModelConfig& config) {
  ETUDE_ASSIGN_OR_RETURN(ModelKind kind, ModelKindFromString(name));
  return CreateModel(kind, config);
}

}  // namespace etude::models

#ifndef ETUDE_MODELS_SR_GNN_H_
#define ETUDE_MODELS_SR_GNN_H_

#include <vector>

#include "models/layers.h"
#include "models/session_graph.h"
#include "models/session_model.h"

namespace etude::models {

/// SR-GNN (Wu et al., AAAI 2019): the session is converted into a directed
/// item graph; a gated graph neural network propagates information along
/// the in/out adjacency, and an attention readout combines the last click
/// (current interest) with a global graph representation (long-term
/// preference).
class SrGnn : public SessionModel {
 public:
  static constexpr int kPropagationSteps = 1;

  explicit SrGnn(const ModelConfig& config);

  ModelKind kind() const override { return ModelKind::kSrGnn; }

  tensor::Tensor EncodeSession(
      const std::vector<int64_t>& session) const override;

 protected:
  /// Runs the gated GNN over the session graph; returns [n, d] node states.
  tensor::Tensor EncodeGraph(const SessionGraph& graph) const;

  /// Symbolic mirror of EncodeGraph: [n, d] node states over the symbolic
  /// node count n. Shared with GC-SAN, which reuses the gated GNN.
  tensor::SymTensor TraceGraphEncode(tensor::ShapeChecker& checker) const;

  tensor::SymTensor TraceEncode(tensor::ShapeChecker& checker,
                                ExecutionMode mode) const override;
  int64_t OpCount(int64_t l) const override;

 private:
  DenseLayer w_in_, w_out_;       // edge-type projections [d, d]
  DenseLayer gate_input_;         // [3d, 2d] GRU-style update from messages
  DenseLayer gate_hidden_;        // [3d, d]
  DenseLayer attn_last_, attn_node_;  // readout attention [d, d]
  tensor::Tensor attn_q_;             // [d]
  DenseLayer head_;                   // [d, 2d]
};

}  // namespace etude::models

#endif  // ETUDE_MODELS_SR_GNN_H_

#ifndef ETUDE_MODELS_PLAN_REPORT_H_
#define ETUDE_MODELS_PLAN_REPORT_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "models/session_model.h"

namespace etude::models {

/// The reference configuration at which the per-model plan report is
/// generated and pinned: the paper's large-catalog operating point with
/// the d = ceil(C^(1/4)) heuristic, evaluated at a full-length session.
ModelConfig PlanReportConfig();

/// The session length the report's polynomials are evaluated at.
constexpr int64_t kPlanReportSessionLength = 50;

/// Machine-readable plan report over all ten models x both execution
/// modes: per cell the op count, the symbolic FLOP / memory-traffic /
/// peak-memory polynomials with their values at the reference point, and
/// every plan diagnostic (CSE warnings, materialized-[C] notes). Model
/// level entries carry the JIT-compatibility verdict and the structural
/// reason for a fallback. Key order is deterministic, so the dump can be
/// diffed against the committed golden docs/plan_report.json.
JsonValue PlanReportJson();

/// Human-readable table of the same report: one row per model x mode with
/// op count, peak-memory and FLOP polynomials, plus a diagnostics section.
std::string PlanReportText();

/// Compares two plan reports and returns the JSON paths whose values
/// differ (missing keys included); empty means the reports match.
std::vector<std::string> DiffPlanReports(const JsonValue& golden,
                                         const JsonValue& current);

}  // namespace etude::models

#endif  // ETUDE_MODELS_PLAN_REPORT_H_

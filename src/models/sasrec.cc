#include "models/sasrec.h"

#include "tensor/ops.h"

namespace etude::models {

using tensor::Tensor;

SasRec::SasRec(const ModelConfig& config)
    : SessionModel(config),
      positions_(config_.max_session_length, config_.embedding_dim, &rng_) {
  blocks_.reserve(kNumLayers);
  for (int i = 0; i < kNumLayers; ++i) {
    blocks_.emplace_back(config_.embedding_dim, 4 * config_.embedding_dim,
                         &rng_);
  }
}

Tensor SasRec::EncodeSession(const std::vector<int64_t>& session) const {
  Tensor x = positions_.AddTo(
      tensor::Embedding(item_embeddings_, session));  // [l, d]
  for (const TransformerBlock& block : blocks_) {
    x = block.Forward(x);
  }
  return x.Row(x.dim(0) - 1);
}

tensor::SymTensor SasRec::TraceEncode(tensor::ShapeChecker& checker,
                                      ExecutionMode mode) const {
  namespace sym = tensor::sym;
  const bool fused = mode == ExecutionMode::kJit;
  const tensor::SymTensor embedded =
      checker.Embedding(TraceEmbeddingTable(checker), sym::L());
  tensor::SymTensor x = trace::PositionalAdd(checker, embedded, sym::d());
  for (int i = 0; i < kNumLayers; ++i) {
    checker.SetContext(std::string(name()) + " block " + std::to_string(i));
    x = trace::Transformer(checker, x, sym::d(), sym::d() * 4, fused);
  }
  checker.SetContext(std::string(name()) + " encoder");
  return checker.Row(x);
}

int64_t SasRec::OpCount(int64_t l) const {
  (void)l;
  return 3 + kNumLayers * 14;
}

}  // namespace etude::models

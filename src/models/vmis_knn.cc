#include "models/vmis_knn.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace etude::models {

Result<VmisKnn> VmisKnn::Fit(const std::vector<workload::Session>& history,
                             const VmisKnnConfig& config) {
  if (history.empty()) {
    return Status::InvalidArgument("need at least one historical session");
  }
  if (config.neighbours < 1 || config.top_k < 1) {
    return Status::InvalidArgument("neighbours and top_k must be >= 1");
  }
  VmisKnn model;
  model.config_ = config;
  model.sessions_.reserve(history.size());
  for (const workload::Session& session : history) {
    if (session.items.empty()) continue;
    for (const int64_t item : session.items) {
      if (item < 0 || item >= config.catalog_size) {
        return Status::OutOfRange("history item id outside catalog");
      }
    }
    model.sessions_.push_back(session.items);
  }
  if (model.sessions_.empty()) {
    return Status::InvalidArgument("history contains only empty sessions");
  }
  // Inverted index, most recent sessions first (history is assumed in
  // chronological order, so walk it backwards).
  int64_t total_list = 0, total_session = 0;
  for (int64_t s = static_cast<int64_t>(model.sessions_.size()) - 1; s >= 0;
       --s) {
    const auto& items = model.sessions_[static_cast<size_t>(s)];
    total_session += static_cast<int64_t>(items.size());
    // Deduplicate within the session so each session appears once per
    // item list.
    std::vector<int64_t> unique = items;
    std::sort(unique.begin(), unique.end());
    unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
    for (const int64_t item : unique) {
      auto& list = model.item_index_[item];
      if (static_cast<int64_t>(list.size()) <
          config.max_sessions_per_item) {
        list.push_back(static_cast<int32_t>(s));
      }
    }
  }
  for (const auto& [item, list] : model.item_index_) {
    total_list += static_cast<int64_t>(list.size());
  }
  model.average_list_length_ =
      model.item_index_.empty()
          ? 0.0
          : static_cast<double>(total_list) /
                static_cast<double>(model.item_index_.size());
  model.average_session_length_ =
      static_cast<double>(total_session) /
      static_cast<double>(model.sessions_.size());
  return model;
}

Result<Recommendation> VmisKnn::Recommend(
    const std::vector<int64_t>& session) const {
  if (session.empty()) {
    return Status::InvalidArgument("session must contain at least one click");
  }
  for (const int64_t item : session) {
    if (item < 0 || item >= config_.catalog_size) {
      return Status::OutOfRange("item id outside catalog");
    }
  }
  std::vector<int64_t> window = session;
  if (static_cast<int64_t>(window.size()) > config_.max_session_length) {
    window.assign(window.end() - config_.max_session_length, window.end());
  }

  // Stage 1: score historical sessions by position-weighted overlap with
  // the ongoing session (later clicks weigh more, as in V-SkNN).
  std::unordered_map<int32_t, double> session_scores;
  session_scores.reserve(256);
  for (size_t position = 0; position < window.size(); ++position) {
    const double weight = static_cast<double>(position + 1) /
                          static_cast<double>(window.size());
    const auto it = item_index_.find(window[position]);
    if (it == item_index_.end()) continue;
    for (const int32_t candidate : it->second) {
      session_scores[candidate] += weight;
    }
  }
  if (session_scores.empty()) {
    return Recommendation{};  // cold item(s): nothing to recommend from
  }

  // Keep the m most similar neighbours.
  using Entry = std::pair<double, int32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (const auto& [candidate, score] : session_scores) {
    if (static_cast<int64_t>(heap.size()) < config_.neighbours) {
      heap.emplace(score, candidate);
    } else if (score > heap.top().first) {
      heap.pop();
      heap.emplace(score, candidate);
    }
  }

  // Stage 2: similarity-weighted item votes from the neighbours.
  std::unordered_map<int64_t, double> item_scores;
  item_scores.reserve(512);
  while (!heap.empty()) {
    const auto [similarity, neighbour] = heap.top();
    heap.pop();
    const auto& items = sessions_[static_cast<size_t>(neighbour)];
    const size_t start =
        items.size() > static_cast<size_t>(config_.last_n_clicks)
            ? items.size() - static_cast<size_t>(config_.last_n_clicks)
            : 0;
    for (size_t i = start; i < items.size(); ++i) {
      item_scores[items[i]] += similarity;
    }
  }
  // Do not recommend the current click again (match RecBole's next-item
  // setting, which excludes nothing — but excluding the very last click
  // is standard for kNN recommenders).
  item_scores.erase(window.back());

  std::priority_queue<std::pair<double, int64_t>,
                      std::vector<std::pair<double, int64_t>>,
                      std::greater<std::pair<double, int64_t>>>
      top_items;
  for (const auto& [item, score] : item_scores) {
    if (static_cast<int64_t>(top_items.size()) < config_.top_k) {
      top_items.emplace(score, item);
    } else if (score > top_items.top().first) {
      top_items.pop();
      top_items.emplace(score, item);
    }
  }
  Recommendation rec;
  rec.items.resize(top_items.size());
  rec.scores.resize(top_items.size());
  for (int64_t i = static_cast<int64_t>(top_items.size()) - 1; i >= 0;
       --i) {
    rec.scores[static_cast<size_t>(i)] =
        static_cast<float>(top_items.top().first);
    rec.items[static_cast<size_t>(i)] = top_items.top().second;
    top_items.pop();
  }
  return rec;
}

sim::InferenceWork VmisKnn::CostModel(int64_t session_length) const {
  const double l = static_cast<double>(
      std::clamp<int64_t>(session_length, 1, config_.max_session_length));
  const double m = static_cast<double>(config_.neighbours);
  const double list = average_list_length_;
  const double avg_len =
      std::min(average_session_length_,
               static_cast<double>(config_.last_n_clicks));
  sim::InferenceWork work;
  // Stage 1: l inverted-list walks; stage 2: m neighbour sessions scored.
  // Hash-map updates cost a handful of "flops"-equivalents each; the
  // traffic is the lists plus the neighbour sessions — no C-sized term
  // anywhere, which is the entire point of the baseline.
  const double updates = l * list + m * avg_len;
  work.encode_flops = updates * 8.0;
  work.encode_bytes = updates * 16.0;
  work.scan_flops = m * 30.0;  // neighbour heap maintenance
  work.scan_bytes = 0;
  work.op_count = 6;
  work.jit_compiled = true;   // plain native code; nothing to JIT
  work.batch_share = 1.0;     // CPU-side; batching does not amortise it
  return work;
}

}  // namespace etude::models

#include "models/sine.h"

#include <algorithm>

#include "tensor/init.h"
#include "tensor/ops.h"

namespace etude::models {

using tensor::Tensor;

Sine::Sine(const ModelConfig& config)
    : SessionModel(config),
      prototype_pool_(tensor::XavierUniform(
          {kPrototypePoolSize, config_.embedding_dim}, &rng_)),
      key_proj_(config_.embedding_dim, config_.embedding_dim, false, &rng_),
      fuse_proj_(config_.embedding_dim, config_.embedding_dim, false,
                 &rng_) {}

Tensor Sine::EncodeSession(const std::vector<int64_t>& session) const {
  const Tensor embedded = tensor::Embedding(item_embeddings_, session);
  const int64_t l = embedded.dim(0), d = embedded.dim(1);
  const Tensor mean = tensor::MeanRows(embedded);

  // Sparse interest activation: top-k prototypes by affinity to the
  // session mean.
  const Tensor affinities = tensor::MatVec(prototype_pool_, mean);  // [P]
  const tensor::TopKResult active =
      tensor::TopK(affinities, kActiveInterests);

  // One attention per active prototype aggregates the session items.
  const Tensor keys = key_proj_.Forward(embedded);  // [l, d]
  const int64_t n_active = static_cast<int64_t>(active.indices.size());
  Tensor interests({n_active, d});
  for (int64_t p = 0; p < n_active; ++p) {
    const Tensor proto = prototype_pool_.Row(active.indices[
        static_cast<size_t>(p)]);
    Tensor logits({l});
    for (int64_t i = 0; i < l; ++i) {
      logits[i] = tensor::Dot(keys.Row(i), proto);
    }
    const Tensor weights = tensor::Softmax(logits);
    for (int64_t i = 0; i < l; ++i) {
      for (int64_t j = 0; j < d; ++j) {
        interests.at(p, j) += weights[i] * embedded.at(i, j);
      }
    }
  }

  // Fuse interests weighted by softmaxed affinity of the active
  // prototypes.
  Tensor active_scores({n_active});
  for (int64_t p = 0; p < n_active; ++p) {
    active_scores[p] = active.scores[static_cast<size_t>(p)];
  }
  const Tensor fuse_weights = tensor::Softmax(active_scores);
  Tensor fused({d});
  for (int64_t p = 0; p < n_active; ++p) {
    for (int64_t j = 0; j < d; ++j) {
      fused[j] += fuse_weights[p] * interests.at(p, j);
    }
  }
  return fuse_proj_.ForwardVector(fused);
}

tensor::SymTensor Sine::TraceEncode(tensor::ShapeChecker& checker,
                                    ExecutionMode mode) const {
  (void)mode;
  namespace sym = tensor::sym;
  const tensor::SymTensor embedded =
      checker.Embedding(TraceEmbeddingTable(checker), sym::L());  // [L, d]
  const tensor::SymTensor mean = checker.MeanRows(embedded);      // [d]
  const tensor::SymTensor pool =
      checker.Input("sine.prototype_pool", {kPrototypePoolSize, sym::d()});
  const tensor::SymTensor affinities = checker.MatVec(pool, mean);  // [P]
  const tensor::SymTensor active =
      checker.TopK(affinities, kActiveInterests);  // [a]
  // One attention per active prototype; the step shapes are identical for
  // every prototype, so one symbolic step under a repeat of `a` covers
  // all of them. The weighted sums are manual accumulation loops into
  // preallocated tensors (no op dispatched).
  const tensor::SymTensor keys =
      trace::Dense(checker, embedded, sym::d(), sym::d(), /*bias=*/false);
  const tensor::SymTensor interests = checker.Materialize(
      "sine.interests", {kActiveInterests, sym::d()}, {});
  checker.BeginRepeat(kActiveInterests);
  const tensor::SymTensor proto = checker.Row(pool);  // [d]
  const tensor::SymTensor logits =
      checker.Materialize("sine.attn_logits", {sym::L()}, {});
  checker.BeginRepeat(sym::L());
  const tensor::SymTensor dot = checker.Dot(checker.Row(keys), proto);
  checker.EndRepeat();
  checker.Link(logits, dot);
  const tensor::SymTensor weights = checker.Softmax(logits);  // [L]
  checker.EndRepeat();
  checker.Link(interests, weights);
  checker.Link(interests, embedded);
  // Fuse the [a, d] interests weighted by their softmaxed affinities.
  const tensor::SymTensor active_scores = checker.Materialize(
      "sine.active_scores", {kActiveInterests}, {&active});
  const tensor::SymTensor fuse_weights = checker.Softmax(active_scores);
  const tensor::SymTensor fused = checker.Materialize(
      "sine.fused", {sym::d()}, {&fuse_weights, &interests});
  return trace::DenseVector(checker, fused, sym::d(), sym::d(),
                            /*bias=*/false);
}

int64_t Sine::OpCount(int64_t l) const {
  (void)l;
  return 6 + kActiveInterests * 4 + 4;
}

}  // namespace etude::models

#include "models/sine.h"

#include <algorithm>

#include "tensor/init.h"
#include "tensor/ops.h"

namespace etude::models {

using tensor::Tensor;

Sine::Sine(const ModelConfig& config)
    : SessionModel(config),
      prototype_pool_(tensor::XavierUniform(
          {kPrototypePoolSize, config_.embedding_dim}, &rng_)),
      key_proj_(config_.embedding_dim, config_.embedding_dim, false, &rng_),
      fuse_proj_(config_.embedding_dim, config_.embedding_dim, false,
                 &rng_) {}

Tensor Sine::EncodeSession(const std::vector<int64_t>& session) const {
  const Tensor embedded = tensor::Embedding(item_embeddings_, session);
  const int64_t l = embedded.dim(0), d = embedded.dim(1);
  const Tensor mean = tensor::MeanRows(embedded);

  // Sparse interest activation: top-k prototypes by affinity to the
  // session mean.
  const Tensor affinities = tensor::MatVec(prototype_pool_, mean);  // [P]
  const tensor::TopKResult active =
      tensor::TopK(affinities, kActiveInterests);

  // One attention per active prototype aggregates the session items.
  const Tensor keys = key_proj_.Forward(embedded);  // [l, d]
  const int64_t n_active = static_cast<int64_t>(active.indices.size());
  Tensor interests({n_active, d});
  for (int64_t p = 0; p < n_active; ++p) {
    const Tensor proto = prototype_pool_.Row(active.indices[
        static_cast<size_t>(p)]);
    Tensor logits({l});
    for (int64_t i = 0; i < l; ++i) {
      logits[i] = tensor::Dot(keys.Row(i), proto);
    }
    const Tensor weights = tensor::Softmax(logits);
    for (int64_t i = 0; i < l; ++i) {
      for (int64_t j = 0; j < d; ++j) {
        interests.at(p, j) += weights[i] * embedded.at(i, j);
      }
    }
  }

  // Fuse interests weighted by softmaxed affinity of the active
  // prototypes.
  Tensor active_scores({n_active});
  for (int64_t p = 0; p < n_active; ++p) {
    active_scores[p] = active.scores[static_cast<size_t>(p)];
  }
  const Tensor fuse_weights = tensor::Softmax(active_scores);
  Tensor fused({d});
  for (int64_t p = 0; p < n_active; ++p) {
    for (int64_t j = 0; j < d; ++j) {
      fused[j] += fuse_weights[p] * interests.at(p, j);
    }
  }
  return fuse_proj_.ForwardVector(fused);
}

tensor::SymTensor Sine::TraceEncode(tensor::ShapeChecker& checker,
                                    ExecutionMode mode) const {
  (void)mode;
  namespace sym = tensor::sym;
  const tensor::SymTensor embedded =
      checker.Embedding(TraceEmbeddingTable(checker), sym::L());  // [L, d]
  const tensor::SymTensor mean = checker.MeanRows(embedded);      // [d]
  const tensor::SymTensor pool =
      checker.Input("sine.prototype_pool", {kPrototypePoolSize, sym::d()});
  const tensor::SymTensor affinities = checker.MatVec(pool, mean);  // [P]
  const tensor::SymTensor active_scores =
      checker.TopK(affinities, kActiveInterests);  // [a]
  // One attention per active prototype; the step shapes are identical for
  // every prototype, so one symbolic pass covers all of them.
  const tensor::SymTensor keys =
      trace::Dense(checker, embedded, sym::d(), sym::d(), /*bias=*/false);
  checker.Dot(checker.Row(keys), checker.Row(pool));
  const tensor::SymTensor weights =
      checker.Softmax(checker.Input("sine.attn_logits", {sym::L()}));
  checker.MatVec(checker.Transpose(embedded), weights);  // one interest [d]
  // Fuse the [a, d] interests weighted by their softmaxed affinities.
  const tensor::SymTensor interests =
      checker.Input("sine.interests", {kActiveInterests, sym::d()});
  const tensor::SymTensor fuse_weights = checker.Softmax(active_scores);
  const tensor::SymTensor fused =
      checker.MatVec(checker.Transpose(interests), fuse_weights);  // [d]
  return trace::DenseVector(checker, fused, sym::d(), sym::d(),
                            /*bias=*/false);
}

double Sine::EncodeFlops(int64_t l) const {
  const double d = static_cast<double>(config_.embedding_dim);
  const double ll = static_cast<double>(l);
  const double p = static_cast<double>(kPrototypePoolSize);
  const double a = static_cast<double>(kActiveInterests);
  // Prototype affinities (2 P d) + key projection (2 l d^2) + per-interest
  // attention (a * 4 l d) + fusion (2 d^2).
  return 2.0 * p * d + 2.0 * ll * d * d + 4.0 * a * ll * d + 2.0 * d * d;
}

int64_t Sine::OpCount(int64_t l) const {
  (void)l;
  return 6 + kActiveInterests * 4 + 4;
}

}  // namespace etude::models

#include "models/session_model.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/strings.h"
#include "models/calibration.h"
#include "tensor/arena.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace etude::models {

std::string_view ModelKindToString(ModelKind kind) {
  switch (kind) {
    case ModelKind::kGru4Rec:
      return "GRU4Rec";
    case ModelKind::kRepeatNet:
      return "RepeatNet";
    case ModelKind::kGcSan:
      return "GC-SAN";
    case ModelKind::kSrGnn:
      return "SR-GNN";
    case ModelKind::kNarm:
      return "NARM";
    case ModelKind::kSine:
      return "SINE";
    case ModelKind::kStamp:
      return "STAMP";
    case ModelKind::kLightSans:
      return "LightSANs";
    case ModelKind::kCore:
      return "CORE";
    case ModelKind::kSasRec:
      return "SASRec";
  }
  return "?";
}

Result<ModelKind> ModelKindFromString(std::string_view name) {
  const std::string lower = ToLower(name);
  for (const ModelKind kind : AllModelKinds()) {
    if (ToLower(ModelKindToString(kind)) == lower) return kind;
  }
  // Accept hyphen-less GNN spellings.
  if (lower == "gcsan") return ModelKind::kGcSan;
  if (lower == "srgnn") return ModelKind::kSrGnn;
  return Status::NotFound("unknown model '" + std::string(name) + "'");
}

const std::vector<ModelKind>& AllModelKinds() {
  static const std::vector<ModelKind>* kAll = new std::vector<ModelKind>{
      ModelKind::kGru4Rec, ModelKind::kRepeatNet, ModelKind::kGcSan,
      ModelKind::kSrGnn,   ModelKind::kNarm,      ModelKind::kSine,
      ModelKind::kStamp,   ModelKind::kLightSans, ModelKind::kCore,
      ModelKind::kSasRec,
  };
  return *kAll;
}

const std::vector<ModelKind>& HealthyModelKinds() {
  static const std::vector<ModelKind>* kHealthy = new std::vector<ModelKind>{
      ModelKind::kCore, ModelKind::kGru4Rec, ModelKind::kNarm,
      ModelKind::kSasRec, ModelKind::kSine, ModelKind::kStamp,
  };
  return *kHealthy;
}

int64_t HeuristicEmbeddingDim(int64_t catalog_size) {
  ETUDE_CHECK(catalog_size >= 1) << "catalog size must be >= 1";
  return static_cast<int64_t>(
      std::ceil(std::pow(static_cast<double>(catalog_size), 0.25)));
}

Status ValidateSession(const std::vector<int64_t>& session,
                       const ModelConfig& config) {
  if (session.empty()) {
    return Status::InvalidArgument("session must contain at least one click");
  }
  for (const int64_t item : session) {
    if (item < 0 || item >= config.catalog_size) {
      return Status::OutOfRange(
          "item id " + std::to_string(item) + " outside catalog of size " +
          std::to_string(config.catalog_size));
    }
  }
  return Status::OK();
}

SessionModel::SessionModel(const ModelConfig& config)
    : config_(config), rng_(config.seed) {
  ETUDE_CHECK(config_.catalog_size >= 1) << "catalog size must be >= 1";
  if (config_.embedding_dim <= 0) {
    config_.embedding_dim = HeuristicEmbeddingDim(config_.catalog_size);
  }
  ETUDE_CHECK(config_.top_k >= 1) << "top_k must be >= 1";
  // RecBole initialises embedding tables with N(0, 0.02); the weights need
  // not be trained to measure inference latency (Sec. III).
  if (config_.materialize_embeddings) {
    item_embeddings_ = tensor::RandomNormal(
        {config_.catalog_size, config_.embedding_dim}, 0.02f, &rng_);
  } else {
    item_embeddings_ =
        tensor::RandomNormal({1, config_.embedding_dim}, 0.02f, &rng_);
  }
}

namespace {

/// Number of distinct item ids in a session window — the session-graph
/// node count n the compiled plan is specialised on.
int64_t UniqueItems(const std::vector<int64_t>& window) {
  std::vector<int64_t> sorted = window;
  std::sort(sorted.begin(), sorted.end());
  return std::distance(sorted.begin(),
                       std::unique(sorted.begin(), sorted.end()));
}

}  // namespace

const tensor::ExecutionPlan* SessionModel::PlanFor(
    const ExecOptions& options, const std::vector<int64_t>& window) const {
  if (options.plan != ExecPlanKind::kArena) return nullptr;
  return &CompiledPlan(EffectiveMode(options),
                       static_cast<int64_t>(window.size()),
                       UniqueItems(window));
}

Result<Recommendation> SessionModel::RecommendBody(
    const std::vector<int64_t>& window) const {
  const tensor::Tensor query = EncodeSession(window);
  ETUDE_CHECK(query.rank() == 1 && query.dim(0) == config_.embedding_dim)
      << "EncodeSession must return a [d] vector";
  const tensor::TopKResult top =
      retriever_.has_value()
          ? retriever_->Retrieve(query, config_.top_k)
          : tensor::Mips(item_embeddings_, query, config_.top_k);
  Recommendation rec;
  rec.items = top.indices;
  rec.scores = top.scores;
  return rec;
}

Result<Recommendation> SessionModel::Recommend(
    const std::vector<int64_t>& session, const ExecOptions& options) const {
  if (!config_.materialize_embeddings) {
    return Status::FailedPrecondition(
        "model was created cost-only (materialize_embeddings = false)");
  }
  ETUDE_RETURN_NOT_OK(ValidateSession(session, config_));
  // RecBole truncates long sessions to the most recent max_session_length
  // interactions.
  std::vector<int64_t> window = session;
  if (static_cast<int64_t>(window.size()) > config_.max_session_length) {
    window.assign(window.end() - config_.max_session_length, window.end());
  }
  const tensor::ExecutionPlan* plan = PlanFor(options, window);
  // The fused-kernel dispatch flag and the arena script stay active for
  // exactly the ops the plan was compiled from: encode plus scoring.
  const tensor::exec::ScopedJitDispatch dispatch(
      EffectiveMode(options) == ExecutionMode::kJit);
  std::optional<tensor::exec::ScopedArena> arena;
  if (plan != nullptr) arena.emplace(&plan->arena);
  return RecommendBody(window);
}

Result<std::vector<Recommendation>> SessionModel::RecommendBatch(
    const std::vector<std::vector<int64_t>>& sessions,
    const ExecOptions& options) const {
  if (!config_.materialize_embeddings) {
    return Status::FailedPrecondition(
        "model was created cost-only (materialize_embeddings = false)");
  }
  if (sessions.empty()) {
    return Status::InvalidArgument("batch must contain at least one session");
  }
  std::vector<std::vector<int64_t>> windows(sessions.size());
  for (size_t i = 0; i < sessions.size(); ++i) {
    ETUDE_RETURN_NOT_OK(ValidateSession(sessions[i], config_));
    windows[i] = sessions[i];
    if (static_cast<int64_t>(windows[i].size()) > config_.max_session_length) {
      windows[i].assign(windows[i].end() - config_.max_session_length,
                        windows[i].end());
    }
  }
  // Sessions sharing a compiled-plan shape key (length, unique items)
  // execute under one batched plan; the plan is specialised on both.
  std::map<std::pair<int64_t, int64_t>, std::vector<size_t>> groups;
  for (size_t i = 0; i < windows.size(); ++i) {
    groups[{static_cast<int64_t>(windows[i].size()), UniqueItems(windows[i])}]
        .push_back(i);
  }
  std::vector<Recommendation> out(sessions.size());
  for (const auto& [shape, members] : groups) {
    const int64_t l = shape.first;
    const int64_t b = static_cast<int64_t>(members.size());
    const tensor::ExecutionPlan* plan =
        options.plan == ExecPlanKind::kArena
            ? &CompiledBatchedPlan(EffectiveMode(options), l, shape.second, b)
            : nullptr;
    const tensor::exec::ScopedJitDispatch dispatch(
        EffectiveMode(options) == ExecutionMode::kJit);
    std::optional<tensor::exec::ScopedArena> arena;
    if (plan != nullptr) arena.emplace(&plan->arena);
    // Mirrors the batched plan's boundary nodes exactly: the [B, L]
    // padded-id matrix is the first allocation, then each session's body
    // runs as one batch-loop iteration, then the per-session scores are
    // gathered into the [B, k] response.
    tensor::Tensor batch_ids({b, l});
    for (size_t s = 0; s < members.size(); ++s) {
      for (int64_t j = 0; j < l; ++j) {
        batch_ids.at(static_cast<int64_t>(s), j) =
            static_cast<float>(windows[members[s]][j]);
      }
    }
    for (const size_t member : members) {
      ETUDE_ASSIGN_OR_RETURN(out[member], RecommendBody(windows[member]));
    }
    tensor::Tensor batch_scores({b, config_.top_k});
    for (size_t s = 0; s < members.size(); ++s) {
      const std::vector<float>& scores = out[members[s]].scores;
      for (size_t j = 0; j < scores.size(); ++j) {
        batch_scores.at(static_cast<int64_t>(s),
                        static_cast<int64_t>(j)) = scores[j];
      }
    }
  }
  return out;
}

Status SessionModel::ConfigureRetrieval(const ann::RetrievalConfig& config) {
  if (config.backend != ann::RetrievalBackend::kExact &&
      !supports_retrieval()) {
    return Status::InvalidArgument(
        std::string(name()) +
        " scores the full dense catalog distribution; only the 'exact' "
        "retrieval backend applies");
  }
  retriever_.reset();
  retrieval_config_ = config;
  if (config.backend != ann::RetrievalBackend::kExact &&
      config_.materialize_embeddings) {
    ETUDE_ASSIGN_OR_RETURN(ann::Retriever retriever,
                           ann::Retriever::Build(item_embeddings_, config));
    retriever_.emplace(std::move(retriever));
  }
  return Status::OK();
}

tensor::SymTensor SessionModel::TraceEmbeddingTable(
    tensor::ShapeChecker& checker) const {
  return checker.Input("item_embeddings",
                       {tensor::sym::C(), tensor::sym::d()});
}

tensor::SymTensor SessionModel::TraceScoring(
    tensor::ShapeChecker& checker, const tensor::SymTensor& encoded) const {
  checker.SetContext(std::string(name()) + " scoring");
  const tensor::SymTensor table = TraceEmbeddingTable(checker);
  return checker.Mips(table, encoded, tensor::sym::k());
}

tensor::SymTensor SessionModel::TraceRecommendBody(
    tensor::ShapeChecker& checker, ExecutionMode mode) const {
  checker.BeginEncodePhase();
  checker.PushScope();  // EncodeSession body
  checker.SetContext(std::string(name()) + " encoder");
  const tensor::SymTensor encoded = TraceEncode(checker, mode);
  checker.PopScope();
  checker.SetContext(std::string(name()) + " encoder output");
  checker.Require(encoded, {tensor::sym::d()},
                  "EncodeSession must produce a [d] session vector");
  checker.BeginScorePhase();
  checker.SetContext("");
  const tensor::SymTensor scores = TraceScoring(checker, encoded);
  checker.SetContext(std::string(name()) + " scoring output");
  checker.Require(scores, {tensor::sym::k()},
                  "scoring must produce a [k] recommendation list");
  return scores;
}

void SessionModel::TraceRecommend(tensor::ShapeChecker& checker,
                                  ExecutionMode mode) const {
  checker.MarkOutput(TraceRecommendBody(checker, mode));
}

void SessionModel::TraceBatchedRecommend(tensor::ShapeChecker& checker,
                                         ExecutionMode mode) const {
  namespace sym = tensor::sym;
  checker.BeginEncodePhase();
  // Boundary: the padded [B, L] id matrix the batch loop reads.
  checker.SetContext(std::string(name()) + " batch input");
  const tensor::SymTensor batch_ids =
      checker.Materialize("batched session ids", {sym::B(), sym::L()}, {});
  checker.BeginBatch(sym::B());
  const tensor::SymTensor scores = TraceRecommendBody(checker, mode);
  checker.EndBatch();
  // Boundary: the per-session [k] results gathered into the [B, k]
  // response (consuming the id matrix keeps the dataflow honest for the
  // dead-op pass).
  checker.SetContext(std::string(name()) + " batch output");
  const tensor::SymTensor out = checker.Materialize(
      "batched scores", {sym::B(), sym::k()}, {&scores, &batch_ids});
  checker.MarkOutput(out);
}

Status SessionModel::CheckShapes(ExecutionMode mode) const {
  tensor::ShapeChecker checker;
  TraceRecommend(checker, mode);
  if (!checker.ok()) {
    return Status::InvalidArgument(
        "op-graph shape lint failed for " + std::string(name()) + " (" +
        (mode == ExecutionMode::kJit ? "jit" : "eager") + "):\n" +
        checker.Report());
  }
  return Status::OK();
}

tensor::PlanGraph SessionModel::BuildPlan(ExecutionMode mode) const {
  tensor::ShapeChecker checker;
  TraceRecommend(checker, mode);
  ETUDE_CHECK(checker.ok()) << "BuildPlan on a graph with shape violations "
                               "for "
                            << name() << ":\n"
                            << checker.Report();
  return checker.plan();
}

tensor::PlanGraph SessionModel::BuildBatchedPlan(ExecutionMode mode) const {
  tensor::ShapeChecker checker;
  TraceBatchedRecommend(checker, mode);
  ETUDE_CHECK(checker.ok())
      << "BuildBatchedPlan on a graph with shape violations for " << name()
      << ":\n"
      << checker.Report();
  return checker.plan();
}

tensor::Bindings SessionModel::PlanBindings(int64_t session_length) const {
  const int64_t l = std::min(std::max<int64_t>(session_length, 1),
                             config_.max_session_length);
  tensor::Bindings bindings;
  bindings["C"] = static_cast<double>(config_.catalog_size);
  bindings["d"] = static_cast<double>(config_.embedding_dim);
  bindings["k"] = static_cast<double>(config_.top_k);
  bindings["L"] = static_cast<double>(l);
  // Worst case for the session-graph node count (n <= L; tests bind the
  // true unique-item count instead).
  bindings["n"] = static_cast<double>(l);
  bindings["lgk"] =
      std::log2(std::max(static_cast<double>(config_.top_k), 2.0));
  bindings["max_len"] = static_cast<double>(config_.max_session_length);
  // Unbatched plans carry no B symbol; batched callers override this.
  bindings["B"] = 1.0;
  AddPlanBindings(l, bindings);
  return bindings;
}

const tensor::ExecutionPlan& SessionModel::CompiledPlan(
    ExecutionMode mode, int64_t session_length, int64_t unique_items) const {
  const int64_t l = std::min(std::max<int64_t>(session_length, 1),
                             config_.max_session_length);
  const int64_t n = std::min(std::max<int64_t>(unique_items, 1), l);
  const std::tuple<int, int64_t, int64_t, int64_t> key(
      mode == ExecutionMode::kJit ? 1 : 0, l, n, 0);
  MutexLock lock(exec_plan_mutex_);
  std::unique_ptr<tensor::ExecutionPlan>& slot = exec_plans_[key];
  if (slot == nullptr) {
    tensor::Bindings bindings = PlanBindings(l);
    bindings["n"] = static_cast<double>(n);  // the true node count
    slot = std::make_unique<tensor::ExecutionPlan>(
        tensor::CompileExecutionPlan(BuildPlan(mode), bindings));
  }
  return *slot;
}

const tensor::ExecutionPlan& SessionModel::CompiledBatchedPlan(
    ExecutionMode mode, int64_t session_length, int64_t unique_items,
    int64_t batch) const {
  const int64_t l = std::min(std::max<int64_t>(session_length, 1),
                             config_.max_session_length);
  const int64_t n = std::min(std::max<int64_t>(unique_items, 1), l);
  const int64_t b = std::max<int64_t>(batch, 1);
  const std::tuple<int, int64_t, int64_t, int64_t> key(
      mode == ExecutionMode::kJit ? 1 : 0, l, n, b);
  MutexLock lock(exec_plan_mutex_);
  std::unique_ptr<tensor::ExecutionPlan>& slot = exec_plans_[key];
  if (slot == nullptr) {
    tensor::Bindings bindings = PlanBindings(l);
    bindings["n"] = static_cast<double>(n);  // the true node count
    bindings["B"] = static_cast<double>(b);
    slot = std::make_unique<tensor::ExecutionPlan>(
        tensor::CompileExecutionPlan(BuildBatchedPlan(mode), bindings));
  }
  return *slot;
}

const tensor::CostSummary& SessionModel::PlanCost(ExecutionMode mode) const {
  const int idx = mode == ExecutionMode::kJit ? 1 : 0;
  MutexLock lock(plan_cost_mutex_);
  if (plan_cost_[idx] == nullptr) {
    const tensor::PlanGraph plan = BuildPlan(mode);
    plan_cost_[idx] =
        std::make_unique<tensor::CostSummary>(tensor::AnalyzeCost(plan));
  }
  return *plan_cost_[idx];
}

const tensor::BatchedCostSummary& SessionModel::PlanBatchCost(
    ExecutionMode mode) const {
  const int idx = mode == ExecutionMode::kJit ? 1 : 0;
  MutexLock lock(plan_cost_mutex_);
  if (plan_batch_cost_[idx] == nullptr) {
    const tensor::PlanGraph plan = BuildBatchedPlan(mode);
    plan_batch_cost_[idx] = std::make_unique<tensor::BatchedCostSummary>(
        tensor::AnalyzeBatchedCost(plan));
  }
  return *plan_batch_cost_[idx];
}

void SessionModel::ScaleScanForRetrieval(sim::InferenceWork& work) const {
  if (retrieval_config_.backend == ann::RetrievalBackend::kExact) return;
  // The plan IR's scoring polynomials describe the exact fp32 scan.
  // Ratio-scale them by the configured backend's analytic cost relative
  // to exact, so the simulator prices the approximate scan without the
  // plan itself (and its golden report) changing.
  const ann::RetrievalCost exact = ann::EstimateRetrievalCost(
      ann::RetrievalConfig{}, config_.catalog_size, config_.embedding_dim);
  const ann::RetrievalCost approx = ann::EstimateRetrievalCost(
      retrieval_config_, config_.catalog_size, config_.embedding_dim);
  if (exact.scan_flops > 0) {
    work.scan_flops *= approx.scan_flops / exact.scan_flops;
  }
  if (exact.scan_bytes > 0) {
    work.scan_bytes *= approx.scan_bytes / exact.scan_bytes;
  }
}

sim::InferenceWork SessionModel::CostModel(ExecutionMode mode,
                                           int64_t session_length) const {
  const tensor::CostSummary& cost = PlanCost(mode);
  const tensor::Bindings bindings = PlanBindings(session_length);
  const int64_t l = std::min(std::max<int64_t>(session_length, 1),
                             config_.max_session_length);

  const ModelCalibration& cal = GetCalibration(kind());
  sim::InferenceWork work;
  // The encode/scan split evaluates the plan IR's symbolic cost
  // polynomials at this request's concrete config — the same figures the
  // runtime's op spans report (cross-checked in tests). The scan phase is
  // the paper's O(C(d + log k)) term (plus RepeatNet's dense [C] tail).
  work.encode_flops = cost.encode_flops.Eval(bindings);
  work.encode_bytes = cost.encode_traffic_bytes.Eval(bindings);
  work.scan_flops = cost.score_flops.Eval(bindings);
  work.scan_bytes = cost.score_traffic_bytes.Eval(bindings);
  ScaleScanForRetrieval(work);
  work.op_count = static_cast<int>(OpCount(l));
  work.jit_compiled = (mode == ExecutionMode::kJit) && jit_compatible();
  work.host_sync_points = cal.host_sync_points;
  work.host_compute_us = cal.host_compute_us;
  work.batch_share = cal.batch_share;
  work.cpu_efficiency = cal.cpu_efficiency;
  work.t4_efficiency = cal.t4_efficiency;
  work.a100_efficiency = cal.a100_efficiency;
  return work;
}

sim::InferenceWork SessionModel::BatchedCostModel(ExecutionMode mode,
                                                  int64_t session_length,
                                                  int64_t batch) const {
  const tensor::BatchedCostSummary& cost = PlanBatchCost(mode);
  const int64_t b = std::max<int64_t>(batch, 1);
  tensor::Bindings bindings = PlanBindings(session_length);
  bindings["B"] = static_cast<double>(b);
  const int64_t l = std::min(std::max<int64_t>(session_length, 1),
                             config_.max_session_length);

  const ModelCalibration& cal = GetCalibration(kind());
  sim::InferenceWork work;
  // Whole-batch figures: FLOPs scale with B; encode traffic is the
  // once-per-batch amortized weight bytes plus B per-session shares; the
  // catalog scan never amortizes (one scan per query).
  work.encode_flops = cost.encode_flops.Eval(bindings);
  work.encode_bytes = (cost.amortized_bytes + cost.marginal_encode_bytes)
                          .Eval(bindings);
  work.scan_flops = cost.score_flops.Eval(bindings);
  work.scan_bytes = cost.marginal_score_bytes.Eval(bindings);
  ScaleScanForRetrieval(work);
  // Dispatch and host-synchronisation counts are per session: batching
  // amortizes memory traffic, not the framework's op overhead.
  work.op_count = static_cast<int>(OpCount(l) * b);
  work.jit_compiled = (mode == ExecutionMode::kJit) && jit_compatible();
  work.host_sync_points = cal.host_sync_points * static_cast<int>(b);
  work.host_compute_us = cal.host_compute_us * static_cast<double>(b);
  work.batch_share = cal.batch_share;
  work.cpu_efficiency = cal.cpu_efficiency;
  work.t4_efficiency = cal.t4_efficiency;
  work.a100_efficiency = cal.a100_efficiency;
  return work;
}

}  // namespace etude::models

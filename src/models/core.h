#ifndef ETUDE_MODELS_CORE_H_
#define ETUDE_MODELS_CORE_H_

#include <vector>

#include "models/layers.h"
#include "models/session_model.h"

namespace etude::models {

/// CORE (Hou et al., SIGIR 2022): consistent representation space.
/// A transformer encoder produces per-position weights; the session
/// representation is the weighted sum of the *item embeddings themselves*
/// (not hidden states), keeping the session in the same space as the
/// items. Scoring uses cosine similarity with temperature over an
/// L2-normalised item table, folded into the shared MIPS scan by scaling
/// the normalised query with 1/tau at encode time.
class Core final : public SessionModel {
 public:
  static constexpr int kNumLayers = 2;
  static constexpr float kTemperature = 0.07f;

  explicit Core(const ModelConfig& config);

  ModelKind kind() const override { return ModelKind::kCore; }

  tensor::Tensor EncodeSession(
      const std::vector<int64_t>& session) const override;

 protected:
  tensor::SymTensor TraceEncode(tensor::ShapeChecker& checker,
                                ExecutionMode mode) const override;
  int64_t OpCount(int64_t l) const override;

 private:
  PositionalEmbedding positions_;
  std::vector<TransformerBlock> blocks_;
  DenseLayer weight_head_;  // [1, d]: per-position weight logits
};

}  // namespace etude::models

#endif  // ETUDE_MODELS_CORE_H_

#ifndef ETUDE_MODELS_CALIBRATION_H_
#define ETUDE_MODELS_CALIBRATION_H_

#include "models/session_model.h"

namespace etude::models {

/// Per-model performance calibration for the deployment simulator.
///
/// Where the paper's findings have a concrete *mechanism* (RepeatNet's
/// dense ops over sparse catalog-sized tensors; SR-GNN's and GC-SAN's
/// NumPy-on-host inference steps; LightSANs' JIT incompatibility), that
/// mechanism is modelled structurally — see the per-model cost hooks and
/// `host_sync_points` below.
///
/// On top of that, each model carries empirical efficiency multipliers per
/// device family. We cannot run the authors' GPUs, so these constants are
/// calibrated against the paper's *published measurements* (Fig. 3, Fig. 4
/// and Table I): e.g. SASRec and STAMP are the two models the paper found
/// cheap enough to serve the Fashion scenario from CPUs, and CORE and
/// SASRec are the two models that could not handle the Platform scenario
/// on A100s. The Table-I pass/fail matrix is never asserted — it emerges
/// from the queueing simulation under these constants.
struct ModelCalibration {
  double cpu_efficiency = 1.0;   // multiplier on CPU device time
  double t4_efficiency = 1.0;    // multiplier on GPU-T4 device time
  double a100_efficiency = 1.0;  // multiplier on GPU-A100 device time
  // Fraction of device work not amortised by request batching (see
  // sim::InferenceWork::batch_share). RepeatNet's per-request dense
  // catalog-sized tensors make most of its work unbatchable.
  double batch_share = 0.06;
  // Synchronous host round trips per request (NumPy ops in the inference
  // function — SR-GNN / GC-SAN bug reported by the paper).
  int host_sync_points = 0;
  double host_compute_us = 0.0;  // host-side work per sync point
};

/// Returns the calibration constants for `kind`.
const ModelCalibration& GetCalibration(ModelKind kind);

}  // namespace etude::models

#endif  // ETUDE_MODELS_CALIBRATION_H_

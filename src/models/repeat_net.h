#ifndef ETUDE_MODELS_REPEAT_NET_H_
#define ETUDE_MODELS_REPEAT_NET_H_

#include <vector>

#include "models/layers.h"
#include "models/session_model.h"

namespace etude::models {

/// RepeatNet (Ren et al., AAAI 2019): an encoder-decoder with a
/// repeat-explore mechanism. A GRU encodes the session; a mode gate
/// predicts whether the next click repeats an earlier session item or
/// explores the catalog; a repeat decoder scores the session items and an
/// explore decoder scores the whole catalog; the two distributions are
/// mixed by the mode probabilities.
///
/// Faithful to the RecBole implementation — including its performance bug
/// (paper, Sec. III-C): the repeat distribution, which has at most l
/// non-zero entries, is materialised as a *dense* catalog-sized vector via
/// a one-hot [l, C] matrix multiplication, and the explore distribution is
/// a dense softmax over all C scores. RecommendBody() is overridden to
/// execute exactly this mixture.
class RepeatNet final : public SessionModel {
 public:
  explicit RepeatNet(const ModelConfig& config);

  ModelKind kind() const override { return ModelKind::kRepeatNet; }

  /// The repeat/explore mixture is computed over the full dense [C]
  /// distribution (including the one-hot expansion bug), so a top-k
  /// retrieval shortlist cannot replace its scoring tail.
  bool supports_retrieval() const override { return false; }

  /// The explore-decoder query (used when RepeatNet is driven through the
  /// generic encode-then-MIPS path, e.g. in shape tests).
  tensor::Tensor EncodeSession(
      const std::vector<int64_t>& session) const override;

 protected:
  /// The repeat/explore mixture, executed end to end on an already
  /// truncated window (the base Recommend/RecommendBatch set up
  /// validation, dispatch mode and the arena): the GRU encoder feeds the
  /// mode gate and both decoders without re-encoding, and the scoring
  /// tail is the dense mixture — including the one-hot [L, C] expansion
  /// bug — instead of the generic MIPS.
  Result<Recommendation> RecommendBody(
      const std::vector<int64_t>& window) const override;

  /// Symbolic replay of RecommendBody's op sequence end to end.
  tensor::SymTensor TraceRecommendBody(tensor::ShapeChecker& checker,
                                       ExecutionMode mode) const override;
  tensor::SymTensor TraceEncode(tensor::ShapeChecker& checker,
                                ExecutionMode mode) const override;
  int64_t OpCount(int64_t l) const override;

 private:
  /// Attention-pooled session context from the GRU states.
  tensor::Tensor PoolContext(const tensor::Tensor& states) const;
  /// Symbolic mirror of PoolContext: states [L, d] -> context [d].
  tensor::SymTensor TracePoolContext(tensor::ShapeChecker& checker,
                                     const tensor::SymTensor& states) const;

  GruLayer gru_;
  DenseLayer mode_gate_;      // [2, 2d]: p(repeat), p(explore)
  DenseLayer repeat_attn_;    // [d, d]
  tensor::Tensor repeat_q_;   // [d]
  DenseLayer explore_head_;   // [d, 2d]
  DenseLayer context_attn_;   // [d, d]
  tensor::Tensor context_q_;  // [d]
};

}  // namespace etude::models

#endif  // ETUDE_MODELS_REPEAT_NET_H_

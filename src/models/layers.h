#ifndef ETUDE_MODELS_LAYERS_H_
#define ETUDE_MODELS_LAYERS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/shape_check.h"
#include "tensor/tensor.h"

namespace etude::models {

/// Reusable neural layers shared by the ten SBR architectures. All layers
/// operate on single sessions (no batch dimension): inference serving in
/// ETUDE encodes one session per request; GPU batching is handled at the
/// serving layer.

/// A single-layer GRU with PyTorch weight layout (gates r,z,n).
class GruLayer {
 public:
  /// Creates a GRU mapping `input_dim` inputs to `hidden_dim` state.
  GruLayer(int64_t input_dim, int64_t hidden_dim, Rng* rng);

  /// Runs the GRU over a [l, input_dim] sequence starting from a zero
  /// state; returns all hidden states as [l, hidden_dim].
  tensor::Tensor RunSequence(const tensor::Tensor& inputs) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t input_dim_;
  int64_t hidden_dim_;
  tensor::Tensor w_ih_;  // [3h, in]
  tensor::Tensor w_hh_;  // [3h, h]
  tensor::Tensor b_ih_;  // [3h]
  tensor::Tensor b_hh_;  // [3h]
};

/// A dense layer y = x W^T + b with Xavier-initialised weights.
class DenseLayer {
 public:
  DenseLayer(int64_t input_dim, int64_t output_dim, bool bias, Rng* rng);

  /// x: [n, input_dim] -> [n, output_dim].
  tensor::Tensor Forward(const tensor::Tensor& x) const;

  /// x: [input_dim] -> [output_dim].
  tensor::Tensor ForwardVector(const tensor::Tensor& x) const;

 private:
  tensor::Tensor weight_;  // [out, in]
  tensor::Tensor bias_;    // [out] or empty
};

/// A pre-norm-free (post-norm, as in the original Transformer and RecBole)
/// single-head self-attention block with a position-wise feed-forward
/// network: x -> LayerNorm(x + SelfAttn(x)) -> LayerNorm(h + FFN(h)).
class TransformerBlock {
 public:
  TransformerBlock(int64_t dim, int64_t ffn_dim, Rng* rng);

  /// x: [l, dim] -> [l, dim].
  tensor::Tensor Forward(const tensor::Tensor& x) const;

 private:
  DenseLayer wq_, wk_, wv_, wo_;
  DenseLayer ffn1_, ffn2_;
  tensor::Tensor norm1_gain_, norm1_bias_;
  tensor::Tensor norm2_gain_, norm2_bias_;
};

/// Learned positional embeddings added to the item embeddings of a
/// session, as used by the transformer-based models.
class PositionalEmbedding {
 public:
  PositionalEmbedding(int64_t max_length, int64_t dim, Rng* rng);

  /// x: [l, dim] -> [l, dim] with position rows added (l <= max_length).
  tensor::Tensor AddTo(const tensor::Tensor& x) const;

 private:
  tensor::Tensor table_;  // [max_length, dim]
};

/// Symbolic mirrors of the layer forward passes, used by the shape linter
/// (SessionModel::TraceEncode). Each helper replays the exact op sequence
/// of the corresponding Forward on symbolic shapes, parameterised by the
/// symbolic dims the layer was constructed with.
namespace trace {

/// DenseLayer::Forward: x [n, in] -> [n, out].
tensor::SymTensor Dense(tensor::ShapeChecker& checker,
                        const tensor::SymTensor& x, const tensor::SymDim& in,
                        const tensor::SymDim& out, bool bias);

/// DenseLayer::ForwardVector: x [in] -> [out].
tensor::SymTensor DenseVector(tensor::ShapeChecker& checker,
                              const tensor::SymTensor& x,
                              const tensor::SymDim& in,
                              const tensor::SymDim& out, bool bias);

/// GruLayer::RunSequence: inputs [len, in] -> states [len, hidden].
tensor::SymTensor Gru(tensor::ShapeChecker& checker,
                      const tensor::SymTensor& inputs,
                      const tensor::SymDim& in, const tensor::SymDim& hidden);

/// TransformerBlock::Forward: x [len, dim] -> [len, dim]. `fused` traces
/// the JIT-dispatch variant, whose residual joins are single AddLayerNorm
/// nodes instead of Add + LayerNorm pairs (the chains the fusion-legality
/// pass in tensor/plan_exec.h proves safe).
tensor::SymTensor Transformer(tensor::ShapeChecker& checker,
                              const tensor::SymTensor& x,
                              const tensor::SymDim& dim,
                              const tensor::SymDim& ffn_dim,
                              bool fused = false);

/// PositionalEmbedding::AddTo: x [len, dim] -> [len, dim].
tensor::SymTensor PositionalAdd(tensor::ShapeChecker& checker,
                                const tensor::SymTensor& x,
                                const tensor::SymDim& dim);

}  // namespace trace

}  // namespace etude::models

#endif  // ETUDE_MODELS_LAYERS_H_

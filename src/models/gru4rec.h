#ifndef ETUDE_MODELS_GRU4REC_H_
#define ETUDE_MODELS_GRU4REC_H_

#include <vector>

#include "models/layers.h"
#include "models/session_model.h"

namespace etude::models {

/// GRU4Rec (Tan et al., DLRS 2016): a GRU over the session's item
/// embeddings with a dense head mapping the final hidden state back into
/// the item-embedding space; recommendation scores are inner products with
/// all item embeddings.
class Gru4Rec final : public SessionModel {
 public:
  explicit Gru4Rec(const ModelConfig& config);

  ModelKind kind() const override { return ModelKind::kGru4Rec; }

  tensor::Tensor EncodeSession(
      const std::vector<int64_t>& session) const override;

 protected:
  tensor::SymTensor TraceEncode(tensor::ShapeChecker& checker,
                                ExecutionMode mode) const override;
  int64_t OpCount(int64_t l) const override;

 private:
  GruLayer gru_;
  DenseLayer head_;
};

}  // namespace etude::models

#endif  // ETUDE_MODELS_GRU4REC_H_

#ifndef ETUDE_MODELS_GC_SAN_H_
#define ETUDE_MODELS_GC_SAN_H_

#include <vector>

#include "models/layers.h"
#include "models/sr_gnn.h"

namespace etude::models {

/// GC-SAN (Xu et al., IJCAI 2019): graph contextualised self-attention.
/// The session graph is encoded with the same gated GNN as SR-GNN; the
/// node states are then mapped back to the click sequence and refined by a
/// stack of self-attention blocks. The final representation interpolates
/// between the attention output and the GNN state of the last click.
class GcSan final : public SrGnn {
 public:
  static constexpr int kAttentionLayers = 1;
  static constexpr float kBlend = 0.6f;  // RecBole's `weight` hyperparam

  explicit GcSan(const ModelConfig& config);

  ModelKind kind() const override { return ModelKind::kGcSan; }

  tensor::Tensor EncodeSession(
      const std::vector<int64_t>& session) const override;

 protected:
  tensor::SymTensor TraceEncode(tensor::ShapeChecker& checker,
                                ExecutionMode mode) const override;
  int64_t OpCount(int64_t l) const override;

 private:
  std::vector<TransformerBlock> blocks_;
};

}  // namespace etude::models

#endif  // ETUDE_MODELS_GC_SAN_H_

#ifndef ETUDE_MODELS_MODEL_FACTORY_H_
#define ETUDE_MODELS_MODEL_FACTORY_H_

#include <memory>

#include "common/status.h"
#include "models/session_model.h"

namespace etude::models {

/// Instantiates one of the ten SBR models with randomly initialised
/// weights — the equivalent of loading a serialised model into the
/// inference server. Returns InvalidArgument for inconsistent configs.
Result<std::unique_ptr<SessionModel>> CreateModel(ModelKind kind,
                                                  const ModelConfig& config);

/// Convenience overload resolving the model by its paper name
/// (e.g. "GRU4Rec", "sr-gnn").
Result<std::unique_ptr<SessionModel>> CreateModel(std::string_view name,
                                                  const ModelConfig& config);

}  // namespace etude::models

#endif  // ETUDE_MODELS_MODEL_FACTORY_H_

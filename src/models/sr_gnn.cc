#include "models/sr_gnn.h"

#include <cmath>

#include "tensor/init.h"
#include "tensor/ops.h"

namespace etude::models {

using tensor::Tensor;

SrGnn::SrGnn(const ModelConfig& config)
    : SessionModel(config),
      w_in_(config_.embedding_dim, config_.embedding_dim, true, &rng_),
      w_out_(config_.embedding_dim, config_.embedding_dim, true, &rng_),
      gate_input_(2 * config_.embedding_dim, 3 * config_.embedding_dim,
                  true, &rng_),
      gate_hidden_(config_.embedding_dim, 3 * config_.embedding_dim, true,
                   &rng_),
      attn_last_(config_.embedding_dim, config_.embedding_dim, false, &rng_),
      attn_node_(config_.embedding_dim, config_.embedding_dim, false, &rng_),
      attn_q_(tensor::XavierUniform({config_.embedding_dim}, &rng_)),
      head_(2 * config_.embedding_dim, config_.embedding_dim, false, &rng_) {}

Tensor SrGnn::EncodeGraph(const SessionGraph& graph) const {
  const int64_t n = graph.num_nodes(), d = config_.embedding_dim;
  Tensor states = tensor::Embedding(item_embeddings_, graph.nodes);
  for (int step = 0; step < kPropagationSteps; ++step) {
    // Messages along both edge directions.
    const Tensor msg_in =
        tensor::MatMul(graph.adj_in, w_in_.Forward(states));    // [n, d]
    const Tensor msg_out =
        tensor::MatMul(graph.adj_out, w_out_.Forward(states));  // [n, d]
    const Tensor messages = tensor::Concat(msg_in, msg_out);    // [n, 2d]
    // GRU-style gated update per node.
    const Tensor gi = gate_input_.Forward(messages);   // [n, 3d]
    const Tensor gh = gate_hidden_.Forward(states);    // [n, 3d]
    Tensor next({n, d});
    for (int64_t v = 0; v < n; ++v) {
      for (int64_t j = 0; j < d; ++j) {
        const float r = 1.0f / (1.0f + std::exp(-(gi.at(v, j) +
                                                  gh.at(v, j))));
        const float z = 1.0f / (1.0f + std::exp(-(gi.at(v, d + j) +
                                                  gh.at(v, d + j))));
        const float cand = std::tanh(gi.at(v, 2 * d + j) +
                                     r * gh.at(v, 2 * d + j));
        next.at(v, j) = (1.0f - z) * cand + z * states.at(v, j);
      }
    }
    states = std::move(next);
  }
  return states;
}

Tensor SrGnn::EncodeSession(const std::vector<int64_t>& session) const {
  const SessionGraph graph = SessionGraph::Build(session);
  const Tensor states = EncodeGraph(graph);
  const int64_t n = graph.num_nodes(), d = config_.embedding_dim;
  const Tensor last = states.Row(graph.alias.back());

  // Attention readout: alpha_v = q^T sigmoid(W1 v_last + W2 v).
  const Tensor proj_last = attn_last_.ForwardVector(last);
  const Tensor proj_nodes = attn_node_.Forward(states);  // [n, d]
  const bool fused = tensor::exec::JitDispatchEnabled();
  Tensor global({d});
  for (int64_t v = 0; v < n; ++v) {
    // JIT dispatch fuses the gate's Sigmoid(Add(...)) chain into one
    // kernel (bit-identical; proved safe by the fusion-legality pass).
    const Tensor gate =
        fused ? tensor::AddSigmoid(proj_last, proj_nodes.Row(v))
              : tensor::Sigmoid(tensor::Add(proj_last, proj_nodes.Row(v)));
    const float alpha = tensor::Dot(attn_q_, gate);
    for (int64_t j = 0; j < d; ++j) global[j] += alpha * states.at(v, j);
  }
  return head_.ForwardVector(tensor::Concat(last, global));
}

tensor::SymTensor SrGnn::TraceGraphEncode(
    tensor::ShapeChecker& checker) const {
  namespace sym = tensor::sym;
  // SessionGraph::Build fills the normalised adjacency matrices with
  // manual loops: the [n, n] edge-count scratch dies when Build returns,
  // the two adjacency matrices live on through the propagation steps.
  checker.PushScope();
  const tensor::SymTensor counts =
      checker.Materialize("graph.counts", {sym::n(), sym::n()}, {});
  const tensor::SymTensor adj_out =
      checker.Materialize("graph.adj_out", {sym::n(), sym::n()}, {&counts});
  const tensor::SymTensor adj_in =
      checker.Materialize("graph.adj_in", {sym::n(), sym::n()}, {&counts});
  checker.PopScope();
  tensor::SymTensor states =
      checker.Embedding(TraceEmbeddingTable(checker), sym::n());  // [n, d]
  for (int step = 0; step < kPropagationSteps; ++step) {
    checker.PushScope();
    const tensor::SymTensor msg_in = checker.MatMul(
        adj_in,
        trace::Dense(checker, states, sym::d(), sym::d(), /*bias=*/true));
    const tensor::SymTensor msg_out = checker.MatMul(
        adj_out,
        trace::Dense(checker, states, sym::d(), sym::d(), /*bias=*/true));
    const tensor::SymTensor messages =
        checker.Concat(msg_in, msg_out);  // [n, 2d]
    const tensor::SymTensor gi = trace::Dense(
        checker, messages, sym::d() * 2, sym::d() * 3, /*bias=*/true);
    const tensor::SymTensor gh = trace::Dense(
        checker, states, sym::d(), sym::d() * 3, /*bias=*/true);
    states = checker.GatedUpdate(gi, gh, states);
    checker.PopScope();
  }
  return states;
}

tensor::SymTensor SrGnn::TraceEncode(tensor::ShapeChecker& checker,
                                     ExecutionMode mode) const {
  namespace sym = tensor::sym;
  const bool fused = mode == ExecutionMode::kJit;
  const tensor::SymTensor states = TraceGraphEncode(checker);  // [n, d]
  const tensor::SymTensor last = checker.Row(states);          // [d]
  // Attention readout: alpha_v = q^T sigmoid(W1 v_last + W2 v), with the
  // alpha-weighted sum of node states accumulated into a preallocated
  // [d] vector by a manual loop.
  const tensor::SymTensor proj_last =
      trace::DenseVector(checker, last, sym::d(), sym::d(), /*bias=*/false);
  const tensor::SymTensor proj_nodes =
      trace::Dense(checker, states, sym::d(), sym::d(), /*bias=*/false);
  const tensor::SymTensor attn_q = checker.Input("srgnn.attn_q", {sym::d()});
  const tensor::SymTensor global =
      checker.Materialize("srgnn.global", {sym::d()}, {});
  checker.BeginRepeat(sym::n());
  const tensor::SymTensor gate =
      fused ? checker.AddSigmoid(proj_last, checker.Row(proj_nodes))
            : checker.Sigmoid(
                  checker.Add(proj_last, checker.Row(proj_nodes)));
  const tensor::SymTensor alpha = checker.Dot(attn_q, gate);
  checker.EndRepeat();
  checker.Link(global, alpha);
  checker.Link(global, states);
  return trace::DenseVector(checker, checker.Concat(last, global),
                            sym::d() * 2, sym::d(), /*bias=*/false);
}

int64_t SrGnn::OpCount(int64_t l) const {
  (void)l;
  // Graph construction, per-step GNN ops and the attention readout.
  return 40;
}

}  // namespace etude::models

#ifndef ETUDE_MODELS_SESSION_MODEL_H_
#define ETUDE_MODELS_SESSION_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <map>
#include <optional>
#include <tuple>

#include "ann/retriever.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "sim/device.h"
#include "tensor/plan_analysis.h"
#include "tensor/plan_exec.h"
#include "tensor/plan_ir.h"
#include "tensor/shape_check.h"
#include "tensor/tensor.h"

namespace etude::models {

/// The ten neural SBR architectures evaluated in the paper (Sec. II,
/// "Supported models"), as implemented in the RecBole library.
enum class ModelKind {
  kGru4Rec,    // RNN: GRU with gating for long-term dependencies
  kRepeatNet,  // RNN: encoder-decoder with repeat-explore mechanism
  kGcSan,      // GNN: graph contextualised self-attention
  kSrGnn,      // GNN: gated graph neural network over session graph
  kNarm,       // attention: hybrid encoder with attention
  kSine,       // attention: sparse-interest embeddings
  kStamp,      // attention: short-term attention/memory priority
  kLightSans,  // transformer: low-rank decomposed self-attention
  kCore,       // transformer: consistent representation space
  kSasRec,     // transformer: self-attentive sequential recommendation
};

std::string_view ModelKindToString(ModelKind kind);
Result<ModelKind> ModelKindFromString(std::string_view name);

/// All ten kinds, in the paper's presentation order.
const std::vector<ModelKind>& AllModelKinds();

/// The six models with correct RecBole implementations, which the paper's
/// Table I reports on. (SR-GNN, GC-SAN, RepeatNet and LightSANs are
/// excluded there due to the implementation errors found in Sec. III.)
const std::vector<ModelKind>& HealthyModelKinds();

/// Execution mode of the deployed model: PyTorch eager, or the
/// JIT-optimised plan (torch.jit.optimize_for_inference). Models whose
/// implementation cannot be JIT-compiled (LightSANs, due to dynamic code
/// paths) silently fall back to eager — mirroring the paper's finding.
enum class ExecutionMode { kEager, kJit };

/// How the transient tensors of one Recommend call are allocated.
enum class ExecPlanKind {
  kMalloc,  ///< one heap allocation per tensor (the default)
  kArena,   ///< statically planned arena offsets (tensor/plan_exec.h):
            ///< Recommend compiles (and caches) an execution plan for the
            ///< session's shape and serves every transient buffer from a
            ///< pre-sized arena — zero per-op malloc on the hot path.
};

/// Execution options of one Recommend call. kJit additionally dispatches
/// the fused kernels the fusion-legality pass proved safe (bit-identical
/// results) and deduplicates the plan's CSE findings; models whose
/// implementation cannot be JIT-compiled fall back to eager dispatch.
struct ExecOptions {
  ExecutionMode mode = ExecutionMode::kEager;
  ExecPlanKind plan = ExecPlanKind::kMalloc;
};

/// Hyperparameters shared by all models. The embedding dimension follows
/// the paper's heuristic d = ceil(C^(1/4)) unless set explicitly.
struct ModelConfig {
  int64_t catalog_size = 10000;  // C
  int64_t embedding_dim = 0;     // d; 0 = use HeuristicEmbeddingDim(C)
  int64_t top_k = 21;            // number of items to recommend
  int64_t max_session_length = 50;
  uint64_t seed = 42;            // weight-initialisation seed
  // When false, the [C, d] item-embedding table is not allocated and the
  // model is usable for cost modelling only (Recommend fails with
  // FailedPrecondition). Deployment simulations at catalog sizes of tens
  // of millions of items use this to avoid multi-gigabyte allocations.
  bool materialize_embeddings = true;
};

/// The paper's embedding-size heuristic: round up the fourth root of the
/// catalog size.
int64_t HeuristicEmbeddingDim(int64_t catalog_size);

/// Ranked next-item recommendations for one session.
struct Recommendation {
  std::vector<int64_t> items;  // item ids, best first
  std::vector<float> scores;   // corresponding inner-product scores
};

/// Base class of all SBR models: owns the item-embedding table and the
/// shared maximum-inner-product search, and exposes the per-request cost
/// descriptor consumed by the deployment simulator.
///
/// Subclasses implement EncodeSession (the architecture-specific part) and
/// the analytic cost hooks. The numeric forward pass really executes on
/// the CPU tensor engine — `Recommend` returns genuine model output.
class SessionModel {
 public:
  virtual ~SessionModel() = default;

  SessionModel(const SessionModel&) = delete;
  SessionModel& operator=(const SessionModel&) = delete;

  virtual ModelKind kind() const = 0;
  std::string_view name() const { return ModelKindToString(kind()); }

  const ModelConfig& config() const { return config_; }

  /// Whether torch.jit can compile this implementation. LightSANs returns
  /// false (dynamic code paths, as found by the paper).
  virtual bool jit_compatible() const { return true; }

  /// Structural reason this implementation cannot be JIT-compiled; empty
  /// when jit_compatible() is true. Surfaced as a first-class diagnostic
  /// by `lint_models` and `etude profile` instead of a silent fallback.
  virtual std::string jit_incompatibility_reason() const { return ""; }

  /// Whether the scoring tail is the generic top-k MIPS over the item
  /// table, and can therefore be swapped for a quantised/ANN retrieval
  /// backend. RepeatNet returns false: its repeat/explore mixture needs
  /// the full dense score distribution, not a top-k shortlist.
  virtual bool supports_retrieval() const { return true; }

  /// Routes the scoring stage through `config.backend` (see
  /// ann/retriever.h). For a materialised model this builds the retrieval
  /// structure over the item table (IVF training included) and Recommend
  /// serves through it from then on; for a cost-only model the config is
  /// recorded and CostModel scales its scan figures analytically. Returns
  /// InvalidArgument for non-exact backends when !supports_retrieval().
  /// Not thread-safe against concurrent Recommend calls — configure
  /// before serving.
  Status ConfigureRetrieval(const ann::RetrievalConfig& config);

  const ann::RetrievalConfig& retrieval_config() const {
    return retrieval_config_;
  }

  /// The built retrieval structure, or nullptr when serving exactly.
  const ann::Retriever* retriever() const {
    return retriever_.has_value() ? &*retriever_ : nullptr;
  }

  /// Runs the full inference path for one session: encode the session into
  /// a d-dimensional vector, then run the top-k maximum inner product
  /// search over all C item embeddings — the O(C(d + log k)) path of the
  /// paper's complexity analysis. Equivalent to Recommend(session, {}).
  Result<Recommendation> Recommend(const std::vector<int64_t>& session) const {
    return Recommend(session, ExecOptions{});
  }

  /// Recommend under explicit execution options (mode and allocation
  /// plan). All option combinations return bit-identical recommendations;
  /// they differ only in dispatch count and allocator traffic. The
  /// architecture-specific work lives in RecommendBody (which RepeatNet
  /// overrides with its repeat/explore mixture).
  Result<Recommendation> Recommend(const std::vector<int64_t>& session,
                                   const ExecOptions& options) const;

  /// Serves `sessions` as one batch: sessions sharing a compiled-plan
  /// shape (length, unique items) are grouped, each group executes under
  /// one batched execution plan (and, for kArena, one batched arena whose
  /// size the planner proved equal to the runtime high-water mark).
  /// Results are positionally aligned with `sessions` and bit-identical
  /// to B independent Recommend calls — batching changes memory reuse and
  /// amortizes weight traffic, never arithmetic.
  Result<std::vector<Recommendation>> RecommendBatch(
      const std::vector<std::vector<int64_t>>& sessions,
      const ExecOptions& options) const;

  /// Architecture-specific session encoder; returns a [d] vector.
  /// `session` item ids must be valid (checked by Recommend).
  virtual tensor::Tensor EncodeSession(
      const std::vector<int64_t>& session) const = 0;

  /// Statically lints the model's inference op graph: replays the exact
  /// op sequence of EncodeSession plus the scoring tail on symbolic
  /// shapes over the dims {C, d, L, k} and returns InvalidArgument
  /// describing every rank/dim mismatch found. Independent of concrete
  /// catalog or session sizes — one pass covers all inputs. Run by
  /// CreateModel at construction time and by the `lint_models` tool.
  Status CheckShapes(ExecutionMode mode) const;

  /// Builds the retained symbolic plan IR of the full Recommend path
  /// (encode + scoring) by replaying TraceRecommend. Aborts on a trace
  /// with shape violations — run CheckShapes first for a Status.
  tensor::PlanGraph BuildPlan(ExecutionMode mode) const;

  /// Builds the batched plan: the per-session trace wrapped in a batch
  /// repeat region (trips = B) between the [B, L] padded-id boundary and
  /// the gathered [B, k] response. Shapes and per-dispatch costs of the
  /// body are node-for-node those of BuildPlan; the cost polynomials of
  /// the whole graph are polynomials in {B, C, d, L, k, ...}.
  tensor::PlanGraph BuildBatchedPlan(ExecutionMode mode) const;

  /// Concrete values for the plan's symbols at a given (clamped) session
  /// length: C, d, k, L, n, lgk, max_len plus model-specific derived
  /// symbols (LightSANs' k_int). Session-graph models bind n = L here
  /// (the worst case; tests bind the true unique-item count).
  tensor::Bindings PlanBindings(int64_t session_length) const;

  /// The compiled execution plan — arena offset script, fusion groups and
  /// CSE findings (tensor/plan_exec.h) — for a session with
  /// `session_length` clicks over `unique_items` distinct items. Built
  /// once per (mode, length, unique) key and cached; `mode` must be the
  /// *effective* mode (kJit only when jit_compatible()), so the script
  /// matches the kernels Recommend actually dispatches.
  const tensor::ExecutionPlan& CompiledPlan(ExecutionMode mode,
                                            int64_t session_length,
                                            int64_t unique_items) const;

  /// The compiled batched execution plan for a group of `batch` sessions
  /// sharing (session_length, unique_items). Cached per
  /// (mode, length, unique, batch).
  const tensor::ExecutionPlan& CompiledBatchedPlan(ExecutionMode mode,
                                                   int64_t session_length,
                                                   int64_t unique_items,
                                                   int64_t batch) const;

  /// Analytic per-request cost descriptor for the deployment simulator,
  /// for a request whose session currently has `session_length` items.
  /// FLOP and byte figures are evaluated from the plan IR's symbolic cost
  /// polynomials (tensor/plan_analysis.h), not hand-written constants.
  sim::InferenceWork CostModel(ExecutionMode mode,
                               int64_t session_length) const;

  /// Whole-batch cost descriptor for a batch of `batch` requests of
  /// `session_length` items each, from the batched plan's cost
  /// polynomials (tensor/plan_analysis.h AnalyzeBatchedCost): FLOPs and
  /// per-session traffic scale with B, streamed weight traffic is charged
  /// once per batch, and dispatch/host-sync counts are per-session times
  /// B. Feeding the result to sim::SerialInferenceUs prices the whole
  /// batch; at batch = 1 its FLOPs equal CostModel's exactly (traffic
  /// additionally counts the [B, L]/[B, k] batch boundary buffers).
  sim::InferenceWork BatchedCostModel(ExecutionMode mode,
                                      int64_t session_length,
                                      int64_t batch) const;

  /// The shared [C, d] item-embedding table (a [1, d] placeholder when the
  /// model was created with materialize_embeddings = false).
  const tensor::Tensor& item_embeddings() const { return item_embeddings_; }

  /// Size in bytes of the serialised model (dominated by the embedding
  /// table, whether materialised or not); used for readiness modelling.
  int64_t SerializedBytes() const {
    return config_.catalog_size * config_.embedding_dim * 4;
  }

  bool materialized() const { return config_.materialize_embeddings; }

 protected:
  explicit SessionModel(const ModelConfig& config);

  /// Symbolic replay of the whole Recommend path: encode phase (scoped,
  /// ending in a required [d] session vector), then the scoring phase
  /// (ending in a required [k] recommendation list, which is returned).
  /// RepeatNet overrides this end-to-end because its RecommendBody
  /// interleaves encoding and its repeat/explore scoring without
  /// re-encoding. The result is NOT marked as the plan output — the
  /// unbatched and batched trace wrappers decide that.
  virtual tensor::SymTensor TraceRecommendBody(tensor::ShapeChecker& checker,
                                               ExecutionMode mode) const;

  /// TraceRecommendBody plus the output mark: the unbatched plan.
  void TraceRecommend(tensor::ShapeChecker& checker,
                      ExecutionMode mode) const;

  /// The batched plan trace: the [B, L] padded-id boundary, then
  /// TraceRecommendBody inside a batch region (trips = B), then the
  /// gathered [B, k] response marked as the plan output.
  void TraceBatchedRecommend(tensor::ShapeChecker& checker,
                             ExecutionMode mode) const;

  /// The architecture-specific inference work of one request, executed on
  /// an already validated and truncated session window, under whatever
  /// dispatch/arena scopes the caller (Recommend or RecommendBatch)
  /// activated. Default: EncodeSession then the top-k MIPS (or the
  /// configured retrieval backend). RepeatNet overrides with its dense
  /// repeat/explore mixture.
  virtual Result<Recommendation> RecommendBody(
      const std::vector<int64_t>& window) const;

  /// Symbolic replay of EncodeSession for the shape linter: issues the
  /// same op sequence against `checker` using the symbolic dims
  /// {C, d, L, k} (tensor::sym) and returns the encoder output, which
  /// must be [d]. `mode` lets implementations whose compiled plan differs
  /// structurally from eager trace both variants.
  virtual tensor::SymTensor TraceEncode(tensor::ShapeChecker& checker,
                                        ExecutionMode mode) const = 0;

  /// Symbolic replay of the scoring tail of Recommend: the shared
  /// maximum-inner-product search over the [C, d] table, returning the
  /// [k] recommendation list.
  virtual tensor::SymTensor TraceScoring(tensor::ShapeChecker& checker,
                                         const tensor::SymTensor& encoded)
      const;

  /// The symbolic [C, d] item-embedding table for traces.
  tensor::SymTensor TraceEmbeddingTable(tensor::ShapeChecker& checker) const;

  /// Number of framework-level ops EncodeSession dispatches (eager-mode
  /// overhead), for a length-l session. Kept hand-written: it models the
  /// PyTorch dispatch count after operator fusion, which the (unfused)
  /// plan IR deliberately does not mirror.
  virtual int64_t OpCount(int64_t l) const = 0;

  /// Model-specific derived symbols for PlanBindings (e.g. LightSANs
  /// binds k_int = min(kMaxInterests, L)).
  virtual void AddPlanBindings(int64_t session_length,
                               tensor::Bindings& bindings) const {
    (void)session_length;
    (void)bindings;
  }

  /// The execution mode Recommend actually runs under `options`: kJit
  /// silently falls back to eager for JIT-incompatible models (the
  /// paper's LightSANs finding).
  ExecutionMode EffectiveMode(const ExecOptions& options) const {
    return options.mode == ExecutionMode::kJit && jit_compatible()
               ? ExecutionMode::kJit
               : ExecutionMode::kEager;
  }

  /// The compiled plan `options` selects for this (already truncated)
  /// session window, or nullptr for kMalloc. Shared by Recommend and the
  /// RepeatNet override.
  const tensor::ExecutionPlan* PlanFor(
      const ExecOptions& options, const std::vector<int64_t>& window) const;

  ModelConfig config_;
  Rng rng_;  // used during construction for weight init
  tensor::Tensor item_embeddings_;  // [C, d]

 private:
  /// Active retrieval backend (kExact by default). The retriever is only
  /// built for materialised models with a non-exact backend.
  ann::RetrievalConfig retrieval_config_;
  std::optional<ann::Retriever> retriever_;

  /// Lazily-built per-mode cost summaries derived from the plan IR.
  const tensor::CostSummary& PlanCost(ExecutionMode mode) const;
  /// Lazily-built per-mode batched cost summaries (AnalyzeBatchedCost
  /// over the batched plan).
  const tensor::BatchedCostSummary& PlanBatchCost(ExecutionMode mode) const;
  /// Ratio-scales the scan figures of `work` for a non-exact retrieval
  /// backend (shared by CostModel and BatchedCostModel).
  void ScaleScanForRetrieval(sim::InferenceWork& work) const;

  mutable Mutex plan_cost_mutex_;
  mutable std::unique_ptr<tensor::CostSummary> plan_cost_[2]
      ETUDE_GUARDED_BY(plan_cost_mutex_);
  mutable std::unique_ptr<tensor::BatchedCostSummary> plan_batch_cost_[2]
      ETUDE_GUARDED_BY(plan_cost_mutex_);

  /// Compiled execution plans keyed by (mode, session length, unique
  /// items, batch size; batch 0 = the unbatched plan). Pointers stay
  /// valid once built — Recommend holds one across the encode without
  /// the lock.
  mutable Mutex exec_plan_mutex_;
  mutable std::map<std::tuple<int, int64_t, int64_t, int64_t>,
                   std::unique_ptr<tensor::ExecutionPlan>>
      exec_plans_ ETUDE_GUARDED_BY(exec_plan_mutex_);
};

/// Validates a session against the model configuration: non-empty, ids in
/// [0, C). Sessions longer than max_session_length are truncated to their
/// most recent items by Recommend (as RecBole does), not rejected.
Status ValidateSession(const std::vector<int64_t>& session,
                       const ModelConfig& config);

}  // namespace etude::models

#endif  // ETUDE_MODELS_SESSION_MODEL_H_

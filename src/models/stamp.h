#ifndef ETUDE_MODELS_STAMP_H_
#define ETUDE_MODELS_STAMP_H_

#include <vector>

#include "models/layers.h"
#include "models/session_model.h"

namespace etude::models {

/// STAMP (Liu et al., KDD 2018): short-term attention/memory priority.
/// An additive attention over the session items — conditioned on the last
/// click and the session mean — produces a memory vector; two small MLPs
/// transform the memory and the last click, and their element-wise product
/// is the session representation.
class Stamp final : public SessionModel {
 public:
  explicit Stamp(const ModelConfig& config);

  ModelKind kind() const override { return ModelKind::kStamp; }

  tensor::Tensor EncodeSession(
      const std::vector<int64_t>& session) const override;

 protected:
  tensor::SymTensor TraceEncode(tensor::ShapeChecker& checker,
                                ExecutionMode mode) const override;
  int64_t OpCount(int64_t l) const override;

 private:
  DenseLayer w1_, w2_, w3_;  // attention projections [d, d]
  tensor::Tensor w0_;        // attention output vector [d]
  tensor::Tensor ba_;        // attention bias [d]
  DenseLayer mlp_a_;         // memory MLP [d, d]
  DenseLayer mlp_b_;         // last-click MLP [d, d]
};

}  // namespace etude::models

#endif  // ETUDE_MODELS_STAMP_H_

#include "models/session_graph.h"

#include <unordered_map>

#include "common/logging.h"

namespace etude::models {

SessionGraph SessionGraph::Build(const std::vector<int64_t>& session) {
  ETUDE_CHECK(!session.empty()) << "cannot build graph of empty session";
  SessionGraph graph;
  std::unordered_map<int64_t, int64_t> node_of;
  node_of.reserve(session.size());
  graph.alias.reserve(session.size());
  for (const int64_t item : session) {
    auto [it, inserted] = node_of.try_emplace(
        item, static_cast<int64_t>(graph.nodes.size()));
    if (inserted) graph.nodes.push_back(item);
    graph.alias.push_back(it->second);
  }
  const int64_t n = graph.num_nodes();
  tensor::Tensor counts_out({n, n});
  for (size_t t = 0; t + 1 < session.size(); ++t) {
    const int64_t u = graph.alias[t];
    const int64_t v = graph.alias[t + 1];
    counts_out.at(u, v) += 1.0f;
  }
  // Row-normalise outgoing edges; incoming matrix is the row-normalised
  // transpose.
  graph.adj_out = tensor::Tensor({n, n});
  graph.adj_in = tensor::Tensor({n, n});
  for (int64_t i = 0; i < n; ++i) {
    float out_degree = 0.0f;
    for (int64_t j = 0; j < n; ++j) out_degree += counts_out.at(i, j);
    if (out_degree > 0) {
      for (int64_t j = 0; j < n; ++j) {
        graph.adj_out.at(i, j) = counts_out.at(i, j) / out_degree;
      }
    }
  }
  for (int64_t i = 0; i < n; ++i) {
    float in_degree = 0.0f;
    for (int64_t j = 0; j < n; ++j) in_degree += counts_out.at(j, i);
    if (in_degree > 0) {
      for (int64_t j = 0; j < n; ++j) {
        graph.adj_in.at(i, j) = counts_out.at(j, i) / in_degree;
      }
    }
  }
  return graph;
}

}  // namespace etude::models

#include "models/stamp.h"

#include "tensor/init.h"
#include "tensor/ops.h"

namespace etude::models {

using tensor::Tensor;

Stamp::Stamp(const ModelConfig& config)
    : SessionModel(config),
      w1_(config_.embedding_dim, config_.embedding_dim, false, &rng_),
      w2_(config_.embedding_dim, config_.embedding_dim, false, &rng_),
      w3_(config_.embedding_dim, config_.embedding_dim, false, &rng_),
      w0_(tensor::XavierUniform({config_.embedding_dim}, &rng_)),
      ba_(Tensor({config_.embedding_dim})),
      mlp_a_(config_.embedding_dim, config_.embedding_dim, true, &rng_),
      mlp_b_(config_.embedding_dim, config_.embedding_dim, true, &rng_) {}

Tensor Stamp::EncodeSession(const std::vector<int64_t>& session) const {
  const Tensor embedded = tensor::Embedding(item_embeddings_, session);
  const int64_t l = embedded.dim(0), d = embedded.dim(1);
  const Tensor last = embedded.Row(l - 1);
  const Tensor mean = tensor::MeanRows(embedded);

  // a_i = w0^T sigmoid(W1 x_i + W2 x_t + W3 m_s + b_a)
  if (tensor::exec::JitDispatchEnabled()) {
    // The compiled plan deduplicates the two [1, d] reshapes of `last`
    // (W2 projection and the ht MLP — the CSE pass's finding) and fuses
    // each gate's Sigmoid(Add(...)) chain into one kernel.
    const Tensor last_wide = last.Reshaped({1, d});
    const Tensor proj_last = w2_.Forward(last_wide).Reshaped({d});
    const Tensor proj_mean = w3_.ForwardVector(mean);
    const Tensor context =
        tensor::Add(tensor::Add(proj_last, proj_mean), ba_);
    const Tensor proj_items = w1_.Forward(embedded);  // [l, d]
    Tensor memory({d});
    for (int64_t i = 0; i < l; ++i) {
      const Tensor gate = tensor::AddSigmoid(proj_items.Row(i), context);
      const float a = tensor::Dot(w0_, gate);
      for (int64_t j = 0; j < d; ++j) memory[j] += a * embedded.at(i, j);
    }
    const Tensor hs = tensor::Tanh(mlp_a_.ForwardVector(memory));
    const Tensor ht = tensor::Tanh(mlp_b_.Forward(last_wide).Reshaped({d}));
    return tensor::Mul(hs, ht);
  }
  const Tensor proj_last = w2_.ForwardVector(last);
  const Tensor proj_mean = w3_.ForwardVector(mean);
  const Tensor context =
      tensor::Add(tensor::Add(proj_last, proj_mean), ba_);
  const Tensor proj_items = w1_.Forward(embedded);  // [l, d]
  Tensor memory({d});
  for (int64_t i = 0; i < l; ++i) {
    const Tensor gate =
        tensor::Sigmoid(tensor::Add(proj_items.Row(i), context));
    const float a = tensor::Dot(w0_, gate);
    for (int64_t j = 0; j < d; ++j) memory[j] += a * embedded.at(i, j);
  }

  const Tensor hs = tensor::Tanh(mlp_a_.ForwardVector(memory));
  const Tensor ht = tensor::Tanh(mlp_b_.ForwardVector(last));
  return tensor::Mul(hs, ht);
}

tensor::SymTensor Stamp::TraceEncode(tensor::ShapeChecker& checker,
                                     ExecutionMode mode) const {
  namespace sym = tensor::sym;
  const bool fused = mode == ExecutionMode::kJit;
  const tensor::SymTensor embedded =
      checker.Embedding(TraceEmbeddingTable(checker), sym::L());  // [L, d]
  const tensor::SymTensor last = checker.Row(embedded);           // [d]
  const tensor::SymTensor mean = checker.MeanRows(embedded);      // [d]
  // a_i = w0^T sigmoid(W1 x_i + W2 x_t + W3 m_s + b_a). The JIT plan
  // hoists the [1, d] reshape of `last` shared by the W2 projection and
  // the ht MLP (the CSE pass's finding); eager reshapes twice.
  tensor::SymTensor last_wide;
  if (fused) last_wide = checker.Reshape(last, {1, sym::d()});
  const tensor::SymTensor proj_last =
      fused ? checker.Reshape(trace::Dense(checker, last_wide, sym::d(),
                                           sym::d(), /*bias=*/false),
                              {sym::d()})
            : trace::DenseVector(checker, last, sym::d(), sym::d(),
                                 /*bias=*/false);
  const tensor::SymTensor proj_mean =
      trace::DenseVector(checker, mean, sym::d(), sym::d(), /*bias=*/false);
  const tensor::SymTensor ba = checker.Input("stamp.ba", {sym::d()});
  const tensor::SymTensor context =
      checker.Add(checker.Add(proj_last, proj_mean), ba);
  const tensor::SymTensor proj_items =
      trace::Dense(checker, embedded, sym::d(), sym::d(), /*bias=*/false);
  const tensor::SymTensor w0 = checker.Input("stamp.w0", {sym::d()});
  // The alpha-weighted sum of item embeddings is accumulated into a
  // preallocated [d] memory vector by a manual loop.
  const tensor::SymTensor memory =
      checker.Materialize("stamp.memory", {sym::d()}, {});
  checker.BeginRepeat(sym::L());
  const tensor::SymTensor gate =
      fused ? checker.AddSigmoid(checker.Row(proj_items), context)
            : checker.Sigmoid(
                  checker.Add(checker.Row(proj_items), context));
  const tensor::SymTensor alpha = checker.Dot(w0, gate);
  checker.EndRepeat();
  checker.Link(memory, alpha);
  checker.Link(memory, embedded);
  const tensor::SymTensor hs = checker.Tanh(trace::DenseVector(
      checker, memory, sym::d(), sym::d(), /*bias=*/true));
  const tensor::SymTensor ht =
      fused ? checker.Tanh(checker.Reshape(
                  trace::Dense(checker, last_wide, sym::d(), sym::d(),
                               /*bias=*/true),
                  {sym::d()}))
            : checker.Tanh(trace::DenseVector(checker, last, sym::d(),
                                              sym::d(), /*bias=*/true));
  return checker.Mul(hs, ht);
}

int64_t Stamp::OpCount(int64_t l) const {
  (void)l;
  // Vectorised attention plus two MLPs.
  return 18;
}

}  // namespace etude::models

#ifndef ETUDE_MODELS_SINE_H_
#define ETUDE_MODELS_SINE_H_

#include <vector>

#include "models/layers.h"
#include "models/session_model.h"

namespace etude::models {

/// SINE (Tan et al., WSDM 2021): sparse-interest network. A pool of
/// concept prototypes is maintained; for each session the top
/// `kActiveInterests` prototypes are activated, an attention per active
/// prototype aggregates the session items into one interest embedding,
/// and the interests are fused weighted by their affinity to the session
/// mean.
class Sine final : public SessionModel {
 public:
  static constexpr int64_t kPrototypePoolSize = 50;
  static constexpr int64_t kActiveInterests = 4;

  explicit Sine(const ModelConfig& config);

  ModelKind kind() const override { return ModelKind::kSine; }

  tensor::Tensor EncodeSession(
      const std::vector<int64_t>& session) const override;

 protected:
  tensor::SymTensor TraceEncode(tensor::ShapeChecker& checker,
                                ExecutionMode mode) const override;
  int64_t OpCount(int64_t l) const override;

 private:
  tensor::Tensor prototype_pool_;  // [kPrototypePoolSize, d]
  DenseLayer key_proj_;            // [d, d]
  DenseLayer fuse_proj_;           // [d, d]
};

}  // namespace etude::models

#endif  // ETUDE_MODELS_SINE_H_

#ifndef ETUDE_MODELS_NARM_H_
#define ETUDE_MODELS_NARM_H_

#include <vector>

#include "models/layers.h"
#include "models/session_model.h"

namespace etude::models {

/// NARM (Li et al., CIKM 2017): a hybrid encoder — a GRU provides a global
/// sequential representation (its last hidden state) and an additive
/// attention over all hidden states provides a local "main purpose"
/// representation; both are concatenated and projected back to d.
class Narm final : public SessionModel {
 public:
  explicit Narm(const ModelConfig& config);

  ModelKind kind() const override { return ModelKind::kNarm; }

  tensor::Tensor EncodeSession(
      const std::vector<int64_t>& session) const override;

 protected:
  tensor::SymTensor TraceEncode(tensor::ShapeChecker& checker,
                                ExecutionMode mode) const override;
  int64_t OpCount(int64_t l) const override;

 private:
  GruLayer gru_;
  DenseLayer attn_global_;  // A1: [d, d]
  DenseLayer attn_local_;   // A2: [d, d]
  tensor::Tensor attn_v_;   // v:  [d]
  DenseLayer head_;         // B:  [d, 2d]
};

}  // namespace etude::models

#endif  // ETUDE_MODELS_NARM_H_

#include "models/gru4rec.h"

#include "tensor/ops.h"

namespace etude::models {

using tensor::Tensor;

Gru4Rec::Gru4Rec(const ModelConfig& config)
    : SessionModel(config),
      gru_(config_.embedding_dim, config_.embedding_dim, &rng_),
      head_(config_.embedding_dim, config_.embedding_dim, /*bias=*/true,
            &rng_) {}

Tensor Gru4Rec::EncodeSession(const std::vector<int64_t>& session) const {
  const Tensor embedded = tensor::Embedding(item_embeddings_, session);
  const Tensor states = gru_.RunSequence(embedded);  // [l, d]
  const Tensor last = states.Row(states.dim(0) - 1);
  return head_.ForwardVector(last);
}

tensor::SymTensor Gru4Rec::TraceEncode(tensor::ShapeChecker& checker,
                                       ExecutionMode mode) const {
  (void)mode;  // eager and JIT execute the same graph
  namespace sym = tensor::sym;
  const tensor::SymTensor embedded =
      checker.Embedding(TraceEmbeddingTable(checker), sym::L());  // [L, d]
  const tensor::SymTensor states =
      trace::Gru(checker, embedded, sym::d(), sym::d());  // [L, d]
  const tensor::SymTensor last = checker.Row(states);     // [d]
  return trace::DenseVector(checker, last, sym::d(), sym::d(), /*bias=*/true);
}

int64_t Gru4Rec::OpCount(int64_t l) const {
  (void)l;
  // Embedding + fused nn.GRU + dense head (+ a few reshapes): RecBole's
  // GRU is a single fused op even in eager mode.
  return 8;
}

}  // namespace etude::models

#ifndef ETUDE_MODELS_LIGHTSANS_H_
#define ETUDE_MODELS_LIGHTSANS_H_

#include <vector>

#include "models/layers.h"
#include "models/session_model.h"

namespace etude::models {

/// LightSANs (Fan et al., SIGIR 2021): low-rank decomposed self-attention.
/// Instead of attending over all l positions, each layer projects the
/// sequence onto k_interests latent "interest" vectors and attends over
/// those, reducing the l^2 term to l*k.
///
/// The number of latent interests depends on the session length at
/// runtime (min(kMaxInterests, l)) — the dynamic code path that prevents
/// torch.jit from compiling the RecBole implementation, which the paper
/// reports as an implementation issue. `jit_compatible()` is false.
class LightSans final : public SessionModel {
 public:
  static constexpr int kNumLayers = 2;
  static constexpr int64_t kMaxInterests = 8;

  explicit LightSans(const ModelConfig& config);

  ModelKind kind() const override { return ModelKind::kLightSans; }
  bool jit_compatible() const override { return false; }
  std::string jit_incompatibility_reason() const override {
    return "interest count min(kMaxInterests, len) is computed from the "
           "input session length at runtime; torch.jit cannot trace the "
           "data-dependent tensor shapes";
  }

  tensor::Tensor EncodeSession(
      const std::vector<int64_t>& session) const override;

 protected:
  tensor::SymTensor TraceEncode(tensor::ShapeChecker& checker,
                                ExecutionMode mode) const override;
  int64_t OpCount(int64_t l) const override;
  void AddPlanBindings(int64_t session_length,
                       tensor::Bindings& bindings) const override;

 private:
  struct Layer {
    DenseLayer wq, wk, wv, wo;
    DenseLayer interest_proj;  // [kMaxInterests, d]
    DenseLayer ffn1, ffn2;
    tensor::Tensor norm1_gain, norm1_bias, norm2_gain, norm2_bias;
  };

  tensor::Tensor RunLayer(const Layer& layer, const tensor::Tensor& x) const;

  PositionalEmbedding positions_;
  std::vector<Layer> layers_;
};

}  // namespace etude::models

#endif  // ETUDE_MODELS_LIGHTSANS_H_

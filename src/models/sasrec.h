#ifndef ETUDE_MODELS_SASREC_H_
#define ETUDE_MODELS_SASREC_H_

#include <vector>

#include "models/layers.h"
#include "models/session_model.h"

namespace etude::models {

/// SASRec (Kang & McAuley, ICDM 2018): self-attentive sequential
/// recommendation. Item embeddings plus learned positional embeddings are
/// passed through a stack of transformer blocks; the representation of the
/// last position scores the catalog.
class SasRec final : public SessionModel {
 public:
  static constexpr int kNumLayers = 2;

  explicit SasRec(const ModelConfig& config);

  ModelKind kind() const override { return ModelKind::kSasRec; }

  tensor::Tensor EncodeSession(
      const std::vector<int64_t>& session) const override;

 protected:
  tensor::SymTensor TraceEncode(tensor::ShapeChecker& checker,
                                ExecutionMode mode) const override;
  int64_t OpCount(int64_t l) const override;

 private:
  PositionalEmbedding positions_;
  std::vector<TransformerBlock> blocks_;
};

}  // namespace etude::models

#endif  // ETUDE_MODELS_SASREC_H_

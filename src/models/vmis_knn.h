#ifndef ETUDE_MODELS_VMIS_KNN_H_
#define ETUDE_MODELS_VMIS_KNN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "models/session_model.h"
#include "workload/session_generator.h"

namespace etude::models {

/// Configuration of the VMIS-kNN baseline.
struct VmisKnnConfig {
  int64_t catalog_size = 10000;
  int64_t top_k = 21;
  int64_t max_session_length = 50;
  int64_t neighbours = 100;        // m: similar historical sessions used
  int64_t max_sessions_per_item = 500;  // index list cap per item
  int64_t last_n_clicks = 100;     // recency window within sessions
};

/// VMIS-kNN — the non-neural session-kNN recommender of Serenade
/// (Kersbergen et al., SIGMOD 2022 — the paper's ref. [13] and the
/// closing argument of its conclusion: high-cardinality catalogs "can be
/// handled much cheaper with non-neural approaches").
///
/// Index: an inverted index from item id to the most recent historical
/// sessions containing it (list length capped). Inference: score the
/// historical sessions by weighted overlap with the ongoing session, keep
/// the m most similar, then score candidate items from those neighbours
/// by similarity-weighted votes. Crucially, the cost depends on the index
/// list lengths and m — NOT on the catalog size C — which is what breaks
/// the O(C*d) wall all ten neural models share.
class VmisKnn {
 public:
  /// Builds the index from historical sessions (e.g. a click log).
  static Result<VmisKnn> Fit(const std::vector<workload::Session>& history,
                             const VmisKnnConfig& config);

  /// Next-item recommendations for an ongoing session.
  Result<Recommendation> Recommend(const std::vector<int64_t>& session) const;

  /// Per-request cost descriptor for the deployment simulator. Unlike the
  /// neural models there is no catalog scan: the work is bounded by the
  /// inverted-list walks and the neighbour scoring.
  sim::InferenceWork CostModel(int64_t session_length) const;

  const VmisKnnConfig& config() const { return config_; }
  int64_t num_indexed_sessions() const {
    return static_cast<int64_t>(sessions_.size());
  }

 private:
  VmisKnn() = default;

  VmisKnnConfig config_;
  std::vector<std::vector<int64_t>> sessions_;  // historical sessions
  // item id -> indices into sessions_ (most recent first, capped).
  std::unordered_map<int64_t, std::vector<int32_t>> item_index_;
  double average_list_length_ = 0;
  double average_session_length_ = 0;
};

}  // namespace etude::models

#endif  // ETUDE_MODELS_VMIS_KNN_H_

#ifndef ETUDE_TENSOR_PLAN_ANALYSIS_H_
#define ETUDE_TENSOR_PLAN_ANALYSIS_H_

#include <map>
#include <string>
#include <vector>

#include "tensor/plan_ir.h"

namespace etude::tensor {

/// Static analysis passes over the retained plan IR (tensor/plan_ir.h).
///
/// Four passes, all purely symbolic:
///  1. liveness + peak memory  — AnalyzeLiveness
///  2. static cost model       — AnalyzeCost (feeds SessionModel::CostModel)
///  3. dead ops + CSE          — AnalyzePlan (kError / kWarning)
///  4. materialized-[C]        — AnalyzePlan (kInfo)

/// Step at which each node's buffer is released: the later of its last
/// consumer and the end of its enclosing C++ scope.
std::vector<int> DeathIndices(const PlanGraph& plan);

/// Result of the liveness pass: the transient live-set (request-scoped
/// tensor buffers + op-internal scratch; model weights excluded) maximised
/// over program steps. The maximising step depends on the concrete config,
/// so the pass takes bindings and reports both the argmax step's symbolic
/// polynomial and its concrete value.
struct LivenessResult {
  int peak_step = -1;       // node index at which the live set peaks
  CostPoly peak_poly;       // live bytes at that step, symbolic
  double peak_bytes = 0.0;  // peak_poly evaluated at the bindings
};

LivenessResult AnalyzeLiveness(const PlanGraph& plan,
                               const Bindings& bindings);

/// Result of the static cost pass: FLOP and traffic polynomials split by
/// phase (encode vs catalog scoring) and total FLOPs split by op name
/// (repeat-scaled), plus the op count. Replaces the hand-written
/// per-model cost constants that used to feed sim::InferenceWork.
struct CostSummary {
  CostPoly encode_flops;
  CostPoly encode_traffic_bytes;
  CostPoly score_flops;
  CostPoly score_traffic_bytes;
  CostPoly total_flops;
  std::map<std::string, CostPoly> flops_by_op;
  int op_count = 0;  // non-persistent plan nodes
};

CostSummary AnalyzeCost(const PlanGraph& plan);

/// One finding of the structural passes.
struct PlanDiagnostic {
  enum class Severity { kError, kWarning, kInfo };

  Severity severity = Severity::kInfo;
  std::string pass;  // "dead-op" | "unconsumed-C" | "cse" | "materialized-C"
  int node = -1;
  std::string message;

  std::string ToString() const;
};

/// Runs the structural passes:
///  - dead-op (kError): a non-persistent result no op consumes and that is
///    not the request output — work the runtime would throw away;
///  - unconsumed-C (kError): the dead result is [C]-sized — a full-catalog
///    tensor computed for nothing;
///  - cse (kWarning): two identical (op, operands) dispatches — duplicated
///    subtrees, faithful to upstream model code but worth surfacing;
///  - materialized-C (kInfo): a [C]-sized intermediate flows into TopK
///    instead of using the fused streaming MIPS path.
std::vector<PlanDiagnostic> AnalyzePlan(const PlanGraph& plan);

/// Convenience: only the kError findings (the CreateModel lint gate).
std::vector<PlanDiagnostic> PlanErrors(const PlanGraph& plan);

}  // namespace etude::tensor

#endif  // ETUDE_TENSOR_PLAN_ANALYSIS_H_

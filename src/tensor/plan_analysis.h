#ifndef ETUDE_TENSOR_PLAN_ANALYSIS_H_
#define ETUDE_TENSOR_PLAN_ANALYSIS_H_

#include <map>
#include <string>
#include <vector>

#include "tensor/plan_ir.h"

namespace etude::tensor {

/// Static analysis passes over the retained plan IR (tensor/plan_ir.h).
///
/// Four passes, all purely symbolic:
///  1. liveness + peak memory  — AnalyzeLiveness
///  2. static cost model       — AnalyzeCost (feeds SessionModel::CostModel)
///  3. dead ops + CSE          — AnalyzePlan (kError / kWarning)
///  4. materialized-[C]        — AnalyzePlan (kInfo)

/// Step at which each node's buffer is released: the later of its last
/// consumer and the end of its enclosing C++ scope.
std::vector<int> DeathIndices(const PlanGraph& plan);

/// Result of the liveness pass: the transient live-set (request-scoped
/// tensor buffers + op-internal scratch; model weights excluded) maximised
/// over program steps. The maximising step depends on the concrete config,
/// so the pass takes bindings and reports both the argmax step's symbolic
/// polynomial and its concrete value.
struct LivenessResult {
  int peak_step = -1;       // node index at which the live set peaks
  CostPoly peak_poly;       // live bytes at that step, symbolic
  double peak_bytes = 0.0;  // peak_poly evaluated at the bindings
};

LivenessResult AnalyzeLiveness(const PlanGraph& plan,
                               const Bindings& bindings);

/// Result of the static cost pass: FLOP and traffic polynomials split by
/// phase (encode vs catalog scoring) and total FLOPs split by op name
/// (repeat-scaled), plus the op count. Replaces the hand-written
/// per-model cost constants that used to feed sim::InferenceWork.
struct CostSummary {
  CostPoly encode_flops;
  CostPoly encode_traffic_bytes;
  CostPoly score_flops;
  CostPoly score_traffic_bytes;
  CostPoly total_flops;
  std::map<std::string, CostPoly> flops_by_op;
  int op_count = 0;  // non-persistent plan nodes
};

CostSummary AnalyzeCost(const PlanGraph& plan);

/// Result of the batched cost pass over a plan containing a batch region
/// (trips == B, see RepeatRegion::is_batch). FLOPs never amortize — every
/// session computes its own encode and scan — but memory traffic does:
/// when B sessions execute back-to-back, the streamed weight operands of
/// the encode ops (GRU/attention/head matrices, read in full by every
/// MatMul-like dispatch) stay resident across the batch and are charged
/// once, while activations, index-dependent gathers (Embedding/Row) and
/// the whole catalog-scoring phase remain per-session.
///
/// Exactness invariants (unit-tested):
///  - total_flops == AnalyzeCost(plan).total_flops;
///  - amortized + marginal traffic evaluated at B=1 == AnalyzeCost totals.
struct BatchedCostSummary {
  CostPoly encode_flops;           // polynomial in {B, C, d, L, ...}
  CostPoly score_flops;
  CostPoly total_flops;
  /// Weight bytes charged once per batch (no B factor).
  CostPoly amortized_bytes;
  /// Per-session bytes, scaling with B.
  CostPoly marginal_encode_bytes;
  CostPoly marginal_score_bytes;
  /// amortized_bytes + marginal bytes: the batched traffic model.
  CostPoly total_bytes;
  int op_count = 0;  // non-persistent plan nodes (per-session body + bounds)
};

/// A node's traffic amortizes only when (a) it is encode-phase, (b) its
/// traffic polynomial is the default 4*(inputs + output) streaming model
/// (overridden-traffic ops are gathers/moves whose reads are
/// session-dependent), and (c) the bytes come from a persistent input.
BatchedCostSummary AnalyzeBatchedCost(const PlanGraph& plan);

/// One finding of the structural passes.
struct PlanDiagnostic {
  enum class Severity { kError, kWarning, kInfo };

  Severity severity = Severity::kInfo;
  std::string pass;  // "dead-op" | "unconsumed-C" | "cse" | "materialized-C"
  int node = -1;
  std::string message;

  std::string ToString() const;
};

/// Runs the structural passes:
///  - dead-op (kError): a non-persistent result no op consumes and that is
///    not the request output — work the runtime would throw away;
///  - unconsumed-C (kError): the dead result is [C]-sized — a full-catalog
///    tensor computed for nothing;
///  - cse (kWarning): two identical (op, operands) dispatches — duplicated
///    subtrees, faithful to upstream model code but worth surfacing;
///  - materialized-C (kInfo): a [C]-sized intermediate flows into TopK
///    instead of using the fused streaming MIPS path.
std::vector<PlanDiagnostic> AnalyzePlan(const PlanGraph& plan);

/// Convenience: only the kError findings (the CreateModel lint gate).
std::vector<PlanDiagnostic> PlanErrors(const PlanGraph& plan);

}  // namespace etude::tensor

#endif  // ETUDE_TENSOR_PLAN_ANALYSIS_H_

#ifndef ETUDE_TENSOR_ARENA_H_
#define ETUDE_TENSOR_ARENA_H_

#include <cstdint>
#include <vector>

namespace etude::tensor::exec {

/// Runtime half of the static execution planner (tensor/plan_exec.h).
///
/// CompileExecutionPlan turns a model's retained plan into an ordered
/// allocation script: the i-th transient tensor buffer the runtime
/// allocates during a request takes the i-th precomputed (offset, bytes)
/// slot of one pre-sized arena. While a script is active on a thread,
/// Tensor's constructors serve buffers from the arena (no malloc on the
/// hot path) and Tensor's destructor is a no-op for them — slot reuse is
/// already encoded in the offsets, which the planner derived from the
/// plan's liveness. An allocation that deviates from the script (size
/// mismatch or overrun) falls back to the heap and is counted; the
/// cross-check tests assert zero fallbacks and that the high-water mark
/// the runtime reaches equals the statically computed arena size exactly.

/// The allocation script of one (model, mode, session shape): parallel
/// arrays of event sizes and their assigned arena offsets.
struct ArenaScript {
  std::vector<int64_t> bytes;    // per allocation event, exact buffer bytes
  std::vector<int64_t> offsets;  // per allocation event, 64-byte aligned
  /// max(offset + bytes) over the events: the exact high-water mark a
  /// conforming run reaches once every event has been served.
  int64_t arena_bytes = 0;
};

/// Activates `script` on the calling thread for the lifetime of the
/// object. The script must outlive the activation; activations do not
/// nest. The thread's arena buffer is grown (never shrunk) to the
/// script's size and reused across activations.
class ScopedArena {
 public:
  explicit ScopedArena(const ArenaScript* script);
  ~ScopedArena();
  ScopedArena(const ScopedArena&) = delete;
  ScopedArena& operator=(const ScopedArena&) = delete;
};

/// Serves the next scripted slot of the calling thread's active arena.
/// Returns nullptr — caller allocates from the heap — when no arena is
/// active, or when the request deviates from the script (counted as a
/// fallback in obs::ThreadArenaStats; the cursor does not advance, so
/// one deviation fails the whole activation loudly rather than
/// resynchronising onto wrong offsets).
float* ArenaTryAlloc(int64_t bytes);

/// Thread-local dispatch switch for the jit execution path: models and
/// layers consult it to dispatch fused kernels (AddLayerNorm/AddSigmoid)
/// and CSE-deduplicated subexpressions, mirroring the jit-mode plan.
class ScopedJitDispatch {
 public:
  explicit ScopedJitDispatch(bool enabled);
  ~ScopedJitDispatch();
  ScopedJitDispatch(const ScopedJitDispatch&) = delete;
  ScopedJitDispatch& operator=(const ScopedJitDispatch&) = delete;

 private:
  bool previous_;
};

bool JitDispatchEnabled();

}  // namespace etude::tensor::exec

#endif  // ETUDE_TENSOR_ARENA_H_

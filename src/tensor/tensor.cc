#include "tensor/tensor.h"

#include <cmath>

namespace etude::tensor {

std::string Tensor::ShapeString() const {
  std::string out = "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(shape_[i]);
  }
  out += "]f32";
  return out;
}

bool AllClose(const Tensor& a, const Tensor& b, float tolerance) {
  if (a.shape() != b.shape()) return false;
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (std::abs(a[i] - b[i]) > tolerance) return false;
  }
  return true;
}

}  // namespace etude::tensor

#include "tensor/init.h"

#include <cmath>

namespace etude::tensor {

namespace {
// fan_in/fan_out follow the PyTorch convention: for rank-2 [out, in] weights
// fan_in = in, fan_out = out; rank-1 tensors use their length for both.
void ComputeFans(const std::vector<int64_t>& shape, int64_t* fan_in,
                 int64_t* fan_out) {
  if (shape.size() >= 2) {
    *fan_out = shape[0];
    *fan_in = shape[1];
    for (size_t i = 2; i < shape.size(); ++i) {
      *fan_in *= shape[i];
      *fan_out *= shape[i];
    }
  } else {
    *fan_in = shape.empty() ? 1 : shape[0];
    *fan_out = *fan_in;
  }
}
}  // namespace

Tensor XavierUniform(std::vector<int64_t> shape, Rng* rng) {
  int64_t fan_in = 1, fan_out = 1;
  ComputeFans(shape, &fan_in, &fan_out);
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return RandomUniform(std::move(shape), -bound, bound, rng);
}

Tensor RandomNormal(std::vector<int64_t> shape, float stddev, Rng* rng) {
  Tensor out(std::move(shape));
  for (int64_t i = 0; i < out.numel(); ++i) {
    out[i] = static_cast<float>(rng->NextGaussian()) * stddev;
  }
  return out;
}

Tensor RandomUniform(std::vector<int64_t> shape, float low, float high,
                     Rng* rng) {
  Tensor out(std::move(shape));
  const float span = high - low;
  for (int64_t i = 0; i < out.numel(); ++i) {
    out[i] = low + span * static_cast<float>(rng->NextDouble());
  }
  return out;
}

}  // namespace etude::tensor

#ifndef ETUDE_TENSOR_PLAN_EXEC_H_
#define ETUDE_TENSOR_PLAN_EXEC_H_

#include <string>
#include <vector>

#include "tensor/arena.h"
#include "tensor/plan_ir.h"

namespace etude::tensor {

/// Static execution planning over the retained plan IR: the passes that
/// close the loop from analysis (tensor/plan_analysis.h, which lints and
/// predicts) to the runtime schedule (which executes).
///
///  1. arena assignment   — CompileExecutionPlan expands the plan's
///     repeat regions at concrete trip counts into the exact ordered
///     sequence of transient buffer allocations the runtime performs,
///     replays that sequence against a greedy best-fit free-list with
///     64-byte aligned offsets, and emits the allocation script the
///     arena executor (tensor/arena.h) serves — plus the arena's exact
///     byte size and a symbolic size bound.
///  2. fusion legality    — AnalyzeFusion finds single-consumer
///     elementwise/activation chains that are provably safe to dispatch
///     as one kernel (adjacent in program order, shape-equal, same
///     phase, same repeat region, no interleaved consumer).
///  3. CSE materialization — AnalyzeCse turns the analysis pass's cse
///     warnings into a dedup plan: which node to keep and which
///     congruent re-dispatches to drop.
///
/// The passes are verified against the runtime, not trusted: the
/// cross-check tests assert that the statically computed arena size
/// equals the runtime high-water mark exactly (every allocation served,
/// zero fallbacks) and that planned execution is bit-identical to the
/// unplanned path for every model in both modes.

/// A provably fusible chain of adjacent nodes, in program order.
struct FusionGroup {
  std::vector<int> nodes;  // >= 2 node ids, each the sole consumer of
                           // its predecessor
  /// Runtime kernel that dispatches the whole chain ("AddLayerNorm",
  /// "AddSigmoid"); empty when the chain is legal but no fused kernel
  /// exists yet.
  std::string kernel;
};

/// Ops eligible for chain membership: one output element per input
/// element, no reduction across elements (LayerNorm normalises within a
/// row, which the fused kernels preserve).
bool FusibleOp(const std::string& op);

/// Legality rules, applied to each adjacent producer/consumer pair of a
/// chain: producer feeds only its successor (no interleaved consumer can
/// observe the unfused intermediate), both shapes are symbolically
/// equal, both nodes share phase and innermost repeat region, and the
/// producer is neither persistent nor the request output.
std::vector<FusionGroup> AnalyzeFusion(const PlanGraph& plan);

/// One congruence class of duplicated dispatches: `keep` is the first
/// occurrence, `drop` the later nodes computing the same (op, operands,
/// shape). Uses the same congruence key as the analysis pass's cse
/// warning, so every warning maps to exactly one drop entry.
struct CseDuplicate {
  int keep = -1;
  std::vector<int> drop;
};

std::vector<CseDuplicate> AnalyzeCse(const PlanGraph& plan);

/// The compiled schedule of one (plan, bindings): everything the runtime
/// needs to execute the model with zero per-op malloc.
struct ExecutionPlan {
  /// Ordered allocation script; the runtime serves it via ScopedArena.
  exec::ArenaScript arena;
  /// Plan node that produces each script event (parallel to
  /// arena.bytes/offsets) — lets tests and reports attribute offsets.
  std::vector<int> event_nodes;
  /// Per event, the total number of allocation events emitted when the
  /// planner released its slot (parallel to arena.bytes): event i's slot
  /// is live while events j with i < j < event_frees[i] are allocated.
  /// The property tests rebuild liveness from this to verify that slots
  /// with overlapping lifetimes never share arena bytes.
  std::vector<int> event_frees;
  /// Symbolic bound on the bytes simultaneously live under the
  /// planner's free rules, ignoring alignment padding: per-iteration
  /// values of a repeat region count twice (the planner keeps a
  /// loop-carried value until its successor exists, mirroring
  /// move-assignment), everything else once, plus composite-op scratch.
  CostPoly arena_bound_poly;
  /// Peak number of simultaneously live arena slots — bounds the
  /// alignment padding the arena can add over the raw live bytes
  /// (< 64 bytes per live slot).
  int max_live_slots = 0;
  std::vector<FusionGroup> fusion_groups;
  std::vector<CseDuplicate> cse;
};

/// Compiles `plan` for the session shape fixed by `bindings` (which must
/// bind every symbol the plan's trip counts and allocation polynomials
/// use — L, n, d, ...). Deterministic; aborts on a malformed plan.
ExecutionPlan CompileExecutionPlan(const PlanGraph& plan,
                                   const Bindings& bindings);

}  // namespace etude::tensor

#endif  // ETUDE_TENSOR_PLAN_EXEC_H_

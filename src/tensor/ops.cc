#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/parallel.h"
#include "obs/op_hook.h"
#include "obs/trace.h"
#include "tensor/kernels.h"

namespace etude::tensor {

namespace {

/// Minimum elements per chunk before an elementwise op goes parallel:
/// below this the pool hand-off costs more than the loop.
constexpr int64_t kElementwiseGrain = 1 << 15;

/// Minimum FLOPs per chunk for the dense kernels (MatMul/MatVec/Linear).
constexpr int64_t kDenseFlopGrain = 1 << 17;

/// Minimum catalog rows per fused-MIPS worker range; a smaller range is
/// not worth a second heap + merge.
constexpr int64_t kMipsMinRowsPerRange = 4096;

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  ETUDE_CHECK(a.shape() == b.shape())
      << op << " requires identical shapes, got " << a.ShapeString()
      << " vs " << b.ShapeString();
}

template <typename UnaryFn>
Tensor ElementwiseUnary(const Tensor& a, UnaryFn fn) {
  Tensor out(a.shape());
  const float* src = a.data();
  float* dst = out.data();
  ParallelFor(0, a.numel(), kElementwiseGrain,
              [src, dst, &fn](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) dst[i] = fn(src[i]);
              });
  return out;
}

template <typename BinaryFn>
Tensor ElementwiseBinary(const Tensor& a, const Tensor& b, BinaryFn fn) {
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* dst = out.data();
  ParallelFor(0, a.numel(), kElementwiseGrain,
              [pa, pb, dst, &fn](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) dst[i] = fn(pa[i], pb[i]);
              });
  return out;
}

/// Row grain so each chunk carries at least `min_flops` of work.
int64_t RowGrain(double flops_per_row, int64_t min_flops) {
  if (flops_per_row < 1.0) flops_per_row = 1.0;
  const double rows = static_cast<double>(min_flops) / flops_per_row;
  return std::max<int64_t>(1, static_cast<int64_t>(rows));
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  ETUDE_CHECK(a.rank() == 2 && b.rank() == 2) << "MatMul requires rank 2";
  ETUDE_CHECK(a.dim(1) == b.dim(0))
      << "MatMul inner dims mismatch: " << a.ShapeString() << " @ "
      << b.ShapeString();
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  ETUDE_OP_SPAN("MatMul", 2.0 * static_cast<double>(m * k) * static_cast<double>(n));
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  // Keep chunks 4-row aligned so the 4x16 register tile stays engaged.
  const int64_t grain =
      (RowGrain(2.0 * static_cast<double>(k) * static_cast<double>(n),
                kDenseFlopGrain) +
       3) &
      ~int64_t{3};
  ParallelFor(0, m, std::max<int64_t>(4, grain),
              [pa, pb, pc, k, n](int64_t lo, int64_t hi) {
                ETUDE_TRACE_SPAN("MatMul.chunk", "op");
                kernels::MatMulKernel(pa, pb, pc, lo, hi, k, n);
              });
  return out;
}

Tensor MatVec(const Tensor& a, const Tensor& x) {
  ETUDE_CHECK(a.rank() == 2 && x.rank() == 1) << "MatVec shape error";
  ETUDE_CHECK(a.dim(1) == x.dim(0)) << "MatVec inner dims mismatch";
  const int64_t m = a.dim(0), k = a.dim(1);
  ETUDE_OP_SPAN("MatVec", 2.0 * static_cast<double>(m * k));
  Tensor out({m});
  const float* pa = a.data();
  const float* px = x.data();
  float* po = out.data();
  const int64_t grain =
      RowGrain(2.0 * static_cast<double>(k), kDenseFlopGrain);
  ParallelFor(0, m, grain, [pa, px, po, k](int64_t lo, int64_t hi) {
    ETUDE_TRACE_SPAN("MatVec.chunk", "op");
    kernels::MatVecKernel(pa, px, po, lo, hi, k);
  });
  return out;
}

Tensor Linear(const Tensor& x, const Tensor& weight, const Tensor& bias) {
  ETUDE_CHECK(x.rank() == 2 && weight.rank() == 2) << "Linear shape error";
  ETUDE_CHECK(x.dim(1) == weight.dim(1))
      << "Linear in-features mismatch: " << x.ShapeString() << " vs "
      << weight.ShapeString();
  const int64_t n = x.dim(0), in = x.dim(1), out_features = weight.dim(0);
  const bool has_bias = bias.numel() > 0;
  if (has_bias) {
    ETUDE_CHECK(bias.rank() == 1 && bias.dim(0) == out_features)
        << "Linear bias shape error";
  }
  ETUDE_OP_SPAN("Linear", 2.0 * static_cast<double>(n * in) * static_cast<double>(out_features));
  Tensor out({n, out_features});
  const float* px = x.data();
  const float* pw = weight.data();
  const float* pbias = bias.data();
  float* po = out.data();
  // y = x @ W^T: each output row is a MatVec of W against one x row.
  // A single input row parallelises over W's rows instead.
  if (n == 1) {
    const int64_t grain =
        RowGrain(2.0 * static_cast<double>(in), kDenseFlopGrain);
    ParallelFor(0, out_features, grain,
                [&](int64_t lo, int64_t hi) {
                  ETUDE_TRACE_SPAN("Linear.chunk", "op");
                  kernels::MatVecKernel(pw, px, po, lo, hi, in);
                  if (has_bias) {
                    for (int64_t o = lo; o < hi; ++o) po[o] += pbias[o];
                  }
                });
    return out;
  }
  const int64_t grain = RowGrain(
      2.0 * static_cast<double>(in) * static_cast<double>(out_features),
      kDenseFlopGrain);
  ParallelFor(0, n, grain, [&](int64_t lo, int64_t hi) {
    ETUDE_TRACE_SPAN("Linear.chunk", "op");
    for (int64_t i = lo; i < hi; ++i) {
      float* orow = po + i * out_features;
      kernels::MatVecKernel(pw, px + i * in, orow, 0, out_features, in);
      if (has_bias) {
        for (int64_t o = 0; o < out_features; ++o) orow[o] += pbias[o];
      }
    }
  });
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add");
  ETUDE_OP_SPAN("Add", 1.0 * static_cast<double>(a.numel()));
  return ElementwiseBinary(a, b, [](float u, float v) { return u + v; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub");
  ETUDE_OP_SPAN("Sub", 1.0 * static_cast<double>(a.numel()));
  return ElementwiseBinary(a, b, [](float u, float v) { return u - v; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul");
  ETUDE_OP_SPAN("Mul", 1.0 * static_cast<double>(a.numel()));
  return ElementwiseBinary(a, b, [](float u, float v) { return u * v; });
}

Tensor AddRowwise(const Tensor& a, const Tensor& bias) {
  ETUDE_CHECK(a.rank() == 2 && bias.rank() == 1) << "AddRowwise shape error";
  ETUDE_CHECK(a.dim(1) == bias.dim(0)) << "AddRowwise width mismatch";
  ETUDE_OP_SPAN("AddRowwise", 1.0 * static_cast<double>(a.numel()));
  Tensor out(a.shape());
  const int64_t n = a.dim(0), d = a.dim(1);
  const float* src = a.data();
  const float* pb = bias.data();
  float* dst = out.data();
  ParallelFor(0, n, RowGrain(static_cast<double>(d), kElementwiseGrain),
              [src, pb, dst, d](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                  for (int64_t j = 0; j < d; ++j) {
                    dst[i * d + j] = src[i * d + j] + pb[j];
                  }
                }
              });
  return out;
}

Tensor Scale(const Tensor& a, float factor) {
  ETUDE_OP_SPAN("Scale", 1.0 * static_cast<double>(a.numel()));
  return ElementwiseUnary(a, [factor](float v) { return v * factor; });
}

Tensor AddScalar(const Tensor& a, float value) {
  ETUDE_OP_SPAN("AddScalar", 1.0 * static_cast<double>(a.numel()));
  return ElementwiseUnary(a, [value](float v) { return v + value; });
}

Tensor Sigmoid(const Tensor& a) {
  ETUDE_OP_SPAN("Sigmoid", 4.0 * static_cast<double>(a.numel()));
  return ElementwiseUnary(
      a, [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
}

Tensor Tanh(const Tensor& a) {
  ETUDE_OP_SPAN("Tanh", 4.0 * static_cast<double>(a.numel()));
  return ElementwiseUnary(a, [](float v) { return std::tanh(v); });
}

Tensor Relu(const Tensor& a) {
  ETUDE_OP_SPAN("Relu", 1.0 * static_cast<double>(a.numel()));
  return ElementwiseUnary(a, [](float v) { return v > 0.0f ? v : 0.0f; });
}

Tensor Gelu(const Tensor& a) {
  ETUDE_OP_SPAN("Gelu", 8.0 * static_cast<double>(a.numel()));
  // tanh approximation, as used by PyTorch's gelu(approximate="tanh").
  return ElementwiseUnary(a, [](float v) {
    const float c = 0.7978845608028654f;  // sqrt(2/pi)
    return 0.5f * v * (1.0f + std::tanh(c * (v + 0.044715f * v * v * v)));
  });
}

Tensor Softmax(const Tensor& a) {
  ETUDE_CHECK(a.rank() >= 1) << "Softmax requires rank >= 1";
  const int64_t width = a.dim(a.rank() - 1);
  ETUDE_CHECK(width > 0) << "Softmax over empty dimension";
  ETUDE_OP_SPAN("Softmax", 3.0 * static_cast<double>(a.numel()));
  const int64_t rows = a.numel() / width;
  Tensor out(a.shape());
  const float* src = a.data();
  float* dst = out.data();
  ParallelFor(
      0, rows, RowGrain(static_cast<double>(width), kElementwiseGrain),
      [src, dst, width](int64_t lo, int64_t hi) {
        ETUDE_TRACE_SPAN("Softmax.chunk", "op");
        for (int64_t r = lo; r < hi; ++r) {
          const float* in = src + r * width;
          float* o = dst + r * width;
          float max_value = in[0];
          for (int64_t j = 1; j < width; ++j) {
            max_value = std::max(max_value, in[j]);
          }
          float sum = 0.0f;
          for (int64_t j = 0; j < width; ++j) {
            o[j] = std::exp(in[j] - max_value);
            sum += o[j];
          }
          const float inv = 1.0f / sum;
          for (int64_t j = 0; j < width; ++j) o[j] *= inv;
        }
      });
  return out;
}

Tensor LayerNorm(const Tensor& a, const Tensor& gain, const Tensor& bias,
                 float epsilon) {
  ETUDE_CHECK(a.rank() >= 1) << "LayerNorm requires rank >= 1";
  const int64_t width = a.dim(a.rank() - 1);
  ETUDE_CHECK(gain.rank() == 1 && gain.dim(0) == width) << "LayerNorm gain";
  ETUDE_CHECK(bias.rank() == 1 && bias.dim(0) == width) << "LayerNorm bias";
  ETUDE_OP_SPAN("LayerNorm", 6.0 * static_cast<double>(a.numel()));
  const int64_t rows = a.numel() / width;
  Tensor out(a.shape());
  const float* src = a.data();
  const float* pgain = gain.data();
  const float* pbias = bias.data();
  float* dst = out.data();
  ParallelFor(
      0, rows, RowGrain(static_cast<double>(width), kElementwiseGrain),
      [src, pgain, pbias, dst, width, epsilon](int64_t lo, int64_t hi) {
        ETUDE_TRACE_SPAN("LayerNorm.chunk", "op");
        for (int64_t r = lo; r < hi; ++r) {
          const float* in = src + r * width;
          float* o = dst + r * width;
          float mean = 0.0f;
          for (int64_t j = 0; j < width; ++j) mean += in[j];
          mean /= static_cast<float>(width);
          float var = 0.0f;
          for (int64_t j = 0; j < width; ++j) {
            const float delta = in[j] - mean;
            var += delta * delta;
          }
          var /= static_cast<float>(width);
          const float inv_std = 1.0f / std::sqrt(var + epsilon);
          for (int64_t j = 0; j < width; ++j) {
            o[j] = (in[j] - mean) * inv_std * pgain[j] + pbias[j];
          }
        }
      });
  return out;
}

Tensor AddLayerNorm(const Tensor& a, const Tensor& b, const Tensor& gain,
                    const Tensor& bias, float epsilon) {
  CheckSameShape(a, b, "AddLayerNorm");
  ETUDE_CHECK(a.rank() >= 1) << "AddLayerNorm requires rank >= 1";
  const int64_t width = a.dim(a.rank() - 1);
  ETUDE_CHECK(gain.rank() == 1 && gain.dim(0) == width)
      << "AddLayerNorm gain";
  ETUDE_CHECK(bias.rank() == 1 && bias.dim(0) == width)
      << "AddLayerNorm bias";
  // 1 add + 6 LayerNorm FLOPs per element: the unfused pair's total.
  ETUDE_OP_SPAN("AddLayerNorm", 7.0 * static_cast<double>(a.numel()));
  const int64_t rows = a.numel() / width;
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  const float* pgain = gain.data();
  const float* pbias = bias.data();
  float* dst = out.data();
  ParallelFor(
      0, rows, RowGrain(static_cast<double>(width), kElementwiseGrain),
      [pa, pb, pgain, pbias, dst, width, epsilon](int64_t lo, int64_t hi) {
        ETUDE_TRACE_SPAN("AddLayerNorm.chunk", "op");
        for (int64_t r = lo; r < hi; ++r) {
          const float* ra = pa + r * width;
          const float* rb = pb + r * width;
          float* o = dst + r * width;
          // The sum lands in the output row first, so the normalisation
          // below reads the exact float values the unfused Add would
          // have materialised — keeps the fused path bit-identical.
          for (int64_t j = 0; j < width; ++j) o[j] = ra[j] + rb[j];
          float mean = 0.0f;
          for (int64_t j = 0; j < width; ++j) mean += o[j];
          mean /= static_cast<float>(width);
          float var = 0.0f;
          for (int64_t j = 0; j < width; ++j) {
            const float delta = o[j] - mean;
            var += delta * delta;
          }
          var /= static_cast<float>(width);
          const float inv_std = 1.0f / std::sqrt(var + epsilon);
          for (int64_t j = 0; j < width; ++j) {
            o[j] = (o[j] - mean) * inv_std * pgain[j] + pbias[j];
          }
        }
      });
  return out;
}

Tensor AddSigmoid(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "AddSigmoid");
  // 1 add + 4 sigmoid FLOPs per element: the unfused pair's total.
  ETUDE_OP_SPAN("AddSigmoid", 5.0 * static_cast<double>(a.numel()));
  return ElementwiseBinary(a, b, [](float u, float v) {
    const float sum = u + v;
    return 1.0f / (1.0f + std::exp(-sum));
  });
}

Tensor Embedding(const Tensor& table, const std::vector<int64_t>& indices) {
  ETUDE_CHECK(table.rank() == 2) << "Embedding table must be rank 2";
  const int64_t vocab = table.dim(0), d = table.dim(1);
  const double rows = static_cast<double>(indices.size());
  // Pure data movement: rows read from the table + rows written out.
  ETUDE_OP_SPAN_BYTES("Embedding", 0.0,
                      2.0 * rows * static_cast<double>(d) * sizeof(float));
  Tensor out({static_cast<int64_t>(indices.size()), d});
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t idx = indices[i];
    ETUDE_CHECK(idx >= 0 && idx < vocab)
        << "Embedding index " << idx << " out of vocab " << vocab;
    const float* src = table.data() + idx * d;
    float* dst = out.data() + static_cast<int64_t>(i) * d;
    std::copy(src, src + d, dst);
  }
  return out;
}

Tensor Concat(const Tensor& a, const Tensor& b) {
  ETUDE_OP_SPAN_BYTES(
      "Concat", 0.0,
      2.0 * static_cast<double>(a.numel() + b.numel()) * sizeof(float));
  if (a.rank() == 1 && b.rank() == 1) {
    Tensor out({a.dim(0) + b.dim(0)});
    std::copy(a.data(), a.data() + a.numel(), out.data());
    std::copy(b.data(), b.data() + b.numel(), out.data() + a.numel());
    return out;
  }
  ETUDE_CHECK(a.rank() == 2 && b.rank() == 2 && a.dim(0) == b.dim(0))
      << "Concat requires equal row counts";
  const int64_t n = a.dim(0), da = a.dim(1), db = b.dim(1);
  Tensor out({n, da + db});
  for (int64_t i = 0; i < n; ++i) {
    std::copy(a.data() + i * da, a.data() + (i + 1) * da,
              out.data() + i * (da + db));
    std::copy(b.data() + i * db, b.data() + (i + 1) * db,
              out.data() + i * (da + db) + da);
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  ETUDE_CHECK(a.rank() == 2) << "Transpose requires rank 2";
  const int64_t m = a.dim(0), n = a.dim(1);
  ETUDE_OP_SPAN_BYTES("Transpose", 0.0,
                      2.0 * static_cast<double>(a.numel()) * sizeof(float));
  Tensor out({n, m});
  const float* src = a.data();
  float* dst = out.data();
  // Blocked: each 32x32 tile fits both its row-major reads and its
  // column-major writes in L1, instead of striding the full output.
  constexpr int64_t kTile = 32;
  ParallelFor(
      0, m, std::max<int64_t>(kTile, kElementwiseGrain / std::max<int64_t>(1, n)),
      [src, dst, m, n](int64_t lo, int64_t hi) {
        for (int64_t i0 = lo; i0 < hi; i0 += kTile) {
          const int64_t i1 = std::min(hi, i0 + kTile);
          for (int64_t j0 = 0; j0 < n; j0 += kTile) {
            const int64_t j1 = std::min(n, j0 + kTile);
            for (int64_t i = i0; i < i1; ++i) {
              for (int64_t j = j0; j < j1; ++j) {
                dst[j * m + i] = src[i * n + j];
              }
            }
          }
        }
      });
  return out;
}

Tensor MeanRows(const Tensor& a) {
  ETUDE_CHECK(a.rank() == 2) << "MeanRows requires rank 2";
  const int64_t n = a.dim(0), d = a.dim(1);
  ETUDE_CHECK(n > 0) << "MeanRows over empty tensor";
  // Fused sum+scale: one pass, and the op attributes its work exactly
  // once (n*d adds + d multiplies) instead of delegating to SumRows and
  // Scale spans.
  ETUDE_OP_SPAN("MeanRows",
                static_cast<double>(a.numel()) + static_cast<double>(d));
  Tensor out({d});
  const float* src = a.data();
  float* dst = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) dst[j] += src[i * d + j];
  }
  const float inv = 1.0f / static_cast<float>(n);
  for (int64_t j = 0; j < d; ++j) dst[j] *= inv;
  return out;
}

Tensor SumRows(const Tensor& a) {
  ETUDE_CHECK(a.rank() == 2) << "SumRows requires rank 2";
  const int64_t n = a.dim(0), d = a.dim(1);
  ETUDE_CHECK(n > 0) << "SumRows over empty tensor";
  ETUDE_OP_SPAN("SumRows", 1.0 * static_cast<double>(a.numel()));
  Tensor out({d});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) out[j] += a[i * d + j];
  }
  return out;
}

Tensor L2NormalizeRows(const Tensor& a, float epsilon) {
  ETUDE_OP_SPAN("L2NormalizeRows", 3.0 * static_cast<double>(a.numel()));
  if (a.rank() == 1) {
    const float norm =
        kernels::DotKernel(a.data(), a.data(), a.numel());
    const float inv = 1.0f / std::sqrt(std::max(norm, epsilon));
    return Scale(a, inv);
  }
  ETUDE_CHECK(a.rank() == 2) << "L2NormalizeRows requires rank 1 or 2";
  const int64_t n = a.dim(0), d = a.dim(1);
  Tensor out(a.shape());
  const float* src = a.data();
  float* dst = out.data();
  ParallelFor(0, n,
              RowGrain(3.0 * static_cast<double>(d), kElementwiseGrain),
              [src, dst, d, epsilon](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                  const float* row = src + i * d;
                  const float norm = kernels::DotKernel(row, row, d);
                  const float inv =
                      1.0f / std::sqrt(std::max(norm, epsilon));
                  for (int64_t j = 0; j < d; ++j) dst[i * d + j] = row[j] * inv;
                }
              });
  return out;
}

float Dot(const Tensor& a, const Tensor& b) {
  ETUDE_CHECK(a.rank() == 1 && b.rank() == 1 && a.dim(0) == b.dim(0))
      << "Dot requires equal-length vectors";
  ETUDE_OP_SPAN("Dot", 2.0 * static_cast<double>(a.numel()));
  return kernels::DotKernel(a.data(), b.data(), a.numel());
}

int64_t ArgMax(const Tensor& a) {
  ETUDE_CHECK(a.rank() == 1 && a.numel() > 0) << "ArgMax shape error";
  ETUDE_OP_SPAN("ArgMax", 1.0 * static_cast<double>(a.numel()));
  int64_t best = 0;
  for (int64_t i = 1; i < a.numel(); ++i) {
    if (a[i] > a[best]) best = i;
  }
  return best;
}

/// Sorts candidates by (score desc, index asc) — the order TopK/Mips
/// return — and trims to k.
TopKResult FinishTopK(std::vector<kernels::ScoredIndex>& candidates,
                      int64_t k) {
  std::sort(candidates.begin(), candidates.end(),
            [](const kernels::ScoredIndex& a, const kernels::ScoredIndex& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  const size_t keep =
      std::min<size_t>(candidates.size(), static_cast<size_t>(k));
  TopKResult result;
  result.indices.resize(keep);
  result.scores.resize(keep);
  for (size_t i = 0; i < keep; ++i) {
    result.scores[i] = candidates[i].first;
    result.indices[i] = candidates[i].second;
  }
  return result;
}

TopKResult TopK(const Tensor& scores, int64_t k) {
  ETUDE_CHECK(scores.rank() == 1) << "TopK requires rank 1";
  ETUDE_CHECK(k > 0) << "TopK requires k > 0";
  const int64_t n = scores.numel();
  k = std::min(k, n);
  ETUDE_OP_SPAN("TopK", static_cast<double>(n) * std::log2(static_cast<double>(std::max<int64_t>(k, 2))));
  // Bounded min-heap of (score, index): O(n log k). The cached cutoff
  // (heap minimum) keeps the common non-improving element to one
  // compare instead of an out-of-line heap call.
  const float* data = scores.data();
  std::vector<kernels::ScoredIndex> heap;
  heap.reserve(static_cast<size_t>(k));
  float cutoff = std::numeric_limits<float>::lowest();
  int64_t fill = 0;
  for (int64_t i = 0; i < n; ++i) {
    const float s = data[i];
    if (fill < k) {
      kernels::HeapPushBounded(heap, k, s, i);
      if (++fill == k) cutoff = heap.front().first;
    } else if (s > cutoff) {
      kernels::HeapPushBounded(heap, k, s, i);
      cutoff = heap.front().first;
    }
  }
  return FinishTopK(heap, k);
}

TopKResult Mips(const Tensor& item_embeddings, const Tensor& query,
                int64_t k) {
  ETUDE_CHECK(item_embeddings.rank() == 2 && query.rank() == 1)
      << "Mips shape error";
  ETUDE_CHECK(item_embeddings.dim(1) == query.dim(0))
      << "Mips dim mismatch: " << item_embeddings.ShapeString() << " vs "
      << query.ShapeString();
  ETUDE_CHECK(k > 0) << "Mips requires k > 0";
  const int64_t c = item_embeddings.dim(0), d = item_embeddings.dim(1);
  k = std::min(k, c);
  // The paper's O(C(d + log k)) term: the op that dominates SBR inference.
  ETUDE_OP_SPAN("Mips",
                2.0 * static_cast<double>(c) * static_cast<double>(d) +
                    static_cast<double>(c) *
                        std::log2(static_cast<double>(std::max<int64_t>(k, 2))));
  // Fused streaming scan: no [C] score tensor. The catalog is cut into
  // one contiguous range per worker; each range keeps its own bounded
  // min-heap (k entries), and the heaps are merged by (score, index) —
  // memory traffic on scores drops from O(C) writes+reads to
  // O(k * ranges). The range count depends only on the configured thread
  // count, so results are deterministic for a fixed --threads N.
  int64_t num_ranges = 1;
  if (NumThreads() > 1 && !InParallelRegion() &&
      c >= 2 * kMipsMinRowsPerRange) {
    num_ranges = std::min<int64_t>(NumThreads(), c / kMipsMinRowsPerRange);
  }
  const float* items = item_embeddings.data();
  const float* q = query.data();
  std::vector<std::vector<kernels::ScoredIndex>> heaps(
      static_cast<size_t>(num_ranges));
  ParallelFor(0, num_ranges, 1,
              [items, q, d, c, k, num_ranges, &heaps](int64_t lo,
                                                      int64_t hi) {
                for (int64_t r = lo; r < hi; ++r) {
                  ETUDE_TRACE_SPAN("Mips.chunk", "op");
                  const int64_t begin = c * r / num_ranges;
                  const int64_t end = c * (r + 1) / num_ranges;
                  auto& heap = heaps[static_cast<size_t>(r)];
                  heap.reserve(static_cast<size_t>(k));
                  kernels::MipsScanKernel(items, q, d, begin, end, k, heap);
                }
              });
  std::vector<kernels::ScoredIndex> candidates = std::move(heaps[0]);
  for (size_t r = 1; r < heaps.size(); ++r) {
    candidates.insert(candidates.end(), heaps[r].begin(), heaps[r].end());
  }
  return FinishTopK(candidates, k);
}

Tensor GruCell(const Tensor& input, const Tensor& hidden, const Tensor& w_ih,
               const Tensor& w_hh, const Tensor& b_ih, const Tensor& b_hh) {
  ETUDE_CHECK(input.rank() == 1 && hidden.rank() == 1) << "GruCell rank";
  const int64_t h = hidden.dim(0);
  ETUDE_CHECK(w_ih.rank() == 2 && w_ih.dim(0) == 3 * h &&
              w_ih.dim(1) == input.dim(0))
      << "GruCell w_ih shape";
  ETUDE_CHECK(w_hh.rank() == 2 && w_hh.dim(0) == 3 * h && w_hh.dim(1) == h)
      << "GruCell w_hh shape";
  ETUDE_CHECK(b_ih.dim(0) == 3 * h && b_hh.dim(0) == 3 * h)
      << "GruCell bias shape";
  ETUDE_OP_SPAN("GruCell",
                6.0 * static_cast<double>(h) *
                        static_cast<double>(input.dim(0) + h) +
                    12.0 * static_cast<double>(h));
  const Tensor gi = Add(MatVec(w_ih, input), b_ih);   // [3h]
  const Tensor gh = Add(MatVec(w_hh, hidden), b_hh);  // [3h]
  Tensor next({h});
  for (int64_t j = 0; j < h; ++j) {
    const float r = 1.0f / (1.0f + std::exp(-(gi[j] + gh[j])));
    const float z = 1.0f / (1.0f + std::exp(-(gi[h + j] + gh[h + j])));
    const float n = std::tanh(gi[2 * h + j] + r * gh[2 * h + j]);
    next[j] = (1.0f - z) * n + z * hidden[j];
  }
  return next;
}

Tensor ScaledDotProductAttention(const Tensor& q, const Tensor& k,
                                 const Tensor& v) {
  ETUDE_CHECK(q.rank() == 2 && k.rank() == 2 && v.rank() == 2)
      << "attention requires rank-2 q,k,v";
  ETUDE_CHECK(q.dim(1) == k.dim(1) && k.dim(0) == v.dim(0))
      << "attention shape mismatch";
  ETUDE_OP_SPAN("ScaledDotProductAttention",
                4.0 * static_cast<double>(q.dim(0)) *
                        static_cast<double>(k.dim(0)) *
                        static_cast<double>(q.dim(1)) +
                    3.0 * static_cast<double>(q.dim(0)) *
                        static_cast<double>(k.dim(0)));
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(q.dim(1)));
  Tensor logits = Scale(MatMul(q, Transpose(k)), inv_sqrt_d);  // [n,m]
  Tensor weights = Softmax(logits);
  return MatMul(weights, v);  // [n,d]
}

}  // namespace etude::tensor

#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "obs/op_hook.h"

namespace etude::tensor {

namespace {
void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  ETUDE_CHECK(a.shape() == b.shape())
      << op << " requires identical shapes, got " << a.ShapeString()
      << " vs " << b.ShapeString();
}

template <typename UnaryFn>
Tensor ElementwiseUnary(const Tensor& a, UnaryFn fn) {
  Tensor out(a.shape());
  const float* src = a.data();
  float* dst = out.data();
  for (int64_t i = 0; i < a.numel(); ++i) dst[i] = fn(src[i]);
  return out;
}
}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  ETUDE_CHECK(a.rank() == 2 && b.rank() == 2) << "MatMul requires rank 2";
  ETUDE_CHECK(a.dim(1) == b.dim(0))
      << "MatMul inner dims mismatch: " << a.ShapeString() << " @ "
      << b.ShapeString();
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  ETUDE_OP_SPAN("MatMul", 2.0 * static_cast<double>(m * k) * static_cast<double>(n));
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  // ikj loop order: streams B row-wise, keeps C row hot.
  for (int64_t i = 0; i < m; ++i) {
    float* crow = pc + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor MatVec(const Tensor& a, const Tensor& x) {
  ETUDE_CHECK(a.rank() == 2 && x.rank() == 1) << "MatVec shape error";
  ETUDE_CHECK(a.dim(1) == x.dim(0)) << "MatVec inner dims mismatch";
  const int64_t m = a.dim(0), k = a.dim(1);
  ETUDE_OP_SPAN("MatVec", 2.0 * static_cast<double>(m * k));
  Tensor out({m});
  const float* pa = a.data();
  const float* px = x.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* row = pa + i * k;
    float acc = 0.0f;
    for (int64_t j = 0; j < k; ++j) acc += row[j] * px[j];
    out[i] = acc;
  }
  return out;
}

Tensor Linear(const Tensor& x, const Tensor& weight, const Tensor& bias) {
  ETUDE_CHECK(x.rank() == 2 && weight.rank() == 2) << "Linear shape error";
  ETUDE_CHECK(x.dim(1) == weight.dim(1))
      << "Linear in-features mismatch: " << x.ShapeString() << " vs "
      << weight.ShapeString();
  const int64_t n = x.dim(0), in = x.dim(1), out_features = weight.dim(0);
  const bool has_bias = bias.numel() > 0;
  if (has_bias) {
    ETUDE_CHECK(bias.rank() == 1 && bias.dim(0) == out_features)
        << "Linear bias shape error";
  }
  ETUDE_OP_SPAN("Linear", 2.0 * static_cast<double>(n * in) * static_cast<double>(out_features));
  Tensor out({n, out_features});
  const float* px = x.data();
  const float* pw = weight.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    const float* xrow = px + i * in;
    float* orow = po + i * out_features;
    for (int64_t o = 0; o < out_features; ++o) {
      const float* wrow = pw + o * in;
      float acc = has_bias ? bias[o] : 0.0f;
      for (int64_t j = 0; j < in; ++j) acc += xrow[j] * wrow[j];
      orow[o] = acc;
    }
  }
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add");
  ETUDE_OP_SPAN("Add", 1.0 * static_cast<double>(a.numel()));
  Tensor out(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] + b[i];
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub");
  ETUDE_OP_SPAN("Sub", 1.0 * static_cast<double>(a.numel()));
  Tensor out(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] - b[i];
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul");
  ETUDE_OP_SPAN("Mul", 1.0 * static_cast<double>(a.numel()));
  Tensor out(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] * b[i];
  return out;
}

Tensor AddRowwise(const Tensor& a, const Tensor& bias) {
  ETUDE_CHECK(a.rank() == 2 && bias.rank() == 1) << "AddRowwise shape error";
  ETUDE_CHECK(a.dim(1) == bias.dim(0)) << "AddRowwise width mismatch";
  ETUDE_OP_SPAN("AddRowwise", 1.0 * static_cast<double>(a.numel()));
  Tensor out(a.shape());
  const int64_t n = a.dim(0), d = a.dim(1);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) out[i * d + j] = a[i * d + j] + bias[j];
  }
  return out;
}

Tensor Scale(const Tensor& a, float factor) {
  ETUDE_OP_SPAN("Scale", 1.0 * static_cast<double>(a.numel()));
  return ElementwiseUnary(a, [factor](float v) { return v * factor; });
}

Tensor AddScalar(const Tensor& a, float value) {
  ETUDE_OP_SPAN("AddScalar", 1.0 * static_cast<double>(a.numel()));
  return ElementwiseUnary(a, [value](float v) { return v + value; });
}

Tensor Sigmoid(const Tensor& a) {
  ETUDE_OP_SPAN("Sigmoid", 4.0 * static_cast<double>(a.numel()));
  return ElementwiseUnary(
      a, [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
}

Tensor Tanh(const Tensor& a) {
  ETUDE_OP_SPAN("Tanh", 4.0 * static_cast<double>(a.numel()));
  return ElementwiseUnary(a, [](float v) { return std::tanh(v); });
}

Tensor Relu(const Tensor& a) {
  ETUDE_OP_SPAN("Relu", 1.0 * static_cast<double>(a.numel()));
  return ElementwiseUnary(a, [](float v) { return v > 0.0f ? v : 0.0f; });
}

Tensor Gelu(const Tensor& a) {
  ETUDE_OP_SPAN("Gelu", 8.0 * static_cast<double>(a.numel()));
  // tanh approximation, as used by PyTorch's gelu(approximate="tanh").
  return ElementwiseUnary(a, [](float v) {
    const float c = 0.7978845608028654f;  // sqrt(2/pi)
    return 0.5f * v * (1.0f + std::tanh(c * (v + 0.044715f * v * v * v)));
  });
}

Tensor Softmax(const Tensor& a) {
  ETUDE_CHECK(a.rank() >= 1) << "Softmax requires rank >= 1";
  const int64_t width = a.dim(a.rank() - 1);
  ETUDE_CHECK(width > 0) << "Softmax over empty dimension";
  ETUDE_OP_SPAN("Softmax", 3.0 * static_cast<double>(a.numel()));
  const int64_t rows = a.numel() / width;
  Tensor out(a.shape());
  const float* src = a.data();
  float* dst = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* in = src + r * width;
    float* o = dst + r * width;
    float max_value = in[0];
    for (int64_t j = 1; j < width; ++j) max_value = std::max(max_value, in[j]);
    float sum = 0.0f;
    for (int64_t j = 0; j < width; ++j) {
      o[j] = std::exp(in[j] - max_value);
      sum += o[j];
    }
    const float inv = 1.0f / sum;
    for (int64_t j = 0; j < width; ++j) o[j] *= inv;
  }
  return out;
}

Tensor LayerNorm(const Tensor& a, const Tensor& gain, const Tensor& bias,
                 float epsilon) {
  ETUDE_CHECK(a.rank() >= 1) << "LayerNorm requires rank >= 1";
  const int64_t width = a.dim(a.rank() - 1);
  ETUDE_CHECK(gain.rank() == 1 && gain.dim(0) == width) << "LayerNorm gain";
  ETUDE_CHECK(bias.rank() == 1 && bias.dim(0) == width) << "LayerNorm bias";
  ETUDE_OP_SPAN("LayerNorm", 6.0 * static_cast<double>(a.numel()));
  const int64_t rows = a.numel() / width;
  Tensor out(a.shape());
  for (int64_t r = 0; r < rows; ++r) {
    const float* in = a.data() + r * width;
    float* o = out.data() + r * width;
    float mean = 0.0f;
    for (int64_t j = 0; j < width; ++j) mean += in[j];
    mean /= static_cast<float>(width);
    float var = 0.0f;
    for (int64_t j = 0; j < width; ++j) {
      const float delta = in[j] - mean;
      var += delta * delta;
    }
    var /= static_cast<float>(width);
    const float inv_std = 1.0f / std::sqrt(var + epsilon);
    for (int64_t j = 0; j < width; ++j) {
      o[j] = (in[j] - mean) * inv_std * gain[j] + bias[j];
    }
  }
  return out;
}

Tensor Embedding(const Tensor& table, const std::vector<int64_t>& indices) {
  ETUDE_CHECK(table.rank() == 2) << "Embedding table must be rank 2";
  const int64_t vocab = table.dim(0), d = table.dim(1);
  ETUDE_OP_SPAN("Embedding", 0.0);
  Tensor out({static_cast<int64_t>(indices.size()), d});
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t idx = indices[i];
    ETUDE_CHECK(idx >= 0 && idx < vocab)
        << "Embedding index " << idx << " out of vocab " << vocab;
    const float* src = table.data() + idx * d;
    float* dst = out.data() + static_cast<int64_t>(i) * d;
    std::copy(src, src + d, dst);
  }
  return out;
}

Tensor Concat(const Tensor& a, const Tensor& b) {
  ETUDE_OP_SPAN("Concat", 0.0);
  if (a.rank() == 1 && b.rank() == 1) {
    Tensor out({a.dim(0) + b.dim(0)});
    std::copy(a.data(), a.data() + a.numel(), out.data());
    std::copy(b.data(), b.data() + b.numel(), out.data() + a.numel());
    return out;
  }
  ETUDE_CHECK(a.rank() == 2 && b.rank() == 2 && a.dim(0) == b.dim(0))
      << "Concat requires equal row counts";
  const int64_t n = a.dim(0), da = a.dim(1), db = b.dim(1);
  Tensor out({n, da + db});
  for (int64_t i = 0; i < n; ++i) {
    std::copy(a.data() + i * da, a.data() + (i + 1) * da,
              out.data() + i * (da + db));
    std::copy(b.data() + i * db, b.data() + (i + 1) * db,
              out.data() + i * (da + db) + da);
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  ETUDE_CHECK(a.rank() == 2) << "Transpose requires rank 2";
  const int64_t m = a.dim(0), n = a.dim(1);
  ETUDE_OP_SPAN("Transpose", 0.0);
  Tensor out({n, m});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) out[j * m + i] = a[i * n + j];
  }
  return out;
}

Tensor MeanRows(const Tensor& a) {
  ETUDE_OP_SPAN("MeanRows", 1.0 * static_cast<double>(a.numel()));
  Tensor sum = SumRows(a);
  return Scale(sum, 1.0f / static_cast<float>(a.dim(0)));
}

Tensor SumRows(const Tensor& a) {
  ETUDE_CHECK(a.rank() == 2) << "SumRows requires rank 2";
  const int64_t n = a.dim(0), d = a.dim(1);
  ETUDE_CHECK(n > 0) << "SumRows over empty tensor";
  ETUDE_OP_SPAN("SumRows", 1.0 * static_cast<double>(a.numel()));
  Tensor out({d});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) out[j] += a[i * d + j];
  }
  return out;
}

Tensor L2NormalizeRows(const Tensor& a, float epsilon) {
  ETUDE_OP_SPAN("L2NormalizeRows", 3.0 * static_cast<double>(a.numel()));
  if (a.rank() == 1) {
    float norm = 0.0f;
    for (int64_t i = 0; i < a.numel(); ++i) norm += a[i] * a[i];
    const float inv = 1.0f / std::sqrt(std::max(norm, epsilon));
    return Scale(a, inv);
  }
  ETUDE_CHECK(a.rank() == 2) << "L2NormalizeRows requires rank 1 or 2";
  const int64_t n = a.dim(0), d = a.dim(1);
  Tensor out(a.shape());
  for (int64_t i = 0; i < n; ++i) {
    float norm = 0.0f;
    for (int64_t j = 0; j < d; ++j) norm += a[i * d + j] * a[i * d + j];
    const float inv = 1.0f / std::sqrt(std::max(norm, epsilon));
    for (int64_t j = 0; j < d; ++j) out[i * d + j] = a[i * d + j] * inv;
  }
  return out;
}

float Dot(const Tensor& a, const Tensor& b) {
  ETUDE_CHECK(a.rank() == 1 && b.rank() == 1 && a.dim(0) == b.dim(0))
      << "Dot requires equal-length vectors";
  ETUDE_OP_SPAN("Dot", 2.0 * static_cast<double>(a.numel()));
  float acc = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) acc += a[i] * b[i];
  return acc;
}

int64_t ArgMax(const Tensor& a) {
  ETUDE_CHECK(a.rank() == 1 && a.numel() > 0) << "ArgMax shape error";
  ETUDE_OP_SPAN("ArgMax", 1.0 * static_cast<double>(a.numel()));
  int64_t best = 0;
  for (int64_t i = 1; i < a.numel(); ++i) {
    if (a[i] > a[best]) best = i;
  }
  return best;
}

TopKResult TopK(const Tensor& scores, int64_t k) {
  ETUDE_CHECK(scores.rank() == 1) << "TopK requires rank 1";
  ETUDE_CHECK(k > 0) << "TopK requires k > 0";
  const int64_t n = scores.numel();
  k = std::min(k, n);
  ETUDE_OP_SPAN("TopK", static_cast<double>(n) * std::log2(static_cast<double>(std::max<int64_t>(k, 2))));
  // Bounded min-heap of (score, index): O(n log k).
  using Entry = std::pair<float, int64_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (int64_t i = 0; i < n; ++i) {
    const float s = scores[i];
    if (static_cast<int64_t>(heap.size()) < k) {
      heap.emplace(s, i);
    } else if (s > heap.top().first) {
      heap.pop();
      heap.emplace(s, i);
    }
  }
  TopKResult result;
  result.indices.resize(static_cast<size_t>(heap.size()));
  result.scores.resize(static_cast<size_t>(heap.size()));
  for (int64_t i = static_cast<int64_t>(heap.size()) - 1; i >= 0; --i) {
    result.scores[static_cast<size_t>(i)] = heap.top().first;
    result.indices[static_cast<size_t>(i)] = heap.top().second;
    heap.pop();
  }
  return result;
}

TopKResult Mips(const Tensor& item_embeddings, const Tensor& query,
                int64_t k) {
  // The paper's O(C(d + log k)) term: the op that dominates SBR inference.
  ETUDE_OP_SPAN("Mips",
                2.0 * static_cast<double>(item_embeddings.dim(0)) *
                        static_cast<double>(query.dim(0)) +
                    static_cast<double>(item_embeddings.dim(0)) *
                        std::log2(static_cast<double>(std::max<int64_t>(k, 2))));
  Tensor scores = MatVec(item_embeddings, query);
  return TopK(scores, k);
}

Tensor GruCell(const Tensor& input, const Tensor& hidden, const Tensor& w_ih,
               const Tensor& w_hh, const Tensor& b_ih, const Tensor& b_hh) {
  ETUDE_CHECK(input.rank() == 1 && hidden.rank() == 1) << "GruCell rank";
  const int64_t h = hidden.dim(0);
  ETUDE_CHECK(w_ih.rank() == 2 && w_ih.dim(0) == 3 * h &&
              w_ih.dim(1) == input.dim(0))
      << "GruCell w_ih shape";
  ETUDE_CHECK(w_hh.rank() == 2 && w_hh.dim(0) == 3 * h && w_hh.dim(1) == h)
      << "GruCell w_hh shape";
  ETUDE_CHECK(b_ih.dim(0) == 3 * h && b_hh.dim(0) == 3 * h)
      << "GruCell bias shape";
  ETUDE_OP_SPAN("GruCell",
                6.0 * static_cast<double>(h) *
                        static_cast<double>(input.dim(0) + h) +
                    12.0 * static_cast<double>(h));
  const Tensor gi = Add(MatVec(w_ih, input), b_ih);   // [3h]
  const Tensor gh = Add(MatVec(w_hh, hidden), b_hh);  // [3h]
  Tensor next({h});
  for (int64_t j = 0; j < h; ++j) {
    const float r = 1.0f / (1.0f + std::exp(-(gi[j] + gh[j])));
    const float z = 1.0f / (1.0f + std::exp(-(gi[h + j] + gh[h + j])));
    const float n = std::tanh(gi[2 * h + j] + r * gh[2 * h + j]);
    next[j] = (1.0f - z) * n + z * hidden[j];
  }
  return next;
}

Tensor ScaledDotProductAttention(const Tensor& q, const Tensor& k,
                                 const Tensor& v) {
  ETUDE_CHECK(q.rank() == 2 && k.rank() == 2 && v.rank() == 2)
      << "attention requires rank-2 q,k,v";
  ETUDE_CHECK(q.dim(1) == k.dim(1) && k.dim(0) == v.dim(0))
      << "attention shape mismatch";
  ETUDE_OP_SPAN("ScaledDotProductAttention",
                4.0 * static_cast<double>(q.dim(0)) *
                        static_cast<double>(k.dim(0)) *
                        static_cast<double>(q.dim(1)) +
                    3.0 * static_cast<double>(q.dim(0)) *
                        static_cast<double>(k.dim(0)));
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(q.dim(1)));
  Tensor logits = Scale(MatMul(q, Transpose(k)), inv_sqrt_d);  // [n,m]
  Tensor weights = Softmax(logits);
  return MatMul(weights, v);  // [n,d]
}

}  // namespace etude::tensor

#include "tensor/plan_exec.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "common/logging.h"
#include "tensor/plan_analysis.h"

namespace etude::tensor {

namespace {

constexpr int64_t kAlignment = 64;

int64_t RoundUpAlign(int64_t bytes) {
  return (bytes + kAlignment - 1) / kAlignment * kAlignment;
}

int64_t EvalBytes(const CostPoly& poly, const Bindings& bindings) {
  return std::llround(poly.Eval(bindings));
}

std::vector<std::vector<int>> ConsumerIndex(const PlanGraph& plan) {
  std::vector<std::vector<int>> consumers(static_cast<size_t>(plan.size()));
  for (const PlanNode& node : plan.nodes()) {
    for (int input : node.inputs) {
      consumers[static_cast<size_t>(input)].push_back(node.id);
    }
  }
  return consumers;
}

/// Innermost repeat region per node (-1 at top level). Parents precede
/// children in plan.regions(), so a child's assignment overwrites its
/// parent's.
std::vector<int> RegionOf(const PlanGraph& plan) {
  std::vector<int> region_of(static_cast<size_t>(plan.size()), -1);
  const std::vector<RepeatRegion>& regions = plan.regions();
  for (size_t r = 0; r < regions.size(); ++r) {
    for (int i = regions[r].begin; i <= regions[r].end; ++i) {
      region_of[static_cast<size_t>(i)] = static_cast<int>(r);
    }
  }
  return region_of;
}

/// Greedy best-fit offset allocator over a free-list of 64-byte aligned
/// blocks: Alloc carves the smallest free block that fits (ties to the
/// lowest offset) or extends the arena; Free returns the block and
/// coalesces neighbours. The reported arena size is the high-water mark
/// of offset + RAW bytes — trailing alignment padding of the last block
/// is never touched, so the runtime buffer does not need it.
class BestFitArena {
 public:
  int64_t Alloc(int64_t bytes) {
    const int64_t need = RoundUpAlign(bytes);
    auto best = free_blocks_.end();
    for (auto it = free_blocks_.begin(); it != free_blocks_.end(); ++it) {
      if (it->second < need) continue;
      if (best == free_blocks_.end() || it->second < best->second) best = it;
    }
    int64_t offset;
    if (best != free_blocks_.end()) {
      offset = best->first;
      const int64_t remaining = best->second - need;
      free_blocks_.erase(best);
      if (remaining > 0) free_blocks_.emplace(offset + need, remaining);
    } else {
      offset = end_;
      end_ += need;
    }
    live_.emplace(offset, need);
    high_water_ = std::max(high_water_, offset + bytes);
    max_live_slots_ =
        std::max(max_live_slots_, static_cast<int>(live_.size()));
    return offset;
  }

  void Free(int64_t offset) {
    auto it = live_.find(offset);
    ETUDE_CHECK(it != live_.end())
        << "plan compiler freed unallocated offset " << offset;
    int64_t size = it->second;
    live_.erase(it);
    auto next = free_blocks_.lower_bound(offset);
    if (next != free_blocks_.end() && offset + size == next->first) {
      size += next->second;
      next = free_blocks_.erase(next);
    }
    if (next != free_blocks_.begin()) {
      auto prev = std::prev(next);
      if (prev->first + prev->second == offset) {
        offset = prev->first;
        size += prev->second;
        free_blocks_.erase(prev);
      }
    }
    free_blocks_.emplace(offset, size);
  }

  int64_t high_water() const { return high_water_; }
  int max_live_slots() const { return max_live_slots_; }
  bool all_free() const { return live_.empty(); }

 private:
  std::map<int64_t, int64_t> free_blocks_;  // offset -> aligned size
  std::map<int64_t, int64_t> live_;         // offset -> aligned size
  int64_t end_ = 0;
  int64_t high_water_ = 0;
  int max_live_slots_ = 0;
};

/// How the planner releases a node's per-instance output slot. The one
/// safety criterion: a slot's static free position must not precede the
/// runtime's last read of that buffer (frees are arena no-ops at
/// runtime, so freeing *later* than the runtime destructor is always
/// safe — it only costs arena bytes).
enum class FreeMode {
  /// Top-level node: free after the last instance of its death node
  /// (last consumer or enclosing-scope end, whichever is later) — the
  /// exact point AnalyzeLiveness retires it, mirroring C++ scoping.
  kAtDeath,
  /// Repeat-region node whose every consumer sits later in the same
  /// innermost region: the value is an iteration-local, dead when the
  /// iteration ends. Freed there, so the loop body reuses one slot.
  kIterEnd,
  /// Repeat-region node with no later consumer recorded (a loop-carried
  /// value like a GRU hidden state: the next iteration consumes it via
  /// a backward Link): instance i is freed right after instance i+1 is
  /// allocated — the move-assignment timing, when the runtime releases
  /// the old value — and the final instance at the node's death.
  kGrace,
};

struct Slot {
  int64_t offset = 0;
  bool live = false;
};

class PlanExpander {
 public:
  PlanExpander(const PlanGraph& plan, const Bindings& bindings,
               ExecutionPlan& out)
      : plan_(plan), bindings_(bindings), out_(out) {
    death_ = DeathIndices(plan);
    region_of_ = RegionOf(plan);
    const std::vector<std::vector<int>> consumers = ConsumerIndex(plan);
    const int n = plan.size();
    mode_.resize(static_cast<size_t>(n), FreeMode::kAtDeath);
    pending_.resize(static_cast<size_t>(n));
    deferred_.resize(static_cast<size_t>(n));
    for (int id = 0; id < n; ++id) {
      const int region = region_of_[static_cast<size_t>(id)];
      if (region < 0) continue;
      int last_consumer = -1;
      for (int c : consumers[static_cast<size_t>(id)]) {
        last_consumer = std::max(last_consumer, c);
      }
      mode_[static_cast<size_t>(id)] =
          (last_consumer > id &&
           last_consumer <= plan.regions()[static_cast<size_t>(region)].end)
              ? FreeMode::kIterEnd
              : FreeMode::kGrace;
    }
  }

  void Run() {
    EmitRange(0, plan_.size() - 1, -1);
    // Whatever is still live (request outputs, nodes whose death never
    // re-executed because a trip count was zero) retires at the end of
    // the request; position is immaterial, but the allocator invariant
    // that everything allocated is freed keeps the replay honest.
    for (size_t id = 0; id < pending_.size(); ++id) {
      ReleasePending(static_cast<int>(id));
      for (int64_t offset : deferred_[id]) FreeSlot(offset);
      deferred_[id].clear();
    }
    ETUDE_CHECK(arena_.all_free()) << "plan compiler leaked arena slots";
    out_.arena.arena_bytes = arena_.high_water();
    out_.max_live_slots = arena_.max_live_slots();
  }

 private:
  int64_t EmitAlloc(int node, int64_t bytes) {
    const int64_t offset = arena_.Alloc(bytes);
    out_.arena.bytes.push_back(bytes);
    out_.arena.offsets.push_back(offset);
    out_.event_nodes.push_back(node);
    out_.event_frees.push_back(-1);  // patched by FreeSlot
    live_event_.emplace(offset, static_cast<int>(out_.event_frees.size()) - 1);
    return offset;
  }

  /// Releases one slot, recording at which event count it retired so the
  /// script carries reconstructible lifetimes (ExecutionPlan::event_frees).
  void FreeSlot(int64_t offset) {
    const auto it = live_event_.find(offset);
    ETUDE_CHECK(it != live_event_.end())
        << "plan compiler freed untracked offset " << offset;
    out_.event_frees[static_cast<size_t>(it->second)] =
        static_cast<int>(out_.arena.bytes.size());
    live_event_.erase(it);
    arena_.Free(offset);
  }

  void ReleasePending(int node) {
    Slot& slot = pending_[static_cast<size_t>(node)];
    if (!slot.live) return;
    FreeSlot(slot.offset);
    slot.live = false;
  }

  bool OnFinalPath() const {
    return std::all_of(final_stack_.begin(), final_stack_.end(),
                       [](bool f) { return f; });
  }

  /// Emits the allocation events of one dispatch of `id`, mirroring the
  /// internal Tensor constructions of tensor/ops.cc. Returns the output
  /// slot offset, or -1 when the op allocates no output buffer.
  int64_t EmitOpEvents(const PlanNode& node) {
    const int64_t out_bytes = EvalBytes(node.alloc_bytes, bindings_);
    if (node.op == "GruCell" && out_bytes > 0) {
      // gi = Add(MatVec(w_ih, x), b_ih); gh = Add(MatVec(w_hh, h), b_hh);
      // next = Tensor({h}) — two [3h] temporaries per gate vector.
      const int64_t gate = 3 * out_bytes;
      const int64_t t1 = EmitAlloc(node.id, gate);
      const int64_t gi = EmitAlloc(node.id, gate);
      FreeSlot(t1);
      const int64_t t2 = EmitAlloc(node.id, gate);
      const int64_t gh = EmitAlloc(node.id, gate);
      FreeSlot(t2);
      const int64_t out = EmitAlloc(node.id, out_bytes);
      FreeSlot(gi);
      FreeSlot(gh);
      return out;
    }
    if (node.op == "ScaledDotProductAttention" && out_bytes > 0) {
      // Scale(MatMul(q, Transpose(k))) then Softmax then MatMul(w, v):
      // transpose [m,dk], logits/scaled/weights [n,m].
      ETUDE_CHECK(node.inputs.size() >= 3)
          << "attention node " << node.id << " lacks q/k/v inputs";
      const SymShape& q = plan_.node(node.inputs[0]).shape;
      const SymShape& k = plan_.node(node.inputs[1]).shape;
      const auto dim = [&](const SymDim& d) {
        return static_cast<int64_t>(std::llround(d.Eval(bindings_)));
      };
      const int64_t rows = dim(q[0]), width = dim(q[1]), keys = dim(k[0]);
      const int64_t kt = EmitAlloc(node.id, 4 * keys * width);
      const int64_t logits = EmitAlloc(node.id, 4 * rows * keys);
      const int64_t scaled = EmitAlloc(node.id, 4 * rows * keys);
      FreeSlot(logits);
      FreeSlot(kt);
      const int64_t weights = EmitAlloc(node.id, 4 * rows * keys);
      const int64_t out = EmitAlloc(node.id, out_bytes);
      FreeSlot(weights);
      FreeSlot(scaled);
      return out;
    }
    // Every other op constructs exactly its output tensor (verified by
    // the zero-fallback cross-check); scalar results (Dot), vector
    // results (TopK/Mips) and symbolic-only ops (Truncate) have a zero
    // alloc polynomial and produce no event.
    if (out_bytes > 0) return EmitAlloc(node.id, out_bytes);
    return -1;
  }

  void EmitNode(int id) {
    const PlanNode& node = plan_.node(id);
    if (!node.persistent) {
      const int64_t out_offset = EmitOpEvents(node);
      if (out_offset >= 0) {
        switch (mode_[static_cast<size_t>(id)]) {
          case FreeMode::kAtDeath: {
            const int d = death_[static_cast<size_t>(id)];
            deferred_[static_cast<size_t>(d)].push_back(out_offset);
            break;
          }
          case FreeMode::kIterEnd:
            iter_frees_.back().push_back(out_offset);
            break;
          case FreeMode::kGrace: {
            ReleasePending(id);
            Slot& slot = pending_[static_cast<size_t>(id)];
            slot.offset = out_offset;
            slot.live = true;
            if (OnFinalPath()) {
              const int d = death_[static_cast<size_t>(id)];
              deferred_[static_cast<size_t>(d)].push_back(out_offset);
              slot.live = false;
            }
            break;
          }
        }
      }
    }
    // Retire everything whose death this node is, once its last dispatch
    // of the request has been emitted.
    if (OnFinalPath()) {
      for (int64_t offset : deferred_[static_cast<size_t>(id)]) {
        FreeSlot(offset);
      }
      deferred_[static_cast<size_t>(id)].clear();
    }
  }

  /// Emits nodes [begin, end] at nesting level `parent`: plain nodes in
  /// program order, each child region expanded at its concrete trip
  /// count.
  void EmitRange(int begin, int end, int parent) {
    const std::vector<RepeatRegion>& regions = plan_.regions();
    int id = begin;
    while (id <= end) {
      int child = -1;
      for (size_t r = 0; r < regions.size(); ++r) {
        if (regions[r].parent == parent && regions[r].begin == id) {
          child = static_cast<int>(r);
          break;
        }
      }
      if (child < 0) {
        EmitNode(id);
        ++id;
        continue;
      }
      const RepeatRegion& region = regions[static_cast<size_t>(child)];
      const int64_t trips =
          std::llround(region.trips.Eval(bindings_));
      ETUDE_CHECK(trips >= 0)
          << "negative trip count for repeat region at node " << id;
      for (int64_t it = 0; it < trips; ++it) {
        final_stack_.push_back(it == trips - 1);
        iter_frees_.emplace_back();
        EmitRange(region.begin, region.end, child);
        for (int64_t offset : iter_frees_.back()) FreeSlot(offset);
        iter_frees_.pop_back();
        final_stack_.pop_back();
      }
      id = region.end + 1;
    }
  }

  const PlanGraph& plan_;
  const Bindings& bindings_;
  ExecutionPlan& out_;
  BestFitArena arena_;
  std::vector<int> death_;
  std::vector<int> region_of_;
  std::vector<FreeMode> mode_;
  std::vector<Slot> pending_;                    // per node: grace slot
  std::vector<std::vector<int64_t>> deferred_;   // per death node: slots
  std::vector<std::vector<int64_t>> iter_frees_;  // per nesting level
  std::vector<bool> final_stack_;
  std::map<int64_t, int> live_event_;  // live offset -> allocation event
};

}  // namespace

bool FusibleOp(const std::string& op) {
  static const std::set<std::string>* const kFusible =
      new std::set<std::string>{"Add",     "Sub",       "Mul",
                                "Scale",   "Sigmoid",   "Tanh",
                                "Relu",    "Gelu",      "AddRowwise",
                                "LayerNorm", "AddLayerNorm", "AddSigmoid"};
  return kFusible->count(op) > 0;
}

std::vector<FusionGroup> AnalyzeFusion(const PlanGraph& plan) {
  const std::vector<std::vector<int>> consumers = ConsumerIndex(plan);
  const std::vector<int> region_of = RegionOf(plan);

  // Producer -> sole adjacent consumer edges that satisfy every rule.
  const auto fusible_edge = [&](int producer, int consumer) {
    const PlanNode& p = plan.node(producer);
    const PlanNode& c = plan.node(consumer);
    if (!FusibleOp(p.op) || !FusibleOp(c.op)) return false;
    if (p.persistent || p.is_output) return false;
    if (consumers[static_cast<size_t>(producer)].size() != 1) return false;
    if (std::find(c.inputs.begin(), c.inputs.end(), producer) ==
        c.inputs.end()) {
      return false;
    }
    if (p.phase != c.phase) return false;
    if (region_of[static_cast<size_t>(producer)] !=
        region_of[static_cast<size_t>(consumer)]) {
      return false;
    }
    return p.shape == c.shape;
  };

  std::vector<FusionGroup> groups;
  std::vector<bool> in_group(static_cast<size_t>(plan.size()), false);
  for (int id = 0; id < plan.size(); ++id) {
    if (in_group[static_cast<size_t>(id)]) continue;
    std::vector<int> chain{id};
    while (chain.back() + 1 < plan.size() &&
           fusible_edge(chain.back(), chain.back() + 1)) {
      chain.push_back(chain.back() + 1);
    }
    if (chain.size() < 2) continue;
    for (int member : chain) in_group[static_cast<size_t>(member)] = true;
    FusionGroup group;
    group.nodes = std::move(chain);
    if (group.nodes.size() == 2) {
      const std::string& first = plan.node(group.nodes[0]).op;
      const std::string& second = plan.node(group.nodes[1]).op;
      if (first == "Add" && second == "LayerNorm") {
        group.kernel = "AddLayerNorm";
      } else if (first == "Add" && second == "Sigmoid") {
        group.kernel = "AddSigmoid";
      }
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

std::vector<CseDuplicate> AnalyzeCse(const PlanGraph& plan) {
  // The congruence key must match the analysis pass's cse warning
  // (plan_analysis.cc) term for term, so planner and linter agree on
  // what counts as a duplicate.
  std::map<std::string, size_t> groups_by_key;
  std::vector<CseDuplicate> groups;
  for (const PlanNode& node : plan.nodes()) {
    if (node.persistent) continue;
    if (node.op == "Input" || node.op == "Materialize" || node.op == "Row" ||
        node.op == "Embedding" || node.op == "Truncate") {
      continue;
    }
    std::string key = node.op + "|" + ShapeToString(node.shape);
    for (int input : node.inputs) {
      key += "#";
      key += std::to_string(input);
    }
    auto it = groups_by_key.find(key);
    if (it == groups_by_key.end()) {
      groups_by_key.emplace(std::move(key), groups.size());
      groups.push_back(CseDuplicate{node.id, {}});
    } else {
      groups[it->second].drop.push_back(node.id);
    }
  }
  std::vector<CseDuplicate> duplicates;
  for (CseDuplicate& group : groups) {
    if (!group.drop.empty()) duplicates.push_back(std::move(group));
  }
  return duplicates;
}

ExecutionPlan CompileExecutionPlan(const PlanGraph& plan,
                                   const Bindings& bindings) {
  ExecutionPlan out;
  PlanExpander expander(plan, bindings, out);
  expander.Run();
  const std::vector<int> region_of = RegionOf(plan);
  for (const PlanNode& node : plan.nodes()) {
    if (node.persistent) continue;
    const bool in_region = region_of[static_cast<size_t>(node.id)] >= 0;
    out.arena_bound_poly += node.alloc_bytes * (in_region ? 2.0 : 1.0);
    out.arena_bound_poly += node.scratch_bytes;
  }
  out.fusion_groups = AnalyzeFusion(plan);
  out.cse = AnalyzeCse(plan);
  return out;
}

}  // namespace etude::tensor

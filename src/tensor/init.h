#ifndef ETUDE_TENSOR_INIT_H_
#define ETUDE_TENSOR_INIT_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace etude::tensor {

/// Weight initialisers. The paper benchmarks randomly initialised models
/// (inference latency does not depend on trained weights), so these match
/// the PyTorch defaults the RecBole models would be created with.

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
Tensor XavierUniform(std::vector<int64_t> shape, Rng* rng);

/// Normal with given standard deviation (RecBole uses N(0, 0.02) for
/// embedding tables).
Tensor RandomNormal(std::vector<int64_t> shape, float stddev, Rng* rng);

/// Uniform in [low, high).
Tensor RandomUniform(std::vector<int64_t> shape, float low, float high,
                     Rng* rng);

}  // namespace etude::tensor

#endif  // ETUDE_TENSOR_INIT_H_

#ifndef ETUDE_TENSOR_TENSOR_H_
#define ETUDE_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

#include "common/logging.h"
#include "obs/memstats.h"

namespace etude::tensor {

/// A dense, row-major, single-precision tensor.
///
/// This is the minimal substrate required to execute the inference path of
/// the ten SBR models: contiguous fp32 storage with shape metadata. Shape
/// violations are programmer errors and abort via ETUDE_CHECK; user-facing
/// validation happens at the model API boundary.
///
/// Every buffer allocation and release is reported to obs::memstats
/// (logical bytes, numel * sizeof(float)), which feeds the live/peak
/// tensor-memory gauges on /metrics and the per-op peak-bytes column of
/// the profiler. -DETUDE_DISABLE_TRACING compiles the accounting out.
class Tensor {
 public:
  /// An empty (rank-0, zero-element) tensor.
  Tensor() = default;

  /// Allocates a zero-initialised tensor of the given shape.
  explicit Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
    data_.assign(static_cast<size_t>(ComputeNumel(shape_)), 0.0f);
    obs::memdetail::RecordAlloc(ByteSize());
  }

  /// Allocates a tensor of the given shape with explicit contents
  /// (row-major order). `values.size()` must equal the shape's element count.
  Tensor(std::vector<int64_t> shape, std::vector<float> values)
      : shape_(std::move(shape)), data_(std::move(values)) {
    ETUDE_CHECK(static_cast<int64_t>(data_.size()) == ComputeNumel(shape_))
        << "value count " << data_.size() << " does not match shape";
    obs::memdetail::RecordAlloc(ByteSize());
  }

  Tensor(const Tensor& other)
      : shape_(other.shape_), data_(other.data_) {
    obs::memdetail::RecordAlloc(ByteSize());
  }
  Tensor& operator=(const Tensor& other) {
    if (this != &other) {
      obs::memdetail::RecordFree(ByteSize());
      shape_ = other.shape_;
      data_ = other.data_;
      obs::memdetail::RecordAlloc(ByteSize());
    }
    return *this;
  }
  // Moves transfer buffer ownership: nothing is allocated or freed. The
  // source is left empty so its destructor accounts zero bytes.
  Tensor(Tensor&& other) noexcept
      : shape_(std::move(other.shape_)), data_(std::move(other.data_)) {
    other.shape_.clear();
    other.data_.clear();
  }
  Tensor& operator=(Tensor&& other) noexcept {
    if (this != &other) {
      obs::memdetail::RecordFree(ByteSize());
      shape_ = std::move(other.shape_);
      data_ = std::move(other.data_);
      other.shape_.clear();
      other.data_.clear();
    }
    return *this;
  }
  ~Tensor() { obs::memdetail::RecordFree(ByteSize()); }

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(int i) const {
    ETUDE_CHECK(i >= 0 && i < rank()) << "dim index out of range";
    return shape_[static_cast<size_t>(i)];
  }
  int rank() const { return static_cast<int>(shape_.size()); }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](int64_t i) {
    ETUDE_DCHECK(i >= 0 && i < numel()) << "flat index out of range";
    return data_[static_cast<size_t>(i)];
  }
  float operator[](int64_t i) const {
    ETUDE_DCHECK(i >= 0 && i < numel()) << "flat index out of range";
    return data_[static_cast<size_t>(i)];
  }

  /// 2-D element access (row-major). Tensor must have rank 2.
  float& at(int64_t row, int64_t col) {
    ETUDE_DCHECK(rank() == 2) << "at(r,c) requires rank 2";
    ETUDE_DCHECK(row >= 0 && row < shape_[0] && col >= 0 && col < shape_[1]);
    return data_[static_cast<size_t>(row * shape_[1] + col)];
  }
  float at(int64_t row, int64_t col) const {
    ETUDE_DCHECK(rank() == 2) << "at(r,c) requires rank 2";
    ETUDE_DCHECK(row >= 0 && row < shape_[0] && col >= 0 && col < shape_[1]);
    return data_[static_cast<size_t>(row * shape_[1] + col)];
  }

  /// 3-D element access (row-major). Tensor must have rank 3.
  float& at(int64_t i, int64_t j, int64_t k) {
    ETUDE_DCHECK(rank() == 3) << "at(i,j,k) requires rank 3";
    return data_[static_cast<size_t>((i * shape_[1] + j) * shape_[2] + k)];
  }
  float at(int64_t i, int64_t j, int64_t k) const {
    ETUDE_DCHECK(rank() == 3) << "at(i,j,k) requires rank 3";
    return data_[static_cast<size_t>((i * shape_[1] + j) * shape_[2] + k)];
  }

  /// Sets every element to `value`.
  void Fill(float value) { data_.assign(data_.size(), value); }

  /// Returns a tensor with the same data reinterpreted under `new_shape`
  /// (element counts must match).
  Tensor Reshaped(std::vector<int64_t> new_shape) const {
    ETUDE_CHECK(ComputeNumel(new_shape) == numel())
        << "reshape changes element count";
    return Tensor(std::move(new_shape), data_);
  }

  /// Logical bytes of the backing buffer (numel * sizeof(float)).
  int64_t ByteSize() const {
    return static_cast<int64_t>(data_.size() * sizeof(float));
  }

  /// Returns the contiguous row `row` of a rank-2 tensor as a rank-1 copy.
  Tensor Row(int64_t row) const {
    ETUDE_CHECK(rank() == 2) << "Row requires rank 2";
    ETUDE_CHECK(row >= 0 && row < shape_[0]);
    Tensor out({shape_[1]});
    const float* src = data() + row * shape_[1];
    std::copy(src, src + shape_[1], out.data());
    return out;
  }

  /// "[2, 3]f32" style debug string.
  std::string ShapeString() const;

  static int64_t ComputeNumel(const std::vector<int64_t>& shape) {
    int64_t n = 1;
    for (int64_t d : shape) {
      ETUDE_CHECK(d >= 0) << "negative dimension";
      n *= d;
    }
    return n;
  }

 private:
  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

/// True when both tensors have identical shape and all elements are within
/// `tolerance` of each other.
bool AllClose(const Tensor& a, const Tensor& b, float tolerance = 1e-5f);

}  // namespace etude::tensor

#endif  // ETUDE_TENSOR_TENSOR_H_

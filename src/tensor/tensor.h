#ifndef ETUDE_TENSOR_TENSOR_H_
#define ETUDE_TENSOR_TENSOR_H_

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

#include "common/logging.h"
#include "obs/memstats.h"
#include "tensor/arena.h"

namespace etude::tensor {

/// A dense, row-major, single-precision tensor.
///
/// This is the minimal substrate required to execute the inference path of
/// the ten SBR models: contiguous fp32 storage with shape metadata. Shape
/// violations are programmer errors and abort via ETUDE_CHECK; user-facing
/// validation happens at the model API boundary.
///
/// Storage is a raw buffer, not a std::vector, so an active execution plan
/// (tensor/arena.h) can serve it from a pre-sized arena: when
/// exec::ArenaTryAlloc accepts the request the buffer lives at a
/// statically assigned offset and the destructor releases nothing — slot
/// reuse is already encoded in the plan's offsets. Otherwise the buffer
/// is heap-owned as before.
///
/// Every buffer allocation and release is reported to obs::memstats
/// (logical bytes, numel * sizeof(float)) regardless of where the buffer
/// lives, which feeds the live/peak tensor-memory gauges on /metrics and
/// the per-op peak-bytes column of the profiler. -DETUDE_DISABLE_TRACING
/// compiles the accounting out.
class Tensor {
 public:
  /// An empty (rank-0, zero-element) tensor.
  Tensor() = default;

  /// Allocates a zero-initialised tensor of the given shape.
  explicit Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
    Allocate();
    std::fill(data_, data_ + numel_, 0.0f);
  }

  /// Allocates a tensor of the given shape with explicit contents
  /// (row-major order). `values.size()` must equal the shape's element count.
  Tensor(std::vector<int64_t> shape, const std::vector<float>& values)
      : shape_(std::move(shape)) {
    ETUDE_CHECK(static_cast<int64_t>(values.size()) == ComputeNumel(shape_))
        << "value count " << values.size() << " does not match shape";
    Allocate();
    std::copy(values.begin(), values.end(), data_);
  }

  Tensor(const Tensor& other) : shape_(other.shape_) {
    Allocate();
    std::copy(other.data_, other.data_ + numel_, data_);
  }
  Tensor& operator=(const Tensor& other) {
    if (this != &other) {
      Release();
      shape_ = other.shape_;
      Allocate();
      std::copy(other.data_, other.data_ + numel_, data_);
    }
    return *this;
  }
  // Moves transfer buffer ownership: nothing is allocated or freed. The
  // source is left empty so its destructor accounts zero bytes.
  Tensor(Tensor&& other) noexcept
      : shape_(std::move(other.shape_)),
        data_(other.data_),
        numel_(other.numel_),
        arena_(other.arena_) {
    other.shape_.clear();
    other.data_ = nullptr;
    other.numel_ = 0;
    other.arena_ = false;
  }
  Tensor& operator=(Tensor&& other) noexcept {
    if (this != &other) {
      Release();
      shape_ = std::move(other.shape_);
      data_ = other.data_;
      numel_ = other.numel_;
      arena_ = other.arena_;
      other.shape_.clear();
      other.data_ = nullptr;
      other.numel_ = 0;
      other.arena_ = false;
    }
    return *this;
  }
  ~Tensor() { Release(); }

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(int i) const {
    ETUDE_CHECK(i >= 0 && i < rank()) << "dim index out of range";
    return shape_[static_cast<size_t>(i)];
  }
  int rank() const { return static_cast<int>(shape_.size()); }
  int64_t numel() const { return numel_; }

  float* data() { return data_; }
  const float* data() const { return data_; }

  float& operator[](int64_t i) {
    ETUDE_DCHECK(i >= 0 && i < numel()) << "flat index out of range";
    return data_[i];
  }
  float operator[](int64_t i) const {
    ETUDE_DCHECK(i >= 0 && i < numel()) << "flat index out of range";
    return data_[i];
  }

  /// 2-D element access (row-major). Tensor must have rank 2.
  float& at(int64_t row, int64_t col) {
    ETUDE_DCHECK(rank() == 2) << "at(r,c) requires rank 2";
    ETUDE_DCHECK(row >= 0 && row < shape_[0] && col >= 0 && col < shape_[1]);
    return data_[row * shape_[1] + col];
  }
  float at(int64_t row, int64_t col) const {
    ETUDE_DCHECK(rank() == 2) << "at(r,c) requires rank 2";
    ETUDE_DCHECK(row >= 0 && row < shape_[0] && col >= 0 && col < shape_[1]);
    return data_[row * shape_[1] + col];
  }

  /// 3-D element access (row-major). Tensor must have rank 3.
  float& at(int64_t i, int64_t j, int64_t k) {
    ETUDE_DCHECK(rank() == 3) << "at(i,j,k) requires rank 3";
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  float at(int64_t i, int64_t j, int64_t k) const {
    ETUDE_DCHECK(rank() == 3) << "at(i,j,k) requires rank 3";
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }

  /// Sets every element to `value`.
  void Fill(float value) { std::fill(data_, data_ + numel_, value); }

  /// Returns a tensor with the same data reinterpreted under `new_shape`
  /// (element counts must match). Copies the buffer — the copy is a
  /// distinct allocation the execution planner accounts as a Reshape
  /// node, so it must stay one.
  Tensor Reshaped(std::vector<int64_t> new_shape) const {
    ETUDE_CHECK(ComputeNumel(new_shape) == numel())
        << "reshape changes element count";
    Tensor out;
    out.shape_ = std::move(new_shape);
    out.Allocate();
    std::copy(data_, data_ + numel_, out.data_);
    return out;
  }

  /// Logical bytes of the backing buffer (numel * sizeof(float)).
  int64_t ByteSize() const {
    return numel_ * static_cast<int64_t>(sizeof(float));
  }

  /// Returns the contiguous row `row` of a rank-2 tensor as a rank-1 copy.
  Tensor Row(int64_t row) const {
    ETUDE_CHECK(rank() == 2) << "Row requires rank 2";
    ETUDE_CHECK(row >= 0 && row < shape_[0]);
    Tensor out;
    out.shape_ = {shape_[1]};
    out.Allocate();
    const float* src = data() + row * shape_[1];
    std::copy(src, src + shape_[1], out.data_);
    return out;
  }

  /// "[2, 3]f32" style debug string.
  std::string ShapeString() const;

  static int64_t ComputeNumel(const std::vector<int64_t>& shape) {
    int64_t n = 1;
    for (int64_t d : shape) {
      ETUDE_CHECK(d >= 0) << "negative dimension";
      n *= d;
    }
    return n;
  }

 private:
  /// Sizes the buffer for shape_, from the active arena script when one
  /// accepts the request, from the heap otherwise. Contents are
  /// uninitialised (arena slots are reused); callers fill or copy.
  void Allocate() {
    numel_ = ComputeNumel(shape_);
    if (numel_ > 0) {
      data_ = exec::ArenaTryAlloc(ByteSize());
      arena_ = data_ != nullptr;
      if (!arena_) data_ = new float[static_cast<size_t>(numel_)];
    }
    obs::memdetail::RecordAlloc(ByteSize());
  }

  void Release() {
    obs::memdetail::RecordFree(ByteSize());
    if (!arena_) delete[] data_;
    data_ = nullptr;
    numel_ = 0;
    arena_ = false;
  }

  std::vector<int64_t> shape_;
  float* data_ = nullptr;
  int64_t numel_ = 0;
  bool arena_ = false;
};

/// True when both tensors have identical shape and all elements are within
/// `tolerance` of each other.
bool AllClose(const Tensor& a, const Tensor& b, float tolerance = 1e-5f);

}  // namespace etude::tensor

#endif  // ETUDE_TENSOR_TENSOR_H_

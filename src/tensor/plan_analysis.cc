#include "tensor/plan_analysis.h"

#include <algorithm>
#include <set>
#include <utility>

namespace etude::tensor {

std::vector<int> DeathIndices(const PlanGraph& plan) {
  std::vector<int> death(static_cast<size_t>(plan.size()));
  for (const PlanNode& node : plan.nodes()) {
    death[static_cast<size_t>(node.id)] =
        std::max(node.id, node.min_death);
  }
  for (const PlanNode& node : plan.nodes()) {
    for (int input : node.inputs) {
      death[static_cast<size_t>(input)] =
          std::max(death[static_cast<size_t>(input)], node.id);
    }
  }
  return death;
}

LivenessResult AnalyzeLiveness(const PlanGraph& plan,
                               const Bindings& bindings) {
  const std::vector<int> death = DeathIndices(plan);
  LivenessResult result;
  for (int step = 0; step < plan.size(); ++step) {
    CostPoly live;
    for (const PlanNode& node : plan.nodes()) {
      if (node.persistent) continue;
      if (node.id > step) break;  // nodes are in program order
      if (death[static_cast<size_t>(node.id)] < step) continue;
      live += node.alloc_bytes;
    }
    live += plan.node(step).scratch_bytes;
    const double bytes = live.Eval(bindings);
    if (result.peak_step < 0 || bytes > result.peak_bytes) {
      result.peak_step = step;
      result.peak_bytes = bytes;
      result.peak_poly = live;
    }
  }
  return result;
}

CostSummary AnalyzeCost(const PlanGraph& plan) {
  CostSummary summary;
  for (const PlanNode& node : plan.nodes()) {
    if (node.persistent) continue;
    ++summary.op_count;
    const CostPoly flops = node.flops * node.repeat;
    const CostPoly traffic = node.traffic_bytes * node.repeat;
    if (node.phase == PlanPhase::kEncode) {
      summary.encode_flops += flops;
      summary.encode_traffic_bytes += traffic;
    } else {
      summary.score_flops += flops;
      summary.score_traffic_bytes += traffic;
    }
    summary.total_flops += flops;
    if (!flops.IsZero()) summary.flops_by_op[node.op] += flops;
  }
  return summary;
}

BatchedCostSummary AnalyzeBatchedCost(const PlanGraph& plan) {
  constexpr double kF32 = 4.0;
  // Per-node repeat split: the product of enclosing non-batch region trips
  // (per-session loop structure, e.g. L GruCell steps) versus the product
  // of enclosing batch region trips (B). node.repeat is their product.
  const int size = plan.size();
  std::vector<CostPoly> inner(static_cast<size_t>(size),
                              CostPoly::Const(1.0));
  std::vector<CostPoly> batch(static_cast<size_t>(size),
                              CostPoly::Const(1.0));
  for (const RepeatRegion& region : plan.regions()) {
    for (int id = region.begin; id <= region.end && id < size; ++id) {
      auto& factor = region.is_batch ? batch : inner;
      factor[static_cast<size_t>(id)] =
          factor[static_cast<size_t>(id)] * region.trips;
    }
  }

  BatchedCostSummary summary;
  for (const PlanNode& node : plan.nodes()) {
    if (node.persistent) continue;
    ++summary.op_count;
    const size_t id = static_cast<size_t>(node.id);
    const CostPoly flops = node.flops * node.repeat;
    summary.total_flops += flops;
    if (node.phase == PlanPhase::kEncode) {
      summary.encode_flops += flops;
    } else {
      summary.score_flops += flops;
    }

    // Amortizable share of one dispatch: persistent-input bytes, only for
    // encode-phase ops still on the default streaming traffic model.
    CostPoly amortized;
    if (node.phase == PlanPhase::kEncode) {
      CostPoly def = CostPoly::Numel(node.shape);
      for (int input : node.inputs) {
        def += CostPoly::Numel(plan.node(input).shape);
      }
      if ((def * kF32).ToString() == node.traffic_bytes.ToString()) {
        for (int input : node.inputs) {
          if (plan.node(input).persistent) {
            amortized += CostPoly::Numel(plan.node(input).shape) * kF32;
          }
        }
      }
    }
    const CostPoly marginal =
        (node.traffic_bytes + amortized * -1.0) * node.repeat;
    summary.amortized_bytes += amortized * inner[id];
    if (node.phase == PlanPhase::kEncode) {
      summary.marginal_encode_bytes += marginal;
    } else {
      summary.marginal_score_bytes += marginal;
    }
  }
  summary.total_bytes = summary.amortized_bytes +
                        summary.marginal_encode_bytes +
                        summary.marginal_score_bytes;
  return summary;
}

std::string PlanDiagnostic::ToString() const {
  const char* tag = severity == Severity::kError     ? "error"
                    : severity == Severity::kWarning ? "warning"
                                                     : "info";
  return std::string(tag) + " [" + pass + "] node " + std::to_string(node) +
         ": " + message;
}

namespace {

bool HasCatalogDim(const SymShape& shape) {
  for (const SymDim& dim : shape) {
    if (!dim.concrete() && dim.symbol() == "C") return true;
  }
  return false;
}

std::string Describe(const PlanNode& node) {
  std::string out = node.op + " " + ShapeToString(node.shape);
  if (!node.label.empty()) out += " (" + node.label + ")";
  return out;
}

}  // namespace

std::vector<PlanDiagnostic> AnalyzePlan(const PlanGraph& plan) {
  std::vector<PlanDiagnostic> findings;
  std::vector<std::vector<int>> consumers(
      static_cast<size_t>(plan.size()));
  for (const PlanNode& node : plan.nodes()) {
    for (int input : node.inputs) {
      consumers[static_cast<size_t>(input)].push_back(node.id);
    }
  }

  // Pass 3a: dead ops (and the [C]-sized flavour as its own pass name).
  for (const PlanNode& node : plan.nodes()) {
    if (node.persistent || node.is_output) continue;
    if (!consumers[static_cast<size_t>(node.id)].empty()) continue;
    const bool catalog = HasCatalogDim(node.shape);
    findings.push_back(PlanDiagnostic{
        PlanDiagnostic::Severity::kError,
        catalog ? "unconsumed-C" : "dead-op", node.id,
        Describe(node) +
            (catalog ? " is a full-catalog tensor no op consumes"
                     : " is never consumed and is not the request output")});
  }

  // Pass 3b: common subexpressions — identical (op, operands, shape)
  // dispatches. Index-dependent gathers (Row/Embedding) and manual
  // constructions are excluded: equal operands do not imply equal results.
  std::map<std::string, int> seen;
  for (const PlanNode& node : plan.nodes()) {
    if (node.persistent) continue;
    if (node.op == "Input" || node.op == "Materialize" || node.op == "Row" ||
        node.op == "Embedding" || node.op == "Truncate") {
      continue;
    }
    std::string key = node.op + "|" + ShapeToString(node.shape);
    for (int input : node.inputs) {
      key += "#";
      key += std::to_string(input);
    }
    auto [it, inserted] = seen.emplace(key, node.id);
    if (!inserted) {
      findings.push_back(PlanDiagnostic{
          PlanDiagnostic::Severity::kWarning, "cse", node.id,
          Describe(node) + " duplicates node " + std::to_string(it->second) +
              " (same op over the same operands)"});
    }
  }

  // Pass 4: materialized-[C] intermediates that reach TopK. The fused
  // streaming MIPS op never materialises catalog scores; a [C]-sized
  // tensor flowing into TopK means this graph pays the memory-bound
  // full-catalog pass the paper's Sec. V attributes RepeatNet's tail to.
  std::set<int> reaches_topk;
  for (int i = plan.size() - 1; i >= 0; --i) {
    const PlanNode& node = plan.node(i);
    const bool is_topk = node.op == "TopK";
    if (is_topk || reaches_topk.count(node.id) > 0) {
      for (int input : node.inputs) reaches_topk.insert(input);
    }
  }
  for (const PlanNode& node : plan.nodes()) {
    if (node.persistent || node.op == "Mips") continue;
    if (!HasCatalogDim(node.shape)) continue;
    if (reaches_topk.count(node.id) == 0 && node.op != "TopK") continue;
    if (node.op == "TopK") continue;
    findings.push_back(PlanDiagnostic{
        PlanDiagnostic::Severity::kInfo, "materialized-C", node.id,
        Describe(node) +
            " materialises a catalog-sized intermediate on the TopK path "
            "(bypasses the fused MIPS scan)"});
  }
  return findings;
}

std::vector<PlanDiagnostic> PlanErrors(const PlanGraph& plan) {
  std::vector<PlanDiagnostic> errors;
  for (PlanDiagnostic& finding : AnalyzePlan(plan)) {
    if (finding.severity == PlanDiagnostic::Severity::kError) {
      errors.push_back(std::move(finding));
    }
  }
  return errors;
}

}  // namespace etude::tensor

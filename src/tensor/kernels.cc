#include "tensor/kernels.h"

#include <algorithm>
#include <functional>
#include <limits>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ETUDE_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace etude::tensor::kernels {

void HeapPushBounded(std::vector<ScoredIndex>& heap, int64_t k, float score,
                     int64_t index) {
  if (static_cast<int64_t>(heap.size()) < k) {
    heap.emplace_back(score, index);
    std::push_heap(heap.begin(), heap.end(), std::greater<ScoredIndex>());
  } else if (score > heap.front().first) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<ScoredIndex>());
    heap.back() = ScoredIndex(score, index);
    std::push_heap(heap.begin(), heap.end(), std::greater<ScoredIndex>());
  }
}

namespace {

// ---------------------------------------------------------------------------
// Portable path: multi-accumulator, branch-free loops the compiler can
// vectorise for the baseline ISA. Also the reference the AVX2 path is
// tested against.
// ---------------------------------------------------------------------------
namespace portable {

float Dot(const float* a, const float* b, int64_t n) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) acc0 += a[i] * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

void MatVec(const float* a, const float* x, float* out, int64_t row_begin,
            int64_t row_end, int64_t k) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    out[i] = Dot(a + i * k, x, k);
  }
}

void MatMul(const float* a, const float* b, float* c, int64_t i_begin,
            int64_t i_end, int64_t k, int64_t n) {
  // ikj order streams B row-wise; two C rows in flight amortise each B
  // row load. C rows are fully accumulated in place (zeroed by Tensor).
  int64_t i = i_begin;
  for (; i + 2 <= i_end; i += 2) {
    const float* arow0 = a + i * k;
    const float* arow1 = arow0 + k;
    float* crow0 = c + i * n;
    float* crow1 = crow0 + n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float a0 = arow0[kk];
      const float a1 = arow1[kk];
      const float* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) {
        crow0[j] += a0 * brow[j];
        crow1[j] += a1 * brow[j];
      }
    }
  }
  for (; i < i_end; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      const float* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void MipsScan(const float* items, const float* query, int64_t d,
              int64_t row_begin, int64_t row_end, int64_t k,
              std::vector<ScoredIndex>& heap) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    HeapPushBounded(heap, k, Dot(items + i * d, query, d), i);
  }
}

void QuantizedMipsScan(const int8_t* items, int64_t stride,
                       const float* scales, const int8_t* query,
                       float query_scale, int64_t d, int64_t row_begin,
                       int64_t row_end, int64_t k,
                       std::vector<ScoredIndex>& heap) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    const int8_t* row = items + i * stride;
    int32_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
    int64_t j = 0;
    for (; j + 4 <= d; j += 4) {
      acc0 += static_cast<int32_t>(row[j]) * static_cast<int32_t>(query[j]);
      acc1 += static_cast<int32_t>(row[j + 1]) *
              static_cast<int32_t>(query[j + 1]);
      acc2 += static_cast<int32_t>(row[j + 2]) *
              static_cast<int32_t>(query[j + 2]);
      acc3 += static_cast<int32_t>(row[j + 3]) *
              static_cast<int32_t>(query[j + 3]);
    }
    for (; j < d; ++j) {
      acc0 += static_cast<int32_t>(row[j]) * static_cast<int32_t>(query[j]);
    }
    const int32_t acc = (acc0 + acc1) + (acc2 + acc3);
    // Two multiplies, no FMA contraction possible: bit-identical to the
    // AVX2 path's rescale of the (exact) integer dot.
    const float score = static_cast<float>(acc) * scales[i] * query_scale;
    HeapPushBounded(heap, k, score, i);
  }
}

}  // namespace portable

// ---------------------------------------------------------------------------
// AVX2+FMA path, selected at runtime. The functions carry a target
// attribute so the translation unit itself stays compiled for the
// portable baseline ISA.
// ---------------------------------------------------------------------------
#if ETUDE_KERNELS_X86
namespace avx2 {

// Per-lane load mask for a d % 8 tail: kMaskTable + 8 - rem yields `rem`
// all-ones lanes followed by zero lanes. Masked loads keep every kernel
// free of out-of-bounds reads regardless of alignment or row stride.
alignas(32) constexpr int32_t kMaskTable[16] = {-1, -1, -1, -1, -1, -1, -1,
                                                -1, 0,  0,  0,  0,  0,  0,
                                                0,  0};

__attribute__((target("avx2,fma"))) inline float HSum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

__attribute__((target("avx2,fma"))) float Dot(const float* a, const float* b,
                                              int64_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  if (i + 8 <= n) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    i += 8;
  }
  if (i < n) {
    const __m256i mask =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
            kMaskTable + 8 - (n - i)));
    acc1 = _mm256_fmadd_ps(_mm256_maskload_ps(a + i, mask),
                           _mm256_maskload_ps(b + i, mask), acc1);
  }
  return HSum(_mm256_add_ps(acc0, acc1));
}

/// Dots of four consecutive rows (stride k) against x, returned as
/// [dot(r0), dot(r1), dot(r2), dot(r3)]. The hadd tree reduces all four
/// accumulators at once — cheaper than four horizontal sums, and the
/// four independent FMA chains hide the FMA latency that a single-row
/// dot at small k cannot.
__attribute__((target("avx2,fma"))) inline __m128 Dot4Rows(const float* r0,
                                                           const float* x,
                                                           int64_t k) {
  const float* r1 = r0 + k;
  const float* r2 = r1 + k;
  const float* r3 = r2 + k;
  __m256 a0 = _mm256_setzero_ps();
  __m256 a1 = _mm256_setzero_ps();
  __m256 a2 = _mm256_setzero_ps();
  __m256 a3 = _mm256_setzero_ps();
  int64_t j = 0;
  for (; j + 8 <= k; j += 8) {
    const __m256 xv = _mm256_loadu_ps(x + j);
    a0 = _mm256_fmadd_ps(_mm256_loadu_ps(r0 + j), xv, a0);
    a1 = _mm256_fmadd_ps(_mm256_loadu_ps(r1 + j), xv, a1);
    a2 = _mm256_fmadd_ps(_mm256_loadu_ps(r2 + j), xv, a2);
    a3 = _mm256_fmadd_ps(_mm256_loadu_ps(r3 + j), xv, a3);
  }
  if (j < k) {
    const __m256i mask =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
            kMaskTable + 8 - (k - j)));
    const __m256 xv = _mm256_maskload_ps(x + j, mask);
    a0 = _mm256_fmadd_ps(_mm256_maskload_ps(r0 + j, mask), xv, a0);
    a1 = _mm256_fmadd_ps(_mm256_maskload_ps(r1 + j, mask), xv, a1);
    a2 = _mm256_fmadd_ps(_mm256_maskload_ps(r2 + j, mask), xv, a2);
    a3 = _mm256_fmadd_ps(_mm256_maskload_ps(r3 + j, mask), xv, a3);
  }
  const __m256 h01 = _mm256_hadd_ps(a0, a1);
  const __m256 h23 = _mm256_hadd_ps(a2, a3);
  const __m256 h = _mm256_hadd_ps(h01, h23);
  return _mm_add_ps(_mm256_castps256_ps128(h),
                    _mm256_extractf128_ps(h, 1));
}

__attribute__((target("avx2,fma"))) void MatVec(const float* a,
                                                const float* x, float* out,
                                                int64_t row_begin,
                                                int64_t row_end, int64_t k) {
  int64_t i = row_begin;
  for (; i + 4 <= row_end; i += 4) {
    _mm_storeu_ps(out + i, Dot4Rows(a + i * k, x, k));
  }
  for (; i < row_end; ++i) out[i] = Dot(a + i * k, x, k);
}

/// 4x16 register-tiled matmul: four A rows against two ymm columns of B,
/// k streamed through eight independent accumulators, written once per
/// tile. B's row panel (k x 16 floats) stays cache-resident across the
/// four A rows.
__attribute__((target("avx2,fma"))) void MatMul(const float* a,
                                                const float* b, float* c,
                                                int64_t i_begin,
                                                int64_t i_end, int64_t k,
                                                int64_t n) {
  int64_t i0 = i_begin;
  for (; i0 + 4 <= i_end; i0 += 4) {
    const float* a0 = a + i0 * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    int64_t j0 = 0;
    for (; j0 + 16 <= n; j0 += 16) {
      __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
      __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
      __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
      __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
      for (int64_t kk = 0; kk < k; ++kk) {
        const float* brow = b + kk * n + j0;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        __m256 av = _mm256_set1_ps(a0[kk]);
        c00 = _mm256_fmadd_ps(av, b0, c00);
        c01 = _mm256_fmadd_ps(av, b1, c01);
        av = _mm256_set1_ps(a1[kk]);
        c10 = _mm256_fmadd_ps(av, b0, c10);
        c11 = _mm256_fmadd_ps(av, b1, c11);
        av = _mm256_set1_ps(a2[kk]);
        c20 = _mm256_fmadd_ps(av, b0, c20);
        c21 = _mm256_fmadd_ps(av, b1, c21);
        av = _mm256_set1_ps(a3[kk]);
        c30 = _mm256_fmadd_ps(av, b0, c30);
        c31 = _mm256_fmadd_ps(av, b1, c31);
      }
      float* crow = c + i0 * n + j0;
      _mm256_storeu_ps(crow, c00);
      _mm256_storeu_ps(crow + 8, c01);
      _mm256_storeu_ps(crow + n, c10);
      _mm256_storeu_ps(crow + n + 8, c11);
      _mm256_storeu_ps(crow + 2 * n, c20);
      _mm256_storeu_ps(crow + 2 * n + 8, c21);
      _mm256_storeu_ps(crow + 3 * n, c30);
      _mm256_storeu_ps(crow + 3 * n + 8, c31);
    }
    for (; j0 < n; ++j0) {
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float bv = b[kk * n + j0];
        acc0 += a0[kk] * bv;
        acc1 += a1[kk] * bv;
        acc2 += a2[kk] * bv;
        acc3 += a3[kk] * bv;
      }
      c[i0 * n + j0] = acc0;
      c[(i0 + 1) * n + j0] = acc1;
      c[(i0 + 2) * n + j0] = acc2;
      c[(i0 + 3) * n + j0] = acc3;
    }
  }
  for (; i0 < i_end; ++i0) {
    const float* arow = a + i0 * k;
    float* crow = c + i0 * n;
    int64_t j0 = 0;
    for (; j0 + 8 <= n; j0 += 8) {
      __m256 acc = _mm256_setzero_ps();
      for (int64_t kk = 0; kk < k; ++kk) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(arow[kk]),
                              _mm256_loadu_ps(b + kk * n + j0), acc);
      }
      _mm256_storeu_ps(crow + j0, acc);
    }
    for (; j0 < n; ++j0) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * b[kk * n + j0];
      crow[j0] = acc;
    }
  }
}

/// Fused scan, specialised on the embedding width. NSEG = d / 8 full ymm
/// segments, REM = whether a masked tail segment exists; the query is
/// hoisted into registers once, so the per-row work is a straight FMA
/// chain with no reloads or tail branches.
///
/// A single sequential stream leaves the core's memory-level parallelism
/// idle (one demand stream + the hardware prefetcher); splitting the range
/// into eight interleaved sub-streams with explicit software prefetch a
/// few rows ahead keeps eight independent cache-line streams in flight and
/// roughly doubles the achieved bandwidth on the catalog-sized scans that
/// dominate SBR inference — measured at the practical single-core read
/// roof for catalogs far beyond LLC capacity.
///
/// Candidate filtering is done against a register-cached copy of the
/// heap's minimum (`cutoff`), so the common case (score below the current
/// top-k floor) costs one compare and one predictable branch per row; the
/// heap itself is only touched on the rare improving row. Semantics match
/// HeapPushBounded's strict `>` exactly.
template <int NSEG, bool REM>
__attribute__((target("avx2,fma"))) void MipsScanW(
    const float* items, const float* query, int64_t d, int64_t row_begin,
    int64_t row_end, int64_t k, std::vector<ScoredIndex>& heap) {
  __m256 qreg[NSEG + (REM ? 1 : 0)];
  __m256i mask = _mm256_setzero_si256();
  for (int g = 0; g < NSEG; ++g) qreg[g] = _mm256_loadu_ps(query + 8 * g);
  if (REM) {
    mask = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
        kMaskTable + 8 - (d - 8 * NSEG)));
    qreg[NSEG] = _mm256_maskload_ps(query + 8 * NSEG, mask);
  }
  const int64_t rows = row_end - row_begin;
  int64_t chunk = rows / 8;
  chunk -= chunk % 2;
  const float* base[8];
  for (int s = 0; s < 8; ++s) base[s] = items + (row_begin + s * chunk) * d;
  // Rows each stream advances per iteration: 2 rows = 8*d bytes, i.e.
  // NSEG (+1) cache lines — prefetch exactly that many, 16 rows ahead.
  constexpr int kPrefetchLines = NSEG + (REM ? 1 : 0);
  float cutoff = -std::numeric_limits<float>::infinity();
  int64_t fill = k;
  for (int64_t r = 0; r + 2 <= chunk; r += 2) {
    for (int s = 0; s < 8; s += 2) {
      const float* p0 = base[s] + r * d;
      const float* p1 = base[s + 1] + r * d;
      for (int pl = 0; pl < kPrefetchLines; ++pl) {
        _mm_prefetch(reinterpret_cast<const char*>(p0 + 16 * d) + 64 * pl,
                     _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char*>(p1 + 16 * d) + 64 * pl,
                     _MM_HINT_T0);
      }
      __m256 a0, a1, a2, a3;
      if constexpr (NSEG >= 1) {
        a0 = _mm256_mul_ps(qreg[0], _mm256_loadu_ps(p0));
        a1 = _mm256_mul_ps(qreg[0], _mm256_loadu_ps(p0 + d));
        a2 = _mm256_mul_ps(qreg[0], _mm256_loadu_ps(p1));
        a3 = _mm256_mul_ps(qreg[0], _mm256_loadu_ps(p1 + d));
        for (int g = 1; g < NSEG; ++g) {
          a0 = _mm256_fmadd_ps(qreg[g], _mm256_loadu_ps(p0 + 8 * g), a0);
          a1 = _mm256_fmadd_ps(qreg[g], _mm256_loadu_ps(p0 + d + 8 * g), a1);
          a2 = _mm256_fmadd_ps(qreg[g], _mm256_loadu_ps(p1 + 8 * g), a2);
          a3 = _mm256_fmadd_ps(qreg[g], _mm256_loadu_ps(p1 + d + 8 * g), a3);
        }
        if (REM) {
          a0 = _mm256_fmadd_ps(qreg[NSEG],
                               _mm256_maskload_ps(p0 + 8 * NSEG, mask), a0);
          a1 = _mm256_fmadd_ps(
              qreg[NSEG], _mm256_maskload_ps(p0 + d + 8 * NSEG, mask), a1);
          a2 = _mm256_fmadd_ps(qreg[NSEG],
                               _mm256_maskload_ps(p1 + 8 * NSEG, mask), a2);
          a3 = _mm256_fmadd_ps(
              qreg[NSEG], _mm256_maskload_ps(p1 + d + 8 * NSEG, mask), a3);
        }
      } else {
        // d < 8: the single (masked) segment is the whole row.
        a0 = _mm256_mul_ps(qreg[0], _mm256_maskload_ps(p0, mask));
        a1 = _mm256_mul_ps(qreg[0], _mm256_maskload_ps(p0 + d, mask));
        a2 = _mm256_mul_ps(qreg[0], _mm256_maskload_ps(p1, mask));
        a3 = _mm256_mul_ps(qreg[0], _mm256_maskload_ps(p1 + d, mask));
      }
      const __m256 h =
          _mm256_hadd_ps(_mm256_hadd_ps(a0, a1), _mm256_hadd_ps(a2, a3));
      const __m128 dots = _mm_add_ps(_mm256_castps256_ps128(h),
                                     _mm256_extractf128_ps(h, 1));
      alignas(16) float v[4];
      _mm_store_ps(v, dots);
      const int64_t r0 = row_begin + s * chunk + r;
      const int64_t r1 = row_begin + (s + 1) * chunk + r;
      const int64_t idx[4] = {r0, r0 + 1, r1, r1 + 1};
      for (int t = 0; t < 4; ++t) {
        if (v[t] > cutoff || fill > 0) {
          HeapPushBounded(heap, k, v[t], idx[t]);
          if (fill > 0) --fill;
          if (static_cast<int64_t>(heap.size()) == k)
            cutoff = heap.front().first;
        }
      }
    }
  }
  for (int64_t i = row_begin + 8 * chunk; i < row_end; ++i) {
    HeapPushBounded(heap, k, Dot(items + i * d, query, d), i);
  }
}

/// Wide-embedding fallback (d > 64): per-row vectorised dots over four
/// interleaved sub-streams. At these widths each row spans several cache
/// lines, so four demand streams already saturate the prefetcher.
__attribute__((target("avx2,fma"))) void MipsScanWide(
    const float* items, const float* query, int64_t d, int64_t row_begin,
    int64_t row_end, int64_t k, std::vector<ScoredIndex>& heap) {
  const int64_t rows = row_end - row_begin;
  const int64_t quarter = rows / 4;
  const int64_t start[5] = {row_begin, row_begin + quarter,
                            row_begin + 2 * quarter, row_begin + 3 * quarter,
                            row_end};
  int64_t pos[4] = {start[0], start[1], start[2], start[3]};
  for (bool any = true; any;) {
    any = false;
    for (int s = 0; s < 4; ++s) {
      if (pos[s] + 4 > start[s + 1]) continue;
      any = true;
      const __m128 dots = Dot4Rows(items + pos[s] * d, query, d);
      alignas(16) float v[4];
      _mm_store_ps(v, dots);
      HeapPushBounded(heap, k, v[0], pos[s]);
      HeapPushBounded(heap, k, v[1], pos[s] + 1);
      HeapPushBounded(heap, k, v[2], pos[s] + 2);
      HeapPushBounded(heap, k, v[3], pos[s] + 3);
      pos[s] += 4;
    }
  }
  for (int s = 0; s < 4; ++s) {
    for (int64_t i = pos[s]; i < start[s + 1]; ++i) {
      HeapPushBounded(heap, k, Dot(items + i * d, query, d), i);
    }
  }
}

void MipsScan(const float* items, const float* query, int64_t d,
              int64_t row_begin, int64_t row_end, int64_t k,
              std::vector<ScoredIndex>& heap) {
  switch ((d / 8) * 2 + (d % 8 != 0 ? 1 : 0)) {
    case 1:
      MipsScanW<0, true>(items, query, d, row_begin, row_end, k, heap);
      return;
    case 2:
      MipsScanW<1, false>(items, query, d, row_begin, row_end, k, heap);
      return;
    case 3:
      MipsScanW<1, true>(items, query, d, row_begin, row_end, k, heap);
      return;
    case 4:
      MipsScanW<2, false>(items, query, d, row_begin, row_end, k, heap);
      return;
    case 5:
      MipsScanW<2, true>(items, query, d, row_begin, row_end, k, heap);
      return;
    case 6:
      MipsScanW<3, false>(items, query, d, row_begin, row_end, k, heap);
      return;
    case 7:
      MipsScanW<3, true>(items, query, d, row_begin, row_end, k, heap);
      return;
    case 8:
      MipsScanW<4, false>(items, query, d, row_begin, row_end, k, heap);
      return;
    case 9:
      MipsScanW<4, true>(items, query, d, row_begin, row_end, k, heap);
      return;
    case 10:
      MipsScanW<5, false>(items, query, d, row_begin, row_end, k, heap);
      return;
    case 11:
      MipsScanW<5, true>(items, query, d, row_begin, row_end, k, heap);
      return;
    case 12:
      MipsScanW<6, false>(items, query, d, row_begin, row_end, k, heap);
      return;
    case 13:
      MipsScanW<6, true>(items, query, d, row_begin, row_end, k, heap);
      return;
    case 14:
      MipsScanW<7, false>(items, query, d, row_begin, row_end, k, heap);
      return;
    case 15:
      MipsScanW<7, true>(items, query, d, row_begin, row_end, k, heap);
      return;
    case 16:
      MipsScanW<8, false>(items, query, d, row_begin, row_end, k, heap);
      return;
    default:
      MipsScanWide(items, query, d, row_begin, row_end, k, heap);
      return;
  }
}

// ---------------------------------------------------------------------------
// Int8 scan. vpmaddubsw multiplies unsigned by signed bytes; the sign
// trick recovers the signed×signed dot: with qa = |q| and
// sv = v * sign(q) (vpsignb), maddubs(qa, sv) sums q[j]*v[j] pairs into
// int16 lanes, and vpmaddwd against ones widens them into int32
// accumulators. Values are in [-127, 127] (kernel precondition), so the
// pair sums peak at 2*127*127 = 32258 — below int16 saturation.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline int32_t HSumI32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4E));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xB1));
  return _mm_cvtsi128_si32(s);
}

/// acc += dot of one 32-byte segment: qa = |q| segment, qs = raw q
/// segment (sign source), p = catalog segment.
__attribute__((target("avx2"))) inline __m256i DotStepI8(
    __m256i qa, __m256i qs, const int8_t* p, __m256i ones, __m256i acc) {
  const __m256i v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const __m256i sv = _mm256_sign_epi8(v, qs);
  const __m256i pairs = _mm256_maddubs_epi16(qa, sv);
  return _mm256_add_epi32(acc, _mm256_madd_epi16(pairs, ones));
}

/// Int8 fused scan, specialised on the padded row width (NSEG 32-byte
/// segments, no tails — QuantizedRowStride zero-pads instead). Mirrors
/// MipsScanW: query (and |query|) hoisted into registers, eight
/// interleaved sub-streams with software prefetch, four rows reduced at
/// once by a vphaddd tree, candidates filtered against a register-cached
/// heap cutoff with HeapPushBounded's strict `>` semantics.
template <int NSEG>
__attribute__((target("avx2"))) void QuantizedMipsScanW(
    const int8_t* items, int64_t stride, const float* scales,
    const int8_t* query, float query_scale, int64_t row_begin,
    int64_t row_end, int64_t k, std::vector<ScoredIndex>& heap) {
  __m256i qs[NSEG], qa[NSEG];
  for (int g = 0; g < NSEG; ++g) {
    qs[g] = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(query + 32 * g));
    qa[g] = _mm256_abs_epi8(qs[g]);
  }
  const __m256i ones = _mm256_set1_epi16(1);
  const int64_t rows = row_end - row_begin;
  int64_t chunk = rows / 8;
  chunk -= chunk % 2;
  const int8_t* base[8];
  for (int s = 0; s < 8; ++s) {
    base[s] = items + (row_begin + s * chunk) * stride;
  }
  // Each stream advances 2 rows = 2 * stride bytes per iteration — NSEG
  // cache lines. Prefetch exactly that many, 16 rows ahead.
  constexpr int kPrefetchLines = NSEG;
  float cutoff = -std::numeric_limits<float>::infinity();
  int64_t fill = k;
  for (int64_t r = 0; r + 2 <= chunk; r += 2) {
    for (int s = 0; s < 8; s += 2) {
      const int8_t* p0 = base[s] + r * stride;
      const int8_t* p1 = base[s + 1] + r * stride;
      for (int pl = 0; pl < kPrefetchLines; ++pl) {
        _mm_prefetch(
            reinterpret_cast<const char*>(p0 + 16 * stride) + 64 * pl,
            _MM_HINT_T0);
        _mm_prefetch(
            reinterpret_cast<const char*>(p1 + 16 * stride) + 64 * pl,
            _MM_HINT_T0);
      }
      __m256i a0 = _mm256_setzero_si256();
      __m256i a1 = _mm256_setzero_si256();
      __m256i a2 = _mm256_setzero_si256();
      __m256i a3 = _mm256_setzero_si256();
      for (int g = 0; g < NSEG; ++g) {
        a0 = DotStepI8(qa[g], qs[g], p0 + 32 * g, ones, a0);
        a1 = DotStepI8(qa[g], qs[g], p0 + stride + 32 * g, ones, a1);
        a2 = DotStepI8(qa[g], qs[g], p1 + 32 * g, ones, a2);
        a3 = DotStepI8(qa[g], qs[g], p1 + stride + 32 * g, ones, a3);
      }
      const __m256i h = _mm256_hadd_epi32(_mm256_hadd_epi32(a0, a1),
                                          _mm256_hadd_epi32(a2, a3));
      const __m128i dots = _mm_add_epi32(_mm256_castsi256_si128(h),
                                         _mm256_extracti128_si256(h, 1));
      alignas(16) int32_t v[4];
      _mm_store_si128(reinterpret_cast<__m128i*>(v), dots);
      const int64_t r0 = row_begin + s * chunk + r;
      const int64_t r1 = row_begin + (s + 1) * chunk + r;
      const int64_t idx[4] = {r0, r0 + 1, r1, r1 + 1};
      for (int t = 0; t < 4; ++t) {
        const float score =
            static_cast<float>(v[t]) * scales[idx[t]] * query_scale;
        if (score > cutoff || fill > 0) {
          HeapPushBounded(heap, k, score, idx[t]);
          if (fill > 0) --fill;
          if (static_cast<int64_t>(heap.size()) == k)
            cutoff = heap.front().first;
        }
      }
    }
  }
  for (int64_t i = row_begin + 8 * chunk; i < row_end; ++i) {
    const int8_t* row = items + i * stride;
    __m256i acc = _mm256_setzero_si256();
    for (int g = 0; g < NSEG; ++g) {
      acc = DotStepI8(qa[g], qs[g], row + 32 * g, ones, acc);
    }
    const float score =
        static_cast<float>(HSumI32(acc)) * scales[i] * query_scale;
    HeapPushBounded(heap, k, score, i);
  }
}

/// Wide fallback (stride > 128 bytes): the query no longer fits in
/// registers, so it is re-streamed per row — at these widths each row
/// already spans multiple cache lines and the scan is row-bound anyway.
__attribute__((target("avx2"))) void QuantizedMipsScanWideI8(
    const int8_t* items, int64_t stride, const float* scales,
    const int8_t* query, float query_scale, int64_t row_begin,
    int64_t row_end, int64_t k, std::vector<ScoredIndex>& heap) {
  const __m256i ones = _mm256_set1_epi16(1);
  for (int64_t i = row_begin; i < row_end; ++i) {
    const int8_t* row = items + i * stride;
    __m256i acc = _mm256_setzero_si256();
    for (int64_t off = 0; off < stride; off += 32) {
      const __m256i q = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(query + off));
      acc = DotStepI8(_mm256_abs_epi8(q), q, row + off, ones, acc);
    }
    const float score =
        static_cast<float>(HSumI32(acc)) * scales[i] * query_scale;
    HeapPushBounded(heap, k, score, i);
  }
}

void QuantizedMipsScan(const int8_t* items, int64_t stride,
                       const float* scales, const int8_t* query,
                       float query_scale, int64_t row_begin, int64_t row_end,
                       int64_t k, std::vector<ScoredIndex>& heap) {
  switch (stride / 32) {
    case 1:
      QuantizedMipsScanW<1>(items, stride, scales, query, query_scale,
                            row_begin, row_end, k, heap);
      return;
    case 2:
      QuantizedMipsScanW<2>(items, stride, scales, query, query_scale,
                            row_begin, row_end, k, heap);
      return;
    case 3:
      QuantizedMipsScanW<3>(items, stride, scales, query, query_scale,
                            row_begin, row_end, k, heap);
      return;
    case 4:
      QuantizedMipsScanW<4>(items, stride, scales, query, query_scale,
                            row_begin, row_end, k, heap);
      return;
    default:
      QuantizedMipsScanWideI8(items, stride, scales, query, query_scale,
                              row_begin, row_end, k, heap);
      return;
  }
}

}  // namespace avx2
#endif  // ETUDE_KERNELS_X86

}  // namespace

bool HasAvx2Fma() {
#if ETUDE_KERNELS_X86
  static const bool supported = __builtin_cpu_supports("avx2") &&
                                __builtin_cpu_supports("fma");
  return supported;
#else
  return false;
#endif
}

float DotKernel(const float* a, const float* b, int64_t n) {
#if ETUDE_KERNELS_X86
  if (HasAvx2Fma()) return avx2::Dot(a, b, n);
#endif
  return portable::Dot(a, b, n);
}

void MatVecKernel(const float* a, const float* x, float* out,
                  int64_t row_begin, int64_t row_end, int64_t k) {
#if ETUDE_KERNELS_X86
  if (HasAvx2Fma()) {
    avx2::MatVec(a, x, out, row_begin, row_end, k);
    return;
  }
#endif
  portable::MatVec(a, x, out, row_begin, row_end, k);
}

void MatMulKernel(const float* a, const float* b, float* c, int64_t i_begin,
                  int64_t i_end, int64_t k, int64_t n) {
#if ETUDE_KERNELS_X86
  if (HasAvx2Fma()) {
    avx2::MatMul(a, b, c, i_begin, i_end, k, n);
    return;
  }
#endif
  portable::MatMul(a, b, c, i_begin, i_end, k, n);
}

void MipsScanKernel(const float* items, const float* query, int64_t d,
                    int64_t row_begin, int64_t row_end, int64_t k,
                    std::vector<ScoredIndex>& heap) {
#if ETUDE_KERNELS_X86
  if (HasAvx2Fma()) {
    avx2::MipsScan(items, query, d, row_begin, row_end, k, heap);
    return;
  }
#endif
  portable::MipsScan(items, query, d, row_begin, row_end, k, heap);
}

void QuantizedMipsScanKernel(const int8_t* items, int64_t stride,
                             const float* scales, const int8_t* query,
                             float query_scale, int64_t d, int64_t row_begin,
                             int64_t row_end, int64_t k,
                             std::vector<ScoredIndex>& heap) {
#if ETUDE_KERNELS_X86
  if (HasAvx2Fma()) {
    // The AVX2 path scans the full zero-padded stride; the padding
    // contributes nothing, so d itself is not needed.
    avx2::QuantizedMipsScan(items, stride, scales, query, query_scale,
                            row_begin, row_end, k, heap);
    return;
  }
#endif
  portable::QuantizedMipsScan(items, stride, scales, query, query_scale, d,
                              row_begin, row_end, k, heap);
}

}  // namespace etude::tensor::kernels

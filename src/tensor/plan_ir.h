#ifndef ETUDE_TENSOR_PLAN_IR_H_
#define ETUDE_TENSOR_PLAN_IR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tensor/shape_check.h"

namespace etude::tensor {

/// A retained symbolic plan of one model's inference op graph.
///
/// PR 1's ShapeChecker validated shapes on the fly and threw the trace
/// away; the plan IR keeps it: every op the runtime would dispatch becomes
/// a PlanNode with its symbolic output shape, its producer edges and its
/// cost polynomials in the paper's symbols {B, C, d, L, k, n}. The
/// analysis
/// passes in tensor/plan_analysis.h (liveness/peak-memory, static cost,
/// dead-op/CSE, materialized-[C]) all run over this graph.

/// Concrete values for the symbolic dims, e.g. {C: 1e6, d: 32, L: 50}.
/// Compound symbols such as "(L+n)" need no explicit entry — they are
/// evaluated recursively from their parts.
using Bindings = std::map<std::string, double>;

/// Evaluates a symbol name against `bindings`. Handles the compound
/// names SymDim::operator+ produces ("(L+n)", "(2d+1+n)"); aborts on a
/// symbol that is neither bound nor decomposable.
double EvalSymbolName(const std::string& name, const Bindings& bindings);

/// A multivariate polynomial with double coefficients over the symbolic
/// dims: each term is coef * product(symbols). Exact mirror of the
/// analytic FLOP/byte formulas in tensor/ops.cc, so evaluating at a
/// concrete config reproduces the runtime's own cost attribution.
class CostPoly {
 public:
  CostPoly() = default;
  static CostPoly Const(double value);
  /// coef * symbol + offset, from a symbolic dimension.
  static CostPoly FromDim(const SymDim& dim);
  /// Product of the dims of a shape (the element count).
  static CostPoly Numel(const SymShape& shape);

  CostPoly& operator+=(const CostPoly& other);
  CostPoly operator+(const CostPoly& other) const;
  CostPoly operator*(const CostPoly& other) const;
  CostPoly operator*(double scalar) const;

  bool IsZero() const { return terms_.empty(); }
  double Eval(const Bindings& bindings) const;
  /// Deterministic rendering, e.g. "24*L*d^2 + 4*L^2*d + 2*d^2".
  std::string ToString() const;

 private:
  // Sorted symbol multiset -> coefficient. Zero coefficients are erased.
  std::map<std::vector<std::string>, double> terms_;
};

/// Which half of the request a node belongs to: the session encoder or
/// the catalog-sized scoring tail. Drives the encode/scan split of
/// sim::InferenceWork.
enum class PlanPhase { kEncode, kScore };

/// One op of the retained plan.
struct PlanNode {
  int id = -1;
  std::string op;       // runtime op name ("MatMul", "GruCell", ...) or
                        // "Input" / "Materialize" for leaves and manual
                        // tensor constructions that dispatch no op
  std::string label;    // context ("SASRec block 1") or input name
  SymShape shape;       // symbolic output shape
  std::vector<int> inputs;  // producer node ids
  PlanPhase phase = PlanPhase::kEncode;
  /// Weights/tables owned by the model: allocated at load time, excluded
  /// from the transient live set.
  bool persistent = false;
  bool is_output = false;
  /// Symbolic multiplicity: how many times the runtime dispatches this op
  /// per request (loop trip counts, e.g. L GruCell steps). Scales flops
  /// and traffic; liveness sees one iteration (loop bodies reuse their
  /// buffers) plus the scope rule below.
  CostPoly repeat;
  CostPoly flops;          // per dispatch, mirrors tensor/ops.cc exactly
  CostPoly traffic_bytes;  // per dispatch, 4*(inputs read + output written)
  CostPoly alloc_bytes;    // output tensor buffer (0 for scalars)
  CostPoly scratch_bytes;  // transient internals of composite ops
  /// Liveness floor from C++ scoping: a value dies no earlier than the
  /// end of the scope that created it (locals are destroyed at scope
  /// exit, not after their last use). Index of the last node of the
  /// enclosing scope; consumers can only extend it.
  int min_death = -1;
};

/// A repeat region of the plan: the contiguous node range [begin, end]
/// recorded between BeginRepeat and EndRepeat, dispatched `trips` times
/// per request. Regions nest (SINE's per-interest loop contains the
/// per-key loop); `parent` is the index of the enclosing region, -1 at
/// top level. Retained so the execution planner (tensor/plan_exec.h) can
/// expand loop iterations when scheduling buffer reuse.
struct RepeatRegion {
  int begin = -1;   // first node id inside the region
  int end = -1;     // last node id inside the region (inclusive)
  CostPoly trips;   // iteration count, symbolic
  int parent = -1;  // enclosing region index, -1 when top-level
  /// True for the batch region (trips == B): one iteration per batched
  /// session rather than per-session loop structure. Execution planning
  /// treats it like any repeat region; the batched cost analysis uses the
  /// tag to separate per-batch from per-session multiplicity.
  bool is_batch = false;
};

/// The retained plan: nodes in trace (== topological == program) order,
/// plus the recording state the ShapeChecker drives (phase, scope stack,
/// repeat multiplicity stack).
class PlanGraph {
 public:
  int Add(PlanNode node);  // applies phase/scope/repeat state; returns id

  void SetPhase(PlanPhase phase) { phase_ = phase; }
  PlanPhase phase() const { return phase_; }

  /// C++ scope mirror: values created between Push and Pop live at least
  /// until the Pop (function locals die at return, not at last use).
  void PushScope();
  void PopScope();

  /// Repeat region: nodes recorded inside dispatch `times` times per
  /// request (nesting multiplies). `is_batch` tags the region as the
  /// cross-session batch loop (see RepeatRegion::is_batch).
  void BeginRepeat(const CostPoly& times, bool is_batch = false);
  void EndRepeat();

  /// Marks `consumer` as additionally reading `producer` — used for
  /// manual-loop products whose ingredients the checker cannot see.
  void Link(int consumer, int producer);
  void MarkOutput(int node);

  const std::vector<PlanNode>& nodes() const { return nodes_; }
  PlanNode& node(int id) { return nodes_[static_cast<size_t>(id)]; }
  const PlanNode& node(int id) const {
    return nodes_[static_cast<size_t>(id)];
  }
  int size() const { return static_cast<int>(nodes_.size()); }

  /// Every non-empty repeat region, in the order the regions were opened
  /// (so a parent always precedes its children).
  const std::vector<RepeatRegion>& regions() const { return regions_; }

 private:
  std::vector<PlanNode> nodes_;
  PlanPhase phase_ = PlanPhase::kEncode;
  std::vector<int> scope_starts_;
  std::vector<CostPoly> repeat_stack_;
  std::vector<RepeatRegion> regions_;
  std::vector<int> open_regions_;  // indices into regions_, innermost last
};

}  // namespace etude::tensor

#endif  // ETUDE_TENSOR_PLAN_IR_H_

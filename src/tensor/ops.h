#ifndef ETUDE_TENSOR_OPS_H_
#define ETUDE_TENSOR_OPS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace etude::tensor {

/// Dense operator set covering the inference paths of all ten SBR models.
/// All ops are pure functions over row-major fp32 tensors; shape mismatches
/// abort (programmer error).

/// C = A @ B for rank-2 A:[m,k], B:[k,n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// y = A @ x for A:[m,k], x:[k].
Tensor MatVec(const Tensor& a, const Tensor& x);

/// Fully-connected layer: y = x @ W^T + b, x:[n,in], W:[out,in], b:[out].
/// Pass an empty bias tensor to skip the bias addition.
Tensor Linear(const Tensor& x, const Tensor& weight, const Tensor& bias);

/// Element-wise operations (shapes must match exactly).
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);

/// Adds a rank-1 bias:[d] to every row of a:[n,d].
Tensor AddRowwise(const Tensor& a, const Tensor& bias);

/// Scalar operations.
Tensor Scale(const Tensor& a, float factor);
Tensor AddScalar(const Tensor& a, float value);

/// Activations (element-wise).
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Gelu(const Tensor& a);

/// Softmax over the last dimension.
Tensor Softmax(const Tensor& a);

/// Layer normalisation over the last dimension with learned gain/bias
/// (both rank-1 of size = last dim). `epsilon` stabilises the variance.
Tensor LayerNorm(const Tensor& a, const Tensor& gain, const Tensor& bias,
                 float epsilon = 1e-5f);

/// Fused kernels for the chains the fusion-legality pass
/// (tensor/plan_exec.h) proves safe: one dispatch, one output buffer, no
/// materialised intermediate. Both are bit-identical to their unfused
/// compositions — the cross-check tests depend on it.

/// LayerNorm(Add(a, b), gain, bias) — the transformer residual join.
Tensor AddLayerNorm(const Tensor& a, const Tensor& b, const Tensor& gain,
                    const Tensor& bias, float epsilon = 1e-5f);

/// Sigmoid(Add(a, b)) — the additive-attention gate.
Tensor AddSigmoid(const Tensor& a, const Tensor& b);

/// Gathers rows of `table`:[V,d] at `indices`, producing [len(indices),d].
Tensor Embedding(const Tensor& table, const std::vector<int64_t>& indices);

/// Concatenates two rank-1 tensors, or two rank-2 tensors along dim 1.
Tensor Concat(const Tensor& a, const Tensor& b);

/// Transpose of a rank-2 tensor.
Tensor Transpose(const Tensor& a);

/// Mean over dim 0 of a rank-2 tensor: [n,d] -> [d].
Tensor MeanRows(const Tensor& a);

/// Sum over dim 0 of a rank-2 tensor: [n,d] -> [d].
Tensor SumRows(const Tensor& a);

/// L2-normalises each row of a rank-2 tensor (or the whole rank-1 tensor).
Tensor L2NormalizeRows(const Tensor& a, float epsilon = 1e-12f);

/// Dot product of two rank-1 tensors of equal length.
float Dot(const Tensor& a, const Tensor& b);

/// Index of the maximum element of a rank-1 tensor.
int64_t ArgMax(const Tensor& a);

/// Top-k selection over a rank-1 score vector.
struct TopKResult {
  std::vector<int64_t> indices;  // descending score; ties by ascending index
  std::vector<float> scores;
};

/// Returns the `k` highest-scoring entries of `scores` in descending order
/// (equal scores ordered by ascending index). Implemented as a bounded
/// min-heap partial selection: O(C log k) — this is the `C(d + log k)` term
/// in the paper's complexity analysis.
TopKResult TopK(const Tensor& scores, int64_t k);

/// Merges scored candidates — e.g. the concatenated per-range bounded
/// heaps of a fused scan — into a TopKResult ordered like TopK/Mips
/// (descending score, equal scores by ascending index), trimmed to k.
/// Sorts `candidates` in place.
TopKResult FinishTopK(std::vector<std::pair<float, int64_t>>& candidates,
                      int64_t k);

/// Maximum inner product search over items:[C,d] and query:[d]. This is
/// the op that dominates SBR inference latency (linear in catalog size C).
/// Fused streaming implementation: catalog chunks are scored directly into
/// per-worker bounded min-heaps and merged — the full [C] score vector is
/// never materialised. Results are deterministic for a fixed thread count.
TopKResult Mips(const Tensor& item_embeddings, const Tensor& query,
                int64_t k);

/// A single GRU step. Weights follow the PyTorch GRUCell layout:
/// w_ih:[3h,in], w_hh:[3h,h], b_ih:[3h], b_hh:[3h] with gate order r,z,n.
/// Returns the next hidden state [h].
Tensor GruCell(const Tensor& input, const Tensor& hidden, const Tensor& w_ih,
               const Tensor& w_hh, const Tensor& b_ih, const Tensor& b_hh);

/// Scaled dot-product attention for a single head.
/// q:[n,d], k:[m,d], v:[m,d] -> [n,d].
Tensor ScaledDotProductAttention(const Tensor& q, const Tensor& k,
                                 const Tensor& v);

}  // namespace etude::tensor

#endif  // ETUDE_TENSOR_OPS_H_

#ifndef ETUDE_TENSOR_SHAPE_CHECK_H_
#define ETUDE_TENSOR_SHAPE_CHECK_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace etude::tensor {

class PlanGraph;

/// Static shape linting for the model op graphs.
///
/// The ten SBR architectures execute fixed op sequences whose tensor
/// shapes are linear in a handful of symbolic quantities: the catalog
/// size C, the embedding dimension d, the session length L and the
/// recommendation count k (plus derived symbols such as the session-graph
/// node count n). A shape bug in one of those sequences — a transposed
/// weight, a forgotten Concat doubling, a head wired to [d] instead of
/// [2d] — would otherwise only surface as an ETUDE_CHECK abort in the
/// middle of a benchmark run, for one particular session length.
///
/// ShapeChecker propagates *symbolic* shapes through the same op sequence
/// the model executes (each model declares its graph via
/// SessionModel::TraceEncode) and reports every rank or dimension
/// mismatch with the op name and the offending symbolic dims. The check
/// runs at model-construction time and in the `lint_models` tool; it is
/// independent of any concrete C, d or session, so one pass covers every
/// input the model can ever see.

/// A symbolic tensor dimension of the form `coef * symbol + offset`.
/// `symbol` is empty for concrete dimensions. Dimensions print as the
/// paper's symbols: "C", "d", "3d", "2d", "L", "k", "n", "42".
class SymDim {
 public:
  /// A concrete dimension (implicit: ops accept plain integers).
  SymDim(int64_t value) : offset_(value) {}  // NOLINT(runtime/explicit)

  /// A symbolic dimension `coef * name + offset`.
  static SymDim Sym(std::string name, int64_t coef = 1, int64_t offset = 0);

  bool concrete() const { return name_.empty(); }
  int64_t coef() const { return coef_; }
  const std::string& symbol() const { return name_; }
  int64_t offset() const { return offset_; }

  /// Scales the dimension: 3 * d -> "3d".
  SymDim operator*(int64_t factor) const;

  /// Multiplies two dimensions (used by batched flattenings such as a
  /// [B, L] id matrix viewed as [(B*L)] rows). Concrete operands fold
  /// exactly; symbolic products become an opaque compound symbol like
  /// "(B*L)" which Eval and the plan-IR polynomials decompose
  /// recursively.
  SymDim operator*(const SymDim& other) const;

  /// Adds two dimensions (used by Concat). Same-symbol and concrete
  /// operands combine exactly; unrelated symbols fold into an opaque
  /// compound symbol like "(L+n)".
  SymDim operator+(const SymDim& other) const;

  bool operator==(const SymDim& other) const {
    return coef_ == other.coef_ && name_ == other.name_ &&
           offset_ == other.offset_;
  }
  bool operator!=(const SymDim& other) const { return !(*this == other); }

  std::string ToString() const;

  /// Evaluates the dimension at concrete symbol values, e.g.
  /// {L: 50, n: 12}. Compound symbols such as "(L+n)" are decomposed
  /// recursively; an unbound plain symbol aborts.
  double Eval(const std::map<std::string, double>& bindings) const;

 private:
  SymDim(int64_t coef, std::string name, int64_t offset)
      : coef_(coef), name_(std::move(name)), offset_(offset) {}

  int64_t coef_ = 0;       // 0 when concrete
  std::string name_;       // "" when concrete
  int64_t offset_ = 0;     // the value itself when concrete
};

/// The canonical symbols of the paper's complexity analysis (Sec. II).
namespace sym {
SymDim C();  ///< catalog size
SymDim d();  ///< embedding dimension
SymDim L();  ///< session length (after truncation)
SymDim k();  ///< recommendation count (top-k)
SymDim n();  ///< session-graph node count (GNN models; n <= L)
SymDim B();  ///< batch size (sessions served per batched dispatch)
}  // namespace sym

using SymShape = std::vector<SymDim>;

/// "[L, 3d]" style rendering.
std::string ShapeToString(const SymShape& shape);

/// A symbolic tensor value flowing through the checker. Invalid values
/// poison downstream ops without producing cascading violations.
struct SymTensor {
  SymShape shape;
  bool valid = true;
  /// Id of the PlanNode that produced this value (-1 for invalid tensors
  /// and hand-built values that never passed through a ShapeChecker).
  int node = -1;

  static SymTensor Invalid() { return SymTensor{{}, false}; }
  int rank() const { return static_cast<int>(shape.size()); }
};

/// One detected mismatch: the op that rejected and a message naming the
/// mismatched symbolic dimensions.
struct ShapeViolation {
  std::string op;       // e.g. "MatMul"
  std::string context;  // e.g. "SASRec block 1" (may be empty)
  std::string message;  // e.g. "inner dims L vs d do not match ..."

  std::string ToString() const;
};

/// Symbolic mirror of the tensor op set (tensor/ops.h) plus the Tensor
/// member ops the models use (Row, Reshaped). Every method validates its
/// operands like the runtime op would, records a ShapeViolation on
/// mismatch, and returns the symbolic result shape (or an invalid tensor
/// that suppresses follow-on errors).
class ShapeChecker {
 public:
  ShapeChecker();
  ~ShapeChecker();
  ShapeChecker(const ShapeChecker&) = delete;
  ShapeChecker& operator=(const ShapeChecker&) = delete;

  /// Introduces a leaf tensor (weights, embeddings — model-owned storage
  /// that is allocated at load time, not per request).
  SymTensor Input(const std::string& name, SymShape shape);

  /// Sets a free-form location label attached to subsequent violations
  /// (e.g. "TransformerBlock 2"). Empty clears it.
  void SetContext(std::string context) { context_ = std::move(context); }

  // --- ops.h mirrors -------------------------------------------------------
  SymTensor MatMul(const SymTensor& a, const SymTensor& b);
  SymTensor MatVec(const SymTensor& a, const SymTensor& x);
  SymTensor Linear(const SymTensor& x, const SymTensor& weight,
                   const SymTensor& bias);
  SymTensor Add(const SymTensor& a, const SymTensor& b);
  SymTensor Sub(const SymTensor& a, const SymTensor& b);
  SymTensor Mul(const SymTensor& a, const SymTensor& b);
  SymTensor AddRowwise(const SymTensor& a, const SymTensor& bias);
  SymTensor Scale(const SymTensor& a);
  SymTensor Sigmoid(const SymTensor& a);
  SymTensor Tanh(const SymTensor& a);
  SymTensor Relu(const SymTensor& a);
  SymTensor Gelu(const SymTensor& a);
  SymTensor Softmax(const SymTensor& a);
  SymTensor LayerNorm(const SymTensor& a, const SymTensor& gain,
                      const SymTensor& bias);
  /// Fused LayerNorm(Add(a, b)) — one dispatch, one output buffer.
  SymTensor AddLayerNorm(const SymTensor& a, const SymTensor& b,
                         const SymTensor& gain, const SymTensor& bias);
  /// Fused Sigmoid(Add(a, b)).
  SymTensor AddSigmoid(const SymTensor& a, const SymTensor& b);
  /// Gather of `count` rows from a rank-2 table -> [count, table_width].
  SymTensor Embedding(const SymTensor& table, const SymDim& count);
  SymTensor Concat(const SymTensor& a, const SymTensor& b);
  SymTensor Transpose(const SymTensor& a);
  SymTensor MeanRows(const SymTensor& a);
  SymTensor SumRows(const SymTensor& a);
  SymTensor L2NormalizeRows(const SymTensor& a);
  /// Rank-1 x rank-1 dot product -> scalar (rank 0).
  SymTensor Dot(const SymTensor& a, const SymTensor& b);
  /// Top-k over a rank-1 score vector -> [k] (indices/scores).
  SymTensor TopK(const SymTensor& scores, const SymDim& k);
  /// MIPS: items [C, d] x query [d] -> top-k [k].
  SymTensor Mips(const SymTensor& items, const SymTensor& query,
                 const SymDim& k);
  SymTensor GruCell(const SymTensor& input, const SymTensor& hidden,
                    const SymTensor& w_ih, const SymTensor& w_hh,
                    const SymTensor& b_ih, const SymTensor& b_hh);
  /// Scaled dot-product attention: q [n,d] k [m,d] v [m,d] -> [n,d].
  SymTensor Attention(const SymTensor& q, const SymTensor& k,
                      const SymTensor& v);

  // --- Tensor member mirrors ----------------------------------------------
  /// Tensor::Row of a rank-2 tensor -> rank-1 [width].
  SymTensor Row(const SymTensor& a);
  /// Tensor::Reshaped: element count must match symbolically.
  SymTensor Reshape(const SymTensor& a, SymShape new_shape);

  // --- structural helpers --------------------------------------------------
  /// Dynamic truncation of one axis to a (smaller) runtime-dependent
  /// extent, e.g. LightSANs' min(kMaxInterests, L) latent interests.
  /// Always shape-safe; introduces the new symbolic extent.
  SymTensor Truncate(const SymTensor& a, int axis, const SymDim& new_dim);
  /// GRU-style gated state update: gates [n, 3h] x2 applied to state
  /// [n, h] -> [n, h] (the SR-GNN node update).
  SymTensor GatedUpdate(const SymTensor& gate_input,
                        const SymTensor& gate_hidden, const SymTensor& state);

  // --- plan recording ------------------------------------------------------
  // Every op above also appends a PlanNode to a retained plan IR (see
  // tensor/plan_ir.h). The hooks below let traces describe the parts of
  // the runtime the op mirrors cannot see: manual loops, buffers
  // allocated ahead of their producers, C++ scope lifetimes.

  /// A tensor the runtime builds with a manual element loop (no op
  /// dispatch, zero FLOPs): session-graph adjacency, attention
  /// accumulators, RepeatNet's one-hot matrix. `deps` are the values the
  /// loop reads.
  SymTensor Materialize(const std::string& label, SymShape shape,
                        std::initializer_list<const SymTensor*> deps);
  /// Marks `consumer` as additionally reading `producer` — a dataflow
  /// edge the op mirrors cannot express (e.g. a preallocated buffer
  /// filled by later loop iterations).
  void Link(const SymTensor& consumer, const SymTensor& producer);
  /// Marks the request's final result (TopK indices); analysis treats it
  /// as consumed.
  void MarkOutput(const SymTensor& a);
  /// Loop region: ops recorded inside dispatch `times` times per request
  /// (costs scale; liveness sees one iteration, buffers are reused).
  void BeginRepeat(const SymDim& times);
  void EndRepeat();
  /// Batch region: a repeat region whose trip count is the batch size B.
  /// Structurally identical to BeginRepeat (costs scale by B, buffers are
  /// reused across sessions), but tagged so the batched cost analysis can
  /// tell per-session repetition (GRU steps) apart from cross-session
  /// repetition when deciding which traffic amortizes.
  void BeginBatch(const SymDim& batch);
  void EndBatch();
  /// C++ scope mirror: values recorded between Push and Pop live until
  /// the Pop (function locals die at scope exit, not at last use).
  void PushScope();
  void PopScope();
  /// Phase split driving the encode/scan halves of sim::InferenceWork.
  void BeginEncodePhase();
  void BeginScorePhase();

  const PlanGraph& plan() const { return *plan_; }

  /// Asserts `a` has exactly `expected` shape; records a violation naming
  /// `what` otherwise. Returns whether it matched.
  bool Require(const SymTensor& a, const SymShape& expected,
               const std::string& what);

  bool ok() const { return violations_.empty(); }
  const std::vector<ShapeViolation>& violations() const {
    return violations_;
  }
  /// All violations joined into one human-readable report line-by-line.
  std::string Report() const;

 private:
  /// Records a violation for `op` and returns an invalid tensor.
  SymTensor Fail(const std::string& op, const std::string& message);
  /// True when every operand is valid (invalid operands poison silently).
  static bool Usable(std::initializer_list<const SymTensor*> operands);
  SymTensor Elementwise(const std::string& op, const SymTensor& a,
                        const SymTensor& b);
  SymTensor Unary(const std::string& op, const SymTensor& a);

  std::string context_;
  std::vector<ShapeViolation> violations_;
  std::unique_ptr<PlanGraph> plan_;
};

}  // namespace etude::tensor

#endif  // ETUDE_TENSOR_SHAPE_CHECK_H_

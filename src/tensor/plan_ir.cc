#include "tensor/plan_ir.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <utility>

#include "common/logging.h"

namespace etude::tensor {

namespace {

// Recursive-descent evaluation of the expressions SymDim::ToString
// produces: a sum of signed terms, each term a '*'-product of atoms, each
// atom being an integer, an optional integer coefficient followed by a
// symbol name, or a parenthesized sub-expression (possibly with a
// coefficient, e.g. "2(L+n)"). '*' binds tighter than '+'/'-', so the
// compound names of both SymDim::operator+ ("(L+n)") and
// SymDim::operator* ("(B*L)") evaluate correctly.
double ParseSum(const std::string& expr, size_t& pos, const Bindings& bindings);

double ParseAtom(const std::string& expr, size_t& pos,
                 const Bindings& bindings) {
  ETUDE_CHECK(pos < expr.size())
      << "empty atom in symbolic expression '" << expr << "'";
  double coef = 1.0;
  bool saw_coef = false;
  if (std::isdigit(static_cast<unsigned char>(expr[pos]))) {
    size_t start = pos;
    while (pos < expr.size() &&
           std::isdigit(static_cast<unsigned char>(expr[pos]))) {
      ++pos;
    }
    coef = std::stod(expr.substr(start, pos - start));
    saw_coef = true;
  }
  if (pos < expr.size() && expr[pos] == '(') {
    size_t open = pos++;
    double inner = ParseSum(expr, pos, bindings);
    ETUDE_CHECK(pos < expr.size() && expr[pos] == ')')
        << "unbalanced parenthesis at " << open << " in '" << expr << "'";
    ++pos;
    return coef * inner;
  }
  if (pos < expr.size() &&
      (std::isalpha(static_cast<unsigned char>(expr[pos])) ||
       expr[pos] == '_')) {
    size_t start = pos;
    while (pos < expr.size() &&
           (std::isalnum(static_cast<unsigned char>(expr[pos])) ||
            expr[pos] == '_')) {
      ++pos;
    }
    const std::string name = expr.substr(start, pos - start);
    auto it = bindings.find(name);
    ETUDE_CHECK(it != bindings.end())
        << "unbound symbol '" << name << "' in '" << expr << "'";
    return coef * it->second;
  }
  ETUDE_CHECK(saw_coef) << "cannot parse symbolic expression '" << expr
                        << "' at offset " << pos;
  return coef;  // a bare integer
}

double ParseTerm(const std::string& expr, size_t& pos,
                 const Bindings& bindings) {
  double product = ParseAtom(expr, pos, bindings);
  while (pos < expr.size() && expr[pos] == '*') {
    ++pos;
    product *= ParseAtom(expr, pos, bindings);
  }
  return product;
}

double ParseSum(const std::string& expr, size_t& pos,
                const Bindings& bindings) {
  double total = 0.0;
  double sign = 1.0;
  if (pos < expr.size() && expr[pos] == '-') {
    sign = -1.0;
    ++pos;
  }
  while (true) {
    total += sign * ParseTerm(expr, pos, bindings);
    if (pos < expr.size() && expr[pos] == '+') {
      sign = 1.0;
      ++pos;
    } else if (pos < expr.size() && expr[pos] == '-') {
      sign = -1.0;
      ++pos;
    } else {
      return total;
    }
  }
}

}  // namespace

double EvalSymbolName(const std::string& name, const Bindings& bindings) {
  auto it = bindings.find(name);
  if (it != bindings.end()) return it->second;
  size_t pos = 0;
  double value = ParseSum(name, pos, bindings);
  ETUDE_CHECK(pos == name.size())
      << "trailing characters in symbolic expression '" << name << "'";
  return value;
}

// --- CostPoly ---------------------------------------------------------------

CostPoly CostPoly::Const(double value) {
  CostPoly out;
  if (value != 0.0) out.terms_[{}] = value;
  return out;
}

CostPoly CostPoly::FromDim(const SymDim& dim) {
  if (dim.concrete()) return Const(static_cast<double>(dim.offset()));
  CostPoly out = Const(static_cast<double>(dim.offset()));
  out.terms_[{dim.symbol()}] += static_cast<double>(dim.coef());
  if (out.terms_[{dim.symbol()}] == 0.0) out.terms_.erase({dim.symbol()});
  return out;
}

CostPoly CostPoly::Numel(const SymShape& shape) {
  CostPoly out = Const(1.0);
  for (const SymDim& dim : shape) out = out * FromDim(dim);
  return out;
}

CostPoly& CostPoly::operator+=(const CostPoly& other) {
  for (const auto& [symbols, coef] : other.terms_) {
    double& mine = terms_[symbols];
    mine += coef;
    if (mine == 0.0) terms_.erase(symbols);
  }
  return *this;
}

CostPoly CostPoly::operator+(const CostPoly& other) const {
  CostPoly out = *this;
  out += other;
  return out;
}

CostPoly CostPoly::operator*(const CostPoly& other) const {
  CostPoly out;
  for (const auto& [a_syms, a_coef] : terms_) {
    for (const auto& [b_syms, b_coef] : other.terms_) {
      std::vector<std::string> merged = a_syms;
      merged.insert(merged.end(), b_syms.begin(), b_syms.end());
      std::sort(merged.begin(), merged.end());
      double& coef = out.terms_[merged];
      coef += a_coef * b_coef;
      if (coef == 0.0) out.terms_.erase(merged);
    }
  }
  return out;
}

CostPoly CostPoly::operator*(double scalar) const {
  CostPoly out;
  if (scalar == 0.0) return out;
  for (const auto& [symbols, coef] : terms_) {
    out.terms_[symbols] = coef * scalar;
  }
  return out;
}

double CostPoly::Eval(const Bindings& bindings) const {
  double total = 0.0;
  for (const auto& [symbols, coef] : terms_) {
    double term = coef;
    for (const std::string& symbol : symbols) {
      term *= EvalSymbolName(symbol, bindings);
    }
    total += term;
  }
  return total;
}

std::string CostPoly::ToString() const {
  if (terms_.empty()) return "0";
  std::string out;
  for (const auto& [symbols, coef] : terms_) {
    if (!out.empty()) out += " + ";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", coef);
    std::string term;
    if (symbols.empty() || std::string(buf) != "1") term = buf;
    // Collapse repeated symbols into powers: ["L", "L", "d"] -> "L^2*d".
    for (size_t i = 0; i < symbols.size();) {
      size_t j = i;
      while (j < symbols.size() && symbols[j] == symbols[i]) ++j;
      if (!term.empty()) term += "*";
      term += symbols[i];
      if (j - i > 1) {
        term += "^";
        term += std::to_string(j - i);
      }
      i = j;
    }
    out += term;
  }
  return out;
}

// --- PlanGraph --------------------------------------------------------------

int PlanGraph::Add(PlanNode node) {
  node.id = static_cast<int>(nodes_.size());
  node.phase = phase_;
  node.min_death = node.id;
  CostPoly repeat = CostPoly::Const(1.0);
  for (const CostPoly& factor : repeat_stack_) repeat = repeat * factor;
  node.repeat = repeat;
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

void PlanGraph::PushScope() { scope_starts_.push_back(size()); }

void PlanGraph::PopScope() {
  ETUDE_CHECK(!scope_starts_.empty()) << "PopScope without PushScope";
  const int start = scope_starts_.back();
  scope_starts_.pop_back();
  const int end = size() - 1;
  for (int i = start; i < size(); ++i) {
    PlanNode& n = nodes_[static_cast<size_t>(i)];
    n.min_death = std::max(n.min_death, end);
  }
}

void PlanGraph::BeginRepeat(const CostPoly& times, bool is_batch) {
  repeat_stack_.push_back(times);
  RepeatRegion region;
  region.begin = size();
  region.trips = times;
  region.is_batch = is_batch;
  region.parent = open_regions_.empty() ? -1 : open_regions_.back();
  open_regions_.push_back(static_cast<int>(regions_.size()));
  regions_.push_back(std::move(region));
}

void PlanGraph::EndRepeat() {
  ETUDE_CHECK(!repeat_stack_.empty()) << "EndRepeat without BeginRepeat";
  repeat_stack_.pop_back();
  ETUDE_CHECK(!open_regions_.empty()) << "EndRepeat without BeginRepeat";
  RepeatRegion& region = regions_[static_cast<size_t>(open_regions_.back())];
  open_regions_.pop_back();
  region.end = size() - 1;
  if (region.end < region.begin) {
    // An empty region records no nodes and constrains nothing; drop it.
    // It can only be the most recently opened one, so this never orphans
    // a child's parent index.
    regions_.pop_back();
  }
}

void PlanGraph::Link(int consumer, int producer) {
  if (consumer < 0 || producer < 0) return;  // poisoned trace values
  ETUDE_CHECK(consumer < size() && producer < size())
      << "Link(" << consumer << ", " << producer << ") out of range";
  nodes_[static_cast<size_t>(consumer)].inputs.push_back(producer);
}

void PlanGraph::MarkOutput(int node) {
  if (node < 0) return;
  ETUDE_CHECK(node < size()) << "MarkOutput(" << node << ") out of range";
  nodes_[static_cast<size_t>(node)].is_output = true;
}

}  // namespace etude::tensor

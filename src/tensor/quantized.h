#ifndef ETUDE_TENSOR_QUANTIZED_H_
#define ETUDE_TENSOR_QUANTIZED_H_

#include <cstdint>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace etude::tensor {

/// Int8-quantised item-embedding table for the catalog scan — the "model
/// quantisation" latency/quality trade-off the paper names as future work
/// (Sec. IV). Each row is quantised symmetrically with its own scale:
///   q[i][j] = round(x[i][j] / scale[i]),  scale[i] = max|x[i]| / 127.
/// The scan then moves a quarter of the memory the fp32 table moves,
/// which is exactly the lever for the bandwidth-bound MIPS.
class QuantizedMatrix {
 public:
  /// Quantises a [C, d] fp32 matrix.
  static QuantizedMatrix FromTensor(const Tensor& matrix);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  /// De-quantises row `r` (for tests and error analysis).
  Tensor DequantizeRow(int64_t r) const;

  /// Maximum inner product search against an fp32 query: the query is
  /// quantised once, all dot products run in int32 arithmetic, scores are
  /// rescaled to fp32 before the top-k selection.
  TopKResult Mips(const Tensor& query, int64_t k) const;

  /// Bytes moved by one scan (for the cost model): C*d int8 + C scales.
  int64_t ScanBytes() const {
    return rows_ * cols_ + rows_ * static_cast<int64_t>(sizeof(float));
  }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int8_t> data_;    // row-major [C, d]
  std::vector<float> scales_;   // per-row scale
};

/// Overlap between an approximate top-k and the exact top-k
/// (recall@k in [0, 1]).
double RecallAtK(const TopKResult& exact, const TopKResult& approximate);

}  // namespace etude::tensor

#endif  // ETUDE_TENSOR_QUANTIZED_H_

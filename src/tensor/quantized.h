#ifndef ETUDE_TENSOR_QUANTIZED_H_
#define ETUDE_TENSOR_QUANTIZED_H_

#include <cstdint>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace etude::tensor {

/// Quantises an fp32 query symmetrically into an int8 buffer padded to
/// kernels::QuantizedRowStride(d) (padding zeroed), values clamped to
/// [-127, 127] — the int8 scan kernel's overflow precondition. Returns
/// the scale (q[j] ~= query[j] / scale). A zero query gets scale 1.
float QuantizeQueryInt8(const float* query, int64_t d,
                        std::vector<int8_t>& out);

/// Int8-quantised item-embedding table for the catalog scan — the "model
/// quantisation" latency/quality trade-off the paper names as future work
/// (Sec. IV). Each row is quantised symmetrically with its own scale:
///   q[i][j] = round(x[i][j] / scale[i]),  scale[i] = max|x[i]| / 127.
/// Rows are padded to a 32-byte stride so the AVX2 int8 kernel runs
/// without masked tails; even padded, the scan moves roughly a quarter of
/// the memory the fp32 table moves — exactly the lever for the
/// bandwidth-bound MIPS.
class QuantizedMatrix {
 public:
  /// Quantises a [C, d] fp32 matrix.
  static QuantizedMatrix FromTensor(const Tensor& matrix);

  /// Quantises `count` contiguous row-major fp32 rows of width d — how
  /// the IVF lists quantise their grouped vectors without an intermediate
  /// Tensor copy.
  static QuantizedMatrix FromRows(const float* rows, int64_t count,
                                  int64_t d);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  /// Bytes per packed row (kernels::QuantizedRowStride(cols)).
  int64_t stride() const { return stride_; }
  const int8_t* data() const { return data_.data(); }
  const float* scales() const { return scales_.data(); }

  /// De-quantises row `r` (for tests, error analysis and exact re-rank).
  Tensor DequantizeRow(int64_t r) const;

  /// Maximum inner product search against an fp32 query: the query is
  /// quantised once (clamped to the kernel's [-127, 127] precondition),
  /// the fused int8 scan kernel runs over row ranges in parallel with
  /// per-range bounded heaps, and the merged candidates are rescaled to
  /// fp32 scores. Deterministic for a fixed thread count, like Mips.
  TopKResult Mips(const Tensor& query, int64_t k) const;

  /// Bytes moved by one scan (for the cost model): C padded int8 rows +
  /// C fp32 scales. The stride counts the real traffic, padding included.
  int64_t ScanBytes() const {
    return rows_ * stride_ + rows_ * static_cast<int64_t>(sizeof(float));
  }

  /// Resident footprint of the table (codes + scales).
  int64_t ResidentBytes() const { return ScanBytes(); }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  int64_t stride_ = 0;          // padded row width in bytes
  std::vector<int8_t> data_;    // row-major [C, stride], padding zeroed
  std::vector<float> scales_;   // per-row scale
};

/// Overlap between an approximate top-k and the exact top-k
/// (recall@k in [0, 1]).
double RecallAtK(const TopKResult& exact, const TopKResult& approximate);

}  // namespace etude::tensor

#endif  // ETUDE_TENSOR_QUANTIZED_H_

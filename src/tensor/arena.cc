#include "tensor/arena.h"

#include <cstdlib>

#include "common/logging.h"
#include "obs/memstats.h"

namespace etude::tensor::exec {

namespace {

constexpr int64_t kAlignment = 64;

int64_t RoundUpAlign(int64_t bytes) {
  return (bytes + kAlignment - 1) / kAlignment * kAlignment;
}

// One lazily grown, 64-byte aligned buffer per thread, reused across
// activations so steady-state serving performs no arena mallocs at all.
struct ThreadArena {
  const ArenaScript* script = nullptr;
  char* base = nullptr;
  int64_t capacity = 0;
  size_t cursor = 0;  // next script event to serve

  ~ThreadArena() { std::free(base); }
};

thread_local ThreadArena t_arena;
thread_local bool t_jit_dispatch = false;

}  // namespace

ScopedArena::ScopedArena(const ArenaScript* script) {
  ETUDE_CHECK(script != nullptr) << "ScopedArena requires a script";
  ETUDE_CHECK(t_arena.script == nullptr)
      << "arena activations do not nest (a plan is already active)";
  const int64_t need = RoundUpAlign(script->arena_bytes);
  if (need > t_arena.capacity) {
    std::free(t_arena.base);
    t_arena.base = static_cast<char*>(
        std::aligned_alloc(kAlignment, static_cast<size_t>(need)));
    ETUDE_CHECK(t_arena.base != nullptr)
        << "arena allocation of " << need << " bytes failed";
    t_arena.capacity = need;
  }
  t_arena.script = script;
  t_arena.cursor = 0;
  obs::memdetail::ArenaActivate(script->arena_bytes);
}

ScopedArena::~ScopedArena() { t_arena.script = nullptr; }

float* ArenaTryAlloc(int64_t bytes) {
  ThreadArena& arena = t_arena;
  if (arena.script == nullptr) return nullptr;
  const ArenaScript& script = *arena.script;
  if (arena.cursor >= script.bytes.size() ||
      script.bytes[arena.cursor] != bytes) {
    // Deviation from the compiled schedule: do not advance the cursor, so
    // every subsequent allocation also falls back and the activation's
    // fallback count exposes the divergence instead of serving buffers at
    // offsets computed for a different allocation sequence.
    obs::memdetail::ArenaFallback();
    return nullptr;
  }
  const int64_t offset = script.offsets[arena.cursor];
  ++arena.cursor;
  obs::memdetail::ArenaServe(offset + bytes);
  return reinterpret_cast<float*>(arena.base + offset);
}

ScopedJitDispatch::ScopedJitDispatch(bool enabled) {
  previous_ = t_jit_dispatch;
  t_jit_dispatch = enabled;
}

ScopedJitDispatch::~ScopedJitDispatch() { t_jit_dispatch = previous_; }

bool JitDispatchEnabled() { return t_jit_dispatch; }

}  // namespace etude::tensor::exec

#ifndef ETUDE_TENSOR_KERNELS_H_
#define ETUDE_TENSOR_KERNELS_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace etude::tensor::kernels {

/// Raw fp32 compute kernels behind the public ops in tensor/ops.h.
///
/// Every kernel has two implementations: a portable scalar path (multi-
/// accumulator, branch-free inner loops — what the compiler can vectorise
/// for the build's baseline ISA) and an AVX2+FMA path selected at runtime
/// via __builtin_cpu_supports, so a portable build still uses 256-bit FMA
/// on machines that have it. All kernels are pure functions over caller-
/// owned buffers and safe to call concurrently on disjoint output ranges.

/// True when the runtime-dispatched AVX2+FMA paths are in use.
bool HasAvx2Fma();

/// dot(a, b) over n elements.
float DotKernel(const float* a, const float* b, int64_t n);

/// out[i] = dot(a + i*k, x) for rows i in [row_begin, row_end) of a:[m,k].
void MatVecKernel(const float* a, const float* x, float* out,
                  int64_t row_begin, int64_t row_end, int64_t k);

/// Rows [i_begin, i_end) of C = A @ B with A:[m,k], B:[k,n], C:[m,n].
/// Fully overwrites the computed C rows (no accumulation into C).
void MatMulKernel(const float* a, const float* b, float* c, int64_t i_begin,
                  int64_t i_end, int64_t k, int64_t n);

/// A bounded min-heap candidate: (score, catalog index).
using ScoredIndex = std::pair<float, int64_t>;

/// Pushes (score, index) into `heap`, a std::push_heap/pop_heap min-heap
/// bounded at k entries. Tie rule matches TopK: a score equal to the
/// current minimum does not displace it, so the earliest index among equal
/// scores survives.
void HeapPushBounded(std::vector<ScoredIndex>& heap, int64_t k, float score,
                     int64_t index);

/// Fused MIPS scan: scores rows [row_begin, row_end) of items:[C,d]
/// against query:[d] and keeps the k best (score, index) pairs in `heap`
/// without materialising a score vector. `heap` may already hold
/// candidates from a previous range. The AVX2 path streams four
/// interleaved sub-ranges to keep multiple memory streams in flight —
/// the scan is bandwidth-bound at catalog scale.
void MipsScanKernel(const float* items, const float* query, int64_t d,
                    int64_t row_begin, int64_t row_end, int64_t k,
                    std::vector<ScoredIndex>& heap);

/// Bytes per packed int8 row: d rounded up to whole 32-byte blocks. Rows
/// padded to this stride (padding zeroed) need no masked tail loads in the
/// AVX2 int8 scan — AVX2 has no byte-granular masked load, so padding is
/// the only branch-free way to handle arbitrary d.
inline int64_t QuantizedRowStride(int64_t d) { return (d + 31) / 32 * 32; }

/// Fused int8 MIPS scan over stride-padded rows. `items` holds rows of
/// `stride` bytes (QuantizedRowStride(d), zero-padded past d); `query` is
/// an int8 vector of the same stride (also zero-padded). Each row's int32
/// dot product is rescaled as float(dot) * scales[row] * query_scale
/// before top-k selection, so both paths produce bit-identical scores.
///
/// Precondition: every value in `items` and `query` lies in [-127, 127]
/// (symmetric quantisation never emits -128). The AVX2 path relies on it:
/// |q| fits an unsigned byte and the vpmaddubsw pair sums stay below the
/// int16 saturation point (2 * 127 * 127 < 32767).
void QuantizedMipsScanKernel(const int8_t* items, int64_t stride,
                             const float* scales, const int8_t* query,
                             float query_scale, int64_t d, int64_t row_begin,
                             int64_t row_end, int64_t k,
                             std::vector<ScoredIndex>& heap);

}  // namespace etude::tensor::kernels

#endif  // ETUDE_TENSOR_KERNELS_H_

#include "tensor/shape_check.h"

#include <algorithm>
#include <sstream>

namespace etude::tensor {

SymDim SymDim::Sym(std::string name, int64_t coef, int64_t offset) {
  if (coef == 0) return SymDim(offset);
  return SymDim(coef, std::move(name), offset);
}

SymDim SymDim::operator*(int64_t factor) const {
  if (concrete() || factor == 0) return SymDim(offset_ * factor);
  return SymDim(coef_ * factor, name_, offset_ * factor);
}

SymDim SymDim::operator+(const SymDim& other) const {
  if (concrete()) {
    SymDim out = other;
    out.offset_ += offset_;
    return out;
  }
  if (other.concrete()) {
    SymDim out = *this;
    out.offset_ += other.offset_;
    return out;
  }
  if (name_ == other.name_) {
    return Sym(name_, coef_ + other.coef_, offset_ + other.offset_);
  }
  // Unrelated symbols: fold into an opaque compound symbol. Comparisons
  // against the same compound still work (string equality).
  return Sym("(" + ToString() + "+" + other.ToString() + ")");
}

std::string SymDim::ToString() const {
  if (concrete()) return std::to_string(offset_);
  std::string out;
  if (coef_ == -1) {
    out = "-" + name_;
  } else if (coef_ == 1) {
    out = name_;
  } else {
    out = std::to_string(coef_) + name_;
  }
  if (offset_ > 0) out += "+" + std::to_string(offset_);
  if (offset_ < 0) out += std::to_string(offset_);
  return out;
}

namespace sym {
SymDim C() { return SymDim::Sym("C"); }
SymDim d() { return SymDim::Sym("d"); }
SymDim L() { return SymDim::Sym("L"); }
SymDim k() { return SymDim::Sym("k"); }
SymDim n() { return SymDim::Sym("n"); }
}  // namespace sym

std::string ShapeToString(const SymShape& shape) {
  std::string out = "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out += ", ";
    out += shape[i].ToString();
  }
  return out + "]";
}

std::string ShapeViolation::ToString() const {
  std::string out = op;
  if (!context.empty()) out += " (in " + context + ")";
  return out + ": " + message;
}

SymTensor ShapeChecker::Input(const std::string& name, SymShape shape) {
  (void)name;  // names exist for readability at call sites
  return SymTensor{std::move(shape), true};
}

SymTensor ShapeChecker::Fail(const std::string& op,
                             const std::string& message) {
  violations_.push_back(ShapeViolation{op, context_, message});
  return SymTensor::Invalid();
}

bool ShapeChecker::Usable(std::initializer_list<const SymTensor*> operands) {
  return std::all_of(operands.begin(), operands.end(),
                     [](const SymTensor* t) { return t->valid; });
}

SymTensor ShapeChecker::MatMul(const SymTensor& a, const SymTensor& b) {
  if (!Usable({&a, &b})) return SymTensor::Invalid();
  if (a.rank() != 2 || b.rank() != 2) {
    return Fail("MatMul", "requires rank-2 operands, got a=" +
                              ShapeToString(a.shape) +
                              ", b=" + ShapeToString(b.shape));
  }
  if (a.shape[1] != b.shape[0]) {
    return Fail("MatMul", "inner dims " + a.shape[1].ToString() + " vs " +
                              b.shape[0].ToString() + " do not match: a=" +
                              ShapeToString(a.shape) +
                              ", b=" + ShapeToString(b.shape));
  }
  return SymTensor{{a.shape[0], b.shape[1]}, true};
}

SymTensor ShapeChecker::MatVec(const SymTensor& a, const SymTensor& x) {
  if (!Usable({&a, &x})) return SymTensor::Invalid();
  if (a.rank() != 2 || x.rank() != 1) {
    return Fail("MatVec", "requires a rank-2 matrix and rank-1 vector, got "
                          "a=" +
                              ShapeToString(a.shape) +
                              ", x=" + ShapeToString(x.shape));
  }
  if (a.shape[1] != x.shape[0]) {
    return Fail("MatVec", "matrix columns " + a.shape[1].ToString() +
                              " vs vector length " + x.shape[0].ToString() +
                              " do not match");
  }
  return SymTensor{{a.shape[0]}, true};
}

SymTensor ShapeChecker::Linear(const SymTensor& x, const SymTensor& weight,
                               const SymTensor& bias) {
  if (!Usable({&x, &weight, &bias})) return SymTensor::Invalid();
  if (x.rank() != 2 || weight.rank() != 2) {
    return Fail("Linear", "requires rank-2 input and weight, got x=" +
                              ShapeToString(x.shape) +
                              ", W=" + ShapeToString(weight.shape));
  }
  if (x.shape[1] != weight.shape[1]) {
    return Fail("Linear", "input width " + x.shape[1].ToString() +
                              " vs weight in-dim " +
                              weight.shape[1].ToString() +
                              " do not match: x=" + ShapeToString(x.shape) +
                              ", W=" + ShapeToString(weight.shape));
  }
  // An empty bias (rank 0) skips the bias addition, like the runtime op.
  if (bias.rank() != 0) {
    if (bias.rank() != 1 || bias.shape[0] != weight.shape[0]) {
      return Fail("Linear", "bias " + ShapeToString(bias.shape) +
                                " does not match weight out-dim " +
                                weight.shape[0].ToString());
    }
  }
  return SymTensor{{x.shape[0], weight.shape[0]}, true};
}

SymTensor ShapeChecker::Elementwise(const std::string& op, const SymTensor& a,
                                    const SymTensor& b) {
  if (!Usable({&a, &b})) return SymTensor::Invalid();
  if (a.shape != b.shape) {
    return Fail(op, "operand shapes " + ShapeToString(a.shape) + " and " +
                        ShapeToString(b.shape) + " differ");
  }
  return a;
}

SymTensor ShapeChecker::Add(const SymTensor& a, const SymTensor& b) {
  return Elementwise("Add", a, b);
}
SymTensor ShapeChecker::Sub(const SymTensor& a, const SymTensor& b) {
  return Elementwise("Sub", a, b);
}
SymTensor ShapeChecker::Mul(const SymTensor& a, const SymTensor& b) {
  return Elementwise("Mul", a, b);
}

SymTensor ShapeChecker::AddRowwise(const SymTensor& a, const SymTensor& bias) {
  if (!Usable({&a, &bias})) return SymTensor::Invalid();
  if (a.rank() != 2 || bias.rank() != 1 || a.shape[1] != bias.shape[0]) {
    return Fail("AddRowwise", "requires a=[n, d] and bias=[d], got a=" +
                                  ShapeToString(a.shape) + ", bias=" +
                                  ShapeToString(bias.shape));
  }
  return a;
}

SymTensor ShapeChecker::Unary(const std::string& op, const SymTensor& a) {
  if (!a.valid) return SymTensor::Invalid();
  if (a.rank() == 0) {
    return Fail(op, "requires a tensor operand, got a scalar");
  }
  return a;
}

SymTensor ShapeChecker::Scale(const SymTensor& a) { return Unary("Scale", a); }
SymTensor ShapeChecker::Sigmoid(const SymTensor& a) {
  return Unary("Sigmoid", a);
}
SymTensor ShapeChecker::Tanh(const SymTensor& a) { return Unary("Tanh", a); }
SymTensor ShapeChecker::Relu(const SymTensor& a) { return Unary("Relu", a); }
SymTensor ShapeChecker::Gelu(const SymTensor& a) { return Unary("Gelu", a); }
SymTensor ShapeChecker::Softmax(const SymTensor& a) {
  return Unary("Softmax", a);
}

SymTensor ShapeChecker::LayerNorm(const SymTensor& a, const SymTensor& gain,
                                  const SymTensor& bias) {
  if (!Usable({&a, &gain, &bias})) return SymTensor::Invalid();
  if (a.rank() < 1) return Fail("LayerNorm", "requires rank >= 1");
  const SymDim& last = a.shape.back();
  if (gain.rank() != 1 || gain.shape[0] != last) {
    return Fail("LayerNorm", "gain " + ShapeToString(gain.shape) +
                                 " does not match normalised dim " +
                                 last.ToString());
  }
  if (bias.rank() != 1 || bias.shape[0] != last) {
    return Fail("LayerNorm", "bias " + ShapeToString(bias.shape) +
                                 " does not match normalised dim " +
                                 last.ToString());
  }
  return a;
}

SymTensor ShapeChecker::Embedding(const SymTensor& table, const SymDim& count) {
  if (!table.valid) return SymTensor::Invalid();
  if (table.rank() != 2) {
    return Fail("Embedding",
                "table must be rank 2, got " + ShapeToString(table.shape));
  }
  return SymTensor{{count, table.shape[1]}, true};
}

SymTensor ShapeChecker::Concat(const SymTensor& a, const SymTensor& b) {
  if (!Usable({&a, &b})) return SymTensor::Invalid();
  if (a.rank() == 1 && b.rank() == 1) {
    return SymTensor{{a.shape[0] + b.shape[0]}, true};
  }
  if (a.rank() == 2 && b.rank() == 2) {
    if (a.shape[0] != b.shape[0]) {
      return Fail("Concat", "row counts " + a.shape[0].ToString() + " vs " +
                                b.shape[0].ToString() +
                                " differ: a=" + ShapeToString(a.shape) +
                                ", b=" + ShapeToString(b.shape));
    }
    return SymTensor{{a.shape[0], a.shape[1] + b.shape[1]}, true};
  }
  return Fail("Concat", "requires two rank-1 or two rank-2 operands, got a=" +
                            ShapeToString(a.shape) +
                            ", b=" + ShapeToString(b.shape));
}

SymTensor ShapeChecker::Transpose(const SymTensor& a) {
  if (!a.valid) return SymTensor::Invalid();
  if (a.rank() != 2) {
    return Fail("Transpose",
                "requires rank 2, got " + ShapeToString(a.shape));
  }
  return SymTensor{{a.shape[1], a.shape[0]}, true};
}

SymTensor ShapeChecker::MeanRows(const SymTensor& a) {
  if (!a.valid) return SymTensor::Invalid();
  if (a.rank() != 2) {
    return Fail("MeanRows", "requires rank 2, got " + ShapeToString(a.shape));
  }
  return SymTensor{{a.shape[1]}, true};
}

SymTensor ShapeChecker::SumRows(const SymTensor& a) {
  if (!a.valid) return SymTensor::Invalid();
  if (a.rank() != 2) {
    return Fail("SumRows", "requires rank 2, got " + ShapeToString(a.shape));
  }
  return SymTensor{{a.shape[1]}, true};
}

SymTensor ShapeChecker::L2NormalizeRows(const SymTensor& a) {
  if (!a.valid) return SymTensor::Invalid();
  if (a.rank() != 1 && a.rank() != 2) {
    return Fail("L2NormalizeRows",
                "requires rank 1 or 2, got " + ShapeToString(a.shape));
  }
  return a;
}

SymTensor ShapeChecker::Dot(const SymTensor& a, const SymTensor& b) {
  if (!Usable({&a, &b})) return SymTensor::Invalid();
  if (a.rank() != 1 || b.rank() != 1 || a.shape[0] != b.shape[0]) {
    return Fail("Dot", "requires two equal-length rank-1 operands, got a=" +
                           ShapeToString(a.shape) +
                           ", b=" + ShapeToString(b.shape));
  }
  return SymTensor{{}, true};  // scalar
}

SymTensor ShapeChecker::TopK(const SymTensor& scores, const SymDim& k) {
  if (!scores.valid) return SymTensor::Invalid();
  if (scores.rank() != 1) {
    return Fail("TopK", "scores must be rank 1, got " +
                            ShapeToString(scores.shape));
  }
  return SymTensor{{k}, true};
}

SymTensor ShapeChecker::Mips(const SymTensor& items, const SymTensor& query,
                             const SymDim& k) {
  if (!Usable({&items, &query})) return SymTensor::Invalid();
  if (items.rank() != 2 || query.rank() != 1) {
    return Fail("Mips", "requires items=[C, d] and query=[d], got items=" +
                            ShapeToString(items.shape) +
                            ", query=" + ShapeToString(query.shape));
  }
  if (items.shape[1] != query.shape[0]) {
    return Fail("Mips", "item width " + items.shape[1].ToString() +
                            " vs query length " + query.shape[0].ToString() +
                            " do not match");
  }
  return SymTensor{{k}, true};
}

SymTensor ShapeChecker::GruCell(const SymTensor& input, const SymTensor& hidden,
                                const SymTensor& w_ih, const SymTensor& w_hh,
                                const SymTensor& b_ih, const SymTensor& b_hh) {
  if (!Usable({&input, &hidden, &w_ih, &w_hh, &b_ih, &b_hh})) {
    return SymTensor::Invalid();
  }
  if (input.rank() != 1 || hidden.rank() != 1) {
    return Fail("GruCell", "input and hidden must be rank 1, got input=" +
                               ShapeToString(input.shape) + ", hidden=" +
                               ShapeToString(hidden.shape));
  }
  const SymDim three_h = hidden.shape[0] * 3;
  if (w_ih.rank() != 2 || w_ih.shape[0] != three_h ||
      w_ih.shape[1] != input.shape[0]) {
    return Fail("GruCell", "w_ih must be [" + three_h.ToString() + ", " +
                               input.shape[0].ToString() + "], got " +
                               ShapeToString(w_ih.shape));
  }
  if (w_hh.rank() != 2 || w_hh.shape[0] != three_h ||
      w_hh.shape[1] != hidden.shape[0]) {
    return Fail("GruCell", "w_hh must be [" + three_h.ToString() + ", " +
                               hidden.shape[0].ToString() + "], got " +
                               ShapeToString(w_hh.shape));
  }
  if (b_ih.rank() != 1 || b_ih.shape[0] != three_h || b_hh.rank() != 1 ||
      b_hh.shape[0] != three_h) {
    return Fail("GruCell", "biases must be [" + three_h.ToString() +
                               "], got b_ih=" + ShapeToString(b_ih.shape) +
                               ", b_hh=" + ShapeToString(b_hh.shape));
  }
  return SymTensor{{hidden.shape[0]}, true};
}

SymTensor ShapeChecker::Attention(const SymTensor& q, const SymTensor& k,
                                  const SymTensor& v) {
  if (!Usable({&q, &k, &v})) return SymTensor::Invalid();
  if (q.rank() != 2 || k.rank() != 2 || v.rank() != 2) {
    return Fail("Attention", "requires rank-2 q, k, v, got q=" +
                                 ShapeToString(q.shape) +
                                 ", k=" + ShapeToString(k.shape) +
                                 ", v=" + ShapeToString(v.shape));
  }
  if (q.shape[1] != k.shape[1]) {
    return Fail("Attention", "query width " + q.shape[1].ToString() +
                                 " vs key width " + k.shape[1].ToString() +
                                 " do not match");
  }
  if (k.shape[0] != v.shape[0]) {
    return Fail("Attention", "key count " + k.shape[0].ToString() +
                                 " vs value count " + v.shape[0].ToString() +
                                 " do not match");
  }
  return SymTensor{{q.shape[0], v.shape[1]}, true};
}

SymTensor ShapeChecker::Row(const SymTensor& a) {
  if (!a.valid) return SymTensor::Invalid();
  if (a.rank() != 2) {
    return Fail("Row", "requires rank 2, got " + ShapeToString(a.shape));
  }
  return SymTensor{{a.shape[1]}, true};
}

namespace {
// Canonical form of a symbolic element count: the product of all concrete
// factors (including symbolic coefficients) plus the sorted multiset of
// symbol names. Dimensions with additive offsets are kept atomic.
struct CanonicalProduct {
  int64_t concrete = 1;
  std::vector<std::string> symbols;

  bool operator==(const CanonicalProduct& other) const {
    return concrete == other.concrete && symbols == other.symbols;
  }
};

CanonicalProduct Canonicalize(const SymShape& shape) {
  CanonicalProduct out;
  for (const SymDim& dim : shape) {
    if (dim.concrete()) {
      out.concrete *= dim.offset();
    } else if (dim.offset() == 0) {
      out.concrete *= dim.coef();
      out.symbols.push_back(dim.symbol());
    } else {
      out.symbols.push_back(dim.ToString());  // atomic: "d+1" etc.
    }
  }
  std::sort(out.symbols.begin(), out.symbols.end());
  return out;
}
}  // namespace

SymTensor ShapeChecker::Reshape(const SymTensor& a, SymShape new_shape) {
  if (!a.valid) return SymTensor::Invalid();
  if (!(Canonicalize(a.shape) == Canonicalize(new_shape))) {
    return Fail("Reshape", "element count of " + ShapeToString(a.shape) +
                               " cannot be proven equal to " +
                               ShapeToString(new_shape));
  }
  return SymTensor{std::move(new_shape), true};
}

SymTensor ShapeChecker::Truncate(const SymTensor& a, int axis,
                                 const SymDim& new_dim) {
  if (!a.valid) return SymTensor::Invalid();
  if (axis < 0 || axis >= a.rank()) {
    return Fail("Truncate", "axis " + std::to_string(axis) +
                                " out of range for " +
                                ShapeToString(a.shape));
  }
  SymTensor out = a;
  out.shape[static_cast<size_t>(axis)] = new_dim;
  return out;
}

SymTensor ShapeChecker::GatedUpdate(const SymTensor& gate_input,
                                    const SymTensor& gate_hidden,
                                    const SymTensor& state) {
  if (!Usable({&gate_input, &gate_hidden, &state})) {
    return SymTensor::Invalid();
  }
  if (state.rank() != 2) {
    return Fail("GatedUpdate",
                "state must be rank 2, got " + ShapeToString(state.shape));
  }
  const SymShape expected_gates = {state.shape[0], state.shape[1] * 3};
  if (gate_input.shape != expected_gates ||
      gate_hidden.shape != expected_gates) {
    return Fail("GatedUpdate",
                "gates must be " + ShapeToString(expected_gates) +
                    " for state " + ShapeToString(state.shape) +
                    ", got gate_input=" + ShapeToString(gate_input.shape) +
                    ", gate_hidden=" + ShapeToString(gate_hidden.shape));
  }
  return state;
}

bool ShapeChecker::Require(const SymTensor& a, const SymShape& expected,
                           const std::string& what) {
  if (!a.valid) return false;  // already reported upstream
  if (a.shape != expected) {
    Fail("Require", what + ": expected " + ShapeToString(expected) +
                        ", got " + ShapeToString(a.shape));
    return false;
  }
  return true;
}

std::string ShapeChecker::Report() const {
  std::ostringstream out;
  for (size_t i = 0; i < violations_.size(); ++i) {
    if (i > 0) out << "\n";
    out << violations_[i].ToString();
  }
  return out.str();
}

}  // namespace etude::tensor

#include "tensor/shape_check.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "tensor/plan_ir.h"

namespace etude::tensor {

SymDim SymDim::Sym(std::string name, int64_t coef, int64_t offset) {
  if (coef == 0) return SymDim(offset);
  return SymDim(coef, std::move(name), offset);
}

SymDim SymDim::operator*(int64_t factor) const {
  if (concrete() || factor == 0) return SymDim(offset_ * factor);
  return SymDim(coef_ * factor, name_, offset_ * factor);
}

SymDim SymDim::operator*(const SymDim& other) const {
  if (concrete()) return other * offset_;
  if (other.concrete()) return *this * other.offset_;
  // Symbolic x symbolic: fold into an opaque compound product symbol.
  // Comparisons against the same compound still work (string equality),
  // and Eval/plan-IR polynomials decompose the compound name recursively.
  return Sym("(" + ToString() + "*" + other.ToString() + ")");
}

SymDim SymDim::operator+(const SymDim& other) const {
  if (concrete()) {
    SymDim out = other;
    out.offset_ += offset_;
    return out;
  }
  if (other.concrete()) {
    SymDim out = *this;
    out.offset_ += other.offset_;
    return out;
  }
  if (name_ == other.name_) {
    return Sym(name_, coef_ + other.coef_, offset_ + other.offset_);
  }
  // Unrelated symbols: fold into an opaque compound symbol. Comparisons
  // against the same compound still work (string equality), and
  // Eval/plan-IR polynomials decompose the compound name recursively.
  return Sym("(" + ToString() + "+" + other.ToString() + ")");
}

std::string SymDim::ToString() const {
  if (concrete()) return std::to_string(offset_);
  std::string out;
  if (coef_ == -1) {
    out = "-" + name_;
  } else if (coef_ == 1) {
    out = name_;
  } else {
    out = std::to_string(coef_) + name_;
  }
  if (offset_ > 0) out += "+" + std::to_string(offset_);
  if (offset_ < 0) out += std::to_string(offset_);
  return out;
}

double SymDim::Eval(const std::map<std::string, double>& bindings) const {
  if (concrete()) return static_cast<double>(offset_);
  return static_cast<double>(coef_) * EvalSymbolName(name_, bindings) +
         static_cast<double>(offset_);
}

namespace sym {
SymDim C() { return SymDim::Sym("C"); }
SymDim d() { return SymDim::Sym("d"); }
SymDim L() { return SymDim::Sym("L"); }
SymDim k() { return SymDim::Sym("k"); }
SymDim n() { return SymDim::Sym("n"); }
SymDim B() { return SymDim::Sym("B"); }
}  // namespace sym

std::string ShapeToString(const SymShape& shape) {
  std::string out = "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out += ", ";
    out += shape[i].ToString();
  }
  return out + "]";
}

std::string ShapeViolation::ToString() const {
  std::string out = op;
  if (!context.empty()) out += " (in " + context + ")";
  return out + ": " + message;
}

namespace {

constexpr double kF32 = 4.0;  // sizeof(float)

CostPoly Np(const SymShape& shape) { return CostPoly::Numel(shape); }
CostPoly Dp(const SymDim& dim) { return CostPoly::FromDim(dim); }

/// TopK/Mips heap cost: log2(max(k, 2)), exactly as tensor/ops.cc
/// computes it. Concrete k folds to a constant; symbolic k becomes the
/// derived symbol "lgk" which bindings must set to log2(max(k, 2)).
CostPoly LogKPoly(const SymDim& k) {
  if (k.concrete()) {
    return CostPoly::Const(
        std::log2(static_cast<double>(std::max<int64_t>(k.offset(), 2))));
  }
  return Dp(SymDim::Sym("lgk"));
}

/// Appends one PlanNode. Traffic defaults to 4 * (inputs read + output
/// written) bytes; ops whose runtime records a different movement figure
/// (Embedding, Concat, Transpose, Row) pass an override.
int Rec(PlanGraph& plan, const char* op, const std::string& label,
        const SymShape& shape, std::initializer_list<const SymTensor*> ins,
        CostPoly flops, CostPoly alloc, CostPoly scratch = CostPoly(),
        const CostPoly* traffic_override = nullptr) {
  PlanNode node;
  node.op = op;
  node.label = label;
  node.shape = shape;
  for (const SymTensor* t : ins) {
    if (t->node >= 0) node.inputs.push_back(t->node);
  }
  if (traffic_override != nullptr) {
    node.traffic_bytes = *traffic_override;
  } else {
    CostPoly io = Np(shape);
    for (const SymTensor* t : ins) io += Np(t->shape);
    node.traffic_bytes = io * kF32;
  }
  node.flops = std::move(flops);
  node.alloc_bytes = std::move(alloc);
  node.scratch_bytes = std::move(scratch);
  return plan.Add(std::move(node));
}

}  // namespace

ShapeChecker::ShapeChecker() : plan_(std::make_unique<PlanGraph>()) {}
ShapeChecker::~ShapeChecker() = default;

SymTensor ShapeChecker::Input(const std::string& name, SymShape shape) {
  PlanNode node;
  node.op = "Input";
  node.label = name;
  node.shape = shape;
  node.persistent = true;
  node.alloc_bytes = Np(shape) * kF32;
  const int id = plan_->Add(std::move(node));
  return SymTensor{std::move(shape), true, id};
}

SymTensor ShapeChecker::Fail(const std::string& op,
                             const std::string& message) {
  violations_.push_back(ShapeViolation{op, context_, message});
  return SymTensor::Invalid();
}

bool ShapeChecker::Usable(std::initializer_list<const SymTensor*> operands) {
  return std::all_of(operands.begin(), operands.end(),
                     [](const SymTensor* t) { return t->valid; });
}

SymTensor ShapeChecker::MatMul(const SymTensor& a, const SymTensor& b) {
  if (!Usable({&a, &b})) return SymTensor::Invalid();
  if (a.rank() != 2 || b.rank() != 2) {
    return Fail("MatMul", "requires rank-2 operands, got a=" +
                              ShapeToString(a.shape) +
                              ", b=" + ShapeToString(b.shape));
  }
  if (a.shape[1] != b.shape[0]) {
    return Fail("MatMul", "inner dims " + a.shape[1].ToString() + " vs " +
                              b.shape[0].ToString() + " do not match: a=" +
                              ShapeToString(a.shape) +
                              ", b=" + ShapeToString(b.shape));
  }
  SymTensor out{{a.shape[0], b.shape[1]}, true};
  const CostPoly flops =
      Dp(a.shape[0]) * Dp(a.shape[1]) * Dp(b.shape[1]) * 2.0;
  out.node = Rec(*plan_, "MatMul", context_, out.shape, {&a, &b}, flops,
                 Np(out.shape) * kF32);
  return out;
}

SymTensor ShapeChecker::MatVec(const SymTensor& a, const SymTensor& x) {
  if (!Usable({&a, &x})) return SymTensor::Invalid();
  if (a.rank() != 2 || x.rank() != 1) {
    return Fail("MatVec", "requires a rank-2 matrix and rank-1 vector, got "
                          "a=" +
                              ShapeToString(a.shape) +
                              ", x=" + ShapeToString(x.shape));
  }
  if (a.shape[1] != x.shape[0]) {
    return Fail("MatVec", "matrix columns " + a.shape[1].ToString() +
                              " vs vector length " + x.shape[0].ToString() +
                              " do not match");
  }
  SymTensor out{{a.shape[0]}, true};
  out.node = Rec(*plan_, "MatVec", context_, out.shape, {&a, &x},
                 Dp(a.shape[0]) * Dp(a.shape[1]) * 2.0, Np(out.shape) * kF32);
  return out;
}

SymTensor ShapeChecker::Linear(const SymTensor& x, const SymTensor& weight,
                               const SymTensor& bias) {
  if (!Usable({&x, &weight, &bias})) return SymTensor::Invalid();
  if (x.rank() != 2 || weight.rank() != 2) {
    return Fail("Linear", "requires rank-2 input and weight, got x=" +
                              ShapeToString(x.shape) +
                              ", W=" + ShapeToString(weight.shape));
  }
  if (x.shape[1] != weight.shape[1]) {
    return Fail("Linear", "input width " + x.shape[1].ToString() +
                              " vs weight in-dim " +
                              weight.shape[1].ToString() +
                              " do not match: x=" + ShapeToString(x.shape) +
                              ", W=" + ShapeToString(weight.shape));
  }
  // An empty bias (rank 0) skips the bias addition, like the runtime op.
  if (bias.rank() != 0) {
    if (bias.rank() != 1 || bias.shape[0] != weight.shape[0]) {
      return Fail("Linear", "bias " + ShapeToString(bias.shape) +
                                " does not match weight out-dim " +
                                weight.shape[0].ToString());
    }
  }
  SymTensor out{{x.shape[0], weight.shape[0]}, true};
  const CostPoly flops =
      Dp(x.shape[0]) * Dp(x.shape[1]) * Dp(weight.shape[0]) * 2.0;
  out.node = Rec(*plan_, "Linear", context_, out.shape, {&x, &weight, &bias},
                 flops, Np(out.shape) * kF32);
  return out;
}

SymTensor ShapeChecker::Elementwise(const std::string& op, const SymTensor& a,
                                    const SymTensor& b) {
  if (!Usable({&a, &b})) return SymTensor::Invalid();
  if (a.shape != b.shape) {
    return Fail(op, "operand shapes " + ShapeToString(a.shape) + " and " +
                        ShapeToString(b.shape) + " differ");
  }
  SymTensor out{a.shape, true};
  out.node = Rec(*plan_, op.c_str(), context_, out.shape, {&a, &b},
                 Np(out.shape), Np(out.shape) * kF32);
  return out;
}

SymTensor ShapeChecker::Add(const SymTensor& a, const SymTensor& b) {
  return Elementwise("Add", a, b);
}
SymTensor ShapeChecker::Sub(const SymTensor& a, const SymTensor& b) {
  return Elementwise("Sub", a, b);
}
SymTensor ShapeChecker::Mul(const SymTensor& a, const SymTensor& b) {
  return Elementwise("Mul", a, b);
}

SymTensor ShapeChecker::AddRowwise(const SymTensor& a, const SymTensor& bias) {
  if (!Usable({&a, &bias})) return SymTensor::Invalid();
  if (a.rank() != 2 || bias.rank() != 1 || a.shape[1] != bias.shape[0]) {
    return Fail("AddRowwise", "requires a=[n, d] and bias=[d], got a=" +
                                  ShapeToString(a.shape) + ", bias=" +
                                  ShapeToString(bias.shape));
  }
  SymTensor out{a.shape, true};
  out.node = Rec(*plan_, "AddRowwise", context_, out.shape, {&a, &bias},
                 Np(out.shape), Np(out.shape) * kF32);
  return out;
}

SymTensor ShapeChecker::Unary(const std::string& op, const SymTensor& a) {
  if (!a.valid) return SymTensor::Invalid();
  if (a.rank() == 0) {
    return Fail(op, "requires a tensor operand, got a scalar");
  }
  // FLOPs per element, mirroring tensor/ops.cc spans exactly.
  double per_element = 1.0;  // Scale, Relu
  if (op == "Sigmoid" || op == "Tanh") per_element = 4.0;
  if (op == "Gelu") per_element = 8.0;
  if (op == "Softmax") per_element = 3.0;
  SymTensor out{a.shape, true};
  out.node = Rec(*plan_, op.c_str(), context_, out.shape, {&a},
                 Np(out.shape) * per_element, Np(out.shape) * kF32);
  return out;
}

SymTensor ShapeChecker::Scale(const SymTensor& a) { return Unary("Scale", a); }
SymTensor ShapeChecker::Sigmoid(const SymTensor& a) {
  return Unary("Sigmoid", a);
}
SymTensor ShapeChecker::Tanh(const SymTensor& a) { return Unary("Tanh", a); }
SymTensor ShapeChecker::Relu(const SymTensor& a) { return Unary("Relu", a); }
SymTensor ShapeChecker::Gelu(const SymTensor& a) { return Unary("Gelu", a); }
SymTensor ShapeChecker::Softmax(const SymTensor& a) {
  return Unary("Softmax", a);
}

SymTensor ShapeChecker::LayerNorm(const SymTensor& a, const SymTensor& gain,
                                  const SymTensor& bias) {
  if (!Usable({&a, &gain, &bias})) return SymTensor::Invalid();
  if (a.rank() < 1) return Fail("LayerNorm", "requires rank >= 1");
  const SymDim& last = a.shape.back();
  if (gain.rank() != 1 || gain.shape[0] != last) {
    return Fail("LayerNorm", "gain " + ShapeToString(gain.shape) +
                                 " does not match normalised dim " +
                                 last.ToString());
  }
  if (bias.rank() != 1 || bias.shape[0] != last) {
    return Fail("LayerNorm", "bias " + ShapeToString(bias.shape) +
                                 " does not match normalised dim " +
                                 last.ToString());
  }
  SymTensor out{a.shape, true};
  out.node = Rec(*plan_, "LayerNorm", context_, out.shape, {&a, &gain, &bias},
                 Np(out.shape) * 6.0, Np(out.shape) * kF32);
  return out;
}

SymTensor ShapeChecker::AddLayerNorm(const SymTensor& a, const SymTensor& b,
                                     const SymTensor& gain,
                                     const SymTensor& bias) {
  if (!Usable({&a, &b, &gain, &bias})) return SymTensor::Invalid();
  if (a.shape != b.shape) {
    return Fail("AddLayerNorm", "operand shapes " + ShapeToString(a.shape) +
                                    " and " + ShapeToString(b.shape) +
                                    " differ");
  }
  if (a.rank() < 1) return Fail("AddLayerNorm", "requires rank >= 1");
  const SymDim& last = a.shape.back();
  if (gain.rank() != 1 || gain.shape[0] != last) {
    return Fail("AddLayerNorm", "gain " + ShapeToString(gain.shape) +
                                    " does not match normalised dim " +
                                    last.ToString());
  }
  if (bias.rank() != 1 || bias.shape[0] != last) {
    return Fail("AddLayerNorm", "bias " + ShapeToString(bias.shape) +
                                    " does not match normalised dim " +
                                    last.ToString());
  }
  // 1 (add) + 6 (layer norm) FLOPs per element: the unfused pair's total,
  // so fusing never changes a model's FLOP polynomial.
  SymTensor out{a.shape, true};
  out.node = Rec(*plan_, "AddLayerNorm", context_, out.shape,
                 {&a, &b, &gain, &bias}, Np(out.shape) * 7.0,
                 Np(out.shape) * kF32);
  return out;
}

SymTensor ShapeChecker::AddSigmoid(const SymTensor& a, const SymTensor& b) {
  if (!Usable({&a, &b})) return SymTensor::Invalid();
  if (a.shape != b.shape) {
    return Fail("AddSigmoid", "operand shapes " + ShapeToString(a.shape) +
                                  " and " + ShapeToString(b.shape) +
                                  " differ");
  }
  // 1 (add) + 4 (sigmoid) FLOPs per element.
  SymTensor out{a.shape, true};
  out.node = Rec(*plan_, "AddSigmoid", context_, out.shape, {&a, &b},
                 Np(out.shape) * 5.0, Np(out.shape) * kF32);
  return out;
}

SymTensor ShapeChecker::Embedding(const SymTensor& table, const SymDim& count) {
  if (!table.valid) return SymTensor::Invalid();
  if (table.rank() != 2) {
    return Fail("Embedding",
                "table must be rank 2, got " + ShapeToString(table.shape));
  }
  SymTensor out{{count, table.shape[1]}, true};
  // Pure data movement: `count` rows read from the table + written out.
  // The full table is deliberately not charged — a gather touches L rows,
  // not C.
  const CostPoly traffic = Np(out.shape) * (2.0 * kF32);
  out.node = Rec(*plan_, "Embedding", context_, out.shape, {&table},
                 CostPoly(), Np(out.shape) * kF32, CostPoly(), &traffic);
  return out;
}

SymTensor ShapeChecker::Concat(const SymTensor& a, const SymTensor& b) {
  if (!Usable({&a, &b})) return SymTensor::Invalid();
  SymTensor out;
  if (a.rank() == 1 && b.rank() == 1) {
    out = SymTensor{{a.shape[0] + b.shape[0]}, true};
  } else if (a.rank() == 2 && b.rank() == 2) {
    if (a.shape[0] != b.shape[0]) {
      return Fail("Concat", "row counts " + a.shape[0].ToString() + " vs " +
                                b.shape[0].ToString() +
                                " differ: a=" + ShapeToString(a.shape) +
                                ", b=" + ShapeToString(b.shape));
    }
    out = SymTensor{{a.shape[0], a.shape[1] + b.shape[1]}, true};
  } else {
    return Fail("Concat",
                "requires two rank-1 or two rank-2 operands, got a=" +
                    ShapeToString(a.shape) + ", b=" + ShapeToString(b.shape));
  }
  const CostPoly traffic = (Np(a.shape) + Np(b.shape)) * (2.0 * kF32);
  out.node = Rec(*plan_, "Concat", context_, out.shape, {&a, &b}, CostPoly(),
                 Np(out.shape) * kF32, CostPoly(), &traffic);
  return out;
}

SymTensor ShapeChecker::Transpose(const SymTensor& a) {
  if (!a.valid) return SymTensor::Invalid();
  if (a.rank() != 2) {
    return Fail("Transpose",
                "requires rank 2, got " + ShapeToString(a.shape));
  }
  SymTensor out{{a.shape[1], a.shape[0]}, true};
  const CostPoly traffic = Np(a.shape) * (2.0 * kF32);
  out.node = Rec(*plan_, "Transpose", context_, out.shape, {&a}, CostPoly(),
                 Np(out.shape) * kF32, CostPoly(), &traffic);
  return out;
}

SymTensor ShapeChecker::MeanRows(const SymTensor& a) {
  if (!a.valid) return SymTensor::Invalid();
  if (a.rank() != 2) {
    return Fail("MeanRows", "requires rank 2, got " + ShapeToString(a.shape));
  }
  SymTensor out{{a.shape[1]}, true};
  out.node = Rec(*plan_, "MeanRows", context_, out.shape, {&a},
                 Np(a.shape) + Dp(a.shape[1]), Np(out.shape) * kF32);
  return out;
}

SymTensor ShapeChecker::SumRows(const SymTensor& a) {
  if (!a.valid) return SymTensor::Invalid();
  if (a.rank() != 2) {
    return Fail("SumRows", "requires rank 2, got " + ShapeToString(a.shape));
  }
  SymTensor out{{a.shape[1]}, true};
  out.node = Rec(*plan_, "SumRows", context_, out.shape, {&a}, Np(a.shape),
                 Np(out.shape) * kF32);
  return out;
}

SymTensor ShapeChecker::L2NormalizeRows(const SymTensor& a) {
  if (!a.valid) return SymTensor::Invalid();
  if (a.rank() != 1 && a.rank() != 2) {
    return Fail("L2NormalizeRows",
                "requires rank 1 or 2, got " + ShapeToString(a.shape));
  }
  SymTensor out{a.shape, true};
  out.node = Rec(*plan_, "L2NormalizeRows", context_, out.shape, {&a},
                 Np(out.shape) * 3.0, Np(out.shape) * kF32);
  return out;
}

SymTensor ShapeChecker::Dot(const SymTensor& a, const SymTensor& b) {
  if (!Usable({&a, &b})) return SymTensor::Invalid();
  if (a.rank() != 1 || b.rank() != 1 || a.shape[0] != b.shape[0]) {
    return Fail("Dot", "requires two equal-length rank-1 operands, got a=" +
                           ShapeToString(a.shape) +
                           ", b=" + ShapeToString(b.shape));
  }
  SymTensor out{{}, true};  // scalar: a float, no tensor buffer
  out.node = Rec(*plan_, "Dot", context_, out.shape, {&a, &b},
                 Dp(a.shape[0]) * 2.0, CostPoly());
  return out;
}

SymTensor ShapeChecker::TopK(const SymTensor& scores, const SymDim& k) {
  if (!scores.valid) return SymTensor::Invalid();
  if (scores.rank() != 1) {
    return Fail("TopK", "scores must be rank 1, got " +
                            ShapeToString(scores.shape));
  }
  // Result indices/scores are std::vectors, not tensors: no tracked alloc.
  SymTensor out{{k}, true};
  out.node = Rec(*plan_, "TopK", context_, out.shape, {&scores},
                 Np(scores.shape) * LogKPoly(k), CostPoly());
  return out;
}

SymTensor ShapeChecker::Mips(const SymTensor& items, const SymTensor& query,
                             const SymDim& k) {
  if (!Usable({&items, &query})) return SymTensor::Invalid();
  if (items.rank() != 2 || query.rank() != 1) {
    return Fail("Mips", "requires items=[C, d] and query=[d], got items=" +
                            ShapeToString(items.shape) +
                            ", query=" + ShapeToString(query.shape));
  }
  if (items.shape[1] != query.shape[0]) {
    return Fail("Mips", "item width " + items.shape[1].ToString() +
                            " vs query length " + query.shape[0].ToString() +
                            " do not match");
  }
  // Fused streaming scan: per-worker bounded heaps, never a [C] tensor.
  SymTensor out{{k}, true};
  const CostPoly flops =
      Dp(items.shape[0]) * Dp(items.shape[1]) * 2.0 +
      Dp(items.shape[0]) * LogKPoly(k);
  out.node = Rec(*plan_, "Mips", context_, out.shape, {&items, &query}, flops,
                 CostPoly());
  return out;
}

SymTensor ShapeChecker::GruCell(const SymTensor& input, const SymTensor& hidden,
                                const SymTensor& w_ih, const SymTensor& w_hh,
                                const SymTensor& b_ih, const SymTensor& b_hh) {
  if (!Usable({&input, &hidden, &w_ih, &w_hh, &b_ih, &b_hh})) {
    return SymTensor::Invalid();
  }
  if (input.rank() != 1 || hidden.rank() != 1) {
    return Fail("GruCell", "input and hidden must be rank 1, got input=" +
                               ShapeToString(input.shape) + ", hidden=" +
                               ShapeToString(hidden.shape));
  }
  const SymDim three_h = hidden.shape[0] * 3;
  if (w_ih.rank() != 2 || w_ih.shape[0] != three_h ||
      w_ih.shape[1] != input.shape[0]) {
    return Fail("GruCell", "w_ih must be [" + three_h.ToString() + ", " +
                               input.shape[0].ToString() + "], got " +
                               ShapeToString(w_ih.shape));
  }
  if (w_hh.rank() != 2 || w_hh.shape[0] != three_h ||
      w_hh.shape[1] != hidden.shape[0]) {
    return Fail("GruCell", "w_hh must be [" + three_h.ToString() + ", " +
                               hidden.shape[0].ToString() + "], got " +
                               ShapeToString(w_hh.shape));
  }
  if (b_ih.rank() != 1 || b_ih.shape[0] != three_h || b_hh.rank() != 1 ||
      b_hh.shape[0] != three_h) {
    return Fail("GruCell", "biases must be [" + three_h.ToString() +
                               "], got b_ih=" + ShapeToString(b_ih.shape) +
                               ", b_hh=" + ShapeToString(b_hh.shape));
  }
  SymTensor out{{hidden.shape[0]}, true};
  const CostPoly h = Dp(hidden.shape[0]);
  const CostPoly flops =
      h * (Dp(input.shape[0]) + Dp(hidden.shape[0])) * 6.0 + h * 12.0;
  // Internals: two gate vectors [3h] each plus MatVec/Add temporaries —
  // conservatively 12h floats of concurrent transient storage.
  out.node = Rec(*plan_, "GruCell", context_, out.shape,
                 {&input, &hidden, &w_ih, &w_hh, &b_ih, &b_hh}, flops,
                 Np(out.shape) * kF32, h * (12.0 * kF32));
  return out;
}

SymTensor ShapeChecker::Attention(const SymTensor& q, const SymTensor& k,
                                  const SymTensor& v) {
  if (!Usable({&q, &k, &v})) return SymTensor::Invalid();
  if (q.rank() != 2 || k.rank() != 2 || v.rank() != 2) {
    return Fail("Attention", "requires rank-2 q, k, v, got q=" +
                                 ShapeToString(q.shape) +
                                 ", k=" + ShapeToString(k.shape) +
                                 ", v=" + ShapeToString(v.shape));
  }
  if (q.shape[1] != k.shape[1]) {
    return Fail("Attention", "query width " + q.shape[1].ToString() +
                                 " vs key width " + k.shape[1].ToString() +
                                 " do not match");
  }
  if (k.shape[0] != v.shape[0]) {
    return Fail("Attention", "key count " + k.shape[0].ToString() +
                                 " vs value count " + v.shape[0].ToString() +
                                 " do not match");
  }
  SymTensor out{{q.shape[0], v.shape[1]}, true};
  const CostPoly nm = Dp(q.shape[0]) * Dp(k.shape[0]);
  const CostPoly flops = nm * Dp(q.shape[1]) * 4.0 + nm * 3.0;
  // Internals: Transpose(k) [m,dk] + logits/weights [n,m] (x2 concurrent
  // at the Scale step) — (m*dk + 3*n*m) floats of transient storage.
  const CostPoly scratch =
      (Dp(k.shape[0]) * Dp(k.shape[1]) + nm * 3.0) * kF32;
  out.node = Rec(*plan_, "ScaledDotProductAttention", context_, out.shape,
                 {&q, &k, &v}, flops, Np(out.shape) * kF32, scratch);
  return out;
}

SymTensor ShapeChecker::Row(const SymTensor& a) {
  if (!a.valid) return SymTensor::Invalid();
  if (a.rank() != 2) {
    return Fail("Row", "requires rank 2, got " + ShapeToString(a.shape));
  }
  // Tensor::Row copies one row into a fresh [width] buffer; no op span.
  SymTensor out{{a.shape[1]}, true};
  const CostPoly traffic = Np(out.shape) * (2.0 * kF32);
  out.node = Rec(*plan_, "Row", context_, out.shape, {&a}, CostPoly(),
                 Np(out.shape) * kF32, CostPoly(), &traffic);
  return out;
}

namespace {
// Canonical form of a symbolic element count: the product of all concrete
// factors (including symbolic coefficients) plus the sorted multiset of
// symbol names. Dimensions with additive offsets are kept atomic.
struct CanonicalProduct {
  int64_t concrete = 1;
  std::vector<std::string> symbols;

  bool operator==(const CanonicalProduct& other) const {
    return concrete == other.concrete && symbols == other.symbols;
  }
};

CanonicalProduct Canonicalize(const SymShape& shape) {
  CanonicalProduct out;
  for (const SymDim& dim : shape) {
    if (dim.concrete()) {
      out.concrete *= dim.offset();
    } else if (dim.offset() == 0) {
      out.concrete *= dim.coef();
      out.symbols.push_back(dim.symbol());
    } else {
      out.symbols.push_back(dim.ToString());  // atomic: "d+1" etc.
    }
  }
  std::sort(out.symbols.begin(), out.symbols.end());
  return out;
}
}  // namespace

SymTensor ShapeChecker::Reshape(const SymTensor& a, SymShape new_shape) {
  if (!a.valid) return SymTensor::Invalid();
  if (!(Canonicalize(a.shape) == Canonicalize(new_shape))) {
    return Fail("Reshape", "element count of " + ShapeToString(a.shape) +
                               " cannot be proven equal to " +
                               ShapeToString(new_shape));
  }
  // Tensor::Reshaped copies the backing buffer; no op span.
  SymTensor out{std::move(new_shape), true};
  out.node = Rec(*plan_, "Reshape", context_, out.shape, {&a}, CostPoly(),
                 Np(out.shape) * kF32);
  return out;
}

SymTensor ShapeChecker::Truncate(const SymTensor& a, int axis,
                                 const SymDim& new_dim) {
  if (!a.valid) return SymTensor::Invalid();
  if (axis < 0 || axis >= a.rank()) {
    return Fail("Truncate", "axis " + std::to_string(axis) +
                                " out of range for " +
                                ShapeToString(a.shape));
  }
  SymTensor out = a;
  out.shape[static_cast<size_t>(axis)] = new_dim;
  // Purely symbolic extent adjustment: no runtime op, no allocation.
  const CostPoly traffic;
  out.node = Rec(*plan_, "Truncate", context_, out.shape, {&a}, CostPoly(),
                 CostPoly(), CostPoly(), &traffic);
  return out;
}

SymTensor ShapeChecker::GatedUpdate(const SymTensor& gate_input,
                                    const SymTensor& gate_hidden,
                                    const SymTensor& state) {
  if (!Usable({&gate_input, &gate_hidden, &state})) {
    return SymTensor::Invalid();
  }
  if (state.rank() != 2) {
    return Fail("GatedUpdate",
                "state must be rank 2, got " + ShapeToString(state.shape));
  }
  const SymShape expected_gates = {state.shape[0], state.shape[1] * 3};
  if (gate_input.shape != expected_gates ||
      gate_hidden.shape != expected_gates) {
    return Fail("GatedUpdate",
                "gates must be " + ShapeToString(expected_gates) +
                    " for state " + ShapeToString(state.shape) +
                    ", got gate_input=" + ShapeToString(gate_input.shape) +
                    ", gate_hidden=" + ShapeToString(gate_hidden.shape));
  }
  // The SR-GNN node update is a manual element loop: allocates the next
  // state tensor but dispatches no tensor op (zero recorded FLOPs).
  SymTensor out{state.shape, true};
  out.node = Rec(*plan_, "GatedUpdate", context_, out.shape,
                 {&gate_input, &gate_hidden, &state}, CostPoly(),
                 Np(out.shape) * kF32);
  return out;
}

SymTensor ShapeChecker::Materialize(const std::string& label, SymShape shape,
                                    std::initializer_list<const SymTensor*>
                                        deps) {
  SymTensor out{std::move(shape), true};
  for (const SymTensor* t : deps) {
    if (!t->valid) return SymTensor::Invalid();
  }
  out.node = Rec(*plan_, "Materialize", label.empty() ? context_ : label,
                 out.shape, deps, CostPoly(), Np(out.shape) * kF32);
  return out;
}

void ShapeChecker::Link(const SymTensor& consumer, const SymTensor& producer) {
  plan_->Link(consumer.node, producer.node);
}

void ShapeChecker::MarkOutput(const SymTensor& a) {
  plan_->MarkOutput(a.node);
}

void ShapeChecker::BeginRepeat(const SymDim& times) {
  plan_->BeginRepeat(CostPoly::FromDim(times));
}

void ShapeChecker::EndRepeat() { plan_->EndRepeat(); }

void ShapeChecker::BeginBatch(const SymDim& batch) {
  plan_->BeginRepeat(CostPoly::FromDim(batch), /*is_batch=*/true);
}

void ShapeChecker::EndBatch() { plan_->EndRepeat(); }

void ShapeChecker::PushScope() { plan_->PushScope(); }

void ShapeChecker::PopScope() { plan_->PopScope(); }

void ShapeChecker::BeginEncodePhase() {
  plan_->SetPhase(PlanPhase::kEncode);
}

void ShapeChecker::BeginScorePhase() { plan_->SetPhase(PlanPhase::kScore); }

bool ShapeChecker::Require(const SymTensor& a, const SymShape& expected,
                           const std::string& what) {
  if (!a.valid) return false;  // already reported upstream
  if (a.shape != expected) {
    Fail("Require", what + ": expected " + ShapeToString(expected) +
                        ", got " + ShapeToString(a.shape));
    return false;
  }
  return true;
}

std::string ShapeChecker::Report() const {
  std::ostringstream out;
  for (size_t i = 0; i < violations_.size(); ++i) {
    if (i > 0) out << "\n";
    out << violations_[i].ToString();
  }
  return out.str();
}

}  // namespace etude::tensor

#include "tensor/quantized.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/parallel.h"
#include "obs/op_hook.h"
#include "tensor/kernels.h"

namespace etude::tensor {

namespace {

/// Matches the fused fp32 Mips threshold: ranges smaller than this are
/// not worth a second heap + merge.
constexpr int64_t kMipsMinRowsPerRange = 4096;

/// Quantises one fp32 row into `stride` bytes at `out` (padding zeroed)
/// and returns the scale. Clamped to [-127, 127]: symmetric quantisation
/// never emits -128, which the AVX2 sign-trick kernel cannot negate.
float QuantizeRow(const float* row, int64_t d, int64_t stride, int8_t* out) {
  float max_abs = 0.0f;
  for (int64_t j = 0; j < d; ++j) {
    max_abs = std::max(max_abs, std::abs(row[j]));
  }
  // All-zero rows keep scale 1 so dequantise/rescale never divides by
  // zero or turns a zero dot product into NaN.
  const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  for (int64_t j = 0; j < d; ++j) {
    const long v = std::lround(row[j] / scale);
    out[j] = static_cast<int8_t>(std::clamp<long>(v, -127, 127));
  }
  std::fill(out + d, out + stride, static_cast<int8_t>(0));
  return scale;
}

}  // namespace

float QuantizeQueryInt8(const float* query, int64_t d,
                        std::vector<int8_t>& out) {
  out.resize(static_cast<size_t>(kernels::QuantizedRowStride(d)));
  return QuantizeRow(query, d, kernels::QuantizedRowStride(d), out.data());
}

QuantizedMatrix QuantizedMatrix::FromRows(const float* rows, int64_t count,
                                          int64_t d) {
  ETUDE_CHECK(count >= 0 && d > 0) << "quantisation shape error";
  QuantizedMatrix q;
  q.rows_ = count;
  q.cols_ = d;
  q.stride_ = kernels::QuantizedRowStride(d);
  q.data_.resize(static_cast<size_t>(count * q.stride_));
  q.scales_.resize(static_cast<size_t>(count));
  for (int64_t r = 0; r < count; ++r) {
    q.scales_[static_cast<size_t>(r)] =
        QuantizeRow(rows + r * d, d, q.stride_, q.data_.data() + r * q.stride_);
  }
  return q;
}

QuantizedMatrix QuantizedMatrix::FromTensor(const Tensor& matrix) {
  ETUDE_CHECK(matrix.rank() == 2) << "quantisation requires rank 2";
  return FromRows(matrix.data(), matrix.dim(0), matrix.dim(1));
}

Tensor QuantizedMatrix::DequantizeRow(int64_t r) const {
  ETUDE_CHECK(r >= 0 && r < rows_) << "row out of range";
  Tensor out({cols_});
  const float scale = scales_[static_cast<size_t>(r)];
  const int8_t* row = data_.data() + r * stride_;
  for (int64_t j = 0; j < cols_; ++j) {
    out[j] = static_cast<float>(row[j]) * scale;
  }
  return out;
}

TopKResult QuantizedMatrix::Mips(const Tensor& query, int64_t k) const {
  ETUDE_CHECK(query.rank() == 1 && query.dim(0) == cols_)
      << "query width mismatch";
  ETUDE_CHECK(k > 0) << "Mips requires k > 0";
  k = std::min(k, rows_);
  if (k == 0) return TopKResult{};
  ETUDE_OP_SPAN("QuantizedMips",
                2.0 * static_cast<double>(rows_) * static_cast<double>(cols_));
  // Quantise the query once (symmetric, its own scale, kernel-safe clamp).
  std::vector<int8_t> q;
  const float query_scale = QuantizeQueryInt8(query.data(), cols_, q);
  // Same fused range-parallel structure as the fp32 Mips: one contiguous
  // range per worker, per-range bounded heaps, deterministic merge.
  const int64_t c = rows_;
  int64_t num_ranges = 1;
  if (NumThreads() > 1 && !InParallelRegion() &&
      c >= 2 * kMipsMinRowsPerRange) {
    num_ranges = std::min<int64_t>(NumThreads(), c / kMipsMinRowsPerRange);
  }
  const int8_t* items = data_.data();
  const int64_t stride = stride_;
  const int64_t d = cols_;
  const float* scales = scales_.data();
  const int8_t* qd = q.data();
  std::vector<std::vector<kernels::ScoredIndex>> heaps(
      static_cast<size_t>(num_ranges));
  ParallelFor(0, num_ranges, 1,
              [items, stride, scales, qd, query_scale, d, c, k, num_ranges,
               &heaps](int64_t lo, int64_t hi) {
                for (int64_t r = lo; r < hi; ++r) {
                  const int64_t begin = c * r / num_ranges;
                  const int64_t end = c * (r + 1) / num_ranges;
                  auto& heap = heaps[static_cast<size_t>(r)];
                  heap.reserve(static_cast<size_t>(k));
                  kernels::QuantizedMipsScanKernel(items, stride, scales, qd,
                                                   query_scale, d, begin, end,
                                                   k, heap);
                }
              });
  std::vector<kernels::ScoredIndex> candidates = std::move(heaps[0]);
  for (size_t r = 1; r < heaps.size(); ++r) {
    candidates.insert(candidates.end(), heaps[r].begin(), heaps[r].end());
  }
  return FinishTopK(candidates, k);
}

double RecallAtK(const TopKResult& exact, const TopKResult& approximate) {
  if (exact.indices.empty()) return 1.0;
  const std::set<int64_t> truth(exact.indices.begin(), exact.indices.end());
  int64_t hits = 0;
  for (const int64_t item : approximate.indices) {
    if (truth.count(item) > 0) ++hits;
  }
  return static_cast<double>(hits) /
         static_cast<double>(exact.indices.size());
}

}  // namespace etude::tensor

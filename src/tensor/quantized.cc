#include "tensor/quantized.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace etude::tensor {

QuantizedMatrix QuantizedMatrix::FromTensor(const Tensor& matrix) {
  ETUDE_CHECK(matrix.rank() == 2) << "quantisation requires rank 2";
  QuantizedMatrix q;
  q.rows_ = matrix.dim(0);
  q.cols_ = matrix.dim(1);
  q.data_.resize(static_cast<size_t>(q.rows_ * q.cols_));
  q.scales_.resize(static_cast<size_t>(q.rows_));
  for (int64_t r = 0; r < q.rows_; ++r) {
    const float* row = matrix.data() + r * q.cols_;
    float max_abs = 0.0f;
    for (int64_t j = 0; j < q.cols_; ++j) {
      max_abs = std::max(max_abs, std::abs(row[j]));
    }
    const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    q.scales_[static_cast<size_t>(r)] = scale;
    int8_t* out = q.data_.data() + r * q.cols_;
    for (int64_t j = 0; j < q.cols_; ++j) {
      out[j] = static_cast<int8_t>(std::lround(row[j] / scale));
    }
  }
  return q;
}

Tensor QuantizedMatrix::DequantizeRow(int64_t r) const {
  ETUDE_CHECK(r >= 0 && r < rows_) << "row out of range";
  Tensor out({cols_});
  const float scale = scales_[static_cast<size_t>(r)];
  const int8_t* row = data_.data() + r * cols_;
  for (int64_t j = 0; j < cols_; ++j) {
    out[j] = static_cast<float>(row[j]) * scale;
  }
  return out;
}

TopKResult QuantizedMatrix::Mips(const Tensor& query, int64_t k) const {
  ETUDE_CHECK(query.rank() == 1 && query.dim(0) == cols_)
      << "query width mismatch";
  // Quantise the query once (symmetric, its own scale).
  float max_abs = 0.0f;
  for (int64_t j = 0; j < cols_; ++j) {
    max_abs = std::max(max_abs, std::abs(query[j]));
  }
  const float query_scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  std::vector<int8_t> q(static_cast<size_t>(cols_));
  for (int64_t j = 0; j < cols_; ++j) {
    q[static_cast<size_t>(j)] =
        static_cast<int8_t>(std::lround(query[j] / query_scale));
  }
  // Integer scan with per-row rescale.
  Tensor scores({rows_});
  for (int64_t r = 0; r < rows_; ++r) {
    const int8_t* row = data_.data() + r * cols_;
    int32_t acc = 0;
    for (int64_t j = 0; j < cols_; ++j) {
      acc += static_cast<int32_t>(row[j]) *
             static_cast<int32_t>(q[static_cast<size_t>(j)]);
    }
    scores[r] = static_cast<float>(acc) *
                scales_[static_cast<size_t>(r)] * query_scale;
  }
  return TopK(scores, k);
}

double RecallAtK(const TopKResult& exact, const TopKResult& approximate) {
  if (exact.indices.empty()) return 1.0;
  const std::set<int64_t> truth(exact.indices.begin(), exact.indices.end());
  int64_t hits = 0;
  for (const int64_t item : approximate.indices) {
    if (truth.count(item) > 0) ++hits;
  }
  return static_cast<double>(hits) /
         static_cast<double>(exact.indices.size());
}

}  // namespace etude::tensor

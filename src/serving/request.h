#ifndef ETUDE_SERVING_REQUEST_H_
#define ETUDE_SERVING_REQUEST_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace etude::serving {

/// A recommendation request: the visitor's session so far. In the real
/// deployment this is the JSON body of a POST to the inference server; in
/// the simulator it carries the fields that determine cost and ordering.
struct InferenceRequest {
  int64_t request_id = 0;
  int64_t session_id = 0;
  std::vector<int64_t> session_items;  // clicks so far, oldest first
  // Cross-hop trace correlation (the simulated "x-trace-id" header): set
  // by the load generator so the same id tags its client-side span and
  // every server-side span of this request. Empty = the server mints one.
  std::string trace_id;
};

/// The server's answer, including the inference-duration metric the ETUDE
/// server reports via HTTP response headers (Sec. II, "Benchmark
/// execution").
struct InferenceResponse {
  int64_t request_id = 0;
  bool ok = false;
  int http_status = 0;          // 200, 503 (queue overflow), 500 (timeout)
  int64_t inference_us = 0;     // server-side inference duration
  int64_t server_time_us = 0;   // total time spent inside the server
  std::vector<int64_t> recommended_items;  // filled in functional mode
};

/// Delivery callback for asynchronous responses (simulated non-blocking
/// IO): invoked exactly once per accepted request.
using ResponseCallback = std::function<void(const InferenceResponse&)>;

/// Interface of a simulated inference service; implemented by the ETUDE
/// server, the TorchServe baseline, and the cluster load balancer.
class InferenceService {
 public:
  virtual ~InferenceService() = default;

  /// Accepts a request; the callback fires (in simulated time) when the
  /// response is ready. Must never drop a request silently — overloads
  /// produce error responses.
  virtual void HandleRequest(const InferenceRequest& request,
                             ResponseCallback callback) = 0;
};

}  // namespace etude::serving

#endif  // ETUDE_SERVING_REQUEST_H_

#ifndef ETUDE_SERVING_TORCHSERVE_SIM_H_
#define ETUDE_SERVING_TORCHSERVE_SIM_H_

#include <cstdint>
#include <deque>
#include <memory>

#include "common/rng.h"
#include "models/session_model.h"
#include "serving/request.h"
#include "sim/device.h"
#include "sim/simulation.h"

namespace etude::serving {

/// Configuration of the TorchServe baseline. The defaults model the
/// architecture the paper attributes TorchServe's overhead to: a Java
/// frontend orchestrating a fixed pool of Python worker processes, with
/// inter-process handoff per request and a 100 ms internal timeout.
struct TorchServeConfig {
  sim::DeviceSpec device = sim::DeviceSpec::CpuSmall();
  models::ExecutionMode mode = models::ExecutionMode::kEager;
  // Java frontend request handling (routing, protocol translation).
  double frontend_overhead_us = 400.0;
  // Inter-process handoff: request and response each cross the
  // frontend <-> Python-worker boundary once.
  double ipc_overhead_us = 1500.0;
  // Python handler overhead per request (deserialisation, GIL, handler
  // dispatch) — paid even by a handler that returns an empty response.
  double python_overhead_us = 4000.0;
  // TorchServe's internal job timeout: requests that waited longer in the
  // frontend queue are answered with HTTP 500.
  int64_t internal_timeout_us = 100000;
  int64_t max_queue_depth = 16384;
  double jitter_sigma = 0.15;
  // When null_model is true the Python handler performs no inference at
  // all (the paper's Fig. 2 "empty request" infrastructure test).
  bool null_model = true;
  uint64_t seed = 11;
};

/// Queueing simulation of TorchServe serving a PyTorch model.
///
/// One Python worker process runs per vCPU; each processes one request at
/// a time. Requests wait in the frontend queue; on dequeue, requests whose
/// wait already exceeds the internal timeout fail with HTTP 500 (cheaply),
/// everything else pays frontend + 2x IPC + Python overhead (+ model
/// inference unless null_model).
class TorchServeSimServer : public InferenceService {
 public:
  /// `model` may be null when config.null_model is true.
  TorchServeSimServer(sim::Simulation* sim,
                      const models::SessionModel* model,
                      const TorchServeConfig& config);

  void HandleRequest(const InferenceRequest& request,
                     ResponseCallback callback) override;

  int64_t pending() const { return pending_; }
  int64_t timeouts() const { return timeouts_; }

 private:
  struct PendingRequest {
    InferenceRequest request;
    ResponseCallback callback;
    int64_t enqueued_at_us;
  };

  void StartWorkersIfIdle();
  void RunWorker();
  double JitteredUs(double base_us);

  sim::Simulation* sim_;
  const models::SessionModel* model_;
  TorchServeConfig config_;
  Rng rng_;

  std::deque<PendingRequest> queue_;
  int active_workers_ = 0;
  int64_t pending_ = 0;
  int64_t timeouts_ = 0;
};

}  // namespace etude::serving

#endif  // ETUDE_SERVING_TORCHSERVE_SIM_H_

#ifndef ETUDE_SERVING_STATIC_SERVER_H_
#define ETUDE_SERVING_STATIC_SERVER_H_

#include <cstdint>

#include "common/rng.h"
#include "serving/request.h"
#include "sim/simulation.h"

namespace etude::serving {

/// The ETUDE/Actix server answering requests with static content and no
/// model inference — the counterpart of the TorchServe null-model setup in
/// the paper's Figure 2 infrastructure test. Actix's non-blocking IO means
/// there is no worker pool to saturate for static answers; every request
/// pays only the (sub-millisecond) framework overhead.
class StaticResponseServer : public InferenceService {
 public:
  StaticResponseServer(sim::Simulation* sim, double service_us = 150.0,
                       double jitter_sigma = 0.25, uint64_t seed = 13);

  void HandleRequest(const InferenceRequest& request,
                     ResponseCallback callback) override;

  int64_t served() const { return served_; }

 private:
  sim::Simulation* sim_;
  double service_us_;
  double jitter_sigma_;
  Rng rng_;
  int64_t served_ = 0;
};

}  // namespace etude::serving

#endif  // ETUDE_SERVING_STATIC_SERVER_H_

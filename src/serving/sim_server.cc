#include "serving/sim_server.h"

#include <cmath>
#include <utility>

#include "obs/trace.h"

namespace etude::serving {

SimInferenceServer::SimInferenceServer(sim::Simulation* sim,
                                       const models::SessionModel* model,
                                       const SimServerConfig& config)
    : sim_(sim), model_(model), config_(config), rng_(config.seed) {
  ETUDE_CHECK(sim_ != nullptr) << "simulation required";
  ETUDE_CHECK(model_ != nullptr) << "model required";
  ETUDE_CHECK(config_.device.worker_slots >= 1) << "need >= 1 worker";
}

double SimInferenceServer::JitteredUs(double base_us) {
  const double factor =
      std::exp(config_.jitter_sigma * rng_.NextGaussian());
  return base_us * factor;
}

double SimInferenceServer::ServiceTimeUs(
    const InferenceRequest& request) const {
  const sim::InferenceWork work = model_->CostModel(
      config_.mode, static_cast<int64_t>(request.session_items.size()));
  return sim::SerialInferenceUs(config_.device, work);
}

int64_t SimInferenceServer::AcquireTraceLane() {
  if (!free_trace_lanes_.empty()) {
    const int64_t lane = free_trace_lanes_.back();
    free_trace_lanes_.pop_back();
    return lane;
  }
  return next_trace_lane_++;
}

void SimInferenceServer::ReleaseTraceLane(int64_t lane) {
  free_trace_lanes_.push_back(lane);
}

namespace {
void RecordSimSpan(std::string name, const char* category, int64_t ts_us,
                   double dur_us, int64_t lane,
                   const std::string& trace_id) {
  obs::TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.ts_us = ts_us;
  event.dur_us = static_cast<int64_t>(dur_us);
  event.pid = obs::kVirtualClockPid;
  event.tid = lane;
  event.trace_id = trace_id;
  obs::Tracer::Get().Record(std::move(event));
}
}  // namespace

void SimInferenceServer::TraceExecution(const PendingRequest& pending,
                                        int64_t lane, double inference_us,
                                        int batch_size) const {
  const int64_t now = sim_->now_us();
  const int64_t request_id = pending.request.request_id;
  // Cross-hop correlation: a trace id propagated by the load generator
  // (request.trace_id) is adopted verbatim, so the loadgen's client-side
  // span and the pod's server-side spans share one id; otherwise the
  // conventional "sim-<request id>" is minted.
  const std::string trace_id =
      !pending.request.trace_id.empty()
          ? pending.request.trace_id
          : (request_id >= 0 ? "sim-" + std::to_string(request_id)
                             : std::string());
  RecordSimSpan("queue", "sim-server", pending.enqueued_at_us,
                static_cast<double>(now - pending.enqueued_at_us), lane,
                trace_id);
  std::string name(model_->name());
  if (batch_size > 1) name += " batch[" + std::to_string(batch_size) + "]";
  RecordSimSpan(std::move(name), "sim-server", now,
                inference_us + config_.framework_overhead_us, lane,
                trace_id);
  // Op-level attribution inside the execution: scale the device cost
  // model's phase decomposition to the (jittered) scheduled duration.
  const sim::InferenceWork work = model_->CostModel(
      config_.mode,
      static_cast<int64_t>(pending.request.session_items.size()));
  const sim::InferencePhases phases =
      sim::SerialInferencePhasesUs(config_.device, work);
  const double scale =
      phases.total_us() > 0 ? inference_us / phases.total_us() : 0.0;
  double cursor = static_cast<double>(now) + config_.framework_overhead_us;
  RecordSimSpan("framework", "op", now, config_.framework_overhead_us, lane,
                trace_id);
  const struct {
    const char* name;
    double us;
  } ops[] = {{"dispatch", phases.dispatch_us * scale},
             {"encode", phases.encode_us * scale},
             {"catalog_scan", phases.scan_us * scale},
             {"host_sync", phases.host_sync_us * scale}};
  for (const auto& op : ops) {
    if (op.us <= 0) continue;
    RecordSimSpan(op.name, "op", static_cast<int64_t>(cursor), op.us, lane,
                  trace_id);
    cursor += op.us;
  }
}

void SimInferenceServer::HandleRequest(const InferenceRequest& request,
                                       ResponseCallback callback) {
  if (pending_ >= config_.max_queue_depth) {
    ++rejected_;
    telemetry_.OnReject(sim_->now_us());
    InferenceResponse response;
    response.request_id = request.request_id;
    response.ok = false;
    response.http_status = 503;
    callback(response);
    return;
  }
  ++pending_;
  telemetry_.OnArrival(sim_->now_us(), pending_ - in_execution_, pending_);
  PendingRequest pending;
  pending.request = request;
  pending.callback = std::move(callback);
  pending.enqueued_at_us = sim_->now_us();

  if (uses_batching()) {
    forming_batch_.push_back(std::move(pending));
    if (static_cast<int>(forming_batch_.size()) >=
        config_.batching.max_batch_size) {
      // Full buffer: hand it to the executor queue and start a new one.
      flush_timer_.Cancel();
      batch_queue_.push_back(std::move(forming_batch_));
      forming_batch_.clear();
      if (busy_batch_executors_ < executor_slots()) RunBatchExecutor();
    } else if (forming_batch_.size() == 1) {
      // First request of a new batch: arm the flush timer (the paper's
      // "empty the underlying buffer every two milliseconds"). While the
      // executor is busy the buffer keeps filling past the timer — the
      // batch is dispatched as soon as the executor frees up, which is
      // what lets batching amortise the catalog scan under load.
      flush_timer_ = sim_->Schedule(config_.batching.flush_interval_us,
                                    [this] { FlushBatch(); });
    }
  } else {
    queue_.push_back(std::move(pending));
    StartCpuWorkerIfIdle();
  }
}

void SimInferenceServer::StartCpuWorkerIfIdle() {
  while (active_cpu_workers_ < config_.device.worker_slots &&
         !queue_.empty()) {
    ++active_cpu_workers_;
    RunCpuWorker();
  }
}

void SimInferenceServer::RunCpuWorker() {
  ETUDE_CHECK(!queue_.empty()) << "worker started without work";
  // Move the request out of the queue into the worker.
  auto pending = std::make_shared<PendingRequest>(std::move(queue_.front()));
  queue_.pop_front();
  const double inference_us = JitteredUs(ServiceTimeUs(pending->request));
  const double total_us = inference_us + config_.framework_overhead_us;
  ++in_execution_;
  telemetry_.AddBusyInterval(sim_->now_us(),
                             sim_->now_us() +
                                 static_cast<int64_t>(total_us));
  int64_t lane = -1;
  if (obs::Tracer::enabled()) {
    lane = AcquireTraceLane();
    TraceExecution(*pending, lane, inference_us, /*batch_size=*/1);
  }
  sim_->Schedule(static_cast<int64_t>(total_us), [this, pending,
                                                  inference_us, lane] {
    --in_execution_;
    Complete(pending.get(), static_cast<int64_t>(inference_us));
    if (lane >= 0) ReleaseTraceLane(lane);
    --active_cpu_workers_;
    StartCpuWorkerIfIdle();
  });
}

void SimInferenceServer::FlushBatch() {
  if (forming_batch_.empty()) return;
  if (busy_batch_executors_ >= executor_slots()) {
    return;  // dispatched when an executor frees up
  }
  batch_queue_.push_back(std::move(forming_batch_));
  forming_batch_.clear();
  RunBatchExecutor();
}

double SimInferenceServer::BatchServiceUs(const sim::InferenceWork& work,
                                          int batch_size) const {
  if (config_.analytic_batching) {
    // Whole-batch work from the batched plan polynomials: weight traffic
    // is charged once, per-session marginals batch_size times. The
    // framework overhead is paid once per dispatched batch, as in the
    // CPU per-request path.
    return sim::SerialInferenceUs(config_.device, work) +
           config_.framework_overhead_us;
  }
  return sim::BatchInferenceUs(config_.device, work, batch_size);
}

void SimInferenceServer::RunBatchExecutor() {
  ETUDE_CHECK(!batch_queue_.empty()) << "executor started without batches";
  ++busy_batch_executors_;
  auto batch = std::make_shared<std::vector<PendingRequest>>(
      std::move(batch_queue_.front()));
  batch_queue_.pop_front();
  // Cost of the whole batch: the device model amortises the catalog scan
  // across batch members. Session lengths vary per request; the batch is
  // padded to its longest session, as the real batched execution would be.
  int64_t max_session = 1;
  for (const PendingRequest& pending : *batch) {
    max_session = std::max(
        max_session,
        static_cast<int64_t>(pending.request.session_items.size()));
  }
  const int batch_size = static_cast<int>(batch->size());
  const sim::InferenceWork work =
      config_.analytic_batching
          ? model_->BatchedCostModel(config_.mode, max_session, batch_size)
          : model_->CostModel(config_.mode, max_session);
  const double batch_us = JitteredUs(BatchServiceUs(work, batch_size));
  const double per_request_us =
      batch_us / static_cast<double>(batch->size());
  in_execution_ += static_cast<int64_t>(batch->size());
  telemetry_.AddBusyInterval(
      sim_->now_us(), sim_->now_us() + static_cast<int64_t>(batch_us));
  if (obs::Tracer::enabled()) {
    // Each batch executor is one lane; the batch's spans describe its
    // longest (padded) request.
    TraceExecution(batch->front(), /*lane=*/busy_batch_executors_ - 1,
                   batch_us, batch_size);
  }
  sim_->Schedule(
      static_cast<int64_t>(batch_us),
      [this, batch, per_request_us] {
        for (PendingRequest& pending : *batch) {
          --in_execution_;
          Complete(&pending, static_cast<int64_t>(per_request_us));
        }
        --busy_batch_executors_;
        if (!batch_queue_.empty()) {
          RunBatchExecutor();
        } else if (!forming_batch_.empty()) {
          // Everything buffered while the executors were busy ships now.
          flush_timer_.Cancel();
          batch_queue_.push_back(std::move(forming_batch_));
          forming_batch_.clear();
          RunBatchExecutor();
        }
      });
}

void SimInferenceServer::Complete(PendingRequest* pending,
                                  int64_t inference_us) {
  InferenceResponse response;
  response.request_id = pending->request.request_id;
  response.ok = true;
  response.http_status = 200;
  response.inference_us = inference_us;
  response.server_time_us = sim_->now_us() - pending->enqueued_at_us;
  if (config_.functional_inference) {
    // Real forward pass on the CPU tensor engine; used by functional tests
    // with small catalogs.
    Result<models::Recommendation> rec =
        model_->Recommend(pending->request.session_items);
    if (rec.ok()) {
      response.recommended_items = std::move(rec.value().items);
    } else {
      response.ok = false;
      response.http_status = 500;
    }
  }
  --pending_;
  telemetry_.OnComplete(sim_->now_us(), response.server_time_us,
                        response.ok, pending_ - in_execution_, pending_);
  pending->callback(response);
}

}  // namespace etude::serving

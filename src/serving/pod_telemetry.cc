#include "serving/pod_telemetry.h"

#include <algorithm>

namespace etude::serving {

namespace {
constexpr int64_t kTickUs = 1'000'000;

int64_t TickOf(int64_t now_us) { return now_us / kTickUs; }
}  // namespace

PodTelemetry::PodTelemetry() {
  requests_total_ =
      registry_.GetCounter("etude_pod_requests_total",
                           "Requests admitted by this pod.", {}, "requests");
  responses_ok_total_ = registry_.GetCounter(
      "etude_pod_responses_ok_total",
      "Successful responses completed by this pod.", {}, "ok");
  errors_total_ =
      registry_.GetCounter("etude_pod_errors_total",
                           "Failed responses (any non-2xx outcome).", {},
                           "errors");
  rejected_total_ = registry_.GetCounter(
      "etude_pod_rejected_total",
      "Requests rejected with 503 due to queue overflow.", {}, "rejected");
  latency_us_ = registry_.GetHistogram(
      "etude_pod_latency_us",
      "Server-side latency of successful requests in microseconds.", {},
      "latency_us_summary");
  queue_depth_ = registry_.GetGauge("etude_pod_queue_depth",
                                    "Waiting-queue depth (last sample).",
                                    {}, "queue_depth");
  in_flight_ = registry_.GetGauge(
      "etude_pod_in_flight",
      "Admitted requests (queued + executing, last sample).", {},
      "in_flight");
}

void PodTelemetry::OnArrival(int64_t now_us, int64_t queue_depth,
                             int64_t in_flight) {
  requests_total_->Add();
  queue_depth_->Set(static_cast<double>(queue_depth));
  in_flight_->Set(static_cast<double>(in_flight));
  const int64_t tick = TickOf(now_us);
  timeline_.RecordRequest(tick);
  timeline_.RecordQueueDepth(tick, queue_depth);
  timeline_.RecordInFlight(tick, in_flight);
}

void PodTelemetry::OnReject(int64_t now_us) {
  rejected_total_->Add();
  errors_total_->Add();
  timeline_.RecordResponse(TickOf(now_us), 0, /*ok=*/false);
}

void PodTelemetry::OnComplete(int64_t now_us, int64_t server_time_us,
                              bool ok, int64_t queue_depth,
                              int64_t in_flight) {
  if (ok) {
    responses_ok_total_->Add();
    latency_us_->Record(server_time_us);
  } else {
    errors_total_->Add();
  }
  queue_depth_->Set(static_cast<double>(queue_depth));
  in_flight_->Set(static_cast<double>(in_flight));
  const int64_t tick = TickOf(now_us);
  timeline_.RecordResponse(tick, server_time_us, ok);
  timeline_.RecordQueueDepth(tick, queue_depth);
  timeline_.RecordInFlight(tick, in_flight);
}

void PodTelemetry::AddBusyInterval(int64_t start_us, int64_t end_us) {
  if (end_us <= start_us) return;
  for (int64_t tick = start_us / kTickUs; tick * kTickUs < end_us; ++tick) {
    const int64_t tick_start = tick * kTickUs;
    const int64_t overlap = std::min(end_us, tick_start + kTickUs) -
                            std::max(start_us, tick_start);
    timeline_.AddBusyUs(tick, overlap);
  }
}

metrics::TimeSeriesRecorder PodTelemetry::FinalizedTimeline(
    int executor_slots) const {
  metrics::TimeSeriesRecorder finalized = timeline_;
  finalized.FinalizeUtilization(executor_slots);
  return finalized;
}

}  // namespace etude::serving

#include "serving/etude_serve.h"

#include <cctype>

#include "common/json.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "obs/memstats.h"
#include "obs/trace.h"

namespace etude::serving {

namespace {
std::string RecommendationToJson(const models::Recommendation& rec) {
  JsonValue root = JsonValue::MakeObject();
  JsonValue items = JsonValue::MakeArray();
  JsonValue scores = JsonValue::MakeArray();
  for (size_t i = 0; i < rec.items.size(); ++i) {
    items.Append(JsonValue(rec.items[i]));
    scores.Append(JsonValue(static_cast<double>(rec.scores[i])));
  }
  root.Set("items", std::move(items));
  root.Set("scores", std::move(scores));
  return root.Dump();
}

const char* ExecModeName(models::ExecutionMode mode) {
  return mode == models::ExecutionMode::kJit ? "jit" : "eager";
}

const char* ExecPlanName(models::ExecPlanKind plan) {
  return plan == models::ExecPlanKind::kArena ? "arena" : "malloc";
}

/// True when the request asks for the Prometheus text format, either via
/// content negotiation or an explicit ?format= query.
bool WantsPrometheus(const net::HttpRequest& request,
                     MetricsFormat default_format) {
  const size_t query = request.target.find('?');
  if (query != std::string::npos) {
    const std::string_view args =
        std::string_view(request.target).substr(query + 1);
    if (args.find("format=prometheus") != std::string_view::npos) return true;
    if (args.find("format=json") != std::string_view::npos) return false;
  }
  const std::string accept = ToLower(request.Header("accept"));
  if (accept.find("text/plain") != std::string::npos ||
      accept.find("openmetrics") != std::string::npos) {
    return true;
  }
  if (accept.find("application/json") != std::string::npos) return false;
  return default_format == MetricsFormat::kPrometheus;
}

int64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// The Summary block every JSON surface renders (same keys as the BENCH
/// schema). Percentiles carry the histogram's bucket over-estimate
/// (< 1.6%).
JsonValue SummaryJson(const metrics::LatencyHistogram::Summary& summary) {
  JsonValue stats = JsonValue::MakeObject();
  stats.Set("count", JsonValue(summary.count));
  stats.Set("sum", JsonValue(summary.sum));
  stats.Set("min", JsonValue(summary.min));
  stats.Set("mean", JsonValue(summary.mean));
  stats.Set("p50", JsonValue(summary.p50));
  stats.Set("p90", JsonValue(summary.p90));
  stats.Set("p99", JsonValue(summary.p99));
  stats.Set("max", JsonValue(summary.max));
  return stats;
}

/// A client-supplied trace id is adopted only when it is sane: non-empty,
/// bounded, and free of characters that could corrupt headers or logs.
bool UsableTraceId(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' &&
        c != '_' && c != '.' && c != ':') {
      return false;
    }
  }
  return true;
}

net::HttpResponse TracingDisabledResponse(const char* what) {
  return net::HttpResponse::Error(
      501, std::string(what) +
               " unavailable: built with ETUDE_DISABLE_TRACING");
}
}  // namespace

EtudeServe::EtudeServe(const models::SessionModel* model,
                       const EtudeServeConfig& config)
    : model_(model),
      config_(config),
      started_at_(std::chrono::steady_clock::now()),
      slo_monitor_(config.slo) {
  ETUDE_CHECK(model_ != nullptr) << "model required";
  model_route_ = "/predictions/" + ToLower(model_->name());

  // Register every instrument once; the hot path only touches the
  // returned handles. The json_path argument reproduces the legacy JSON
  // /metrics document from the same snapshot the Prometheus text renders
  // from.
  predictions_served_ =
      registry_.GetCounter("etude_predictions_total",
                           "Successful predictions served.", {},
                           "predictions_served");
  const std::string route_help = "Requests received, by route.";
  requests_healthz_ =
      registry_.GetCounter("etude_requests_total", route_help,
                           {{"route", "/healthz"}},
                           "requests_by_route./healthz");
  requests_metrics_ =
      registry_.GetCounter("etude_requests_total", route_help,
                           {{"route", "/metrics"}},
                           "requests_by_route./metrics");
  requests_slo_ = registry_.GetCounter("etude_requests_total", route_help,
                                       {{"route", "/slo"}},
                                       "requests_by_route./slo");
  requests_tail_traces_ =
      registry_.GetCounter("etude_requests_total", route_help,
                           {{"route", "/debug/tail-traces"}},
                           "requests_by_route./debug/tail-traces");
  requests_predictions_ =
      registry_.GetCounter("etude_requests_total", route_help,
                           {{"route", model_route_}},
                           "requests_by_route." + model_route_);
  requests_other_ = registry_.GetCounter("etude_requests_total", route_help,
                                         {{"route", "other"}},
                                         "requests_by_route.other");
  const std::string error_help = "Error responses, by status class.";
  errors_4xx_ = registry_.GetCounter("etude_http_errors_total", error_help,
                                     {{"class", "4xx"}}, "errors_4xx");
  errors_5xx_ = registry_.GetCounter("etude_http_errors_total", error_help,
                                     {{"class", "5xx"}}, "errors_5xx");
  inference_latency_us_ = registry_.GetHistogram(
      "etude_inference_latency_us",
      "Server-side inference latency in microseconds.", {},
      "inference_us_summary");
  queue_delay_us_ = registry_.GetHistogram(
      "etude_queue_delay_us",
      "Accept-to-handler queueing delay in microseconds.", {},
      "queue_delay_us_summary");
  registry_.SetInfo("etude_model_info", "Model this server is serving.",
                    "model", std::string(model_->name()), "model");
  registry_.SetInfo("etude_exec_mode_info",
                    "Execution mode serving predictions.", "mode",
                    ExecModeName(config_.exec.mode), "exec_mode");
  registry_.SetInfo("etude_exec_plan_info",
                    "Memory plan serving predictions.", "plan",
                    ExecPlanName(config_.exec.plan), "exec_plan");
  registry_
      .GetGauge("etude_model_catalog_size",
                "Catalog size (C) of the served model.", {}, "catalog_size")
      ->Set(static_cast<double>(model_->config().catalog_size));

  net::HttpServerConfig server_config;
  server_config.bind_address = config.bind_address;
  server_config.port = config.port;
  server_config.worker_threads = config.worker_threads;
  server_ = std::make_unique<net::HttpServer>(
      server_config,
      [this](const net::HttpRequest& request) { return Handle(request); });
}

Status EtudeServe::Start() {
  started_at_ = std::chrono::steady_clock::now();
  return server_->Start();
}

void EtudeServe::Stop() { server_->Stop(); }

double EtudeServe::UptimeSeconds() const {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - started_at_)
      .count();
}

net::HttpResponse EtudeServe::Handle(const net::HttpRequest& request) {
  // Request scope: a stable id correlates the response header with every
  // span this request records. A sane client-supplied x-trace-id is
  // adopted so the load generator's ids flow through to the server's tail
  // exemplars; otherwise the server mints one.
  const std::string incoming(request.Header("x-trace-id"));
  const std::string trace_id =
      UsableTraceId(incoming)
          ? incoming
          : "req-" + std::to_string(next_trace_id_.fetch_add(1));
  net::HttpResponse response = Route(request, trace_id);
  if (response.status >= 500) {
    errors_5xx_->Add();
  } else if (response.status >= 400) {
    errors_4xx_->Add();
  }
  response.headers["x-trace-id"] = trace_id;
  const std::string parent_span(request.Header("x-parent-span"));
  if (!parent_span.empty()) response.headers["x-parent-span"] = parent_span;
  return response;
}

net::HttpResponse EtudeServe::Route(const net::HttpRequest& request,
                                    const std::string& trace_id) {
  if (request.target == "/healthz") {
    requests_healthz_->Add();
    return HandleHealthz();
  }
  if (request.target == "/metrics" ||
      StartsWith(request.target, "/metrics?")) {
    requests_metrics_->Add();
    return HandleMetrics(request);
  }
  if (request.target == "/slo") {
    requests_slo_->Add();
    return HandleSlo();
  }
  if (request.target == "/debug/tail-traces") {
    requests_tail_traces_->Add();
    return HandleTailTraces();
  }
  if (request.target == model_route_) {
    requests_predictions_->Add();
    if (request.method != "POST") {
      return net::HttpResponse::Error(405, "use POST");
    }
    return HandlePrediction(request, trace_id);
  }
  requests_other_->Add();
  return net::HttpResponse::Error(404, "no such route");
}

net::HttpResponse EtudeServe::HandleHealthz() {
  // Readiness probe: the model is loaded at construction time, so the pod
  // reports ready as soon as the server accepts connections. The body
  // carries enough identity for a probing load harness or autoscaler to
  // verify *what* is ready.
  JsonValue body = JsonValue::MakeObject();
  body.Set("status", JsonValue(std::string("ready")));
  body.Set("uptime_seconds", JsonValue(UptimeSeconds()));
  body.Set("model", JsonValue(std::string(model_->name())));
  body.Set("catalog_size", JsonValue(model_->config().catalog_size));
  body.Set("exec_mode",
           JsonValue(std::string(ExecModeName(config_.exec.mode))));
  body.Set("exec_plan",
           JsonValue(std::string(ExecPlanName(config_.exec.plan))));
  body.Set("predictions_served", JsonValue(predictions_served_->value()));
  return net::HttpResponse::Ok(body.Dump());
}

obs::RegistrySnapshot EtudeServe::MetricsSnapshot() {
  // Scrape-time instruments: values that are cheap to read but pointless
  // to maintain continuously. Registration is idempotent, so re-acquiring
  // the handles here just refreshes their values.
  registry_
      .GetGauge("etude_uptime_seconds", "Seconds since the server started.",
                {}, "uptime_seconds")
      ->Set(UptimeSeconds());
  registry_
      .GetGauge("etude_tensor_threads",
                "Worker threads available to the tensor kernels.", {},
                "tensor_threads")
      ->Set(static_cast<double>(NumThreads()));
  const obs::MemStats mem = obs::ProcessMemStats();
  registry_
      .GetCounter("etude_tensor_allocated_bytes_total",
                  "Bytes of tensor buffers allocated since start.", {},
                  "tensor_memory.allocated_bytes")
      ->Set(mem.allocated_bytes);
  registry_
      .GetCounter("etude_tensor_freed_bytes_total",
                  "Bytes of tensor buffers freed since start.", {},
                  "tensor_memory.freed_bytes")
      ->Set(mem.freed_bytes);
  registry_
      .GetGauge("etude_tensor_live_bytes",
                "Bytes of tensor buffers currently alive.", {},
                "tensor_memory.live_bytes")
      ->Set(static_cast<double>(mem.live_bytes));
  registry_
      .GetGauge("etude_tensor_peak_live_bytes",
                "High-water mark of live tensor bytes.", {},
                "tensor_memory.peak_live_bytes")
      ->Set(static_cast<double>(mem.peak_live_bytes));
  registry_
      .GetGauge("etude_process_rss_bytes",
                "Resident set size of the process.", {},
                "process_rss_bytes")
      ->Set(static_cast<double>(obs::ProcessRssBytes()));

  const obs::WindowSnapshot window = slo_monitor_.Snapshot();
  if (window.enabled) {
    // Windowed SLO gauges (the signal an SLO-aware scheduler steers on)
    // register lazily so disabled-tracing builds expose no "slo" block.
    registry_
        .GetGauge("etude_slo_window_seconds",
                  "Width of the sliding SLO window.", {},
                  "slo.window_seconds")
        ->Set(static_cast<double>(window.window_seconds));
    registry_
        .GetGauge("etude_slo_target_p90_us",
                  "Configured p90 latency target (--slo-p90-us).", {},
                  "slo.target_p90_us")
        ->Set(static_cast<double>(window.slo_p90_us));
    const std::string window_help =
        "Sliding-window end-to-end prediction latency quantile.";
    registry_
        .GetGauge("etude_slo_window_latency_us", window_help,
                  {{"quantile", "p50"}}, "slo.window_p50_us")
        ->Set(static_cast<double>(window.latency.p50));
    registry_
        .GetGauge("etude_slo_window_latency_us", window_help,
                  {{"quantile", "p90"}}, "slo.window_p90_us")
        ->Set(static_cast<double>(window.latency.p90));
    registry_
        .GetGauge("etude_slo_window_latency_us", window_help,
                  {{"quantile", "p99"}}, "slo.window_p99_us")
        ->Set(static_cast<double>(window.latency.p99));
    registry_
        .GetGauge("etude_slo_window_throughput_rps",
                  "Predictions per second over the sliding window.", {},
                  "slo.window_throughput_rps")
        ->Set(window.throughput_rps);
    registry_
        .GetGauge("etude_slo_window_error_rate",
                  "Error fraction over the sliding window.", {},
                  "slo.window_error_rate")
        ->Set(window.error_rate);
    registry_
        .GetGauge("etude_slo_burn_rate",
                  "Error-budget burn multiplier against the p90 target "
                  "(1.0 = burning exactly the allowed 10%).",
                  {}, "slo.burn_rate")
        ->Set(window.burn_rate);
    for (const obs::PhaseWindow& phase : window.phases) {
      registry_
          .GetGauge("etude_slo_phase_p90_us",
                    "Sliding-window p90 of one request phase.",
                    {{"phase", phase.name}})
          ->Set(static_cast<double>(phase.summary.p90));
    }
  }
  return registry_.Snapshot();
}

std::string EtudeServe::JsonSlo() {
  const obs::WindowSnapshot window = slo_monitor_.Snapshot();
  JsonValue root = JsonValue::MakeObject();
  root.Set("enabled", JsonValue(window.enabled));
  root.Set("window_seconds", JsonValue(window.window_seconds));
  root.Set("covered_seconds", JsonValue(window.covered_seconds));
  root.Set("requests", JsonValue(window.requests));
  root.Set("errors", JsonValue(window.errors));
  root.Set("throughput_rps", JsonValue(window.throughput_rps));
  root.Set("error_rate", JsonValue(window.error_rate));

  JsonValue slo = JsonValue::MakeObject();
  slo.Set("target_p90_us", JsonValue(window.slo_p90_us));
  slo.Set("window_p90_us", JsonValue(window.latency.p90));
  slo.Set("violations", JsonValue(window.slo_violations));
  slo.Set("violation_rate", JsonValue(window.violation_rate));
  slo.Set("burn_rate", JsonValue(window.burn_rate));
  slo.Set("met", JsonValue(window.latency.p90 <= window.slo_p90_us));
  root.Set("slo", std::move(slo));

  root.Set("latency_us", SummaryJson(window.latency));

  // Tail-latency attribution: windowed per-phase percentiles answer
  // "where do the slow requests spend time"; `share_of_total` is the
  // phase's fraction of all request time in the window.
  JsonValue phases = JsonValue::MakeObject();
  for (const obs::PhaseWindow& phase : window.phases) {
    JsonValue entry = SummaryJson(phase.summary);
    const double share =
        window.latency.sum > 0
            ? static_cast<double>(phase.summary.sum) /
                  static_cast<double>(window.latency.sum)
            : 0.0;
    entry.Set("share_of_total", JsonValue(share));
    phases.Set(phase.name, std::move(entry));
  }
  root.Set("phases", std::move(phases));

  JsonValue slowest = JsonValue::MakeArray();
  for (const obs::TailExemplar& exemplar : window.slowest) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("trace_id", JsonValue(exemplar.trace_id));
    entry.Set("total_us", JsonValue(exemplar.total_us));
    entry.Set("ok", JsonValue(exemplar.ok));
    JsonValue exemplar_phases = JsonValue::MakeObject();
    for (const obs::PhaseSpan& phase : exemplar.phases) {
      JsonValue span = JsonValue::MakeObject();
      span.Set("start_us", JsonValue(phase.start_us));
      span.Set("dur_us", JsonValue(phase.dur_us));
      exemplar_phases.Set(phase.name, std::move(span));
    }
    entry.Set("phases", std::move(exemplar_phases));
    slowest.Append(std::move(entry));
  }
  root.Set("slowest", std::move(slowest));
  return root.Dump();
}

net::HttpResponse EtudeServe::HandleSlo() {
  if (!obs::kSloMonitorCompiled) return TracingDisabledResponse("/slo");
  return net::HttpResponse::Ok(JsonSlo());
}

net::HttpResponse EtudeServe::HandleTailTraces() {
  if (!obs::kSloMonitorCompiled) {
    return TracingDisabledResponse("/debug/tail-traces");
  }
  const obs::WindowSnapshot window = slo_monitor_.Snapshot();
  return net::HttpResponse::Ok(obs::TailTracesJson(window.slowest));
}

net::HttpResponse EtudeServe::HandleMetrics(const net::HttpRequest& request) {
  const obs::RegistrySnapshot snapshot = MetricsSnapshot();
  if (WantsPrometheus(request, config_.default_metrics_format)) {
    return net::HttpResponse::Ok(snapshot.ToPrometheusText(),
                                 "text/plain; version=0.0.4");
  }
  return net::HttpResponse::Ok(snapshot.ToJson().Dump());
}

net::HttpResponse EtudeServe::HandlePrediction(
    const net::HttpRequest& request, const std::string& trace_id) {
  const auto request_start = std::chrono::steady_clock::now();
  // The accept-to-handler wait measured by the HTTP server is the
  // "queue" phase: the part of the client-observed latency the handler
  // never sees. Later phase spans start after it.
  const int64_t queue_us = request.queue_delay_us;
  queue_delay_us_->Record(queue_us);
  obs::RequestSample sample;
  sample.trace_id = trace_id;
  sample.phases.push_back(obs::PhaseSpan{"queue", 0, queue_us});
  net::HttpResponse response =
      PredictionInner(request, trace_id, request_start, &sample);
  for (size_t i = 1; i < sample.phases.size(); ++i) {
    sample.phases[i].start_us += queue_us;
  }
  sample.total_us = queue_us + ElapsedUs(request_start);
  sample.ok = response.status < 400;
  slo_monitor_.Record(std::move(sample));
  return response;
}

net::HttpResponse EtudeServe::PredictionInner(
    const net::HttpRequest& request, const std::string& trace_id,
    const std::chrono::steady_clock::time_point request_start,
    obs::RequestSample* sample) {
  ETUDE_TRACE_SPAN_ID(model_route_.c_str(), "server", trace_id);
  // Each phase is timed explicitly (not via the tracer) so the SLO
  // monitor's attribution works with the tracer disabled — the common
  // production configuration.
  const auto phase = [&](const char* name, int64_t start_us) {
    sample->phases.push_back(
        obs::PhaseSpan{name, start_us, ElapsedUs(request_start) - start_us});
  };

  std::vector<int64_t> session;
  {
    ETUDE_TRACE_SPAN_ID("parse", "server", trace_id);
    const int64_t parse_start = ElapsedUs(request_start);
    Result<JsonValue> body = ParseJson(request.body);
    if (!body.ok() || !body->is_object() ||
        !body->Get("session").is_array()) {
      phase("parse", parse_start);
      return net::HttpResponse::Error(
          400, "body must be a JSON object with a 'session' array");
    }
    for (const JsonValue& item : body->Get("session").items()) {
      if (!item.is_number()) {
        phase("parse", parse_start);
        return net::HttpResponse::Error(400,
                                        "session items must be numbers");
      }
      session.push_back(item.as_int());
    }
    phase("parse", parse_start);
  }

  const int64_t inference_start = ElapsedUs(request_start);
  Result<models::Recommendation> rec = [&] {
    ETUDE_TRACE_SPAN_ID("inference", "server", trace_id);
    return model_->Recommend(session, config_.exec);
  }();
  phase("inference", inference_start);
  if (!rec.ok()) {
    const int status =
        rec.status().code() == StatusCode::kInvalidArgument ||
                rec.status().code() == StatusCode::kOutOfRange
            ? 400
            : 500;
    return net::HttpResponse::Error(status, rec.status().ToString());
  }
  const int64_t inference_us = ElapsedUs(request_start) - inference_start;
  predictions_served_->Add();
  inference_latency_us_->Record(inference_us);

  net::HttpResponse response;
  {
    ETUDE_TRACE_SPAN_ID("serialize", "server", trace_id);
    const int64_t serialize_start = ElapsedUs(request_start);
    response = net::HttpResponse::Ok(RecommendationToJson(*rec));
    phase("serialize", serialize_start);
  }
  // The inference-duration metric travels in a response header, as in the
  // paper's benchmark execution design (Sec. II).
  response.headers["x-inference-us"] = std::to_string(inference_us);
  return response;
}

}  // namespace etude::serving

#include "serving/etude_serve.h"

#include "common/json.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "obs/memstats.h"
#include "obs/prometheus.h"
#include "obs/trace.h"

namespace etude::serving {

namespace {
std::string RecommendationToJson(const models::Recommendation& rec) {
  JsonValue root = JsonValue::MakeObject();
  JsonValue items = JsonValue::MakeArray();
  JsonValue scores = JsonValue::MakeArray();
  for (size_t i = 0; i < rec.items.size(); ++i) {
    items.Append(JsonValue(rec.items[i]));
    scores.Append(JsonValue(static_cast<double>(rec.scores[i])));
  }
  root.Set("items", std::move(items));
  root.Set("scores", std::move(scores));
  return root.Dump();
}

const char* ExecModeName(models::ExecutionMode mode) {
  return mode == models::ExecutionMode::kJit ? "jit" : "eager";
}

const char* ExecPlanName(models::ExecPlanKind plan) {
  return plan == models::ExecPlanKind::kArena ? "arena" : "malloc";
}

/// True when the request asks for the Prometheus text format, either via
/// content negotiation or an explicit ?format= query.
bool WantsPrometheus(const net::HttpRequest& request,
                     MetricsFormat default_format) {
  const size_t query = request.target.find('?');
  if (query != std::string::npos) {
    const std::string_view args =
        std::string_view(request.target).substr(query + 1);
    if (args.find("format=prometheus") != std::string_view::npos) return true;
    if (args.find("format=json") != std::string_view::npos) return false;
  }
  const std::string accept = ToLower(request.Header("accept"));
  if (accept.find("text/plain") != std::string::npos ||
      accept.find("openmetrics") != std::string::npos) {
    return true;
  }
  if (accept.find("application/json") != std::string::npos) return false;
  return default_format == MetricsFormat::kPrometheus;
}

int64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// The Summary block every JSON surface renders (same keys as the BENCH
/// schema). Percentiles carry the histogram's bucket over-estimate
/// (< 1.6%).
JsonValue SummaryJson(const metrics::LatencyHistogram::Summary& summary) {
  JsonValue stats = JsonValue::MakeObject();
  stats.Set("count", JsonValue(summary.count));
  stats.Set("sum", JsonValue(summary.sum));
  stats.Set("min", JsonValue(summary.min));
  stats.Set("mean", JsonValue(summary.mean));
  stats.Set("p50", JsonValue(summary.p50));
  stats.Set("p90", JsonValue(summary.p90));
  stats.Set("p99", JsonValue(summary.p99));
  stats.Set("max", JsonValue(summary.max));
  return stats;
}

net::HttpResponse TracingDisabledResponse(const char* what) {
  return net::HttpResponse::Error(
      501, std::string(what) +
               " unavailable: built with ETUDE_DISABLE_TRACING");
}
}  // namespace

EtudeServe::EtudeServe(const models::SessionModel* model,
                       const EtudeServeConfig& config)
    : model_(model),
      config_(config),
      started_at_(std::chrono::steady_clock::now()),
      slo_monitor_(config.slo) {
  ETUDE_CHECK(model_ != nullptr) << "model required";
  model_route_ = "/predictions/" + ToLower(model_->name());
  net::HttpServerConfig server_config;
  server_config.bind_address = config.bind_address;
  server_config.port = config.port;
  server_config.worker_threads = config.worker_threads;
  server_ = std::make_unique<net::HttpServer>(
      server_config,
      [this](const net::HttpRequest& request) { return Handle(request); });
}

Status EtudeServe::Start() {
  started_at_ = std::chrono::steady_clock::now();
  return server_->Start();
}

void EtudeServe::Stop() { server_->Stop(); }

double EtudeServe::UptimeSeconds() const {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - started_at_)
      .count();
}

net::HttpResponse EtudeServe::Handle(const net::HttpRequest& request) {
  // Request scope: a stable id correlates the response header with every
  // span this request records.
  const std::string trace_id =
      "req-" + std::to_string(next_trace_id_.fetch_add(1));
  net::HttpResponse response = Route(request, trace_id);
  if (response.status >= 500) {
    errors_5xx_.fetch_add(1);
  } else if (response.status >= 400) {
    errors_4xx_.fetch_add(1);
  }
  response.headers["x-trace-id"] = trace_id;
  return response;
}

net::HttpResponse EtudeServe::Route(const net::HttpRequest& request,
                                    const std::string& trace_id) {
  if (request.target == "/healthz") {
    requests_healthz_.fetch_add(1);
    return HandleHealthz();
  }
  if (request.target == "/metrics" ||
      StartsWith(request.target, "/metrics?")) {
    requests_metrics_.fetch_add(1);
    return HandleMetrics(request);
  }
  if (request.target == "/slo") {
    requests_slo_.fetch_add(1);
    return HandleSlo();
  }
  if (request.target == "/debug/tail-traces") {
    requests_tail_traces_.fetch_add(1);
    return HandleTailTraces();
  }
  if (request.target == model_route_) {
    requests_predictions_.fetch_add(1);
    if (request.method != "POST") {
      return net::HttpResponse::Error(405, "use POST");
    }
    return HandlePrediction(request, trace_id);
  }
  requests_other_.fetch_add(1);
  return net::HttpResponse::Error(404, "no such route");
}

net::HttpResponse EtudeServe::HandleHealthz() {
  // Readiness probe: the model is loaded at construction time, so the pod
  // reports ready as soon as the server accepts connections. The body
  // carries enough identity for a probing load harness or autoscaler to
  // verify *what* is ready.
  JsonValue body = JsonValue::MakeObject();
  body.Set("status", JsonValue(std::string("ready")));
  body.Set("uptime_seconds", JsonValue(UptimeSeconds()));
  body.Set("model", JsonValue(std::string(model_->name())));
  body.Set("catalog_size", JsonValue(model_->config().catalog_size));
  body.Set("exec_mode",
           JsonValue(std::string(ExecModeName(config_.exec.mode))));
  body.Set("exec_plan",
           JsonValue(std::string(ExecPlanName(config_.exec.plan))));
  body.Set("predictions_served", JsonValue(predictions_served_.load()));
  return net::HttpResponse::Ok(body.Dump());
}

std::string EtudeServe::JsonMetrics() {
  JsonValue metrics = JsonValue::MakeObject();
  metrics.Set("predictions_served", JsonValue(predictions_served_.load()));
  {
    MutexLock lock(stats_mutex_);
    metrics.Set("mean_inference_us", JsonValue(inference_latency_us_.mean()));
    metrics.Set("p50_inference_us", JsonValue(inference_latency_us_.p50()));
    metrics.Set("p90_inference_us", JsonValue(inference_latency_us_.p90()));
    metrics.Set("p99_inference_us", JsonValue(inference_latency_us_.p99()));
    // Summary block mirroring the BENCH JSON schema; percentiles carry
    // the histogram's bucket over-estimate (< 1.6%).
    metrics.Set("inference_us_summary",
                SummaryJson(inference_latency_us_.Summarize()));
  }
  const obs::WindowSnapshot window = slo_monitor_.Snapshot();
  if (window.enabled) {
    // Windowed gauges (the signal an SLO-aware scheduler steers on), as
    // opposed to the cumulative-since-boot blocks above.
    JsonValue slo = JsonValue::MakeObject();
    slo.Set("window_seconds", JsonValue(window.window_seconds));
    slo.Set("target_p90_us", JsonValue(window.slo_p90_us));
    slo.Set("window_p50_us", JsonValue(window.latency.p50));
    slo.Set("window_p90_us", JsonValue(window.latency.p90));
    slo.Set("window_p99_us", JsonValue(window.latency.p99));
    slo.Set("window_throughput_rps", JsonValue(window.throughput_rps));
    slo.Set("window_error_rate", JsonValue(window.error_rate));
    slo.Set("burn_rate", JsonValue(window.burn_rate));
    metrics.Set("slo", std::move(slo));
  }
  {
    const obs::MemStats mem = obs::ProcessMemStats();
    JsonValue memory = JsonValue::MakeObject();
    memory.Set("allocated_bytes", JsonValue(mem.allocated_bytes));
    memory.Set("freed_bytes", JsonValue(mem.freed_bytes));
    memory.Set("live_bytes", JsonValue(mem.live_bytes));
    memory.Set("peak_live_bytes", JsonValue(mem.peak_live_bytes));
    metrics.Set("tensor_memory", std::move(memory));
  }
  metrics.Set("process_rss_bytes", JsonValue(obs::ProcessRssBytes()));
  metrics.Set("model", JsonValue(std::string(model_->name())));
  metrics.Set("exec_mode", JsonValue(std::string(ExecModeName(config_.exec.mode))));
  metrics.Set("exec_plan", JsonValue(std::string(ExecPlanName(config_.exec.plan))));
  metrics.Set("catalog_size", JsonValue(model_->config().catalog_size));
  metrics.Set("tensor_threads",
              JsonValue(static_cast<int64_t>(NumThreads())));
  metrics.Set("uptime_seconds", JsonValue(UptimeSeconds()));
  metrics.Set("errors_4xx", JsonValue(errors_4xx_.load()));
  metrics.Set("errors_5xx", JsonValue(errors_5xx_.load()));
  JsonValue routes = JsonValue::MakeObject();
  routes.Set("/healthz", JsonValue(requests_healthz_.load()));
  routes.Set("/metrics", JsonValue(requests_metrics_.load()));
  routes.Set("/slo", JsonValue(requests_slo_.load()));
  routes.Set("/debug/tail-traces", JsonValue(requests_tail_traces_.load()));
  routes.Set(model_route_, JsonValue(requests_predictions_.load()));
  routes.Set("other", JsonValue(requests_other_.load()));
  metrics.Set("requests_by_route", std::move(routes));
  return metrics.Dump();
}

std::string EtudeServe::PrometheusMetrics() {
  obs::PrometheusWriter writer;
  writer.Counter("etude_predictions_total",
                 "Successful predictions served.",
                 static_cast<double>(predictions_served_.load()));
  const char* route_help = "Requests received, by route.";
  writer.Counter("etude_requests_total", route_help,
                 static_cast<double>(requests_healthz_.load()),
                 "route=\"/healthz\"");
  writer.Counter("etude_requests_total", route_help,
                 static_cast<double>(requests_metrics_.load()),
                 "route=\"/metrics\"");
  writer.Counter("etude_requests_total", route_help,
                 static_cast<double>(requests_slo_.load()),
                 "route=\"/slo\"");
  writer.Counter("etude_requests_total", route_help,
                 static_cast<double>(requests_tail_traces_.load()),
                 "route=\"/debug/tail-traces\"");
  writer.Counter("etude_requests_total", route_help,
                 static_cast<double>(requests_predictions_.load()),
                 "route=\"" + model_route_ + "\"");
  writer.Counter("etude_requests_total", route_help,
                 static_cast<double>(requests_other_.load()),
                 "route=\"other\"");
  const char* error_help = "Error responses, by status class.";
  writer.Counter("etude_http_errors_total", error_help,
                 static_cast<double>(errors_4xx_.load()),
                 "class=\"4xx\"");
  writer.Counter("etude_http_errors_total", error_help,
                 static_cast<double>(errors_5xx_.load()),
                 "class=\"5xx\"");
  writer.Gauge("etude_uptime_seconds",
               "Seconds since the server started.", UptimeSeconds());
  writer.Gauge("etude_model_catalog_size",
               "Catalog size (C) of the served model.",
               static_cast<double>(model_->config().catalog_size));
  writer.Gauge("etude_exec_config_info",
               "Execution mode and memory plan serving predictions.", 1.0,
               std::string("mode=\"") + ExecModeName(config_.exec.mode) +
                   "\",plan=\"" + ExecPlanName(config_.exec.plan) + "\"");
  writer.Gauge("etude_tensor_threads",
               "Worker threads available to the tensor kernels.",
               static_cast<double>(NumThreads()));
  const obs::WindowSnapshot window = slo_monitor_.Snapshot();
  if (window.enabled) {
    const char* window_help =
        "Sliding-window end-to-end prediction latency quantile.";
    writer.Gauge("etude_slo_window_latency_us", window_help,
                 static_cast<double>(window.latency.p50),
                 "quantile=\"p50\"");
    writer.Gauge("etude_slo_window_latency_us", window_help,
                 static_cast<double>(window.latency.p90),
                 "quantile=\"p90\"");
    writer.Gauge("etude_slo_window_latency_us", window_help,
                 static_cast<double>(window.latency.p99),
                 "quantile=\"p99\"");
    writer.Gauge("etude_slo_target_p90_us",
                 "Configured p90 latency target (--slo-p90-us).",
                 static_cast<double>(window.slo_p90_us));
    writer.Gauge("etude_slo_window_throughput_rps",
                 "Predictions per second over the sliding window.",
                 window.throughput_rps);
    writer.Gauge("etude_slo_window_error_rate",
                 "Error fraction over the sliding window.",
                 window.error_rate);
    writer.Gauge("etude_slo_burn_rate",
                 "Error-budget burn multiplier against the p90 target "
                 "(1.0 = burning exactly the allowed 10%).",
                 window.burn_rate);
    for (const obs::PhaseWindow& phase : window.phases) {
      writer.Gauge("etude_slo_phase_p90_us",
                   "Sliding-window p90 of one request phase.",
                   static_cast<double>(phase.summary.p90),
                   "phase=\"" + phase.name + "\"");
    }
  }
  const obs::MemStats mem = obs::ProcessMemStats();
  writer.Counter("etude_tensor_allocated_bytes_total",
                 "Bytes of tensor buffers allocated since start.",
                 static_cast<double>(mem.allocated_bytes));
  writer.Counter("etude_tensor_freed_bytes_total",
                 "Bytes of tensor buffers freed since start.",
                 static_cast<double>(mem.freed_bytes));
  writer.Gauge("etude_tensor_live_bytes",
               "Bytes of tensor buffers currently alive.",
               static_cast<double>(mem.live_bytes));
  writer.Gauge("etude_tensor_peak_live_bytes",
               "High-water mark of live tensor bytes.",
               static_cast<double>(mem.peak_live_bytes));
  writer.Gauge("etude_process_rss_bytes",
               "Resident set size of the process.",
               static_cast<double>(obs::ProcessRssBytes()));
  {
    MutexLock lock(stats_mutex_);
    writer.Histogram("etude_inference_latency_us",
                     "Server-side inference latency in microseconds.",
                     inference_latency_us_);
  }
  return writer.text();
}

std::string EtudeServe::JsonSlo() {
  const obs::WindowSnapshot window = slo_monitor_.Snapshot();
  JsonValue root = JsonValue::MakeObject();
  root.Set("enabled", JsonValue(window.enabled));
  root.Set("window_seconds", JsonValue(window.window_seconds));
  root.Set("covered_seconds", JsonValue(window.covered_seconds));
  root.Set("requests", JsonValue(window.requests));
  root.Set("errors", JsonValue(window.errors));
  root.Set("throughput_rps", JsonValue(window.throughput_rps));
  root.Set("error_rate", JsonValue(window.error_rate));

  JsonValue slo = JsonValue::MakeObject();
  slo.Set("target_p90_us", JsonValue(window.slo_p90_us));
  slo.Set("window_p90_us", JsonValue(window.latency.p90));
  slo.Set("violations", JsonValue(window.slo_violations));
  slo.Set("violation_rate", JsonValue(window.violation_rate));
  slo.Set("burn_rate", JsonValue(window.burn_rate));
  slo.Set("met", JsonValue(window.latency.p90 <= window.slo_p90_us));
  root.Set("slo", std::move(slo));

  root.Set("latency_us", SummaryJson(window.latency));

  // Tail-latency attribution: windowed per-phase percentiles answer
  // "where do the slow requests spend time"; `share_of_total` is the
  // phase's fraction of all request time in the window.
  JsonValue phases = JsonValue::MakeObject();
  for (const obs::PhaseWindow& phase : window.phases) {
    JsonValue entry = SummaryJson(phase.summary);
    const double share =
        window.latency.sum > 0
            ? static_cast<double>(phase.summary.sum) /
                  static_cast<double>(window.latency.sum)
            : 0.0;
    entry.Set("share_of_total", JsonValue(share));
    phases.Set(phase.name, std::move(entry));
  }
  root.Set("phases", std::move(phases));

  JsonValue slowest = JsonValue::MakeArray();
  for (const obs::TailExemplar& exemplar : window.slowest) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("trace_id", JsonValue(exemplar.trace_id));
    entry.Set("total_us", JsonValue(exemplar.total_us));
    entry.Set("ok", JsonValue(exemplar.ok));
    JsonValue exemplar_phases = JsonValue::MakeObject();
    for (const obs::PhaseSpan& phase : exemplar.phases) {
      JsonValue span = JsonValue::MakeObject();
      span.Set("start_us", JsonValue(phase.start_us));
      span.Set("dur_us", JsonValue(phase.dur_us));
      exemplar_phases.Set(phase.name, std::move(span));
    }
    entry.Set("phases", std::move(exemplar_phases));
    slowest.Append(std::move(entry));
  }
  root.Set("slowest", std::move(slowest));
  return root.Dump();
}

net::HttpResponse EtudeServe::HandleSlo() {
  if (!obs::kSloMonitorCompiled) return TracingDisabledResponse("/slo");
  return net::HttpResponse::Ok(JsonSlo());
}

net::HttpResponse EtudeServe::HandleTailTraces() {
  if (!obs::kSloMonitorCompiled) {
    return TracingDisabledResponse("/debug/tail-traces");
  }
  const obs::WindowSnapshot window = slo_monitor_.Snapshot();
  return net::HttpResponse::Ok(obs::TailTracesJson(window.slowest));
}

net::HttpResponse EtudeServe::HandleMetrics(const net::HttpRequest& request) {
  if (WantsPrometheus(request, config_.default_metrics_format)) {
    return net::HttpResponse::Ok(PrometheusMetrics(),
                                 "text/plain; version=0.0.4");
  }
  return net::HttpResponse::Ok(JsonMetrics());
}

net::HttpResponse EtudeServe::HandlePrediction(
    const net::HttpRequest& request, const std::string& trace_id) {
  const auto request_start = std::chrono::steady_clock::now();
  obs::RequestSample sample;
  sample.trace_id = trace_id;
  net::HttpResponse response =
      PredictionInner(request, trace_id, request_start, &sample);
  sample.total_us = ElapsedUs(request_start);
  sample.ok = response.status < 400;
  slo_monitor_.Record(std::move(sample));
  return response;
}

net::HttpResponse EtudeServe::PredictionInner(
    const net::HttpRequest& request, const std::string& trace_id,
    const std::chrono::steady_clock::time_point request_start,
    obs::RequestSample* sample) {
  ETUDE_TRACE_SPAN_ID(model_route_.c_str(), "server", trace_id);
  // Each phase is timed explicitly (not via the tracer) so the SLO
  // monitor's attribution works with the tracer disabled — the common
  // production configuration.
  const auto phase = [&](const char* name, int64_t start_us) {
    sample->phases.push_back(
        obs::PhaseSpan{name, start_us, ElapsedUs(request_start) - start_us});
  };

  std::vector<int64_t> session;
  {
    ETUDE_TRACE_SPAN_ID("parse", "server", trace_id);
    const int64_t parse_start = ElapsedUs(request_start);
    Result<JsonValue> body = ParseJson(request.body);
    if (!body.ok() || !body->is_object() ||
        !body->Get("session").is_array()) {
      phase("parse", parse_start);
      return net::HttpResponse::Error(
          400, "body must be a JSON object with a 'session' array");
    }
    for (const JsonValue& item : body->Get("session").items()) {
      if (!item.is_number()) {
        phase("parse", parse_start);
        return net::HttpResponse::Error(400,
                                        "session items must be numbers");
      }
      session.push_back(item.as_int());
    }
    phase("parse", parse_start);
  }

  const int64_t inference_start = ElapsedUs(request_start);
  Result<models::Recommendation> rec = [&] {
    ETUDE_TRACE_SPAN_ID("inference", "server", trace_id);
    return model_->Recommend(session, config_.exec);
  }();
  phase("inference", inference_start);
  if (!rec.ok()) {
    const int status =
        rec.status().code() == StatusCode::kInvalidArgument ||
                rec.status().code() == StatusCode::kOutOfRange
            ? 400
            : 500;
    return net::HttpResponse::Error(status, rec.status().ToString());
  }
  const int64_t inference_us = ElapsedUs(request_start) - inference_start;
  predictions_served_.fetch_add(1);
  {
    MutexLock lock(stats_mutex_);
    inference_latency_us_.Record(inference_us);
  }

  net::HttpResponse response;
  {
    ETUDE_TRACE_SPAN_ID("serialize", "server", trace_id);
    const int64_t serialize_start = ElapsedUs(request_start);
    response = net::HttpResponse::Ok(RecommendationToJson(*rec));
    phase("serialize", serialize_start);
  }
  // The inference-duration metric travels in a response header, as in the
  // paper's benchmark execution design (Sec. II).
  response.headers["x-inference-us"] = std::to_string(inference_us);
  return response;
}

}  // namespace etude::serving

#include "serving/etude_serve.h"

#include "common/json.h"
#include "common/strings.h"

namespace etude::serving {

namespace {
std::string RecommendationToJson(const models::Recommendation& rec) {
  JsonValue root = JsonValue::MakeObject();
  JsonValue items = JsonValue::MakeArray();
  JsonValue scores = JsonValue::MakeArray();
  for (size_t i = 0; i < rec.items.size(); ++i) {
    items.Append(JsonValue(rec.items[i]));
    scores.Append(JsonValue(static_cast<double>(rec.scores[i])));
  }
  root.Set("items", std::move(items));
  root.Set("scores", std::move(scores));
  return root.Dump();
}
}  // namespace

EtudeServe::EtudeServe(const models::SessionModel* model,
                       const EtudeServeConfig& config)
    : model_(model) {
  ETUDE_CHECK(model_ != nullptr) << "model required";
  model_route_ = "/predictions/" + ToLower(model_->name());
  net::HttpServerConfig server_config;
  server_config.bind_address = config.bind_address;
  server_config.port = config.port;
  server_config.worker_threads = config.worker_threads;
  server_ = std::make_unique<net::HttpServer>(
      server_config,
      [this](const net::HttpRequest& request) { return Handle(request); });
}

Status EtudeServe::Start() { return server_->Start(); }

void EtudeServe::Stop() { server_->Stop(); }

net::HttpResponse EtudeServe::Handle(const net::HttpRequest& request) {
  if (request.target == "/healthz") {
    // Readiness probe: the model is loaded at construction time, so the
    // pod reports ready as soon as the server accepts connections.
    return net::HttpResponse::Ok("{\"status\":\"ready\"}");
  }
  if (request.target == "/metrics") {
    JsonValue metrics = JsonValue::MakeObject();
    const int64_t served = predictions_served_.load();
    metrics.Set("predictions_served", JsonValue(served));
    {
      MutexLock lock(stats_mutex_);
      metrics.Set("mean_inference_us",
                  JsonValue(inference_latency_us_.mean()));
      metrics.Set("p50_inference_us", JsonValue(inference_latency_us_.p50()));
      metrics.Set("p90_inference_us", JsonValue(inference_latency_us_.p90()));
      metrics.Set("p99_inference_us", JsonValue(inference_latency_us_.p99()));
    }
    metrics.Set("model", JsonValue(std::string(model_->name())));
    metrics.Set("catalog_size",
                JsonValue(model_->config().catalog_size));
    return net::HttpResponse::Ok(metrics.Dump());
  }
  if (request.target == model_route_) {
    if (request.method != "POST") {
      return net::HttpResponse::Error(405, "use POST");
    }
    return HandlePrediction(request);
  }
  return net::HttpResponse::Error(404, "no such route");
}

net::HttpResponse EtudeServe::HandlePrediction(
    const net::HttpRequest& request) {
  Result<JsonValue> body = ParseJson(request.body);
  if (!body.ok() || !body->is_object() || !body->Get("session").is_array()) {
    return net::HttpResponse::Error(
        400, "body must be a JSON object with a 'session' array");
  }
  std::vector<int64_t> session;
  for (const JsonValue& item : body->Get("session").items()) {
    if (!item.is_number()) {
      return net::HttpResponse::Error(400, "session items must be numbers");
    }
    session.push_back(item.as_int());
  }
  const auto start = std::chrono::steady_clock::now();
  Result<models::Recommendation> rec = model_->Recommend(session);
  const auto end = std::chrono::steady_clock::now();
  if (!rec.ok()) {
    const int status =
        rec.status().code() == StatusCode::kInvalidArgument ||
                rec.status().code() == StatusCode::kOutOfRange
            ? 400
            : 500;
    return net::HttpResponse::Error(status, rec.status().ToString());
  }
  const int64_t inference_us =
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count();
  predictions_served_.fetch_add(1);
  {
    MutexLock lock(stats_mutex_);
    inference_latency_us_.Record(inference_us);
  }

  net::HttpResponse response =
      net::HttpResponse::Ok(RecommendationToJson(*rec));
  // The inference-duration metric travels in a response header, as in the
  // paper's benchmark execution design (Sec. II).
  response.headers["x-inference-us"] = std::to_string(inference_us);
  return response;
}

}  // namespace etude::serving

#ifndef ETUDE_SERVING_SIM_SERVER_H_
#define ETUDE_SERVING_SIM_SERVER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "models/session_model.h"
#include "serving/pod_telemetry.h"
#include "serving/request.h"
#include "sim/device.h"
#include "sim/simulation.h"

namespace etude::serving {

/// Request-batching configuration of the ETUDE inference server: on GPUs,
/// requests are buffered for up to `flush_interval_us` and executed
/// together in batches of at most `max_batch_size` (the paper uses 1,024
/// requests / 2 ms).
struct BatchingConfig {
  int max_batch_size = 1024;
  int64_t flush_interval_us = 2000;
};

/// Configuration of a simulated ETUDE inference server instance.
struct SimServerConfig {
  sim::DeviceSpec device = sim::DeviceSpec::Cpu();
  models::ExecutionMode mode = models::ExecutionMode::kJit;
  BatchingConfig batching;
  // Framework overhead of the Actix-based server per request (parsing,
  // routing, serialisation) — measured at well under a millisecond in the
  // paper's infra test.
  double framework_overhead_us = 150.0;
  // Requests queued beyond this bound are rejected with HTTP 503. Sized so
  // the backpressure-aware load generator, not the server, is the normal
  // regulator.
  int64_t max_queue_depth = 8192;
  // Lognormal jitter (sigma) applied to every service time.
  double jitter_sigma = 0.08;
  // When true (and the model supports it), inference is executed for real
  // on the CPU tensor engine and responses carry actual recommendations.
  // Used by functional tests at small catalog sizes.
  bool functional_inference = false;
  // Analytic batching: run the batch-formation path on ANY device (not
  // just batching GPUs) and price each batch with the model's batched
  // plan polynomials (SessionModel::BatchedCostModel through
  // SerialInferenceUs) instead of the calibrated batch_share heuristic.
  // This is the execution mode the static SLO-feasibility linter
  // (core/slo_feasibility.h) reasons about, so linter verdicts and DES
  // measurements share one cost model. Batches run on executor_slots()
  // concurrent executors (worker_slots on CPUs, 1 on batching GPUs).
  bool analytic_batching = false;
  uint64_t seed = 7;
};

/// The ETUDE inference server (the paper's Rust/Actix + tch-rs +
/// batched-fn stack), simulated in virtual time.
///
/// CPU instances run `device.worker_slots` independent workers, each
/// serving one request at a time from a shared FIFO queue. GPU instances
/// run a single executor fed by the request-batching stage. Service times
/// come from the device cost model applied to the model's per-request
/// InferenceWork.
class SimInferenceServer : public InferenceService {
 public:
  /// `sim` and `model` must outlive the server.
  SimInferenceServer(sim::Simulation* sim, const models::SessionModel* model,
                     const SimServerConfig& config);

  void HandleRequest(const InferenceRequest& request,
                     ResponseCallback callback) override;

  /// Number of requests currently queued or executing.
  int64_t pending() const { return pending_; }

  /// Total requests rejected with 503 due to queue overflow.
  int64_t rejected() const { return rejected_; }

  const SimServerConfig& config() const { return config_; }

  /// Per-pod telemetry: registry counters/gauges/latency histogram plus
  /// the per-virtual-second timeline. Always on — this is metrics, not
  /// tracing, and costs a few samples per request.
  const PodTelemetry& telemetry() const { return telemetry_; }

  /// Parallel executor slots for utilization accounting: `worker_slots`
  /// independent CPU workers, or the single batched GPU executor.
  int executor_slots() const {
    return config_.device.is_gpu() && config_.device.supports_batching
               ? 1
               : config_.device.worker_slots;
  }

  /// Whether requests flow through the batch-formation path (batching
  /// GPUs always; any device under analytic_batching).
  bool uses_batching() const {
    return (config_.device.is_gpu() && config_.device.supports_batching) ||
           config_.analytic_batching;
  }

 private:
  struct PendingRequest {
    InferenceRequest request;
    ResponseCallback callback;
    int64_t enqueued_at_us;
  };

  // CPU path: FIFO queue drained by worker_slots workers.
  void StartCpuWorkerIfIdle();
  void RunCpuWorker();

  // Batched path: batch formation, then up to executor_slots() batch
  // executors (one on batching GPUs; worker_slots under CPU
  // analytic_batching).
  void FlushBatch();
  void RunBatchExecutor();
  double BatchServiceUs(const sim::InferenceWork& work, int batch_size) const;

  void Complete(PendingRequest* pending, int64_t inference_us);

  double JitteredUs(double base_us);
  double ServiceTimeUs(const InferenceRequest& request) const;

  // Virtual-time tracing (only on when the global obs::Tracer is enabled):
  // emits queue/framework/encode/catalog-scan spans per executed request or
  // batch on the virtual-clock trace process. CPU workers occupy lanes
  // (trace tids) so overlapping executions render side by side.
  int64_t AcquireTraceLane();
  void ReleaseTraceLane(int64_t lane);
  void TraceExecution(const PendingRequest& pending, int64_t lane,
                      double inference_us, int batch_size) const;

  sim::Simulation* sim_;
  const models::SessionModel* model_;
  SimServerConfig config_;
  Rng rng_;

  std::deque<PendingRequest> queue_;        // CPU FIFO
  int active_cpu_workers_ = 0;

  std::vector<PendingRequest> forming_batch_;
  sim::EventHandle flush_timer_;
  std::deque<std::vector<PendingRequest>> batch_queue_;
  int busy_batch_executors_ = 0;

  int64_t pending_ = 0;       // admitted: queued + executing
  int64_t in_execution_ = 0;  // currently executing (busy slots' requests)
  int64_t rejected_ = 0;
  PodTelemetry telemetry_;

  // Free-list lane allocator for trace tids of concurrent CPU workers.
  std::vector<int64_t> free_trace_lanes_;
  int64_t next_trace_lane_ = 0;
};

}  // namespace etude::serving

#endif  // ETUDE_SERVING_SIM_SERVER_H_

#include "serving/torchserve_sim.h"

#include <cmath>
#include <utility>

namespace etude::serving {

TorchServeSimServer::TorchServeSimServer(sim::Simulation* sim,
                                         const models::SessionModel* model,
                                         const TorchServeConfig& config)
    : sim_(sim), model_(model), config_(config), rng_(config.seed) {
  ETUDE_CHECK(sim_ != nullptr) << "simulation required";
  ETUDE_CHECK(config_.null_model || model_ != nullptr)
      << "model required unless null_model";
}

double TorchServeSimServer::JitteredUs(double base_us) {
  return base_us * std::exp(config_.jitter_sigma * rng_.NextGaussian());
}

void TorchServeSimServer::HandleRequest(const InferenceRequest& request,
                                        ResponseCallback callback) {
  if (pending_ >= config_.max_queue_depth) {
    InferenceResponse response;
    response.request_id = request.request_id;
    response.ok = false;
    response.http_status = 503;
    callback(response);
    return;
  }
  ++pending_;
  PendingRequest pending;
  pending.request = request;
  pending.callback = std::move(callback);
  pending.enqueued_at_us = sim_->now_us();
  queue_.push_back(std::move(pending));
  StartWorkersIfIdle();
}

void TorchServeSimServer::StartWorkersIfIdle() {
  while (active_workers_ < config_.device.worker_slots && !queue_.empty()) {
    ++active_workers_;
    RunWorker();
  }
}

void TorchServeSimServer::RunWorker() {
  ETUDE_CHECK(!queue_.empty()) << "worker started without work";
  auto pending = std::make_shared<PendingRequest>(std::move(queue_.front()));
  queue_.pop_front();

  const int64_t waited_us = sim_->now_us() - pending->enqueued_at_us;
  if (waited_us > config_.internal_timeout_us) {
    // Internal job timeout: the frontend answers with HTTP 500 after only
    // its own (cheap) handling.
    const double fail_us = JitteredUs(config_.frontend_overhead_us);
    sim_->Schedule(static_cast<int64_t>(fail_us), [this, pending] {
      InferenceResponse response;
      response.request_id = pending->request.request_id;
      response.ok = false;
      response.http_status = 500;
      --pending_;
      ++timeouts_;
      pending->callback(response);
      --active_workers_;
      StartWorkersIfIdle();
    });
    return;
  }

  double service_us = config_.frontend_overhead_us +
                      2.0 * config_.ipc_overhead_us +
                      config_.python_overhead_us;
  double inference_us = 0.0;
  if (!config_.null_model) {
    const sim::InferenceWork work = model_->CostModel(
        config_.mode,
        static_cast<int64_t>(pending->request.session_items.size()));
    inference_us = sim::SerialInferenceUs(config_.device, work);
    service_us += inference_us;
  }
  service_us = JitteredUs(service_us);
  sim_->Schedule(
      static_cast<int64_t>(service_us), [this, pending, inference_us] {
        InferenceResponse response;
        response.request_id = pending->request.request_id;
        response.ok = true;
        response.http_status = 200;
        response.inference_us = static_cast<int64_t>(inference_us);
        response.server_time_us = sim_->now_us() - pending->enqueued_at_us;
        --pending_;
        pending->callback(response);
        --active_workers_;
        StartWorkersIfIdle();
      });
}

}  // namespace etude::serving

#include "serving/static_server.h"

#include <cmath>

#include "common/logging.h"

namespace etude::serving {

StaticResponseServer::StaticResponseServer(sim::Simulation* sim,
                                           double service_us,
                                           double jitter_sigma,
                                           uint64_t seed)
    : sim_(sim),
      service_us_(service_us),
      jitter_sigma_(jitter_sigma),
      rng_(seed) {
  ETUDE_CHECK(sim_ != nullptr) << "simulation required";
}

void StaticResponseServer::HandleRequest(const InferenceRequest& request,
                                         ResponseCallback callback) {
  const double us =
      service_us_ * std::exp(jitter_sigma_ * rng_.NextGaussian());
  const int64_t request_id = request.request_id;
  sim_->Schedule(static_cast<int64_t>(us),
                 [this, request_id, callback = std::move(callback)] {
                   InferenceResponse response;
                   response.request_id = request_id;
                   response.ok = true;
                   response.http_status = 200;
                   ++served_;
                   callback(response);
                 });
}

}  // namespace etude::serving

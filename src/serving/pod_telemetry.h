#ifndef ETUDE_SERVING_POD_TELEMETRY_H_
#define ETUDE_SERVING_POD_TELEMETRY_H_

#include <cstdint>

#include "metrics/histogram.h"
#include "metrics/timeseries.h"
#include "obs/metric_registry.h"

namespace etude::serving {

/// Per-pod telemetry of one simulated inference server: a MetricRegistry
/// with the pod's counters/gauges/latency histogram, plus a per-virtual-
/// second TimeSeriesRecorder (queue depth sampled on every arrival and
/// departure, in-flight count, executor-busy time, windowed latency
/// percentiles).
///
/// Families are registered UNLABELED on purpose: merging the registry
/// snapshots of N pods with RegistrySnapshot::Merge then sums counters
/// and Merge()s histograms sample-by-sample, giving the exact fleet
/// aggregate (pod identity travels out-of-band, as the "pod" param of
/// the timeline series). The timeline uses the same TickStats schema the
/// real-server load generator emits through BenchReporter::AddTimeline,
/// so DES telemetry and loadtest output are byte-compatible.
class PodTelemetry {
 public:
  PodTelemetry();

  PodTelemetry(const PodTelemetry&) = delete;
  PodTelemetry& operator=(const PodTelemetry&) = delete;

  /// A request was admitted. `queue_depth` is the waiting-queue depth and
  /// `in_flight` the total admitted (queued + executing) count, both
  /// sampled AFTER admission.
  void OnArrival(int64_t now_us, int64_t queue_depth, int64_t in_flight);

  /// A request was rejected (503 queue overflow).
  void OnReject(int64_t now_us);

  /// A request finished. Depth/in-flight are sampled after departure.
  void OnComplete(int64_t now_us, int64_t server_time_us, bool ok,
                  int64_t queue_depth, int64_t in_flight);

  /// Accounts [start_us, end_us) of executor busy time, split across the
  /// one-second ticks it overlaps.
  void AddBusyInterval(int64_t start_us, int64_t end_us);

  /// Consistent snapshot of the pod's registry (fleet aggregation input).
  obs::RegistrySnapshot MetricsSnapshot() const {
    return registry_.Snapshot();
  }

  /// The pod's latency distribution (successful requests, microseconds).
  metrics::LatencyHistogram LatencyUs() const {
    return latency_us_->Merged();
  }

  /// The per-second timeline with per-tick utilization computed for
  /// `executor_slots` parallel executors.
  metrics::TimeSeriesRecorder FinalizedTimeline(int executor_slots) const;

  const metrics::TimeSeriesRecorder& timeline() const { return timeline_; }

 private:
  obs::MetricRegistry registry_;
  obs::Counter* requests_total_;
  obs::Counter* responses_ok_total_;
  obs::Counter* errors_total_;
  obs::Counter* rejected_total_;
  obs::Histogram* latency_us_;
  obs::Gauge* queue_depth_;
  obs::Gauge* in_flight_;
  metrics::TimeSeriesRecorder timeline_;
};

}  // namespace etude::serving

#endif  // ETUDE_SERVING_POD_TELEMETRY_H_

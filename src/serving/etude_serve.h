#ifndef ETUDE_SERVING_ETUDE_SERVE_H_
#define ETUDE_SERVING_ETUDE_SERVE_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "metrics/histogram.h"
#include "models/session_model.h"
#include "net/http_server.h"

namespace etude::serving {

/// Configuration of the real (in-process, socket-backed) ETUDE inference
/// server.
struct EtudeServeConfig {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;       // 0 = ephemeral
  int worker_threads = 4;  // inference workers, as in the paper's server
};

/// EtudeServe: the paper's Rust/Actix inference server as a working C++
/// HTTP service, performing genuine CPU inference on the tensor engine.
///
/// Routes:
///   GET  /healthz                 -> 200 once the model is loaded
///                                    (the Kubernetes readiness probe)
///   GET  /metrics                 -> request counters and inference
///                                    latency percentiles (JSON)
///   POST /predictions/<model>     -> body {"session":[item ids]}
///        answers {"items":[...],"scores":[...]} and reports the inference
///        duration via the "x-inference-us" response header, exactly as
///        the paper's server communicates metrics to the load generator.
class EtudeServe {
 public:
  /// `model` must outlive the server.
  EtudeServe(const models::SessionModel* model,
             const EtudeServeConfig& config);

  Status Start();
  void Stop();

  uint16_t port() const { return server_->port(); }
  int64_t predictions_served() const { return predictions_served_.load(); }

 private:
  net::HttpResponse Handle(const net::HttpRequest& request)
      ETUDE_EXCLUDES(stats_mutex_);
  net::HttpResponse HandlePrediction(const net::HttpRequest& request)
      ETUDE_EXCLUDES(stats_mutex_);

  const models::SessionModel* model_;
  std::string model_route_;  // "/predictions/<name>"
  std::unique_ptr<net::HttpServer> server_;
  std::atomic<int64_t> predictions_served_{0};

  // Inference-latency distribution, recorded by every worker thread and
  // read by /metrics (the quantity the paper's load generator collects).
  mutable Mutex stats_mutex_;
  metrics::LatencyHistogram inference_latency_us_
      ETUDE_GUARDED_BY(stats_mutex_);
};

}  // namespace etude::serving

#endif  // ETUDE_SERVING_ETUDE_SERVE_H_

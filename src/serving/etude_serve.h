#ifndef ETUDE_SERVING_ETUDE_SERVE_H_
#define ETUDE_SERVING_ETUDE_SERVE_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>

#include "common/status.h"
#include "models/session_model.h"
#include "net/http_server.h"
#include "obs/metric_registry.h"
#include "obs/slo_monitor.h"

namespace etude::serving {

/// /metrics exposition formats. The JSON format is the original one the
/// load generator consumes; the Prometheus text format (0.0.4) serves
/// standard scrapers. Requests choose per-call via the Accept header
/// ("text/plain" or "application/openmetrics-text" selects Prometheus) or
/// a "?format=prometheus|json" query; `MetricsFormat` is only the default
/// when the request expresses no preference.
enum class MetricsFormat { kJson, kPrometheus };

/// Configuration of the real (in-process, socket-backed) ETUDE inference
/// server.
struct EtudeServeConfig {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;       // 0 = ephemeral
  int worker_threads = 4;  // inference workers, as in the paper's server
  MetricsFormat default_metrics_format = MetricsFormat::kJson;
  // Execution mode and memory plan every prediction runs under. With
  // ExecPlanKind::kArena each worker replays the model's compiled arena
  // script instead of per-op heap allocation.
  models::ExecOptions exec;
  // Sliding-window SLO monitor: window width, the p90 latency target the
  // burn rate is computed against (--slo-p90-us), and how many
  // slowest-request exemplars each one-second bucket retains. Ignored in
  // ETUDE_DISABLE_TRACING builds (the monitor compiles out).
  obs::SloMonitorConfig slo;
};

/// EtudeServe: the paper's Rust/Actix inference server as a working C++
/// HTTP service, performing genuine CPU inference on the tensor engine.
///
/// Routes:
///   GET  /healthz                 -> 200 once the model is loaded, with
///                                    uptime/model/exec-config JSON (the
///                                    Kubernetes readiness probe, also
///                                    used by `etude loadtest` and the
///                                    future autoscaler)
///   GET  /metrics                 -> request counters, error counters,
///                                    uptime, cumulative inference-latency
///                                    distribution and windowed SLO
///                                    gauges; JSON by default, Prometheus
///                                    text format under
///                                    `Accept: text/plain`. Both formats
///                                    render from one obs::MetricRegistry
///                                    snapshot, so they cannot drift.
///   GET  /slo                     -> sliding-window view: p50/p90/p99,
///                                    throughput, error rate, burn rate
///                                    against the configured p90 target,
///                                    per-phase (queue/parse/inference/
///                                    serialize) percentiles, and the
///                                    slowest-request exemplars
///   GET  /debug/tail-traces       -> the retained span trees of the
///                                    window's slowest requests as
///                                    Chrome trace-event JSON
///   POST /predictions/<model>     -> body {"session":[item ids]}
///        answers {"items":[...],"scores":[...]} and reports the inference
///        duration via the "x-inference-us" response header, exactly as
///        the paper's server communicates metrics to the load generator.
///
/// Every response carries an "x-trace-id" header. When the client sends
/// its own "x-trace-id" the server ADOPTS it (and echoes any
/// "x-parent-span" back), so a load generator's trace ids correlate
/// client-side latencies with the server's tail exemplars across the
/// network hop; otherwise the server mints "req-<n>". When the global
/// obs::Tracer is enabled, the prediction path additionally records
/// request-scoped parse/inference/serialize spans tagged with that id.
/// The same phases — plus the accept-to-handler "queue" phase measured by
/// the HTTP server — are always aggregated into the SLO monitor's
/// per-phase windowed percentiles (unless compiled out).
class EtudeServe {
 public:
  /// `model` must outlive the server.
  EtudeServe(const models::SessionModel* model,
             const EtudeServeConfig& config);

  Status Start();
  void Stop();

  uint16_t port() const { return server_->port(); }
  int64_t predictions_served() const { return predictions_served_->value(); }
  int64_t errors_4xx() const { return errors_4xx_->value(); }
  int64_t errors_5xx() const { return errors_5xx_->value(); }

  /// The live sliding-window view (empty/disabled when compiled out).
  /// Exposed for in-process embedding (tests, `--tail-trace-out`).
  obs::WindowSnapshot SloSnapshot() const { return slo_monitor_.Snapshot(); }

  /// One consistent snapshot of every server metric, with scrape-time
  /// gauges (uptime, memory, SLO window) refreshed first. Both /metrics
  /// formats render from this.
  obs::RegistrySnapshot MetricsSnapshot();

 private:
  net::HttpResponse Handle(const net::HttpRequest& request);
  net::HttpResponse Route(const net::HttpRequest& request,
                          const std::string& trace_id);
  net::HttpResponse HandleHealthz();
  net::HttpResponse HandleMetrics(const net::HttpRequest& request);
  net::HttpResponse HandleSlo();
  net::HttpResponse HandleTailTraces();
  net::HttpResponse HandlePrediction(const net::HttpRequest& request,
                                     const std::string& trace_id);
  /// The prediction body: fills `sample`'s phases as it goes; the caller
  /// stamps total/outcome and records the sample.
  net::HttpResponse PredictionInner(
      const net::HttpRequest& request, const std::string& trace_id,
      std::chrono::steady_clock::time_point request_start,
      obs::RequestSample* sample);

  std::string JsonSlo();

  double UptimeSeconds() const;

  const models::SessionModel* model_;
  std::string model_route_;  // "/predictions/<name>"
  EtudeServeConfig config_;
  std::unique_ptr<net::HttpServer> server_;
  std::chrono::steady_clock::time_point started_at_;

  std::atomic<int64_t> next_trace_id_{0};

  // The single source of truth for /metrics: every counter, gauge,
  // histogram and info string lives here; handles below are stable
  // pointers into it. Recording is lock-free (counters/gauges) or
  // lock-sharded (histograms).
  obs::MetricRegistry registry_;
  obs::Counter* predictions_served_;
  obs::Counter* requests_healthz_;
  obs::Counter* requests_metrics_;
  obs::Counter* requests_slo_;
  obs::Counter* requests_tail_traces_;
  obs::Counter* requests_predictions_;
  obs::Counter* requests_other_;
  obs::Counter* errors_4xx_;
  obs::Counter* errors_5xx_;
  obs::Histogram* inference_latency_us_;
  obs::Histogram* queue_delay_us_;

  // Sliding-window SLO/latency view over the prediction path. Internally
  // per-second-bucket locked; safe from all worker threads.
  obs::SloMonitor slo_monitor_;
};

}  // namespace etude::serving

#endif  // ETUDE_SERVING_ETUDE_SERVE_H_

#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace etude::net {

namespace {
uint32_t ToEpollMask(IoEvents interest) {
  uint32_t mask = 0;
  if (interest.readable) mask |= EPOLLIN;
  if (interest.writable) mask |= EPOLLOUT;
  return mask;
}
}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  ETUDE_CHECK(epoll_fd_ >= 0) << "epoll_create1: " << std::strerror(errno);
  wakeup_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  ETUDE_CHECK(wakeup_fd_ >= 0) << "eventfd: " << std::strerror(errno);
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = wakeup_fd_;
  ETUDE_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &event) == 0)
      << "epoll_ctl(wakeup): " << std::strerror(errno);
}

EventLoop::~EventLoop() {
  if (wakeup_fd_ >= 0) close(wakeup_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

Status EventLoop::RegisterFd(int fd, IoEvents interest, IoCallback callback) {
  epoll_event event{};
  event.events = ToEpollMask(interest);
  event.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
    return Status::IoError(std::string("epoll_ctl(add): ") +
                           std::strerror(errno));
  }
  callbacks_[fd] = std::move(callback);
  return Status::OK();
}

Status EventLoop::UpdateFd(int fd, IoEvents interest) {
  epoll_event event{};
  event.events = ToEpollMask(interest);
  event.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) != 0) {
    return Status::IoError(std::string("epoll_ctl(mod): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status EventLoop::DeregisterFd(int fd) {
  callbacks_.erase(fd);
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
    return Status::IoError(std::string("epoll_ctl(del): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

void EventLoop::Post(Task task) {
  {
    MutexLock lock(tasks_mutex_);
    posted_tasks_.push_back(std::move(task));
  }
  Wakeup();
}

void EventLoop::Wakeup() {
  const uint64_t one = 1;
  // A failed wakeup only delays task processing until the next IO event.
  [[maybe_unused]] const ssize_t written =
      write(wakeup_fd_, &one, sizeof(one));
}

void EventLoop::DrainPostedTasks() {
  std::deque<Task> tasks;
  {
    MutexLock lock(tasks_mutex_);
    tasks.swap(posted_tasks_);
  }
  for (Task& task : tasks) task();
}

void EventLoop::Run() {
  running_.store(true);
  std::vector<epoll_event> events(256);
  while (!stop_requested_.load()) {
    const int ready =
        epoll_wait(epoll_fd_, events.data(),
                   static_cast<int>(events.size()), /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      ETUDE_LOG(Error) << "epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < ready; ++i) {
      const int fd = events[static_cast<size_t>(i)].data.fd;
      const uint32_t mask = events[static_cast<size_t>(i)].events;
      if (fd == wakeup_fd_) {
        uint64_t value = 0;
        [[maybe_unused]] const ssize_t bytes =
            read(wakeup_fd_, &value, sizeof(value));
        continue;
      }
      const auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) continue;  // deregistered meanwhile
      IoEvents io;
      io.readable = (mask & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0;
      io.writable = (mask & EPOLLOUT) != 0;
      it->second(io);
    }
    DrainPostedTasks();
  }
  DrainPostedTasks();
  running_.store(false);
  stop_requested_.store(false);
}

void EventLoop::Stop() {
  stop_requested_.store(true);
  Wakeup();
}

}  // namespace etude::net

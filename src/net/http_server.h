#ifndef ETUDE_NET_HTTP_SERVER_H_
#define ETUDE_NET_HTTP_SERVER_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/event_loop.h"
#include "net/http.h"

namespace etude::net {

/// Configuration of the HTTP server.
struct HttpServerConfig {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;      // 0 = ephemeral port, see HttpServer::port()
  int worker_threads = 4; // inference worker pool size (configurable, as
                          // in the paper's server)
};

/// A lightweight non-blocking HTTP/1.1 inference server: an epoll reactor
/// on one IO thread plus a pool of worker threads executing the request
/// handler — the C++ equivalent of the paper's Actix/tch-rs server.
///
/// The handler runs on a worker thread; the response is serialised and
/// written back from the IO thread. Keep-alive and pipelining are
/// supported; malformed requests are answered 400 and the connection
/// closed.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(const HttpServerConfig& config, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens and starts the IO and worker threads.
  Status Start();

  /// Stops the server and joins all threads. Idempotent.
  void Stop();

  /// The bound port (valid after Start(); useful with port = 0).
  uint16_t port() const { return port_; }

  /// Total requests answered (any status).
  int64_t requests_served() const { return requests_served_.load(); }

 private:
  struct Connection {
    int fd = -1;
    HttpRequestParser parser;
    std::string outbox;        // bytes waiting for the socket
    bool close_after_write = false;
    bool handler_running = false;
    bool error_sent = false;  // a 400 is queued; ignore further bytes
  };

  void AcceptConnections();
  void OnConnectionEvent(int fd, IoEvents events);
  void ReadFromConnection(Connection* connection);
  void WriteToConnection(Connection* connection);
  void CloseConnection(int fd);
  void DispatchToWorker(Connection* connection) ETUDE_EXCLUDES(jobs_mutex_);
  void WorkerMain() ETUDE_EXCLUDES(jobs_mutex_);
  void QueueResponse(int fd, const HttpResponse& response, bool keep_alive);

  HttpServerConfig config_;
  Handler handler_;
  EventLoop loop_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread io_thread_;
  std::vector<std::thread> workers_;
  // IO-thread-confined: only touched from loop_ callbacks and tasks
  // Post()ed to the loop; never needs a lock.
  std::map<int, std::unique_ptr<Connection>> connections_;
  std::atomic<int64_t> requests_served_{0};
  std::atomic<bool> started_{false};

  // Worker queue: (connection fd, parsed request).
  struct Job {
    int fd;
    HttpRequest request;
    bool keep_alive;
    // When the IO thread enqueued the job; the worker turns the wait into
    // the request's queue_delay_us (the SLO monitor's "queue" phase).
    std::chrono::steady_clock::time_point enqueued_at;
  };
  // Outermost lock of the serving path's declared lock order: a worker
  // never holds the dispatch queue while recording telemetry (SloMonitor
  // ring buckets, metric-registry locks), and telemetry locks are never
  // held while enqueueing. The ordering edges let -Wthread-safety flag
  // inversions once the batching scheduler starts nesting these.
  Mutex jobs_mutex_
      ETUDE_ACQUIRED_BEFORE("obs::SloMonitor::Bucket::mutex",
                            "obs::MetricRegistry::mutex_");
  CondVar jobs_cv_;
  std::deque<Job> jobs_ ETUDE_GUARDED_BY(jobs_mutex_);
  bool workers_should_exit_ ETUDE_GUARDED_BY(jobs_mutex_) = false;
};

}  // namespace etude::net

#endif  // ETUDE_NET_HTTP_SERVER_H_

#include "net/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"

namespace etude::net {

namespace {
Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError(std::string("fcntl: ") + std::strerror(errno));
  }
  return Status::OK();
}
}  // namespace

HttpServer::HttpServer(const HttpServerConfig& config, Handler handler)
    : config_(config), handler_(std::move(handler)) {
  ETUDE_CHECK(handler_ != nullptr) << "handler required";
  ETUDE_CHECK(config_.worker_threads >= 1) << "need >= 1 worker";
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (started_.load()) return Status::FailedPrecondition("already started");

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(config_.port);
  if (inet_pton(AF_INET, config_.bind_address.c_str(),
                &address.sin_addr) != 1) {
    close(listen_fd_);
    return Status::InvalidArgument("bad bind address " +
                                   config_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
           sizeof(address)) != 0) {
    close(listen_fd_);
    return Status::IoError(std::string("bind: ") + std::strerror(errno));
  }
  if (listen(listen_fd_, 1024) != 0) {
    close(listen_fd_);
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t length = sizeof(address);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address), &length);
  port_ = ntohs(address.sin_port);
  ETUDE_RETURN_NOT_OK(SetNonBlocking(listen_fd_));
  ETUDE_RETURN_NOT_OK(loop_.RegisterFd(
      listen_fd_, IoEvents{.readable = true, .writable = false},
      [this](IoEvents) { AcceptConnections(); }));

  {
    MutexLock lock(jobs_mutex_);
    workers_should_exit_ = false;
  }
  for (int i = 0; i < config_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
  io_thread_ = std::thread([this] { loop_.Run(); });
  started_.store(true);
  return Status::OK();
}

void HttpServer::Stop() {
  if (!started_.exchange(false)) return;
  {
    MutexLock lock(jobs_mutex_);
    workers_should_exit_ = true;
  }
  jobs_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  loop_.Post([this] {
    for (auto& [fd, connection] : connections_) {
      (void)loop_.DeregisterFd(fd);
      close(fd);
      (void)connection;
    }
    connections_.clear();
  });
  loop_.Stop();
  if (io_thread_.joinable()) io_thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::AcceptConnections() {
  while (true) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      ETUDE_LOG(Warning) << "accept: " << std::strerror(errno);
      return;
    }
    const int enable = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    connections_[fd] = std::move(connection);
    const Status status = loop_.RegisterFd(
        fd, IoEvents{.readable = true, .writable = false},
        [this, raw](IoEvents events) { OnConnectionEvent(raw->fd, events); });
    if (!status.ok()) {
      connections_.erase(fd);
      close(fd);
    }
  }
}

void HttpServer::OnConnectionEvent(int fd, IoEvents events) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection* connection = it->second.get();
  if (events.readable) ReadFromConnection(connection);
  // The read may have closed the connection.
  if (connections_.count(fd) == 0) return;
  if (events.writable) WriteToConnection(connection);
}

void HttpServer::ReadFromConnection(Connection* connection) {
  char buffer[16384];
  while (true) {
    const ssize_t bytes = read(connection->fd, buffer, sizeof(buffer));
    if (bytes > 0) {
      const auto state = connection->parser.Consume(
          std::string_view(buffer, static_cast<size_t>(bytes)));
      if (state == HttpRequestParser::State::kComplete &&
          !connection->handler_running) {
        DispatchToWorker(connection);
      } else if (state == HttpRequestParser::State::kError) {
        if (!connection->error_sent) {
          connection->error_sent = true;
          QueueResponse(connection->fd,
                        HttpResponse::Error(400, connection->parser.error()),
                        /*keep_alive=*/false);
        }
        return;
      }
      continue;
    }
    if (bytes == 0) {  // peer closed
      if (!connection->handler_running && connection->outbox.empty()) {
        CloseConnection(connection->fd);
      } else {
        connection->close_after_write = true;
      }
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    CloseConnection(connection->fd);
    return;
  }
}

void HttpServer::DispatchToWorker(Connection* connection) {
  connection->handler_running = true;
  Job job;
  job.fd = connection->fd;
  job.request = connection->parser.request();
  job.keep_alive = job.request.KeepAlive();
  job.enqueued_at = std::chrono::steady_clock::now();
  {
    MutexLock lock(jobs_mutex_);
    jobs_.push_back(std::move(job));
  }
  jobs_cv_.NotifyOne();
}

void HttpServer::WorkerMain() {
  while (true) {
    Job job;
    {
      MutexLock lock(jobs_mutex_);
      while (!workers_should_exit_ && jobs_.empty()) {
        jobs_cv_.Wait(jobs_mutex_);
      }
      if (workers_should_exit_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    job.request.queue_delay_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - job.enqueued_at)
            .count();
    HttpResponse response = handler_(job.request);
    QueueResponse(job.fd, response, job.keep_alive);
  }
}

void HttpServer::QueueResponse(int fd, const HttpResponse& response,
                               bool keep_alive) {
  std::string wire = response.Serialize(keep_alive);
  requests_served_.fetch_add(1);
  // Hop (back) to the IO thread; the connection may be gone by then.
  loop_.Post([this, fd, wire = std::move(wire), keep_alive] {
    const auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    Connection* connection = it->second.get();
    connection->outbox += wire;
    connection->handler_running = false;
    if (!keep_alive) connection->close_after_write = true;
    WriteToConnection(connection);
    if (connections_.count(fd) == 0) return;  // closed during write
    if (!keep_alive || connection->error_sent) return;
    if (connection->parser.state() == HttpRequestParser::State::kComplete) {
      // Release the handled request; pipelined bytes parse immediately.
      const auto state = connection->parser.Reset();
      if (state == HttpRequestParser::State::kComplete) {
        DispatchToWorker(connection);
      } else if (state == HttpRequestParser::State::kError) {
        connection->error_sent = true;
        QueueResponse(fd,
                      HttpResponse::Error(400, connection->parser.error()),
                      /*keep_alive=*/false);
      }
    }
  });
}

void HttpServer::WriteToConnection(Connection* connection) {
  while (!connection->outbox.empty()) {
    const ssize_t bytes = write(connection->fd, connection->outbox.data(),
                                connection->outbox.size());
    if (bytes > 0) {
      connection->outbox.erase(0, static_cast<size_t>(bytes));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      (void)loop_.UpdateFd(connection->fd,
                           IoEvents{.readable = true, .writable = true});
      return;
    }
    CloseConnection(connection->fd);
    return;
  }
  // Outbox drained.
  (void)loop_.UpdateFd(connection->fd,
                       IoEvents{.readable = true, .writable = false});
  if (connection->close_after_write) CloseConnection(connection->fd);
}

void HttpServer::CloseConnection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  (void)loop_.DeregisterFd(fd);
  close(fd);
  connections_.erase(it);
}

}  // namespace etude::net

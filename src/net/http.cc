#include "net/http.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"

namespace etude::net {

std::string_view HttpRequest::Header(const std::string& name) const {
  const auto it = headers.find(ToLower(name));
  if (it == headers.end()) return std::string_view();
  return it->second;
}

bool HttpRequest::KeepAlive() const {
  const std::string_view connection = Header("connection");
  if (version == "HTTP/1.0") {
    return ToLower(connection) == "keep-alive";
  }
  return ToLower(connection) != "close";
}

std::string_view HttpStatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 204:
      return "No Content";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

HttpResponse HttpResponse::Ok(std::string body, std::string content_type) {
  HttpResponse response;
  response.status = 200;
  response.headers["content-type"] = std::move(content_type);
  response.body = std::move(body);
  return response;
}

HttpResponse HttpResponse::Error(int status, std::string message) {
  HttpResponse response;
  response.status = status;
  response.headers["content-type"] = "application/json";
  response.body = "{\"error\":\"" + message + "\"}";
  return response;
}

std::string HttpResponse::Serialize(bool keep_alive) const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    std::string(HttpStatusText(status)) + "\r\n";
  for (const auto& [name, value] : headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "content-length: " + std::to_string(body.size()) + "\r\n";
  out += keep_alive ? "connection: keep-alive\r\n"
                    : "connection: close\r\n";
  out += "\r\n";
  out += body;
  return out;
}

HttpRequestParser::State HttpRequestParser::Fail(std::string message) {
  state_ = State::kError;
  error_ = std::move(message);
  return state_;
}

HttpRequestParser::State HttpRequestParser::Consume(std::string_view data) {
  if (state_ == State::kError) return state_;
  buffer_.append(data);
  return Parse();
}

HttpRequestParser::State HttpRequestParser::Parse() {
  if (!headers_parsed_) {
    const size_t end = buffer_.find("\r\n\r\n");
    if (end == std::string::npos) {
      if (buffer_.size() > kMaxHeaderBytes) {
        return Fail("header section too large");
      }
      state_ = State::kIncomplete;
      return state_;
    }
    header_end_ = end + 4;

    // Request line.
    const size_t line_end = buffer_.find("\r\n");
    const std::string request_line = buffer_.substr(0, line_end);
    const std::vector<std::string> parts = Split(request_line, ' ');
    if (parts.size() != 3) return Fail("malformed request line");
    request_.method = parts[0];
    request_.target = parts[1];
    request_.version = parts[2];
    if (request_.method.empty() || request_.target.empty() ||
        !StartsWith(request_.version, "HTTP/")) {
      return Fail("malformed request line");
    }

    // Header fields.
    size_t cursor = line_end + 2;
    while (cursor < end) {
      const size_t eol = buffer_.find("\r\n", cursor);
      const std::string line = buffer_.substr(cursor, eol - cursor);
      cursor = eol + 2;
      const size_t colon = line.find(':');
      if (colon == std::string::npos) return Fail("malformed header line");
      const std::string name =
          ToLower(StripWhitespace(line.substr(0, colon)));
      const std::string value(StripWhitespace(line.substr(colon + 1)));
      if (name.empty()) return Fail("empty header name");
      request_.headers[name] = value;
    }

    const std::string_view length_header = request_.Header("content-length");
    if (!length_header.empty()) {
      char* endptr = nullptr;
      const std::string length_text(length_header);
      const long long parsed = std::strtoll(length_text.c_str(), &endptr,
                                            10);
      if (endptr == length_text.c_str() || *endptr != '\0' || parsed < 0) {
        return Fail("invalid content-length");
      }
      if (static_cast<size_t>(parsed) > kMaxBodyBytes) {
        return Fail("body too large");
      }
      content_length_ = static_cast<size_t>(parsed);
    }
    if (!request_.Header("transfer-encoding").empty()) {
      return Fail("chunked transfer encoding not supported");
    }
    headers_parsed_ = true;
  }

  if (buffer_.size() < header_end_ + content_length_) {
    state_ = State::kIncomplete;
    return state_;
  }
  request_.body = buffer_.substr(header_end_, content_length_);
  state_ = State::kComplete;
  return state_;
}

HttpRequestParser::State HttpRequestParser::Reset() {
  ETUDE_CHECK(state_ == State::kComplete) << "Reset before completion";
  // Keep pipelined bytes beyond the completed request.
  buffer_.erase(0, header_end_ + content_length_);
  request_ = HttpRequest();
  header_end_ = 0;
  content_length_ = 0;
  headers_parsed_ = false;
  state_ = State::kIncomplete;
  if (!buffer_.empty()) return Parse();
  return state_;
}

}  // namespace etude::net

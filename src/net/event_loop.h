#ifndef ETUDE_NET_EVENT_LOOP_H_
#define ETUDE_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace etude::net {

/// Interest mask for file-descriptor callbacks.
struct IoEvents {
  bool readable = false;
  bool writable = false;
};

/// A single-threaded epoll event loop — the non-blocking IO core of the
/// ETUDE inference server (the role Actix's reactor plays in the paper's
/// Rust implementation).
///
/// All Register/Update/Deregister calls must happen on the loop thread;
/// other threads communicate with the loop via Post(), which is the only
/// thread-safe entry point (used by inference workers to hand completed
/// responses back to the IO thread).
class EventLoop {
 public:
  using IoCallback = std::function<void(IoEvents)>;
  using Task = std::function<void()>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Watches `fd`. The callback fires with the ready events. The fd must
  /// be non-blocking.
  Status RegisterFd(int fd, IoEvents interest, IoCallback callback);

  /// Changes the interest set of a registered fd.
  Status UpdateFd(int fd, IoEvents interest);

  /// Stops watching `fd` (does not close it).
  Status DeregisterFd(int fd);

  /// Thread-safe: enqueues `task` to run on the loop thread and wakes the
  /// loop if it is blocked in epoll_wait.
  void Post(Task task) ETUDE_EXCLUDES(tasks_mutex_);

  /// Runs until Stop() is called. Must be invoked from one thread only.
  void Run();

  /// Thread-safe: requests loop termination.
  void Stop();

  bool running() const { return running_.load(); }

 private:
  void Wakeup();
  void DrainPostedTasks() ETUDE_EXCLUDES(tasks_mutex_);

  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;  // eventfd used by Post()/Stop()
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  // Loop-thread-confined (only touched by Register/Update/Deregister and
  // Run, which the API contract pins to the loop thread); needs no lock.
  std::map<int, IoCallback> callbacks_;
  Mutex tasks_mutex_;
  std::deque<Task> posted_tasks_ ETUDE_GUARDED_BY(tasks_mutex_);
};

}  // namespace etude::net

#endif  // ETUDE_NET_EVENT_LOOP_H_

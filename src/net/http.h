#ifndef ETUDE_NET_HTTP_H_
#define ETUDE_NET_HTTP_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/status.h"

namespace etude::net {

/// A parsed HTTP/1.1 request.
struct HttpRequest {
  std::string method;
  std::string target;   // request path including query
  std::string version;  // "HTTP/1.1"
  std::map<std::string, std::string> headers;  // lower-cased names
  std::string body;

  /// Accept-to-handler wait: how long the parsed request sat in the
  /// worker queue before a handler thread picked it up. Stamped by
  /// HttpServer; 0 for requests constructed any other way.
  int64_t queue_delay_us = 0;

  /// Case-insensitive header lookup; returns "" when absent.
  std::string_view Header(const std::string& name) const;

  bool KeepAlive() const;
};

/// An HTTP/1.1 response under construction.
struct HttpResponse {
  int status = 200;
  std::map<std::string, std::string> headers;
  std::string body;

  static HttpResponse Ok(std::string body,
                         std::string content_type = "application/json");
  static HttpResponse Error(int status, std::string message);

  /// Serialises the response (adds Content-Length automatically).
  std::string Serialize(bool keep_alive) const;
};

std::string_view HttpStatusText(int status);

/// Incremental HTTP/1.1 request parser. Feed raw bytes with Consume();
/// when a full request (headers + Content-Length body) has been received,
/// state() becomes kComplete and request() is valid. Pipelined requests
/// are supported: after Reset() the unconsumed remainder is re-parsed.
class HttpRequestParser {
 public:
  enum class State { kIncomplete, kComplete, kError };

  /// Appends bytes and advances the parse. Returns the current state.
  State Consume(std::string_view data);

  State state() const { return state_; }
  const HttpRequest& request() const { return request_; }
  const std::string& error() const { return error_; }

  /// Clears the completed request and resumes parsing any buffered
  /// pipelined bytes; returns the new state.
  State Reset();

 private:
  State Parse();
  State Fail(std::string message);

  std::string buffer_;
  HttpRequest request_;
  State state_ = State::kIncomplete;
  std::string error_;
  size_t header_end_ = 0;
  size_t content_length_ = 0;
  bool headers_parsed_ = false;

  static constexpr size_t kMaxHeaderBytes = 64 * 1024;
  static constexpr size_t kMaxBodyBytes = 4 * 1024 * 1024;
};

}  // namespace etude::net

#endif  // ETUDE_NET_HTTP_H_

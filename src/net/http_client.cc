#include "net/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/strings.h"

namespace etude::net {

namespace {
timeval ToTimeval(double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(
                                                       tv.tv_sec)) *
                                        1e6);
  return tv;
}
}  // namespace

std::string HttpClientResponse::Header(const std::string& name) const {
  const auto it = headers.find(ToLower(name));
  return it == headers.end() ? "" : it->second;
}

HttpClient::HttpClient(std::string host, uint16_t port, double timeout_s)
    : host_(std::move(host)), port_(port), timeout_s_(timeout_s) {}

HttpClient::~HttpClient() { Close(); }

void HttpClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status HttpClient::Connect() {
  if (fd_ >= 0) return Status::OK();
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Unavailable("socket(): " +
                               std::string(std::strerror(errno)));
  }
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port_);
  if (inet_pton(AF_INET, host_.c_str(), &address.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("not an IPv4 address: " + host_);
  }
  const timeval timeout = ToTimeval(timeout_s_);
  setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (connect(fd_, reinterpret_cast<sockaddr*>(&address),
              sizeof(address)) != 0) {
    const std::string error = std::strerror(errno);
    Close();
    return Status::Unavailable("connect " + host_ + ":" +
                               std::to_string(port_) + ": " + error);
  }
  return Status::OK();
}

Status HttpClient::SendAll(const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return Status::Unavailable("send: " +
                                 std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<HttpClientResponse> HttpClient::ReadResponse() {
  size_t header_end = std::string::npos;
  size_t content_length = 0;
  char chunk[16384];
  while (true) {
    header_end = buffer_.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      // Lower-cased search is safe: ETUDE servers emit lower-case header
      // names; a general client would normalise first.
      const size_t length_pos = buffer_.find("content-length:");
      if (length_pos == std::string::npos || length_pos > header_end) {
        return Status::InvalidArgument(
            "response carries no content-length header");
      }
      content_length = static_cast<size_t>(
          std::strtoll(buffer_.c_str() + length_pos + 15, nullptr, 10));
      if (buffer_.size() >= header_end + 4 + content_length) break;
    }
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      return Status::Unavailable(n == 0 ? "connection closed mid-response"
                                        : "recv: " + std::string(
                                                         std::strerror(
                                                             errno)));
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }

  HttpClientResponse response;
  response.body = buffer_.substr(header_end + 4, content_length);
  const size_t space = buffer_.find(' ');
  if (space == std::string::npos || space > header_end) {
    return Status::InvalidArgument("malformed HTTP status line");
  }
  response.status = std::atoi(buffer_.c_str() + space + 1);
  size_t cursor = buffer_.find("\r\n") + 2;
  while (cursor < header_end) {
    size_t eol = buffer_.find("\r\n", cursor);
    if (eol == std::string::npos || eol > header_end) eol = header_end;
    const std::string line = buffer_.substr(cursor, eol - cursor);
    cursor = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = ToLower(line.substr(0, colon));
    std::string value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.erase(0, 1);
    response.headers[std::move(name)] = std::move(value);
  }
  // Keep any pipelined surplus buffered for the next response.
  buffer_.erase(0, header_end + 4 + content_length);
  return response;
}

Result<HttpClientResponse> HttpClient::Request(
    const std::string& method, const std::string& target,
    const std::string& body,
    const std::map<std::string, std::string>& extra_headers) {
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "host: " + host_ + "\r\n";
  for (const auto& [name, value] : extra_headers) {
    wire += name + ": " + value + "\r\n";
  }
  if (!body.empty()) {
    wire += "content-type: application/json\r\n";
    wire += "content-length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "\r\n" + body;

  // One transparent retry on a fresh connection: a keep-alive peer may
  // have legitimately closed the idle socket between requests.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const Status connected = Connect();
    if (!connected.ok()) return connected;
    const Status sent = SendAll(wire);
    if (!sent.ok()) {
      Close();
      continue;
    }
    Result<HttpClientResponse> response = ReadResponse();
    if (response.ok()) return response;
    Close();
  }
  return Status::Unavailable("request to " + host_ + ":" +
                             std::to_string(port_) + target +
                             " failed after retry");
}

}  // namespace etude::net

#ifndef ETUDE_NET_HTTP_CLIENT_H_
#define ETUDE_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace etude::net {

/// A parsed HTTP/1.1 response as seen by the client.
struct HttpClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // lower-cased names
  std::string body;

  /// Case-insensitive-by-construction header lookup; "" when absent.
  std::string Header(const std::string& name) const;
};

/// A small blocking HTTP/1.1 client: one TCP connection per object,
/// keep-alive across sequential requests, per-socket send/receive
/// timeouts. This is the request engine of the real-server load harness
/// (`etude loadtest`): each load-generator worker owns one client, which
/// mirrors how the paper's load generator holds persistent connections to
/// the serving pods.
///
/// Not thread-safe: one client per thread.
class HttpClient {
 public:
  HttpClient(std::string host, uint16_t port, double timeout_s = 5.0);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Opens the connection (idempotent). Request() connects lazily, so
  /// calling this is only needed to probe reachability.
  Status Connect();

  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Sends one request and blocks for the full response (which must carry
  /// a Content-Length, as every ETUDE server does). On a broken
  /// connection the request is retried once on a fresh connection —
  /// covering the server's legitimate close of an idle keep-alive socket —
  /// before failing with Unavailable.
  Result<HttpClientResponse> Request(
      const std::string& method, const std::string& target,
      const std::string& body = "",
      const std::map<std::string, std::string>& extra_headers = {});

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

 private:
  Status SendAll(const std::string& data);
  Result<HttpClientResponse> ReadResponse();

  std::string host_;
  uint16_t port_;
  double timeout_s_;
  int fd_ = -1;
  std::string buffer_;  // unconsumed bytes across responses (keep-alive)
};

}  // namespace etude::net

#endif  // ETUDE_NET_HTTP_CLIENT_H_

#include "core/slo_feasibility.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.h"

namespace etude::core {

namespace {

constexpr double kLn10 = 2.302585092994046;  // p90 tail of an exp. wait
constexpr double kZ90 = 1.2815515655446004;  // 90th pct of a standard normal

/// Whole-batch service time of one executor, from the batched plan
/// polynomials (batch > 1) or the plain per-request cost model
/// (batch == 1, the unbatched FIFO path). Mirrors the DES's
/// analytic-batching pricing exactly: framework overhead is paid once per
/// dispatched batch.
double ServiceUs(const models::SessionModel& model, const DeployPoint& point,
                 int batch) {
  const sim::InferenceWork work =
      point.batch > 1
          ? model.BatchedCostModel(point.mode, point.session_length, batch)
          : model.CostModel(point.mode, point.session_length);
  return sim::SerialInferenceUs(point.device, work) +
         point.framework_overhead_us;
}

int ClampBatch(double batch, int cap) {
  const int rounded = static_cast<int>(std::lround(batch));
  return std::min(cap, std::max(1, rounded));
}

}  // namespace

std::string FeasibilityVerdict::Summary() const {
  std::string out = feasible ? "feasible" : "INFEASIBLE";
  out += ": rho=" + FormatDouble(utilization, 2);
  out += " p90~" + FormatDouble(p90_estimate_us / 1000.0, 2) + "ms";
  out += " (form " + FormatDouble(form_wait_us / 1000.0, 2);
  out += " + queue " + FormatDouble(queue_wait_us / 1000.0, 2);
  out += " + service " + FormatDouble(service_us / 1000.0, 2);
  out += " ms, B*=" + FormatDouble(batch_eff, 1) + ")";
  if (!counterexample.empty()) out += " — " + counterexample;
  return out;
}

FeasibilityVerdict CheckSloFeasibility(const models::SessionModel& model,
                                       const DeployPoint& point) {
  FeasibilityVerdict verdict;
  const int cap = std::max(1, point.batch);
  const int replicas = std::max(1, point.replicas);
  const double executors =
      point.device.is_gpu() && point.device.supports_batching
          ? 1.0
          : static_cast<double>(std::max(1, point.device.worker_slots));
  // Round-robin load balancing splits arrivals evenly across replicas;
  // all waits below are per-server.
  const double lambda = point.lambda_rps / 1e6 / replicas;  // req/us

  // Steady-state batch size. The load generator paces requests evenly
  // within each tick, so a flush window holds lambda * flush arrivals —
  // below one per window, batches never coalesce and stay at size 1
  // (unlike Poisson arrivals, there is no 1 + lambda*flush burst term).
  // As executors saturate the batch grows to the arrivals of one service
  // time per executor, capped at the configured maximum. The fixed point
  // converges because ServiceUs is monotone in the batch size.
  double batch_eff = 1.0;
  if (cap > 1) {
    batch_eff = std::min<double>(
        cap, std::max(1.0, lambda * point.flush_interval_us));
    for (int iter = 0; iter < 32; ++iter) {
      const double service =
          ServiceUs(model, point, ClampBatch(batch_eff, cap));
      const double backlog = lambda * service / executors;
      const double next = std::min<double>(
          cap, std::max({1.0, lambda * point.flush_interval_us, backlog}));
      if (std::abs(next - batch_eff) < 1e-6) break;
      batch_eff = next;
    }
  }
  verdict.batch_eff = batch_eff;
  verdict.service_us = ServiceUs(model, point, ClampBatch(batch_eff, cap));

  // Capacity: even at the batch cap, the executors must process requests
  // at least as fast as they arrive.
  const double service_at_cap = ServiceUs(model, point, cap);
  const double rho_at_cap = lambda * service_at_cap / (executors * cap);
  verdict.utilization =
      lambda * verdict.service_us / (executors * batch_eff);
  if (rho_at_cap >= 1.0 || verdict.utilization >= 1.0) {
    const double rho = std::max(rho_at_cap, verdict.utilization);
    verdict.feasible = false;
    verdict.utilization = rho;
    verdict.p90_estimate_us =
        std::numeric_limits<double>::infinity();
    verdict.counterexample =
        "capacity: lambda=" + FormatDouble(point.lambda_rps, 0) +
        "/s needs utilization " + FormatDouble(rho, 2) +
        " >= 1 even at the batch cap (S(" + std::to_string(cap) + ")=" +
        FormatDouble(service_at_cap / 1000.0, 2) + "ms across " +
        FormatDouble(executors, 0) + " executor(s) x " +
        std::to_string(replicas) + " replica(s))";
    return verdict;
  }

  // Batch-formation wait. Until the forming buffer can fill to the cap
  // within one flush window, the flush timer always expires, so the head
  // request of each batch waits the full interval; past the fill point
  // the batch dispatches as soon as `cap` arrivals accumulate. Unbatched
  // serving has no formation stage.
  verdict.form_wait_us =
      cap > 1 ? std::min(point.flush_interval_us,
                         (cap - 1.0) / std::max(lambda, 1e-12))
              : 0.0;

  // Queueing delay of batch jobs on `executors` parallel servers
  // (Allen-Cunneen G/G/c approximation). Batching smooths arrivals:
  // scv 1/batch_eff upper-bounds the paced generator's near-
  // deterministic interarrivals; service scv comes from the lognormal
  // jitter.
  const double rho = verdict.utilization;
  const double ca2 = 1.0 / batch_eff;
  const double cs2 = std::exp(point.jitter_sigma * point.jitter_sigma) - 1.0;
  const double p_wait = std::pow(rho, std::sqrt(2.0 * (executors + 1.0)));
  verdict.queue_wait_us = (verdict.service_us / executors) *
                          (p_wait / (1.0 - rho)) * (ca2 + cs2) / 2.0;

  // p90: the exponential-tailed queue wait scales by ln(10); the service
  // time by the lognormal jitter's 90th percentile.
  verdict.p90_estimate_us =
      verdict.form_wait_us + verdict.queue_wait_us * kLn10 +
      verdict.service_us * std::exp(kZ90 * point.jitter_sigma);

  const double slo_us = point.slo_p90_ms * 1000.0;
  verdict.feasible = verdict.p90_estimate_us <= slo_us;
  if (!verdict.feasible) {
    verdict.counterexample =
        "latency: p90 estimate " +
        FormatDouble(verdict.p90_estimate_us / 1000.0, 2) + "ms > SLO " +
        FormatDouble(point.slo_p90_ms, 2) + "ms at lambda=" +
        FormatDouble(point.lambda_rps, 0) + "/s (form " +
        FormatDouble(verdict.form_wait_us / 1000.0, 2) + " + queue " +
        FormatDouble(verdict.queue_wait_us * kLn10 / 1000.0, 2) +
        " + service " +
        FormatDouble(verdict.service_us *
                         std::exp(kZ90 * point.jitter_sigma) / 1000.0,
                     2) +
        " ms, B*=" + FormatDouble(batch_eff, 1) + ")";
  }
  return verdict;
}

std::vector<std::pair<int, FeasibilityVerdict>> SloFeasibilityFrontier(
    const models::SessionModel& model, const DeployPoint& point,
    const std::vector<int>& batches) {
  std::vector<std::pair<int, FeasibilityVerdict>> frontier;
  frontier.reserve(batches.size());
  for (const int batch : batches) {
    DeployPoint candidate = point;
    candidate.batch = batch;
    frontier.emplace_back(batch, CheckSloFeasibility(model, candidate));
  }
  return frontier;
}

}  // namespace etude::core

#ifndef ETUDE_CORE_SPEC_H_
#define ETUDE_CORE_SPEC_H_

#include <string_view>

#include "common/status.h"
#include "core/benchmark.h"

namespace etude::core {

/// Parses a declarative benchmark specification, the textual equivalent of
/// the paper's Fig. 1 inputs. Example:
///
/// {
///   "scenario": {
///     "name": "my-shop",
///     "catalog_size": 250000,
///     "target_rps": 300,
///     "p90_limit_ms": 50,
///     "session_length_alpha": 2.2,
///     "click_count_alpha": 1.8
///   },
///   "model": "GRU4Rec",
///   "mode": "jit",
///   "device": "gpu-t4",
///   "replicas": 1,
///   "batch": 16,
///   "duration_s": 600,
///   "retrieval": { "backend": "ivf-pq", "nprobe": 16, "rerank": 128 }
/// }
///
/// "retrieval" (optional; default exact) selects the catalog-scan backend
/// — a bare string ("int8") or an object with backend / nlist / nprobe /
/// rerank / pq_m / int8_lists knobs (see ann/retriever.h).
///
/// "batch" (optional; default 1) sets the maximum request-batch size; a
/// value > 1 runs the deployment in the analytic-batching mode the
/// `etude lint-deploy` linter reasons about (see core/benchmark.h).
///
/// Unknown models/devices and malformed values yield descriptive errors.
Result<BenchmarkSpec> ParseBenchmarkSpec(std::string_view json_text);

/// Reads and parses a spec file from disk.
Result<BenchmarkSpec> LoadBenchmarkSpec(const std::string& path);

}  // namespace etude::core

#endif  // ETUDE_CORE_SPEC_H_

#include "core/cost_planner.h"

#include <algorithm>
#include <cmath>

#include "models/model_factory.h"

namespace etude::core {

const DeploymentPlan* ModelPlan::CheapestFeasible() const {
  const DeploymentPlan* best = nullptr;
  for (const DeploymentPlan& plan : options) {
    if (!plan.feasible()) continue;
    if (best == nullptr || plan.monthly_cost_usd < best->monthly_cost_usd) {
      best = &plan;
    }
  }
  return best;
}

int CostPlanner::EstimateMinReplicas(const Scenario& scenario,
                                     models::ModelKind model,
                                     const sim::DeviceSpec& device) const {
  // Build a cost-only model to read its per-request work at the typical
  // session length, then bound instance capacity analytically.
  models::ModelConfig config;
  config.catalog_size = scenario.catalog_size;
  config.materialize_embeddings = false;
  Result<std::unique_ptr<models::SessionModel>> created =
      models::CreateModel(model, config);
  if (!created.ok()) return 1;
  const models::SessionModel& m = **created;
  const sim::InferenceWork work =
      m.CostModel(models::ExecutionMode::kJit, /*session_length=*/3);
  double per_request_us;
  if (device.is_gpu() && device.supports_batching) {
    // Asymptotic batched throughput: each extra request costs its
    // non-amortisable share of the serial device time.
    const double serial = sim::SerialInferenceUs(device, work);
    per_request_us = std::max(
        serial * work.batch_share +
            static_cast<double>(work.host_sync_points) *
                (device.pcie_roundtrip_us + work.host_compute_us),
        1.0);
  } else {
    per_request_us = sim::SerialInferenceUs(device, work) /
                     static_cast<double>(device.worker_slots);
  }
  const double capacity_rps = 1e6 / per_request_us;
  const double needed = scenario.target_rps / capacity_rps;
  return std::max(1, static_cast<int>(std::floor(needed)));
}

Result<BenchmarkReport> CostPlanner::RunMedian(const BenchmarkSpec& spec) {
  std::vector<BenchmarkReport> runs;
  runs.reserve(static_cast<size_t>(options_.repetitions));
  for (int i = 0; i < options_.repetitions; ++i) {
    BenchmarkSpec repeated = spec;
    repeated.seed = spec.seed + static_cast<uint64_t>(i) * 10007;
    ETUDE_ASSIGN_OR_RETURN(BenchmarkReport report,
                           RunDeployedBenchmark(repeated));
    runs.push_back(std::move(report));
  }
  // Keep the run with the median steady-state p90 (drop best and worst).
  std::sort(runs.begin(), runs.end(),
            [](const BenchmarkReport& a, const BenchmarkReport& b) {
              return a.load.steady_p90_ms < b.load.steady_p90_ms;
            });
  return runs[runs.size() / 2];
}

Result<DeploymentPlan> CostPlanner::PlanModelOnDevice(
    const Scenario& scenario, models::ModelKind model,
    const sim::DeviceSpec& device) {
  DeploymentPlan plan;
  plan.device = device;
  {
    // Device-memory gate: a model that does not fit is infeasible at any
    // replica count (replicas do not shard the embedding table).
    models::ModelConfig config;
    config.catalog_size = scenario.catalog_size;
    config.materialize_embeddings = false;
    auto probe = models::CreateModel(model, config);
    if (probe.ok() &&
        1.25 * static_cast<double>((*probe)->SerializedBytes()) / 1e9 >
            device.memory_gb) {
      return plan;
    }
  }
  const int estimate = EstimateMinReplicas(scenario, model, device);
  if (estimate > 4 * options_.max_replicas) {
    // Analytically hopeless (e.g. CPU fleets for 10M-item catalogs would
    // need hundreds of instances); report infeasible without simulating.
    return plan;
  }
  const int start = std::min(std::max(estimate, 1), options_.max_replicas);
  for (int replicas = start; replicas <= options_.max_replicas; ++replicas) {
    BenchmarkSpec spec;
    spec.scenario = scenario;
    spec.model = model;
    spec.device = device;
    spec.replicas = replicas;
    spec.duration_s = options_.duration_s;
    spec.ramp_s = options_.ramp_s;
    spec.seed = options_.seed;
    ETUDE_ASSIGN_OR_RETURN(BenchmarkReport report, RunMedian(spec));
    if (report.meets_slo) {
      plan.replicas = replicas;
      plan.monthly_cost_usd = report.monthly_cost_usd;
      plan.report = std::move(report);
      return plan;
    }
    // A p90 blow-up that is much worse than the limit will not be fixed by
    // one more replica when even a single request is too slow serially.
    if (report.load.steady_p90_ms >
            50.0 * scenario.p90_limit_ms &&
        report.load.steady_achieved_rps <
            0.05 * scenario.target_rps) {
      break;
    }
  }
  return plan;  // infeasible within max_replicas
}

Result<ModelPlan> CostPlanner::PlanModel(
    const Scenario& scenario, models::ModelKind model,
    const std::vector<sim::DeviceSpec>& devices) {
  ModelPlan result;
  result.model = model;
  for (const sim::DeviceSpec& device : devices) {
    ETUDE_ASSIGN_OR_RETURN(DeploymentPlan plan,
                           PlanModelOnDevice(scenario, model, device));
    result.options.push_back(std::move(plan));
  }
  return result;
}

}  // namespace etude::core

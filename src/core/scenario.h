#ifndef ETUDE_CORE_SCENARIO_H_
#define ETUDE_CORE_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "workload/session_generator.h"

namespace etude::core {

/// A declaratively specified use case: catalog statistics plus the
/// latency/throughput constraints the deployment must meet. These are the
/// inputs a data scientist provides to ETUDE (Fig. 1).
struct Scenario {
  std::string name;
  int64_t catalog_size = 10000;         // C
  double target_rps = 100;              // required sustained throughput
  double p90_limit_ms = 50.0;           // latency constraint (90th pct)
  workload::WorkloadStats workload;     // marginals of the click log
};

/// The five end-to-end use cases of Table I, with catalog sizes from
/// grocery shopping (10k items) up to a marketplace platform (20M items).
std::vector<Scenario> PaperScenarios();

/// Returns the scenario with the given name from PaperScenarios().
Result<Scenario> PaperScenarioByName(std::string_view name);

}  // namespace etude::core

#endif  // ETUDE_CORE_SCENARIO_H_

#ifndef ETUDE_CORE_BENCHMARK_H_
#define ETUDE_CORE_BENCHMARK_H_

#include <cstdint>
#include <string>

#include "cluster/cluster.h"
#include "common/json.h"
#include "common/status.h"
#include "core/scenario.h"
#include "loadgen/load_generator.h"
#include "models/session_model.h"
#include "sim/device.h"

namespace etude::core {

/// A single deployed-benchmark run: one model, one scenario, one
/// deployment option — what `make run_deployed_benchmark` executes in the
/// paper's setup.
struct BenchmarkSpec {
  Scenario scenario;
  models::ModelKind model = models::ModelKind::kGru4Rec;
  models::ExecutionMode mode = models::ExecutionMode::kJit;
  sim::DeviceSpec device = sim::DeviceSpec::Cpu();
  int replicas = 1;

  // Maximum request-batch size B. 1 (the default) serves requests
  // individually on the CPU FIFO / legacy GPU path; > 1 turns on the
  // analytic-batching execution mode: batch formation on any device,
  // priced by the model's batched plan polynomials
  // (SessionModel::BatchedCostModel) — the mode the static SLO linter
  // (`etude lint-deploy`, core/slo_feasibility.h) reasons about.
  int batch = 1;

  int64_t duration_s = 600;  // experiment length (ramp + hold)
  int64_t ramp_s = 0;        // 0 = ramp over the whole duration
  uint64_t seed = 42;

  // How the catalog scan is served (exact | int8 | ivf-flat | ivf-pq with
  // nprobe/rerank knobs; see ann/retriever.h). Scale runs are cost-only,
  // so the backend enters through the analytic cost model rather than a
  // built index.
  ann::RetrievalConfig retrieval;

  // Workload sessions are drawn over min(catalog_size, workload_catalog_cap)
  // item ids to bound generator memory at platform-scale catalogs; the
  // cost model always uses the true catalog size.
  int64_t workload_catalog_cap = 1000000;
};

/// Everything ETUDE reports back for one run: the latency/throughput
/// timeline, steady-state aggregates, SLO verdict and deployment cost.
struct BenchmarkReport {
  std::string scenario_name;
  std::string model_name;
  std::string device_name;
  int replicas = 1;
  loadgen::LoadResult load;
  double monthly_cost_usd = 0;
  bool meets_slo = false;
  int64_t ready_after_ms = 0;  // deployment readiness time

  /// Per-pod + fleet-aggregated telemetry, copied out of the deployment
  /// before it is torn down (see Deployment::CollectTelemetry).
  cluster::Deployment::FleetTelemetry fleet;

  /// One-line human-readable summary.
  std::string Summary() const;
};

/// Deploys the model on the simulated cluster, waits for readiness, runs
/// the backpressure-aware load generator against the ClusterIP service and
/// aggregates the measurements.
Result<BenchmarkReport> RunDeployedBenchmark(const BenchmarkSpec& spec);

/// The report rendered as a schema-versioned BENCH JSON document: one
/// "pod_latency_us" timeline series per pod (Params {"pod", "<i>"}) in the
/// SAME tick schema as `etude loadtest` (bench::ValidateTimelineJson
/// accepts both), a fleet latency summary, and the merged per-pod metric
/// registry under "fleet_metrics".
JsonValue DeployedBenchmarkJson(const BenchmarkReport& report);

}  // namespace etude::core

#endif  // ETUDE_CORE_BENCHMARK_H_

#include "core/benchmark.h"

#include <algorithm>

#include "bench/reporter.h"
#include "common/strings.h"
#include "models/model_factory.h"
#include "sim/simulation.h"

namespace etude::core {

std::string BenchmarkReport::Summary() const {
  std::string out = scenario_name + " | " + model_name + " on " +
                    std::to_string(replicas) + "x " + device_name + ": ";
  out += "p90=" + FormatDouble(load.steady_p90_ms, 2) + "ms";
  out += " rps=" + FormatDouble(load.steady_achieved_rps, 0) + "/" +
         FormatDouble(load.target_rps, 0);
  out += " errors=" + FormatDouble(100.0 * load.steady_error_rate, 2) + "%";
  out += " cost=$" + FormatDouble(monthly_cost_usd, 0) + "/mo";
  out += meets_slo ? "  [PASS]" : "  [FAIL]";
  return out;
}

Result<BenchmarkReport> RunDeployedBenchmark(const BenchmarkSpec& spec) {
  if (spec.replicas < 1) {
    return Status::InvalidArgument("replicas must be >= 1");
  }
  if (spec.duration_s < 4) {
    return Status::InvalidArgument("duration must be >= 4 seconds");
  }

  // The model under test. Scale runs are cost-only: the [C, d] table is
  // not materialised (it would be 5+ GB for the Platform scenario).
  models::ModelConfig model_config;
  model_config.catalog_size = spec.scenario.catalog_size;
  model_config.top_k = 21;
  model_config.seed = spec.seed;
  model_config.materialize_embeddings = false;
  ETUDE_ASSIGN_OR_RETURN(std::unique_ptr<models::SessionModel> model,
                         models::CreateModel(spec.model, model_config));
  // Cost-only model: this records the backend and scales the scan cost
  // analytically (no index is built over the unmaterialised table).
  ETUDE_RETURN_NOT_OK(model->ConfigureRetrieval(spec.retrieval));

  // The serialised model (plus ~25% working set for activations and the
  // score buffer) must fit in device memory — a T4 carries 16 GB, an
  // A100 40 GB (paper Sec. III setup).
  const double required_gb =
      1.25 * static_cast<double>(model->SerializedBytes()) / 1e9;
  if (required_gb > spec.device.memory_gb) {
    return Status::FailedPrecondition(
        "model needs ~" + FormatDouble(required_gb, 1) + " GB but " +
        spec.device.name + " offers " +
        FormatDouble(spec.device.memory_gb, 0) + " GB");
  }

  sim::Simulation sim;

  // Deploy the model onto the cluster and wait until every replica passes
  // its readiness probe (as ETUDE does via Kubernetes readiness probes).
  cluster::DeploymentConfig deployment_config;
  deployment_config.device = spec.device;
  deployment_config.replicas = spec.replicas;
  deployment_config.mode = spec.mode;
  deployment_config.seed = spec.seed;
  if (spec.batch > 1) {
    // Batched serving priced by the batched plan polynomials — the
    // execution mode `etude lint-deploy` checks statically.
    deployment_config.analytic_batching = true;
    deployment_config.batching.max_batch_size = spec.batch;
  }
  cluster::Deployment deployment(&sim, model.get(), deployment_config);
  sim.RunUntil(deployment.ReadyAtUs());
  ETUDE_CHECK(deployment.AllReady()) << "deployment failed to become ready";
  const int64_t ready_after_ms = deployment.ReadyAtUs() / 1000;

  // Synthetic workload from the scenario's click-log marginals.
  const int64_t workload_catalog =
      std::min(spec.scenario.catalog_size, spec.workload_catalog_cap);
  ETUDE_ASSIGN_OR_RETURN(
      workload::SessionGenerator sessions,
      workload::SessionGenerator::Create(workload_catalog,
                                         spec.scenario.workload,
                                         spec.seed ^ 0xABCDEF));

  loadgen::LoadGeneratorConfig load_config;
  load_config.target_rps = spec.scenario.target_rps;
  load_config.duration_s = spec.duration_s;
  load_config.ramp_s = spec.ramp_s;
  load_config.seed = spec.seed ^ 0x123456;
  loadgen::LoadGenerator generator(&sim, deployment.service(), &sessions,
                                   load_config);
  generator.Start();
  sim.Run();  // drains: all ticks elapsed and all responses delivered
  ETUDE_CHECK(generator.finished()) << "load generator did not finish";

  BenchmarkReport report;
  report.scenario_name = spec.scenario.name;
  report.model_name = std::string(models::ModelKindToString(spec.model));
  report.device_name = spec.device.name;
  report.replicas = spec.replicas;
  report.load = generator.BuildResult();
  report.fleet = deployment.CollectTelemetry();
  report.monthly_cost_usd = deployment.MonthlyCostUsd();
  report.meets_slo = report.load.MeetsSlo(spec.scenario.target_rps,
                                          spec.scenario.p90_limit_ms);
  report.ready_after_ms = ready_after_ms;
  return report;
}

JsonValue DeployedBenchmarkJson(const BenchmarkReport& report) {
  bench::BenchReporter reporter("etude_run", bench::BenchEnv::Capture());
  const bench::Params run_params = {
      {"scenario", report.scenario_name},
      {"model", report.model_name},
      {"device", report.device_name},
      {"replicas", std::to_string(report.replicas)},
  };
  // One timeline series per pod, in the same tick schema as the loadtest
  // timeline (ValidateTimelineJson accepts both documents).
  for (size_t i = 0; i < report.fleet.pod_timelines.size(); ++i) {
    bench::Params pod_params = run_params;
    pod_params.emplace_back("pod", std::to_string(i));
    reporter.AddTimeline("pod_latency_us", "us", pod_params,
                         bench::Direction::kLowerIsBetter,
                         report.fleet.pod_timelines[i]);
  }
  reporter.AddSummary("fleet_latency_us", "us", run_params,
                      bench::Direction::kLowerIsBetter,
                      report.fleet.latency_us.Summarize());
  reporter.AddValue("fleet_achieved_rps", "req/s", run_params,
                    bench::Direction::kHigherIsBetter,
                    report.load.steady_achieved_rps);
  reporter.AddValue("monthly_cost_usd", "usd", run_params,
                    bench::Direction::kInfo, report.monthly_cost_usd);
  JsonValue doc = reporter.ToJson();
  // The merged per-pod metric registries: counters summed across the
  // fleet, latency histograms Merge()d bucket-exactly.
  doc.Set("fleet_metrics", report.fleet.metrics.ToJson());
  return doc;
}

}  // namespace etude::core

#ifndef ETUDE_CORE_COST_PLANNER_H_
#define ETUDE_CORE_COST_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "core/benchmark.h"
#include "core/scenario.h"
#include "models/session_model.h"
#include "sim/device.h"

namespace etude::core {

/// Options of the deployment-plan search behind Table I.
struct PlannerOptions {
  int max_replicas = 8;       // largest fleet considered per instance type
  int64_t duration_s = 90;    // per-run simulated duration
  int64_t ramp_s = 45;        // ramp, then hold at target
  uint64_t seed = 42;
  int repetitions = 3;        // paper: run 3x, keep the median run
};

/// The cheapest feasible deployment of one model on one instance type for
/// a scenario (or infeasible up to max_replicas).
struct DeploymentPlan {
  sim::DeviceSpec device;
  int replicas = 0;            // 0 = infeasible within max_replicas
  double monthly_cost_usd = 0;
  BenchmarkReport report;      // the (median) run backing the verdict

  bool feasible() const { return replicas > 0; }
};

/// All instance-type options for one (scenario, model) pair.
struct ModelPlan {
  models::ModelKind model;
  std::vector<DeploymentPlan> options;  // one per instance type

  /// Cheapest feasible option, if any.
  const DeploymentPlan* CheapestFeasible() const;
};

/// Searches, per model and instance type, for the smallest replica count
/// that meets the scenario's throughput and p90 constraints, and prices
/// the result — reproducing the decision process behind Table I.
///
/// Each candidate configuration is simulated `repetitions` times with
/// different seeds; the run with the median steady-state p90 is kept (the
/// paper runs every configuration three times and drops the best and
/// worst runs).
class CostPlanner {
 public:
  explicit CostPlanner(const PlannerOptions& options) : options_(options) {}

  /// Plans one model on one instance type.
  Result<DeploymentPlan> PlanModelOnDevice(const Scenario& scenario,
                                           models::ModelKind model,
                                           const sim::DeviceSpec& device);

  /// Plans one model across the given instance types.
  Result<ModelPlan> PlanModel(const Scenario& scenario,
                              models::ModelKind model,
                              const std::vector<sim::DeviceSpec>& devices);

 private:
  /// Analytic lower bound on the replicas needed, used to skip hopeless
  /// fleet sizes before simulating.
  int EstimateMinReplicas(const Scenario& scenario, models::ModelKind model,
                          const sim::DeviceSpec& device) const;

  Result<BenchmarkReport> RunMedian(const BenchmarkSpec& spec);

  PlannerOptions options_;
};

}  // namespace etude::core

#endif  // ETUDE_CORE_COST_PLANNER_H_

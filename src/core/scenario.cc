#include "core/scenario.h"

#include "common/strings.h"

namespace etude::core {

std::vector<Scenario> PaperScenarios() {
  // Table I, columns 1-3. The workload marginals are the bol.com click-log
  // statistics used throughout the paper's experiments.
  workload::WorkloadStats bol;
  std::vector<Scenario> scenarios;
  scenarios.push_back({"Groceries (small)", 10000, 100, 50.0, bol});
  scenarios.push_back({"Groceries (large)", 100000, 250, 50.0, bol});
  scenarios.push_back({"Fashion", 1000000, 500, 50.0, bol});
  scenarios.push_back({"e-Commerce", 10000000, 1000, 50.0, bol});
  scenarios.push_back({"Platform", 20000000, 1000, 50.0, bol});
  return scenarios;
}

Result<Scenario> PaperScenarioByName(std::string_view name) {
  const std::string lower = ToLower(name);
  for (const Scenario& scenario : PaperScenarios()) {
    if (ToLower(scenario.name) == lower) return scenario;
  }
  return Status::NotFound("unknown scenario '" + std::string(name) + "'");
}

}  // namespace etude::core

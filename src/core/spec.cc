#include "core/spec.h"

#include <fstream>
#include <sstream>

#include "common/json.h"
#include "common/strings.h"

namespace etude::core {

Result<BenchmarkSpec> ParseBenchmarkSpec(std::string_view json_text) {
  ETUDE_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json_text));
  if (!root.is_object()) {
    return Status::InvalidArgument("spec must be a JSON object");
  }
  BenchmarkSpec spec;

  const JsonValue& scenario = root.Get("scenario");
  if (scenario.is_string()) {
    // Named paper scenario.
    ETUDE_ASSIGN_OR_RETURN(spec.scenario,
                           PaperScenarioByName(scenario.as_string()));
  } else if (scenario.is_object()) {
    spec.scenario.name = scenario.GetStringOr("name", "custom");
    spec.scenario.catalog_size =
        scenario.GetIntOr("catalog_size", spec.scenario.catalog_size);
    spec.scenario.target_rps =
        scenario.GetNumberOr("target_rps", spec.scenario.target_rps);
    spec.scenario.p90_limit_ms =
        scenario.GetNumberOr("p90_limit_ms", spec.scenario.p90_limit_ms);
    spec.scenario.workload.session_length_alpha = scenario.GetNumberOr(
        "session_length_alpha",
        spec.scenario.workload.session_length_alpha);
    spec.scenario.workload.click_count_alpha = scenario.GetNumberOr(
        "click_count_alpha", spec.scenario.workload.click_count_alpha);
    spec.scenario.workload.max_session_length = scenario.GetIntOr(
        "max_session_length", spec.scenario.workload.max_session_length);
    if (spec.scenario.catalog_size < 1) {
      return Status::InvalidArgument("catalog_size must be >= 1");
    }
    if (spec.scenario.target_rps <= 0) {
      return Status::InvalidArgument("target_rps must be > 0");
    }
  } else {
    return Status::InvalidArgument(
        "spec requires a 'scenario' (object or paper-scenario name)");
  }

  if (root.Contains("model")) {
    ETUDE_ASSIGN_OR_RETURN(
        spec.model, models::ModelKindFromString(
                        root.GetStringOr("model", "GRU4Rec")));
  }
  const std::string mode = ToLower(root.GetStringOr("mode", "jit"));
  if (mode == "jit") {
    spec.mode = models::ExecutionMode::kJit;
  } else if (mode == "eager") {
    spec.mode = models::ExecutionMode::kEager;
  } else {
    return Status::InvalidArgument("mode must be 'jit' or 'eager'");
  }
  ETUDE_ASSIGN_OR_RETURN(
      spec.device, sim::DeviceSpec::FromName(
                       root.GetStringOr("device", "cpu")));
  spec.replicas = static_cast<int>(root.GetIntOr("replicas", 1));
  if (spec.replicas < 1) {
    return Status::InvalidArgument("replicas must be >= 1");
  }
  spec.batch = static_cast<int>(root.GetIntOr("batch", 1));
  if (spec.batch < 1 || spec.batch > 4096) {
    return Status::InvalidArgument("batch must be in [1, 4096]");
  }
  spec.duration_s = root.GetIntOr("duration_s", spec.duration_s);
  spec.ramp_s = root.GetIntOr("ramp_s", spec.ramp_s);
  spec.seed = static_cast<uint64_t>(root.GetIntOr("seed", 42));

  if (root.Contains("retrieval")) {
    const JsonValue& retrieval = root.Get("retrieval");
    if (retrieval.is_string()) {
      // Backend name only; knobs keep their defaults.
      ETUDE_ASSIGN_OR_RETURN(
          spec.retrieval.backend,
          ann::RetrievalBackendFromString(retrieval.as_string()));
    } else if (retrieval.is_object()) {
      ETUDE_ASSIGN_OR_RETURN(
          spec.retrieval.backend,
          ann::RetrievalBackendFromString(
              retrieval.GetStringOr("backend", "exact")));
      spec.retrieval.nlist =
          retrieval.GetIntOr("nlist", spec.retrieval.nlist);
      spec.retrieval.nprobe =
          retrieval.GetIntOr("nprobe", spec.retrieval.nprobe);
      spec.retrieval.rerank =
          retrieval.GetIntOr("rerank", spec.retrieval.rerank);
      spec.retrieval.pq_m = retrieval.GetIntOr("pq_m", spec.retrieval.pq_m);
      spec.retrieval.int8_lists =
          retrieval.GetBoolOr("int8_lists", spec.retrieval.int8_lists);
      spec.retrieval.seed = static_cast<uint64_t>(
          retrieval.GetIntOr("seed",
                             static_cast<int64_t>(spec.retrieval.seed)));
    } else {
      return Status::InvalidArgument(
          "'retrieval' must be a backend name or an object");
    }
    if (spec.retrieval.nlist < 0 || spec.retrieval.nprobe < 1 ||
        spec.retrieval.rerank < 0 || spec.retrieval.pq_m < 0) {
      return Status::InvalidArgument(
          "retrieval knobs must satisfy nlist >= 0, nprobe >= 1, "
          "rerank >= 0, pq_m >= 0");
    }
  }
  return spec;
}

Result<BenchmarkSpec> LoadBenchmarkSpec(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::IoError("cannot open spec file " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseBenchmarkSpec(buffer.str());
}

}  // namespace etude::core

#ifndef ETUDE_CORE_SLO_FEASIBILITY_H_
#define ETUDE_CORE_SLO_FEASIBILITY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "models/session_model.h"
#include "sim/device.h"

namespace etude::core {

/// Static SLO-feasibility analysis: decide — without running a simulation
/// — whether a deployment can hold its p90 latency objective at a given
/// arrival rate, from the model's *batched* plan polynomials
/// (tensor/plan_analysis.h AnalyzeBatchedCost via
/// SessionModel::BatchedCostModel) plus a queueing-delay bound.
///
/// The analysis mirrors the DES's analytic-batching execution mode
/// (serving::SimServerConfig::analytic_batching) term for term, so a
/// "feasible" verdict means the simulated p90 holds the SLO and an
/// "infeasible" verdict comes with a concrete counterexample line naming
/// the term that breaks (capacity or latency).

/// One candidate deployment point the linter evaluates.
struct DeployPoint {
  models::ExecutionMode mode = models::ExecutionMode::kJit;
  sim::DeviceSpec device = sim::DeviceSpec::Cpu();
  int replicas = 1;
  /// Maximum batch size B. 1 = unbatched per-request serving (the CPU
  /// FIFO path); > 1 = batch formation with this cap.
  int batch = 1;
  /// Session length every batch is padded to (the workload's maximum).
  int64_t session_length = 50;
  double lambda_rps = 100;  // offered arrival rate, requests/s
  double slo_p90_ms = 50;   // the latency objective to check

  // Server constants, mirrored from serving::SimServerConfig.
  double flush_interval_us = 2000;
  double framework_overhead_us = 150.0;
  double jitter_sigma = 0.08;
};

/// The verdict for one DeployPoint, with the analytic terms that produced
/// it (all microseconds unless noted).
struct FeasibilityVerdict {
  bool feasible = false;
  /// Steady-state batch size the formation loop converges to: requests
  /// gathered per flush interval under light load, growing towards the
  /// cap as executors saturate.
  double batch_eff = 1;
  double service_us = 0;     // S(batch_eff): one batch on one executor
  double utilization = 0;    // rho = lambda * S / (c * batch_eff)
  double form_wait_us = 0;   // batch-formation wait
  double queue_wait_us = 0;  // mean queueing delay (Allen-Cunneen M/G/c)
  double p90_estimate_us = 0;
  /// Human-readable witness of the violated constraint; empty when
  /// feasible.
  std::string counterexample;

  /// One line: verdict, utilization, p90 estimate and the wait terms.
  std::string Summary() const;
};

/// Evaluates one deployment point against the model's batched cost
/// polynomials. Pure arithmetic — no simulation is run.
FeasibilityVerdict CheckSloFeasibility(const models::SessionModel& model,
                                       const DeployPoint& point);

/// The feasibility frontier over batch sizes: `point` re-evaluated at
/// every B in `batches` (point.batch is ignored). The frontier exposes
/// which SLO violations batching can amortise away (weight-traffic-bound
/// encoders) and which it cannot (per-query catalog scans).
std::vector<std::pair<int, FeasibilityVerdict>> SloFeasibilityFrontier(
    const models::SessionModel& model, const DeployPoint& point,
    const std::vector<int>& batches);

}  // namespace etude::core

#endif  // ETUDE_CORE_SLO_FEASIBILITY_H_

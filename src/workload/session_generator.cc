#include "workload/session_generator.h"

#include <utility>

namespace etude::workload {

SessionGenerator::SessionGenerator(int64_t catalog_size,
                                   const WorkloadStats& stats,
                                   PowerLawSampler length_sampler,
                                   EmpiricalDistribution item_distribution,
                                   std::vector<int64_t> item_click_counts,
                                   uint64_t seed)
    : catalog_size_(catalog_size),
      stats_(stats),
      length_sampler_(std::move(length_sampler)),
      item_distribution_(std::move(item_distribution)),
      item_click_counts_(std::move(item_click_counts)),
      rng_(seed) {}

Result<SessionGenerator> SessionGenerator::Create(int64_t catalog_size,
                                                  const WorkloadStats& stats,
                                                  uint64_t seed) {
  if (catalog_size < 1) {
    return Status::InvalidArgument("catalog size must be >= 1");
  }
  if (stats.max_session_length < 1) {
    return Status::InvalidArgument("max session length must be >= 1");
  }
  ETUDE_ASSIGN_OR_RETURN(
      PowerLawSampler length_sampler,
      PowerLawSampler::Create(stats.session_length_alpha, 1,
                              stats.max_session_length));
  // Algorithm 1, line 7: sample C click counts from the click-count power
  // law. A dedicated RNG stream keeps the counts independent of how many
  // sessions are later drawn.
  ETUDE_ASSIGN_OR_RETURN(
      PowerLawSampler count_sampler,
      PowerLawSampler::Create(stats.click_count_alpha, 1,
                              1000000));  // counts capped at 1e6 clicks/item
  Rng count_rng(seed ^ 0xC0FFEE123456789AULL);
  std::vector<int64_t> counts(static_cast<size_t>(catalog_size));
  for (auto& c : counts) c = count_sampler.Sample(&count_rng);
  ETUDE_ASSIGN_OR_RETURN(EmpiricalDistribution item_distribution,
                         EmpiricalDistribution::FromCounts(counts));
  return SessionGenerator(catalog_size, stats, std::move(length_sampler),
                          std::move(item_distribution), std::move(counts),
                          seed);
}

Session SessionGenerator::NextSession() {
  Session session;
  session.session_id = next_session_id_++;
  const int64_t length = length_sampler_.Sample(&rng_);
  session.items.reserve(static_cast<size_t>(length));
  for (int64_t i = 0; i < length; ++i) {
    session.items.push_back(item_distribution_.Sample(&rng_));
  }
  return session;
}

std::vector<Session> SessionGenerator::GenerateSessions(int64_t num_clicks) {
  std::vector<Session> sessions;
  int64_t generated = 0;
  while (generated < num_clicks) {
    sessions.push_back(NextSession());
    generated += static_cast<int64_t>(sessions.back().items.size());
  }
  return sessions;
}

std::vector<Click> SessionGenerator::GenerateClicks(int64_t num_clicks) {
  std::vector<Click> clicks;
  clicks.reserve(static_cast<size_t>(num_clicks));
  int64_t generated = 0;
  while (generated < num_clicks) {
    const Session session = NextSession();
    for (const int64_t item : session.items) {
      Click click;
      click.session_id = session.session_id;
      click.item_id = item;
      click.timestep = ++next_timestep_;
      clicks.push_back(click);
      ++generated;
    }
  }
  return clicks;
}

}  // namespace etude::workload

#ifndef ETUDE_WORKLOAD_CLICKLOG_H_
#define ETUDE_WORKLOAD_CLICKLOG_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "workload/session_generator.h"

namespace etude::workload {

/// Configuration of the "ground-truth" e-Commerce click-log model.
///
/// The paper validates its synthetic generator by replaying a *real*
/// bol.com click log and comparing the latencies to a synthetic workload
/// generated from the log's marginal statistics. We do not have that log,
/// so this model stands in for reality: it is a *richer* generative process
/// than Algorithm 1 (popularity noise, trending items, within-session
/// repeat clicks, heavy-tailed length mixture), so that fitting marginals
/// on it and regenerating with Algorithm 1 is a meaningful round trip.
struct ClickLogModelConfig {
  int64_t catalog_size = 100000;
  double zipf_exponent = 1.05;        // base item popularity
  double popularity_noise = 0.35;     // lognormal noise on popularity
  double trending_fraction = 0.001;   // fraction of items boosted
  double trending_boost = 25.0;       // popularity multiplier for trending
  double repeat_probability = 0.18;   // P(re-click an earlier session item)
  double length_tail_mix = 0.15;      // weight of the heavy length tail
  int64_t max_session_length = 50;
};

/// Generates a reference click log with the above behavioural structure.
class RealClickLogModel {
 public:
  static Result<RealClickLogModel> Create(const ClickLogModelConfig& config,
                                          uint64_t seed);

  /// Generates sessions totalling at least `num_clicks` clicks.
  std::vector<Session> Generate(int64_t num_clicks);

  const ClickLogModelConfig& config() const { return config_; }

 private:
  RealClickLogModel(const ClickLogModelConfig& config,
                    EmpiricalDistribution popularity, uint64_t seed);

  int64_t SampleLength();

  ClickLogModelConfig config_;
  EmpiricalDistribution popularity_;
  Rng rng_;
  int64_t next_session_id_ = 0;
};

/// Estimates the two marginal statistics of Algorithm 1 (α_l, α_c) from an
/// observed click log, exactly as a data scientist would estimate them once
/// from a production log (Sec. II). Returns InvalidArgument for degenerate
/// logs (fewer than two sessions or items).
Result<WorkloadStats> EstimateWorkloadStats(
    const std::vector<Session>& sessions, int64_t catalog_size);

/// Summary statistics used to compare a synthetic log against a reference
/// log in the VAL-SYN experiment.
struct ClickLogSummary {
  int64_t num_sessions = 0;
  int64_t num_clicks = 0;
  double mean_session_length = 0;
  double p90_session_length = 0;
  double top1pct_click_share = 0;  // share of clicks on the top 1% items
  double gini_coefficient = 0;     // inequality of item popularity
};

ClickLogSummary SummarizeClickLog(const std::vector<Session>& sessions,
                                  int64_t catalog_size);

}  // namespace etude::workload

#endif  // ETUDE_WORKLOAD_CLICKLOG_H_

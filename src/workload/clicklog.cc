#include "workload/clicklog.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

namespace etude::workload {

RealClickLogModel::RealClickLogModel(const ClickLogModelConfig& config,
                                     EmpiricalDistribution popularity,
                                     uint64_t seed)
    : config_(config), popularity_(std::move(popularity)), rng_(seed) {}

Result<RealClickLogModel> RealClickLogModel::Create(
    const ClickLogModelConfig& config, uint64_t seed) {
  if (config.catalog_size < 2) {
    return Status::InvalidArgument("catalog size must be >= 2");
  }
  if (config.max_session_length < 1) {
    return Status::InvalidArgument("max session length must be >= 1");
  }
  // Item popularity: Zipf base with multiplicative lognormal noise and a
  // small set of "trending" items whose popularity is boosted. We build
  // integer pseudo-counts so EmpiricalDistribution can consume them.
  Rng rng(seed ^ 0x5EEDF00DCAFE1234ULL);
  std::vector<int64_t> counts(static_cast<size_t>(config.catalog_size));
  for (int64_t i = 0; i < config.catalog_size; ++i) {
    const double rank = static_cast<double>(i) + 1.0;
    double weight = std::pow(rank, -config.zipf_exponent);
    if (config.popularity_noise > 0) {
      weight *= std::exp(config.popularity_noise * rng.NextGaussian());
    }
    if (rng.NextDouble() < config.trending_fraction) {
      weight *= config.trending_boost;
    }
    // Scale into integer pseudo-counts; +1 keeps every item reachable.
    counts[static_cast<size_t>(i)] =
        static_cast<int64_t>(weight * 1e9) + 1;
  }
  ETUDE_ASSIGN_OR_RETURN(EmpiricalDistribution popularity,
                         EmpiricalDistribution::FromCounts(counts));
  return RealClickLogModel(config, std::move(popularity), seed);
}

int64_t RealClickLogModel::SampleLength() {
  // Mixture: mostly short sessions (geometric), with a heavy tail
  // (bounded Pareto-like) for long browsing sessions.
  int64_t length;
  if (rng_.NextDouble() < config_.length_tail_mix) {
    // Heavy tail: inverse-transform of x^-1.5 over [3, max].
    const double u = rng_.NextDoublePositive();
    const double lo = std::pow(3.0, -0.5);
    const double hi =
        std::pow(static_cast<double>(config_.max_session_length), -0.5);
    const double x = std::pow(lo - u * (lo - hi), -2.0);
    length = static_cast<int64_t>(x);
  } else {
    // Geometric with mean ~2.2 clicks, shifted to start at 1.
    length = 1;
    while (rng_.NextDouble() < 0.55 &&
           length < config_.max_session_length) {
      ++length;
    }
  }
  return std::clamp<int64_t>(length, 1, config_.max_session_length);
}

std::vector<Session> RealClickLogModel::Generate(int64_t num_clicks) {
  std::vector<Session> sessions;
  int64_t generated = 0;
  while (generated < num_clicks) {
    Session session;
    session.session_id = next_session_id_++;
    const int64_t length = SampleLength();
    session.items.reserve(static_cast<size_t>(length));
    for (int64_t i = 0; i < length; ++i) {
      // Visitors frequently return to an item seen earlier in the session
      // (the behaviour RepeatNet models); Algorithm 1 has no such term,
      // which is exactly why round-tripping through marginals is a real
      // test of the paper's validation claim.
      if (!session.items.empty() &&
          rng_.NextDouble() < config_.repeat_probability) {
        const size_t j = static_cast<size_t>(
            rng_.NextBounded(session.items.size()));
        session.items.push_back(session.items[j]);
      } else {
        session.items.push_back(popularity_.Sample(&rng_));
      }
    }
    generated += static_cast<int64_t>(session.items.size());
    sessions.push_back(std::move(session));
  }
  return sessions;
}

Result<WorkloadStats> EstimateWorkloadStats(
    const std::vector<Session>& sessions, int64_t catalog_size) {
  if (sessions.size() < 2) {
    return Status::InvalidArgument("need at least two sessions");
  }
  if (catalog_size < 2) {
    return Status::InvalidArgument("catalog size must be >= 2");
  }
  std::vector<int64_t> lengths;
  lengths.reserve(sessions.size());
  std::vector<int64_t> counts(static_cast<size_t>(catalog_size), 0);
  int64_t max_length = 1;
  for (const Session& session : sessions) {
    const int64_t length = static_cast<int64_t>(session.items.size());
    lengths.push_back(length);
    max_length = std::max(max_length, length);
    for (const int64_t item : session.items) {
      if (item >= 0 && item < catalog_size) {
        ++counts[static_cast<size_t>(item)];
      }
    }
  }
  // Click-count power law is fitted over items that received clicks.
  std::vector<int64_t> observed_counts;
  observed_counts.reserve(counts.size());
  for (const int64_t c : counts) {
    if (c > 0) observed_counts.push_back(c);
  }
  WorkloadStats stats;
  ETUDE_ASSIGN_OR_RETURN(stats.session_length_alpha,
                         FitPowerLawExponent(lengths, /*x_min=*/1));
  ETUDE_ASSIGN_OR_RETURN(stats.click_count_alpha,
                         FitPowerLawExponent(observed_counts, /*x_min=*/1));
  stats.max_session_length = max_length;
  return stats;
}

ClickLogSummary SummarizeClickLog(const std::vector<Session>& sessions,
                                  int64_t catalog_size) {
  ClickLogSummary summary;
  summary.num_sessions = static_cast<int64_t>(sessions.size());
  std::vector<int64_t> lengths;
  lengths.reserve(sessions.size());
  std::vector<int64_t> counts(static_cast<size_t>(catalog_size), 0);
  for (const Session& session : sessions) {
    lengths.push_back(static_cast<int64_t>(session.items.size()));
    summary.num_clicks += static_cast<int64_t>(session.items.size());
    for (const int64_t item : session.items) {
      if (item >= 0 && item < catalog_size) {
        ++counts[static_cast<size_t>(item)];
      }
    }
  }
  if (summary.num_sessions == 0) return summary;
  summary.mean_session_length =
      static_cast<double>(summary.num_clicks) /
      static_cast<double>(summary.num_sessions);
  std::sort(lengths.begin(), lengths.end());
  summary.p90_session_length = static_cast<double>(
      lengths[static_cast<size_t>(0.9 * static_cast<double>(
          lengths.size() - 1))]);

  std::sort(counts.begin(), counts.end());  // ascending
  const double total = static_cast<double>(
      std::accumulate(counts.begin(), counts.end(), int64_t{0}));
  if (total > 0) {
    // Share of clicks captured by the most-clicked 1% of the catalog.
    const size_t top = std::max<size_t>(1, counts.size() / 100);
    int64_t top_clicks = 0;
    for (size_t i = counts.size() - top; i < counts.size(); ++i) {
      top_clicks += counts[i];
    }
    summary.top1pct_click_share = static_cast<double>(top_clicks) / total;
    // Gini coefficient over the sorted counts.
    double weighted = 0.0;
    for (size_t i = 0; i < counts.size(); ++i) {
      weighted += static_cast<double>(2 * (i + 1)) *
                  static_cast<double>(counts[i]);
    }
    const double n = static_cast<double>(counts.size());
    summary.gini_coefficient = weighted / (n * total) - (n + 1.0) / n;
  }
  return summary;
}

}  // namespace etude::workload

#include "workload/empirical_distribution.h"

#include <algorithm>

#include "common/logging.h"

namespace etude::workload {

Result<EmpiricalDistribution> EmpiricalDistribution::FromCounts(
    const std::vector<int64_t>& counts) {
  if (counts.empty()) {
    return Status::InvalidArgument("counts must be non-empty");
  }
  double total = 0.0;
  for (const int64_t c : counts) {
    if (c < 0) return Status::InvalidArgument("negative click count");
    total += static_cast<double>(c);
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("at least one count must be positive");
  }
  EmpiricalDistribution dist;
  dist.prob_.resize(counts.size());
  dist.cumulative_.resize(counts.size());
  double running = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    dist.prob_[i] = static_cast<double>(counts[i]) / total;
    running += dist.prob_[i];
    dist.cumulative_[i] = running;
  }
  dist.cumulative_.back() = 1.0;  // guard against rounding
  dist.BuildAliasTable();
  return dist;
}

void EmpiricalDistribution::BuildAliasTable() {
  const size_t n = prob_.size();
  alias_prob_.assign(n, 0.0);
  alias_index_.assign(n, 0);
  // Walker/Vose: split the scaled probabilities into "small" (< 1) and
  // "large" (>= 1) work lists and pair them up.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = prob_[i] * static_cast<double>(n);
  }
  std::vector<int64_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<int64_t>(i));
    } else {
      large.push_back(static_cast<int64_t>(i));
    }
  }
  while (!small.empty() && !large.empty()) {
    const int64_t s = small.back();
    small.pop_back();
    const int64_t l = large.back();
    large.pop_back();
    alias_prob_[static_cast<size_t>(s)] = scaled[static_cast<size_t>(s)];
    alias_index_[static_cast<size_t>(s)] = l;
    scaled[static_cast<size_t>(l)] =
        scaled[static_cast<size_t>(l)] + scaled[static_cast<size_t>(s)] - 1.0;
    if (scaled[static_cast<size_t>(l)] < 1.0) {
      small.push_back(l);
    } else {
      large.push_back(l);
    }
  }
  // Whatever remains has scaled probability ~1 (up to rounding).
  for (const int64_t i : large) {
    alias_prob_[static_cast<size_t>(i)] = 1.0;
    alias_index_[static_cast<size_t>(i)] = i;
  }
  for (const int64_t i : small) {
    alias_prob_[static_cast<size_t>(i)] = 1.0;
    alias_index_[static_cast<size_t>(i)] = i;
  }
}

int64_t EmpiricalDistribution::Sample(Rng* rng) const {
  const int64_t n = num_items();
  const int64_t column = static_cast<int64_t>(rng->NextBounded(
      static_cast<uint64_t>(n)));
  const double u = rng->NextDouble();
  return u < alias_prob_[static_cast<size_t>(column)]
             ? column
             : alias_index_[static_cast<size_t>(column)];
}

int64_t EmpiricalDistribution::SampleInverseTransform(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) return num_items() - 1;
  return static_cast<int64_t>(it - cumulative_.begin());
}

double EmpiricalDistribution::Probability(int64_t i) const {
  ETUDE_CHECK(i >= 0 && i < num_items()) << "item id out of range";
  return prob_[static_cast<size_t>(i)];
}

}  // namespace etude::workload

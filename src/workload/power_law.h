#ifndef ETUDE_WORKLOAD_POWER_LAW_H_
#define ETUDE_WORKLOAD_POWER_LAW_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace etude::workload {

/// Samples from a discrete, bounded power-law distribution
/// P(x) ∝ x^(-alpha) for x in [min_value, max_value].
///
/// This is the distribution family behind both workload statistics in the
/// paper (Sec. II): session lengths (exponent α_l) and item click counts
/// (exponent α_c), estimated once from a real click log.
///
/// Sampling uses the inverse transform of the continuous bounded Pareto and
/// rounds down, which is O(1) per sample and accurate for the exponents of
/// interest (α in [1.2, 4]).
class PowerLawSampler {
 public:
  /// `alpha` must be > 1 and `1 <= min_value <= max_value`.
  static Result<PowerLawSampler> Create(double alpha, int64_t min_value,
                                        int64_t max_value);

  /// Draws one value in [min_value, max_value].
  int64_t Sample(Rng* rng) const;

  double alpha() const { return alpha_; }
  int64_t min_value() const { return min_value_; }
  int64_t max_value() const { return max_value_; }

 private:
  PowerLawSampler(double alpha, int64_t min_value, int64_t max_value);

  double alpha_;
  int64_t min_value_;
  int64_t max_value_;
  // Precomputed constants of the inverse CDF:
  // x = (lo^(1-a) - u * (lo^(1-a) - hi^(1-a)))^(1/(1-a)).
  double one_minus_alpha_;
  double lo_pow_;
  double pow_span_;
};

/// Maximum-likelihood estimate of the exponent of a (discrete) power law
/// from observed values >= x_min, using the Clauset et al. approximation
/// alpha = 1 + n / sum(ln(x_i / (x_min - 0.5))).
/// Returns InvalidArgument when fewer than two usable observations exist.
Result<double> FitPowerLawExponent(const std::vector<int64_t>& values,
                                   int64_t x_min = 1);

}  // namespace etude::workload

#endif  // ETUDE_WORKLOAD_POWER_LAW_H_

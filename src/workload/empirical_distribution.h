#ifndef ETUDE_WORKLOAD_EMPIRICAL_DISTRIBUTION_H_
#define ETUDE_WORKLOAD_EMPIRICAL_DISTRIBUTION_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace etude::workload {

/// A discrete distribution over item ids 0..C-1 built from per-item click
/// counts (the "empirical CDF of C click counts" of Algorithm 1, line 7).
///
/// Two sampling strategies are provided:
///  * `SampleInverseTransform` — binary search over the cumulative counts,
///    O(log C) per draw; this is the literal Algorithm 1, line 14.
///  * `Sample` — Walker/Vose alias method, O(1) per draw after O(C) setup.
///    The alias table is what lets the generator exceed one million clicks
///    per second on a single core at C = 10M (validated in
///    bench_workload_gen).
class EmpiricalDistribution {
 public:
  /// `counts[i]` is the click count of item i; at least one count must be
  /// positive, none may be negative.
  static Result<EmpiricalDistribution> FromCounts(
      const std::vector<int64_t>& counts);

  /// O(1) alias-method draw of an item id, distributed ∝ counts.
  int64_t Sample(Rng* rng) const;

  /// O(log C) inverse-transform draw from the cumulative distribution.
  int64_t SampleInverseTransform(Rng* rng) const;

  /// Probability of item `i`.
  double Probability(int64_t i) const;

  int64_t num_items() const { return static_cast<int64_t>(prob_.size()); }

 private:
  EmpiricalDistribution() = default;

  void BuildAliasTable();

  std::vector<double> prob_;        // normalised probabilities
  std::vector<double> cumulative_;  // inclusive prefix sums of prob_
  // Alias method tables.
  std::vector<double> alias_prob_;
  std::vector<int64_t> alias_index_;
};

}  // namespace etude::workload

#endif  // ETUDE_WORKLOAD_EMPIRICAL_DISTRIBUTION_H_

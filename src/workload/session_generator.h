#ifndef ETUDE_WORKLOAD_SESSION_GENERATOR_H_
#define ETUDE_WORKLOAD_SESSION_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "workload/empirical_distribution.h"
#include "workload/power_law.h"

namespace etude::workload {

/// One synthetic click: item `item_id` clicked as the `timestep`-th click
/// overall, inside session `session_id` (Algorithm 1's tuple (s, i, t)).
struct Click {
  int64_t session_id = 0;
  int64_t item_id = 0;
  int64_t timestep = 0;
};

/// One synthetic session: the ordered item ids a visitor interacted with.
struct Session {
  int64_t session_id = 0;
  std::vector<int64_t> items;
};

/// The two marginal statistics a user supplies, estimated once from a real
/// click log (Sec. II): the power-law exponents of the session-length and
/// click-count distributions. Defaults are the bol.com marginals used in
/// the paper's experiments.
struct WorkloadStats {
  double session_length_alpha = 2.2;  // α_l
  double click_count_alpha = 1.8;     // α_c
  int64_t max_session_length = 50;    // truncation of the length power law
};

/// Synthetic workload generator implementing Algorithm 1 of the paper:
/// given a catalog size C and the exponents (α_l, α_c), it first samples C
/// click counts from a power law, then emits sessions whose lengths follow
/// the length power law and whose items are drawn from the empirical
/// distribution of the click counts.
///
/// The generator is deterministic for a fixed seed and fast enough for
/// online load generation (>1M clicks/second on one core at C = 10M;
/// see bench_workload_gen).
class SessionGenerator {
 public:
  static Result<SessionGenerator> Create(int64_t catalog_size,
                                         const WorkloadStats& stats,
                                         uint64_t seed);

  /// Generates the next session (streaming interface used by the load
  /// generator).
  Session NextSession();

  /// Generates whole sessions until at least `num_clicks` clicks have been
  /// produced (Algorithm 1's main loop, lines 8-15).
  std::vector<Session> GenerateSessions(int64_t num_clicks);

  /// Flattens GenerateSessions into the paper's (s, i, t) click tuples.
  std::vector<Click> GenerateClicks(int64_t num_clicks);

  int64_t catalog_size() const { return catalog_size_; }
  const WorkloadStats& stats() const { return stats_; }

  /// The per-item click counts sampled upfront (Algorithm 1, line 7);
  /// exposed for validation/statistics.
  const std::vector<int64_t>& item_click_counts() const {
    return item_click_counts_;
  }

 private:
  SessionGenerator(int64_t catalog_size, const WorkloadStats& stats,
                   PowerLawSampler length_sampler,
                   EmpiricalDistribution item_distribution,
                   std::vector<int64_t> item_click_counts, uint64_t seed);

  int64_t catalog_size_;
  WorkloadStats stats_;
  PowerLawSampler length_sampler_;
  EmpiricalDistribution item_distribution_;
  std::vector<int64_t> item_click_counts_;
  Rng rng_;
  int64_t next_session_id_ = 0;
  int64_t next_timestep_ = 0;
};

}  // namespace etude::workload

#endif  // ETUDE_WORKLOAD_SESSION_GENERATOR_H_

#include "workload/power_law.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace etude::workload {

PowerLawSampler::PowerLawSampler(double alpha, int64_t min_value,
                                 int64_t max_value)
    : alpha_(alpha), min_value_(min_value), max_value_(max_value) {
  one_minus_alpha_ = 1.0 - alpha;
  const double lo = static_cast<double>(min_value);
  // +1 so that the value max_value itself has non-zero probability after
  // the floor() in Sample().
  const double hi = static_cast<double>(max_value) + 1.0;
  lo_pow_ = std::pow(lo, one_minus_alpha_);
  pow_span_ = lo_pow_ - std::pow(hi, one_minus_alpha_);
}

Result<PowerLawSampler> PowerLawSampler::Create(double alpha,
                                                int64_t min_value,
                                                int64_t max_value) {
  if (!(alpha > 1.0)) {
    return Status::InvalidArgument(
        "power law exponent must be > 1, got " + std::to_string(alpha));
  }
  if (min_value < 1 || max_value < min_value) {
    return Status::InvalidArgument("require 1 <= min_value <= max_value");
  }
  return PowerLawSampler(alpha, min_value, max_value);
}

int64_t PowerLawSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const double x =
      std::pow(lo_pow_ - u * pow_span_, 1.0 / one_minus_alpha_);
  const int64_t value = static_cast<int64_t>(x);
  return std::clamp(value, min_value_, max_value_);
}

Result<double> FitPowerLawExponent(const std::vector<int64_t>& values,
                                   int64_t x_min) {
  if (x_min < 1) {
    return Status::InvalidArgument("x_min must be >= 1");
  }
  // Exact maximum-likelihood fit of the discretised Pareto: an integer
  // observation k >= x_min represents the continuous range [k, k+1) (this
  // is precisely how PowerLawSampler discretises its draws), so
  //   P(k) = (k^(1-a) - (k+1)^(1-a)) / x_min^(1-a).
  // The log-likelihood is unimodal in a; we maximise it with a golden-
  // section search. The classic Clauset (x_min - 0.5) approximation is
  // badly biased in the x_min = 1 regime of session lengths and click
  // counts, which is why the exact form is used here.
  std::map<int64_t, int64_t> histogram;
  int64_t n = 0;
  int64_t max_value = x_min;
  for (const int64_t v : values) {
    if (v < x_min) continue;
    ++histogram[v];
    ++n;
    max_value = std::max(max_value, v);
  }
  if (n < 2 || (histogram.size() < 2)) {
    return Status::InvalidArgument(
        "need at least two distinct observations >= x_min to fit a power "
        "law");
  }
  const double lower_edge = static_cast<double>(x_min);
  const auto log_likelihood = [&](double alpha) {
    const double one_minus_alpha = 1.0 - alpha;
    const double log_norm = one_minus_alpha * std::log(lower_edge);
    double total = 0.0;
    for (const auto& [value, count] : histogram) {
      const double x = static_cast<double>(value);
      const double p = std::pow(x, one_minus_alpha) -
                       std::pow(x + 1.0, one_minus_alpha);
      total += static_cast<double>(count) *
               (std::log(std::max(p, 1e-300)) - log_norm);
    }
    return total;
  };
  // Golden-section search over a unimodal likelihood.
  constexpr double kGolden = 0.6180339887498949;
  double lo = 1.0001, hi = 20.0;
  double mid1 = hi - kGolden * (hi - lo);
  double mid2 = lo + kGolden * (hi - lo);
  double f1 = log_likelihood(mid1);
  double f2 = log_likelihood(mid2);
  for (int iteration = 0; iteration < 80; ++iteration) {
    if (f1 < f2) {
      lo = mid1;
      mid1 = mid2;
      f1 = f2;
      mid2 = lo + kGolden * (hi - lo);
      f2 = log_likelihood(mid2);
    } else {
      hi = mid2;
      mid2 = mid1;
      f2 = f1;
      mid1 = hi - kGolden * (hi - lo);
      f1 = log_likelihood(mid1);
    }
    if (hi - lo < 1e-7) break;
  }
  return (lo + hi) / 2.0;
}

}  // namespace etude::workload

#ifndef ETUDE_WORKLOAD_CLICKLOG_IO_H_
#define ETUDE_WORKLOAD_CLICKLOG_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "workload/session_generator.h"

namespace etude::workload {

/// Click-log CSV interchange, so that ETUDE can replay *actual* click
/// logs (the paper validates its synthetic generator against a real
/// bol.com log) and so that `etude generate` output can be re-ingested.
///
/// Format: a `session_id,item_id,timestep` header followed by one click
/// per line, grouped by session and ordered by timestep — exactly the
/// (s, i, t) tuples of Algorithm 1.

/// Serialises sessions to CSV.
Status WriteClickLogCsv(const std::vector<Session>& sessions,
                        std::ostream* out);
Status WriteClickLogCsvFile(const std::vector<Session>& sessions,
                            const std::string& path);

/// Parses a click-log CSV back into sessions (clicks of one session must
/// be contiguous; timesteps must be non-decreasing). Returns
/// InvalidArgument on malformed rows.
Result<std::vector<Session>> ReadClickLogCsv(std::istream* in);
Result<std::vector<Session>> ReadClickLogCsvFile(const std::string& path);

}  // namespace etude::workload

#endif  // ETUDE_WORKLOAD_CLICKLOG_IO_H_

#include "workload/clicklog_io.h"

#include <cstdlib>
#include <unordered_set>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/strings.h"

namespace etude::workload {

Status WriteClickLogCsv(const std::vector<Session>& sessions,
                        std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("null stream");
  *out << "session_id,item_id,timestep\n";
  int64_t timestep = 0;
  for (const Session& session : sessions) {
    for (const int64_t item : session.items) {
      *out << session.session_id << ',' << item << ',' << ++timestep
           << '\n';
    }
  }
  if (!out->good()) return Status::IoError("write failed");
  return Status::OK();
}

Status WriteClickLogCsvFile(const std::vector<Session>& sessions,
                            const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open " + path);
  return WriteClickLogCsv(sessions, &file);
}

Result<std::vector<Session>> ReadClickLogCsv(std::istream* in) {
  if (in == nullptr) return Status::InvalidArgument("null stream");
  std::string line;
  if (!std::getline(*in, line)) {
    return Status::InvalidArgument("empty click log");
  }
  if (ToLower(StripWhitespace(line)) != "session_id,item_id,timestep") {
    return Status::InvalidArgument(
        "expected 'session_id,item_id,timestep' header, got '" + line +
        "'");
  }
  std::vector<Session> sessions;
  std::unordered_set<int64_t> seen_sessions;
  int64_t previous_timestep = 0;
  int64_t line_number = 1;
  while (std::getline(*in, line)) {
    ++line_number;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    const std::vector<std::string> fields = Split(stripped, ',');
    if (fields.size() != 3) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": expected 3 fields");
    }
    char* end = nullptr;
    const int64_t session_id = std::strtoll(fields[0].c_str(), &end, 10);
    if (*end != '\0') {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": bad session id");
    }
    const int64_t item_id = std::strtoll(fields[1].c_str(), &end, 10);
    if (*end != '\0' || item_id < 0) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": bad item id");
    }
    const int64_t timestep = std::strtoll(fields[2].c_str(), &end, 10);
    if (*end != '\0' || timestep <= previous_timestep) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) +
          ": timesteps must be increasing");
    }
    previous_timestep = timestep;
    if (sessions.empty() || sessions.back().session_id != session_id) {
      // Clicks of one session must be contiguous.
      if (!seen_sessions.insert(session_id).second) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) + ": session " +
            std::to_string(session_id) + " is not contiguous");
      }
      Session session;
      session.session_id = session_id;
      sessions.push_back(std::move(session));
    }
    sessions.back().items.push_back(item_id);
  }
  return sessions;
}

Result<std::vector<Session>> ReadClickLogCsvFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open " + path);
  return ReadClickLogCsv(&file);
}

}  // namespace etude::workload

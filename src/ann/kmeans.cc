#include "ann/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace etude::ann {

namespace {
double SquaredDistance(const float* a, const float* b, int64_t d) {
  double total = 0;
  for (int64_t j = 0; j < d; ++j) {
    const double delta = static_cast<double>(a[j]) - b[j];
    total += delta * delta;
  }
  return total;
}
}  // namespace

Result<KMeansResult> KMeans(const tensor::Tensor& points, int64_t k,
                            const KMeansOptions& options) {
  if (points.rank() != 2 || points.dim(0) == 0) {
    return Status::InvalidArgument("points must be a non-empty [n, d]");
  }
  const int64_t n = points.dim(0), d = points.dim(1);
  if (k < 1 || k > n) {
    return Status::InvalidArgument("k must be in [1, n]");
  }

  Rng rng(options.seed);
  KMeansResult result;
  result.centroids = tensor::Tensor({k, d});
  result.assignments.assign(static_cast<size_t>(n), 0);

  // k-means++-style seeding on a bounded subsample: the first centroid is
  // uniform; each further centroid is drawn with probability proportional
  // to the squared distance to its nearest chosen centroid.
  const int64_t sample_size = std::min<int64_t>(n, 256 * k);
  std::vector<int64_t> sample(static_cast<size_t>(sample_size));
  for (auto& index : sample) {
    index = static_cast<int64_t>(rng.NextBounded(
        static_cast<uint64_t>(n)));
  }
  std::vector<double> distances(static_cast<size_t>(sample_size),
                                std::numeric_limits<double>::max());
  int64_t first = sample[static_cast<size_t>(
      rng.NextBounded(static_cast<uint64_t>(sample_size)))];
  std::copy(points.data() + first * d, points.data() + (first + 1) * d,
            result.centroids.data());
  for (int64_t c = 1; c < k; ++c) {
    double total = 0;
    for (int64_t i = 0; i < sample_size; ++i) {
      const double dist = SquaredDistance(
          points.data() + sample[static_cast<size_t>(i)] * d,
          result.centroids.data() + (c - 1) * d, d);
      auto& best = distances[static_cast<size_t>(i)];
      best = std::min(best, dist);
      total += best;
    }
    double threshold = rng.NextDouble() * total;
    int64_t chosen = sample[0];
    for (int64_t i = 0; i < sample_size; ++i) {
      threshold -= distances[static_cast<size_t>(i)];
      if (threshold <= 0) {
        chosen = sample[static_cast<size_t>(i)];
        break;
      }
    }
    std::copy(points.data() + chosen * d, points.data() + (chosen + 1) * d,
              result.centroids.data() + c * d);
  }

  // Lloyd iterations.
  std::vector<double> sums(static_cast<size_t>(k * d));
  std::vector<int64_t> counts(static_cast<size_t>(k));
  double previous_inertia = std::numeric_limits<double>::max();
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    result.iterations = iteration + 1;
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    double inertia = 0;
    for (int64_t i = 0; i < n; ++i) {
      const float* point = points.data() + i * d;
      double best = std::numeric_limits<double>::max();
      int64_t best_c = 0;
      for (int64_t c = 0; c < k; ++c) {
        const double dist =
            SquaredDistance(point, result.centroids.data() + c * d, d);
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      result.assignments[static_cast<size_t>(i)] = best_c;
      inertia += best;
      ++counts[static_cast<size_t>(best_c)];
      for (int64_t j = 0; j < d; ++j) {
        sums[static_cast<size_t>(best_c * d + j)] += point[j];
      }
    }
    result.inertia = inertia;
    for (int64_t c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) {
        // Re-seed an empty cluster with a random point.
        const int64_t pick = static_cast<int64_t>(
            rng.NextBounded(static_cast<uint64_t>(n)));
        std::copy(points.data() + pick * d,
                  points.data() + (pick + 1) * d,
                  result.centroids.data() + c * d);
        continue;
      }
      for (int64_t j = 0; j < d; ++j) {
        result.centroids.data()[c * d + j] = static_cast<float>(
            sums[static_cast<size_t>(c * d + j)] /
            static_cast<double>(counts[static_cast<size_t>(c)]));
      }
    }
    if (previous_inertia < std::numeric_limits<double>::max() &&
        previous_inertia - inertia <
            options.tolerance * previous_inertia) {
      break;
    }
    previous_inertia = inertia;
  }
  return result;
}

}  // namespace etude::ann

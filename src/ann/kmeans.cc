#include "ann/kmeans.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/parallel.h"
#include "tensor/kernels.h"

namespace etude::ann {

namespace {

/// Rows scored per MatMul call in the assignment pass: large enough to
/// amortise the centroid panel, small enough that the block's score
/// buffer stays cache-resident even at nlist in the thousands.
constexpr int64_t kAssignBlock = 128;

/// One assignment pass: for every row, the nearest centroid by L2 via the
/// dot trick — argmin |x-c|^2 = argmax(c.x - |c|^2/2) — with the dots
/// produced by the register-tiled MatMul kernel over blocks of rows
/// against the transposed centroids. Rows are split into one range per
/// worker; per-range centroid sums, counts and inertia merge in fixed
/// range order, so results are deterministic for a fixed thread count.
/// Pass sums == nullptr to skip the accumulation (the final labelling
/// pass only needs assignments + inertia).
void AssignPoints(const float* points, int64_t n, int64_t d,
                  const float* centroids, int64_t k,
                  std::vector<int64_t>& assignments, std::vector<double>* sums,
                  std::vector<int64_t>* counts, double* inertia) {
  std::vector<float> half_norms(static_cast<size_t>(k));
  for (int64_t c = 0; c < k; ++c) {
    half_norms[static_cast<size_t>(c)] =
        0.5f * tensor::kernels::DotKernel(centroids + c * d,
                                          centroids + c * d, d);
  }
  // Transposed centroids [d, k]: the B operand of the block MatMul.
  std::vector<float> centroids_t(static_cast<size_t>(d * k));
  for (int64_t c = 0; c < k; ++c) {
    for (int64_t j = 0; j < d; ++j) {
      centroids_t[static_cast<size_t>(j * k + c)] = centroids[c * d + j];
    }
  }
  const int64_t num_blocks = (n + kAssignBlock - 1) / kAssignBlock;
  int64_t num_ranges = 1;
  if (NumThreads() > 1 && !InParallelRegion() && num_blocks >= 2) {
    num_ranges = std::min<int64_t>(NumThreads(), num_blocks);
  }
  std::vector<std::vector<double>> range_sums;
  std::vector<std::vector<int64_t>> range_counts;
  if (sums != nullptr) {
    range_sums.assign(static_cast<size_t>(num_ranges),
                      std::vector<double>(static_cast<size_t>(k * d), 0.0));
    range_counts.assign(static_cast<size_t>(num_ranges),
                        std::vector<int64_t>(static_cast<size_t>(k), 0));
  }
  std::vector<double> range_inertia(static_cast<size_t>(num_ranges), 0.0);
  ParallelFor(
      0, num_ranges, 1,
      [points, n, d, k, &centroids_t, &half_norms, &assignments, sums,
       &range_sums, &range_counts, &range_inertia, num_blocks,
       num_ranges](int64_t lo, int64_t hi) {
        std::vector<float> scores(static_cast<size_t>(kAssignBlock * k));
        for (int64_t r = lo; r < hi; ++r) {
          const int64_t block_begin = num_blocks * r / num_ranges;
          const int64_t block_end = num_blocks * (r + 1) / num_ranges;
          double local_inertia = 0;
          for (int64_t block = block_begin; block < block_end; ++block) {
            const int64_t begin = block * kAssignBlock;
            const int64_t rows = std::min(kAssignBlock, n - begin);
            // The portable MatMul accumulates into its output.
            std::memset(scores.data(), 0,
                        static_cast<size_t>(rows * k) * sizeof(float));
            tensor::kernels::MatMulKernel(points + begin * d,
                                          centroids_t.data(), scores.data(),
                                          0, rows, d, k);
            for (int64_t i = 0; i < rows; ++i) {
              const float* row_scores = scores.data() + i * k;
              int64_t best_c = 0;
              float best = row_scores[0] - half_norms[0];
              for (int64_t c = 1; c < k; ++c) {
                const float value =
                    row_scores[c] - half_norms[static_cast<size_t>(c)];
                if (value > best) {
                  best = value;
                  best_c = c;
                }
              }
              const float* point = points + (begin + i) * d;
              assignments[static_cast<size_t>(begin + i)] = best_c;
              const double x2 = static_cast<double>(
                  tensor::kernels::DotKernel(point, point, d));
              local_inertia +=
                  std::max(0.0, x2 - 2.0 * static_cast<double>(best));
              if (sums != nullptr) {
                auto& sum = range_sums[static_cast<size_t>(r)];
                ++range_counts[static_cast<size_t>(r)]
                              [static_cast<size_t>(best_c)];
                for (int64_t j = 0; j < d; ++j) {
                  sum[static_cast<size_t>(best_c * d + j)] += point[j];
                }
              }
            }
          }
          range_inertia[static_cast<size_t>(r)] = local_inertia;
        }
      });
  double total_inertia = 0;
  for (const double value : range_inertia) total_inertia += value;
  *inertia = total_inertia;
  if (sums != nullptr) {
    std::fill(sums->begin(), sums->end(), 0.0);
    std::fill(counts->begin(), counts->end(), 0);
    for (int64_t r = 0; r < num_ranges; ++r) {
      const auto& sum = range_sums[static_cast<size_t>(r)];
      const auto& count = range_counts[static_cast<size_t>(r)];
      for (size_t i = 0; i < sums->size(); ++i) (*sums)[i] += sum[i];
      for (size_t c = 0; c < counts->size(); ++c) (*counts)[c] += count[c];
    }
  }
}

}  // namespace

Result<KMeansResult> KMeans(const tensor::Tensor& points, int64_t k,
                            const KMeansOptions& options) {
  if (points.rank() != 2 || points.dim(0) == 0) {
    return Status::InvalidArgument("points must be a non-empty [n, d]");
  }
  const int64_t n = points.dim(0), d = points.dim(1);
  if (k < 1 || k > n) {
    return Status::InvalidArgument("k must be in [1, n]");
  }

  Rng rng(options.seed);
  KMeansResult result;
  result.centroids = tensor::Tensor({k, d});
  result.assignments.assign(static_cast<size_t>(n), 0);

  // k-means++-style seeding on a bounded subsample: the first centroid is
  // uniform; each further centroid is drawn with probability proportional
  // to the squared distance to its nearest chosen centroid. The sampled
  // rows are gathered contiguously once so each round is a sequential
  // vectorised matvec (|x-c|^2 = |x|^2 - 2 c.x + |c|^2) instead of k
  // scattered scalar-distance passes — at catalog scale the seeding would
  // otherwise dwarf Lloyd itself.
  const int64_t sample_size =
      std::min<int64_t>(n, std::max<int64_t>(1 << 17, 4 * k));
  std::vector<int64_t> sample(static_cast<size_t>(sample_size));
  for (auto& index : sample) {
    index = static_cast<int64_t>(rng.NextBounded(
        static_cast<uint64_t>(n)));
  }
  std::vector<float> seed_rows(static_cast<size_t>(sample_size * d));
  std::vector<float> seed_norms(static_cast<size_t>(sample_size));
  for (int64_t i = 0; i < sample_size; ++i) {
    const float* row =
        points.data() + sample[static_cast<size_t>(i)] * d;
    std::copy(row, row + d, seed_rows.data() + i * d);
    seed_norms[static_cast<size_t>(i)] =
        tensor::kernels::DotKernel(row, row, d);
  }
  std::vector<double> distances(static_cast<size_t>(sample_size),
                                std::numeric_limits<double>::max());
  std::vector<float> seed_dots(static_cast<size_t>(sample_size));
  int64_t first = sample[static_cast<size_t>(
      rng.NextBounded(static_cast<uint64_t>(sample_size)))];
  std::copy(points.data() + first * d, points.data() + (first + 1) * d,
            result.centroids.data());
  for (int64_t c = 1; c < k; ++c) {
    const float* previous = result.centroids.data() + (c - 1) * d;
    const double c2 =
        static_cast<double>(tensor::kernels::DotKernel(previous, previous, d));
    tensor::kernels::MatVecKernel(seed_rows.data(), previous,
                                  seed_dots.data(), 0, sample_size, d);
    double total = 0;
    for (int64_t i = 0; i < sample_size; ++i) {
      const double dist = std::max(
          0.0, static_cast<double>(seed_norms[static_cast<size_t>(i)]) -
                   2.0 * static_cast<double>(
                             seed_dots[static_cast<size_t>(i)]) +
                   c2);
      auto& best = distances[static_cast<size_t>(i)];
      best = std::min(best, dist);
      total += best;
    }
    double threshold = rng.NextDouble() * total;
    int64_t chosen = sample[0];
    for (int64_t i = 0; i < sample_size; ++i) {
      threshold -= distances[static_cast<size_t>(i)];
      if (threshold <= 0) {
        chosen = sample[static_cast<size_t>(i)];
        break;
      }
    }
    std::copy(points.data() + chosen * d, points.data() + (chosen + 1) * d,
              result.centroids.data() + c * d);
  }

  // Optional Lloyd subsample: iterate on a bounded uniform draw of the
  // rows (gathered contiguously for scan locality); the final pass below
  // still labels every row against the converged centroids.
  const float* train = points.data();
  int64_t train_n = n;
  std::vector<float> train_rows;
  const bool subsampled =
      options.max_training_points > 0 && n > options.max_training_points;
  if (subsampled) {
    train_n = options.max_training_points;
    train_rows.resize(static_cast<size_t>(train_n * d));
    for (int64_t i = 0; i < train_n; ++i) {
      const int64_t pick = static_cast<int64_t>(
          rng.NextBounded(static_cast<uint64_t>(n)));
      std::copy(points.data() + pick * d, points.data() + (pick + 1) * d,
                train_rows.data() + i * d);
    }
    train = train_rows.data();
  }

  // Lloyd iterations over the training rows.
  std::vector<int64_t> train_assignments(static_cast<size_t>(train_n), 0);
  std::vector<double> sums(static_cast<size_t>(k * d));
  std::vector<int64_t> counts(static_cast<size_t>(k));
  double previous_inertia = std::numeric_limits<double>::max();
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    result.iterations = iteration + 1;
    double inertia = 0;
    AssignPoints(train, train_n, d, result.centroids.data(), k,
                 train_assignments, &sums, &counts, &inertia);
    result.inertia = inertia;
    for (int64_t c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) {
        // Re-seed an empty cluster with a random point.
        const int64_t pick = static_cast<int64_t>(
            rng.NextBounded(static_cast<uint64_t>(n)));
        std::copy(points.data() + pick * d,
                  points.data() + (pick + 1) * d,
                  result.centroids.data() + c * d);
        continue;
      }
      for (int64_t j = 0; j < d; ++j) {
        result.centroids.data()[c * d + j] = static_cast<float>(
            sums[static_cast<size_t>(c * d + j)] /
            static_cast<double>(counts[static_cast<size_t>(c)]));
      }
    }
    if (previous_inertia < std::numeric_limits<double>::max() &&
        previous_inertia - inertia <
            options.tolerance * previous_inertia) {
      break;
    }
    previous_inertia = inertia;
  }

  // Final labelling pass over every row (the training assignments cannot
  // be reused even without subsampling: the centroids moved after the
  // last assignment).
  double final_inertia = 0;
  AssignPoints(points.data(), n, d, result.centroids.data(), k,
               result.assignments, nullptr, nullptr, &final_inertia);
  result.inertia = final_inertia;
  return result;
}

}  // namespace etude::ann

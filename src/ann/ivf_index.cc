#include "ann/ivf_index.h"

#include <algorithm>
#include <cmath>

#include "ann/kmeans.h"
#include "tensor/kernels.h"

namespace etude::ann {

Result<IvfIndex> IvfIndex::Build(const tensor::Tensor& items) {
  return Build(items, BuildOptions());
}

Result<IvfIndex> IvfIndex::Build(const tensor::Tensor& items,
                                 const BuildOptions& options) {
  if (items.rank() != 2 || items.dim(0) == 0) {
    return Status::InvalidArgument("items must be a non-empty [C, d]");
  }
  const int64_t c = items.dim(0), d = items.dim(1);
  int64_t nlist = options.nlist;
  if (nlist <= 0) {
    nlist = std::clamp<int64_t>(
        static_cast<int64_t>(4.0 * std::sqrt(static_cast<double>(c))), 1,
        c);
  }
  if (nlist > c) {
    return Status::InvalidArgument("nlist must be <= number of items");
  }

  KMeansOptions kmeans_options;
  kmeans_options.seed = options.seed;
  kmeans_options.max_iterations = options.kmeans_iterations;
  kmeans_options.max_training_points = options.kmeans_training_sample;
  ETUDE_ASSIGN_OR_RETURN(KMeansResult clustering,
                         KMeans(items, nlist, kmeans_options));

  IvfIndex index;
  index.num_items_ = c;
  index.dim_ = d;
  index.int8_lists_ = options.int8_lists;
  index.centroids_ = std::move(clustering.centroids);

  // Bucket items by assignment (counting sort for grouped storage).
  std::vector<int64_t> counts(static_cast<size_t>(nlist), 0);
  for (const int64_t assignment : clustering.assignments) {
    ++counts[static_cast<size_t>(assignment)];
  }
  index.list_offsets_.assign(static_cast<size_t>(nlist + 1), 0);
  for (int64_t l = 0; l < nlist; ++l) {
    index.list_offsets_[static_cast<size_t>(l + 1)] =
        index.list_offsets_[static_cast<size_t>(l)] +
        counts[static_cast<size_t>(l)];
  }
  index.item_ids_.resize(static_cast<size_t>(c));
  index.vectors_.resize(static_cast<size_t>(c * d));
  std::vector<int64_t> cursor(index.list_offsets_.begin(),
                              index.list_offsets_.end() - 1);
  for (int64_t i = 0; i < c; ++i) {
    const int64_t list = clustering.assignments[static_cast<size_t>(i)];
    const int64_t slot = cursor[static_cast<size_t>(list)]++;
    index.item_ids_[static_cast<size_t>(slot)] = i;
    std::copy(items.data() + i * d, items.data() + (i + 1) * d,
              index.vectors_.data() + slot * d);
  }
  if (options.int8_lists) {
    // Quantise the grouped rows and drop the fp32 copy: the whole point
    // of int8 lists is the 4x smaller scan footprint.
    index.codes_ =
        tensor::QuantizedMatrix::FromRows(index.vectors_.data(), c, d);
    std::vector<float>().swap(index.vectors_);
  }
  return index;
}

int64_t IvfIndex::ListSize(int64_t list) const {
  ETUDE_CHECK(list >= 0 && list < nlist()) << "list out of range";
  return list_offsets_[static_cast<size_t>(list + 1)] -
         list_offsets_[static_cast<size_t>(list)];
}

double IvfIndex::ExpectedScanFraction(int64_t nprobe) const {
  nprobe = std::clamp<int64_t>(nprobe, 1, nlist());
  return static_cast<double>(nprobe) / static_cast<double>(nlist());
}

int64_t IvfIndex::ResidentBytes() const {
  const int64_t centroid_bytes =
      centroids_.numel() * static_cast<int64_t>(sizeof(float));
  const int64_t id_bytes =
      static_cast<int64_t>(item_ids_.size() * sizeof(int64_t));
  const int64_t vector_bytes =
      int8_lists_ ? codes_.ResidentBytes()
                  : static_cast<int64_t>(vectors_.size() * sizeof(float));
  return centroid_bytes + id_bytes + vector_bytes;
}

tensor::TopKResult IvfIndex::Search(const tensor::Tensor& query, int64_t k,
                                    int64_t nprobe) const {
  ETUDE_CHECK(query.rank() == 1 && query.dim(0) == dim_)
      << "query width mismatch";
  nprobe = std::clamp<int64_t>(nprobe, 1, nlist());
  // Coarse stage: the nprobe centroids with the largest inner products.
  const tensor::TopKResult coarse =
      tensor::Mips(centroids_, query, nprobe);
  // Fine stage: fused scan inside the selected lists. One bounded heap is
  // shared across lists, so the register-cached cutoff carries over —
  // later (less promising) lists mostly fail the cutoff compare. The heap
  // holds slot indices; ids are resolved once at the end.
  std::vector<tensor::kernels::ScoredIndex> heap;
  heap.reserve(static_cast<size_t>(k));
  if (int8_lists_) {
    std::vector<int8_t> q;
    const float query_scale =
        tensor::QuantizeQueryInt8(query.data(), dim_, q);
    for (const int64_t list : coarse.indices) {
      tensor::kernels::QuantizedMipsScanKernel(
          codes_.data(), codes_.stride(), codes_.scales(), q.data(),
          query_scale, dim_, list_offsets_[static_cast<size_t>(list)],
          list_offsets_[static_cast<size_t>(list + 1)], k, heap);
    }
  } else {
    for (const int64_t list : coarse.indices) {
      tensor::kernels::MipsScanKernel(
          vectors_.data(), query.data(), dim_,
          list_offsets_[static_cast<size_t>(list)],
          list_offsets_[static_cast<size_t>(list + 1)], k, heap);
    }
  }
  for (auto& candidate : heap) {
    candidate.second = item_ids_[static_cast<size_t>(candidate.second)];
  }
  return tensor::FinishTopK(heap, k);
}

}  // namespace etude::ann

#include "ann/ivf_index.h"

#include <algorithm>
#include <cmath>

#include <queue>

#include "ann/kmeans.h"

namespace etude::ann {

Result<IvfIndex> IvfIndex::Build(const tensor::Tensor& items) {
  return Build(items, BuildOptions());
}

Result<IvfIndex> IvfIndex::Build(const tensor::Tensor& items,
                                 const BuildOptions& options) {
  if (items.rank() != 2 || items.dim(0) == 0) {
    return Status::InvalidArgument("items must be a non-empty [C, d]");
  }
  const int64_t c = items.dim(0), d = items.dim(1);
  int64_t nlist = options.nlist;
  if (nlist <= 0) {
    nlist = std::clamp<int64_t>(
        static_cast<int64_t>(4.0 * std::sqrt(static_cast<double>(c))), 1,
        c);
  }
  if (nlist > c) {
    return Status::InvalidArgument("nlist must be <= number of items");
  }

  KMeansOptions kmeans_options;
  kmeans_options.seed = options.seed;
  kmeans_options.max_iterations = options.kmeans_iterations;
  ETUDE_ASSIGN_OR_RETURN(KMeansResult clustering,
                         KMeans(items, nlist, kmeans_options));

  IvfIndex index;
  index.num_items_ = c;
  index.dim_ = d;
  index.centroids_ = std::move(clustering.centroids);

  // Bucket items by assignment (counting sort for grouped storage).
  std::vector<int64_t> counts(static_cast<size_t>(nlist), 0);
  for (const int64_t assignment : clustering.assignments) {
    ++counts[static_cast<size_t>(assignment)];
  }
  index.list_offsets_.assign(static_cast<size_t>(nlist + 1), 0);
  for (int64_t l = 0; l < nlist; ++l) {
    index.list_offsets_[static_cast<size_t>(l + 1)] =
        index.list_offsets_[static_cast<size_t>(l)] +
        counts[static_cast<size_t>(l)];
  }
  index.item_ids_.resize(static_cast<size_t>(c));
  index.vectors_.resize(static_cast<size_t>(c * d));
  std::vector<int64_t> cursor(index.list_offsets_.begin(),
                              index.list_offsets_.end() - 1);
  for (int64_t i = 0; i < c; ++i) {
    const int64_t list = clustering.assignments[static_cast<size_t>(i)];
    const int64_t slot = cursor[static_cast<size_t>(list)]++;
    index.item_ids_[static_cast<size_t>(slot)] = i;
    std::copy(items.data() + i * d, items.data() + (i + 1) * d,
              index.vectors_.data() + slot * d);
  }
  return index;
}

int64_t IvfIndex::ListSize(int64_t list) const {
  ETUDE_CHECK(list >= 0 && list < nlist()) << "list out of range";
  return list_offsets_[static_cast<size_t>(list + 1)] -
         list_offsets_[static_cast<size_t>(list)];
}

double IvfIndex::ExpectedScanFraction(int64_t nprobe) const {
  nprobe = std::clamp<int64_t>(nprobe, 1, nlist());
  return static_cast<double>(nprobe) / static_cast<double>(nlist());
}

tensor::TopKResult IvfIndex::Search(const tensor::Tensor& query, int64_t k,
                                    int64_t nprobe) const {
  ETUDE_CHECK(query.rank() == 1 && query.dim(0) == dim_)
      << "query width mismatch";
  nprobe = std::clamp<int64_t>(nprobe, 1, nlist());
  // Coarse stage: the nprobe centroids with the largest inner products.
  const tensor::TopKResult coarse =
      tensor::Mips(centroids_, query, nprobe);
  // Fine stage: exact scan inside the selected lists.
  tensor::TopKResult result;
  using Entry = std::pair<float, int64_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (const int64_t list : coarse.indices) {
    const int64_t begin = list_offsets_[static_cast<size_t>(list)];
    const int64_t end = list_offsets_[static_cast<size_t>(list + 1)];
    for (int64_t slot = begin; slot < end; ++slot) {
      const float* vector = vectors_.data() + slot * dim_;
      float score = 0;
      for (int64_t j = 0; j < dim_; ++j) score += vector[j] * query[j];
      if (static_cast<int64_t>(heap.size()) < k) {
        heap.emplace(score, item_ids_[static_cast<size_t>(slot)]);
      } else if (score > heap.top().first) {
        heap.pop();
        heap.emplace(score, item_ids_[static_cast<size_t>(slot)]);
      }
    }
  }
  result.indices.resize(heap.size());
  result.scores.resize(heap.size());
  for (int64_t i = static_cast<int64_t>(heap.size()) - 1; i >= 0; --i) {
    result.scores[static_cast<size_t>(i)] = heap.top().first;
    result.indices[static_cast<size_t>(i)] = heap.top().second;
    heap.pop();
  }
  return result;
}

}  // namespace etude::ann

#ifndef ETUDE_ANN_IVF_INDEX_H_
#define ETUDE_ANN_IVF_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "tensor/ops.h"
#include "tensor/quantized.h"
#include "tensor/tensor.h"

namespace etude::ann {

/// An IVF-flat approximate maximum-inner-product index over the item
/// embeddings — the "approximate nearest neighbor search" latency/quality
/// trade-off the paper names as future work (Sec. IV), in the style of
/// FAISS's IndexIVFFlat [Johnson et al., ref. 37 of the paper].
///
/// Build: k-means clusters the C item embeddings into `nlist` lists.
/// Search: score the `nlist` centroids against the query, visit only the
/// `nprobe` most promising lists, and run the exact inner-product scan
/// inside them. Expected scanned fraction ~ nprobe/nlist, which directly
/// shrinks the O(C*d) term that dominates SBR inference latency.
class IvfIndex {
 public:
  struct BuildOptions {
    int64_t nlist = 0;  // 0 = heuristic: ~4*sqrt(C), clamped to [1, C]
    uint64_t seed = 1;
    int kmeans_iterations = 10;
    /// Lloyd iterates on at most this many sampled rows (0 = all); the
    /// final assignment pass always covers the whole catalog.
    int64_t kmeans_training_sample = 1 << 17;
    /// Store the inverted lists int8-quantised (per-row scales) instead
    /// of fp32 and run the fused int8 kernel inside probed lists: ~4x
    /// less memory traffic on the bandwidth-bound fine stage, at the
    /// (tiny) quantisation recall cost the int8 exact scan pays.
    bool int8_lists = false;
  };

  /// Clusters `items` ([C, d]) and builds the inverted lists. The index
  /// keeps its own copy of the vectors (grouped by list for locality).
  static Result<IvfIndex> Build(const tensor::Tensor& items,
                                const BuildOptions& options);
  static Result<IvfIndex> Build(const tensor::Tensor& items);

  /// Approximate top-k by inner product, probing `nprobe` lists.
  tensor::TopKResult Search(const tensor::Tensor& query, int64_t k,
                            int64_t nprobe) const;

  int64_t num_items() const { return num_items_; }
  int64_t nlist() const { return centroids_.dim(0); }
  int64_t dim() const { return dim_; }

  /// Number of item vectors in list `list`.
  int64_t ListSize(int64_t list) const;

  /// Expected fraction of the catalog scanned with `nprobe` probes
  /// (average over the actual list sizes, probing the largest lists is
  /// the worst case; this is the mean list mass).
  double ExpectedScanFraction(int64_t nprobe) const;

  bool int8_lists() const { return int8_lists_; }

  /// Resident footprint of the index: centroids + grouped vectors (fp32
  /// or int8 codes + scales) + item ids.
  int64_t ResidentBytes() const;

 private:
  IvfIndex() = default;

  int64_t num_items_ = 0;
  int64_t dim_ = 0;
  bool int8_lists_ = false;
  tensor::Tensor centroids_;            // [nlist, d]
  std::vector<int64_t> list_offsets_;   // nlist+1 prefix offsets
  std::vector<int64_t> item_ids_;       // grouped by list
  std::vector<float> vectors_;          // grouped by list, row-major (fp32 mode)
  tensor::QuantizedMatrix codes_;       // grouped by list (int8 mode)
};

}  // namespace etude::ann

#endif  // ETUDE_ANN_IVF_INDEX_H_

#ifndef ETUDE_ANN_KMEANS_H_
#define ETUDE_ANN_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace etude::ann {

/// Result of Lloyd's k-means over embedding rows.
struct KMeansResult {
  tensor::Tensor centroids;          // [k, d]
  std::vector<int64_t> assignments;  // row -> centroid index
  double inertia = 0;                // sum of squared distances
  int iterations = 0;
};

struct KMeansOptions {
  int max_iterations = 15;
  double tolerance = 1e-4;  // relative inertia improvement to continue
  uint64_t seed = 1;
  /// When > 0 and the input has more rows, Lloyd iterates over a uniform
  /// subsample of this many rows and only the final assignment pass
  /// visits every row — the standard trick that makes clustering a
  /// multi-million-item catalog affordable without moving the centroids
  /// measurably (FAISS trains its coarse quantisers the same way).
  int64_t max_training_points = 0;
};

/// Lloyd's algorithm with k-means++-style seeding (D^2 sampling on a
/// subsample). Used as the coarse quantiser of the IVF indexes and for
/// the PQ sub-space codebooks. The assignment step runs on the AVX2
/// matvec kernel via the dot trick (nearest centroid by L2 equals
/// argmax(c.x - |c|^2/2)) and is range-parallel across rows.
/// Fails with InvalidArgument when k < 1 or k > #rows.
Result<KMeansResult> KMeans(const tensor::Tensor& points, int64_t k,
                            const KMeansOptions& options = {});

}  // namespace etude::ann

#endif  // ETUDE_ANN_KMEANS_H_

#ifndef ETUDE_ANN_KMEANS_H_
#define ETUDE_ANN_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace etude::ann {

/// Result of Lloyd's k-means over embedding rows.
struct KMeansResult {
  tensor::Tensor centroids;          // [k, d]
  std::vector<int64_t> assignments;  // row -> centroid index
  double inertia = 0;                // sum of squared distances
  int iterations = 0;
};

struct KMeansOptions {
  int max_iterations = 15;
  double tolerance = 1e-4;  // relative inertia improvement to continue
  uint64_t seed = 1;
};

/// Lloyd's algorithm with k-means++-style seeding (D^2 sampling on a
/// subsample). Used as the coarse quantiser of the IVF index.
/// Fails with InvalidArgument when k < 1 or k > #rows.
Result<KMeansResult> KMeans(const tensor::Tensor& points, int64_t k,
                            const KMeansOptions& options = {});

}  // namespace etude::ann

#endif  // ETUDE_ANN_KMEANS_H_

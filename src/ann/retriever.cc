#include "ann/retriever.h"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.h"

namespace etude::ann {

namespace {

int64_t HeuristicNlist(int64_t nlist, int64_t c) {
  if (nlist > 0) return nlist;
  return std::clamp<int64_t>(
      static_cast<int64_t>(4.0 * std::sqrt(static_cast<double>(c))), 1, c);
}

int64_t HeuristicPqM(int64_t m, int64_t d) {
  if (m > 0) return m;
  return std::clamp<int64_t>((d + 3) / 4, 1, d);
}

}  // namespace

std::string_view RetrievalBackendToString(RetrievalBackend backend) {
  switch (backend) {
    case RetrievalBackend::kExact:
      return "exact";
    case RetrievalBackend::kInt8:
      return "int8";
    case RetrievalBackend::kIvfFlat:
      return "ivf-flat";
    case RetrievalBackend::kIvfPq:
      return "ivf-pq";
  }
  return "exact";
}

Result<RetrievalBackend> RetrievalBackendFromString(std::string_view name) {
  if (name == "exact") return RetrievalBackend::kExact;
  if (name == "int8") return RetrievalBackend::kInt8;
  if (name == "ivf-flat") return RetrievalBackend::kIvfFlat;
  if (name == "ivf-pq") return RetrievalBackend::kIvfPq;
  return Status::InvalidArgument(
      "unknown retrieval backend '" + std::string(name) +
      "' (expected exact | int8 | ivf-flat | ivf-pq)");
}

RetrievalCost EstimateRetrievalCost(const RetrievalConfig& config, int64_t c,
                                    int64_t d) {
  RetrievalCost cost;
  const double cd = static_cast<double>(c) * static_cast<double>(d);
  const double fp32_table = cd * sizeof(float);
  const int64_t stride = tensor::kernels::QuantizedRowStride(d);
  const double int8_table =
      static_cast<double>(c) * static_cast<double>(stride + sizeof(float));
  switch (config.backend) {
    case RetrievalBackend::kExact: {
      cost.scan_bytes = fp32_table;
      cost.scan_flops = 2.0 * cd;
      cost.resident_bytes = static_cast<int64_t>(fp32_table);
      return cost;
    }
    case RetrievalBackend::kInt8: {
      cost.scan_bytes = int8_table;
      cost.scan_flops = 2.0 * cd;
      cost.resident_bytes = static_cast<int64_t>(int8_table);
      return cost;
    }
    case RetrievalBackend::kIvfFlat: {
      const int64_t nlist = HeuristicNlist(config.nlist, c);
      const int64_t nprobe =
          std::clamp<int64_t>(config.nprobe, 1, nlist);
      const double frac =
          static_cast<double>(nprobe) / static_cast<double>(nlist);
      const double coarse_bytes =
          static_cast<double>(nlist) * d * sizeof(float);
      const double list_bytes =
          frac * (config.int8_lists ? int8_table : fp32_table);
      cost.scan_bytes = coarse_bytes + list_bytes;
      cost.scan_flops =
          2.0 * static_cast<double>(nlist) * d + frac * 2.0 * cd;
      cost.resident_bytes = static_cast<int64_t>(
          coarse_bytes + (config.int8_lists ? int8_table : fp32_table) +
          static_cast<double>(c) * sizeof(int64_t));
      return cost;
    }
    case RetrievalBackend::kIvfPq: {
      const int64_t nlist = HeuristicNlist(config.nlist, c);
      const int64_t nprobe =
          std::clamp<int64_t>(config.nprobe, 1, nlist);
      const double frac =
          static_cast<double>(nprobe) / static_cast<double>(nlist);
      const int64_t m = HeuristicPqM(config.pq_m, d);
      const int64_t dsub = (d + m - 1) / m;
      const int64_t ksub = std::min<int64_t>(256, c);
      const double coarse_bytes =
          static_cast<double>(nlist) * d * sizeof(float);
      const double lut_bytes =
          static_cast<double>(m) * ksub * dsub * sizeof(float);
      const double code_bytes = frac * static_cast<double>(c) * m;
      const double rerank_bytes =
          static_cast<double>(config.rerank) * d * sizeof(float);
      cost.scan_bytes = coarse_bytes + lut_bytes + code_bytes + rerank_bytes;
      // Coarse matvec + LUT build + one add per code byte + re-rank dots.
      cost.scan_flops = 2.0 * static_cast<double>(nlist) * d +
                        2.0 * static_cast<double>(m) * ksub * dsub +
                        frac * static_cast<double>(c) * m +
                        2.0 * static_cast<double>(config.rerank) * d;
      double resident = coarse_bytes + static_cast<double>(c) * m +
                        static_cast<double>(m) * ksub * dsub * sizeof(float) +
                        static_cast<double>(c) * sizeof(int64_t);
      // Re-ranking keeps the fp32 table resident too.
      if (config.rerank > 0) resident += fp32_table;
      cost.resident_bytes = static_cast<int64_t>(resident);
      return cost;
    }
  }
  return cost;
}

Result<Retriever> Retriever::Build(const tensor::Tensor& items,
                                   const RetrievalConfig& config) {
  if (items.rank() != 2 || items.dim(0) == 0) {
    return Status::InvalidArgument("items must be a non-empty [C, d]");
  }
  Retriever retriever;
  retriever.config_ = config;
  retriever.items_ = &items;
  switch (config.backend) {
    case RetrievalBackend::kExact:
      return retriever;
    case RetrievalBackend::kInt8:
      retriever.quantized_ = tensor::QuantizedMatrix::FromTensor(items);
      return retriever;
    case RetrievalBackend::kIvfFlat: {
      IvfIndex::BuildOptions options;
      options.nlist = config.nlist;
      options.seed = config.seed;
      options.int8_lists = config.int8_lists;
      ETUDE_ASSIGN_OR_RETURN(IvfIndex index, IvfIndex::Build(items, options));
      retriever.ivf_.emplace(std::move(index));
      return retriever;
    }
    case RetrievalBackend::kIvfPq: {
      IvfPqIndex::BuildOptions options;
      options.nlist = config.nlist;
      options.m = config.pq_m;
      options.seed = config.seed;
      ETUDE_ASSIGN_OR_RETURN(IvfPqIndex index,
                             IvfPqIndex::Build(items, options));
      retriever.ivf_pq_.emplace(std::move(index));
      return retriever;
    }
  }
  return Status::InvalidArgument("unknown retrieval backend");
}

tensor::TopKResult Retriever::Retrieve(const tensor::Tensor& query,
                                       int64_t k) const {
  switch (config_.backend) {
    case RetrievalBackend::kExact:
      return tensor::Mips(*items_, query, k);
    case RetrievalBackend::kInt8:
      return quantized_.Mips(query, k);
    case RetrievalBackend::kIvfFlat:
      return ivf_->Search(query, k, config_.nprobe);
    case RetrievalBackend::kIvfPq: {
      IvfPqIndex::SearchOptions options;
      options.nprobe = config_.nprobe;
      options.rerank = config_.rerank;
      return ivf_pq_->Search(query, k, options,
                             config_.rerank > 0 ? items_->data() : nullptr);
    }
  }
  return tensor::TopKResult{};
}

RetrievalCost Retriever::Cost() const {
  RetrievalCost cost =
      EstimateRetrievalCost(config_, items_->dim(0), items_->dim(1));
  // Replace the analytic footprint with the built structure's actuals.
  switch (config_.backend) {
    case RetrievalBackend::kExact:
      break;
    case RetrievalBackend::kInt8:
      cost.resident_bytes = quantized_.ResidentBytes();
      break;
    case RetrievalBackend::kIvfFlat:
      cost.resident_bytes = ivf_->ResidentBytes();
      break;
    case RetrievalBackend::kIvfPq:
      cost.resident_bytes =
          ivf_pq_->ResidentBytes() +
          (config_.rerank > 0
               ? items_->numel() * static_cast<int64_t>(sizeof(float))
               : 0);
      break;
  }
  return cost;
}

}  // namespace etude::ann

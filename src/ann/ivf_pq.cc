#include "ann/ivf_pq.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ann/kmeans.h"
#include "tensor/kernels.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ETUDE_IVF_PQ_X86 1
#include <immintrin.h>
#endif

namespace etude::ann {

namespace {

constexpr int64_t kBlock = 8;  // slots per interleaved code block

/// Scans the padded slots [slot_begin, slot_end) of one list: LUT-sums
/// the block-interleaved codes, adds `bias` (= query . coarse centroid)
/// and pushes (score, slot) candidates. Portable reference — the AVX2
/// gather path accumulates in the same subspace order, so scores agree
/// bit for bit.
void ScanListPortable(const uint8_t* codes, const float* lut, int64_t m,
                      int64_t ksub, float bias, const int64_t* ids,
                      int64_t slot_begin, int64_t slot_end, int64_t k,
                      std::vector<tensor::kernels::ScoredIndex>& heap) {
  for (int64_t slot = slot_begin; slot < slot_end; ++slot) {
    if (ids[slot] < 0) continue;  // list padding
    const uint8_t* block = codes + (slot / kBlock) * kBlock * m;
    const int64_t lane = slot % kBlock;
    float score = bias;
    for (int64_t j = 0; j < m; ++j) {
      score += lut[j * ksub + block[j * kBlock + lane]];
    }
    tensor::kernels::HeapPushBounded(heap, k, score, slot);
  }
}

#if ETUDE_IVF_PQ_X86

/// Eight slots per iteration: for each subspace, the block's 8 code bytes
/// widen to int32 lanes and gather their LUT entries in one vpgatherdd.
/// Candidate filtering mirrors the fused scans: a register-cached heap
/// cutoff with HeapPushBounded's strict `>` semantics.
__attribute__((target("avx2"))) void ScanListAvx2(
    const uint8_t* codes, const float* lut, int64_t m, int64_t ksub,
    float bias, const int64_t* ids, int64_t slot_begin, int64_t slot_end,
    int64_t k, std::vector<tensor::kernels::ScoredIndex>& heap) {
  float cutoff = -std::numeric_limits<float>::infinity();
  if (static_cast<int64_t>(heap.size()) == k) cutoff = heap.front().first;
  int64_t fill = k - static_cast<int64_t>(heap.size());
  const __m256 bias_v = _mm256_set1_ps(bias);
  for (int64_t base = slot_begin; base < slot_end; base += kBlock) {
    const uint8_t* block = codes + (base / kBlock) * kBlock * m;
    __m256 acc = bias_v;
    for (int64_t j = 0; j < m; ++j) {
      const __m128i raw = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(block + j * kBlock));
      const __m256i idx = _mm256_cvtepu8_epi32(raw);
      acc = _mm256_add_ps(
          acc, _mm256_i32gather_ps(lut + j * ksub, idx, sizeof(float)));
    }
    alignas(32) float scores[kBlock];
    _mm256_store_ps(scores, acc);
    for (int64_t t = 0; t < kBlock; ++t) {
      const int64_t slot = base + t;
      if (ids[slot] < 0) continue;  // list padding
      if (scores[t] > cutoff || fill > 0) {
        tensor::kernels::HeapPushBounded(heap, k, scores[t], slot);
        if (fill > 0) --fill;
        if (static_cast<int64_t>(heap.size()) == k)
          cutoff = heap.front().first;
      }
    }
  }
}

#endif  // ETUDE_IVF_PQ_X86

void ScanList(const uint8_t* codes, const float* lut, int64_t m,
              int64_t ksub, float bias, const int64_t* ids,
              int64_t slot_begin, int64_t slot_end, int64_t k,
              std::vector<tensor::kernels::ScoredIndex>& heap) {
#if ETUDE_IVF_PQ_X86
  if (tensor::kernels::HasAvx2Fma()) {
    ScanListAvx2(codes, lut, m, ksub, bias, ids, slot_begin, slot_end, k,
                 heap);
    return;
  }
#endif
  ScanListPortable(codes, lut, m, ksub, bias, ids, slot_begin, slot_end, k,
                   heap);
}

}  // namespace

Result<IvfPqIndex> IvfPqIndex::Build(const tensor::Tensor& items,
                                     const BuildOptions& options) {
  if (items.rank() != 2 || items.dim(0) == 0) {
    return Status::InvalidArgument("items must be a non-empty [C, d]");
  }
  const int64_t c = items.dim(0), d = items.dim(1);
  int64_t nlist = options.nlist;
  if (nlist <= 0) {
    nlist = std::clamp<int64_t>(
        static_cast<int64_t>(4.0 * std::sqrt(static_cast<double>(c))), 1,
        c);
  }
  if (nlist > c) {
    return Status::InvalidArgument("nlist must be <= number of items");
  }
  int64_t m = options.m;
  if (m <= 0) m = std::clamp<int64_t>((d + 3) / 4, 1, d);
  if (m > d) {
    return Status::InvalidArgument("m must be <= embedding dim");
  }

  // Coarse quantiser: identical to IvfIndex (shared KMeans, shared
  // grouped-list layout).
  KMeansOptions kmeans_options;
  kmeans_options.seed = options.seed;
  kmeans_options.max_iterations = options.kmeans_iterations;
  kmeans_options.max_training_points = options.kmeans_training_sample;
  ETUDE_ASSIGN_OR_RETURN(KMeansResult clustering,
                         KMeans(items, nlist, kmeans_options));

  IvfPqIndex index;
  index.num_items_ = c;
  index.dim_ = d;
  index.m_ = m;
  index.dsub_ = (d + m - 1) / m;
  index.ksub_ = std::min<int64_t>(256, c);
  index.centroids_ = std::move(clustering.centroids);

  // Padded grouped layout: every list rounds up to whole 8-slot blocks so
  // the gather scan never reads a partial block. Padding slots carry
  // item id -1 (skipped) and code 0.
  std::vector<int64_t> counts(static_cast<size_t>(nlist), 0);
  for (const int64_t assignment : clustering.assignments) {
    ++counts[static_cast<size_t>(assignment)];
  }
  index.list_offsets_.assign(static_cast<size_t>(nlist + 1), 0);
  for (int64_t l = 0; l < nlist; ++l) {
    const int64_t padded =
        (counts[static_cast<size_t>(l)] + kBlock - 1) / kBlock * kBlock;
    index.list_offsets_[static_cast<size_t>(l + 1)] =
        index.list_offsets_[static_cast<size_t>(l)] + padded;
  }
  const int64_t total_slots = index.list_offsets_.back();
  index.item_ids_.assign(static_cast<size_t>(total_slots), -1);
  index.codes_.assign(static_cast<size_t>(total_slots * m), 0);
  std::vector<int64_t> slot_of_item(static_cast<size_t>(c));
  {
    std::vector<int64_t> cursor(index.list_offsets_.begin(),
                                index.list_offsets_.end() - 1);
    for (int64_t i = 0; i < c; ++i) {
      const int64_t list = clustering.assignments[static_cast<size_t>(i)];
      const int64_t slot = cursor[static_cast<size_t>(list)]++;
      index.item_ids_[static_cast<size_t>(slot)] = i;
      slot_of_item[static_cast<size_t>(i)] = slot;
    }
  }

  // Codebooks: per subspace, k-means over the residual sub-vectors
  // (vector minus its coarse centroid; residual codebooks are what make
  // 8-bit codes usable — residual magnitudes are a fraction of the
  // vectors'). The final assignment pass of KMeans doubles as the
  // encoding of all C items.
  index.codebooks_.assign(
      static_cast<size_t>(m * index.ksub_ * index.dsub_), 0.0f);
  tensor::Tensor sub({c, index.dsub_});
  for (int64_t j = 0; j < m; ++j) {
    for (int64_t i = 0; i < c; ++i) {
      const float* row = items.data() + i * d;
      const float* centroid =
          index.centroids_.data() +
          clustering.assignments[static_cast<size_t>(i)] * d;
      float* out = sub.data() + i * index.dsub_;
      for (int64_t t = 0; t < index.dsub_; ++t) {
        const int64_t col = j * index.dsub_ + t;
        out[t] = col < d ? row[col] - centroid[col] : 0.0f;
      }
    }
    KMeansOptions sub_options;
    sub_options.seed = options.seed + 0x9E37 * static_cast<uint64_t>(j + 1);
    sub_options.max_iterations = options.kmeans_iterations;
    sub_options.max_training_points = options.kmeans_training_sample;
    ETUDE_ASSIGN_OR_RETURN(KMeansResult codebook,
                           KMeans(sub, index.ksub_, sub_options));
    std::copy(codebook.centroids.data(),
              codebook.centroids.data() + index.ksub_ * index.dsub_,
              index.codebooks_.data() + j * index.ksub_ * index.dsub_);
    for (int64_t i = 0; i < c; ++i) {
      const int64_t slot = slot_of_item[static_cast<size_t>(i)];
      index.codes_[static_cast<size_t>((slot / kBlock) * kBlock * m +
                                       j * kBlock + slot % kBlock)] =
          static_cast<uint8_t>(codebook.assignments[static_cast<size_t>(i)]);
    }
  }
  return index;
}

double IvfPqIndex::ExpectedScanFraction(int64_t nprobe) const {
  nprobe = std::clamp<int64_t>(nprobe, 1, nlist());
  return static_cast<double>(nprobe) / static_cast<double>(nlist());
}

int64_t IvfPqIndex::ResidentBytes() const {
  return static_cast<int64_t>(codes_.size()) +
         static_cast<int64_t>(codebooks_.size() * sizeof(float)) +
         centroids_.numel() * static_cast<int64_t>(sizeof(float)) +
         static_cast<int64_t>(item_ids_.size() * sizeof(int64_t));
}

void IvfPqIndex::BuildLut(const tensor::Tensor& query,
                          std::vector<float>& lut) const {
  lut.resize(static_cast<size_t>(m_ * ksub_));
  std::vector<float> qsub(static_cast<size_t>(dsub_));
  for (int64_t j = 0; j < m_; ++j) {
    for (int64_t t = 0; t < dsub_; ++t) {
      const int64_t col = j * dsub_ + t;
      qsub[static_cast<size_t>(t)] = col < dim_ ? query[col] : 0.0f;
    }
    tensor::kernels::MatVecKernel(
        codebooks_.data() + j * ksub_ * dsub_, qsub.data(),
        lut.data() + j * ksub_, 0, ksub_, dsub_);
  }
}

tensor::TopKResult IvfPqIndex::Search(const tensor::Tensor& query, int64_t k,
                                      const SearchOptions& options,
                                      const float* exact_table) const {
  ETUDE_CHECK(query.rank() == 1 && query.dim(0) == dim_)
      << "query width mismatch";
  ETUDE_CHECK(k > 0) << "Search requires k > 0";
  const int64_t nprobe = std::clamp<int64_t>(options.nprobe, 1, nlist());
  // Coarse stage: list selection; the scores double as the per-list
  // biases (query . centroid) of the decomposed inner product.
  const tensor::TopKResult coarse = tensor::Mips(centroids_, query, nprobe);
  std::vector<float> lut;
  BuildLut(query, lut);
  const bool rerank = options.rerank > 0 && exact_table != nullptr;
  const int64_t keep = rerank ? std::max(k, options.rerank) : k;
  std::vector<tensor::kernels::ScoredIndex> heap;
  heap.reserve(static_cast<size_t>(keep));
  for (size_t p = 0; p < coarse.indices.size(); ++p) {
    const int64_t list = coarse.indices[p];
    ScanList(codes_.data(), lut.data(), m_, ksub_, coarse.scores[p],
             item_ids_.data(), list_offsets_[static_cast<size_t>(list)],
             list_offsets_[static_cast<size_t>(list + 1)], keep, heap);
  }
  for (auto& candidate : heap) {
    candidate.second = item_ids_[static_cast<size_t>(candidate.second)];
  }
  if (rerank) {
    for (auto& candidate : heap) {
      candidate.first = tensor::kernels::DotKernel(
          exact_table + candidate.second * dim_, query.data(), dim_);
    }
  }
  return tensor::FinishTopK(heap, k);
}

}  // namespace etude::ann

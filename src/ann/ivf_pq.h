#ifndef ETUDE_ANN_IVF_PQ_H_
#define ETUDE_ANN_IVF_PQ_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace etude::ann {

/// An IVF-PQ approximate maximum-inner-product index in the style of
/// FAISS's IndexIVFPQ [Johnson et al., ref. 37 of the paper]: the same
/// coarse k-means + inverted-list layout as IvfIndex, but the list
/// entries store 8-bit product-quantisation codes of the residual
/// (vector minus its coarse centroid) instead of the vector itself —
/// m bytes per item instead of 4d, which is what makes 10M-item catalogs
/// fit comfortably per replica.
///
/// Search decomposes the inner product per probed list:
///   q . x  ~=  q . centroid  +  sum_j LUT[j][code_j(x)]
/// where LUT[j][t] = dot(q_subspace_j, codebook_j[t]) is built once per
/// query (m*256 floats). The scan over a list is then m table lookups
/// per item — on AVX2, eight items at a time via vpgatherdd over
/// block-interleaved codes. An optional exact re-rank rescoring the top
/// candidates against the caller's fp32 table recovers most of the
/// recall PQ gives up.
class IvfPqIndex {
 public:
  struct BuildOptions {
    int64_t nlist = 0;  // 0 = heuristic: ~4*sqrt(C), clamped to [1, C]
    /// PQ subspaces (bytes per item). 0 = heuristic: ~d/4, so a code is
    /// ~16x smaller than the fp32 row, clamped to [1, d].
    int64_t m = 0;
    uint64_t seed = 1;
    int kmeans_iterations = 10;
    /// Lloyd subsample bound for the coarse quantiser and for each
    /// subspace codebook (0 = all rows).
    int64_t kmeans_training_sample = 1 << 17;
  };

  struct SearchOptions {
    int64_t nprobe = 8;
    /// When > 0 (and Search receives an exact fp32 table), the scan keeps
    /// max(k, rerank) PQ-scored candidates and rescores them exactly
    /// before the final top-k.
    int64_t rerank = 0;
  };

  /// Clusters `items` ([C, d]), trains the per-subspace codebooks on the
  /// residuals, and encodes every item into its list.
  static Result<IvfPqIndex> Build(const tensor::Tensor& items,
                                  const BuildOptions& options);

  /// Approximate top-k by inner product. `exact_table` is the caller's
  /// row-major [C, d] fp32 matrix (e.g. the item-embedding tensor) used
  /// only when options.rerank > 0; pass nullptr to skip re-ranking.
  tensor::TopKResult Search(const tensor::Tensor& query, int64_t k,
                            const SearchOptions& options,
                            const float* exact_table = nullptr) const;

  int64_t num_items() const { return num_items_; }
  int64_t nlist() const { return centroids_.dim(0); }
  int64_t dim() const { return dim_; }
  int64_t m() const { return m_; }
  int64_t ksub() const { return ksub_; }

  /// Expected fraction of the catalog visited with `nprobe` probes.
  double ExpectedScanFraction(int64_t nprobe) const;

  /// Resident footprint: packed codes + codebooks + centroids + ids.
  int64_t ResidentBytes() const;

 private:
  IvfPqIndex() = default;

  void BuildLut(const tensor::Tensor& query, std::vector<float>& lut) const;

  int64_t num_items_ = 0;
  int64_t dim_ = 0;
  int64_t m_ = 0;     // subspaces = bytes per encoded item
  int64_t dsub_ = 0;  // ceil(d / m); subspaces zero-pad past d
  int64_t ksub_ = 0;  // codebook entries per subspace (<= 256)
  tensor::Tensor centroids_;           // [nlist, d]
  std::vector<float> codebooks_;       // [m, ksub, dsub]
  std::vector<int64_t> list_offsets_;  // nlist+1 prefix offsets, in slots
  std::vector<int64_t> item_ids_;      // per padded slot; -1 = padding
  /// Codes grouped by list in blocks of 8 slots: within a block, the 8
  /// code bytes of subspace 0, then of subspace 1, ... — the layout the
  /// 8-lane gather scan consumes directly. Every list is padded to whole
  /// blocks (padding slots carry code 0 and item id -1).
  std::vector<uint8_t> codes_;
};

}  // namespace etude::ann

#endif  // ETUDE_ANN_IVF_PQ_H_

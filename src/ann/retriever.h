#ifndef ETUDE_ANN_RETRIEVER_H_
#define ETUDE_ANN_RETRIEVER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "ann/ivf_index.h"
#include "ann/ivf_pq.h"
#include "common/status.h"
#include "tensor/ops.h"
#include "tensor/quantized.h"
#include "tensor/tensor.h"

namespace etude::ann {

/// How the catalog scan — the op that dominates SBR inference latency —
/// is executed. Every backend returns a TopKResult with the same
/// contract; they trade recall and resident memory for latency.
enum class RetrievalBackend {
  kExact,    // fused fp32 AVX2 scan, recall 1 by definition
  kInt8,     // fused int8 scan over the quantised table (~4x less traffic)
  kIvfFlat,  // IVF coarse quantiser + fused scan inside nprobe lists
  kIvfPq,    // IVF + 8-bit PQ codes, LUT gather scan, optional re-rank
};

std::string_view RetrievalBackendToString(RetrievalBackend backend);

/// Parses "exact" | "int8" | "ivf-flat" | "ivf-pq".
Result<RetrievalBackend> RetrievalBackendFromString(std::string_view name);

struct RetrievalConfig {
  RetrievalBackend backend = RetrievalBackend::kExact;
  int64_t nlist = 0;   // IVF lists; 0 = heuristic ~4*sqrt(C)
  int64_t nprobe = 8;  // lists visited per query
  int64_t rerank = 0;  // ivf-pq: exact re-rank depth (0 = off)
  int64_t pq_m = 0;    // ivf-pq: bytes per code; 0 = heuristic ~d/4
  /// ivf-flat: store the lists int8-quantised and scan them with the
  /// fused int8 kernel (the composition the quantised kernel exists for).
  bool int8_lists = true;
  uint64_t seed = 1;
};

/// Per-query cost of a retrieval backend, in the units the plan/cost
/// model speaks (see SessionModel::CostModel): bytes moved and flops
/// executed by the scoring stage, plus the resident footprint of the
/// structure that must be in memory to serve.
struct RetrievalCost {
  double scan_bytes = 0;      // expected bytes moved per query
  double scan_flops = 0;      // expected flops per query
  int64_t resident_bytes = 0; // retrieval structure footprint
};

/// Analytic cost polynomial for a backend over a [C, d] catalog, usable
/// without building anything — the DES scale runs (`etude run`) model
/// 10M-item catalogs whose tables are never materialised. Heuristic
/// parameters (nlist, pq_m) resolve exactly as Build would resolve them.
RetrievalCost EstimateRetrievalCost(const RetrievalConfig& config, int64_t c,
                                    int64_t d);

/// Owns the structure behind one retrieval backend and answers top-k
/// queries through it. `items` (the fp32 [C, d] table) is borrowed and
/// must outlive the retriever: the exact backend scans it directly and
/// the ivf-pq re-rank rescores against it.
class Retriever {
 public:
  static Result<Retriever> Build(const tensor::Tensor& items,
                                 const RetrievalConfig& config);

  tensor::TopKResult Retrieve(const tensor::Tensor& query, int64_t k) const;

  const RetrievalConfig& config() const { return config_; }

  /// Costs of this built retriever (actual resident bytes, expected
  /// per-query traffic given the configured nprobe).
  RetrievalCost Cost() const;

 private:
  Retriever() = default;

  RetrievalConfig config_;
  const tensor::Tensor* items_ = nullptr;
  tensor::QuantizedMatrix quantized_;  // kInt8
  std::optional<IvfIndex> ivf_;        // kIvfFlat
  std::optional<IvfPqIndex> ivf_pq_;   // kIvfPq
};

}  // namespace etude::ann

#endif  // ETUDE_ANN_RETRIEVER_H_

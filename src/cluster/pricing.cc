#include "cluster/pricing.h"

namespace etude::cluster {

std::string_view CloudProviderToString(CloudProvider provider) {
  switch (provider) {
    case CloudProvider::kGcp:
      return "GCP";
    case CloudProvider::kAws:
      return "AWS";
    case CloudProvider::kAzure:
      return "Azure";
  }
  return "?";
}

const std::vector<InstanceOffering>& AllOfferings() {
  using DK = sim::DeviceKind;
  using CP = CloudProvider;
  // GCP prices are the paper's (Sec. III-C, 1-year commitment). AWS and
  // Azure use the comparable shapes (≈6 vCPU general purpose; one T4:
  // g4dn.2xlarge / NCasT4_v3; one A100 40GB: p4d slice / NC24ads_A100_v4)
  // at public 1-year-reserved list prices, rounded to whole dollars.
  static const std::vector<InstanceOffering>* kOfferings =
      new std::vector<InstanceOffering>{
          {CP::kGcp, "e2 (5.5 vCPU, 32GB)", DK::kCpu, 108.09},
          {CP::kGcp, "e2 + NVidia T4", DK::kGpuT4, 268.09},
          {CP::kGcp, "a2-highgpu-1g (A100 40GB)", DK::kGpuA100, 2008.80},
          {CP::kAws, "m6i.2xlarge", DK::kCpu, 152.00},
          {CP::kAws, "g4dn.2xlarge (T4)", DK::kGpuT4, 344.00},
          {CP::kAws, "p4d 1-GPU share (A100 40GB)", DK::kGpuA100, 2391.00},
          {CP::kAzure, "D8s_v5", DK::kCpu, 161.00},
          {CP::kAzure, "NC8as_T4_v3", DK::kGpuT4, 397.00},
          {CP::kAzure, "NC24ads_A100_v4", DK::kGpuA100, 2681.00},
      };
  return *kOfferings;
}

std::vector<InstanceOffering> OfferingsFor(CloudProvider provider) {
  std::vector<InstanceOffering> result;
  for (const InstanceOffering& offering : AllOfferings()) {
    if (offering.provider == provider) result.push_back(offering);
  }
  return result;
}

Result<InstanceOffering> FindOffering(CloudProvider provider,
                                      sim::DeviceKind device) {
  for (const InstanceOffering& offering : AllOfferings()) {
    if (offering.provider == provider && offering.device == device) {
      return offering;
    }
  }
  return Status::NotFound(
      std::string("no offering for device on provider ") +
      std::string(CloudProviderToString(provider)));
}

Result<double> MonthlyCostUsd(CloudProvider provider, sim::DeviceKind device,
                              int replicas) {
  if (replicas < 1) {
    return Status::InvalidArgument("replicas must be >= 1");
  }
  ETUDE_ASSIGN_OR_RETURN(InstanceOffering offering,
                         FindOffering(provider, device));
  return offering.monthly_cost_usd * static_cast<double>(replicas);
}

}  // namespace etude::cluster

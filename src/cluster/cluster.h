#ifndef ETUDE_CLUSTER_CLUSTER_H_
#define ETUDE_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "metrics/histogram.h"
#include "metrics/timeseries.h"
#include "models/session_model.h"
#include "obs/metric_registry.h"
#include "serving/request.h"
#include "serving/sim_server.h"
#include "sim/device.h"
#include "sim/simulation.h"

namespace etude::cluster {

/// Deployment description: how many instances of which type serve the
/// model, mirroring what `make run_deployed_benchmark` deploys into the
/// paper's Kubernetes cluster.
struct DeploymentConfig {
  sim::DeviceSpec device = sim::DeviceSpec::Cpu();
  int replicas = 1;
  models::ExecutionMode mode = models::ExecutionMode::kJit;
  serving::BatchingConfig batching;
  // Price batches with the batched plan polynomials on every pod and run
  // batch formation on any device (see SimServerConfig::analytic_batching).
  bool analytic_batching = false;
  bool session_affinity = false;  // k8s sessionAffinity: ClientIP
  // Pod scheduling + container start before the model download begins.
  int64_t pod_startup_us = 8LL * 1000 * 1000;
  // Bandwidth at which the serialised model is fetched from the storage
  // bucket during startup (bytes/us = MB/s).
  double model_load_mbps = 200.0;
  uint64_t seed = 23;
};

/// One serving pod: an ETUDE inference-server instance plus its Kubernetes
/// readiness state. The pod answers its readiness probe only after the
/// container started and the serialised model (the [C, d] embedding table
/// dominates its size) has been loaded.
class Pod {
 public:
  Pod(sim::Simulation* sim, const models::SessionModel* model,
      const serving::SimServerConfig& server_config,
      int64_t readiness_delay_us);

  bool ready() const { return ready_; }
  serving::SimInferenceServer* server() { return &server_; }

  /// Failure injection: the pod dies now (drops out of the endpoint set)
  /// and — as the Kubernetes deployment controller would — is replaced by
  /// a fresh container that becomes ready after the full startup +
  /// model-load delay.
  void Kill();

 private:
  sim::Simulation* sim_;
  int64_t readiness_delay_us_;
  serving::SimInferenceServer server_;
  bool ready_ = false;
  int64_t generation_ = 0;  // invalidates pending readiness events
};

/// The ClusterIP service fronting a deployment: load balancing over the
/// ready pods — round robin by default, or per-session sticky routing
/// (Kubernetes session affinity), which keeps a visitor's requests on one
/// pod. Requests arriving before any pod is ready are answered 503 (as
/// they would be by the k8s service with no endpoints).
class ClusterIpService : public serving::InferenceService {
 public:
  enum class Affinity { kRoundRobin, kSession };

  explicit ClusterIpService(std::vector<Pod*> pods,
                            Affinity affinity = Affinity::kRoundRobin);

  void HandleRequest(const serving::InferenceRequest& request,
                     serving::ResponseCallback callback) override;

 private:
  std::vector<Pod*> pods_;
  Affinity affinity_;
  size_t next_pod_ = 0;
};

/// A model deployment on the simulated cluster: N replica pods plus the
/// ClusterIP service, with per-month cost derived from the instance type.
class Deployment {
 public:
  /// Creates and "deploys" the pods; readiness is reached in simulated
  /// time (run the simulation past ReadyAtUs()).
  Deployment(sim::Simulation* sim, const models::SessionModel* model,
             const DeploymentConfig& config);

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  serving::InferenceService* service() { return service_.get(); }

  /// Failure injection: kills replica `index` (it recovers on its own
  /// after the pod startup + model load delay).
  void KillPod(int index);

  /// Virtual time at which every replica answers its readiness probe.
  int64_t ReadyAtUs() const { return ready_at_us_; }

  bool AllReady() const;

  /// Monthly cost of the deployment (replicas x instance price, GCP
  /// 1-year commitment).
  double MonthlyCostUsd() const;

  const DeploymentConfig& config() const { return config_; }

  int num_pods() const { return static_cast<int>(pods_.size()); }
  const serving::SimInferenceServer& pod_server(int index) const {
    return *pods_[static_cast<size_t>(index)]->server();
  }

  /// Fleet-wide view assembled from the per-pod telemetry, collected
  /// before the deployment is torn down.
  struct FleetTelemetry {
    // Per-pod registry snapshots merged: counters summed, latency
    // histograms Merge()d bucket-exactly, gauges summed across pods.
    obs::RegistrySnapshot metrics;
    // The fleet latency distribution — the exact Merge of every pod's
    // histogram (crosschecked in tests against merging them by hand).
    metrics::LatencyHistogram latency_us;
    // One finalized (utilization computed) timeline per pod, in pod
    // order. Same TickStats schema as the loadtest timeline.
    std::vector<metrics::TimeSeriesRecorder> pod_timelines;
  };
  FleetTelemetry CollectTelemetry() const;

 private:
  DeploymentConfig config_;
  std::vector<std::unique_ptr<Pod>> pods_;
  std::unique_ptr<ClusterIpService> service_;
  int64_t ready_at_us_ = 0;
};

/// Readiness delay for a model of the given embedding-table size.
int64_t ComputeReadinessDelayUs(const DeploymentConfig& config,
                                const models::SessionModel& model);

}  // namespace etude::cluster

#endif  // ETUDE_CLUSTER_CLUSTER_H_

#ifndef ETUDE_CLUSTER_PRICING_H_
#define ETUDE_CLUSTER_PRICING_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sim/device.h"

namespace etude::cluster {

/// Cloud environments. The paper runs on GCP and names "additional cloud
/// environments such as Microsoft Azure or Amazon Web Services" as future
/// work (Sec. IV); this table extends the cost side of that comparison.
enum class CloudProvider { kGcp, kAws, kAzure };

std::string_view CloudProviderToString(CloudProvider provider);

/// A priced instance offering: the device it carries and what it costs
/// per month with a one-year commitment (the paper's pricing basis).
struct InstanceOffering {
  CloudProvider provider = CloudProvider::kGcp;
  std::string instance_name;  // e.g. "e2-standard-6", "g4dn.2xlarge"
  sim::DeviceKind device = sim::DeviceKind::kCpu;
  double monthly_cost_usd = 0;
};

/// The offering table: for each provider, the closest equivalent of the
/// paper's three instance classes (a ~6 vCPU general-purpose box, a
/// single-T4 instance, a single-A100 instance). GCP rows are the paper's
/// own numbers (Sec. III-C); AWS/Azure rows are public list prices for
/// the comparable shapes, normalised to one-year commitments.
const std::vector<InstanceOffering>& AllOfferings();

/// Offerings of one provider, in device order (CPU, T4, A100).
std::vector<InstanceOffering> OfferingsFor(CloudProvider provider);

/// The offering backing a given device on a given provider.
Result<InstanceOffering> FindOffering(CloudProvider provider,
                                      sim::DeviceKind device);

/// Re-prices a fleet of `replicas` instances of `device` on `provider`.
/// Performance is assumed provider-neutral (same silicon); only the bill
/// changes — which is exactly how the paper treats instance choice.
Result<double> MonthlyCostUsd(CloudProvider provider, sim::DeviceKind device,
                              int replicas);

}  // namespace etude::cluster

#endif  // ETUDE_CLUSTER_PRICING_H_

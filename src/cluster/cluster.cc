#include "cluster/cluster.h"

#include <utility>

namespace etude::cluster {

Pod::Pod(sim::Simulation* sim, const models::SessionModel* model,
         const serving::SimServerConfig& server_config,
         int64_t readiness_delay_us)
    : sim_(sim),
      readiness_delay_us_(readiness_delay_us),
      server_(sim, model, server_config) {
  const int64_t generation = generation_;
  sim_->Schedule(readiness_delay_us_, [this, generation] {
    if (generation_ == generation) ready_ = true;
  });
}

void Pod::Kill() {
  ready_ = false;
  ++generation_;  // cancel any readiness event of the previous container
  const int64_t generation = generation_;
  // The deployment controller schedules a replacement container, which
  // must re-pull and re-load the model before passing its probe.
  sim_->Schedule(readiness_delay_us_, [this, generation] {
    if (generation_ == generation) ready_ = true;
  });
}

ClusterIpService::ClusterIpService(std::vector<Pod*> pods,
                                   Affinity affinity)
    : pods_(std::move(pods)), affinity_(affinity) {
  ETUDE_CHECK(!pods_.empty()) << "deployment needs at least one pod";
}

void ClusterIpService::HandleRequest(const serving::InferenceRequest& request,
                                     serving::ResponseCallback callback) {
  if (affinity_ == Affinity::kSession) {
    // Sticky routing: a session always lands on the same pod while that
    // pod is ready (k8s ClientIP affinity, with fallback on failure).
    const size_t home = static_cast<size_t>(request.session_id) %
                        pods_.size();
    for (size_t attempt = 0; attempt < pods_.size(); ++attempt) {
      Pod* pod = pods_[(home + attempt) % pods_.size()];
      if (pod->ready()) {
        pod->server()->HandleRequest(request, std::move(callback));
        return;
      }
    }
  } else {
    // Round-robin over ready endpoints only.
    for (size_t attempt = 0; attempt < pods_.size(); ++attempt) {
      Pod* pod = pods_[next_pod_];
      next_pod_ = (next_pod_ + 1) % pods_.size();
      if (pod->ready()) {
        pod->server()->HandleRequest(request, std::move(callback));
        return;
      }
    }
  }
  // No endpoints ready: the service has nothing to route to.
  serving::InferenceResponse response;
  response.request_id = request.request_id;
  response.ok = false;
  response.http_status = 503;
  callback(response);
}

int64_t ComputeReadinessDelayUs(const DeploymentConfig& config,
                                const models::SessionModel& model) {
  const double model_bytes = static_cast<double>(model.SerializedBytes());
  const double load_us = model_bytes / config.model_load_mbps;  // MB/s==B/us
  return config.pod_startup_us + static_cast<int64_t>(load_us);
}

Deployment::Deployment(sim::Simulation* sim,
                       const models::SessionModel* model,
                       const DeploymentConfig& config)
    : config_(config) {
  ETUDE_CHECK(config_.replicas >= 1) << "need at least one replica";
  const int64_t readiness_us = ComputeReadinessDelayUs(config_, *model);
  ready_at_us_ = sim->now_us() + readiness_us;
  std::vector<Pod*> pod_pointers;
  pod_pointers.reserve(static_cast<size_t>(config_.replicas));
  for (int i = 0; i < config_.replicas; ++i) {
    serving::SimServerConfig server_config;
    server_config.device = config_.device;
    server_config.mode = config_.mode;
    server_config.batching = config_.batching;
    server_config.analytic_batching = config_.analytic_batching;
    server_config.seed = config_.seed + static_cast<uint64_t>(i) * 7919;
    pods_.push_back(std::make_unique<Pod>(sim, model, server_config,
                                          readiness_us));
    pod_pointers.push_back(pods_.back().get());
  }
  service_ = std::make_unique<ClusterIpService>(
      std::move(pod_pointers), config_.session_affinity
                                   ? ClusterIpService::Affinity::kSession
                                   : ClusterIpService::Affinity::kRoundRobin);
}

void Deployment::KillPod(int index) {
  ETUDE_CHECK(index >= 0 && index < static_cast<int>(pods_.size()))
      << "pod index out of range";
  pods_[static_cast<size_t>(index)]->Kill();
}

bool Deployment::AllReady() const {
  for (const auto& pod : pods_) {
    if (!pod->ready()) return false;
  }
  return true;
}

Deployment::FleetTelemetry Deployment::CollectTelemetry() const {
  FleetTelemetry fleet;
  for (const auto& pod : pods_) {
    const serving::PodTelemetry& telemetry = pod->server()->telemetry();
    fleet.metrics.Merge(telemetry.MetricsSnapshot());
    fleet.latency_us.Merge(telemetry.LatencyUs());
    fleet.pod_timelines.push_back(
        telemetry.FinalizedTimeline(pod->server()->executor_slots()));
  }
  return fleet;
}

double Deployment::MonthlyCostUsd() const {
  return static_cast<double>(config_.replicas) *
         config_.device.monthly_cost_usd;
}

}  // namespace etude::cluster

#include "obs/chrome_trace.h"

#include <cstdio>

#include "common/json.h"

namespace etude::obs {

namespace {

JsonValue MetadataEvent(int32_t pid, const std::string& process_name) {
  JsonValue event = JsonValue::MakeObject();
  event.Set("name", JsonValue(std::string("process_name")));
  event.Set("ph", JsonValue(std::string("M")));
  event.Set("ts", JsonValue(static_cast<int64_t>(0)));
  event.Set("dur", JsonValue(static_cast<int64_t>(0)));
  event.Set("pid", JsonValue(static_cast<int64_t>(pid)));
  event.Set("tid", JsonValue(static_cast<int64_t>(0)));
  JsonValue args = JsonValue::MakeObject();
  args.Set("name", JsonValue(process_name));
  event.Set("args", std::move(args));
  return event;
}

}  // namespace

std::string ToChromeTraceJson(const std::vector<TraceEvent>& events) {
  JsonValue root = JsonValue::MakeArray();
  root.Append(MetadataEvent(kWallClockPid, "etude (wall clock)"));
  root.Append(MetadataEvent(kVirtualClockPid, "etude-sim (virtual time)"));
  for (const TraceEvent& event : events) {
    JsonValue object = JsonValue::MakeObject();
    object.Set("name", JsonValue(event.name));
    object.Set("cat", JsonValue(event.category.empty() ? "etude"
                                                       : event.category));
    object.Set("ph", JsonValue(std::string("X")));
    object.Set("ts", JsonValue(event.ts_us));
    object.Set("dur", JsonValue(event.dur_us));
    object.Set("pid", JsonValue(static_cast<int64_t>(event.pid)));
    object.Set("tid", JsonValue(event.tid));
    if (!event.trace_id.empty()) {
      JsonValue args = JsonValue::MakeObject();
      args.Set("trace_id", JsonValue(event.trace_id));
      object.Set("args", std::move(args));
    }
    root.Append(std::move(object));
  }
  return root.Dump();
}

Status WriteChromeTrace(const std::string& path,
                        const std::vector<TraceEvent>& events) {
  const std::string json = ToChromeTraceJson(events);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open trace file '" + path + "'");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const int close_result = std::fclose(file);
  if (written != json.size() || close_result != 0) {
    return Status::Internal("short write to trace file '" + path + "'");
  }
  return Status::OK();
}

}  // namespace etude::obs

#ifndef ETUDE_OBS_SLO_MONITOR_H_
#define ETUDE_OBS_SLO_MONITOR_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "metrics/histogram.h"
#include "obs/trace.h"

namespace etude::obs {

/// One timed phase inside a request, relative to the request's start
/// (e.g. parse -> inference -> serialize on the serving path). `name`
/// should come from a small fixed set: the monitor aggregates per-phase
/// histograms keyed by it.
struct PhaseSpan {
  std::string name;
  int64_t start_us = 0;  // offset from the request's start
  int64_t dur_us = 0;
};

/// One completed request as reported to the monitor.
struct RequestSample {
  int64_t total_us = 0;  // end-to-end server-side latency
  bool ok = true;        // false for any 4xx/5xx outcome
  std::string trace_id;  // the x-trace-id the response carried
  std::vector<PhaseSpan> phases;
};

/// A retained span tree of one of the slowest requests in the window,
/// exportable as a Chrome trace (see TailTraceEvents).
struct TailExemplar {
  std::string trace_id;
  int64_t ts_us = 0;  // monitor-clock time the request started
  int64_t total_us = 0;
  bool ok = true;
  std::vector<PhaseSpan> phases;
};

/// Windowed per-phase latency distribution.
struct PhaseWindow {
  std::string name;
  metrics::LatencyHistogram::Summary summary;
};

/// One consistent view over the sliding window. All percentiles are
/// LatencyHistogram bucket upper bounds and over-estimate by at most
/// ~1.6% (the histograms of the covered seconds are Merge()d, which
/// preserves bucket boundaries exactly, so merging adds no further
/// error).
struct WindowSnapshot {
  bool enabled = false;  // false when built with ETUDE_DISABLE_TRACING
  int64_t window_seconds = 0;
  int64_t covered_seconds = 0;  // seconds inside the window that saw traffic
  int64_t span_seconds = 0;     // denominator used for throughput

  int64_t requests = 0;
  int64_t errors = 0;
  double throughput_rps = 0;
  double error_rate = 0;

  // SLO view: the target is "p90 <= slo_p90_us", i.e. at most 10% of
  // requests may exceed the target latency. `burn_rate` is the classic
  // error-budget burn multiplier: observed violation rate divided by the
  // allowed 10% — 1.0 means the window consumes budget exactly as fast as
  // the SLO allows, >1 means the budget is burning down.
  int64_t slo_p90_us = 0;
  int64_t slo_violations = 0;
  double violation_rate = 0;
  double burn_rate = 0;

  metrics::LatencyHistogram::Summary latency;  // end-to-end, whole window
  std::vector<PhaseWindow> phases;             // where the time goes
  std::vector<TailExemplar> slowest;           // descending by total_us
};

struct SloMonitorConfig {
  // Width of the sliding window. Bucket granularity is one second.
  int window_seconds = 60;
  // The latency target the burn rate is computed against: p90 <= this.
  int64_t slo_p90_us = 50'000;
  // Slowest exemplars retained per one-second bucket; the window view
  // surfaces the top `tail_exemplars` across all covered buckets.
  int tail_exemplars = 4;
  // Test seam: microseconds since some epoch. Defaults to the monitor's
  // own steady clock (us since construction).
  std::function<int64_t()> clock_us;
};

/// Converts retained exemplars into Chrome trace-event complete spans
/// (one "request" root per exemplar plus one child per phase, each lane
/// on its own tid), ready for ToChromeTraceJson. Works in every build
/// configuration — exemplar lists are plain data.
std::vector<TraceEvent> TailTraceEvents(
    const std::vector<TailExemplar>& slowest);

/// TailTraceEvents rendered as a Chrome trace-event JSON document.
std::string TailTracesJson(const std::vector<TailExemplar>& slowest);

#ifndef ETUDE_DISABLE_TRACING

inline constexpr bool kSloMonitorCompiled = true;

/// Sliding-window latency/SLO tracker for the real serving path.
///
/// A ring of `window_seconds` one-second buckets, each owning its own
/// mutex: recording locks exactly one bucket, and rotation is just the
/// first recorder of a new second resetting the bucket that last held
/// `now - window_seconds` (epoch tagging — there is no rotation thread
/// and no global lock). Snapshot() merges the covered buckets into one
/// consistent window view; per-bucket histograms are combined with
/// LatencyHistogram::Merge, so windowed percentiles carry the same
/// <= ~1.6% bucket over-estimate as every other exporter.
class SloMonitor {
 public:
  explicit SloMonitor(const SloMonitorConfig& config);

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  /// Records one completed request into the bucket of the current second.
  void Record(RequestSample sample);

  /// One consistent view over the trailing window (including the current
  /// partial second).
  WindowSnapshot Snapshot() const;

  /// Microseconds on the monitor's clock (the timestamps exemplars carry).
  int64_t NowUs() const;

  const SloMonitorConfig& config() const { return config_; }

 private:
  struct Bucket {
    // Ring buckets sit below the http dispatch queue and above the
    // metric-registry locks in the serving path's lock order. Bucket
    // mutexes are never nested with each other: Record() locks exactly
    // one, Snapshot() locks them one at a time.
    mutable Mutex mutex
        ETUDE_ACQUIRED_AFTER("net::HttpServer::jobs_mutex_")
            ETUDE_ACQUIRED_BEFORE("obs::MetricRegistry::mutex_");
    int64_t epoch_s ETUDE_GUARDED_BY(mutex) = -1;  // absolute second held
    int64_t requests ETUDE_GUARDED_BY(mutex) = 0;
    int64_t errors ETUDE_GUARDED_BY(mutex) = 0;
    int64_t slo_violations ETUDE_GUARDED_BY(mutex) = 0;
    metrics::LatencyHistogram latency ETUDE_GUARDED_BY(mutex);
    std::vector<std::pair<std::string, metrics::LatencyHistogram>> phases
        ETUDE_GUARDED_BY(mutex);
    std::vector<TailExemplar> slowest ETUDE_GUARDED_BY(mutex);
  };

  SloMonitorConfig config_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<Bucket> buckets_;
};

#else  // ETUDE_DISABLE_TRACING

inline constexpr bool kSloMonitorCompiled = false;

/// Stub: with tracing compiled out, the SLO monitor records nothing and
/// occupies (next to) nothing — Record() and Snapshot() compile away.
class SloMonitor {
 public:
  explicit SloMonitor(const SloMonitorConfig& config) : config_(config) {}

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  void Record(RequestSample sample) { static_cast<void>(sample); }
  WindowSnapshot Snapshot() const { return WindowSnapshot{}; }
  int64_t NowUs() const { return 0; }

  const SloMonitorConfig& config() const { return config_; }

 private:
  SloMonitorConfig config_;
};

#endif  // ETUDE_DISABLE_TRACING

}  // namespace etude::obs

#endif  // ETUDE_OBS_SLO_MONITOR_H_

#ifndef ETUDE_OBS_TRACE_H_
#define ETUDE_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace etude::obs {

/// Chrome-trace process ids used to separate the two clocks a single ETUDE
/// process can emit spans on: real threads stamped with the steady clock,
/// and discrete-event simulation components stamped with virtual time.
/// Exporters render them as two distinct "processes" in Perfetto.
inline constexpr int32_t kWallClockPid = 1;
inline constexpr int32_t kVirtualClockPid = 2;

/// One trace-event, modelled on the Chrome trace-event format's complete
/// event ('X'): a named interval [ts_us, ts_us + dur_us] on track
/// (pid, tid). `trace_id` correlates all spans of one request across
/// components (exported as args.trace_id).
struct TraceEvent {
  std::string name;
  std::string category;  // "op", "server", "loadgen", "sim-server", ...
  int64_t ts_us = 0;     // steady-clock us since tracer epoch, or virtual us
  int64_t dur_us = 0;
  int32_t pid = kWallClockPid;
  int64_t tid = 0;  // wall-clock events: per-thread lane, assigned on first use
  std::string trace_id;
  /// Semicolon-joined ancestry including this span ("a;b;c"), recorded by
  /// the scoped span classes from the thread's span stack. Empty for
  /// events recorded directly (e.g. virtual-time simulation spans); the
  /// collapsed-stack exporter then treats the event as a root frame.
  std::string stack;
};

namespace internal {

/// The calling thread's stack of currently open scoped spans (names only;
/// string literals, so the pointers stay valid). ScopedSpan/ScopedOp push
/// on construction and pop on destruction, which is what lets the
/// collapsed-stack (flamegraph) exporter see nesting.
std::vector<std::string_view>& ThreadSpanStack();

/// "a;b;c" over the current thread stack.
std::string JoinThreadSpanStack();

}  // namespace internal

/// The global span/event recorder.
///
/// Design constraints (the Figure 2-4 numbers must stay valid):
///  - runtime-off by default: the only cost on an untraced hot path is one
///    relaxed atomic load and a branch;
///  - compile-time removable: building with -DETUDE_DISABLE_TRACING turns
///    the ETUDE_TRACE_SPAN macro into nothing;
///  - thread-aware: each recording thread appends to its own buffer under
///    an uncontended per-thread mutex, so concurrent workers never touch a
///    shared cache line on the record path.
///
/// Buffers are bounded (`set_thread_capacity`); events beyond the bound are
/// dropped and counted rather than growing without limit.
class Tracer {
 public:
  /// The process-wide tracer instance.
  static Tracer& Get();

  /// Cheap global check, safe from any thread.
  static bool enabled() {
    return enabled_flag_.load(std::memory_order_relaxed);
  }

  void Enable() { enabled_flag_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_flag_.store(false, std::memory_order_relaxed); }

  /// Microseconds on the tracer's steady clock (wall-clock span timestamps).
  int64_t NowUs() const;

  /// Records one event on the calling thread's buffer. If `event.pid` is
  /// kWallClockPid and `event.tid` is 0, the thread's lane id is filled in.
  /// No-op (with a drop counted) once the thread buffer is full.
  void Record(TraceEvent event);

  /// Merged view of all thread buffers, sorted by (pid, ts).
  std::vector<TraceEvent> Snapshot() const;

  /// Discards all recorded events (buffers stay registered) and resets the
  /// drop counter.
  void Clear();

  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Bound on events buffered per recording thread (default 1M).
  void set_thread_capacity(int64_t capacity) {
    thread_capacity_.store(capacity, std::memory_order_relaxed);
  }

 private:
  struct ThreadBuffer {
    mutable Mutex mutex;
    std::vector<TraceEvent> events ETUDE_GUARDED_BY(mutex);
    int64_t lane = 0;  // stable small tid for this thread's wall-clock spans
  };

  Tracer();
  ThreadBuffer* BufferForThisThread() ETUDE_EXCLUDES(registry_mutex_);

  static std::atomic<bool> enabled_flag_;

  std::chrono::steady_clock::time_point epoch_;
  mutable Mutex registry_mutex_;
  // Owned for the process lifetime: a buffer must outlive its thread so
  // Snapshot() after a worker pool shut down still sees its spans.
  std::vector<ThreadBuffer*> buffers_ ETUDE_GUARDED_BY(registry_mutex_);
  std::atomic<int64_t> thread_capacity_{1 << 20};
  std::atomic<int64_t> dropped_{0};
};

/// RAII wall-clock span: captures the start time at construction and
/// records a complete event at destruction — if tracing was enabled at
/// construction. `name` and `category` must outlive the span (string
/// literals in practice).
class ScopedSpan {
 public:
  ScopedSpan(std::string_view name, std::string_view category,
             std::string trace_id = "")
      : active_(Tracer::enabled()) {
    if (active_) {
      name_ = name;
      category_ = category;
      trace_id_ = std::move(trace_id);
      internal::ThreadSpanStack().push_back(name);
      start_us_ = Tracer::Get().NowUs();
    }
  }
  ~ScopedSpan() {
    if (!active_) return;
    Tracer& tracer = Tracer::Get();
    TraceEvent event;
    event.name = std::string(name_);
    event.category = std::string(category_);
    event.ts_us = start_us_;
    event.dur_us = tracer.NowUs() - start_us_;
    event.trace_id = std::move(trace_id_);
    event.stack = internal::JoinThreadSpanStack();
    internal::ThreadSpanStack().pop_back();
    tracer.Record(std::move(event));
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_;
  std::string_view name_;
  std::string_view category_;
  std::string trace_id_;
  int64_t start_us_ = 0;
};

}  // namespace etude::obs

// Compile-time removable span macro. ETUDE_TRACE_SPAN("parse", "server")
// opens a span for the rest of the enclosing scope; building with
// -DETUDE_DISABLE_TRACING removes it (and its string literals) entirely.
#ifdef ETUDE_DISABLE_TRACING
// sizeof keeps the operands formally "used" (no evaluation, no code).
#define ETUDE_TRACE_SPAN(name, category) \
  static_cast<void>(sizeof((name)))
#define ETUDE_TRACE_SPAN_ID(name, category, trace_id) \
  static_cast<void>(sizeof((name)) + sizeof((trace_id)))
#else
#define ETUDE_TRACE_SPAN_CONCAT2(a, b) a##b
#define ETUDE_TRACE_SPAN_CONCAT(a, b) ETUDE_TRACE_SPAN_CONCAT2(a, b)
#define ETUDE_TRACE_SPAN(name, category)                     \
  ::etude::obs::ScopedSpan ETUDE_TRACE_SPAN_CONCAT(          \
      etude_trace_span_, __LINE__)(name, category)
#define ETUDE_TRACE_SPAN_ID(name, category, trace_id)        \
  ::etude::obs::ScopedSpan ETUDE_TRACE_SPAN_CONCAT(          \
      etude_trace_span_, __LINE__)(name, category, trace_id)
#endif  // ETUDE_DISABLE_TRACING

#endif  // ETUDE_OBS_TRACE_H_

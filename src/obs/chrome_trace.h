#ifndef ETUDE_OBS_CHROME_TRACE_H_
#define ETUDE_OBS_CHROME_TRACE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace etude::obs {

/// Serialises events to the Chrome trace-event JSON array format: each
/// event becomes {"name","cat","ph":"X","ts","dur","pid","tid"[,"args"]}.
/// The output loads directly in Perfetto (ui.perfetto.dev) and
/// chrome://tracing. Metadata events naming the two clock "processes"
/// (wall clock / virtual time) are prepended.
std::string ToChromeTraceJson(const std::vector<TraceEvent>& events);

/// Writes ToChromeTraceJson(events) to `path`.
Status WriteChromeTrace(const std::string& path,
                        const std::vector<TraceEvent>& events);

}  // namespace etude::obs

#endif  // ETUDE_OBS_CHROME_TRACE_H_

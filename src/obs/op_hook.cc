#include "obs/op_hook.h"

namespace etude::obs {

namespace {
thread_local OpSink* thread_sink = nullptr;
}  // namespace

OpSink* SetThreadOpSink(OpSink* sink) {
  OpSink* previous = thread_sink;
  thread_sink = sink;
  return previous;
}

OpSink* ThreadOpSink() { return thread_sink; }

void ScopedOp::RecordTraceEvent(int64_t duration_ns) const {
  Tracer& tracer = Tracer::Get();
  TraceEvent event;
  event.name = name_;
  event.category = "op";
  event.dur_us = duration_ns / 1000;
  event.ts_us = tracer.NowUs() - event.dur_us;
  // The op's own name is on the thread span stack (pushed when the
  // outermost traced op opened), so the stack records full ancestry.
  event.stack = internal::JoinThreadSpanStack();
  tracer.Record(std::move(event));
}

}  // namespace etude::obs

#ifndef ETUDE_OBS_MEMSTATS_H_
#define ETUDE_OBS_MEMSTATS_H_

#include <atomic>
#include <cstdint>

namespace etude::obs {

/// Byte counters of tensor buffer traffic.
///
/// `tensor::Tensor` reports every fp32 buffer it allocates and frees here
/// (logical bytes: numel * sizeof(float)). Allocated/freed accumulate on
/// thread-local counters so the record path never touches a contended
/// cache line beyond one global live-bytes gauge; `live_bytes` and
/// `peak_live_bytes` are process-wide (an allocation on one thread can be
/// freed on another, so per-thread "live" is not meaningful on its own).
///
/// Building with -DETUDE_DISABLE_TRACING compiles the recording calls out
/// entirely; all queries then report zero.
///
/// kMemStatsCompiled is false in that configuration; tests that assert on
/// the accounting skip themselves when it is false.
#ifdef ETUDE_DISABLE_TRACING
inline constexpr bool kMemStatsCompiled = false;
#else
inline constexpr bool kMemStatsCompiled = true;
#endif

struct MemStats {
  int64_t allocated_bytes = 0;
  int64_t freed_bytes = 0;
  int64_t live_bytes = 0;
  int64_t peak_live_bytes = 0;
};

/// The calling thread's allocated/freed counters (live/peak are the
/// process-wide values — see MemStats).
MemStats ThreadMemStats();

/// Counters aggregated over every thread that ever recorded, plus the
/// process-wide live gauge and its high-water mark.
MemStats ProcessMemStats();

/// Resets the process-wide peak to the current live value (the aggregate
/// allocated/freed counters are monotonic and are not reset). Lets a
/// profile window measure its own high-water mark.
void ResetPeakLiveBytes();

/// Resident set size of the process in bytes, read from /proc/self/statm;
/// 0 where unavailable. Complements the logical tensor counters with what
/// the OS actually holds.
int64_t ProcessRssBytes();

/// Gauges of the arena executor (tensor/arena.h) on the calling thread:
/// the statically planned arena size, the high-water mark the runtime
/// actually reached while serving from it, and how many allocations were
/// served from the arena vs fell back to the heap. Reset each time a
/// script is activated, so after a request the stats describe exactly
/// that request. Unlike the traffic counters above these are NOT compiled
/// out under -DETUDE_DISABLE_TRACING: they feed the planner's correctness
/// cross-checks (static arena size == runtime high-water mark), not just
/// observability, and cost one thread-local write per tensor — never a
/// per-element path.
struct ArenaMemStats {
  int64_t planned_bytes = 0;
  int64_t high_water_bytes = 0;
  int64_t served_allocs = 0;
  int64_t fallback_allocs = 0;
};

ArenaMemStats ThreadArenaStats();

namespace memdetail {

#ifdef ETUDE_DISABLE_TRACING

inline void RecordAlloc(int64_t bytes) { static_cast<void>(bytes); }
inline void RecordFree(int64_t bytes) { static_cast<void>(bytes); }
inline int64_t BeginPeakWindow() { return 0; }
inline int64_t PeakWindowBytes(int64_t start_live) {
  static_cast<void>(start_live);
  return 0;
}

#else

/// Called by tensor::Tensor on every buffer allocation/release.
void RecordAlloc(int64_t bytes);
void RecordFree(int64_t bytes);

/// Marks the start of a per-op peak window on the calling thread and
/// returns the thread's net live bytes at that point. Windows do not
/// nest (ScopedOp only measures the outermost op of a thread).
int64_t BeginPeakWindow();

/// Highest net allocation above `start_live` (the BeginPeakWindow return
/// value) the calling thread reached since the window began; >= 0.
int64_t PeakWindowBytes(int64_t start_live);

#endif  // ETUDE_DISABLE_TRACING

/// Called by the arena executor (tensor/arena.cc); see ArenaMemStats for
/// why these stay compiled in under ETUDE_DISABLE_TRACING.
void ArenaActivate(int64_t planned_bytes);
void ArenaServe(int64_t watermark_bytes);
void ArenaFallback();

}  // namespace memdetail

}  // namespace etude::obs

#endif  // ETUDE_OBS_MEMSTATS_H_

#ifndef ETUDE_OBS_CRITICAL_PATH_H_
#define ETUDE_OBS_CRITICAL_PATH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/slo_monitor.h"

namespace etude::obs {

/// One hop of a request's critical path: a server phase (queue, parse,
/// inference, serialize, ...) or a synthesized residual hop.
struct CriticalPathHop {
  std::string name;
  int64_t start_us = 0;  // offset from the request's server-side start
  int64_t dur_us = 0;
  double share = 0;  // fraction of the CLIENT-observed total
};

/// The cross-hop breakdown of one slow request, assembled by correlating
/// the load generator's client-side latency with the server's tail
/// exemplar for the same trace id.
struct CriticalPathReport {
  std::string trace_id;
  int64_t client_total_us = 0;  // what the client waited
  int64_t server_total_us = 0;  // what the server's SLO monitor recorded
  std::vector<CriticalPathHop> hops;
  std::string dominant;  // name of the longest hop
};

/// Builds the breakdown. `phases` are the server's recorded phase spans
/// (any order; sorted by start here). Two residual hops are synthesized:
///   "unattributed"   server time no phase covers (server_total - sum of
///                    phases, when positive), and
///   "network+client" the gap between the client-observed total and the
///                    server-side total (clamped at zero) — wire time,
///                    kernel queues and client-side overhead.
/// Shares are fractions of `client_total_us`; pass client_total_us ==
/// server_total_us for a server-only view (e.g. DES spans).
CriticalPathReport AnalyzeCriticalPath(const std::string& trace_id,
                                       int64_t client_total_us,
                                       int64_t server_total_us,
                                       std::vector<PhaseSpan> phases);

/// Human-readable rendering for `etude loadtest` output: one line per
/// hop with duration and share, worst first marked.
std::string CriticalPathText(const CriticalPathReport& report);

}  // namespace etude::obs

#endif  // ETUDE_OBS_CRITICAL_PATH_H_

#ifndef ETUDE_OBS_FOLDED_H_
#define ETUDE_OBS_FOLDED_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace etude::obs {

/// One aggregated collapsed-stack line: `stack` is the semicolon-joined
/// frame path, `self_us` the time spent in exactly that path (total time
/// of the frame minus the time attributed to its recorded children).
struct FoldedLine {
  std::string stack;
  int64_t self_us = 0;
};

/// Folds trace events into collapsed stacks, the format flamegraph.pl and
/// speedscope consume: one line per distinct path, self time as the
/// value.
///
/// Events carrying a recorded span stack fold along it; events without
/// one (virtual-time simulation spans recorded directly) count as root
/// frames under their own name. When events come from more than one
/// (pid, tid) lane, each path is prefixed with its lane frame
/// ("t<lane>" for wall-clock threads, "v<lane>" for virtual-time
/// tracks) so concurrent threads don't melt into one another.
/// Lines are sorted by path; zero- and negative-self frames (pure
/// parents) are omitted.
std::vector<FoldedLine> FoldStacks(const std::vector<TraceEvent>& events);

/// Renders folded lines as `stack self_us\n` text.
std::string ToFoldedText(const std::vector<FoldedLine>& lines);

/// Writes ToFoldedText(FoldStacks(events)) to `path`.
Status WriteFolded(const std::string& path,
                   const std::vector<TraceEvent>& events);

}  // namespace etude::obs

#endif  // ETUDE_OBS_FOLDED_H_

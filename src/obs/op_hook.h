#ifndef ETUDE_OBS_OP_HOOK_H_
#define ETUDE_OBS_OP_HOOK_H_

#include <chrono>
#include <cstdint>

#include "obs/memstats.h"
#include "obs/trace.h"

namespace etude::obs {

/// Receives one callback per completed framework-level tensor op on the
/// thread it is attached to. Implemented by OpProfile (aggregation) and by
/// tests.
class OpSink {
 public:
  virtual ~OpSink() = default;

  /// `name` is a string literal identifying the op ("MatMul", "Mips", ...);
  /// `flops` is the op's analytic floating-point work (0 for pure data
  /// movement such as Embedding or Concat); `moved_bytes` is the analytic
  /// memory traffic of data-movement ops (reads + writes; 0 for compute
  /// ops, whose cost the FLOP count already captures); `peak_bytes` is the
  /// highest net tensor-buffer allocation the op reached above its
  /// starting point (its transient working set; 0 when memory accounting
  /// is compiled out).
  virtual void OnOp(const char* name, int64_t duration_ns, double flops,
                    double moved_bytes, int64_t peak_bytes) = 0;
};

/// Attaches `sink` to the calling thread (nullptr detaches); returns the
/// previously attached sink. Ops only report to the sink of the thread
/// executing them, so concurrent server workers can profile independently.
OpSink* SetThreadOpSink(OpSink* sink);

/// The calling thread's currently attached sink (nullptr if none).
OpSink* ThreadOpSink();

/// RAII attach/detach, restoring the previous sink on destruction.
class ScopedOpSink {
 public:
  explicit ScopedOpSink(OpSink* sink) : previous_(SetThreadOpSink(sink)) {}
  ~ScopedOpSink() { SetThreadOpSink(previous_); }

  ScopedOpSink(const ScopedOpSink&) = delete;
  ScopedOpSink& operator=(const ScopedOpSink&) = delete;

 private:
  OpSink* previous_;
};

/// Measurement scope placed inside every public op of the tensor engine.
///
/// Composite ops (Mips, GruCell, ScaledDotProductAttention) internally call
/// other public ops; only the outermost scope on a thread records, so a
/// profile attributes each nanosecond to exactly one framework-level op and
/// percentages sum to 100.
///
/// Cost when neither a sink is attached nor tracing is enabled: one
/// thread-local increment/decrement plus one thread-local load and one
/// relaxed atomic load — measured at < 1% of the JIT inference path.
class ScopedOp {
 public:
  ScopedOp(const char* name, double flops, double moved_bytes = 0.0)
      : name_(name), flops_(flops), moved_bytes_(moved_bytes) {
    nesting_depth() += 1;
    if (nesting_depth() == 1) {
      sink_ = ThreadOpSink();
      traced_ = Tracer::enabled();
      if (sink_ != nullptr || traced_) {
        start_live_ = memdetail::BeginPeakWindow();
        if (traced_) internal::ThreadSpanStack().push_back(name_);
        start_ = std::chrono::steady_clock::now();
      }
    }
  }

  ~ScopedOp() {
    if (nesting_depth() == 1 && (sink_ != nullptr || traced_)) {
      const auto end = std::chrono::steady_clock::now();
      const int64_t duration_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
              .count();
      const int64_t peak_bytes = memdetail::PeakWindowBytes(start_live_);
      if (sink_ != nullptr) {
        sink_->OnOp(name_, duration_ns, flops_, moved_bytes_, peak_bytes);
      }
      if (traced_) {
        RecordTraceEvent(duration_ns);
        internal::ThreadSpanStack().pop_back();
      }
    }
    nesting_depth() -= 1;
  }

  ScopedOp(const ScopedOp&) = delete;
  ScopedOp& operator=(const ScopedOp&) = delete;

 private:
  static int& nesting_depth() {
    static thread_local int depth = 0;
    return depth;
  }

  void RecordTraceEvent(int64_t duration_ns) const;

  const char* name_;
  double flops_;
  double moved_bytes_;
  OpSink* sink_ = nullptr;
  bool traced_ = false;
  int64_t start_live_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace etude::obs

namespace etude::obs {

/// False when built with -DETUDE_DISABLE_TRACING: ETUDE_OP_SPAN compiles
/// to nothing, so no op reaches any OpSink. Tests that assert on profiled
/// ops skip themselves when this is false.
#ifdef ETUDE_DISABLE_TRACING
inline constexpr bool kOpHooksCompiled = false;
#else
inline constexpr bool kOpHooksCompiled = true;
#endif

}  // namespace etude::obs

// Compile-time removable op hook used by tensor/ops.cc.
#ifdef ETUDE_DISABLE_TRACING
// sizeof keeps the operands formally "used" (no evaluation, no code).
#define ETUDE_OP_SPAN(name, flops) \
  static_cast<void>(sizeof((name)) + sizeof((flops)))
#define ETUDE_OP_SPAN_BYTES(name, flops, bytes) \
  static_cast<void>(sizeof((name)) + sizeof((flops)) + sizeof((bytes)))
#else
#define ETUDE_OP_SPAN(name, flops) \
  ::etude::obs::ScopedOp etude_op_span_(name, flops)
// Data-movement ops report their analytic memory traffic instead of FLOPs.
#define ETUDE_OP_SPAN_BYTES(name, flops, bytes) \
  ::etude::obs::ScopedOp etude_op_span_(name, flops, bytes)
#endif  // ETUDE_DISABLE_TRACING

#endif  // ETUDE_OBS_OP_HOOK_H_

#include "obs/metric_registry.h"

#include <thread>
#include <utility>

#include "common/logging.h"
#include "obs/prometheus.h"

namespace etude::obs {

namespace {

/// Escapes a label value for the Prometheus text format: backslash,
/// double-quote and newline are the three characters the format reserves.
std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string LabelString(const std::vector<MetricLabel>& labels) {
  std::string out;
  for (const MetricLabel& label : labels) {
    if (!out.empty()) out += ',';
    out += label.key + "=\"" + EscapeLabelValue(label.value) + "\"";
  }
  return out;
}

/// Walks/creates the nested objects of a dotted path and sets the leaf.
void SetJsonPath(JsonValue* root, std::string_view path, JsonValue value) {
  JsonValue* node = root;
  size_t start = 0;
  while (true) {
    const size_t dot = path.find('.', start);
    const std::string key(path.substr(
        start, dot == std::string_view::npos ? path.size() - start
                                             : dot - start));
    if (dot == std::string_view::npos) {
      node->Set(key, std::move(value));
      return;
    }
    if (!node->Contains(key) || !node->Get(key).is_object()) {
      node->Set(key, JsonValue::MakeObject());
    }
    node = node->GetMutable(key);
    start = dot + 1;
  }
}

JsonValue SummaryJson(const metrics::LatencyHistogram::Summary& summary) {
  JsonValue stats = JsonValue::MakeObject();
  stats.Set("count", JsonValue(summary.count));
  stats.Set("sum", JsonValue(summary.sum));
  stats.Set("min", JsonValue(summary.min));
  stats.Set("mean", JsonValue(summary.mean));
  stats.Set("p50", JsonValue(summary.p50));
  stats.Set("p90", JsonValue(summary.p90));
  stats.Set("p99", JsonValue(summary.p99));
  stats.Set("max", JsonValue(summary.max));
  return stats;
}

/// Shard choice for histogram recording: hash the thread id once per
/// thread so each worker sticks to one shard and contention only occurs
/// when two workers hash alike.
size_t ThreadShard(int shards) {
  static thread_local const size_t hashed =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return hashed % static_cast<size_t>(shards);
}

}  // namespace

std::string_view MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
    case MetricKind::kInfo:
      return "info";
  }
  return "gauge";
}

Histogram::Histogram() : shards_(new Shard[kShards]) {}

void Histogram::Record(int64_t value_us) {
  Shard& shard = shards_[ThreadShard(kShards)];
  MutexLock lock(shard.mutex);
  shard.histogram.Record(value_us);
}

metrics::LatencyHistogram Histogram::Merged() const {
  metrics::LatencyHistogram merged;
  for (int i = 0; i < kShards; ++i) {
    const Shard& shard = shards_[i];
    MutexLock lock(shard.mutex);
    merged.Merge(shard.histogram);
  }
  return merged;
}

MetricRegistry::Family* MetricRegistry::GetFamily(const std::string& name,
                                                  const std::string& help,
                                                  MetricKind kind) {
  for (const auto& family : families_) {
    if (family->name == name) {
      ETUDE_CHECK(family->kind == kind)
          << "metric family '" << name << "' re-registered as "
          << MetricKindName(kind) << " (was "
          << MetricKindName(family->kind) << ")";
      return family.get();
    }
  }
  auto family = std::make_unique<Family>();
  family->name = name;
  family->help = help;
  family->kind = kind;
  families_.push_back(std::move(family));
  return families_.back().get();
}

MetricRegistry::Instrument* MetricRegistry::GetInstrument(
    Family* family, std::vector<MetricLabel> labels,
    const std::string& json_path) {
  for (const auto& instrument : family->instruments) {
    if (instrument->labels == labels) return instrument.get();
  }
  auto instrument = std::make_unique<Instrument>();
  instrument->labels = std::move(labels);
  instrument->json_path = json_path;
  family->instruments.push_back(std::move(instrument));
  return family->instruments.back().get();
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const std::string& help,
                                    std::vector<MetricLabel> labels,
                                    const std::string& json_path) {
  MutexLock lock(mutex_);
  Family* family = GetFamily(name, help, MetricKind::kCounter);
  Instrument* instrument =
      GetInstrument(family, std::move(labels), json_path);
  if (!instrument->counter) instrument->counter = std::make_unique<Counter>();
  return instrument->counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const std::string& help,
                                std::vector<MetricLabel> labels,
                                const std::string& json_path) {
  MutexLock lock(mutex_);
  Family* family = GetFamily(name, help, MetricKind::kGauge);
  Instrument* instrument =
      GetInstrument(family, std::move(labels), json_path);
  if (!instrument->gauge) instrument->gauge = std::make_unique<Gauge>();
  return instrument->gauge.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const std::string& help,
                                        std::vector<MetricLabel> labels,
                                        const std::string& json_path) {
  MutexLock lock(mutex_);
  Family* family = GetFamily(name, help, MetricKind::kHistogram);
  Instrument* instrument =
      GetInstrument(family, std::move(labels), json_path);
  if (!instrument->histogram) {
    instrument->histogram = std::make_unique<Histogram>();
  }
  return instrument->histogram.get();
}

void MetricRegistry::SetInfo(const std::string& name, const std::string& help,
                             const std::string& label_key,
                             const std::string& text,
                             const std::string& json_path) {
  MutexLock lock(mutex_);
  Family* family = GetFamily(name, help, MetricKind::kInfo);
  Instrument* instrument =
      GetInstrument(family, {{label_key, text}}, json_path);
  // Re-setting replaces the text (and the identifying label with it).
  instrument->labels = {{label_key, text}};
  instrument->info_text = text;
}

RegistrySnapshot MetricRegistry::Snapshot() const {
  RegistrySnapshot snapshot;
  MutexLock lock(mutex_);
  snapshot.families.reserve(families_.size());
  for (const auto& family : families_) {
    MetricFamily out;
    out.name = family->name;
    out.help = family->help;
    out.kind = family->kind;
    out.samples.reserve(family->instruments.size());
    for (const auto& instrument : family->instruments) {
      MetricSample sample;
      sample.labels = instrument->labels;
      sample.json_path = instrument->json_path;
      switch (family->kind) {
        case MetricKind::kCounter:
          sample.value = static_cast<double>(instrument->counter->value());
          break;
        case MetricKind::kGauge:
          sample.value = instrument->gauge->value();
          break;
        case MetricKind::kHistogram:
          sample.histogram = instrument->histogram->Merged();
          break;
        case MetricKind::kInfo:
          sample.value = 1.0;
          sample.text = instrument->info_text;
          break;
      }
      out.samples.push_back(std::move(sample));
    }
    snapshot.families.push_back(std::move(out));
  }
  return snapshot;
}

void RegistrySnapshot::Merge(const RegistrySnapshot& other) {
  for (const MetricFamily& theirs : other.families) {
    MetricFamily* mine = nullptr;
    for (MetricFamily& family : families) {
      if (family.name == theirs.name) {
        mine = &family;
        break;
      }
    }
    if (mine == nullptr) {
      families.push_back(theirs);
      continue;
    }
    ETUDE_CHECK(mine->kind == theirs.kind)
        << "cannot merge metric family '" << theirs.name << "': kind "
        << MetricKindName(theirs.kind) << " vs "
        << MetricKindName(mine->kind);
    for (const MetricSample& sample : theirs.samples) {
      MetricSample* match = nullptr;
      for (MetricSample& candidate : mine->samples) {
        if (candidate.labels == sample.labels) {
          match = &candidate;
          break;
        }
      }
      if (match == nullptr) {
        mine->samples.push_back(sample);
        continue;
      }
      switch (mine->kind) {
        case MetricKind::kCounter:
        case MetricKind::kGauge:
          match->value += sample.value;
          break;
        case MetricKind::kHistogram:
          match->histogram.Merge(sample.histogram);
          break;
        case MetricKind::kInfo:
          break;  // keep the first pod's text
      }
    }
  }
}

std::string RegistrySnapshot::ToPrometheusText() const {
  PrometheusWriter writer;
  for (const MetricFamily& family : families) {
    for (const MetricSample& sample : family.samples) {
      const std::string labels = LabelString(sample.labels);
      switch (family.kind) {
        case MetricKind::kCounter:
          writer.Counter(family.name, family.help, sample.value, labels);
          break;
        case MetricKind::kGauge:
          writer.Gauge(family.name, family.help, sample.value, labels);
          break;
        case MetricKind::kHistogram:
          writer.Histogram(family.name, family.help, sample.histogram,
                           labels);
          break;
        case MetricKind::kInfo:
          // Info metrics are the conventional `..._info{...} 1` gauges.
          writer.Gauge(family.name, family.help, 1.0, labels);
          break;
      }
    }
  }
  return writer.text();
}

JsonValue RegistrySnapshot::ToJson() const {
  JsonValue root = JsonValue::MakeObject();
  for (const MetricFamily& family : families) {
    for (const MetricSample& sample : family.samples) {
      if (sample.json_path.empty()) continue;
      switch (family.kind) {
        case MetricKind::kCounter:
        case MetricKind::kGauge:
          SetJsonPath(&root, sample.json_path, JsonValue(sample.value));
          break;
        case MetricKind::kHistogram:
          SetJsonPath(&root, sample.json_path,
                      SummaryJson(sample.histogram.Summarize()));
          break;
        case MetricKind::kInfo:
          SetJsonPath(&root, sample.json_path, JsonValue(sample.text));
          break;
      }
    }
  }
  return root;
}

const MetricFamily* RegistrySnapshot::FindFamily(
    std::string_view name) const {
  for (const MetricFamily& family : families) {
    if (family.name == name) return &family;
  }
  return nullptr;
}

const MetricSample* RegistrySnapshot::FindSample(
    std::string_view name, const std::vector<MetricLabel>& labels) const {
  const MetricFamily* family = FindFamily(name);
  if (family == nullptr) return nullptr;
  for (const MetricSample& sample : family->samples) {
    if (sample.labels == labels) return &sample;
  }
  return nullptr;
}

}  // namespace etude::obs

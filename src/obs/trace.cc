#include "obs/trace.h"

#include <algorithm>

namespace etude::obs {

std::atomic<bool> Tracer::enabled_flag_{false};

namespace internal {

std::vector<std::string_view>& ThreadSpanStack() {
  static thread_local std::vector<std::string_view> stack;
  return stack;
}

std::string JoinThreadSpanStack() {
  const std::vector<std::string_view>& stack = ThreadSpanStack();
  std::string joined;
  for (size_t i = 0; i < stack.size(); ++i) {
    if (i > 0) joined += ';';
    joined += stack[i];
  }
  return joined;
}

}  // namespace internal

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::Get() {
  // Leaked singleton: thread buffers must stay valid during static
  // destruction of detached worker threads.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

int64_t Tracer::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  // One buffer per (thread, process lifetime); the registry keeps it alive
  // after thread exit so its spans survive into Snapshot().
  static thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    auto* fresh = new ThreadBuffer();
    MutexLock lock(registry_mutex_);
    fresh->lane = static_cast<int64_t>(buffers_.size());
    buffers_.push_back(fresh);
    buffer = fresh;
  }
  return buffer;
}

void Tracer::Record(TraceEvent event) {
  ThreadBuffer* buffer = BufferForThisThread();
  if (event.pid == kWallClockPid && event.tid == 0) {
    event.tid = buffer->lane;
  }
  MutexLock lock(buffer->mutex);
  if (static_cast<int64_t>(buffer->events.size()) >=
      thread_capacity_.load(std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer->events.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> merged;
  {
    MutexLock registry_lock(registry_mutex_);
    for (const ThreadBuffer* buffer : buffers_) {
      MutexLock lock(buffer->mutex);
      merged.insert(merged.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     return a.ts_us < b.ts_us;
                   });
  return merged;
}

void Tracer::Clear() {
  MutexLock registry_lock(registry_mutex_);
  for (ThreadBuffer* buffer : buffers_) {
    MutexLock lock(buffer->mutex);
    buffer->events.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace etude::obs

#include "obs/slo_monitor.h"

#include <algorithm>

#include "obs/chrome_trace.h"

namespace etude::obs {

std::vector<TraceEvent> TailTraceEvents(
    const std::vector<TailExemplar>& slowest) {
  std::vector<TraceEvent> events;
  events.reserve(slowest.size() * 4);
  int64_t lane = 0;
  for (const TailExemplar& exemplar : slowest) {
    // Each exemplar renders on its own lane so overlapping slow requests
    // do not visually nest into each other.
    ++lane;
    TraceEvent root;
    root.name = exemplar.ok ? "request" : "request (error)";
    root.category = "tail";
    root.ts_us = exemplar.ts_us;
    root.dur_us = exemplar.total_us;
    root.pid = kWallClockPid;
    root.tid = lane;
    root.trace_id = exemplar.trace_id;
    root.stack = root.name;
    events.push_back(root);
    for (const PhaseSpan& phase : exemplar.phases) {
      TraceEvent child;
      child.name = phase.name;
      child.category = "tail";
      child.ts_us = exemplar.ts_us + phase.start_us;
      child.dur_us = phase.dur_us;
      child.pid = kWallClockPid;
      child.tid = lane;
      child.trace_id = exemplar.trace_id;
      child.stack = root.name + ";" + phase.name;
      events.push_back(std::move(child));
    }
  }
  return events;
}

std::string TailTracesJson(const std::vector<TailExemplar>& slowest) {
  return ToChromeTraceJson(TailTraceEvents(slowest));
}

#ifndef ETUDE_DISABLE_TRACING

SloMonitor::SloMonitor(const SloMonitorConfig& config)
    : config_(config),
      epoch_(std::chrono::steady_clock::now()),
      buckets_(static_cast<size_t>(std::max(1, config.window_seconds))) {
  config_.window_seconds = std::max(1, config_.window_seconds);
  config_.tail_exemplars = std::max(0, config_.tail_exemplars);
}

int64_t SloMonitor::NowUs() const {
  if (config_.clock_us) return config_.clock_us();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void SloMonitor::Record(RequestSample sample) {
  const int64_t now_us = NowUs();
  const int64_t now_s = now_us / 1'000'000;
  Bucket& bucket = buckets_[static_cast<size_t>(
      now_s % static_cast<int64_t>(buckets_.size()))];
  MutexLock lock(bucket.mutex);
  if (bucket.epoch_s != now_s) {
    // Rotation: this bucket still holds the second from one window ago
    // (or nothing). The first recorder of the new second claims it.
    bucket.epoch_s = now_s;
    bucket.requests = 0;
    bucket.errors = 0;
    bucket.slo_violations = 0;
    bucket.latency.Reset();
    bucket.phases.clear();
    bucket.slowest.clear();
  }
  ++bucket.requests;
  if (!sample.ok) ++bucket.errors;
  // Strictly-greater: a request completing exactly at the target still
  // meets "p90 <= target", so exactly-on-SLO traffic burns no budget.
  if (sample.total_us > config_.slo_p90_us) ++bucket.slo_violations;
  bucket.latency.Record(sample.total_us);
  for (const PhaseSpan& phase : sample.phases) {
    auto it = std::find_if(
        bucket.phases.begin(), bucket.phases.end(),
        [&](const auto& entry) { return entry.first == phase.name; });
    if (it == bucket.phases.end()) {
      bucket.phases.emplace_back(phase.name, metrics::LatencyHistogram());
      it = std::prev(bucket.phases.end());
    }
    it->second.Record(phase.dur_us);
  }
  if (config_.tail_exemplars > 0) {
    const size_t keep = static_cast<size_t>(config_.tail_exemplars);
    // Keep the bucket's N slowest. The vector is tiny (N ~ 4): a linear
    // min search beats heap bookkeeping.
    if (bucket.slowest.size() < keep) {
      TailExemplar exemplar;
      exemplar.trace_id = sample.trace_id;
      exemplar.ts_us = now_us - sample.total_us;
      exemplar.total_us = sample.total_us;
      exemplar.ok = sample.ok;
      exemplar.phases = std::move(sample.phases);
      bucket.slowest.push_back(std::move(exemplar));
    } else {
      auto slot = std::min_element(
          bucket.slowest.begin(), bucket.slowest.end(),
          [](const TailExemplar& a, const TailExemplar& b) {
            return a.total_us < b.total_us;
          });
      if (slot->total_us < sample.total_us) {
        slot->trace_id = sample.trace_id;
        slot->ts_us = now_us - sample.total_us;
        slot->total_us = sample.total_us;
        slot->ok = sample.ok;
        slot->phases = std::move(sample.phases);
      }
    }
  }
}

WindowSnapshot SloMonitor::Snapshot() const {
  const int64_t now_us = NowUs();
  const int64_t now_s = now_us / 1'000'000;
  const int64_t window = config_.window_seconds;

  WindowSnapshot snapshot;
  snapshot.enabled = true;
  snapshot.window_seconds = window;
  snapshot.slo_p90_us = config_.slo_p90_us;
  // Until one full window has elapsed since start, throughput divides by
  // the elapsed seconds (+1 for the current partial second) so a young
  // monitor does not under-report.
  snapshot.span_seconds = std::min<int64_t>(window, now_s + 1);

  metrics::LatencyHistogram merged;
  std::vector<std::pair<std::string, metrics::LatencyHistogram>> phases;
  for (const Bucket& bucket : buckets_) {
    MutexLock lock(bucket.mutex);
    // A bucket is inside the window iff its epoch is one of the last
    // `window` seconds (including the current partial one). Older epochs
    // are stale ring slots not yet reclaimed by a recorder.
    if (bucket.epoch_s < 0 || bucket.epoch_s <= now_s - window ||
        bucket.epoch_s > now_s) {
      continue;
    }
    if (bucket.requests > 0) ++snapshot.covered_seconds;
    snapshot.requests += bucket.requests;
    snapshot.errors += bucket.errors;
    snapshot.slo_violations += bucket.slo_violations;
    // Merge preserves bucket boundaries: the merged percentiles carry the
    // same <= ~1.6% bucket over-estimate as each per-second histogram.
    merged.Merge(bucket.latency);
    for (const auto& [name, histogram] : bucket.phases) {
      auto it = std::find_if(
          phases.begin(), phases.end(),
          [&](const auto& entry) { return entry.first == name; });
      if (it == phases.end()) {
        phases.emplace_back(name, metrics::LatencyHistogram());
        it = std::prev(phases.end());
      }
      it->second.Merge(histogram);
    }
    for (const TailExemplar& exemplar : bucket.slowest) {
      snapshot.slowest.push_back(exemplar);
    }
  }

  snapshot.latency = merged.Summarize();
  for (auto& [name, histogram] : phases) {
    PhaseWindow phase;
    phase.name = name;
    phase.summary = histogram.Summarize();
    snapshot.phases.push_back(std::move(phase));
  }
  if (snapshot.requests > 0) {
    const double requests = static_cast<double>(snapshot.requests);
    snapshot.throughput_rps =
        requests / static_cast<double>(std::max<int64_t>(
                       1, snapshot.span_seconds));
    snapshot.error_rate = static_cast<double>(snapshot.errors) / requests;
    snapshot.violation_rate =
        static_cast<double>(snapshot.slo_violations) / requests;
    // p90 target <=> 10% of the requests are allowed over the latency
    // target; burning exactly that allowance is a burn rate of 1.
    snapshot.burn_rate = snapshot.violation_rate / 0.10;
  }
  std::sort(snapshot.slowest.begin(), snapshot.slowest.end(),
            [](const TailExemplar& a, const TailExemplar& b) {
              return a.total_us > b.total_us;
            });
  if (config_.tail_exemplars >= 0 &&
      snapshot.slowest.size() >
          static_cast<size_t>(config_.tail_exemplars)) {
    snapshot.slowest.resize(static_cast<size_t>(config_.tail_exemplars));
  }
  return snapshot;
}

#endif  // ETUDE_DISABLE_TRACING

}  // namespace etude::obs

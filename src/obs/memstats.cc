#include "obs/memstats.h"

#include <cstdio>
#include <unistd.h>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace etude::obs {

#ifndef ETUDE_DISABLE_TRACING
namespace {

/// Per-thread traffic counters. Written with relaxed atomics so another
/// thread can aggregate them race-free while the owner keeps recording.
struct ThreadCounters {
  std::atomic<int64_t> allocated{0};
  std::atomic<int64_t> freed{0};
  // Peak-window state, touched only by the owning thread.
  int64_t window_peak = 0;
};

Mutex& RegistryMutex() {
  static Mutex* mutex = new Mutex;
  return *mutex;
}

/// Owned for the process lifetime: counters must outlive their thread so
/// aggregation after a worker pool shut down still sees its traffic.
std::vector<ThreadCounters*>& Registry() {
  static std::vector<ThreadCounters*>* registry =
      new std::vector<ThreadCounters*>;
  return *registry;
}

ThreadCounters& Local() {
  thread_local ThreadCounters* counters = [] {
    auto* fresh = new ThreadCounters;
    MutexLock lock(RegistryMutex());
    Registry().push_back(fresh);
    return fresh;
  }();
  return *counters;
}

// Process-wide live gauge and its high-water mark. One relaxed RMW per
// tensor allocation — tensors are allocated per-op, not per-element, so
// this is far off the per-element hot paths.
std::atomic<int64_t> g_live{0};
std::atomic<int64_t> g_peak{0};

int64_t ThreadLive(const ThreadCounters& counters) {
  return counters.allocated.load(std::memory_order_relaxed) -
         counters.freed.load(std::memory_order_relaxed);
}

}  // namespace
#endif  // ETUDE_DISABLE_TRACING

namespace memdetail {

#ifndef ETUDE_DISABLE_TRACING

void RecordAlloc(int64_t bytes) {
  if (bytes <= 0) return;
  ThreadCounters& counters = Local();
  counters.allocated.fetch_add(bytes, std::memory_order_relaxed);
  const int64_t thread_live = ThreadLive(counters);
  if (thread_live > counters.window_peak) {
    counters.window_peak = thread_live;
  }
  const int64_t live =
      g_live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  int64_t peak = g_peak.load(std::memory_order_relaxed);
  while (live > peak && !g_peak.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

void RecordFree(int64_t bytes) {
  if (bytes <= 0) return;
  Local().freed.fetch_add(bytes, std::memory_order_relaxed);
  g_live.fetch_sub(bytes, std::memory_order_relaxed);
}

int64_t BeginPeakWindow() {
  ThreadCounters& counters = Local();
  const int64_t live = ThreadLive(counters);
  counters.window_peak = live;
  return live;
}

int64_t PeakWindowBytes(int64_t start_live) {
  const int64_t delta = Local().window_peak - start_live;
  return delta > 0 ? delta : 0;
}

#endif  // ETUDE_DISABLE_TRACING

namespace {
// Owned by the calling thread alone; readers query their own thread.
thread_local ArenaMemStats t_arena_stats;
}  // namespace

void ArenaActivate(int64_t planned_bytes) {
  t_arena_stats = ArenaMemStats{};
  t_arena_stats.planned_bytes = planned_bytes;
}

void ArenaServe(int64_t watermark_bytes) {
  ++t_arena_stats.served_allocs;
  if (watermark_bytes > t_arena_stats.high_water_bytes) {
    t_arena_stats.high_water_bytes = watermark_bytes;
  }
}

void ArenaFallback() { ++t_arena_stats.fallback_allocs; }

}  // namespace memdetail

ArenaMemStats ThreadArenaStats() { return memdetail::t_arena_stats; }

MemStats ThreadMemStats() {
  MemStats stats;
#ifndef ETUDE_DISABLE_TRACING
  const ThreadCounters& counters = Local();
  stats.allocated_bytes = counters.allocated.load(std::memory_order_relaxed);
  stats.freed_bytes = counters.freed.load(std::memory_order_relaxed);
  stats.live_bytes = g_live.load(std::memory_order_relaxed);
  stats.peak_live_bytes = g_peak.load(std::memory_order_relaxed);
#endif
  return stats;
}

MemStats ProcessMemStats() {
  MemStats stats;
#ifndef ETUDE_DISABLE_TRACING
  {
    MutexLock lock(RegistryMutex());
    for (const ThreadCounters* counters : Registry()) {
      stats.allocated_bytes +=
          counters->allocated.load(std::memory_order_relaxed);
      stats.freed_bytes += counters->freed.load(std::memory_order_relaxed);
    }
  }
  stats.live_bytes = g_live.load(std::memory_order_relaxed);
  stats.peak_live_bytes = g_peak.load(std::memory_order_relaxed);
#endif
  return stats;
}

void ResetPeakLiveBytes() {
#ifndef ETUDE_DISABLE_TRACING
  g_peak.store(g_live.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
#endif
}

int64_t ProcessRssBytes() {
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0;
  long long total_pages = 0;
  long long resident_pages = 0;
  const int matched =
      std::fscanf(statm, "%lld %lld", &total_pages, &resident_pages);
  std::fclose(statm);
  if (matched != 2) return 0;
  return static_cast<int64_t>(resident_pages) *
         static_cast<int64_t>(sysconf(_SC_PAGESIZE));
}

}  // namespace etude::obs

#include "obs/profile.h"

#include <algorithm>

#include "common/strings.h"
#include "metrics/report.h"

namespace etude::obs {

void OpProfile::OnOp(const char* name, int64_t duration_ns, double flops,
                     double moved_bytes, int64_t peak_bytes) {
  MutexLock lock(mutex_);
  OpProfileEntry& entry = by_op_[name];
  if (entry.op.empty()) entry.op = name;
  entry.calls += 1;
  entry.total_ns += duration_ns;
  entry.flops += flops;
  entry.moved_bytes += moved_bytes;
  entry.peak_bytes = std::max(entry.peak_bytes, peak_bytes);
}

std::vector<OpProfileEntry> OpProfile::Entries() const {
  std::vector<OpProfileEntry> entries;
  {
    MutexLock lock(mutex_);
    entries.reserve(by_op_.size());
    for (const auto& [_, entry] : by_op_) entries.push_back(entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const OpProfileEntry& a, const OpProfileEntry& b) {
              return a.total_ns > b.total_ns;
            });
  return entries;
}

int64_t OpProfile::TotalNs() const {
  MutexLock lock(mutex_);
  int64_t total = 0;
  for (const auto& [_, entry] : by_op_) total += entry.total_ns;
  return total;
}

void OpProfile::Clear() {
  MutexLock lock(mutex_);
  by_op_.clear();
}

std::string OpProfile::ToText() const { return ToText({}); }

std::string OpProfile::ToText(
    const std::map<std::string, double>& static_flops) const {
  const std::vector<OpProfileEntry> entries = Entries();
  int64_t total_ns = 0;
  for (const OpProfileEntry& entry : entries) total_ns += entry.total_ns;
  std::vector<std::string> columns = {"op",      "calls", "total [us]",
                                      "% of inference", "GFLOP/s", "GB/s",
                                      "peak [KiB]"};
  if (!static_flops.empty()) {
    columns.push_back("measured FLOPs");
    columns.push_back("static FLOPs");
  }
  metrics::Table table(columns);
  for (const OpProfileEntry& entry : entries) {
    const double share =
        total_ns > 0
            ? 100.0 * static_cast<double>(entry.total_ns) /
                  static_cast<double>(total_ns)
            : 0.0;
    std::vector<std::string> row = {
        entry.op, std::to_string(entry.calls),
        FormatDouble(entry.total_us(), 1), FormatDouble(share, 1),
        entry.flops > 0 ? FormatDouble(entry.gflops_per_s(), 2) : "-",
        entry.moved_bytes > 0 ? FormatDouble(entry.gbytes_per_s(), 2) : "-",
        entry.peak_bytes > 0
            ? FormatDouble(static_cast<double>(entry.peak_bytes) / 1024.0, 1)
            : "-"};
    if (!static_flops.empty()) {
      row.push_back(entry.flops > 0 ? FormatDouble(entry.flops, 0) : "-");
      const auto it = static_flops.find(entry.op);
      row.push_back(it != static_flops.end() ? FormatDouble(it->second, 0)
                                             : "-");
    }
    table.AddRow(std::move(row));
  }
  return table.ToText();
}

}  // namespace etude::obs

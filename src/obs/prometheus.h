#ifndef ETUDE_OBS_PROMETHEUS_H_
#define ETUDE_OBS_PROMETHEUS_H_

#include <set>
#include <string>
#include <string_view>

#include "common/status.h"
#include "metrics/histogram.h"

namespace etude::obs {

/// Renders metrics in the Prometheus text exposition format (version
/// 0.0.4): `# HELP`/`# TYPE` comments followed by sample lines, one metric
/// family per Counter/Gauge/Histogram call. Repeated calls with the same
/// family name (different labels) emit the header once.
class PrometheusWriter {
 public:
  /// `labels` is the inner label list without braces, e.g.
  /// `route="/metrics"`, or empty for an unlabelled sample.
  void Counter(std::string_view name, std::string_view help, double value,
               std::string_view labels = "");
  void Gauge(std::string_view name, std::string_view help, double value,
             std::string_view labels = "");

  /// Emits a full histogram family from a LatencyHistogram: cumulative
  /// `_bucket{le="..."}` samples at every non-empty bucket boundary (plus
  /// `+Inf`), `_sum` and `_count`. Values stay in microseconds.
  void Histogram(std::string_view name, std::string_view help,
                 const metrics::LatencyHistogram& histogram,
                 std::string_view labels = "");

  const std::string& text() const { return out_; }

 private:
  void Header(std::string_view name, std::string_view help,
              std::string_view type);
  void Sample(std::string_view name, std::string_view labels, double value);

  std::string out_;
  std::set<std::string, std::less<>> declared_;
};

/// Validates Prometheus text-format output line by line: every line must be
/// a comment (`# ...`), blank, or a sample of the form
/// `metric_name{labels} value`. Returns InvalidArgument naming the first
/// offending line. Used by tests and the CI smoke check.
Status ValidatePrometheusText(std::string_view text);

}  // namespace etude::obs

#endif  // ETUDE_OBS_PROMETHEUS_H_

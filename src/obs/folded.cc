#include "obs/folded.h"

#include <cstdio>
#include <map>
#include <set>
#include <utility>

namespace etude::obs {

std::vector<FoldedLine> FoldStacks(const std::vector<TraceEvent>& events) {
  std::set<std::pair<int32_t, int64_t>> lanes;
  for (const TraceEvent& event : events) {
    lanes.insert({event.pid, event.tid});
  }
  const bool prefix_lanes = lanes.size() > 1;

  // Total time per distinct path. std::map keeps the output sorted and
  // groups each parent right before its children, which is also the order
  // the subtraction below relies on being able to look parents up in.
  std::map<std::string, int64_t> totals;
  for (const TraceEvent& event : events) {
    std::string path;
    if (prefix_lanes) {
      path += event.pid == kVirtualClockPid ? 'v' : 't';
      path += std::to_string(event.tid);
      path += ';';
    }
    path += event.stack.empty() ? event.name : event.stack;
    totals[path] += event.dur_us;
  }

  // Self time: a frame's total minus the time its recorded children
  // already account for. Children whose parent span was never recorded
  // (e.g. tracing enabled mid-span) simply keep their full time.
  std::map<std::string, int64_t> self = totals;
  for (const auto& [path, total] : totals) {
    const size_t separator = path.rfind(';');
    if (separator == std::string::npos) continue;
    const auto parent = self.find(path.substr(0, separator));
    if (parent != self.end()) parent->second -= total;
  }

  std::vector<FoldedLine> lines;
  lines.reserve(self.size());
  for (const auto& [path, self_us] : self) {
    if (self_us <= 0) continue;  // pure parent frames carry no self time
    lines.push_back({path, self_us});
  }
  return lines;
}

std::string ToFoldedText(const std::vector<FoldedLine>& lines) {
  std::string out;
  for (const FoldedLine& line : lines) {
    out += line.stack;
    out += ' ';
    out += std::to_string(line.self_us);
    out += '\n';
  }
  return out;
}

Status WriteFolded(const std::string& path,
                   const std::vector<TraceEvent>& events) {
  const std::string text = ToFoldedText(FoldStacks(events));
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const int close_rc = std::fclose(file);
  if (written != text.size() || close_rc != 0) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace etude::obs

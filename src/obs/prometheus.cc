#include "obs/prometheus.h"

#include <cmath>
#include <cstdio>
#include <string>

#include "common/strings.h"

namespace etude::obs {

namespace {

std::string FormatValue(double value) {
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

bool IsMetricNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

/// Validates one `name{labels} value` sample line.
bool ValidSampleLine(std::string_view line) {
  size_t pos = 0;
  // Metric name.
  while (pos < line.size() && IsMetricNameChar(line[pos], pos == 0)) ++pos;
  if (pos == 0) return false;
  // Optional label set.
  if (pos < line.size() && line[pos] == '{') {
    const size_t close = line.find('}', pos);
    if (close == std::string_view::npos) return false;
    std::string_view inner = line.substr(pos + 1, close - pos - 1);
    // Each label must look like name="value"; quotes must balance.
    size_t quotes = 0;
    for (const char c : inner) quotes += (c == '"') ? 1 : 0;
    if (!inner.empty() && (quotes == 0 || quotes % 2 != 0 ||
                           inner.find('=') == std::string_view::npos)) {
      return false;
    }
    pos = close + 1;
  }
  if (pos >= line.size() || line[pos] != ' ') return false;
  // Value: a float, or the spec's +Inf/-Inf/NaN.
  std::string_view value = line.substr(pos + 1);
  if (value.empty()) return false;
  if (value == "+Inf" || value == "-Inf" || value == "NaN") return true;
  const std::string value_string(value);
  char* end = nullptr;
  std::strtod(value_string.c_str(), &end);
  return end != value_string.c_str() && *end == '\0';
}

}  // namespace

void PrometheusWriter::Header(std::string_view name, std::string_view help,
                              std::string_view type) {
  if (declared_.find(name) != declared_.end()) return;
  declared_.insert(std::string(name));
  out_ += "# HELP ";
  out_ += name;
  out_ += ' ';
  out_ += help;
  out_ += "\n# TYPE ";
  out_ += name;
  out_ += ' ';
  out_ += type;
  out_ += '\n';
}

void PrometheusWriter::Sample(std::string_view name, std::string_view labels,
                              double value) {
  out_ += name;
  if (!labels.empty()) {
    out_ += '{';
    out_ += labels;
    out_ += '}';
  }
  out_ += ' ';
  out_ += FormatValue(value);
  out_ += '\n';
}

void PrometheusWriter::Counter(std::string_view name, std::string_view help,
                               double value, std::string_view labels) {
  Header(name, help, "counter");
  Sample(name, labels, value);
}

void PrometheusWriter::Gauge(std::string_view name, std::string_view help,
                             double value, std::string_view labels) {
  Header(name, help, "gauge");
  Sample(name, labels, value);
}

void PrometheusWriter::Histogram(std::string_view name,
                                 std::string_view help,
                                 const metrics::LatencyHistogram& histogram,
                                 std::string_view labels) {
  Header(name, help, "histogram");
  const std::string bucket_name = std::string(name) + "_bucket";
  const std::string prefix =
      labels.empty() ? std::string() : std::string(labels) + ",";
  histogram.ForEachBucket([&](int64_t upper_bound_us,
                              int64_t cumulative_count) {
    const std::string bucket_labels =
        prefix + "le=\"" + std::to_string(upper_bound_us) + "\"";
    Sample(bucket_name, bucket_labels,
           static_cast<double>(cumulative_count));
  });
  Sample(bucket_name, prefix + "le=\"+Inf\"",
         static_cast<double>(histogram.count()));
  Sample(std::string(name) + "_sum", labels,
         static_cast<double>(histogram.sum()));
  Sample(std::string(name) + "_count", labels,
         static_cast<double>(histogram.count()));
}

Status ValidatePrometheusText(std::string_view text) {
  size_t line_number = 0;
  for (const std::string& line : Split(text, '\n')) {
    ++line_number;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    if (stripped[0] == '#') {
      // Comments must be HELP/TYPE annotations or free-form "# ".
      continue;
    }
    if (!ValidSampleLine(stripped)) {
      return Status::InvalidArgument(
          "invalid Prometheus sample at line " +
          std::to_string(line_number) + ": '" + std::string(stripped) + "'");
    }
  }
  return Status::OK();
}

}  // namespace etude::obs

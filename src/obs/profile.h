#ifndef ETUDE_OBS_PROFILE_H_
#define ETUDE_OBS_PROFILE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/op_hook.h"

namespace etude::obs {

/// Aggregated statistics of one framework-level op across a profiled run.
struct OpProfileEntry {
  std::string op;
  int64_t calls = 0;
  int64_t total_ns = 0;
  double flops = 0;        // summed analytic FLOPs across all calls
  double moved_bytes = 0;  // summed analytic memory traffic (data movement)
  /// Largest transient tensor working set any single call reached (net
  /// bytes allocated above the op's starting point); 0 with accounting
  /// compiled out.
  int64_t peak_bytes = 0;

  double total_us() const { return static_cast<double>(total_ns) / 1e3; }
  /// Achieved compute rate; 0 for pure data-movement ops.
  double gflops_per_s() const {
    return total_ns > 0 ? flops / static_cast<double>(total_ns) : 0.0;
  }
  /// Achieved memory bandwidth; 0 for compute ops (which report FLOPs).
  double gbytes_per_s() const {
    return total_ns > 0 ? moved_bytes / static_cast<double>(total_ns) : 0.0;
  }
};

/// Per-op profile table: an OpSink that aggregates name -> (calls, time,
/// FLOPs). Thread-safe, so one profile can be attached to several worker
/// threads at once and read while they run.
class OpProfile : public OpSink {
 public:
  void OnOp(const char* name, int64_t duration_ns, double flops,
            double moved_bytes, int64_t peak_bytes) override
      ETUDE_EXCLUDES(mutex_);

  /// Entries sorted by descending total time.
  std::vector<OpProfileEntry> Entries() const ETUDE_EXCLUDES(mutex_);

  /// Sum of total_ns over all ops (the profiled inference time).
  int64_t TotalNs() const ETUDE_EXCLUDES(mutex_);

  void Clear() ETUDE_EXCLUDES(mutex_);

  /// Renders the per-op breakdown: op, calls, total us, % of inference,
  /// GFLOP/s, GB/s, peak KiB — the `etude profile` output. Data-movement
  /// ops (Embedding, Concat, Transpose) show bandwidth instead of a
  /// misleading zero compute rate.
  std::string ToText() const ETUDE_EXCLUDES(mutex_);

  /// Same table with an extra "static FLOPs" column fed from an external
  /// per-op prediction (the plan IR's cost polynomials, evaluated by the
  /// caller), rendered next to the measured FLOP totals so drift between
  /// the static model and the runtime is visible at a glance. Ops missing
  /// from the map show "-".
  std::string ToText(const std::map<std::string, double>& static_flops) const
      ETUDE_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::map<std::string, OpProfileEntry> by_op_ ETUDE_GUARDED_BY(mutex_);
};

}  // namespace etude::obs

#endif  // ETUDE_OBS_PROFILE_H_

#include "obs/critical_path.h"

#include <algorithm>
#include <cstdio>

namespace etude::obs {

CriticalPathReport AnalyzeCriticalPath(const std::string& trace_id,
                                       int64_t client_total_us,
                                       int64_t server_total_us,
                                       std::vector<PhaseSpan> phases) {
  CriticalPathReport report;
  report.trace_id = trace_id;
  report.client_total_us = client_total_us;
  report.server_total_us = server_total_us;

  std::sort(phases.begin(), phases.end(),
            [](const PhaseSpan& a, const PhaseSpan& b) {
              return a.start_us < b.start_us;
            });
  int64_t attributed_us = 0;
  for (const PhaseSpan& phase : phases) {
    report.hops.push_back(CriticalPathHop{phase.name, phase.start_us,
                                          phase.dur_us, 0.0});
    attributed_us += phase.dur_us;
  }
  if (server_total_us > attributed_us) {
    report.hops.push_back(CriticalPathHop{
        "unattributed", attributed_us, server_total_us - attributed_us,
        0.0});
  }
  if (client_total_us > server_total_us) {
    report.hops.push_back(CriticalPathHop{
        "network+client", server_total_us,
        client_total_us - server_total_us, 0.0});
  }

  const double denominator =
      client_total_us > 0 ? static_cast<double>(client_total_us) : 1.0;
  int64_t worst_us = -1;
  for (CriticalPathHop& hop : report.hops) {
    hop.share = static_cast<double>(hop.dur_us) / denominator;
    if (hop.dur_us > worst_us) {
      worst_us = hop.dur_us;
      report.dominant = hop.name;
    }
  }
  return report;
}

std::string CriticalPathText(const CriticalPathReport& report) {
  char line[160];
  std::snprintf(line, sizeof(line),
                "trace %s: client %lld us, server %lld us\n",
                report.trace_id.c_str(),
                static_cast<long long>(report.client_total_us),
                static_cast<long long>(report.server_total_us));
  std::string out = line;
  for (const CriticalPathHop& hop : report.hops) {
    std::snprintf(line, sizeof(line), "  %-16s %10lld us  %5.1f%%%s\n",
                  hop.name.c_str(), static_cast<long long>(hop.dur_us),
                  hop.share * 100.0,
                  hop.name == report.dominant ? "  <- dominant" : "");
    out += line;
  }
  return out;
}

}  // namespace etude::obs

#ifndef ETUDE_OBS_METRIC_REGISTRY_H_
#define ETUDE_OBS_METRIC_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "metrics/histogram.h"

namespace etude::obs {

/// The unified metric registry behind every exposition surface.
///
/// One registry holds typed instruments — counters, gauges, latency
/// histograms and info strings — each registered once under a Prometheus
/// family name plus an optional label set. Recording is wait-free for
/// counters/gauges (single atomics) and lock-sharded for histograms
/// (recording locks one of kShards sub-histograms chosen by thread, so
/// concurrent workers rarely contend). Snapshot() produces one consistent
/// copy of everything, from which BOTH the JSON and the Prometheus text
/// forms of /metrics render — the two surfaces cannot drift because they
/// share the snapshot. Per-pod registries in the DES aggregate into a
/// fleet view with RegistrySnapshot::Merge.
enum class MetricKind { kCounter, kGauge, kHistogram, kInfo };

std::string_view MetricKindName(MetricKind kind);

struct MetricLabel {
  std::string key;
  std::string value;

  bool operator==(const MetricLabel&) const = default;
};

/// A monotonically increasing counter. Add() is the normal path; Set() is
/// for counters mirroring an externally accumulated total (e.g. the
/// tensor allocator's lifetime byte counts) at scrape time.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A point-in-time gauge.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A lock-sharded latency histogram: Record() locks exactly one shard
/// (picked per thread), so concurrent recorders proceed in parallel and a
/// concurrent Merged() sees each observation entirely or not at all —
/// never a torn half-update.
class Histogram {
 public:
  Histogram();

  void Record(int64_t value_us);

  /// All shards merged into one consistent histogram.
  metrics::LatencyHistogram Merged() const;

 private:
  static constexpr int kShards = 8;
  struct Shard {
    // Innermost lock of the serving path's lock order:
    // MetricRegistry::Snapshot() holds the registry mutex while Merged()
    // walks the shards, so shard mutexes must always come last.
    mutable Mutex mutex ETUDE_ACQUIRED_AFTER("obs::MetricRegistry::mutex_");
    metrics::LatencyHistogram histogram ETUDE_GUARDED_BY(mutex);
  };
  std::unique_ptr<Shard[]> shards_;
};

/// One instrument's state inside a snapshot.
struct MetricSample {
  std::vector<MetricLabel> labels;
  /// Where the sample lands in the JSON rendering: a dotted path
  /// ("slo.window_p90_us" nests), or "" to omit it from JSON (a
  /// Prometheus-only sample).
  std::string json_path;
  double value = 0;  // counter/gauge value; 1.0 for info samples
  std::string text;  // info samples: the JSON string value
  metrics::LatencyHistogram histogram;  // histogram samples only
};

struct MetricFamily {
  std::string name;  // Prometheus family name
  std::string help;
  MetricKind kind = MetricKind::kGauge;
  std::vector<MetricSample> samples;
};

/// One consistent copy of every registered metric. Plain data: safe to
/// pass across threads, merge across pods, and render repeatedly.
struct RegistrySnapshot {
  std::vector<MetricFamily> families;

  /// Fleet aggregation: families are matched by name, samples by label
  /// set. Counters and gauges sum (the gauge sum is the fleet-wide total
  /// of per-pod point-in-time values — queue depths and in-flight counts
  /// add across pods); histograms combine via LatencyHistogram::Merge,
  /// which preserves bucket boundaries exactly; info samples keep the
  /// first pod's text. Unmatched families/samples are appended.
  void Merge(const RegistrySnapshot& other);

  /// Prometheus text exposition format 0.0.4 (validated by
  /// ValidatePrometheusText in tests and the CI metrics-lint step).
  std::string ToPrometheusText() const;

  /// The JSON form of the same snapshot: each sample with a non-empty
  /// json_path lands at that (dotted) path — counters/gauges as numbers,
  /// info samples as strings, histograms as the standard summary block
  /// {count,sum,min,mean,p50,p90,p99,max}.
  JsonValue ToJson() const;

  const MetricFamily* FindFamily(std::string_view name) const;
  const MetricSample* FindSample(std::string_view name,
                                 const std::vector<MetricLabel>& labels) const;
};

/// The registry. Instrument registration (GetCounter/...) takes a lock and
/// is idempotent — the same (name, labels) returns the same handle, so
/// call sites may re-register at scrape time. Handles stay valid for the
/// registry's lifetime. Recording through a handle never touches the
/// registry lock.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help,
                      std::vector<MetricLabel> labels = {},
                      const std::string& json_path = "");
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  std::vector<MetricLabel> labels = {},
                  const std::string& json_path = "");
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<MetricLabel> labels = {},
                          const std::string& json_path = "");

  /// An info metric: rendered as `<name>{<label_key>="<text>"} 1` in
  /// Prometheus and as the bare string at `json_path` in JSON. Re-calling
  /// replaces the text.
  void SetInfo(const std::string& name, const std::string& help,
               const std::string& label_key, const std::string& text,
               const std::string& json_path = "");

  /// One consistent copy of every instrument, in registration order.
  RegistrySnapshot Snapshot() const;

 private:
  struct Instrument {
    std::vector<MetricLabel> labels;
    std::string json_path;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::string info_text;
  };
  struct Family {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kGauge;
    std::vector<std::unique_ptr<Instrument>> instruments;
  };

  Family* GetFamily(const std::string& name, const std::string& help,
                    MetricKind kind) ETUDE_REQUIRES(mutex_);
  Instrument* GetInstrument(Family* family,
                            std::vector<MetricLabel> labels,
                            const std::string& json_path)
      ETUDE_REQUIRES(mutex_);

  // Held across Snapshot()'s walk of the instruments (which locks the
  // histogram shards underneath); sits below the http dispatch queue and
  // the SloMonitor ring in the serving path's lock order.
  mutable Mutex mutex_
      ETUDE_ACQUIRED_AFTER("net::HttpServer::jobs_mutex_",
                           "obs::SloMonitor::Bucket::mutex");
  std::vector<std::unique_ptr<Family>> families_ ETUDE_GUARDED_BY(mutex_);
};

}  // namespace etude::obs

#endif  // ETUDE_OBS_METRIC_REGISTRY_H_

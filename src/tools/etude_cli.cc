// etude — the command-line face of the framework.
//
// Subcommands:
//   etude scenarios
//       List the paper's five built-in use-case scenarios.
//   etude run <spec.json>
//       Execute one deployed benchmark from a declarative spec and print
//       the report (the `make run_deployed_benchmark` equivalent).
//   etude plan --catalog C --rps R [--p90 MS] [--max-replicas N]
//       Search cost-efficient deployments for a custom use case.
//   etude generate --catalog C --clicks N [--alpha-l A] [--alpha-c B]
//       Emit a synthetic click log (Algorithm 1) as CSV on stdout.
//   etude serve --model NAME --catalog C [--port P] [--seconds S]
//       Start the real HTTP inference server on localhost.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "core/benchmark.h"
#include "core/cost_planner.h"
#include "core/spec.h"
#include "metrics/report.h"
#include "models/model_factory.h"
#include "serving/etude_serve.h"
#include "workload/session_generator.h"

namespace {

using etude::FormatDouble;

/// Parses "--name value" flags after the subcommand.
std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int start) {
  std::map<std::string, std::string> flags;
  for (int i = start; i + 1 < argc; i += 2) {
    std::string name = argv[i];
    if (etude::StartsWith(name, "--")) {
      flags[name.substr(2)] = argv[i + 1];
    }
  }
  return flags;
}

double FlagOr(const std::map<std::string, std::string>& flags,
              const std::string& name, double fallback) {
  const auto it = flags.find(name);
  return it == flags.end() ? fallback : std::atof(it->second.c_str());
}

int CmdScenarios() {
  etude::metrics::Table table(
      {"name", "catalog", "target req/s", "p90 limit [ms]"});
  for (const auto& scenario : etude::core::PaperScenarios()) {
    table.AddRow({scenario.name,
                  etude::FormatWithCommas(scenario.catalog_size),
                  FormatDouble(scenario.target_rps, 0),
                  FormatDouble(scenario.p90_limit_ms, 0)});
  }
  std::printf("%s", table.ToText().c_str());
  return 0;
}

int CmdRun(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: etude run <spec.json>\n");
    return 2;
  }
  auto spec = etude::core::LoadBenchmarkSpec(argv[2]);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  auto report = etude::core::RunDeployedBenchmark(*spec);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->Summary().c_str());
  return report->meets_slo ? 0 : 3;
}

int CmdPlan(int argc, char** argv) {
  const auto flags = ParseFlags(argc, argv, 2);
  etude::core::Scenario scenario;
  scenario.name = "cli";
  scenario.catalog_size =
      static_cast<int64_t>(FlagOr(flags, "catalog", 100000));
  scenario.target_rps = FlagOr(flags, "rps", 250);
  scenario.p90_limit_ms = FlagOr(flags, "p90", 50);

  etude::core::PlannerOptions options;
  options.duration_s = 60;
  options.ramp_s = 30;
  options.max_replicas =
      static_cast<int>(FlagOr(flags, "max-replicas", 8));
  etude::core::CostPlanner planner(options);

  const std::vector<etude::sim::DeviceSpec> devices = {
      etude::sim::DeviceSpec::Cpu(), etude::sim::DeviceSpec::GpuT4(),
      etude::sim::DeviceSpec::GpuA100()};
  etude::metrics::Table table(
      {"model", "cheapest feasible", "cost/month", "p90 [ms]"});
  for (const auto model : etude::models::HealthyModelKinds()) {
    auto plan = planner.PlanModel(scenario, model, devices);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
      return 1;
    }
    const auto* best = plan->CheapestFeasible();
    if (best == nullptr) {
      table.AddRow({std::string(etude::models::ModelKindToString(model)),
                    "infeasible", "-", "-"});
      continue;
    }
    std::string cost = "$";
    cost += FormatDouble(best->monthly_cost_usd, 0);
    table.AddRow({std::string(etude::models::ModelKindToString(model)),
                  std::to_string(best->replicas) + " x " +
                      best->device.name,
                  std::move(cost),
                  FormatDouble(best->report.load.steady_p90_ms, 1)});
  }
  std::printf("%s", table.ToText().c_str());
  return 0;
}

int CmdGenerate(int argc, char** argv) {
  const auto flags = ParseFlags(argc, argv, 2);
  const int64_t catalog =
      static_cast<int64_t>(FlagOr(flags, "catalog", 10000));
  const int64_t clicks =
      static_cast<int64_t>(FlagOr(flags, "clicks", 1000));
  etude::workload::WorkloadStats stats;
  stats.session_length_alpha = FlagOr(flags, "alpha-l", 2.2);
  stats.click_count_alpha = FlagOr(flags, "alpha-c", 1.8);
  auto generator = etude::workload::SessionGenerator::Create(
      catalog, stats, static_cast<uint64_t>(FlagOr(flags, "seed", 42)));
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return 1;
  }
  std::printf("session_id,item_id,timestep\n");
  for (const auto& click : generator->GenerateClicks(clicks)) {
    std::printf("%lld,%lld,%lld\n",
                static_cast<long long>(click.session_id),
                static_cast<long long>(click.item_id),
                static_cast<long long>(click.timestep));
  }
  return 0;
}

int CmdServe(int argc, char** argv) {
  const auto flags = ParseFlags(argc, argv, 2);
  const auto model_it = flags.find("model");
  etude::models::ModelConfig config;
  config.catalog_size =
      static_cast<int64_t>(FlagOr(flags, "catalog", 10000));
  auto model = etude::models::CreateModel(
      model_it == flags.end() ? "GRU4Rec" : model_it->second, config);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  etude::serving::EtudeServeConfig serve_config;
  serve_config.port = static_cast<uint16_t>(FlagOr(flags, "port", 0));
  etude::serving::EtudeServe serve(model->get(), serve_config);
  const etude::Status status = serve.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  const int seconds = static_cast<int>(FlagOr(flags, "seconds", 0));
  std::printf(
      "serving %s (C=%s) on http://127.0.0.1:%u — POST "
      "/predictions/%s\n",
      std::string((*model)->name()).c_str(),
      etude::FormatWithCommas(config.catalog_size).c_str(), serve.port(),
      etude::ToLower((*model)->name()).c_str());
  std::fflush(stdout);
  if (seconds > 0) {
    sleep(static_cast<unsigned>(seconds));
  } else {
    while (true) sleep(3600);  // until interrupted
  }
  serve.Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  etude::SetLogLevel(etude::LogLevel::kWarning);
  const std::string command = argc > 1 ? argv[1] : "";
  if (command == "scenarios") return CmdScenarios();
  if (command == "run") return CmdRun(argc, argv);
  if (command == "plan") return CmdPlan(argc, argv);
  if (command == "generate") return CmdGenerate(argc, argv);
  if (command == "serve") return CmdServe(argc, argv);
  std::fprintf(stderr,
               "usage: etude <scenarios|run|plan|generate|serve> [flags]\n"
               "  run <spec.json>                    deployed benchmark\n"
               "  plan --catalog C --rps R           cost-efficient search\n"
               "  generate --catalog C --clicks N    synthetic click log\n"
               "  serve --model M --catalog C        real HTTP server\n");
  return 2;
}

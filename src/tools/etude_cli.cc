// etude — the command-line face of the framework.
//
// Subcommands:
//   etude scenarios
//       List the paper's five built-in use-case scenarios.
//   etude run <spec.json> [--trace-out FILE] [--folded-out FILE]
//       Execute one deployed benchmark from a declarative spec and print
//       the report (the `make run_deployed_benchmark` equivalent). With
//       --trace-out, the virtual-time spans of the simulated servers and
//       load generator are written as a Chrome trace-event file; with
//       --folded-out, as collapsed stacks for flamegraph.pl/speedscope.
//       With --exec-plan arena, additionally prints the compiled static
//       execution plan (arena bytes, fusion groups) each deployed worker
//       would replay for the spec's model and mode.
//   etude bench-diff BASELINE.json CANDIDATE.json [--threshold PCT]
//       Compare two BENCH JSON files (bench --json-out output or merged
//       tools/run_bench.sh suites); exits 3 on regression.
//   etude plan --catalog C --rps R [--p90 MS] [--max-replicas N]
//       Search cost-efficient deployments for a custom use case.
//   etude generate --catalog C --clicks N [--alpha-l A] [--alpha-c B]
//       Emit a synthetic click log (Algorithm 1) as CSV on stdout.
//   etude profile <model|all> [--mode eager|jit|both] [--catalog C]
//                 [--requests N] [--seed S] [--trace-out FILE]
//                 [--exec-plan arena|malloc]
//       Run real inference on the tensor engine and print the per-op
//       latency/FLOP breakdown of each model. --exec-plan arena replays
//       the compiled arena script instead of per-op heap allocation.
//   etude serve --model NAME --catalog C [--port P] [--seconds S]
//               [--metrics-format json|prometheus]
//               [--mode eager|jit] [--exec-plan arena|malloc]
//               [--retrieval exact|int8|ivf-flat|ivf-pq] [--nlist N]
//               [--nprobe N] [--rerank N] [--pq-m M]
//               [--slo-p90-us US] [--slo-window-s S] [--tail-trace-out F]
//       Start the real HTTP inference server on localhost. The SLO flags
//       configure the sliding-window monitor behind /slo; --tail-trace-out
//       writes the final window's slowest-request span trees as a Chrome
//       trace-event file on shutdown.
//   etude loadtest --port P [--route R] [--rps R] [--seconds S]
//                  [--concurrency N] [--catalog C] [--seed S]
//                  [--json-out F] [--wait-s W] [--host H]
//                  [--max-error-rate FRAC] [--max-p90-us US]
//       Drive a live `etude serve` instance with an open-loop Poisson
//       workload over real sockets and report the measured per-second
//       latency/throughput timeline (BENCH JSON via --json-out), plus a
//       cross-hop critical-path breakdown of the slowest requests joined
//       with the server's /slo tail exemplars by trace id. With an SLO
//       gate flag set, exits 3 when the run breaches it.
//   etude metrics-lint FILE
//       Check a saved Prometheus text-format scrape against the
//       exposition-format rules; exits 1 on violations.
//   etude lint-deploy <spec.json> [--frontier]
//       Statically check whether the spec's deployment can hold its p90
//       SLO at its target rate, from the model's batched plan
//       polynomials plus a queueing-delay bound — no simulation is run.
//       Exits 3 with a counterexample line when the spec is infeasible;
//       --frontier prints the verdict at every power-of-two batch size.

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ann/retriever.h"
#include "bench/diff.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "core/benchmark.h"
#include "core/cost_planner.h"
#include "core/slo_feasibility.h"
#include "core/spec.h"
#include "loadgen/http_load.h"
#include "metrics/report.h"
#include "models/model_factory.h"
#include "obs/chrome_trace.h"
#include "obs/critical_path.h"
#include "obs/slo_monitor.h"
#include "obs/folded.h"
#include "obs/prometheus.h"
#include "obs/memstats.h"
#include "obs/op_hook.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "serving/etude_serve.h"
#include "tensor/plan_analysis.h"
#include "tensor/plan_ir.h"
#include "workload/session_generator.h"

namespace {

using etude::FormatDouble;

/// Parses "--name value" flags after `argv[start]`. Flags outside
/// `allowed` and flags missing their value are reported as errors — a
/// misspelled flag must never be silently ignored.
etude::Result<std::map<std::string, std::string>> ParseFlags(
    int argc, char** argv, int start,
    const std::vector<std::string>& allowed) {
  std::map<std::string, std::string> flags;
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!etude::StartsWith(arg, "--")) {
      return etude::Status::InvalidArgument(
          "unexpected argument '" + arg + "'; flags are --name value pairs");
    }
    const std::string name = arg.substr(2);
    bool known = false;
    for (const std::string& a : allowed) known = known || a == name;
    if (!known) {
      return etude::Status::InvalidArgument(
          "unknown flag --" + name + "; allowed flags: --" +
          etude::Join(allowed, ", --"));
    }
    if (i + 1 >= argc) {
      return etude::Status::InvalidArgument("flag --" + name +
                                            " requires a value");
    }
    flags[name] = argv[++i];
  }
  return flags;
}

double FlagOr(const std::map<std::string, std::string>& flags,
              const std::string& name, double fallback) {
  const auto it = flags.find(name);
  return it == flags.end() ? fallback : std::atof(it->second.c_str());
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& name, const std::string& fallback) {
  const auto it = flags.find(name);
  return it == flags.end() ? fallback : it->second;
}

/// Parses `--exec-plan arena|malloc` (default malloc) into `out`.
/// Returns false (after reporting) on an invalid value.
bool ParseExecPlanFlag(const std::map<std::string, std::string>& flags,
                       etude::models::ExecPlanKind* out) {
  const std::string value =
      etude::ToLower(FlagOr(flags, "exec-plan", "malloc"));
  if (value == "arena") {
    *out = etude::models::ExecPlanKind::kArena;
    return true;
  }
  if (value == "malloc") {
    *out = etude::models::ExecPlanKind::kMalloc;
    return true;
  }
  std::fprintf(stderr,
               "invalid --exec-plan '%s'; expected arena or malloc\n",
               value.c_str());
  return false;
}

/// Applies `--threads N` (tensor-kernel worker count) when present.
/// Returns false (after reporting) on an invalid value.
bool ApplyThreadsFlag(const std::map<std::string, std::string>& flags) {
  const auto it = flags.find("threads");
  if (it == flags.end()) return true;
  const int threads = std::atoi(it->second.c_str());
  if (threads < 1) {
    std::fprintf(stderr, "--threads must be a positive integer, got '%s'\n",
                 it->second.c_str());
    return false;
  }
  etude::SetNumThreads(threads);
  return true;
}

/// Writes the tracer's snapshot to `path` as Chrome trace-event JSON.
int WriteTraceFile(const std::string& path) {
  auto& tracer = etude::obs::Tracer::Get();
  const std::vector<etude::obs::TraceEvent> events = tracer.Snapshot();
  const etude::Status status = etude::obs::WriteChromeTrace(path, events);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu trace events to %s\n", events.size(),
               path.c_str());
  if (tracer.dropped() > 0) {
    std::fprintf(stderr, "warning: %lld trace events dropped (buffer full)\n",
                 static_cast<long long>(tracer.dropped()));
  }
  return 0;
}

/// Writes the tracer's snapshot to `path` as collapsed stacks
/// (flamegraph.pl / speedscope input).
int WriteFoldedFile(const std::string& path) {
  auto& tracer = etude::obs::Tracer::Get();
  const std::vector<etude::obs::TraceEvent> events = tracer.Snapshot();
  const etude::Status status = etude::obs::WriteFolded(path, events);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote collapsed stacks of %zu spans to %s\n",
               events.size(), path.c_str());
  return 0;
}

int CmdScenarios() {
  etude::metrics::Table table(
      {"name", "catalog", "target req/s", "p90 limit [ms]"});
  for (const auto& scenario : etude::core::PaperScenarios()) {
    table.AddRow({scenario.name,
                  etude::FormatWithCommas(scenario.catalog_size),
                  FormatDouble(scenario.target_rps, 0),
                  FormatDouble(scenario.p90_limit_ms, 0)});
  }
  std::printf("%s", table.ToText().c_str());
  return 0;
}

/// Dumps a JSON document to `path`, failing loudly on short writes.
int WriteJsonFile(const etude::JsonValue& doc, const std::string& path) {
  const std::string text = doc.Dump() + "\n";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const int close_rc = std::fclose(file);
  if (written != text.size() || close_rc != 0) {
    std::fprintf(stderr, "short write to %s\n", path.c_str());
    return 1;
  }
  return 0;
}

int CmdRun(int argc, char** argv) {
  if (argc < 3 || etude::StartsWith(argv[2], "--")) {
    std::fprintf(stderr,
                 "usage: etude run <spec.json> [--trace-out FILE] "
                 "[--folded-out FILE] [--exec-plan arena|malloc] "
                 "[--json-out FILE]\n");
    return 2;
  }
  const auto flags = ParseFlags(
      argc, argv, 3,
      {"trace-out", "folded-out", "threads", "exec-plan", "json-out"});
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  if (!ApplyThreadsFlag(*flags)) return 2;
  etude::models::ExecPlanKind exec_plan =
      etude::models::ExecPlanKind::kMalloc;
  if (!ParseExecPlanFlag(*flags, &exec_plan)) return 2;
  auto spec = etude::core::LoadBenchmarkSpec(argv[2]);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  const std::string trace_out = FlagOr(*flags, "trace-out", "");
  const std::string folded_out = FlagOr(*flags, "folded-out", "");
  if (!trace_out.empty() || !folded_out.empty()) {
    etude::obs::Tracer::Get().Enable();
  }
  auto report = etude::core::RunDeployedBenchmark(*spec);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->Summary().c_str());
  if (exec_plan == etude::models::ExecPlanKind::kArena) {
    // The deployed benchmark itself runs in virtual time; --exec-plan
    // arena additionally compiles the static execution plan each deployed
    // worker would replay for this spec's model and mode, and prints its
    // footprint (the per-worker transient-memory budget).
    etude::models::ModelConfig config;
    config.catalog_size = spec->scenario.catalog_size;
    config.materialize_embeddings = false;  // cost-only: no [C, d] alloc
    auto model = etude::models::CreateModel(spec->model, config);
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      return 1;
    }
    const int64_t length = (*model)->config().max_session_length;
    const etude::tensor::ExecutionPlan& plan =
        (*model)->CompiledPlan(spec->mode, length, length);
    std::printf(
        "exec plan (%s, L=%lld): arena %s bytes, %zu allocation events, "
        "%zu fusion groups, %zu cse reuses\n",
        spec->mode == etude::models::ExecutionMode::kJit ? "jit" : "eager",
        static_cast<long long>(length),
        etude::FormatWithCommas(plan.arena.arena_bytes).c_str(),
        plan.arena.bytes.size(), plan.fusion_groups.size(),
        plan.cse.size());
  }
  if (!trace_out.empty()) {
    const int rc = WriteTraceFile(trace_out);
    if (rc != 0) return rc;
  }
  if (!folded_out.empty()) {
    const int rc = WriteFoldedFile(folded_out);
    if (rc != 0) return rc;
  }
  const std::string json_out = FlagOr(*flags, "json-out", "");
  if (!json_out.empty()) {
    // BENCH JSON with the per-pod DES timelines (same tick schema as
    // `etude loadtest --json-out`) plus the merged fleet registry.
    const etude::JsonValue doc =
        etude::core::DeployedBenchmarkJson(*report);
    const int rc = WriteJsonFile(doc, json_out);
    if (rc != 0) return rc;
    std::fprintf(stderr, "wrote fleet telemetry to %s\n", json_out.c_str());
  }
  return report->meets_slo ? 0 : 3;
}

int CmdPlan(int argc, char** argv) {
  const auto flags =
      ParseFlags(argc, argv, 2, {"catalog", "rps", "p90", "max-replicas"});
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  etude::core::Scenario scenario;
  scenario.name = "cli";
  scenario.catalog_size =
      static_cast<int64_t>(FlagOr(*flags, "catalog", 100000));
  scenario.target_rps = FlagOr(*flags, "rps", 250);
  scenario.p90_limit_ms = FlagOr(*flags, "p90", 50);

  etude::core::PlannerOptions options;
  options.duration_s = 60;
  options.ramp_s = 30;
  options.max_replicas =
      static_cast<int>(FlagOr(*flags, "max-replicas", 8));
  etude::core::CostPlanner planner(options);

  const std::vector<etude::sim::DeviceSpec> devices = {
      etude::sim::DeviceSpec::Cpu(), etude::sim::DeviceSpec::GpuT4(),
      etude::sim::DeviceSpec::GpuA100()};
  etude::metrics::Table table(
      {"model", "cheapest feasible", "cost/month", "p90 [ms]"});
  for (const auto model : etude::models::HealthyModelKinds()) {
    auto plan = planner.PlanModel(scenario, model, devices);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
      return 1;
    }
    const auto* best = plan->CheapestFeasible();
    if (best == nullptr) {
      table.AddRow({std::string(etude::models::ModelKindToString(model)),
                    "infeasible", "-", "-"});
      continue;
    }
    std::string cost = "$";
    cost += FormatDouble(best->monthly_cost_usd, 0);
    table.AddRow({std::string(etude::models::ModelKindToString(model)),
                  std::to_string(best->replicas) + " x " +
                      best->device.name,
                  std::move(cost),
                  FormatDouble(best->report.load.steady_p90_ms, 1)});
  }
  std::printf("%s", table.ToText().c_str());
  return 0;
}

int CmdGenerate(int argc, char** argv) {
  const auto flags = ParseFlags(argc, argv, 2,
                                {"catalog", "clicks", "alpha-l", "alpha-c",
                                 "seed"});
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  const int64_t catalog =
      static_cast<int64_t>(FlagOr(*flags, "catalog", 10000));
  const int64_t clicks =
      static_cast<int64_t>(FlagOr(*flags, "clicks", 1000));
  etude::workload::WorkloadStats stats;
  stats.session_length_alpha = FlagOr(*flags, "alpha-l", 2.2);
  stats.click_count_alpha = FlagOr(*flags, "alpha-c", 1.8);
  auto generator = etude::workload::SessionGenerator::Create(
      catalog, stats, static_cast<uint64_t>(FlagOr(*flags, "seed", 42)));
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return 1;
  }
  std::printf("session_id,item_id,timestep\n");
  for (const auto& click : generator->GenerateClicks(clicks)) {
    std::printf("%lld,%lld,%lld\n",
                static_cast<long long>(click.session_id),
                static_cast<long long>(click.item_id),
                static_cast<long long>(click.timestep));
  }
  return 0;
}

/// Profiles one (model, mode) pair: runs `requests` real inference
/// requests with the per-op profiler attached and prints the breakdown.
int ProfileOne(etude::models::ModelKind kind,
               etude::models::ExecutionMode mode,
               etude::models::ExecPlanKind plan, int64_t catalog,
               int requests, uint64_t seed) {
  etude::models::ModelConfig config;
  config.catalog_size = catalog;
  config.seed = seed;
  auto model = etude::models::CreateModel(kind, config);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  auto generator = etude::workload::SessionGenerator::Create(
      catalog, etude::workload::WorkloadStats(), seed);
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<int64_t>> sessions;
  while (static_cast<int>(sessions.size()) < requests) {
    etude::workload::Session session = generator->NextSession();
    if (!session.items.empty()) sessions.push_back(std::move(session.items));
  }

  const etude::models::ExecOptions options{mode, plan};
  const bool jit_fallback = mode == etude::models::ExecutionMode::kJit &&
                            !(*model)->jit_compatible();
  std::string header = "== " + std::string((*model)->name()) +
                       (mode == etude::models::ExecutionMode::kJit
                            ? " (jit"
                            : " (eager");
  if (plan == etude::models::ExecPlanKind::kArena) header += ", arena";
  if (jit_fallback) header += " -> eager fallback: not jit-compatible";
  header += ") ==";

  // Warm up caches, allocators and the compiled-plan cache outside the
  // profiled window.
  for (int i = 0; i < 4; ++i) {
    auto rec = (*model)->Recommend(sessions[i % sessions.size()], options);
    if (!rec.ok()) {
      std::fprintf(stderr, "%s\n", rec.status().ToString().c_str());
      return 1;
    }
  }

  etude::obs::OpProfile profile;
  {
    etude::obs::ScopedOpSink sink(&profile);
    for (int i = 0; i < requests; ++i) {
      ETUDE_TRACE_SPAN("recommend", "inference");
      auto rec = (*model)->Recommend(sessions[i % sessions.size()], options);
      if (!rec.ok()) {
        std::fprintf(stderr, "%s\n", rec.status().ToString().c_str());
        return 1;
      }
    }
  }
  // Static per-op FLOP predictions from the plan IR's cost polynomials,
  // evaluated at every profiled request's session length and true
  // session-graph node count, then summed — directly comparable to the
  // measured per-op totals.
  const etude::tensor::CostSummary plan_cost =
      etude::tensor::AnalyzeCost((*model)->BuildPlan(mode));
  std::map<std::string, double> static_flops;
  const int64_t max_len = (*model)->config().max_session_length;
  for (int i = 0; i < requests; ++i) {
    const std::vector<int64_t>& session = sessions[i % sessions.size()];
    const size_t start = session.size() > static_cast<size_t>(max_len)
                             ? session.size() - static_cast<size_t>(max_len)
                             : 0;
    const int64_t len = static_cast<int64_t>(session.size() - start);
    etude::tensor::Bindings bindings = (*model)->PlanBindings(len);
    bindings["n"] = static_cast<double>(
        std::set<int64_t>(session.begin() + static_cast<ptrdiff_t>(start),
                          session.end())
            .size());
    for (const auto& [op, poly] : plan_cost.flops_by_op) {
      static_flops[op] += poly.Eval(bindings);
    }
  }

  std::printf("%s\n", header.c_str());
  std::printf("catalog %s, d=%lld, %d requests, %.1f us/request\n",
              etude::FormatWithCommas(catalog).c_str(),
              static_cast<long long>((*model)->config().embedding_dim),
              requests,
              static_cast<double>(profile.TotalNs()) / 1e3 / requests);
  if (plan == etude::models::ExecPlanKind::kArena) {
    // Arena stats of the last request on this thread: how much of the
    // compiled script the runtime replayed (fallbacks should be 0).
    const etude::obs::ArenaMemStats arena = etude::obs::ThreadArenaStats();
    std::printf(
        "arena: %s bytes planned, high water %s, %lld allocs served, "
        "%lld heap fallbacks\n",
        etude::FormatWithCommas(arena.planned_bytes).c_str(),
        etude::FormatWithCommas(arena.high_water_bytes).c_str(),
        static_cast<long long>(arena.served_allocs),
        static_cast<long long>(arena.fallback_allocs));
  }
  std::printf("%s\n", profile.ToText(static_flops).c_str());
  return 0;
}

int CmdProfile(int argc, char** argv) {
  if (argc < 3 || etude::StartsWith(argv[2], "--")) {
    std::fprintf(stderr,
                 "usage: etude profile <model|all> [--mode eager|jit|both] "
                 "[--catalog C] [--requests N] [--seed S] "
                 "[--trace-out FILE] [--folded-out FILE] "
                 "[--exec-plan arena|malloc]\n");
    return 2;
  }
  const auto flags =
      ParseFlags(argc, argv, 3,
                 {"mode", "catalog", "requests", "seed", "trace-out",
                  "folded-out", "threads", "exec-plan"});
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  if (!ApplyThreadsFlag(*flags)) return 2;
  const std::string model_arg = argv[2];
  std::vector<etude::models::ModelKind> kinds;
  if (etude::ToLower(model_arg) == "all") {
    kinds = etude::models::AllModelKinds();
  } else {
    auto kind = etude::models::ModelKindFromString(model_arg);
    if (!kind.ok()) {
      std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
      return 2;
    }
    kinds.push_back(*kind);
  }

  const std::string mode_arg = etude::ToLower(FlagOr(*flags, "mode", "both"));
  std::vector<etude::models::ExecutionMode> modes;
  if (mode_arg == "eager") {
    modes = {etude::models::ExecutionMode::kEager};
  } else if (mode_arg == "jit") {
    modes = {etude::models::ExecutionMode::kJit};
  } else if (mode_arg == "both") {
    modes = {etude::models::ExecutionMode::kEager,
             etude::models::ExecutionMode::kJit};
  } else {
    std::fprintf(stderr,
                 "invalid --mode '%s'; expected eager, jit or both\n",
                 mode_arg.c_str());
    return 2;
  }

  const int64_t catalog =
      static_cast<int64_t>(FlagOr(*flags, "catalog", 10000));
  const int requests = static_cast<int>(FlagOr(*flags, "requests", 64));
  const uint64_t seed = static_cast<uint64_t>(FlagOr(*flags, "seed", 42));
  if (requests < 1) {
    std::fprintf(stderr, "--requests must be >= 1\n");
    return 2;
  }
  etude::models::ExecPlanKind plan = etude::models::ExecPlanKind::kMalloc;
  if (!ParseExecPlanFlag(*flags, &plan)) return 2;
  const std::string trace_out = FlagOr(*flags, "trace-out", "");
  const std::string folded_out = FlagOr(*flags, "folded-out", "");
  if (!trace_out.empty() || !folded_out.empty()) {
    etude::obs::Tracer::Get().Enable();
  }

  for (const auto kind : kinds) {
    for (const auto mode : modes) {
      const int rc = ProfileOne(kind, mode, plan, catalog, requests, seed);
      if (rc != 0) return rc;
    }
  }
  if (!trace_out.empty()) {
    const int rc = WriteTraceFile(trace_out);
    if (rc != 0) return rc;
  }
  if (!folded_out.empty()) {
    const int rc = WriteFoldedFile(folded_out);
    if (rc != 0) return rc;
  }
  return 0;
}

int CmdServe(int argc, char** argv) {
  const auto flags = ParseFlags(argc, argv, 2,
                                {"model", "catalog", "port", "seconds",
                                 "metrics-format", "threads", "mode",
                                 "exec-plan", "slo-p90-us", "slo-window-s",
                                 "tail-trace-out", "retrieval", "nlist",
                                 "nprobe", "rerank", "pq-m"});
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  if (!ApplyThreadsFlag(*flags)) return 2;
  etude::models::ModelConfig config;
  config.catalog_size =
      static_cast<int64_t>(FlagOr(*flags, "catalog", 10000));
  auto model =
      etude::models::CreateModel(FlagOr(*flags, "model", "GRU4Rec"), config);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  etude::ann::RetrievalConfig retrieval;
  const auto backend = etude::ann::RetrievalBackendFromString(
      etude::ToLower(FlagOr(*flags, "retrieval", "exact")));
  if (!backend.ok()) {
    std::fprintf(stderr, "%s\n", backend.status().ToString().c_str());
    return 2;
  }
  retrieval.backend = *backend;
  retrieval.nlist = static_cast<int64_t>(FlagOr(*flags, "nlist", 0));
  retrieval.nprobe = static_cast<int64_t>(
      FlagOr(*flags, "nprobe", static_cast<double>(retrieval.nprobe)));
  retrieval.rerank = static_cast<int64_t>(FlagOr(*flags, "rerank", 0));
  retrieval.pq_m = static_cast<int64_t>(FlagOr(*flags, "pq-m", 0));
  if (retrieval.nlist < 0 || retrieval.nprobe < 1 || retrieval.rerank < 0 ||
      retrieval.pq_m < 0) {
    std::fprintf(stderr,
                 "--nlist/--rerank/--pq-m must be >= 0 and --nprobe >= 1\n");
    return 2;
  }
  if (retrieval.backend != etude::ann::RetrievalBackend::kExact) {
    std::printf("building %s retrieval index over C=%s...\n",
                std::string(etude::ann::RetrievalBackendToString(
                                retrieval.backend))
                    .c_str(),
                etude::FormatWithCommas(config.catalog_size).c_str());
    std::fflush(stdout);
  }
  const etude::Status retrieval_status =
      (*model)->ConfigureRetrieval(retrieval);
  if (!retrieval_status.ok()) {
    std::fprintf(stderr, "%s\n", retrieval_status.ToString().c_str());
    return 1;
  }
  etude::serving::EtudeServeConfig serve_config;
  serve_config.port = static_cast<uint16_t>(FlagOr(*flags, "port", 0));
  const std::string format =
      etude::ToLower(FlagOr(*flags, "metrics-format", "json"));
  if (format == "prometheus") {
    serve_config.default_metrics_format =
        etude::serving::MetricsFormat::kPrometheus;
  } else if (format != "json") {
    std::fprintf(stderr,
                 "invalid --metrics-format '%s'; expected json or "
                 "prometheus\n",
                 format.c_str());
    return 2;
  }
  const std::string mode = etude::ToLower(FlagOr(*flags, "mode", "eager"));
  if (mode == "jit") {
    serve_config.exec.mode = etude::models::ExecutionMode::kJit;
  } else if (mode != "eager") {
    std::fprintf(stderr, "invalid --mode '%s'; expected eager or jit\n",
                 mode.c_str());
    return 2;
  }
  if (!ParseExecPlanFlag(*flags, &serve_config.exec.plan)) return 2;
  serve_config.slo.slo_p90_us = static_cast<int64_t>(
      FlagOr(*flags, "slo-p90-us",
             static_cast<double>(serve_config.slo.slo_p90_us)));
  serve_config.slo.window_seconds = static_cast<int>(
      FlagOr(*flags, "slo-window-s",
             static_cast<double>(serve_config.slo.window_seconds)));
  if (serve_config.slo.slo_p90_us < 1 ||
      serve_config.slo.window_seconds < 1) {
    std::fprintf(stderr,
                 "--slo-p90-us and --slo-window-s must be >= 1\n");
    return 2;
  }
  const std::string tail_trace_out = FlagOr(*flags, "tail-trace-out", "");
  if (!tail_trace_out.empty() && !etude::obs::kSloMonitorCompiled) {
    std::fprintf(stderr,
                 "--tail-trace-out has no effect: built with "
                 "ETUDE_DISABLE_TRACING\n");
  }
  etude::serving::EtudeServe serve(model->get(), serve_config);
  const etude::Status status = serve.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  const int seconds = static_cast<int>(FlagOr(*flags, "seconds", 0));
  std::printf(
      "serving %s (C=%s) on http://127.0.0.1:%u — POST "
      "/predictions/%s\n",
      std::string((*model)->name()).c_str(),
      etude::FormatWithCommas(config.catalog_size).c_str(), serve.port(),
      etude::ToLower((*model)->name()).c_str());
  std::fflush(stdout);
  if (seconds > 0) {
    sleep(static_cast<unsigned>(seconds));
  } else {
    while (true) sleep(3600);  // until interrupted
  }
  serve.Stop();
  if (!tail_trace_out.empty()) {
    const etude::obs::WindowSnapshot snapshot = serve.SloSnapshot();
    const etude::Status written = etude::obs::WriteChromeTrace(
        tail_trace_out, etude::obs::TailTraceEvents(snapshot.slowest));
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu tail exemplars to %s\n",
                 snapshot.slowest.size(), tail_trace_out.c_str());
  }
  return 0;
}

int CmdLoadtest(int argc, char** argv) {
  const auto flags = ParseFlags(argc, argv, 2,
                                {"host", "port", "route", "rps", "seconds",
                                 "concurrency", "catalog", "seed",
                                 "json-out", "wait-s", "timeout-s",
                                 "max-error-rate", "max-p90-us"});
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  if (flags->find("port") == flags->end()) {
    std::fprintf(stderr,
                 "usage: etude loadtest --port P [--route R] [--rps R] "
                 "[--seconds S] [--concurrency N] [--catalog C] [--seed S] "
                 "[--json-out F] [--wait-s W] [--host H] [--timeout-s T] "
                 "[--max-error-rate FRAC] [--max-p90-us US]\n");
    return 2;
  }
  etude::loadgen::HttpLoadConfig config;
  config.host = FlagOr(*flags, "host", "127.0.0.1");
  config.port = static_cast<uint16_t>(FlagOr(*flags, "port", 0));
  config.route = FlagOr(*flags, "route", "/predictions/gru4rec");
  config.target_rps = FlagOr(*flags, "rps", 100);
  config.duration_s = FlagOr(*flags, "seconds", 10);
  config.concurrency = static_cast<int>(FlagOr(*flags, "concurrency", 4));
  config.catalog_size =
      static_cast<int64_t>(FlagOr(*flags, "catalog", 10000));
  config.seed = static_cast<uint64_t>(FlagOr(*flags, "seed", 17));
  config.timeout_s = FlagOr(*flags, "timeout-s", 5.0);

  const double wait_s = FlagOr(*flags, "wait-s", 0.0);
  if (wait_s > 0) {
    const etude::Status ready = etude::loadgen::HttpLoadGenerator::WaitReady(
        config.host, config.port, wait_s);
    if (!ready.ok()) {
      std::fprintf(stderr, "%s\n", ready.ToString().c_str());
      return 1;
    }
  }

  etude::loadgen::HttpLoadGenerator generator(config);
  auto result = generator.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  const auto summary = result->timeline.AggregateLatencies().Summarize();
  std::printf(
      "loadtest %s:%u%s — offered %.1f req/s for %.1fs, achieved %.1f "
      "req/s\n",
      config.host.c_str(), config.port, config.route.c_str(),
      config.target_rps, config.duration_s, result->achieved_rps);
  std::printf("requests %lld ok %lld errors %lld\n",
              static_cast<long long>(result->total_requests),
              static_cast<long long>(result->total_ok),
              static_cast<long long>(result->total_errors));
  std::printf("wall latency p50 %lld us, p90 %lld us, p99 %lld us\n",
              static_cast<long long>(summary.p50),
              static_cast<long long>(summary.p90),
              static_cast<long long>(summary.p99));
  const auto server = result->server_inference_us.Summarize();
  if (server.count > 0) {
    std::printf("server inference p50 %lld us, p90 %lld us "
                "(x-inference-us)\n",
                static_cast<long long>(server.p50),
                static_cast<long long>(server.p90));
  }
  for (const auto& slow : result->slowest) {
    std::printf("slow: %lld us at tick %lld trace_id=%s\n",
                static_cast<long long>(slow.latency_us),
                static_cast<long long>(slow.tick), slow.trace_id.c_str());
  }
  // Cross-hop attribution: client latency joined with the server's /slo
  // tail exemplars by trace id (empty when the server has no tracing).
  for (const auto& path : result->critical_paths) {
    std::printf("%s", etude::obs::CriticalPathText(path).c_str());
  }

  const std::string json_out = FlagOr(*flags, "json-out", "");
  if (!json_out.empty()) {
    const etude::JsonValue doc =
        etude::loadgen::LoadTimelineJson(config, *result);
    const int rc = WriteJsonFile(doc, json_out);
    if (rc != 0) return rc;
    std::fprintf(stderr, "wrote timeline to %s\n", json_out.c_str());
  }

  // SLO gates: with --max-error-rate / --max-p90-us the run becomes a
  // pass/fail check (exit 3 on breach) for CI smoke jobs. Without gates
  // the legacy contract holds: any error fails the run.
  const bool has_gates = flags->count("max-error-rate") > 0 ||
                         flags->count("max-p90-us") > 0;
  if (!has_gates) return result->total_errors == 0 ? 0 : 3;
  int rc = 0;
  if (flags->count("max-error-rate") > 0) {
    const double max_error_rate = FlagOr(*flags, "max-error-rate", 0.0);
    const double error_rate =
        result->total_requests > 0
            ? static_cast<double>(result->total_errors) /
                  static_cast<double>(result->total_requests)
            : 0.0;
    if (error_rate > max_error_rate) {
      std::fprintf(stderr,
                   "GATE BREACH: error rate %.4f > --max-error-rate %.4f\n",
                   error_rate, max_error_rate);
      rc = 3;
    }
  }
  if (flags->count("max-p90-us") > 0) {
    const double max_p90_us = FlagOr(*flags, "max-p90-us", 0.0);
    if (static_cast<double>(summary.p90) > max_p90_us) {
      std::fprintf(stderr,
                   "GATE BREACH: wall p90 %lld us > --max-p90-us %.0f\n",
                   static_cast<long long>(summary.p90), max_p90_us);
      rc = 3;
    }
  }
  return rc;
}

/// `etude bench-diff` — same engine as the bench_diff binary, for
/// workflows that only have the CLI on PATH.
int CmdBenchDiff(int argc, char** argv) {
  const std::vector<std::string> args(argv + 2, argv + argc);
  return etude::bench::DiffMain(args);
}

/// `etude metrics-lint FILE` — checks a Prometheus text-format scrape
/// (e.g. a saved `/metrics` response) against the exposition-format rules
/// the registry promises. Exit 0 clean, 1 on violations, 2 on usage/IO.
int CmdMetricsLint(int argc, char** argv) {
  if (argc != 3 || etude::StartsWith(argv[2], "--")) {
    std::fprintf(stderr, "usage: etude metrics-lint FILE\n");
    return 2;
  }
  std::FILE* file = std::fopen(argv[2], "rb");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", argv[2]);
    return 2;
  }
  std::string text;
  char buffer[4096];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, read);
  }
  std::fclose(file);
  const etude::Status status = etude::obs::ValidatePrometheusText(text);
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv[2], status.ToString().c_str());
    return 1;
  }
  std::printf("%s: OK\n", argv[2]);
  return 0;
}

/// `etude lint-deploy <spec.json>` — static SLO-feasibility check of a
/// deployment spec: no simulation is run; the verdict comes from the
/// model's batched plan polynomials plus a queueing-delay bound
/// (core/slo_feasibility.h). Exit 0 when the spec can hold its p90
/// objective at its target rate, 3 with a counterexample line when it
/// provably cannot, 2 on usage errors, 1 on spec/model errors.
int CmdLintDeploy(int argc, char** argv) {
  if (argc < 3 || etude::StartsWith(argv[2], "--")) {
    std::fprintf(stderr,
                 "usage: etude lint-deploy <spec.json> [--frontier]\n");
    return 2;
  }
  bool frontier = false;
  for (int i = 3; i < argc; ++i) {
    if (std::string(argv[i]) == "--frontier") {
      frontier = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'; allowed: --frontier\n",
                   argv[i]);
      return 2;
    }
  }
  auto spec = etude::core::LoadBenchmarkSpec(argv[2]);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  // Cost-only model, as in the deployed benchmark: the [C, d] table is
  // never materialised; the retrieval backend enters analytically.
  etude::models::ModelConfig model_config;
  model_config.catalog_size = spec->scenario.catalog_size;
  model_config.top_k = 21;
  model_config.seed = spec->seed;
  model_config.materialize_embeddings = false;
  auto model = etude::models::CreateModel(spec->model, model_config);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  const etude::Status retrieval_status =
      (*model)->ConfigureRetrieval(spec->retrieval);
  if (!retrieval_status.ok()) {
    std::fprintf(stderr, "%s\n", retrieval_status.ToString().c_str());
    return 1;
  }

  etude::core::DeployPoint point;
  point.mode = spec->mode;
  point.device = spec->device;
  point.replicas = spec->replicas;
  point.batch = spec->batch;
  // Every batch is padded to the longest session the workload can emit
  // (itself capped by the model's truncation window).
  point.session_length =
      std::min(spec->scenario.workload.max_session_length,
               (*model)->config().max_session_length);
  point.lambda_rps = spec->scenario.target_rps;
  point.slo_p90_ms = spec->scenario.p90_limit_ms;

  const etude::core::FeasibilityVerdict verdict =
      etude::core::CheckSloFeasibility(**model, point);
  std::printf("%s %s B=%d x%d on %s @ %s rps, SLO p90 %s ms\n",
              etude::models::ModelKindToString(spec->model).data(),
              spec->mode == etude::models::ExecutionMode::kJit ? "jit"
                                                               : "eager",
              point.batch, point.replicas, point.device.name.c_str(),
              FormatDouble(point.lambda_rps, 0).c_str(),
              FormatDouble(point.slo_p90_ms, 1).c_str());
  std::printf("%s\n", verdict.Summary().c_str());

  if (frontier) {
    std::vector<int> batches;
    for (int b = 1; b <= std::max(spec->batch, 64); b *= 2) {
      batches.push_back(b);
    }
    etude::metrics::Table table(
        {"B", "verdict", "rho", "p90 est [ms]", "service [ms]"});
    for (const auto& [batch, entry] :
         etude::core::SloFeasibilityFrontier(**model, point, batches)) {
      table.AddRow({std::to_string(batch),
                    entry.feasible ? "feasible" : "infeasible",
                    FormatDouble(entry.utilization, 2),
                    std::isfinite(entry.p90_estimate_us)
                        ? FormatDouble(entry.p90_estimate_us / 1000.0, 2)
                        : "inf",
                    FormatDouble(entry.service_us / 1000.0, 2)});
    }
    std::printf("%s", table.ToText().c_str());
  }
  if (!verdict.feasible) {
    std::fprintf(stderr, "rejected: %s\n", verdict.counterexample.c_str());
    return 3;
  }
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: etude "
      "<scenarios|run|plan|generate|profile|serve|loadtest|bench-diff|"
      "metrics-lint|lint-deploy> [flags]\n"
      "  scenarios                          list built-in scenarios\n"
      "  run <spec.json> [--trace-out F]    deployed benchmark; optionally\n"
      "      [--folded-out F] [--threads N] write a Chrome trace-event file\n"
      "      [--exec-plan arena|malloc]     or collapsed flamegraph stacks\n"
      "      [--json-out F]                 of the simulated execution;\n"
      "                                     arena prints the compiled\n"
      "                                     per-worker execution plan;\n"
      "                                     json-out writes the per-pod\n"
      "                                     timelines + fleet metrics\n"
      "  plan --catalog C --rps R           cost-efficient search\n"
      "       [--p90 MS] [--max-replicas N]\n"
      "  generate --catalog C --clicks N    synthetic click log\n"
      "       [--alpha-l A] [--alpha-c B] [--seed S]\n"
      "  profile <model|all>                per-op inference breakdown\n"
      "       [--mode eager|jit|both] [--catalog C] [--requests N]\n"
      "       [--seed S] [--trace-out F] [--folded-out F] [--threads N]\n"
      "       [--exec-plan arena|malloc]\n"
      "  serve --model M --catalog C        real HTTP server\n"
      "       [--port P] [--seconds S] [--metrics-format json|prometheus]\n"
      "       [--threads N] [--mode eager|jit] [--exec-plan arena|malloc]\n"
      "       [--slo-p90-us US] [--slo-window-s S] [--tail-trace-out F]\n"
      "  loadtest --port P                  open-loop load on a live serve\n"
      "       [--route R] [--rps R] [--seconds S] [--concurrency N]\n"
      "       [--catalog C] [--seed S] [--json-out F] [--wait-s W]\n"
      "       [--host H] [--timeout-s T]\n"
      "       [--max-error-rate FRAC] [--max-p90-us US]  SLO gates: exit 3\n"
      "                                     when the run breaches either\n"
      "  bench-diff BASE.json CAND.json     diff two BENCH files; exit 3\n"
      "       [--threshold PCT] [--stat S]  on regression beyond threshold\n"
      "       [--fail-on-missing] [--all]\n"
      "  metrics-lint FILE                  lint a Prometheus text scrape;\n"
      "                                     exit 1 on format violations\n"
      "  lint-deploy <spec.json>            static SLO-feasibility check\n"
      "       [--frontier]                  from the batched plan costs;\n"
      "                                     exit 3 + counterexample when\n"
      "                                     the spec cannot hold its p90;\n"
      "                                     --frontier sweeps batch sizes\n"
      "\n"
      "Unknown flags are errors. /metrics of `serve` answers JSON by\n"
      "default and Prometheus text format under `Accept: text/plain` (or\n"
      "`?format=prometheus`); --metrics-format sets the default.\n"
      "--threads N sets the tensor-kernel worker count (default: the\n"
      "ETUDE_NUM_THREADS environment variable, else all hardware threads).\n"
      "--exec-plan arena replays the statically compiled arena script\n"
      "(zero per-op heap allocation, fused kernels under jit); malloc is\n"
      "the default per-op allocating path.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  etude::SetLogLevel(etude::LogLevel::kWarning);
  const std::string command = argc > 1 ? argv[1] : "";
  if (command == "scenarios") return CmdScenarios();
  if (command == "run") return CmdRun(argc, argv);
  if (command == "plan") return CmdPlan(argc, argv);
  if (command == "generate") return CmdGenerate(argc, argv);
  if (command == "profile") return CmdProfile(argc, argv);
  if (command == "serve") return CmdServe(argc, argv);
  if (command == "loadtest") return CmdLoadtest(argc, argv);
  if (command == "bench-diff") return CmdBenchDiff(argc, argv);
  if (command == "metrics-lint") return CmdMetricsLint(argc, argv);
  if (command == "lint-deploy") return CmdLintDeploy(argc, argv);
  if (command == "--help" || command == "-h" || command == "help") {
    Usage();
    return 0;
  }
  return Usage();
}

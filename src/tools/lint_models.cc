// lint_models: runs the static op-graph shape linter over every supported
// model architecture in both execution modes and exits nonzero if any
// graph is mis-shaped. Intended for CI: the check is symbolic in
// {C, d, L, k}, so it needs no weights, no requests and no benchmark run.
//
// Usage: lint_models [--verbose]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "models/model_factory.h"
#include "models/session_model.h"

namespace {

const char* ModeName(etude::models::ExecutionMode mode) {
  return mode == etude::models::ExecutionMode::kJit ? "jit" : "eager";
}

}  // namespace

int main(int argc, char** argv) {
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else {
      std::fprintf(stderr, "usage: %s [--verbose]\n", argv[0]);
      return 2;
    }
  }

  // The lint is independent of concrete sizes, but exercise several
  // catalog scales anyway: they cover the d = ceil(C^(1/4)) heuristic and
  // the construction-time validation around it.
  const std::vector<int64_t> catalog_sizes = {100, 10'000, 1'000'000};

  int failures = 0;
  int checked = 0;
  for (const etude::models::ModelKind kind :
       etude::models::AllModelKinds()) {
    for (const int64_t catalog : catalog_sizes) {
      etude::models::ModelConfig config;
      config.catalog_size = catalog;
      config.materialize_embeddings = false;  // cost-only: no [C, d] alloc
      // CreateModel already lints both modes at construction; a failure
      // surfaces here as an InvalidArgument status.
      auto model = etude::models::CreateModel(kind, config);
      if (!model.ok()) {
        ++failures;
        std::fprintf(stderr, "FAIL %s (C=%lld):\n%s\n",
                     std::string(etude::models::ModelKindToString(kind))
                         .c_str(),
                     static_cast<long long>(catalog),
                     model.status().ToString().c_str());
        continue;
      }
      for (const etude::models::ExecutionMode mode :
           {etude::models::ExecutionMode::kEager,
            etude::models::ExecutionMode::kJit}) {
        ++checked;
        const etude::Status status = (*model)->CheckShapes(mode);
        if (!status.ok()) {
          ++failures;
          std::fprintf(stderr, "FAIL %s %s (C=%lld):\n%s\n",
                       std::string((*model)->name()).c_str(), ModeName(mode),
                       static_cast<long long>(catalog),
                       status.ToString().c_str());
        } else if (verbose) {
          std::printf("ok   %-10s %-5s C=%lld\n",
                      std::string((*model)->name()).c_str(), ModeName(mode),
                      static_cast<long long>(catalog));
        }
      }
    }
  }

  if (failures > 0) {
    std::fprintf(stderr, "lint_models: %d of %d checks failed\n", failures,
                 checked);
    return 1;
  }
  std::printf("lint_models: %d op-graph shape checks passed\n", checked);
  return 0;
}

// lint_models: runs the static plan lints over every supported model
// architecture in both execution modes and exits nonzero if any graph is
// mis-shaped or wasteful (dead ops, unconsumed catalog-sized tensors).
// Intended for CI: the checks are symbolic in {C, d, L, k}, so they need
// no weights, no requests and no benchmark run.
//
// With --report, additionally prints the per-model x per-mode plan table
// (op count, peak-memory and FLOP polynomials, compiled arena bytes,
// fusion groups) plus every diagnostic the analysis passes emit —
// including the structural reason LightSANs falls back to eager under
// JIT. --json PATH writes the machine-readable report; --golden PATH
// diffs it against a committed golden file and fails on drift
// (--update-golden rewrites it in place instead).
//
// --strict promotes kWarning diagnostics in *JIT-mode* plans to a nonzero
// exit: the JIT plan is what the execution planner deduplicates, so a
// surviving CSE warning there means a hoist was missed. Eager plans keep
// their warnings — they are faithful reproductions of upstream RecBole
// dispatch sequences.
//
// Usage: lint_models [--verbose] [--report] [--strict] [--json PATH]
//                    [--golden PATH] [--update-golden]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "models/model_factory.h"
#include "models/plan_report.h"
#include "models/session_model.h"
#include "tensor/plan_analysis.h"

namespace {

const char* ModeName(etude::models::ExecutionMode mode) {
  return mode == etude::models::ExecutionMode::kJit ? "jit" : "eager";
}

int DiffAgainstGolden(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "lint_models: cannot read golden report %s\n",
                 path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto golden = etude::ParseJson(buffer.str());
  if (!golden.ok()) {
    std::fprintf(stderr, "lint_models: golden report %s is not JSON:\n%s\n",
                 path.c_str(), golden.status().ToString().c_str());
    return 1;
  }
  const std::vector<std::string> diffs =
      etude::models::DiffPlanReports(*golden,
                                     etude::models::PlanReportJson());
  if (diffs.empty()) {
    std::printf("lint_models: plan report matches %s\n", path.c_str());
    return 0;
  }
  std::fprintf(stderr,
               "lint_models: plan report drifted from %s (%zu paths).\n"
               "Regenerate with: lint_models --golden %s --update-golden\n",
               path.c_str(), diffs.size(), path.c_str());
  for (const std::string& diff : diffs) {
    std::fprintf(stderr, "  %s\n", diff.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool verbose = false;
  bool report = false;
  bool strict = false;
  bool update_golden = false;
  std::string json_path;
  std::string golden_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (std::strcmp(argv[i], "--report") == 0) {
      report = true;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--update-golden") == 0) {
      update_golden = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--golden") == 0 && i + 1 < argc) {
      golden_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--verbose] [--report] [--strict] "
                   "[--json PATH] [--golden PATH] [--update-golden]\n",
                   argv[0]);
      return 2;
    }
  }
  if (update_golden && golden_path.empty()) {
    std::fprintf(stderr, "lint_models: --update-golden requires --golden\n");
    return 2;
  }

  // The lint is independent of concrete sizes, but exercise several
  // catalog scales anyway: they cover the d = ceil(C^(1/4)) heuristic and
  // the construction-time validation around it.
  const std::vector<int64_t> catalog_sizes = {100, 10'000, 1'000'000};

  int failures = 0;
  int checked = 0;
  for (const etude::models::ModelKind kind :
       etude::models::AllModelKinds()) {
    for (const int64_t catalog : catalog_sizes) {
      etude::models::ModelConfig config;
      config.catalog_size = catalog;
      config.materialize_embeddings = false;  // cost-only: no [C, d] alloc
      // CreateModel already runs the shape lint and the plan-error passes
      // for both modes at construction; a failure surfaces here as an
      // InvalidArgument status.
      auto model = etude::models::CreateModel(kind, config);
      if (!model.ok()) {
        ++failures;
        std::fprintf(stderr, "FAIL %s (C=%lld):\n%s\n",
                     std::string(etude::models::ModelKindToString(kind))
                         .c_str(),
                     static_cast<long long>(catalog),
                     model.status().ToString().c_str());
        continue;
      }
      for (const etude::models::ExecutionMode mode :
           {etude::models::ExecutionMode::kEager,
            etude::models::ExecutionMode::kJit}) {
        ++checked;
        const etude::Status status = (*model)->CheckShapes(mode);
        if (!status.ok()) {
          ++failures;
          std::fprintf(stderr, "FAIL %s %s (C=%lld):\n%s\n",
                       std::string((*model)->name()).c_str(), ModeName(mode),
                       static_cast<long long>(catalog),
                       status.ToString().c_str());
        } else if (verbose) {
          std::printf("ok   %-10s %-5s C=%lld\n",
                      std::string((*model)->name()).c_str(), ModeName(mode),
                      static_cast<long long>(catalog));
        }
      }
      // Surface silent JIT fallbacks as first-class diagnostics.
      if (catalog == catalog_sizes.front() && !(*model)->jit_compatible()) {
        std::printf("note %s: jit fallback to eager: %s\n",
                    std::string((*model)->name()).c_str(),
                    (*model)->jit_incompatibility_reason().c_str());
      }
      // --strict: a kWarning (duplicated dispatch) surviving in the JIT
      // plan means the execution planner missed a hoist. The diagnostics
      // are symbolic, so checking one catalog size covers all of them.
      if (strict && catalog == catalog_sizes.front()) {
        const etude::tensor::PlanGraph jit_plan =
            (*model)->BuildPlan(etude::models::ExecutionMode::kJit);
        for (const etude::tensor::PlanDiagnostic& diag :
             etude::tensor::AnalyzePlan(jit_plan)) {
          if (diag.severity !=
              etude::tensor::PlanDiagnostic::Severity::kWarning) {
            continue;
          }
          ++failures;
          std::fprintf(stderr, "FAIL %s jit (--strict): %s\n",
                       std::string((*model)->name()).c_str(),
                       diag.ToString().c_str());
        }
      }
    }
  }

  if (failures > 0) {
    std::fprintf(stderr, "lint_models: %d of %d checks failed\n", failures,
                 checked);
    return 1;
  }
  std::printf("lint_models: %d op-graph plan checks passed\n", checked);

  if (report) {
    std::printf("\n%s", etude::models::PlanReportText().c_str());
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "lint_models: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    out << etude::models::PlanReportJson().Dump() << "\n";
    std::printf("lint_models: wrote plan report to %s\n", json_path.c_str());
  }
  if (update_golden) {
    std::ofstream out(golden_path);
    if (!out) {
      std::fprintf(stderr, "lint_models: cannot write %s\n",
                   golden_path.c_str());
      return 1;
    }
    out << etude::models::PlanReportJson().Dump() << "\n";
    std::printf("lint_models: updated golden plan report %s\n",
                golden_path.c_str());
    return 0;
  }
  if (!golden_path.empty()) {
    return DiffAgainstGolden(golden_path);
  }
  return 0;
}

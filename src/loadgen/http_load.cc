#include "loadgen/http_load.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "bench/reporter.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_annotations.h"
#include "net/http_client.h"

namespace etude::loadgen {

namespace {

using Clock = std::chrono::steady_clock;

std::string SessionBody(const std::vector<int64_t>& items) {
  std::string body = "{\"session\":[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) body += ',';
    body += std::to_string(items[i]);
  }
  body += "]}";
  return body;
}

/// State shared by the worker connections.
struct SharedState {
  // Pacer: the Poisson arrival schedule, drawn on demand. Workers take
  // the next arrival under this mutex; contention is one exponential
  // draw per request.
  Mutex pace_mutex;
  double next_arrival_us ETUDE_GUARDED_BY(pace_mutex) = 0;
  Rng rng ETUDE_GUARDED_BY(pace_mutex){0};
  size_t body_index ETUDE_GUARDED_BY(pace_mutex) = 0;
  int64_t next_sequence ETUDE_GUARDED_BY(pace_mutex) = 0;

  // Results: one record per completed (or failed) request.
  Mutex result_mutex;
  metrics::TimeSeriesRecorder timeline ETUDE_GUARDED_BY(result_mutex);
  metrics::LatencyHistogram server_inference_us
      ETUDE_GUARDED_BY(result_mutex);
  std::vector<SlowRequest> slowest ETUDE_GUARDED_BY(result_mutex);
};

}  // namespace

HttpLoadGenerator::HttpLoadGenerator(const HttpLoadConfig& config)
    : config_(config) {}

Status HttpLoadGenerator::WaitReady(const std::string& host, uint16_t port,
                                    double wait_s) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(wait_s));
  std::string last_error = "never probed";
  do {
    net::HttpClient client(host, port, /*timeout_s=*/1.0);
    const Result<net::HttpClientResponse> response =
        client.Request("GET", "/healthz");
    if (response.ok() && response->status == 200) return Status::OK();
    last_error = response.ok()
                     ? "/healthz answered " + std::to_string(response->status)
                     : response.status().ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  } while (Clock::now() < deadline);
  return Status::Unavailable("server " + host + ":" + std::to_string(port) +
                             " not ready after " + std::to_string(wait_s) +
                             "s: " + last_error);
}

Result<HttpLoadResult> HttpLoadGenerator::Run() {
  if (config_.target_rps <= 0) {
    return Status::InvalidArgument("target_rps must be > 0");
  }
  if (config_.duration_s <= 0) {
    return Status::InvalidArgument("duration_s must be > 0");
  }
  if (config_.concurrency < 1) {
    return Status::InvalidArgument("concurrency must be >= 1");
  }
  if (config_.route.empty() || config_.route.front() != '/') {
    return Status::InvalidArgument("route must start with '/'");
  }

  // Synthetic sessions, pre-serialised so the send path allocates
  // nothing workload-related.
  auto generator = workload::SessionGenerator::Create(
      config_.catalog_size, config_.stats, config_.seed);
  if (!generator.ok()) return generator.status();
  std::vector<std::string> bodies;
  bodies.reserve(256);
  while (bodies.size() < 256) {
    workload::Session session = generator->NextSession();
    if (!session.items.empty()) bodies.push_back(SessionBody(session.items));
  }

  // Fail fast when the target is unreachable, before spawning workers.
  {
    net::HttpClient probe(config_.host, config_.port, config_.timeout_s);
    const Status reachable = probe.Connect();
    if (!reachable.ok()) return reachable;
  }

  SharedState shared;
  {
    MutexLock lock(shared.pace_mutex);
    shared.rng.Seed(config_.seed * 0x9E3779B97F4A7C15ULL + 1);
    // First arrival is one exponential gap in, not at t=0, so every
    // arrival including the first is Poisson.
    shared.next_arrival_us = -std::log(shared.rng.NextDoublePositive()) *
                             1e6 / config_.target_rps;
  }

  const double duration_us = config_.duration_s * 1e6;
  const double mean_gap_us = 1e6 / config_.target_rps;
  const size_t slowest_keep = static_cast<size_t>(
      std::max(0, config_.slowest_keep));
  const auto start = Clock::now();

  auto worker = [&](int worker_index) {
    net::HttpClient client(config_.host, config_.port, config_.timeout_s);
    // Trace propagation: the client mints the x-trace-id (which the
    // server adopts for its spans and tail exemplars) and names itself
    // as the parent span, so one id follows the request across hops.
    const std::string parent_span =
        "loadgen-w" + std::to_string(worker_index);
    while (true) {
      double arrival_us = 0;
      const std::string* body = nullptr;
      int64_t sequence = 0;
      {
        MutexLock lock(shared.pace_mutex);
        arrival_us = shared.next_arrival_us;
        shared.next_arrival_us +=
            -std::log(shared.rng.NextDoublePositive()) * mean_gap_us;
        body = &bodies[shared.body_index++ % bodies.size()];
        sequence = shared.next_sequence++;
      }
      if (arrival_us >= duration_us) break;
      const auto scheduled =
          start + std::chrono::microseconds(
                      static_cast<int64_t>(arrival_us));
      std::this_thread::sleep_until(scheduled);

      const std::string sent_trace_id = "lt-" +
                                        std::to_string(config_.seed) + "-" +
                                        std::to_string(sequence);
      const Result<net::HttpClientResponse> response =
          client.Request("POST", config_.route, *body,
                         {{"x-trace-id", sent_trace_id},
                          {"x-parent-span", parent_span}});
      // Open-loop latency: from the scheduled arrival, so time spent
      // waiting for a free worker or socket counts against the server.
      const int64_t latency_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - scheduled)
              .count();
      const int64_t tick = static_cast<int64_t>(arrival_us / 1e6);
      const bool ok = response.ok() && response->status == 200;
      int64_t inference_us = -1;
      // The server echoes the trace id it adopted; keep the one we sent
      // when the request never got an answer.
      std::string trace_id = sent_trace_id;
      if (response.ok()) {
        const std::string header = response->Header("x-inference-us");
        if (!header.empty()) inference_us = std::atoll(header.c_str());
        const std::string echoed = response->Header("x-trace-id");
        if (!echoed.empty()) trace_id = echoed;
      }

      MutexLock lock(shared.result_mutex);
      shared.timeline.RecordRequest(tick);
      shared.timeline.RecordResponse(tick, latency_us, ok);
      if (inference_us >= 0) {
        shared.server_inference_us.Record(inference_us);
      }
      if (slowest_keep > 0) {
        if (shared.slowest.size() < slowest_keep) {
          shared.slowest.push_back(
              SlowRequest{latency_us, tick, std::move(trace_id)});
        } else {
          auto slot = std::min_element(
              shared.slowest.begin(), shared.slowest.end(),
              [](const SlowRequest& a, const SlowRequest& b) {
                return a.latency_us < b.latency_us;
              });
          if (slot->latency_us < latency_us) {
            *slot = SlowRequest{latency_us, tick, std::move(trace_id)};
          }
        }
      }
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(config_.concurrency));
  for (int i = 0; i < config_.concurrency; ++i) {
    workers.emplace_back(worker, i);
  }
  for (std::thread& thread : workers) thread.join();

  HttpLoadResult result;
  {
    MutexLock lock(shared.result_mutex);
    result.timeline = shared.timeline;
    result.server_inference_us = shared.server_inference_us;
    result.slowest = shared.slowest;
  }
  std::sort(result.slowest.begin(), result.slowest.end(),
            [](const SlowRequest& a, const SlowRequest& b) {
              return a.latency_us > b.latency_us;
            });
  result.target_rps = config_.target_rps;
  result.duration_s = config_.duration_s;
  result.total_requests = result.timeline.TotalRequests();
  result.total_ok = result.timeline.TotalOk();
  result.total_errors = result.timeline.TotalErrors();
  result.achieved_rps =
      static_cast<double>(result.total_ok) / config_.duration_s;
  if (config_.collect_critical_paths && !result.slowest.empty()) {
    result.critical_paths = CollectCriticalPaths(result.slowest);
  }
  return result;
}

std::vector<obs::CriticalPathReport> HttpLoadGenerator::CollectCriticalPaths(
    const std::vector<SlowRequest>& slowest) {
  std::vector<obs::CriticalPathReport> reports;
  // One extra request against the server we just loaded: its SLO window
  // still holds the tail exemplars for the run, keyed by the trace ids
  // the workers minted. Everything here is best-effort — a server built
  // with ETUDE_DISABLE_TRACING answers 501 and we return nothing.
  net::HttpClient client(config_.host, config_.port, config_.timeout_s);
  const Result<net::HttpClientResponse> response =
      client.Request("GET", "/slo");
  if (!response.ok() || response->status != 200) return reports;
  const Result<JsonValue> doc = ParseJson(response->body);
  if (!doc.ok()) return reports;
  const JsonValue& exemplars = doc->Get("slowest");
  if (!exemplars.is_array()) return reports;

  for (const SlowRequest& slow : slowest) {
    for (const JsonValue& exemplar : exemplars.items()) {
      if (exemplar.GetStringOr("trace_id", "") != slow.trace_id) continue;
      const int64_t server_total_us = exemplar.GetIntOr("total_us", 0);
      std::vector<obs::PhaseSpan> phases;
      const JsonValue& phase_map = exemplar.Get("phases");
      if (phase_map.is_object()) {
        for (const auto& [name, span] : phase_map.members()) {
          phases.push_back(obs::PhaseSpan{
              name, span.GetIntOr("start_us", 0), span.GetIntOr("dur_us", 0)});
        }
      }
      reports.push_back(obs::AnalyzeCriticalPath(
          slow.trace_id, slow.latency_us, server_total_us,
          std::move(phases)));
      break;
    }
  }
  return reports;
}

JsonValue LoadTimelineJson(const HttpLoadConfig& config,
                           const HttpLoadResult& result) {
  bench::BenchReporter reporter("etude_loadtest", bench::BenchEnv::Capture());
  const bench::Params params = {
      {"route", config.route},
      {"rps", FormatDouble(config.target_rps, 1)},
      {"concurrency", std::to_string(config.concurrency)},
  };
  reporter.AddTimeline("loadtest_latency_us", "us", params,
                       bench::Direction::kLowerIsBetter, result.timeline);
  reporter.AddSummary("loadtest_server_inference_us", "us", params,
                      bench::Direction::kLowerIsBetter,
                      result.server_inference_us.Summarize());
  reporter.AddValue("loadtest_achieved_rps", "req/s", params,
                    bench::Direction::kHigherIsBetter, result.achieved_rps);
  reporter.AddValue("loadtest_errors", "count", params,
                    bench::Direction::kInfo,
                    static_cast<double>(result.total_errors));
  JsonValue doc = reporter.ToJson();
  // Correlation hook into the server's tail exemplars: the slowest
  // client-observed requests with their server-side trace ids.
  JsonValue slowest = JsonValue::MakeArray();
  for (const SlowRequest& request : result.slowest) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("latency_us", JsonValue(request.latency_us));
    entry.Set("tick", JsonValue(request.tick));
    entry.Set("trace_id", JsonValue(request.trace_id));
    slowest.Append(std::move(entry));
  }
  doc.Set("slowest", std::move(slowest));
  // Cross-hop attribution for those requests, when the server's SLO
  // window still held their exemplars.
  JsonValue critical_paths = JsonValue::MakeArray();
  for (const obs::CriticalPathReport& report : result.critical_paths) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("trace_id", JsonValue(report.trace_id));
    entry.Set("client_total_us", JsonValue(report.client_total_us));
    entry.Set("server_total_us", JsonValue(report.server_total_us));
    entry.Set("dominant", JsonValue(report.dominant));
    JsonValue hops = JsonValue::MakeArray();
    for (const obs::CriticalPathHop& hop : report.hops) {
      JsonValue hop_entry = JsonValue::MakeObject();
      hop_entry.Set("name", JsonValue(hop.name));
      hop_entry.Set("start_us", JsonValue(hop.start_us));
      hop_entry.Set("dur_us", JsonValue(hop.dur_us));
      hop_entry.Set("share", JsonValue(hop.share));
      hops.Append(std::move(hop_entry));
    }
    entry.Set("hops", std::move(hops));
    critical_paths.Append(std::move(entry));
  }
  doc.Set("critical_paths", std::move(critical_paths));
  return doc;
}

}  // namespace etude::loadgen

#ifndef ETUDE_LOADGEN_LOAD_GENERATOR_H_
#define ETUDE_LOADGEN_LOAD_GENERATOR_H_

#include <cstdint>
#include <deque>
#include <memory>

#include "common/rng.h"
#include "metrics/timeseries.h"
#include "serving/request.h"
#include "sim/simulation.h"
#include "workload/session_generator.h"

namespace etude::loadgen {

/// Configuration of the backpressure-aware load generator (Algorithm 2).
struct LoadGeneratorConfig {
  double target_rps = 1000;   // r: target throughput to ramp up to
  int64_t duration_s = 600;   // d: total experiment duration
  // Ticks over which the ramp reaches target_rps; 0 means the ramp spans
  // the whole duration (the paper's setup). Setting ramp_s < duration_s
  // holds the target rate for the remainder — used by the cost planner to
  // get a clean steady-state window out of shorter runs.
  int64_t ramp_s = 0;
  // Simulated network between the load-generator machine and the serving
  // machine's ClusterIP service (one way).
  double network_one_way_us = 200;
  double network_jitter_us = 50;  // mean of the exponential jitter
  uint64_t seed = 17;
  // Disables Algorithm 2's backpressure rule (open-loop generation).
  // Only used by the ablation study — the paper's generator always
  // tracks pending requests.
  bool disable_backpressure = false;
};

/// Aggregated outcome of one load-generation run, with the steady-state
/// view used for the paper's pass/fail decisions (p90 <= 50 ms at the
/// target throughput).
struct LoadResult {
  metrics::TimeSeriesRecorder timeline;
  double target_rps = 0;

  // Computed over the final quarter of the run, where the ramp has
  // (nearly) reached the target.
  double steady_p50_ms = 0;
  double steady_p90_ms = 0;
  double steady_p99_ms = 0;
  double steady_achieved_rps = 0;
  double steady_error_rate = 0;

  // Whole-run aggregates.
  int64_t total_requests = 0;
  int64_t total_ok = 0;
  int64_t total_errors = 0;

  /// The paper's deployment-feasibility criterion: the steady-state
  /// throughput reaches `required_rps` (within 2%) with a p90 latency of
  /// at most `p90_limit_ms` and a negligible error rate.
  bool MeetsSlo(double required_rps, double p90_limit_ms) const;
};

/// The backpressure-aware load generator of Algorithm 2, executing against
/// a simulated inference service in virtual time.
///
/// The generator operates in one-second ticks. In tick t it targets
/// r_c = TIMEPROP_RAMPUP(r, d) requests, spread evenly across the tick.
/// Whenever the number of in-flight requests reaches r_c it pauses in
/// 1 ms steps (the backpressure rule), skipping to the next tick when the
/// current tick's time budget is exhausted. Requests replay synthetic
/// sessions and respect session order: the next click of a session is only
/// sent after the response to the previous one arrived.
class LoadGenerator {
 public:
  /// `sim`, `service` and `sessions` must outlive the generator.
  LoadGenerator(sim::Simulation* sim, serving::InferenceService* service,
                workload::SessionGenerator* sessions,
                const LoadGeneratorConfig& config);

  /// Schedules the first tick; the caller then runs the simulation.
  void Start();

  /// True once all ticks have elapsed and all in-flight responses arrived.
  bool finished() const { return finished_ && in_flight_ == 0; }

  /// Builds the result summary; call after the simulation has drained.
  LoadResult BuildResult() const;

  int64_t in_flight() const { return in_flight_; }

 private:
  struct SessionCursor {
    workload::Session session;
    size_t next_click = 0;
  };

  /// Requests-per-second target for tick `t`: proportional ramp to
  /// target_rps over duration_s (TIMEPROP_RAMPUP).
  int64_t RampTarget(int64_t tick) const;

  void BeginTick(int64_t tick);
  void SendLoop(int64_t tick, int64_t sent, int64_t quota);
  void SendOneRequest(int64_t tick);
  void OnResponse(int64_t tick, int64_t sent_at_us,
                  std::shared_ptr<SessionCursor> cursor,
                  const serving::InferenceResponse& response);
  double NetworkDelayUs();

  sim::Simulation* sim_;
  serving::InferenceService* service_;
  workload::SessionGenerator* sessions_;
  LoadGeneratorConfig config_;
  Rng rng_;

  metrics::TimeSeriesRecorder timeline_;
  int64_t start_us_ = 0;  // virtual time at Start()
  std::deque<std::shared_ptr<SessionCursor>> ready_sessions_;
  int64_t in_flight_ = 0;  // p: pending-request counter of Algorithm 2
  int64_t next_request_id_ = 0;
  bool finished_ = false;
};

}  // namespace etude::loadgen

#endif  // ETUDE_LOADGEN_LOAD_GENERATOR_H_

#include "loadgen/load_generator.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"

namespace etude::loadgen {

namespace {
constexpr int64_t kTickUs = 1000000;       // one-second ticks
constexpr int64_t kBackpressureWaitUs = 1000;  // Algorithm 2, line 12
}  // namespace

bool LoadResult::MeetsSlo(double required_rps, double p90_limit_ms) const {
  return steady_achieved_rps >= 0.98 * required_rps &&
         steady_p90_ms <= p90_limit_ms && steady_error_rate <= 0.01;
}

LoadGenerator::LoadGenerator(sim::Simulation* sim,
                             serving::InferenceService* service,
                             workload::SessionGenerator* sessions,
                             const LoadGeneratorConfig& config)
    : sim_(sim),
      service_(service),
      sessions_(sessions),
      config_(config),
      rng_(config.seed) {
  ETUDE_CHECK(sim_ != nullptr && service_ != nullptr && sessions_ != nullptr)
      << "simulation, service and session source required";
  ETUDE_CHECK(config_.target_rps > 0) << "target_rps must be > 0";
  ETUDE_CHECK(config_.duration_s > 0) << "duration_s must be > 0";
}

void LoadGenerator::Start() {
  start_us_ = sim_->now_us();  // ticks are relative to generator start
  BeginTick(0);
}

int64_t LoadGenerator::RampTarget(int64_t tick) const {
  // TIMEPROP_RAMPUP: the per-tick request budget grows proportionally to
  // the share of the ramp window that has elapsed.
  const int64_t ramp_s =
      config_.ramp_s > 0 ? config_.ramp_s : config_.duration_s;
  const double fraction =
      static_cast<double>(tick + 1) / static_cast<double>(ramp_s);
  const double rate = config_.target_rps * std::min(fraction, 1.0);
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(rate)));
}

void LoadGenerator::BeginTick(int64_t tick) {
  if (tick >= config_.duration_s) {
    finished_ = true;  // deadline d reached (Algorithm 2, line 4)
    return;
  }
  SendLoop(tick, 0, RampTarget(tick));
}

void LoadGenerator::SendLoop(int64_t tick, int64_t sent, int64_t quota) {
  const int64_t tick_end_us = start_us_ + (tick + 1) * kTickUs;
  if (sim_->now_us() >= tick_end_us || sent >= quota) {
    sim_->ScheduleAt(tick_end_us, [this, tick] { BeginTick(tick + 1); });
    return;
  }
  // Backpressure handling (Algorithm 2, lines 8-12): while the number of
  // pending requests reaches the current per-tick rate, wait in 1 ms
  // steps; give up on the remainder of this tick when its time is spent.
  if (!config_.disable_backpressure && in_flight_ >= quota) {
    if (sim_->now_us() + kBackpressureWaitUs < tick_end_us) {
      sim_->Schedule(kBackpressureWaitUs, [this, tick, sent, quota] {
        SendLoop(tick, sent, quota);
      });
    } else {
      sim_->ScheduleAt(tick_end_us, [this, tick] { BeginTick(tick + 1); });
    }
    return;
  }
  SendOneRequest(tick);
  // Evenly spread the remaining quota over the remaining tick time
  // (Algorithm 2, line 16).
  const int64_t remaining_us = std::max<int64_t>(tick_end_us - sim_->now_us(),
                                                 0);
  const int64_t remaining_quota = std::max<int64_t>(quota - sent - 1, 1);
  const int64_t gap_us = remaining_us / remaining_quota;
  sim_->Schedule(gap_us, [this, tick, sent, quota] {
    SendLoop(tick, sent + 1, quota);
  });
}

double LoadGenerator::NetworkDelayUs() {
  return config_.network_one_way_us +
         (config_.network_jitter_us > 0
              ? rng_.NextExponential(1.0 / config_.network_jitter_us)
              : 0.0);
}

void LoadGenerator::SendOneRequest(int64_t tick) {
  // Session-order constraint: take a session with no in-flight request
  // (the implementation "only sends the next interaction for a session if
  // a response for the previous interaction was received").
  std::shared_ptr<SessionCursor> cursor;
  if (!ready_sessions_.empty()) {
    cursor = ready_sessions_.front();
    ready_sessions_.pop_front();
  } else {
    cursor = std::make_shared<SessionCursor>();
    cursor->session = sessions_->NextSession();
  }

  serving::InferenceRequest request;
  request.request_id = next_request_id_++;
  // Trace propagation (the simulated x-trace-id header): the server's
  // spans adopt this id, so loadgen and pod views of one request share it.
  request.trace_id = "sim-" + std::to_string(request.request_id);
  request.session_id = cursor->session.session_id;
  const size_t prefix_end = cursor->next_click + 1;
  request.session_items.assign(cursor->session.items.begin(),
                               cursor->session.items.begin() +
                                   static_cast<int64_t>(prefix_end));
  cursor->next_click = prefix_end;

  ++in_flight_;
  timeline_.RecordRequest(tick);
  const int64_t sent_at_us = sim_->now_us();

  // Request travels to the server, is handled, and the response travels
  // back — all in virtual time.
  sim_->Schedule(
      static_cast<int64_t>(NetworkDelayUs()),
      [this, request, tick, sent_at_us, cursor] {
        service_->HandleRequest(
            request, [this, tick, sent_at_us, cursor](
                         const serving::InferenceResponse& response) {
              sim_->Schedule(static_cast<int64_t>(NetworkDelayUs()),
                             [this, tick, sent_at_us, cursor, response] {
                               OnResponse(tick, sent_at_us, cursor, response);
                             });
            });
      });
}

void LoadGenerator::OnResponse(int64_t tick, int64_t sent_at_us,
                               std::shared_ptr<SessionCursor> cursor,
                               const serving::InferenceResponse& response) {
  --in_flight_;
  const int64_t latency_us = sim_->now_us() - sent_at_us;
  timeline_.RecordResponse(tick, latency_us, response.ok);
  if (obs::Tracer::enabled()) {
    // Virtual-time request span, as seen from the load generator (network
    // + queueing + service). Lanes spread concurrent sessions over a few
    // trace rows; the trace id matches the sim server's spans.
    obs::TraceEvent event;
    event.name = response.ok ? "request" : "request[error]";
    event.category = "loadgen";
    event.ts_us = sent_at_us;
    event.dur_us = latency_us;
    event.pid = obs::kVirtualClockPid;
    event.tid = 1000 + (cursor->session.session_id % 32);
    event.trace_id = "sim-" + std::to_string(response.request_id);
    obs::Tracer::Get().Record(std::move(event));
  }
  // Release the session for its next click (sessions whose previous click
  // errored are abandoned, as a real visitor's page would be broken).
  if (response.ok &&
      cursor->next_click < cursor->session.items.size()) {
    ready_sessions_.push_back(std::move(cursor));
  }
}

LoadResult LoadGenerator::BuildResult() const {
  LoadResult result;
  result.timeline = timeline_;
  result.target_rps = config_.target_rps;
  result.total_requests = timeline_.TotalRequests();
  result.total_ok = timeline_.TotalOk();
  result.total_errors = timeline_.TotalErrors();

  // Steady-state view: the final quarter of the ticks.
  const auto& ticks = timeline_.ticks();
  const size_t window_start =
      ticks.size() < 4 ? 0 : ticks.size() - ticks.size() / 4;
  metrics::LatencyHistogram window;
  int64_t ok = 0, errors = 0;
  size_t covered = 0;
  for (size_t i = window_start; i < ticks.size(); ++i) {
    window.Merge(ticks[i].latencies);
    ok += ticks[i].responses_ok;
    errors += ticks[i].responses_error;
    ++covered;
  }
  if (covered > 0) {
    result.steady_p50_ms = static_cast<double>(window.p50()) / 1000.0;
    result.steady_p90_ms = static_cast<double>(window.p90()) / 1000.0;
    result.steady_p99_ms = static_cast<double>(window.p99()) / 1000.0;
    result.steady_achieved_rps =
        static_cast<double>(ok) / static_cast<double>(covered);
    const int64_t answered = ok + errors;
    result.steady_error_rate =
        answered > 0 ? static_cast<double>(errors) /
                           static_cast<double>(answered)
                     : 0.0;
  }
  return result;
}

}  // namespace etude::loadgen

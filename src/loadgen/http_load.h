#ifndef ETUDE_LOADGEN_HTTP_LOAD_H_
#define ETUDE_LOADGEN_HTTP_LOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "metrics/histogram.h"
#include "metrics/timeseries.h"
#include "obs/critical_path.h"
#include "workload/session_generator.h"

namespace etude::loadgen {

/// Configuration of the real-server load harness: an open-loop client
/// driving a live `etude serve` instance over sockets (in contrast to
/// `LoadGenerator`, which drives the DES simulator in virtual time).
struct HttpLoadConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  // Prediction route, e.g. "/predictions/gru4rec".
  std::string route;
  // Poisson arrival process: exponential inter-arrival times at this mean
  // rate. Open loop — arrivals are scheduled independently of responses,
  // so server slowdown shows up as client-side latency, not reduced load.
  double target_rps = 100;
  double duration_s = 10;
  // Worker connections. Each worker owns one keep-alive connection; an
  // arrival is dispatched by the first idle worker. When all workers are
  // busy, the arrival waits (its wait is *included* in its recorded
  // latency — the open-loop convention, which is what makes queueing
  // visible).
  int concurrency = 4;
  // Synthetic sessions replayed as request bodies (Algorithm 1).
  int64_t catalog_size = 10000;
  workload::WorkloadStats stats;
  uint64_t seed = 17;
  double timeout_s = 5.0;
  // Client-observed slowest requests retained (with their server
  // x-trace-id, so the server's /debug/tail-traces can be correlated).
  int slowest_keep = 8;
  // After the run, fetch the server's /slo tail exemplars and build a
  // cross-hop critical-path breakdown for each retained slow request
  // whose trace id the server still remembers. Best-effort: skipped
  // silently when the server was built without tracing (501) or the
  // exemplars have rotated out.
  bool collect_critical_paths = true;
};

/// One of the slowest client-observed requests of the run.
struct SlowRequest {
  int64_t latency_us = 0;
  int64_t tick = 0;
  std::string trace_id;  // server-reported x-trace-id
};

/// Outcome of one load-harness run.
struct HttpLoadResult {
  // Per-second client-side wall latency/throughput/error timeline,
  // latency measured from the *scheduled arrival* to response completion.
  metrics::TimeSeriesRecorder timeline;
  // Server-reported inference time (x-inference-us header): subtracting
  // this from the client latency attributes the remainder to network,
  // HTTP framing and queueing.
  metrics::LatencyHistogram server_inference_us;
  std::vector<SlowRequest> slowest;  // descending by latency
  // Cross-hop attribution for the slowest requests: the client-observed
  // latency joined with the server's phase spans for the same trace id
  // (empty when collection is disabled or no exemplar matched).
  std::vector<obs::CriticalPathReport> critical_paths;

  double target_rps = 0;
  double duration_s = 0;
  int64_t total_requests = 0;
  int64_t total_ok = 0;
  int64_t total_errors = 0;
  double achieved_rps = 0;
};

/// The run rendered as a schema-versioned BENCH JSON document (through
/// bench::BenchReporter): a "loadtest_latency_us" series carrying both the
/// whole-run summary and the per-second "timeline" array, plus
/// server-inference and throughput series. See docs/benchmarking.md.
JsonValue LoadTimelineJson(const HttpLoadConfig& config,
                           const HttpLoadResult& result);

/// The open-loop socket load generator.
class HttpLoadGenerator {
 public:
  explicit HttpLoadGenerator(const HttpLoadConfig& config);

  /// Blocks for ~duration_s driving the target server, then returns the
  /// aggregated result. Fails if the server is unreachable at start or the
  /// configuration is invalid.
  Result<HttpLoadResult> Run();

  /// Polls GET /healthz until it answers 200 or `wait_s` elapses.
  static Status WaitReady(const std::string& host, uint16_t port,
                          double wait_s);

 private:
  /// Fetches the server's /slo tail exemplars and joins them with the
  /// slowest client-observed requests by trace id. Best-effort: returns
  /// empty on 501 (tracing disabled), parse failure or no match.
  std::vector<obs::CriticalPathReport> CollectCriticalPaths(
      const std::vector<SlowRequest>& slowest);

  HttpLoadConfig config_;
};

}  // namespace etude::loadgen

#endif  // ETUDE_LOADGEN_HTTP_LOAD_H_

#ifndef ETUDE_METRICS_REPORT_H_
#define ETUDE_METRICS_REPORT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace etude::metrics {

/// A simple column-aligned text/CSV table, used by the benchmark harness to
/// print the paper's tables and figure series.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row);

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }
  const std::vector<std::string>& header() const { return header_; }

  /// Renders a column-aligned ASCII table.
  std::string ToText() const;

  /// Renders RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  std::string ToCsv() const;

  /// Writes CSV to a file.
  etude::Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace etude::metrics

#endif  // ETUDE_METRICS_REPORT_H_

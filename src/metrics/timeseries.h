#ifndef ETUDE_METRICS_TIMESERIES_H_
#define ETUDE_METRICS_TIMESERIES_H_

#include <cstdint>
#include <vector>

#include "metrics/histogram.h"

namespace etude::metrics {

/// Per-second experiment statistics, as plotted in the paper's Figures 2
/// and 4: for every one-second tick we track the offered request rate, the
/// completed responses, errors, and the latency distribution within that
/// second.
struct TickStats {
  int64_t tick = 0;               // seconds since experiment start
  int64_t requests_sent = 0;      // requests issued during this tick
  int64_t responses_ok = 0;       // successful responses received
  int64_t responses_error = 0;    // HTTP errors / timeouts
  LatencyHistogram latencies;     // end-to-end latencies observed this tick

  // Per-pod telemetry (DES pods sample these on every arrival/departure;
  // a client-side load generator leaves them at zero, keeping the
  // serialized schema identical across both producers).
  int64_t queue_depth_peak = 0;     // max waiting-queue depth sampled
  int64_t queue_depth_sum = 0;      // sum of sampled depths ...
  int64_t queue_depth_samples = 0;  // ... over this many samples
  int64_t in_flight = 0;            // last sampled in-flight (admitted) count
  int64_t busy_us = 0;              // executor-busy microseconds in the tick
  double utilization = 0;           // busy_us / (worker_slots * 1e6), set by
                                    // FinalizeUtilization

  double QueueDepthMean() const {
    return queue_depth_samples > 0
               ? static_cast<double>(queue_depth_sum) /
                     static_cast<double>(queue_depth_samples)
               : 0.0;
  }
};

/// Collects per-tick statistics over the course of one benchmark run.
/// Ticks may be recorded out of order (responses for tick t can arrive
/// while the load generator is already in tick t+1).
class TimeSeriesRecorder {
 public:
  TimeSeriesRecorder() = default;

  void RecordRequest(int64_t tick);
  void RecordResponse(int64_t tick, int64_t latency_us, bool ok);

  /// Telemetry sampling (per-pod DES instrumentation). Depth/in-flight
  /// are point samples; busy time is additive and may be split across
  /// ticks by the caller.
  void RecordQueueDepth(int64_t tick, int64_t depth);
  void RecordInFlight(int64_t tick, int64_t value);
  void AddBusyUs(int64_t tick, int64_t us);

  /// Converts accumulated busy_us into per-tick utilization of
  /// `worker_slots` executors (clamped to [0, 1]).
  void FinalizeUtilization(int worker_slots);

  const std::vector<TickStats>& ticks() const { return ticks_; }
  int64_t num_ticks() const { return static_cast<int64_t>(ticks_.size()); }

  /// Aggregate latency histogram across all ticks (successful responses).
  LatencyHistogram AggregateLatencies() const;

  int64_t TotalRequests() const;
  int64_t TotalOk() const;
  int64_t TotalErrors() const;

  /// Achieved throughput (successful responses / covered seconds).
  double AchievedThroughput() const;

 private:
  TickStats& TickAt(int64_t tick);

  std::vector<TickStats> ticks_;
};

}  // namespace etude::metrics

#endif  // ETUDE_METRICS_TIMESERIES_H_

#ifndef ETUDE_METRICS_TIMESERIES_H_
#define ETUDE_METRICS_TIMESERIES_H_

#include <cstdint>
#include <vector>

#include "metrics/histogram.h"

namespace etude::metrics {

/// Per-second experiment statistics, as plotted in the paper's Figures 2
/// and 4: for every one-second tick we track the offered request rate, the
/// completed responses, errors, and the latency distribution within that
/// second.
struct TickStats {
  int64_t tick = 0;               // seconds since experiment start
  int64_t requests_sent = 0;      // requests issued during this tick
  int64_t responses_ok = 0;       // successful responses received
  int64_t responses_error = 0;    // HTTP errors / timeouts
  LatencyHistogram latencies;     // end-to-end latencies observed this tick
};

/// Collects per-tick statistics over the course of one benchmark run.
/// Ticks may be recorded out of order (responses for tick t can arrive
/// while the load generator is already in tick t+1).
class TimeSeriesRecorder {
 public:
  TimeSeriesRecorder() = default;

  void RecordRequest(int64_t tick);
  void RecordResponse(int64_t tick, int64_t latency_us, bool ok);

  const std::vector<TickStats>& ticks() const { return ticks_; }
  int64_t num_ticks() const { return static_cast<int64_t>(ticks_.size()); }

  /// Aggregate latency histogram across all ticks (successful responses).
  LatencyHistogram AggregateLatencies() const;

  int64_t TotalRequests() const;
  int64_t TotalOk() const;
  int64_t TotalErrors() const;

  /// Achieved throughput (successful responses / covered seconds).
  double AchievedThroughput() const;

 private:
  TickStats& TickAt(int64_t tick);

  std::vector<TickStats> ticks_;
};

}  // namespace etude::metrics

#endif  // ETUDE_METRICS_TIMESERIES_H_

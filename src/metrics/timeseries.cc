#include "metrics/timeseries.h"

#include "common/logging.h"

namespace etude::metrics {

TickStats& TimeSeriesRecorder::TickAt(int64_t tick) {
  ETUDE_CHECK(tick >= 0) << "negative tick";
  while (static_cast<int64_t>(ticks_.size()) <= tick) {
    TickStats stats;
    stats.tick = static_cast<int64_t>(ticks_.size());
    ticks_.push_back(std::move(stats));
  }
  return ticks_[static_cast<size_t>(tick)];
}

void TimeSeriesRecorder::RecordRequest(int64_t tick) {
  TickAt(tick).requests_sent += 1;
}

void TimeSeriesRecorder::RecordResponse(int64_t tick, int64_t latency_us,
                                        bool ok) {
  TickStats& stats = TickAt(tick);
  if (ok) {
    stats.responses_ok += 1;
    stats.latencies.Record(latency_us);
  } else {
    stats.responses_error += 1;
  }
}

void TimeSeriesRecorder::RecordQueueDepth(int64_t tick, int64_t depth) {
  TickStats& stats = TickAt(tick);
  stats.queue_depth_sum += depth;
  stats.queue_depth_samples += 1;
  if (depth > stats.queue_depth_peak) stats.queue_depth_peak = depth;
}

void TimeSeriesRecorder::RecordInFlight(int64_t tick, int64_t value) {
  TickAt(tick).in_flight = value;
}

void TimeSeriesRecorder::AddBusyUs(int64_t tick, int64_t us) {
  TickAt(tick).busy_us += us;
}

void TimeSeriesRecorder::FinalizeUtilization(int worker_slots) {
  const double capacity_us = static_cast<double>(worker_slots) * 1e6;
  for (TickStats& stats : ticks_) {
    if (capacity_us <= 0) {
      stats.utilization = 0;
      continue;
    }
    const double utilization =
        static_cast<double>(stats.busy_us) / capacity_us;
    stats.utilization =
        utilization < 0 ? 0 : (utilization > 1 ? 1 : utilization);
  }
}

LatencyHistogram TimeSeriesRecorder::AggregateLatencies() const {
  LatencyHistogram aggregate;
  for (const TickStats& stats : ticks_) {
    aggregate.Merge(stats.latencies);
  }
  return aggregate;
}

int64_t TimeSeriesRecorder::TotalRequests() const {
  int64_t total = 0;
  for (const TickStats& stats : ticks_) total += stats.requests_sent;
  return total;
}

int64_t TimeSeriesRecorder::TotalOk() const {
  int64_t total = 0;
  for (const TickStats& stats : ticks_) total += stats.responses_ok;
  return total;
}

int64_t TimeSeriesRecorder::TotalErrors() const {
  int64_t total = 0;
  for (const TickStats& stats : ticks_) total += stats.responses_error;
  return total;
}

double TimeSeriesRecorder::AchievedThroughput() const {
  if (ticks_.empty()) return 0.0;
  return static_cast<double>(TotalOk()) /
         static_cast<double>(ticks_.size());
}

}  // namespace etude::metrics

#ifndef ETUDE_METRICS_HISTOGRAM_H_
#define ETUDE_METRICS_HISTOGRAM_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace etude::metrics {

/// An HDR-style latency histogram over microsecond values.
///
/// Values are bucketed with bounded relative error (~1/64 per bucket) using
/// a logarithmic bucket layout: 64 linear sub-buckets per power-of-two
/// magnitude. Recording is O(1); percentile queries are O(#buckets). The
/// load generator records millions of response latencies per experiment,
/// which rules out storing raw samples.
class LatencyHistogram {
 public:
  /// One consistent snapshot of the distribution's headline statistics.
  /// Every exporter (bench JSON, /metrics JSON, Prometheus) renders from
  /// this struct so the numbers cannot drift between surfaces. Quantiles
  /// are bucket upper bounds and over-estimate by at most ~1.6% (1/64
  /// relative bucket width).
  struct Summary {
    int64_t count = 0;
    int64_t sum = 0;  // us
    int64_t min = 0;
    double mean = 0.0;
    int64_t p50 = 0;
    int64_t p90 = 0;
    int64_t p99 = 0;
    int64_t max = 0;
  };

  LatencyHistogram();

  /// All headline statistics in one struct (see Summary).
  Summary Summarize() const;

  /// Records one latency observation (in microseconds, >= 0).
  void Record(int64_t value_us);

  /// Records `count` identical observations.
  void RecordMany(int64_t value_us, int64_t count);

  /// Merges another histogram into this one.
  void Merge(const LatencyHistogram& other);

  /// Value at quantile q in [0,1]; returns 0 for an empty histogram.
  /// The returned value is the upper bound of the containing bucket, so it
  /// over-estimates by at most ~1.6%.
  int64_t ValueAtQuantile(double q) const;

  int64_t p50() const { return ValueAtQuantile(0.50); }
  int64_t p90() const { return ValueAtQuantile(0.90); }
  int64_t p99() const { return ValueAtQuantile(0.99); }

  int64_t count() const { return total_count_; }
  /// Sum of all recorded values (us), for Prometheus `_sum` exposition.
  int64_t sum() const { return sum_; }
  int64_t min() const { return total_count_ == 0 ? 0 : min_; }
  int64_t max() const { return total_count_ == 0 ? 0 : max_; }
  double mean() const {
    return total_count_ == 0
               ? 0.0
               : static_cast<double>(sum_) / static_cast<double>(total_count_);
  }

  /// Discards all recorded values.
  void Reset();

  /// Iterates the non-empty buckets in ascending value order, invoking
  /// fn(upper_bound_us, cumulative_count) with the count of observations
  /// <= upper_bound_us — the cumulative form Prometheus histogram
  /// `_bucket{le="..."}` series require. No-op on an empty histogram.
  void ForEachBucket(
      const std::function<void(int64_t upper_bound_us,
                               int64_t cumulative_count)>& fn) const;

 private:
  static constexpr int kSubBucketBits = 6;  // 64 sub-buckets per magnitude
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kMagnitudes = 40;  // covers up to ~2^40 us

  static int BucketIndex(int64_t value);
  static int64_t BucketUpperBound(int index);

  std::vector<int64_t> buckets_;
  int64_t total_count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace etude::metrics

#endif  // ETUDE_METRICS_HISTOGRAM_H_

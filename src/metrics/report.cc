#include "metrics/report.h"

#include <algorithm>
#include <fstream>

#include "common/logging.h"

namespace etude::metrics {

namespace {
std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}
}  // namespace

void Table::AddRow(std::vector<std::string> row) {
  ETUDE_CHECK(row.size() == header_.size())
      << "row width " << row.size() << " != header width " << header_.size();
  rows_.push_back(std::move(row));
}

std::string Table::ToText() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      line += row[i];
      if (i + 1 < row.size()) {
        line.append(widths[i] - row[i].size() + 2, ' ');
      }
    }
    line += "\n";
    return line;
  };
  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::ToCsv() const {
  std::string out;
  auto render = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += CsvEscape(row[i]);
    }
    out.push_back('\n');
  };
  render(header_);
  for (const auto& row : rows_) render(row);
  return out;
}

etude::Status Table::WriteCsv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return etude::Status::IoError("cannot open " + path + " for writing");
  }
  file << ToCsv();
  if (!file.good()) {
    return etude::Status::IoError("write to " + path + " failed");
  }
  return etude::Status::OK();
}

}  // namespace etude::metrics

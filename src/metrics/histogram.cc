#include "metrics/histogram.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace etude::metrics {

LatencyHistogram::LatencyHistogram()
    : buckets_(static_cast<size_t>(kMagnitudes * kSubBuckets), 0) {}

int LatencyHistogram::BucketIndex(int64_t value) {
  ETUDE_DCHECK(value >= 0) << "negative latency";
  if (value < kSubBuckets) return static_cast<int>(value);
  // Shift the value so that (value >> magnitude) lands in [64, 128): the
  // top bit selects the magnitude, the next kSubBucketBits select the
  // linear sub-bucket.
  const int high_bit =
      63 - std::countl_zero(static_cast<uint64_t>(value));
  const int magnitude = high_bit - kSubBucketBits;
  const int sub =
      static_cast<int>(value >> magnitude) & (kSubBuckets - 1);
  int index = (magnitude + 1) * kSubBuckets + sub;
  return std::min(index, kMagnitudes * kSubBuckets - 1);
}

int64_t LatencyHistogram::BucketUpperBound(int index) {
  if (index < kSubBuckets) return index;
  const int magnitude = index / kSubBuckets - 1;
  const int sub = index % kSubBuckets;
  return ((static_cast<int64_t>(kSubBuckets + sub) + 1)
          << magnitude) - 1;
}

LatencyHistogram::Summary LatencyHistogram::Summarize() const {
  Summary summary;
  summary.count = count();
  summary.sum = sum();
  summary.min = min();
  summary.mean = mean();
  summary.p50 = p50();
  summary.p90 = p90();
  summary.p99 = p99();
  summary.max = max();
  return summary;
}

void LatencyHistogram::Record(int64_t value_us) { RecordMany(value_us, 1); }

void LatencyHistogram::RecordMany(int64_t value_us, int64_t count) {
  if (count <= 0) return;
  value_us = std::max<int64_t>(value_us, 0);
  buckets_[static_cast<size_t>(BucketIndex(value_us))] += count;
  if (total_count_ == 0) {
    min_ = max_ = value_us;
  } else {
    min_ = std::min(min_, value_us);
    max_ = std::max(max_, value_us);
  }
  total_count_ += count;
  sum_ += value_us * count;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.total_count_ == 0) return;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (total_count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  total_count_ += other.total_count_;
  sum_ += other.sum_;
}

int64_t LatencyHistogram::ValueAtQuantile(double q) const {
  if (total_count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const int64_t target = static_cast<int64_t>(
      q * static_cast<double>(total_count_) + 0.5);
  int64_t running = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    running += buckets_[i];
    if (running >= target && buckets_[i] > 0) {
      return std::min(BucketUpperBound(static_cast<int>(i)), max_);
    }
  }
  return max_;
}

void LatencyHistogram::ForEachBucket(
    const std::function<void(int64_t upper_bound_us,
                             int64_t cumulative_count)>& fn) const {
  int64_t running = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    running += buckets_[i];
    fn(BucketUpperBound(static_cast<int>(i)), running);
  }
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

}  // namespace etude::metrics

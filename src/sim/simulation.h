#ifndef ETUDE_SIM_SIMULATION_H_
#define ETUDE_SIM_SIMULATION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace etude::sim {

/// Opaque handle to a scheduled event, used for cancellation (timeouts).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Safe to call repeatedly.
  void Cancel() {
    if (cancelled_) *cancelled_ = true;
  }

  bool valid() const { return cancelled_ != nullptr; }

 private:
  friend class Simulation;
  explicit EventHandle(std::shared_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}

  std::shared_ptr<bool> cancelled_;
};

/// A single-threaded discrete-event simulation kernel.
///
/// Every scale experiment in ETUDE (the load ramps of Figures 2 and 4 and
/// the ~400 runs behind Table I) executes against this kernel in *virtual*
/// time: the load generator, server queues, batch-flush timers, device
/// execution times and timeouts all schedule callbacks here. This makes a
/// ten-minute wall-clock experiment run in milliseconds and renders every
/// run deterministic for a fixed seed.
///
/// Time is in integer microseconds. Events scheduled for the same time fire
/// in FIFO order of scheduling (stable), which keeps runs reproducible.
///
/// The kernel is single-threaded: Schedule/Run/Stop must all happen on the
/// simulation thread. The only thread-safe entry point is PostExternal(),
/// which hands a callback from a foreign thread (e.g. a real HTTP worker
/// feeding a hybrid experiment) to the simulation thread.
class Simulation {
 public:
  using Callback = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time in microseconds since simulation start.
  int64_t now_us() const { return now_us_; }

  /// Schedules `callback` to run `delay_us` microseconds from now.
  /// Negative delays are clamped to zero (fire "now", after the current
  /// event completes).
  EventHandle Schedule(int64_t delay_us, Callback callback);

  /// Schedules `callback` at the absolute virtual time `time_us`
  /// (>= now_us(), otherwise clamped to now).
  EventHandle ScheduleAt(int64_t time_us, Callback callback);

  /// Thread-safe: enqueues `callback` to run on the simulation thread at
  /// the virtual time current when the running Run()/RunUntil() picks it
  /// up (injected callbacks fire before the next regular event). Externally
  /// posted work is drained in FIFO order.
  void PostExternal(Callback callback) ETUDE_EXCLUDES(external_mutex_);

  /// Runs until the event queue is empty or Stop() is called.
  /// Returns the number of events executed.
  int64_t Run();

  /// Runs until virtual time reaches `deadline_us` (events at exactly the
  /// deadline still fire), the queue drains, or Stop() is called.
  int64_t RunUntil(int64_t deadline_us);

  /// Requests termination of the current Run()/RunUntil() after the
  /// currently executing event returns.
  void Stop() { stopped_ = true; }

  bool empty() const { return queue_.empty(); }
  int64_t pending_events() const {
    return static_cast<int64_t>(queue_.size());
  }

 private:
  struct Event {
    int64_t time_us;
    int64_t sequence;
    Callback callback;
    std::shared_ptr<bool> cancelled;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time_us != b.time_us) return a.time_us > b.time_us;
      return a.sequence > b.sequence;
    }
  };

  /// Runs all externally posted callbacks (simulation thread only).
  void DrainExternal() ETUDE_EXCLUDES(external_mutex_);

  int64_t now_us_ = 0;
  int64_t next_sequence_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;

  // Cross-thread injection queue; has_external_ keeps the virtual-time hot
  // loop lock-free when no foreign thread is involved (the common case).
  Mutex external_mutex_;
  std::vector<Callback> external_ ETUDE_GUARDED_BY(external_mutex_);
  std::atomic<bool> has_external_{false};
};

}  // namespace etude::sim

#endif  // ETUDE_SIM_SIMULATION_H_

#ifndef ETUDE_SIM_DEVICE_H_
#define ETUDE_SIM_DEVICE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace etude::sim {

/// The three instance types of the paper's experimental study (GCP e2
/// general-purpose CPU instances, and e2 instances with an attached
/// NVidia Tesla T4 or A100).
enum class DeviceKind { kCpu, kGpuT4, kGpuA100 };

std::string_view DeviceKindToString(DeviceKind kind);

/// Cost descriptor for one inference request of one model, produced by the
/// model layer (`SessionModel::CostModel`). The device turns this into
/// microseconds. All quantities are per single request unless stated.
///
/// The paper's complexity analysis (Sec. II) shows SBR inference is
/// dominated by the O(C·d) maximum-inner-product scan over the catalog;
/// `scan_bytes`/`scan_flops` carry that term, `encode_*` carries the
/// (session-length- and d-dependent) encoder work.
struct InferenceWork {
  double encode_flops = 0;   // session encoder compute
  double encode_bytes = 0;   // session encoder memory traffic
  double scan_flops = 0;     // MIPS compute: ~2*C*d + C*log2(k)
  double scan_bytes = 0;     // MIPS memory traffic: ~C*d*4 bytes
  int op_count = 0;          // framework ops executed (eager dispatch cost)
  bool jit_compiled = true;  // JIT plans skip per-op dispatch overhead

  // Performance-bug mechanisms found in RecBole implementations (Sec. III):
  int host_sync_points = 0;      // NumPy-on-host steps (SR-GNN, GC-SAN):
                                 // each forces a synchronous PCIe round trip
                                 // on GPUs and is never batchable.
  double host_compute_us = 0;    // host-side work per sync point

  // Fraction of this request's device work that canNOT be amortised by
  // request batching (kernel scheduling, per-row output traffic).
  // Healthy models share the catalog read across a batch; RepeatNet's
  // dense-ops bug materialises per-request catalog-sized tensors, which
  // shows up as a large batch_share.
  double batch_share = 0.06;

  // Device-specific efficiency multipliers, calibrated against the paper's
  // published measurements (see models/calibration.h).
  double cpu_efficiency = 1.0;
  double t4_efficiency = 1.0;
  double a100_efficiency = 1.0;
};

/// Static description of an instance type: effective performance parameters
/// plus GCP pricing (1-year commitment, Sec. III-C).
///
/// "Effective" bandwidth/FLOPs are what unoptimised PyTorch fp32 kernels
/// achieve in practice (a fraction of the spec-sheet peak); they are
/// calibrated so that serial inference latencies match Figure 3:
/// CPU > 50 ms at C=1e6, GPU more than an order of magnitude faster at
/// C >= 1e6, GPU on par with CPU at C=1e4.
struct DeviceSpec {
  DeviceKind kind = DeviceKind::kCpu;
  std::string name;
  double compute_gflops = 0;        // effective fp32 compute per executor
  double mem_bandwidth_gbps = 0;    // effective memory bandwidth per executor
  double kernel_launch_us = 0;      // fixed dispatch cost per request/batch
  double eager_op_overhead_us = 0;  // per-op dispatch cost in eager mode
  double pcie_roundtrip_us = 0;     // host sync cost (GPUs only)
  int worker_slots = 1;             // concurrent executors (CPU: vCPUs)
  bool supports_batching = false;   // request batching (GPUs only)
  double memory_gb = 0;             // device memory available to the model
  double monthly_cost_usd = 0;      // GCP, 1-year commitment

  /// GCP e2 instance: 5.5 vCPU Intel Xeon @2.20GHz, 32 GB RAM. $108.09/mo.
  static DeviceSpec Cpu();
  /// Small e2 instance (2 vCPU, 2 GB) used for the Figure 2 infra test.
  static DeviceSpec CpuSmall();
  /// e2 instance with NVidia Tesla T4 (16 GB). $268.09/mo.
  static DeviceSpec GpuT4();
  /// A2 instance with NVidia Tesla A100 (40 GB). $2,008.80/mo.
  static DeviceSpec GpuA100();

  /// Lookup by name: "cpu", "gpu-t4", "gpu-a100".
  static Result<DeviceSpec> FromName(std::string_view name);

  bool is_gpu() const { return kind != DeviceKind::kCpu; }
};

/// Latency (us) of a single request executed alone (no batching), as in the
/// paper's serial micro-benchmark (Fig. 3).
double SerialInferenceUs(const DeviceSpec& device, const InferenceWork& work);

/// Phase decomposition of SerialInferenceUs, in execution order. The
/// observability layer turns these into op-level child spans of simulated
/// inference executions (encode vs. catalog scan attribution); the phases
/// always sum to SerialInferenceUs for the same inputs.
struct InferencePhases {
  double dispatch_us = 0;   // kernel launch + eager per-op dispatch
  double encode_us = 0;     // session-encoder tensor work
  double scan_us = 0;       // catalog MIPS-scan tensor work
  double host_sync_us = 0;  // non-batchable host-sync round trips

  double total_us() const {
    return dispatch_us + encode_us + scan_us + host_sync_us;
  }
};

InferencePhases SerialInferencePhasesUs(const DeviceSpec& device,
                                        const InferenceWork& work);

/// Total execution time (us) of a batch of `batch_size` identical requests
/// on one executor. batch_size == 1 degenerates to SerialInferenceUs minus
/// the non-batchable host-sync work handled separately.
///
/// Cost model: amortisable work is paid once per batch; each additional
/// request adds `batch_share` of the serial device time, plus its full
/// host-sync cost (host syncs serialise the pipeline and never batch).
double BatchInferenceUs(const DeviceSpec& device, const InferenceWork& work,
                        int batch_size);

/// The per-model device efficiency multiplier applicable to `device`.
double DeviceEfficiency(const DeviceSpec& device, const InferenceWork& work);

}  // namespace etude::sim

#endif  // ETUDE_SIM_DEVICE_H_

#include "sim/simulation.h"

#include <algorithm>
#include <utility>

namespace etude::sim {

EventHandle Simulation::Schedule(int64_t delay_us, Callback callback) {
  return ScheduleAt(now_us_ + std::max<int64_t>(delay_us, 0),
                    std::move(callback));
}

EventHandle Simulation::ScheduleAt(int64_t time_us, Callback callback) {
  ETUDE_CHECK(callback != nullptr) << "null callback scheduled";
  Event event;
  event.time_us = std::max(time_us, now_us_);
  event.sequence = next_sequence_++;
  event.callback = std::move(callback);
  event.cancelled = std::make_shared<bool>(false);
  EventHandle handle(event.cancelled);
  queue_.push(std::move(event));
  return handle;
}

void Simulation::PostExternal(Callback callback) {
  ETUDE_CHECK(callback != nullptr) << "null callback posted";
  MutexLock lock(external_mutex_);
  external_.push_back(std::move(callback));
  has_external_.store(true, std::memory_order_release);
}

void Simulation::DrainExternal() {
  if (!has_external_.load(std::memory_order_acquire)) return;
  std::vector<Callback> pending;
  {
    MutexLock lock(external_mutex_);
    pending.swap(external_);
    has_external_.store(false, std::memory_order_release);
  }
  for (Callback& callback : pending) callback();
}

int64_t Simulation::Run() {
  stopped_ = false;
  int64_t executed = 0;
  DrainExternal();
  while (!queue_.empty() && !stopped_) {
    Event event = queue_.top();
    queue_.pop();
    now_us_ = event.time_us;
    if (*event.cancelled) continue;
    event.callback();
    ++executed;
    DrainExternal();
  }
  return executed;
}

int64_t Simulation::RunUntil(int64_t deadline_us) {
  stopped_ = false;
  int64_t executed = 0;
  DrainExternal();
  while (!queue_.empty() && !stopped_) {
    const Event& top = queue_.top();
    if (top.time_us > deadline_us) break;
    Event event = queue_.top();
    queue_.pop();
    now_us_ = event.time_us;
    if (*event.cancelled) continue;
    event.callback();
    ++executed;
    DrainExternal();
  }
  // Advance the clock to the deadline even if the queue drained early, so
  // repeated RunUntil calls observe monotonically increasing time.
  now_us_ = std::max(now_us_, deadline_us);
  return executed;
}

}  // namespace etude::sim

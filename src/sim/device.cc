#include "sim/device.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"

namespace etude::sim {

std::string_view DeviceKindToString(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kCpu:
      return "CPU";
    case DeviceKind::kGpuT4:
      return "GPU-T4";
    case DeviceKind::kGpuA100:
      return "GPU-A100";
  }
  return "?";
}

DeviceSpec DeviceSpec::Cpu() {
  DeviceSpec spec;
  spec.kind = DeviceKind::kCpu;
  spec.name = "cpu";
  // Effective single-worker throughput of fp32 PyTorch kernels on one
  // e2 vCPU; calibrated so a C=1e6, d=32 catalog scan takes >50 ms (Fig. 3).
  spec.compute_gflops = 5.0;
  spec.mem_bandwidth_gbps = 2.5;
  spec.kernel_launch_us = 50.0;
  spec.eager_op_overhead_us = 60.0;
  spec.pcie_roundtrip_us = 0.0;  // host syncs are plain host work on CPU
  spec.worker_slots = 5;         // 5.5 vCPUs
  spec.supports_batching = false;
  spec.memory_gb = 32.0;         // host RAM
  spec.monthly_cost_usd = 108.09;
  return spec;
}

DeviceSpec DeviceSpec::CpuSmall() {
  DeviceSpec spec = Cpu();
  spec.name = "cpu-small";
  spec.worker_slots = 2;  // 2 vCPU / 2 GB machine of the Fig. 2 infra test
  spec.monthly_cost_usd = 39.30;
  return spec;
}

DeviceSpec DeviceSpec::GpuT4() {
  DeviceSpec spec;
  spec.kind = DeviceKind::kGpuT4;
  spec.name = "gpu-t4";
  // Tesla T4: 8.1 TFLOPs fp32 peak / 320 GB/s peak; effective values for
  // unoptimised gemv + top-k inference kernels.
  spec.compute_gflops = 2000.0;
  spec.mem_bandwidth_gbps = 130.0;
  spec.kernel_launch_us = 400.0;
  spec.eager_op_overhead_us = 25.0;
  spec.pcie_roundtrip_us = 120.0;
  spec.worker_slots = 1;  // one CUDA stream executor
  spec.supports_batching = true;
  spec.memory_gb = 16.0;  // Tesla T4
  spec.monthly_cost_usd = 268.09;
  return spec;
}

DeviceSpec DeviceSpec::GpuA100() {
  DeviceSpec spec;
  spec.kind = DeviceKind::kGpuA100;
  spec.name = "gpu-a100";
  // Tesla A100 40GB: 19.5 TFLOPs fp32 / 1555 GB/s peak.
  spec.compute_gflops = 6000.0;
  spec.mem_bandwidth_gbps = 360.0;
  spec.kernel_launch_us = 350.0;
  spec.eager_op_overhead_us = 20.0;
  spec.pcie_roundtrip_us = 100.0;
  spec.worker_slots = 1;
  spec.supports_batching = true;
  spec.memory_gb = 40.0;  // A100 40GB
  spec.monthly_cost_usd = 2008.80;
  return spec;
}

Result<DeviceSpec> DeviceSpec::FromName(std::string_view name) {
  const std::string lower = ToLower(name);
  if (lower == "cpu") return Cpu();
  if (lower == "cpu-small") return CpuSmall();
  if (lower == "gpu-t4" || lower == "t4") return GpuT4();
  if (lower == "gpu-a100" || lower == "a100") return GpuA100();
  return Status::NotFound("unknown device '" + std::string(name) +
                          "'; expected cpu, gpu-t4 or gpu-a100");
}

double DeviceEfficiency(const DeviceSpec& device, const InferenceWork& work) {
  switch (device.kind) {
    case DeviceKind::kCpu:
      return work.cpu_efficiency;
    case DeviceKind::kGpuT4:
      return work.t4_efficiency;
    case DeviceKind::kGpuA100:
      return work.a100_efficiency;
  }
  return 1.0;
}

namespace {

/// Device time (us) of one tensor-work component (bytes, flops) of a
/// request, before dispatch overheads and host syncs. Memory traffic and
/// compute overlap poorly in the unoptimised kernels the paper measures, so
/// costs are additive.
double ComponentUs(const DeviceSpec& device, const InferenceWork& work,
                   double bytes, double flops) {
  if (!work.jit_compiled) {
    // Eager execution materialises extra intermediates.
    bytes *= 1.10;
  }
  const double bandwidth_us = bytes / (device.mem_bandwidth_gbps * 1e3);
  const double compute_us = flops / (device.compute_gflops * 1e3);
  return (bandwidth_us + compute_us) * DeviceEfficiency(device, work);
}

double TensorWorkUs(const DeviceSpec& device, const InferenceWork& work) {
  return ComponentUs(device, work, work.encode_bytes + work.scan_bytes,
                     work.encode_flops + work.scan_flops);
}

/// Per-request cost that can never be amortised by batching: host syncs
/// (PCIe round trip + host-side NumPy work on GPUs; plain host work on CPU).
double HostSyncUs(const DeviceSpec& device, const InferenceWork& work) {
  if (work.host_sync_points == 0) return 0.0;
  const double per_sync = device.pcie_roundtrip_us + work.host_compute_us;
  return static_cast<double>(work.host_sync_points) * per_sync;
}

/// Fixed dispatch cost per executed graph: one fused launch when JIT
/// compiled, one dispatch per op in eager mode.
double DispatchUs(const DeviceSpec& device, const InferenceWork& work) {
  double us = device.kernel_launch_us;
  if (!work.jit_compiled) {
    us += static_cast<double>(work.op_count) * device.eager_op_overhead_us;
  }
  return us;
}

}  // namespace

double SerialInferenceUs(const DeviceSpec& device, const InferenceWork& work) {
  return DispatchUs(device, work) + TensorWorkUs(device, work) +
         HostSyncUs(device, work);
}

InferencePhases SerialInferencePhasesUs(const DeviceSpec& device,
                                        const InferenceWork& work) {
  InferencePhases phases;
  phases.dispatch_us = DispatchUs(device, work);
  phases.encode_us =
      ComponentUs(device, work, work.encode_bytes, work.encode_flops);
  phases.scan_us = ComponentUs(device, work, work.scan_bytes, work.scan_flops);
  phases.host_sync_us = HostSyncUs(device, work);
  return phases;
}

double BatchInferenceUs(const DeviceSpec& device, const InferenceWork& work,
                        int batch_size) {
  ETUDE_CHECK(batch_size >= 1) << "batch size must be >= 1";
  const double tensor_us = TensorWorkUs(device, work);
  const double share = std::clamp(work.batch_share, 0.0, 1.0);
  // First request pays the full graph; each further request adds only its
  // non-amortisable share of the device work plus its host syncs.
  const double batched_tensor_us =
      tensor_us * (1.0 + share * static_cast<double>(batch_size - 1));
  return DispatchUs(device, work) + batched_tensor_us +
         static_cast<double>(batch_size) * HostSyncUs(device, work);
}

}  // namespace etude::sim

#ifndef ETUDE_BENCH_REPORTER_H_
#define ETUDE_BENCH_REPORTER_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "metrics/histogram.h"
#include "metrics/timeseries.h"

namespace etude::bench {

/// Whether a smaller or larger value of a series is an improvement.
/// `kInfo` series (costs, error percentages used as sanity checks, model
/// counts) are reported but never gate a regression diff.
enum class Direction { kLowerIsBetter, kHigherIsBetter, kInfo };

/// JSON spelling of a direction: "down", "up" or "none".
std::string_view DirectionToString(Direction direction);

/// Build/run environment recorded in every BENCH JSON file.
///
/// `git_sha`, `build_type` and `sanitizers` default to values baked in at
/// configure time; `date` stays empty unless passed via --date so bench
/// output is byte-identical across reruns of the same build.
struct BenchEnv {
  std::string git_sha;
  std::string build_type;
  std::string sanitizers;
  int cpu_count = 0;
  int threads = 0;  // tensor-kernel worker count the run executed with
  std::string date;
  bool quick = false;
  int64_t seed = -1;  // -1: the binary ran with its built-in default seed

  /// Captures the compile-time environment plus the CPU count.
  static BenchEnv Capture();
};

/// Ordered key/value labels distinguishing series with the same name,
/// e.g. {{"model", "GRU4Rec"}, {"catalog", "1M"}}.
using Params = std::vector<std::pair<std::string, std::string>>;

/// Collects the measured series of one bench binary and serialises them
/// as a schema-versioned JSON document (see docs/benchmarking.md).
class BenchReporter {
 public:
  BenchReporter(std::string binary, BenchEnv env)
      : binary_(std::move(binary)), env_(std::move(env)) {}

  /// Adds a single-valued series (a rate, a cost, an error percentage).
  void AddValue(const std::string& name, const std::string& unit,
                const Params& params, Direction direction, double value);

  /// Adds a distribution series from a histogram summary. Percentiles
  /// inherit the histogram's bucket-upper-bound over-estimate (< 1.6%).
  void AddSummary(const std::string& name, const std::string& unit,
                  const Params& params, Direction direction,
                  const metrics::LatencyHistogram::Summary& summary);

  /// Adds a per-second timeline series. The series carries both the
  /// whole-run "summary" (the aggregate latency distribution — this is
  /// what bench_diff compares, so timeline series stay diffable) and an
  /// additive "timeline" array with one entry per one-second tick:
  /// {tick, sent, ok, errors, p50, p90, p99, mean, queue_peak,
  /// queue_mean, in_flight, utilization}. Older readers that only
  /// understand "summary" ignore the extra field, so the document's
  /// schema_version stays 1. Every timeline producer — the DES pods and
  /// the real-socket load generator — emits exactly this entry shape
  /// (enforced by ValidateTimelineJson).
  void AddTimeline(const std::string& name, const std::string& unit,
                   const Params& params, Direction direction,
                   const metrics::TimeSeriesRecorder& timeline);

  size_t series_count() const { return series_.items().size(); }
  const std::string& binary() const { return binary_; }
  BenchEnv& env() { return env_; }

  /// The full document: {schema_version, binary, env, series}.
  JsonValue ToJson() const;

  /// Writes ToJson() to `path`.
  Status WriteJson(const std::string& path) const;

 private:
  JsonValue SeriesHeader(const std::string& name, const std::string& unit,
                         const Params& params, Direction direction) const;

  std::string binary_;
  BenchEnv env_;
  JsonValue series_ = JsonValue::MakeArray();
};

/// Checks that a BENCH document's timeline series all follow the one
/// shared per-tick schema: schema_version 1, at least one series with a
/// "timeline" array, and every entry carrying exactly the keys
/// {tick, sent, ok, errors, p50, p90, p99, mean, queue_peak, queue_mean,
/// in_flight, utilization} with numeric values and strictly increasing
/// ticks. The DES per-pod telemetry and the real-server loadtest both
/// emit through AddTimeline, and this validator is the crosscheck that
/// keeps the two surfaces byte-compatible.
Status ValidateTimelineJson(const JsonValue& doc);

}  // namespace etude::bench

#endif  // ETUDE_BENCH_REPORTER_H_

#include "bench/harness.h"

#include <cstdio>
#include <cstdlib>

#include "common/parallel.h"
#include "common/strings.h"

namespace etude::bench {

namespace {

std::vector<FlagSpec> CombinedSpecs(const BenchRun::Options& options) {
  std::vector<FlagSpec> specs = StandardFlagSpecs();
  for (const FlagSpec& extra : options.extra_flags) specs.push_back(extra);
  return specs;
}

}  // namespace

Result<BenchRun> BenchRun::Create(const std::string& binary, int argc,
                                  char** argv, Options options) {
  ETUDE_ASSIGN_OR_RETURN(
      Flags flags, Flags::Parse(argc, argv, CombinedSpecs(options),
                                options.gbench_passthrough));
  if (flags.Has("threads")) {
    const int64_t threads = flags.GetInt("threads", 0);
    if (threads < 1) {
      return Status::InvalidArgument(
          "--threads must be a positive integer, got '" +
          flags.GetString("threads", "") + "'");
    }
    SetNumThreads(static_cast<int>(threads));
  }
  // Capture after the flag applied so env.threads records the real count.
  BenchEnv env = BenchEnv::Capture();
  env.quick = flags.GetBool("quick");
  env.date = flags.GetString("date", "");
  env.git_sha = flags.GetString("git-sha", env.git_sha);
  if (flags.Has("seed")) env.seed = flags.GetInt("seed", -1);
  BenchReporter reporter(binary, std::move(env));
  return BenchRun(std::move(flags), std::move(reporter));
}

Result<BenchRun> BenchRun::Create(const std::string& binary, int argc,
                                  char** argv) {
  return Create(binary, argc, argv, Options());
}

BenchRun BenchRun::CreateOrExit(const std::string& binary, int argc,
                                char** argv) {
  return CreateOrExit(binary, argc, argv, Options());
}

BenchRun BenchRun::CreateOrExit(const std::string& binary, int argc,
                                char** argv, Options options) {
  // --help short-circuits parsing so it works alongside any other flags.
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--help") {
      std::fputs(Flags::Usage(binary, CombinedSpecs(options)).c_str(),
                 stdout);
      std::exit(0);
    }
  }
  Result<BenchRun> run = Create(binary, argc, argv, std::move(options));
  if (!run.ok()) {
    std::fprintf(stderr, "%s: %s\n", binary.c_str(),
                 run.status().message().c_str());
    std::exit(2);
  }
  return std::move(run).value();
}

std::vector<std::string> BenchRun::GBenchArgv(const std::string& argv0) const {
  std::vector<std::string> argv = {argv0};
  bool min_time_set = false;
  for (const std::string& arg : flags_.passthrough()) {
    argv.push_back(arg);
    if (StartsWith(arg, "--benchmark_min_time")) min_time_set = true;
  }
  if (quick() && !min_time_set) {
    argv.push_back("--benchmark_min_time=0.01");
  }
  return argv;
}

int BenchRun::Finish() {
  const std::string json_out = flags_.GetString("json-out", "");
  if (json_out.empty()) return 0;
  const Status status = reporter_.WriteJson(json_out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", reporter_.binary().c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu series to %s\n", reporter_.series_count(),
               json_out.c_str());
  return 0;
}

}  // namespace etude::bench

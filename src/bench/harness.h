#ifndef ETUDE_BENCH_HARNESS_H_
#define ETUDE_BENCH_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bench/flags.h"
#include "bench/reporter.h"
#include "common/status.h"

namespace etude::bench {

/// Ties a bench binary's command line to its JSON reporter.
///
/// Every harnessed binary follows the same shape:
///
///   int main(int argc, char** argv) {
///     etude::bench::BenchRun run =
///         etude::bench::BenchRun::CreateOrExit("bench_foo", argc, argv);
///     ... measure, print tables, run.reporter().AddValue(...) ...
///     return run.Finish();
///   }
///
/// which gives it --json-out, --quick, --seed, --date, --git-sha and
/// --help with strict unknown-flag rejection.
class BenchRun {
 public:
  struct Options {
    /// Binary-specific flags on top of StandardFlagSpecs().
    std::vector<FlagSpec> extra_flags;
    /// Forward --benchmark_* arguments instead of rejecting them.
    bool gbench_passthrough = false;
  };

  static Result<BenchRun> Create(const std::string& binary, int argc,
                                 char** argv, Options options);
  static Result<BenchRun> Create(const std::string& binary, int argc,
                                 char** argv);

  /// Create(), but prints usage and exits on --help (status 0) or on a
  /// parse error (status 2, the usage-error convention of bench_diff).
  static BenchRun CreateOrExit(const std::string& binary, int argc,
                               char** argv, Options options);
  static BenchRun CreateOrExit(const std::string& binary, int argc,
                               char** argv);

  bool quick() const { return flags_.GetBool("quick"); }
  uint64_t seed_or(uint64_t fallback) const {
    return static_cast<uint64_t>(
        flags_.GetInt("seed", static_cast<int64_t>(fallback)));
  }
  bool GetBool(const std::string& name) const { return flags_.GetBool(name); }
  std::string GetString(const std::string& name,
                        const std::string& fallback) const {
    return flags_.GetString(name, fallback);
  }
  double GetDouble(const std::string& name, double fallback) const {
    return flags_.GetDouble(name, fallback);
  }
  int64_t GetInt(const std::string& name, int64_t fallback) const {
    return flags_.GetInt(name, fallback);
  }

  BenchReporter& reporter() { return reporter_; }

  /// Command line for benchmark::Initialize: argv0, the --benchmark_*
  /// passthrough flags, and (under --quick) a short --benchmark_min_time
  /// unless the caller already set one.
  std::vector<std::string> GBenchArgv(const std::string& argv0) const;

  /// Writes the JSON report when --json-out was given. Returns the
  /// process exit code (1 when the write fails).
  int Finish();

 private:
  BenchRun(Flags flags, BenchReporter reporter)
      : flags_(std::move(flags)), reporter_(std::move(reporter)) {}

  Flags flags_;
  BenchReporter reporter_;
};

}  // namespace etude::bench

#endif  // ETUDE_BENCH_HARNESS_H_

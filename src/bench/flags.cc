#include "bench/flags.h"

#include <cstdlib>

#include "common/strings.h"

namespace etude::bench {

std::vector<FlagSpec> StandardFlagSpecs() {
  return {
      {"json-out", true, "write measured series as BENCH JSON to this path"},
      {"quick", false, "reduced iteration counts for CI smoke runs"},
      {"seed", true, "override the binary's default RNG seed"},
      {"threads", true,
       "tensor-kernel worker count (default: ETUDE_NUM_THREADS, else all "
       "hardware threads)"},
      {"date", true, "ISO date recorded in the JSON env block"},
      {"git-sha", true, "git revision recorded in the JSON env block"},
      {"help", false, "print this usage text"},
  };
}

namespace {

const FlagSpec* FindSpec(const std::vector<FlagSpec>& specs,
                         const std::string& name) {
  for (const FlagSpec& spec : specs) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::string AllowedList(const std::vector<FlagSpec>& specs) {
  std::vector<std::string> names;
  names.reserve(specs.size());
  for (const FlagSpec& spec : specs) names.push_back(spec.name);
  return "--" + Join(names, ", --");
}

}  // namespace

Result<Flags> Flags::Parse(int argc, char** argv,
                           const std::vector<FlagSpec>& specs,
                           bool benchmark_passthrough) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (benchmark_passthrough && StartsWith(arg, "--benchmark_")) {
      flags.passthrough_.push_back(arg);
      continue;
    }
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("unexpected argument '" + arg +
                                     "'; allowed flags: " +
                                     AllowedList(specs));
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_inline_value = false;
    const size_t equals = name.find('=');
    if (equals != std::string::npos) {
      value = name.substr(equals + 1);
      name = name.substr(0, equals);
      has_inline_value = true;
    }
    const FlagSpec* spec = FindSpec(specs, name);
    if (spec == nullptr) {
      return Status::InvalidArgument("unknown flag --" + name +
                                     "; allowed flags: " +
                                     AllowedList(specs));
    }
    if (!spec->takes_value) {
      if (has_inline_value) {
        return Status::InvalidArgument("flag --" + name +
                                       " does not take a value");
      }
      flags.values_[name] = "";
      continue;
    }
    if (!has_inline_value) {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + name +
                                       " requires a value");
      }
      value = argv[++i];
    }
    flags.values_[name] = value;
  }
  return flags;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::atof(it->second.c_str());
}

int64_t Flags::GetInt(const std::string& name, int64_t fallback) const {
  const auto it = values_.find(name);
  return it == values_.end()
             ? fallback
             : static_cast<int64_t>(std::atoll(it->second.c_str()));
}

std::string Flags::Usage(const std::string& binary,
                         const std::vector<FlagSpec>& specs) {
  std::string out = "usage: " + binary + " [flags]\n";
  for (const FlagSpec& spec : specs) {
    out += "  --" + spec.name + (spec.takes_value ? " VALUE" : "");
    out += "\n      " + spec.help + "\n";
  }
  return out;
}

}  // namespace etude::bench

#include "bench/diff.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "common/strings.h"
#include "metrics/report.h"

namespace etude::bench {

namespace {

/// The statistics a summary series can be compared on.
const char* const kKnownStats[] = {"p50", "p90", "p99",
                                   "mean", "min", "max"};

bool IsKnownStat(const std::string& stat) {
  for (const char* known : kKnownStats) {
    if (stat == known) return true;
  }
  return false;
}

/// Identity of one series across files: binary, name and labels.
std::string SeriesKey(const JsonValue& doc, const JsonValue& series) {
  // Merged suite files tag each series with its binary; per-binary files
  // carry it once at the top level.
  std::string binary = series.GetStringOr("binary", "");
  if (binary.empty()) binary = doc.GetStringOr("binary", "");
  std::string key = binary + "/" + series.GetStringOr("name", "?");
  const JsonValue& params = series.Get("params");
  if (params.is_object() && !params.members().empty()) {
    std::vector<std::string> labels;
    for (const auto& [name, value] : params.members()) {
      labels.push_back(name + "=" +
                       (value.is_string()
                            ? value.as_string()
                            : FormatDouble(value.as_number(), 6)));
    }
    key += '{';
    key += Join(labels, ",");
    key += '}';
  }
  return key;
}

/// Extracts the compared statistic from one series.
Result<double> SeriesStat(const JsonValue& series, const std::string& stat) {
  if (series.Contains("value")) return series.Get("value").as_number();
  const JsonValue& summary = series.Get("summary");
  if (!summary.is_object() || !summary.Contains(stat)) {
    return Status::InvalidArgument("series '" +
                                   series.GetStringOr("name", "?") +
                                   "' has neither a value nor a summary." +
                                   stat);
  }
  return summary.Get(stat).as_number();
}

struct IndexedSeries {
  const JsonValue* series = nullptr;
};

Result<std::map<std::string, IndexedSeries>> IndexDoc(const JsonValue& doc) {
  std::map<std::string, IndexedSeries> index;
  const JsonValue& series_list = doc.Get("series");
  if (!series_list.is_array()) {
    return Status::InvalidArgument("BENCH document has no series array");
  }
  for (const JsonValue& series : series_list.items()) {
    const std::string key = SeriesKey(doc, series);
    if (index.count(key) > 0) {
      return Status::InvalidArgument("duplicate series key: " + key);
    }
    index[key].series = &series;
  }
  return index;
}

double DeltaPct(double base, double cand) {
  if (base == 0.0) return cand == 0.0 ? 0.0 : (cand > 0.0 ? 100.0 : -100.0);
  return 100.0 * (cand - base) / std::fabs(base);
}

std::string VerdictToString(Verdict verdict) {
  switch (verdict) {
    case Verdict::kUnchanged:
      return "ok";
    case Verdict::kImproved:
      return "improved";
    case Verdict::kRegressed:
      return "REGRESSED";
    case Verdict::kNew:
      return "new";
    case Verdict::kMissing:
      return "missing";
  }
  return "?";
}

}  // namespace

Result<JsonValue> LoadBenchJson(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot read " + path);
  }
  std::ostringstream text;
  text << file.rdbuf();
  ETUDE_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(text.str()));
  if (!doc.is_object() || doc.GetIntOr("schema_version", -1) != 1) {
    return Status::InvalidArgument(
        path + " is not a schema_version-1 BENCH file");
  }
  return doc;
}

Result<DiffReport> DiffBenchJson(const JsonValue& baseline,
                                 const JsonValue& candidate,
                                 const DiffOptions& options) {
  if (!IsKnownStat(options.stat)) {
    return Status::InvalidArgument(
        "unknown stat '" + options.stat +
        "'; expected one of p50, p90, p99, mean, min, max");
  }
  ETUDE_ASSIGN_OR_RETURN(auto base_index, IndexDoc(baseline));
  ETUDE_ASSIGN_OR_RETURN(auto cand_index, IndexDoc(candidate));

  DiffReport report;
  report.stat = options.stat;
  report.threshold_pct = options.threshold_pct;

  for (const auto& [key, base_entry] : base_index) {
    DiffRow row;
    row.key = key;
    row.unit = base_entry.series->GetStringOr("unit", "");
    row.direction = base_entry.series->GetStringOr("direction", "none");
    ETUDE_ASSIGN_OR_RETURN(row.base,
                           SeriesStat(*base_entry.series, options.stat));
    const auto cand_it = cand_index.find(key);
    if (cand_it == cand_index.end()) {
      row.verdict = Verdict::kMissing;
      report.missing += 1;
      report.rows.push_back(std::move(row));
      continue;
    }
    ETUDE_ASSIGN_OR_RETURN(row.cand,
                           SeriesStat(*cand_it->second.series, options.stat));
    row.delta_pct = DeltaPct(row.base, row.cand);
    // A series regresses when it moves against its direction by strictly
    // more than the threshold; "none" series never gate.
    if (row.direction == "down") {
      if (row.delta_pct > options.threshold_pct) {
        row.verdict = Verdict::kRegressed;
      } else if (row.delta_pct < -options.threshold_pct) {
        row.verdict = Verdict::kImproved;
      }
    } else if (row.direction == "up") {
      if (row.delta_pct < -options.threshold_pct) {
        row.verdict = Verdict::kRegressed;
      } else if (row.delta_pct > options.threshold_pct) {
        row.verdict = Verdict::kImproved;
      }
    }
    switch (row.verdict) {
      case Verdict::kRegressed:
        report.regressed += 1;
        break;
      case Verdict::kImproved:
        report.improved += 1;
        break;
      default:
        report.unchanged += 1;
        break;
    }
    report.rows.push_back(std::move(row));
  }
  for (const auto& [key, cand_entry] : cand_index) {
    if (base_index.count(key) > 0) continue;
    DiffRow row;
    row.key = key;
    row.unit = cand_entry.series->GetStringOr("unit", "");
    row.direction = cand_entry.series->GetStringOr("direction", "none");
    ETUDE_ASSIGN_OR_RETURN(row.cand,
                           SeriesStat(*cand_entry.series, options.stat));
    row.verdict = Verdict::kNew;
    report.added += 1;
    report.rows.push_back(std::move(row));
  }
  return report;
}

std::string DiffReport::ToText(bool show_all) const {
  metrics::Table table(
      {"series", "unit", "base", "candidate", "delta", "verdict"});
  for (const DiffRow& row : rows) {
    if (!show_all && row.verdict == Verdict::kUnchanged) continue;
    const bool compared = row.verdict != Verdict::kNew &&
                          row.verdict != Verdict::kMissing;
    std::string delta = "-";
    if (compared) {
      delta = FormatDouble(row.delta_pct, 1);
      if (row.delta_pct >= 0) delta.insert(0, 1, '+');
      delta += '%';
    }
    table.AddRow(
        {row.key, row.unit,
         row.verdict == Verdict::kNew ? "-" : FormatDouble(row.base, 3),
         row.verdict == Verdict::kMissing ? "-"
                                          : FormatDouble(row.cand, 3),
         delta, VerdictToString(row.verdict)});
  }
  std::string out;
  if (table.num_rows() > 0) out += table.ToText();
  out += std::to_string(rows.size()) + " series compared on " + stat + ": " +
         std::to_string(regressed) + " regressed, " +
         std::to_string(improved) + " improved, " +
         std::to_string(unchanged) + " within " +
         FormatDouble(threshold_pct, 1) + "%, " + std::to_string(added) +
         " new, " + std::to_string(missing) + " missing\n";
  return out;
}

int DiffMain(const std::vector<std::string>& args) {
  const std::string usage =
      "usage: bench_diff BASELINE.json CANDIDATE.json [--threshold PCT] "
      "[--stat p50|p90|p99|mean|min|max] [--fail-on-missing] [--all]\n";
  DiffOptions options;
  std::vector<std::string> positional;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--threshold" || arg == "--stat") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "flag %s requires a value\n%s", arg.c_str(),
                     usage.c_str());
        return 2;
      }
      const std::string value = args[++i];
      if (arg == "--threshold") {
        options.threshold_pct = std::atof(value.c_str());
      } else {
        options.stat = value;
      }
    } else if (arg == "--fail-on-missing") {
      options.fail_on_missing = true;
    } else if (arg == "--all") {
      options.show_all = true;
    } else if (StartsWith(arg, "--")) {
      std::fprintf(stderr,
                   "unknown flag %s; allowed flags: --threshold, --stat, "
                   "--fail-on-missing, --all\n%s",
                   arg.c_str(), usage.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr, "%s", usage.c_str());
    return 2;
  }

  Result<JsonValue> baseline = LoadBenchJson(positional[0]);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 1;
  }
  Result<JsonValue> candidate = LoadBenchJson(positional[1]);
  if (!candidate.ok()) {
    std::fprintf(stderr, "%s\n", candidate.status().ToString().c_str());
    return 1;
  }
  Result<DiffReport> report = DiffBenchJson(*baseline, *candidate, options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", report->ToText(options.show_all).c_str());
  if (report->has_regression()) return 3;
  if (options.fail_on_missing && report->missing > 0) return 3;
  return 0;
}

}  // namespace etude::bench

#ifndef ETUDE_BENCH_GBENCH_ADAPTER_H_
#define ETUDE_BENCH_GBENCH_ADAPTER_H_

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/reporter.h"

namespace etude::bench {

/// Console reporter that additionally records every google-benchmark run
/// into a BenchReporter: the per-iteration adjusted real time as a
/// lower-is-better series named after the benchmark, and each rate
/// counter (items/s style) as a higher-is-better series.
class GBenchReporter : public benchmark::ConsoleReporter {
 public:
  explicit GBenchReporter(BenchReporter* reporter) : reporter_(reporter) {}

  void ReportRuns(const std::vector<Run>& reports) override;

 private:
  BenchReporter* reporter_;
};

/// Runs all registered google benchmarks under `run`'s flags
/// (--benchmark_* passthrough, a short min time under --quick), records
/// them into run.reporter(), and finishes the run. Returns the process
/// exit code.
int RunGoogleBenchmarks(BenchRun& run, const std::string& argv0);

}  // namespace etude::bench

#endif  // ETUDE_BENCH_GBENCH_ADAPTER_H_

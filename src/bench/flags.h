#ifndef ETUDE_BENCH_FLAGS_H_
#define ETUDE_BENCH_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace etude::bench {

/// Declares one flag a bench binary accepts. Boolean flags
/// (takes_value == false) are set by presence alone; value flags accept
/// both `--name value` and `--name=value`.
struct FlagSpec {
  std::string name;        // without the leading "--"
  bool takes_value = true;
  std::string help;
};

/// The flags every harnessed bench binary understands, before any
/// binary-specific extras.
std::vector<FlagSpec> StandardFlagSpecs();

/// Strict command-line parser for bench binaries: an unknown flag or a
/// missing value is an error that names the full allowed set, so a
/// misspelled flag can never silently run the wrong experiment.
class Flags {
 public:
  /// Parses argv[1..). When `benchmark_passthrough` is true, arguments
  /// starting with "--benchmark_" are collected verbatim instead of
  /// rejected (google-benchmark binaries forward them to the library).
  static Result<Flags> Parse(int argc, char** argv,
                             const std::vector<FlagSpec>& specs,
                             bool benchmark_passthrough = false);

  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  bool GetBool(const std::string& name) const { return Has(name); }
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;

  /// Raw --benchmark_* arguments, in order, for benchmark::Initialize.
  const std::vector<std::string>& passthrough() const { return passthrough_; }

  /// Renders a usage string listing every flag with its help text.
  static std::string Usage(const std::string& binary,
                           const std::vector<FlagSpec>& specs);

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> passthrough_;
};

}  // namespace etude::bench

#endif  // ETUDE_BENCH_FLAGS_H_

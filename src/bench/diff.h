#ifndef ETUDE_BENCH_DIFF_H_
#define ETUDE_BENCH_DIFF_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace etude::bench {

/// Controls what counts as a regression when diffing two BENCH files.
struct DiffOptions {
  /// A gated series regresses when it moves against its direction by
  /// strictly more than this percentage.
  double threshold_pct = 10.0;
  /// Statistic compared for summary series ("p50", "p90", "p99", "mean",
  /// "min", "max"). Single-valued series always compare their value.
  std::string stat = "p50";
  /// Treat series present in the baseline but missing from the candidate
  /// as failures (they normally only warn — a bench rename is routine).
  bool fail_on_missing = false;
  /// Also list unchanged series in the report text.
  bool show_all = false;
};

enum class Verdict { kUnchanged, kImproved, kRegressed, kNew, kMissing };

/// One compared series. `key` is "<binary>/<name>{k=v,...}".
struct DiffRow {
  std::string key;
  std::string unit;
  std::string direction;  // "down", "up" or "none"
  double base = 0.0;
  double cand = 0.0;
  double delta_pct = 0.0;
  Verdict verdict = Verdict::kUnchanged;
};

struct DiffReport {
  std::vector<DiffRow> rows;  // sorted by key
  std::string stat;
  double threshold_pct = 0.0;
  int regressed = 0;
  int improved = 0;
  int unchanged = 0;
  int added = 0;
  int missing = 0;

  bool has_regression() const { return regressed > 0; }

  /// Renders the verdict table plus a one-line summary.
  std::string ToText(bool show_all) const;
};

/// Reads and parses a BENCH JSON file, rejecting documents whose
/// schema_version is not 1.
Result<JsonValue> LoadBenchJson(const std::string& path);

/// Diffs two BENCH documents (either per-binary files from --json-out or
/// merged suite files from tools/run_bench.sh).
Result<DiffReport> DiffBenchJson(const JsonValue& baseline,
                                 const JsonValue& candidate,
                                 const DiffOptions& options);

/// Command-line entry shared by the bench_diff binary and
/// `etude bench-diff`: args are `baseline.json candidate.json` plus
/// --threshold PCT, --stat NAME, --fail-on-missing, --all.
/// Exit codes: 0 no regression, 1 load/parse error, 2 usage error,
/// 3 regression beyond threshold.
int DiffMain(const std::vector<std::string>& args);

}  // namespace etude::bench

#endif  // ETUDE_BENCH_DIFF_H_

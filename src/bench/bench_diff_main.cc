// bench_diff — compares two BENCH JSON files (per-binary --json-out
// output or merged tools/run_bench.sh suites) and exits non-zero when a
// gated series regresses beyond the threshold. Shared logic with
// `etude bench-diff` lives in bench/diff.cc.

#include <string>
#include <vector>

#include "bench/diff.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return etude::bench::DiffMain(args);
}

#include "bench/reporter.h"

#include <cstdio>
#include <iterator>
#include <thread>

#include "common/parallel.h"

// Baked in by src/bench/CMakeLists.txt at configure time.
#ifndef ETUDE_GIT_SHA
#define ETUDE_GIT_SHA "unknown"
#endif
#ifndef ETUDE_BUILD_TYPE
#define ETUDE_BUILD_TYPE "unknown"
#endif
#ifndef ETUDE_SANITIZE_FLAGS
#define ETUDE_SANITIZE_FLAGS ""
#endif

namespace etude::bench {

std::string_view DirectionToString(Direction direction) {
  switch (direction) {
    case Direction::kLowerIsBetter:
      return "down";
    case Direction::kHigherIsBetter:
      return "up";
    case Direction::kInfo:
      return "none";
  }
  return "none";
}

BenchEnv BenchEnv::Capture() {
  BenchEnv env;
  env.git_sha = ETUDE_GIT_SHA;
  env.build_type = ETUDE_BUILD_TYPE;
  env.sanitizers = ETUDE_SANITIZE_FLAGS;
  env.cpu_count = static_cast<int>(std::thread::hardware_concurrency());
  env.threads = NumThreads();
  return env;
}

namespace {

JsonValue SummaryToJson(const metrics::LatencyHistogram::Summary& summary) {
  JsonValue stats = JsonValue::MakeObject();
  stats.Set("count", JsonValue(summary.count));
  stats.Set("sum", JsonValue(summary.sum));
  stats.Set("min", JsonValue(summary.min));
  stats.Set("mean", JsonValue(summary.mean));
  stats.Set("p50", JsonValue(summary.p50));
  stats.Set("p90", JsonValue(summary.p90));
  stats.Set("p99", JsonValue(summary.p99));
  stats.Set("max", JsonValue(summary.max));
  return stats;
}

}  // namespace

void BenchReporter::AddValue(const std::string& name, const std::string& unit,
                             const Params& params, Direction direction,
                             double value) {
  JsonValue series = SeriesHeader(name, unit, params, direction);
  series.Set("value", JsonValue(value));
  series_.Append(std::move(series));
}

void BenchReporter::AddSummary(
    const std::string& name, const std::string& unit, const Params& params,
    Direction direction, const metrics::LatencyHistogram::Summary& summary) {
  JsonValue series = SeriesHeader(name, unit, params, direction);
  series.Set("summary", SummaryToJson(summary));
  series_.Append(std::move(series));
}

void BenchReporter::AddTimeline(const std::string& name,
                                const std::string& unit, const Params& params,
                                Direction direction,
                                const metrics::TimeSeriesRecorder& timeline) {
  JsonValue series = SeriesHeader(name, unit, params, direction);
  // The aggregate across all ticks keeps the series diffable by
  // bench_diff, which requires either "value" or "summary". Merged
  // percentiles inherit the bucket-upper-bound over-estimate (< 1.6%).
  series.Set("summary", SummaryToJson(timeline.AggregateLatencies().Summarize()));
  JsonValue ticks = JsonValue::MakeArray();
  for (const metrics::TickStats& tick : timeline.ticks()) {
    const metrics::LatencyHistogram::Summary summary =
        tick.latencies.Summarize();
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("tick", JsonValue(tick.tick));
    entry.Set("sent", JsonValue(tick.requests_sent));
    entry.Set("ok", JsonValue(tick.responses_ok));
    entry.Set("errors", JsonValue(tick.responses_error));
    entry.Set("p50", JsonValue(summary.p50));
    entry.Set("p90", JsonValue(summary.p90));
    entry.Set("p99", JsonValue(summary.p99));
    entry.Set("mean", JsonValue(summary.mean));
    // Per-pod telemetry fields. Client-side producers (the load
    // generators) leave these zero, so every timeline — DES pod or real
    // loadtest — serialises the same entry schema (see
    // ValidateTimelineJson).
    entry.Set("queue_peak", JsonValue(tick.queue_depth_peak));
    entry.Set("queue_mean", JsonValue(tick.QueueDepthMean()));
    entry.Set("in_flight", JsonValue(tick.in_flight));
    entry.Set("utilization", JsonValue(tick.utilization));
    ticks.Append(std::move(entry));
  }
  series.Set("timeline", std::move(ticks));
  series_.Append(std::move(series));
}

JsonValue BenchReporter::SeriesHeader(const std::string& name,
                                      const std::string& unit,
                                      const Params& params,
                                      Direction direction) const {
  JsonValue series = JsonValue::MakeObject();
  series.Set("name", JsonValue(name));
  series.Set("unit", JsonValue(unit));
  series.Set("direction", JsonValue(std::string(DirectionToString(direction))));
  JsonValue labels = JsonValue::MakeObject();
  for (const auto& [key, value] : params) {
    labels.Set(key, JsonValue(value));
  }
  series.Set("params", std::move(labels));
  return series;
}

JsonValue BenchReporter::ToJson() const {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("schema_version", JsonValue(static_cast<int64_t>(1)));
  doc.Set("binary", JsonValue(binary_));
  JsonValue env = JsonValue::MakeObject();
  env.Set("git_sha", JsonValue(env_.git_sha));
  env.Set("build_type", JsonValue(env_.build_type));
  env.Set("sanitizers", JsonValue(env_.sanitizers));
  env.Set("cpu_count", JsonValue(static_cast<int64_t>(env_.cpu_count)));
  env.Set("threads", JsonValue(static_cast<int64_t>(env_.threads)));
  env.Set("date", JsonValue(env_.date));
  env.Set("quick", JsonValue(env_.quick));
  if (env_.seed >= 0) env.Set("seed", JsonValue(env_.seed));
  doc.Set("env", std::move(env));
  doc.Set("series", series_);
  return doc;
}

Status ValidateTimelineJson(const JsonValue& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("timeline document is not an object");
  }
  if (doc.GetIntOr("schema_version", -1) != 1) {
    return Status::InvalidArgument("timeline document: schema_version != 1");
  }
  const JsonValue& series = doc.Get("series");
  if (!series.is_array()) {
    return Status::InvalidArgument("timeline document: no series array");
  }
  static const char* kTickKeys[] = {"tick",      "sent",       "ok",
                                    "errors",    "p50",        "p90",
                                    "p99",       "mean",       "queue_peak",
                                    "queue_mean", "in_flight", "utilization"};
  int timeline_series = 0;
  for (const JsonValue& entry : series.items()) {
    if (!entry.is_object() || !entry.Contains("timeline")) continue;
    ++timeline_series;
    const std::string name = entry.GetStringOr("name", "<unnamed>");
    const JsonValue& ticks = entry.Get("timeline");
    if (!ticks.is_array()) {
      return Status::InvalidArgument("series '" + name +
                                     "': timeline is not an array");
    }
    int64_t last_tick = -1;
    for (const JsonValue& tick : ticks.items()) {
      if (!tick.is_object()) {
        return Status::InvalidArgument("series '" + name +
                                       "': non-object timeline entry");
      }
      if (tick.members().size() != std::size(kTickKeys)) {
        return Status::InvalidArgument(
            "series '" + name + "': timeline entry has " +
            std::to_string(tick.members().size()) + " keys, expected " +
            std::to_string(std::size(kTickKeys)));
      }
      for (const char* key : kTickKeys) {
        if (!tick.Contains(key) || !tick.Get(key).is_number()) {
          return Status::InvalidArgument("series '" + name +
                                         "': timeline entry missing numeric "
                                         "key '" +
                                         key + "'");
        }
      }
      const int64_t tick_index = tick.GetIntOr("tick", -1);
      if (tick_index <= last_tick) {
        return Status::InvalidArgument("series '" + name +
                                       "': ticks not strictly increasing");
      }
      last_tick = tick_index;
    }
  }
  if (timeline_series == 0) {
    return Status::InvalidArgument(
        "timeline document: no series carries a timeline array");
  }
  return Status::OK();
}

Status BenchReporter::WriteJson(const std::string& path) const {
  const std::string text = ToJson().Dump() + "\n";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const int close_rc = std::fclose(file);
  if (written != text.size() || close_rc != 0) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace etude::bench

#include "bench/gbench_adapter.h"

#include <cstdio>

namespace etude::bench {

void GBenchReporter::ReportRuns(const std::vector<Run>& reports) {
  for (const Run& run : reports) {
    // Aggregates (mean/median/stddev under --benchmark_repetitions) would
    // duplicate the iteration runs under slightly different names.
    if (run.run_type != Run::RT_Aggregate && !run.error_occurred) {
      reporter_->AddValue(run.benchmark_name(),
                          benchmark::GetTimeUnitString(run.time_unit), {},
                          Direction::kLowerIsBetter,
                          run.GetAdjustedRealTime());
      for (const auto& [name, counter] : run.counters) {
        const bool is_rate = (static_cast<int>(counter.flags) &
                              static_cast<int>(benchmark::Counter::kIsRate)) != 0;
        reporter_->AddValue(
            run.benchmark_name() + "/" + name, is_rate ? "per_s" : "",
            {}, is_rate ? Direction::kHigherIsBetter : Direction::kInfo,
            static_cast<double>(counter.value));
      }
    }
  }
  ConsoleReporter::ReportRuns(reports);
}

int RunGoogleBenchmarks(BenchRun& run, const std::string& argv0) {
  std::vector<std::string> args = run.GBenchArgv(argv0);
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& arg : args) argv.push_back(arg.data());
  int argc = static_cast<int>(argv.size());
  benchmark::Initialize(&argc, argv.data());
  GBenchReporter reporter(&run.reporter());
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return run.Finish();
}

}  // namespace etude::bench

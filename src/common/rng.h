#ifndef ETUDE_COMMON_RNG_H_
#define ETUDE_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace etude {

/// Fast, deterministic pseudo-random number generator (xoshiro256**),
/// seeded via SplitMix64. Used everywhere in ETUDE instead of <random>
/// engines: it is several times faster (the synthetic workload generator
/// must produce >1M clicks/second on a single core) and its output is
/// stable across standard-library implementations, which keeps experiments
/// reproducible bit-for-bit.
class Rng {
 public:
  /// Seeds the generator. Two generators with the same seed produce
  /// identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      state_[i] = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1]; never returns 0, which makes it safe as the
  /// argument of log() and as the base of inverse-transform sampling of
  /// unbounded distributions.
  double NextDoublePositive() {
    return (static_cast<double>(NextU64() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's multiply-shift rejection method (unbiased).
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Standard normal variate (Marsaglia polar method).
  double NextGaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u, v, s;
    do {
      u = 2.0 * NextDouble() - 1.0;
      v = 2.0 * NextDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_gaussian_ = v * factor;
    has_cached_gaussian_ = true;
    return u * factor;
  }

  /// Exponential variate with rate `lambda`.
  double NextExponential(double lambda) {
    return -std::log(NextDoublePositive()) / lambda;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace etude

#endif  // ETUDE_COMMON_RNG_H_

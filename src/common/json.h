#ifndef ETUDE_COMMON_JSON_H_
#define ETUDE_COMMON_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace etude {

/// A minimal JSON document model, sufficient for ETUDE's declarative
/// scenario specifications. Supports objects, arrays, strings, numbers,
/// booleans and null; numbers are stored as double.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  explicit JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  explicit JsonValue(double d) : type_(Type::kNumber), number_(d) {}
  explicit JsonValue(int64_t i)
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  explicit JsonValue(std::string s)
      : type_(Type::kString), string_(std::move(s)) {}

  static JsonValue MakeArray() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue MakeObject() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  int64_t as_int() const { return static_cast<int64_t>(number_); }
  const std::string& as_string() const { return string_; }

  const std::vector<JsonValue>& items() const { return array_; }
  std::vector<JsonValue>& items() { return array_; }
  void Append(JsonValue v) { array_.push_back(std::move(v)); }

  const std::map<std::string, JsonValue>& members() const { return object_; }
  void Set(const std::string& key, JsonValue v) {
    object_[key] = std::move(v);
  }
  bool Contains(const std::string& key) const {
    return object_.count(key) > 0;
  }
  /// Returns the member or a null value when absent.
  const JsonValue& Get(const std::string& key) const;

  /// Mutable member access; nullptr when absent (objects only).
  JsonValue* GetMutable(const std::string& key);

  /// Typed accessors with defaults, for config-style reads.
  double GetNumberOr(const std::string& key, double fallback) const;
  int64_t GetIntOr(const std::string& key, int64_t fallback) const;
  bool GetBoolOr(const std::string& key, bool fallback) const;
  std::string GetStringOr(const std::string& key,
                          const std::string& fallback) const;

  /// Serialises to compact JSON text.
  std::string Dump() const;

 private:
  void DumpTo(std::string* out) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses JSON text. Returns InvalidArgument on malformed input.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace etude

#endif  // ETUDE_COMMON_JSON_H_

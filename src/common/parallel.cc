#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace etude {

namespace {

/// Set while a thread executes chunks of a parallel region (workers for
/// their whole lifetime, callers while they participate in their own
/// region). Read by InParallelRegion() to serialise nested ParallelFor.
thread_local bool t_in_parallel_region = false;

int DefaultNumThreads() {
  if (const char* env = std::getenv("ETUDE_NUM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::atomic<int> g_num_threads{0};  // 0 = not yet resolved

}  // namespace

int NumThreads() {
  int n = g_num_threads.load(std::memory_order_relaxed);
  if (n == 0) {
    // Benign race: concurrent first calls compute the same default.
    n = DefaultNumThreads();
    g_num_threads.store(n, std::memory_order_relaxed);
  }
  return n;
}

void SetNumThreads(int n) {
  g_num_threads.store(std::max(1, n), std::memory_order_relaxed);
}

bool InParallelRegion() { return t_in_parallel_region; }

namespace parallel_detail {

namespace {

/// One ParallelFor invocation: an index range cut into `num_chunks` chunks
/// of `chunk_size`, handed out via the `next_chunk` ticket counter.
/// Workers additionally take a participation slot so a pool larger than
/// the current NumThreads() setting never over-parallelises a region.
/// Held by shared_ptr: a worker that wakes up late (after the caller
/// already returned and moved on) still holds a valid, fully-drained
/// region and simply finds no chunk left.
struct Region {
  Region(RangeFunctionRef body_ref, int64_t begin_in, int64_t end_in,
         int64_t chunk_size_in, int64_t num_chunks_in, int worker_slots_in)
      : body(body_ref),
        begin(begin_in),
        end(end_in),
        chunk_size(chunk_size_in),
        num_chunks(num_chunks_in),
        worker_slots(worker_slots_in) {}

  const RangeFunctionRef body;
  const int64_t begin;
  const int64_t end;
  const int64_t chunk_size;
  const int64_t num_chunks;
  std::atomic<int> worker_slots;
  std::atomic<int64_t> next_chunk{0};
  std::atomic<int64_t> chunks_done{0};
};

/// Persistent work-sharing pool. Leaked singleton (never destructed):
/// worker threads live for the process lifetime, so there is no shutdown
/// race with static destruction order, and Tracer buffers registered by
/// workers stay valid for late Snapshot() calls.
class ThreadPool {
 public:
  static ThreadPool& Get() {
    static ThreadPool* pool = new ThreadPool();
    return *pool;
  }

  void Run(int64_t begin, int64_t end, int64_t grain, RangeFunctionRef body)
      ETUDE_EXCLUDES(mutex_) {
    const int threads = std::max(1, NumThreads());
    // At least `grain` per chunk, at most 4 chunks per thread: enough
    // slack for load balancing without churning the ticket counter.
    const int64_t range = end - begin;
    const int64_t min_chunk = (range + 4 * threads - 1) / (4 * threads);
    const int64_t chunk_size = std::max(grain, min_chunk);
    const int64_t num_chunks = (range + chunk_size - 1) / chunk_size;
    if (num_chunks <= 1) {
      body(begin, end);
      return;
    }
    auto region = std::make_shared<Region>(body, begin, end, chunk_size,
                                           num_chunks, threads - 1);
    {
      MutexLock lock(mutex_);
      EnsureWorkers(threads - 1);
      region_ = region;
      ++epoch_;
      work_cv_.NotifyAll();
    }
    // The caller is one of the region's threads: drain chunks alongside
    // the workers instead of blocking idle.
    const bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    DrainChunks(*region);
    t_in_parallel_region = was_in_region;
    {
      MutexLock lock(mutex_);
      while (region->chunks_done.load(std::memory_order_acquire) <
             region->num_chunks) {
        done_cv_.Wait(mutex_);
      }
      if (region_ == region) region_ = nullptr;
    }
  }

 private:
  ThreadPool() = default;

  void EnsureWorkers(int target) ETUDE_REQUIRES(mutex_) {
    while (static_cast<int>(workers_.size()) < target) {
      workers_.emplace_back([this] { WorkerLoop(); });
      workers_.back().detach();
    }
  }

  void WorkerLoop() ETUDE_EXCLUDES(mutex_) {
    t_in_parallel_region = true;
    uint64_t seen_epoch = 0;
    for (;;) {
      std::shared_ptr<Region> region;
      {
        MutexLock lock(mutex_);
        while (epoch_ == seen_epoch) work_cv_.Wait(mutex_);
        seen_epoch = epoch_;
        region = region_;
      }
      if (region == nullptr) continue;
      // Respect the thread count the region was launched with even if the
      // pool has more workers than that (SetNumThreads shrank it).
      if (region->worker_slots.fetch_sub(1, std::memory_order_relaxed) <=
          0) {
        continue;
      }
      DrainChunks(*region);
    }
  }

  void DrainChunks(Region& region) ETUDE_EXCLUDES(mutex_) {
    for (;;) {
      const int64_t chunk =
          region.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= region.num_chunks) return;
      const int64_t chunk_begin = region.begin + chunk * region.chunk_size;
      const int64_t chunk_end =
          std::min(region.end, chunk_begin + region.chunk_size);
      region.body(chunk_begin, chunk_end);
      if (region.chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          region.num_chunks) {
        // Last chunk: wake the caller. Taking the mutex orders this
        // notify after the caller's condition check, so the wakeup
        // cannot be missed.
        MutexLock lock(mutex_);
        done_cv_.NotifyAll();
      }
    }
  }

  Mutex mutex_;
  CondVar work_cv_;
  CondVar done_cv_;
  uint64_t epoch_ ETUDE_GUARDED_BY(mutex_) = 0;
  std::shared_ptr<Region> region_ ETUDE_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_ ETUDE_GUARDED_BY(mutex_);
};

}  // namespace

void ParallelForImpl(int64_t begin, int64_t end, int64_t grain,
                     RangeFunctionRef body) {
  ThreadPool::Get().Run(begin, end, grain, body);
}

}  // namespace parallel_detail

}  // namespace etude

#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace etude {

namespace {
const JsonValue& NullValue() {
  static const JsonValue* kNull = new JsonValue();
  return *kNull;
}

/// Recursive-descent JSON parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    ETUDE_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseBool();
      case 'n':
        return ParseNull();
      default:
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
          return ParseNumber();
        }
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // consume '{'
    JsonValue object = JsonValue::MakeObject();
    SkipWhitespace();
    if (Consume('}')) return object;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected string key in object");
      }
      ETUDE_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWhitespace();
      ETUDE_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      object.Set(key.as_string(), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return object;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // consume '['
    JsonValue array = JsonValue::MakeArray();
    SkipWhitespace();
    if (Consume(']')) return array;
    while (true) {
      SkipWhitespace();
      ETUDE_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      array.Append(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return array;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseString() {
    ++pos_;  // consume '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return JsonValue(std::move(out));
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Error("bad escape at end of input");
        const char esc = text_[pos_];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return Error("bad \\u escape");
            // Minimal \uXXXX handling: decode BMP code points as UTF-8.
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = text_[pos_ + i];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("bad hex digit in \\u escape");
              }
            }
            pos_ += 4;
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error("unknown escape character");
        }
        ++pos_;
      } else {
        out.push_back(c);
        ++pos_;
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseBool() {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return JsonValue(true);
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return JsonValue(false);
    }
    return Error("invalid literal");
  }

  Result<JsonValue> ParseNull() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return JsonValue();
    }
    return Error("invalid literal");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0' || !std::isfinite(value)) {
      return Error("invalid number '" + token + "'");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

const JsonValue& JsonValue::Get(const std::string& key) const {
  auto it = object_.find(key);
  if (it == object_.end()) return NullValue();
  return it->second;
}

JsonValue* JsonValue::GetMutable(const std::string& key) {
  auto it = object_.find(key);
  if (it == object_.end()) return nullptr;
  return &it->second;
}

double JsonValue::GetNumberOr(const std::string& key, double fallback) const {
  const JsonValue& v = Get(key);
  return v.is_number() ? v.as_number() : fallback;
}

int64_t JsonValue::GetIntOr(const std::string& key, int64_t fallback) const {
  const JsonValue& v = Get(key);
  return v.is_number() ? v.as_int() : fallback;
}

bool JsonValue::GetBoolOr(const std::string& key, bool fallback) const {
  const JsonValue& v = Get(key);
  return v.is_bool() ? v.as_bool() : fallback;
}

std::string JsonValue::GetStringOr(const std::string& key,
                                   const std::string& fallback) const {
  const JsonValue& v = Get(key);
  return v.is_string() ? v.as_string() : fallback;
}

void JsonValue::DumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber: {
      // Integers print without a fractional part.
      if (number_ == std::floor(number_) && std::abs(number_) < 1e15) {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%lld",
                      static_cast<long long>(number_));
        *out += buffer;
      } else {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.17g", number_);
        *out += buffer;
      }
      break;
    }
    case Type::kString:
      AppendEscaped(string_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        array_[i].DumpTo(out);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out->push_back(',');
        first = false;
        AppendEscaped(key, out);
        out->push_back(':');
        value.DumpTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

Result<JsonValue> ParseJson(std::string_view text) {
  Parser parser(text);
  return parser.Parse();
}

}  // namespace etude

#include "common/logging.h"

#include <atomic>

namespace etude {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()), level_(level) {
  if (enabled_) {
    // Keep only the basename to keep lines short.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::abort();
}

}  // namespace internal
}  // namespace etude

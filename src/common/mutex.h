#ifndef ETUDE_COMMON_MUTEX_H_
#define ETUDE_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace etude {

/// A std::mutex annotated as a Clang thread-safety capability.
///
/// libstdc++'s std::mutex carries no thread-safety attributes, so Clang's
/// `-Wthread-safety` analysis cannot track std::lock_guard acquisitions of
/// it. Wrapping it (the abseil/chromium idiom) makes every mutex-protected
/// member in the server statically checkable. Zero overhead: both methods
/// inline to the underlying lock/unlock.
class ETUDE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ETUDE_ACQUIRE() { mutex_.lock(); }
  void Unlock() ETUDE_RELEASE() { mutex_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// RAII lock for Mutex, visible to the thread-safety analysis.
class ETUDE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ETUDE_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  ~MutexLock() ETUDE_RELEASE() { mutex_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable working with Mutex while keeping the analysis
/// accurate: Wait requires the mutex held and returns with it held (the
/// internal unlock/relock is invisible to callers, as with abseil's
/// CondVar).
class CondVar {
 public:
  /// Blocks until notified (spurious wakeups possible — call in a loop
  /// re-checking the condition). Must be called with `mutex` held; the
  /// mutex is held again when the call returns.
  //
  // Adopts the caller-held mutex into a unique_lock for the wait, then
  // releases ownership back so the caller's scoped lock stays accurate.
  // The analysis cannot model this handover, hence the opt-out on the
  // implementation.
  void Wait(Mutex& mutex) ETUDE_REQUIRES(mutex) { WaitImpl(mutex); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  void WaitImpl(Mutex& mutex) ETUDE_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  std::condition_variable cv_;
};

}  // namespace etude

#endif  // ETUDE_COMMON_MUTEX_H_

#ifndef ETUDE_COMMON_STRINGS_H_
#define ETUDE_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace etude {

/// Splits `input` on `delimiter`; keeps empty fields.
std::vector<std::string> Split(std::string_view input, char delimiter);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// True if `input` begins with `prefix`.
bool StartsWith(std::string_view input, std::string_view prefix);

/// True if `input` ends with `suffix`.
bool EndsWith(std::string_view input, std::string_view suffix);

/// Lower-cases ASCII characters.
std::string ToLower(std::string_view input);

/// Formats a count with thousands separators, e.g. 10000000 -> "10,000,000".
std::string FormatWithCommas(int64_t value);

/// Formats a double with `digits` fractional digits.
std::string FormatDouble(double value, int digits);

/// Human-readable catalog size, e.g. 10000 -> "10k", 20000000 -> "20M".
std::string FormatCompact(int64_t value);

}  // namespace etude

#endif  // ETUDE_COMMON_STRINGS_H_

#ifndef ETUDE_COMMON_PARALLEL_H_
#define ETUDE_COMMON_PARALLEL_H_

#include <cstdint>
#include <type_traits>

namespace etude {

/// Degree of parallelism the tensor kernels may use. Resolution order:
/// SetNumThreads() (the `--threads` flag) > the ETUDE_NUM_THREADS
/// environment variable > std::thread::hardware_concurrency(). Always >= 1;
/// 1 means every ParallelFor body runs inline on the calling thread and no
/// worker threads are ever started.
int NumThreads();

/// Overrides the thread count for all subsequent parallel regions
/// (clamped to >= 1). Safe to call at any time; regions already running
/// finish with the count they started with.
void SetNumThreads(int n);

/// True on a thread currently executing inside a ParallelFor body (worker
/// or participating caller). Nested ParallelFor calls detect this and run
/// serially instead of deadlocking or oversubscribing.
bool InParallelRegion();

namespace parallel_detail {

/// Non-owning reference to a `void(int64_t begin, int64_t end)` callable.
/// ParallelFor blocks until every chunk ran, so the referenced callable
/// always outlives the region; avoiding std::function keeps the dispatch
/// allocation-free.
class RangeFunctionRef {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_reference_t<F>, RangeFunctionRef>>>
  RangeFunctionRef(F& f)  // NOLINT(google-explicit-constructor)
      : obj_(&f), call_(&Call<F>) {}

  void operator()(int64_t begin, int64_t end) const {
    call_(obj_, begin, end);
  }

 private:
  template <typename F>
  static void Call(void* obj, int64_t begin, int64_t end) {
    (*static_cast<F*>(obj))(begin, end);
  }

  void* obj_;
  void (*call_)(void*, int64_t, int64_t);
};

void ParallelForImpl(int64_t begin, int64_t end, int64_t grain,
                     RangeFunctionRef body);

}  // namespace parallel_detail

/// Runs `body(chunk_begin, chunk_end)` over a partition of [begin, end),
/// distributing chunks of at least `grain` indices across NumThreads()
/// threads (persistent pool, work-sharing via an atomic chunk counter).
/// Returns after every chunk completed.
///
/// The serial fallback — thread count 1, a range no larger than one grain,
/// or a call from inside another parallel region — invokes `body(begin,
/// end)` inline: zero allocation, zero synchronisation. `body` must be
/// safe to run concurrently on disjoint chunks and must not throw.
template <typename Body>
void ParallelFor(int64_t begin, int64_t end, int64_t grain, Body&& body) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  if (end - begin <= grain || NumThreads() <= 1 || InParallelRegion()) {
    body(begin, end);
    return;
  }
  parallel_detail::ParallelForImpl(begin, end, grain,
                                   parallel_detail::RangeFunctionRef(body));
}

}  // namespace etude

#endif  // ETUDE_COMMON_PARALLEL_H_

#ifndef ETUDE_COMMON_STATUS_H_
#define ETUDE_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace etude {

/// Error categories used across the framework. Mirrors the small set of
/// failure modes a benchmarking run can encounter.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
  kResourceExhausted,
  kIoError,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value, modelled after arrow::Status.
///
/// ETUDE never throws exceptions across module boundaries; fallible
/// operations return `Status` (or `Result<T>` when they produce a value).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "<Code>: <message>" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error, modelled after arrow::Result. Holds either a `T`
/// (status is OK) or an error `Status`.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` from Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status; aborts if given an OK status, because an
  /// OK Result must carry a value.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the contained value. Must only be called when `ok()`.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates an error status from an expression to the caller.
#define ETUDE_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::etude::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (0)

/// Assigns the value of a Result-returning expression to `lhs`, or
/// propagates its error status to the caller.
#define ETUDE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define ETUDE_ASSIGN_OR_RETURN_CAT(a, b) a##b
#define ETUDE_ASSIGN_OR_RETURN_NAME(a, b) ETUDE_ASSIGN_OR_RETURN_CAT(a, b)
#define ETUDE_ASSIGN_OR_RETURN(lhs, expr) \
  ETUDE_ASSIGN_OR_RETURN_IMPL(            \
      ETUDE_ASSIGN_OR_RETURN_NAME(_etude_result_, __LINE__), lhs, expr)

}  // namespace etude

#endif  // ETUDE_COMMON_STATUS_H_

#ifndef ETUDE_COMMON_THREAD_ANNOTATIONS_H_
#define ETUDE_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis annotations.
///
/// These macros attach lock-discipline contracts to mutexes and the data
/// they protect; compiling with Clang and `-Wthread-safety` (the ETUDE
/// build adds `-Wthread-safety -Werror` automatically, see the top-level
/// CMakeLists.txt) turns every violation — touching a GUARDED_BY member
/// without its mutex, calling a REQUIRES function unlocked, double
/// acquisition of an EXCLUDES mutex — into a compile error. Under GCC and
/// other compilers the macros expand to nothing.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && (!defined(SWIG))
#define ETUDE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ETUDE_THREAD_ANNOTATION(x)  // no-op
#endif

/// Marks a data member as protected by the given mutex: every read or
/// write must happen with that mutex held.
#define ETUDE_GUARDED_BY(x) ETUDE_THREAD_ANNOTATION(guarded_by(x))

/// Marks a pointer member whose *pointee* is protected by the mutex.
#define ETUDE_PT_GUARDED_BY(x) ETUDE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares that a function must be called with the mutex(es) held.
#define ETUDE_REQUIRES(...) \
  ETUDE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Declares that a function must be called with the mutex(es) NOT held
/// (it acquires them itself; re-entry would deadlock).
#define ETUDE_EXCLUDES(...) \
  ETUDE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the mutex(es) and does not release before returning.
#define ETUDE_ACQUIRE(...) \
  ETUDE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases mutex(es) the caller acquired.
#define ETUDE_RELEASE(...) \
  ETUDE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Marks a class as a lockable capability (std::mutex is pre-annotated in
/// libc++/libstdc++ when the analysis is on; this is for custom locks).
#define ETUDE_CAPABILITY(x) ETUDE_THREAD_ANNOTATION(capability(x))

/// Marks an RAII guard class that acquires in its constructor and releases
/// in its destructor.
#define ETUDE_SCOPED_CAPABILITY ETUDE_THREAD_ANNOTATION(scoped_lockable)

/// Declares a lock-acquisition ordering edge (acquire x before y).
#define ETUDE_ACQUIRED_BEFORE(...) \
  ETUDE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ETUDE_ACQUIRED_AFTER(...) \
  ETUDE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Returns a reference to the mutex protecting this value (for wrappers).
#define ETUDE_RETURN_CAPABILITY(x) \
  ETUDE_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables analysis inside one function. Use only for code
/// the analysis cannot model (e.g. conditional locking); justify in a
/// comment at each use site.
#define ETUDE_NO_THREAD_SAFETY_ANALYSIS \
  ETUDE_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // ETUDE_COMMON_THREAD_ANNOTATIONS_H_

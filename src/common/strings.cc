#include "common/strings.h"

#include <cctype>
#include <cstdio>

namespace etude {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view input, std::string_view prefix) {
  return input.size() >= prefix.size() &&
         input.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view input, std::string_view suffix) {
  return input.size() >= suffix.size() &&
         input.substr(input.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

std::string FormatWithCommas(int64_t value) {
  // Negate in unsigned space: -INT64_MIN overflows int64_t.
  const uint64_t magnitude =
      value < 0 ? ~static_cast<uint64_t>(value) + 1
                : static_cast<uint64_t>(value);
  std::string digits = std::to_string(magnitude);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (value < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string FormatCompact(int64_t value) {
  if (value >= 1000000 && value % 1000000 == 0) {
    return std::to_string(value / 1000000) + "M";
  }
  if (value >= 1000 && value % 1000 == 0) {
    return std::to_string(value / 1000) + "k";
  }
  return std::to_string(value);
}

}  // namespace etude

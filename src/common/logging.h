#ifndef ETUDE_COMMON_LOGGING_H_
#define ETUDE_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace etude {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are discarded.
/// Defaults to kInfo; benchmarks raise it to kWarning to keep output clean.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and emits it (with level tag) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process after emitting, used by ETUDE_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define ETUDE_LOG(level)                                            \
  ::etude::internal::LogMessage(::etude::LogLevel::k##level, __FILE__, \
                                __LINE__)

/// Invariant check: aborts (with file/line and message) when `cond` is
/// false. Used for programmer errors; recoverable failures return Status.
#define ETUDE_CHECK(cond)                                            \
  if (cond) {                                                         \
  } else /* NOLINT */                                                 \
    ::etude::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define ETUDE_DCHECK(cond) ETUDE_CHECK(cond)

}  // namespace etude

#endif  // ETUDE_COMMON_LOGGING_H_

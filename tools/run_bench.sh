#!/usr/bin/env bash
# Runs the full bench suite against an existing build tree and merges the
# per-binary JSON reports into one schema-versioned suite file:
#
#   tools/run_bench.sh [--quick] [--label NAME] [--build-dir DIR] [--out FILE]
#                      [--threads N]
#
#   --quick       pass --quick to every binary (CI tier, minutes not hours)
#   --label NAME  suite label; output defaults to BENCH_<label>.json at the
#                 repo root (label defaults to "quick" or "full")
#   --build-dir   build tree holding bench/ binaries (default: build)
#   --out FILE    override the output path entirely
#   --threads N   tensor-kernel worker count passed to every binary
#                 (recorded in the env block of the merged JSON)
#
# Each binary gets --json-out plus a shared --date/--git-sha so the merged
# environment block is consistent across the suite; the binaries themselves
# never read the clock, which keeps their measurements deterministic.
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
LABEL=""
BUILD_DIR="build"
OUT=""
THREADS=""
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) QUICK=1 ;;
    --label) LABEL="$2"; shift ;;
    --label=*) LABEL="${1#*=}" ;;
    --build-dir) BUILD_DIR="$2"; shift ;;
    --build-dir=*) BUILD_DIR="${1#*=}" ;;
    --out) OUT="$2"; shift ;;
    --out=*) OUT="${1#*=}" ;;
    --threads) THREADS="$2"; shift ;;
    --threads=*) THREADS="${1#*=}" ;;
    -h|--help)
      sed -n '2,18p' "$0" | sed 's/^# \{0,1\}//'
      exit 0 ;;
    *) echo "run_bench.sh: unknown flag $1 (see --help)" >&2; exit 2 ;;
  esac
  shift
done

if [ -z "${LABEL}" ]; then
  [ "${QUICK}" = 1 ] && LABEL="quick" || LABEL="full"
fi
[ -z "${OUT}" ] && OUT="BENCH_${LABEL}.json"

BENCH_DIR="${BUILD_DIR}/bench"
[ -d "${BENCH_DIR}" ] || {
  echo "FAIL: ${BENCH_DIR} not found; build first (cmake --build ${BUILD_DIR})" >&2
  exit 1
}

BINARIES=(
  bench_fig2_infra
  bench_fig3_micro
  bench_fig4_e2e
  bench_table1_cost
  bench_synth_validation
  bench_workload_gen
  bench_model_ops
  bench_ablation_ann
  bench_pareto_retrieval
  bench_ablation_batching
  bench_nonneural_baseline
  bench_cloud_costs
)

DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
GIT_SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

COMMON_ARGS=(--date "${DATE}" --git-sha "${GIT_SHA}")
[ "${QUICK}" = 1 ] && COMMON_ARGS+=(--quick)
[ -n "${THREADS}" ] && COMMON_ARGS+=(--threads "${THREADS}")

for BIN in "${BINARIES[@]}"; do
  EXE="${BENCH_DIR}/${BIN}"
  [ -x "${EXE}" ] || { echo "FAIL: ${EXE} not built" >&2; exit 1; }
  echo "=== ${BIN} ==="
  "${EXE}" "${COMMON_ARGS[@]}" --json-out "${TMP}/${BIN}.json" \
      > "${TMP}/${BIN}.log" 2>&1 || {
    echo "FAIL: ${BIN} exited non-zero; last lines of its log:" >&2
    tail -20 "${TMP}/${BIN}.log" >&2
    exit 1
  }
  tail -1 "${TMP}/${BIN}.log"
done

python3 - "${TMP}" "${OUT}" "${LABEL}" <<'PY'
import json, sys, os

tmp, out, label = sys.argv[1], sys.argv[2], sys.argv[3]
reports = []
for name in sorted(os.listdir(tmp)):
    if not name.endswith(".json"):
        continue
    with open(os.path.join(tmp, name)) as f:
        doc = json.load(f)
    if doc.get("schema_version") != 1:
        sys.exit(f"FAIL: {name} has schema_version {doc.get('schema_version')}")
    reports.append(doc)

series = []
for doc in reports:
    for entry in doc["series"]:
        entry = dict(entry)
        entry["binary"] = doc["binary"]
        series.append(entry)

merged = {
    "schema_version": 1,
    "label": label,
    "env": reports[0]["env"] if reports else {},
    "binaries": [doc["binary"] for doc in reports],
    "series": series,
}
with open(out, "w") as f:
    json.dump(merged, f, indent=1, sort_keys=True)
    f.write("\n")
print(f"merged {len(series)} series from {len(reports)} binaries into {out}")
PY

#!/usr/bin/env bash
# CI-runnable correctness gate: builds and tests ETUDE under every
# static/dynamic analysis mode this machine's toolchain supports.
#
#   tools/check.sh            # release + asan-ubsan + tsan (+ clang-tsa)
#   tools/check.sh tsan       # a single preset
#
# Every mode uses its own build-<preset>/ tree (gitignored). Sanitizer
# reports make ctest fail: ASan/TSan abort on error by default and UBSan
# is built with -fno-sanitize-recover. Exits nonzero on the first failing
# mode.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

# ASan: fail on leaks too. TSan: second-deadlock detection on.
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

run_mode() {
  local preset="$1"
  shift
  echo "=== [${preset}] configure ==="
  cmake -B "build-${preset}" -S . "$@" >/dev/null
  echo "=== [${preset}] build ==="
  cmake --build "build-${preset}" -j "${JOBS}"
  echo "=== [${preset}] ctest ==="
  ctest --test-dir "build-${preset}" --output-on-failure -j "${JOBS}"
  echo "=== [${preset}] OK ==="
}

mode_args() {
  case "$1" in
    release)    echo "-DCMAKE_BUILD_TYPE=Release" ;;
    asan-ubsan) echo "-DCMAKE_BUILD_TYPE=RelWithDebInfo -DETUDE_SANITIZE=address,undefined" ;;
    tsan)       echo "-DCMAKE_BUILD_TYPE=RelWithDebInfo -DETUDE_SANITIZE=thread" ;;
    clang-tsa)  echo "-DCMAKE_BUILD_TYPE=Release -DCMAKE_CXX_COMPILER=clang++" ;;
    *) echo "unknown mode: $1 (expected release|asan-ubsan|tsan|clang-tsa)" >&2; return 1 ;;
  esac
}

if [ "$#" -gt 0 ]; then
  MODES=("$@")
else
  MODES=(release asan-ubsan tsan)
  # The thread-safety analysis needs clang; include it when available.
  if command -v clang++ >/dev/null 2>&1; then
    MODES+=(clang-tsa)
  else
    echo "NOTE: clang++ not found; skipping the clang-tsa (-Wthread-safety) mode" >&2
  fi
fi

for mode in "${MODES[@]}"; do
  # Assign first: a failing substitution in an argument list would be
  # ignored, but a failing assignment trips `set -e`.
  args="$(mode_args "${mode}")"
  # shellcheck disable=SC2086
  run_mode "${mode}" ${args}
done

echo "All modes passed: ${MODES[*]}"

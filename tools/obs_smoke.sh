#!/usr/bin/env bash
# End-to-end smoke test of the observability surface, run against an
# existing build tree (default: build/):
#
#   tools/obs_smoke.sh [build-dir]
#
# Covers:
#  - `etude profile` prints a per-op breakdown for eager and jit modes;
#  - `--trace-out` emits Chrome trace-event JSON with the required keys;
#  - misspelled CLI flags fail loudly;
#  - `etude serve` answers /metrics in JSON by default and in parseable
#    Prometheus text format under `Accept: text/plain`;
#  - /healthz reports readiness plus the served model, and /slo reports
#    the windowed SLO view with per-phase attribution.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
ETUDE="${BUILD_DIR}/src/tools/etude"
[ -x "${ETUDE}" ] || { echo "FAIL: ${ETUDE} not built" >&2; exit 1; }

TMP="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "${SERVE_PID}" ] && kill "${SERVE_PID}" 2>/dev/null || true
  rm -rf "${TMP}"
}
trap cleanup EXIT

echo "=== profile: per-op table (eager + jit) ==="
"${ETUDE}" profile GRU4Rec --mode both --catalog 2000 --requests 8 \
    > "${TMP}/profile.txt"
grep -q "% of inference" "${TMP}/profile.txt"
grep -q "GFLOP/s" "${TMP}/profile.txt"
grep -q "(eager)" "${TMP}/profile.txt"
grep -q "(jit)" "${TMP}/profile.txt"
grep -q "Mips" "${TMP}/profile.txt"

echo "=== profile: --trace-out writes Chrome trace JSON ==="
"${ETUDE}" profile NARM --mode jit --catalog 1000 --requests 4 \
    --trace-out "${TMP}/trace.json" > /dev/null 2>&1
python3 - "${TMP}/trace.json" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))
assert isinstance(events, list) and events, "trace must be a non-empty array"
for event in events:
    assert {"name", "ph", "ts", "pid", "tid"} <= set(event), event
    assert event["ph"] in ("X", "M"), event
assert any(e.get("cat") == "op" for e in events), "no op-level spans in trace"
print(f"trace OK: {len(events)} events")
EOF

echo "=== CLI: unknown flags are errors ==="
if "${ETUDE}" profile GRU4Rec --no-such-flag 1 2>/dev/null; then
  echo "FAIL: unknown flag was silently accepted" >&2
  exit 1
fi

echo "=== serve: /metrics content negotiation ==="
PORT=$((20000 + RANDOM % 20000))
"${ETUDE}" serve --model GRU4Rec --catalog 2000 --port "${PORT}" \
    --slo-p90-us 50000 --seconds 30 > /dev/null &
SERVE_PID=$!
for _ in $(seq 1 50); do
  curl -fs "http://127.0.0.1:${PORT}/healthz" > /dev/null 2>&1 && break
  sleep 0.2
done
curl -fs -X POST "http://127.0.0.1:${PORT}/predictions/gru4rec" \
    -d '{"session":[1,2,3]}' | grep -q '"items"'

# Default: JSON (the format the load generator consumes).
curl -fs "http://127.0.0.1:${PORT}/metrics" \
    | python3 -c 'import json,sys; m = json.load(sys.stdin); \
assert m["predictions_served"] == 1, m'

# Accept: text/plain: Prometheus text exposition format. Validate every
# line as a comment, a blank, or `name{labels} value`.
curl -fs -H "Accept: text/plain" "http://127.0.0.1:${PORT}/metrics" \
    > "${TMP}/metrics.prom"
grep -q "^# TYPE etude_predictions_total counter$" "${TMP}/metrics.prom"
grep -q "^# TYPE etude_inference_latency_us histogram$" "${TMP}/metrics.prom"
grep -q "_bucket{le=\"+Inf\"}" "${TMP}/metrics.prom"
if grep -Evq '^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE.+-]+|[+-]Inf|NaN|)$' \
    "${TMP}/metrics.prom"; then
  echo "FAIL: malformed Prometheus line:" >&2
  grep -Ev '^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE.+-]+|[+-]Inf|NaN|)$' \
      "${TMP}/metrics.prom" >&2
  exit 1
fi

echo "=== metrics-lint: the scrape passes the exposition-format linter ==="
"${ETUDE}" metrics-lint "${TMP}/metrics.prom"
# And the linter actually rejects garbage.
printf 'etude_bad{unclosed="x 1\n' > "${TMP}/bad.prom"
if "${ETUDE}" metrics-lint "${TMP}/bad.prom" 2>/dev/null; then
  echo "FAIL: metrics-lint accepted a malformed scrape" >&2
  exit 1
fi

echo "=== serve: /healthz readiness payload ==="
curl -fs "http://127.0.0.1:${PORT}/healthz" \
    | python3 -c 'import json,sys; h = json.load(sys.stdin); \
assert h["status"] == "ready", h; \
assert h["model"] == "GRU4Rec", h; \
assert h["uptime_seconds"] >= 0, h'

echo "=== serve: /slo windowed view with phase attribution ==="
curl -fs "http://127.0.0.1:${PORT}/slo" > "${TMP}/slo.json"
python3 - "${TMP}/slo.json" <<'EOF'
import json, sys
slo = json.load(open(sys.argv[1]))
assert slo["enabled"] is True, slo
assert slo["requests"] >= 1, slo
assert slo["slo"]["target_p90_us"] == 50000, slo
assert "burn_rate" in slo["slo"], slo
assert {"parse", "inference", "serialize"} <= set(slo["phases"]), slo
assert slo["slowest"] and slo["slowest"][0]["trace_id"], slo
print("slo OK: %d request(s) in window" % slo["requests"])
EOF

echo "=== serve: /debug/tail-traces is Chrome trace JSON ==="
curl -fs "http://127.0.0.1:${PORT}/debug/tail-traces" \
    | python3 -c 'import json,sys; events = json.load(sys.stdin); \
assert isinstance(events, list) and events, "expected tail spans"; \
assert any(e["name"] == "request" for e in events), events'

kill "${SERVE_PID}" 2>/dev/null || true
SERVE_PID=""

echo "observability smoke: all checks passed"

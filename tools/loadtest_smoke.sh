#!/usr/bin/env bash
# End-to-end smoke test of the real-server load harness, run against an
# existing build tree (default: build/):
#
#   tools/loadtest_smoke.sh [build-dir]
#
# Serves a small model, drives it with `etude loadtest` for ~2 seconds,
# and checks that:
#  - the loadtest exits cleanly with zero errors;
#  - --json-out writes a well-formed schema-version-1 timeline report
#    (summary + per-tick array + slowest exemplars with trace ids);
#  - the server's /slo and /healthz endpoints answer 2xx with the
#    traffic the run produced.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
ETUDE="${BUILD_DIR}/src/tools/etude"
[ -x "${ETUDE}" ] || { echo "FAIL: ${ETUDE} not built" >&2; exit 1; }

TMP="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "${SERVE_PID}" ] && kill "${SERVE_PID}" 2>/dev/null || true
  rm -rf "${TMP}"
}
trap cleanup EXIT

PORT=$((20000 + RANDOM % 20000))

echo "=== serve: start a small model with SLO tracking ==="
"${ETUDE}" serve --model GRU4Rec --catalog 2000 --port "${PORT}" \
    --slo-p90-us 100000 --seconds 60 > /dev/null &
SERVE_PID=$!

echo "=== loadtest: ~2 s open-loop run against the live server ==="
# --catalog must not exceed the server's: session item ids outside the
# served catalog are rejected as 400s and would count as errors here.
# The SLO gates are set loose enough to always pass; their exit code is
# exercised separately below.
"${ETUDE}" loadtest --port "${PORT}" --rps 40 --seconds 2 \
    --concurrency 2 --catalog 2000 --wait-s 10 \
    --max-error-rate 0.5 \
    --json-out "${TMP}/loadtest.json" \
    | tee "${TMP}/loadtest.txt"
grep -q "p90" "${TMP}/loadtest.txt"
# Cross-hop attribution of the slowest requests, joined with the
# server's /slo exemplars via the propagated x-trace-id.
grep -q "<- dominant" "${TMP}/loadtest.txt"
grep -Eq "trace lt-[0-9]+-[0-9]+:" "${TMP}/loadtest.txt"

echo "=== loadtest: an impossible p90 gate fails with exit 3 ==="
set +e
"${ETUDE}" loadtest --port "${PORT}" --rps 20 --seconds 1 \
    --concurrency 2 --catalog 2000 --max-p90-us 1 > /dev/null 2>&1
GATE_RC=$?
set -e
[ "${GATE_RC}" -eq 3 ] || {
  echo "FAIL: --max-p90-us 1 should exit 3, got ${GATE_RC}" >&2; exit 1; }

echo "=== loadtest: timeline JSON is well-formed ==="
python3 - "${TMP}/loadtest.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["schema_version"] == 1, report["schema_version"]
assert report["binary"] == "etude_loadtest", report["binary"]
by_name = {s["name"]: s for s in report["series"]}
latency = by_name["loadtest_latency_us"]
assert latency["summary"]["count"] > 0, latency
ticks = latency["timeline"]
assert ticks, "timeline must have at least one tick"
for tick in ticks:
    assert {"tick", "sent", "ok", "errors", "p50", "p90", "p99",
            "mean"} <= set(tick), tick
errors = by_name["loadtest_errors"]["value"]
assert errors == 0, f"loadtest saw {errors} errors"
assert report["slowest"] and report["slowest"][0]["trace_id"], report
# The loadgen-minted trace ids survive the round trip through the server.
assert report["slowest"][0]["trace_id"].startswith("lt-"), report["slowest"]
paths = report["critical_paths"]
assert paths, "expected critical-path reports for the slowest requests"
for path in paths:
    hops = {hop["name"] for hop in path["hops"]}
    assert {"queue", "parse", "inference", "serialize"} <= hops, path
    assert path["dominant"] in hops, path
    assert path["client_total_us"] >= path["server_total_us"], path
print(f"timeline OK: {len(ticks)} tick(s), "
      f"{latency['summary']['count']} ok request(s)")
EOF

echo "=== server: /slo and /healthz answer 2xx after the run ==="
curl -fs "http://127.0.0.1:${PORT}/slo" \
    | python3 -c 'import json,sys; slo = json.load(sys.stdin); \
assert slo["enabled"] is True, slo; \
assert slo["requests"] > 0, slo'
curl -fs "http://127.0.0.1:${PORT}/healthz" \
    | python3 -c 'import json,sys; h = json.load(sys.stdin); \
assert h["status"] == "ready", h'

kill "${SERVE_PID}" 2>/dev/null || true
SERVE_PID=""

echo "loadtest smoke: all checks passed"

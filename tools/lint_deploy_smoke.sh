#!/usr/bin/env bash
# Smoke test of the static SLO-feasibility linter, run against an
# existing build tree (default: build/):
#
#   tools/lint_deploy_smoke.sh [build-dir]
#
# Covers, with exit-code assertions:
#  - a feasible deployment spec is accepted (exit 0) and the --frontier
#    table renders;
#  - a statically-infeasible spec is rejected (exit 3) with a
#    counterexample line on stderr;
#  - usage errors (missing spec, unknown flag) exit 2.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
ETUDE="${BUILD_DIR}/src/tools/etude"
[ -x "${ETUDE}" ] || { echo "FAIL: ${ETUDE} not built" >&2; exit 1; }

TMP="$(mktemp -d)"
cleanup() { rm -rf "${TMP}"; }
trap cleanup EXIT

echo "=== lint-deploy: feasible spec accepted (exit 0) ==="
"${ETUDE}" lint-deploy examples/specs/lint_deploy_feasible.json \
    --frontier > "${TMP}/feasible.txt"
grep -q "feasible" "${TMP}/feasible.txt"
grep -q "verdict" "${TMP}/feasible.txt"  # the frontier table rendered

echo "=== lint-deploy: infeasible spec rejected (exit 3) ==="
rc=0
"${ETUDE}" lint-deploy examples/specs/lint_deploy_infeasible.json \
    > "${TMP}/infeasible.txt" 2> "${TMP}/infeasible.err" || rc=$?
[ "${rc}" -eq 3 ] || {
  echo "FAIL: expected exit 3 for the infeasible spec, got ${rc}" >&2
  exit 1
}
grep -q "rejected:" "${TMP}/infeasible.err"
grep -Eq "capacity:|latency:" "${TMP}/infeasible.err"

echo "=== lint-deploy: usage errors exit 2 ==="
rc=0
"${ETUDE}" lint-deploy > /dev/null 2>&1 || rc=$?
[ "${rc}" -eq 2 ] || { echo "FAIL: missing spec should exit 2" >&2; exit 1; }
rc=0
"${ETUDE}" lint-deploy examples/specs/lint_deploy_feasible.json \
    --no-such-flag > /dev/null 2>&1 || rc=$?
[ "${rc}" -eq 2 ] || { echo "FAIL: unknown flag should exit 2" >&2; exit 1; }

echo "lint-deploy smoke: all checks passed"

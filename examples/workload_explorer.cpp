// Workload explorer: the data-scientist side of ETUDE's synthetic
// workload pipeline (paper Sec. II, "Synthetic session generation").
//
//  1. Take a click log (here: the built-in generative reference model —
//     in production, your own log).
//  2. Estimate the two marginal statistics alpha_l (session lengths) and
//     alpha_c (click counts) once.
//  3. Generate privacy-safe synthetic sessions from just those two
//     numbers with Algorithm 1, and verify the key statistics carry over.
//
// Usage: workload_explorer [catalog_size] [num_clicks]

#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/logging.h"
#include "common/strings.h"
#include "metrics/report.h"
#include "workload/clicklog.h"
#include "workload/session_generator.h"

namespace {

void PrintLengthHistogram(const std::vector<etude::workload::Session>& log,
                          const char* label) {
  std::map<int64_t, int64_t> histogram;
  for (const auto& session : log) {
    ++histogram[std::min<int64_t>(
        static_cast<int64_t>(session.items.size()), 10)];
  }
  std::printf("%s session lengths: ", label);
  for (int64_t l = 1; l <= 10; ++l) {
    const double share = histogram.count(l) > 0
                             ? 100.0 * static_cast<double>(histogram[l]) /
                                   static_cast<double>(log.size())
                             : 0.0;
    std::printf("%lld%s:%4.1f%% ", static_cast<long long>(l),
                l == 10 ? "+" : "", share);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  etude::SetLogLevel(etude::LogLevel::kWarning);
  const int64_t catalog = argc > 1 ? std::atoll(argv[1]) : 100000;
  const int64_t clicks = argc > 2 ? std::atoll(argv[2]) : 200000;

  // 1. A "production" click log.
  etude::workload::ClickLogModelConfig log_config;
  log_config.catalog_size = catalog;
  auto reference = etude::workload::RealClickLogModel::Create(log_config,
                                                              99);
  ETUDE_CHECK(reference.ok());
  const auto real_log = reference->Generate(clicks);
  std::printf("reference click log: %zu sessions, %s clicks over %s items\n",
              real_log.size(), etude::FormatWithCommas(clicks).c_str(),
              etude::FormatWithCommas(catalog).c_str());

  // 2. Estimate the marginals once.
  auto stats = etude::workload::EstimateWorkloadStats(real_log, catalog);
  ETUDE_CHECK(stats.ok()) << stats.status().ToString();
  std::printf(
      "estimated marginals: alpha_l = %.3f, alpha_c = %.3f "
      "(these two numbers are all ETUDE needs)\n\n",
      stats->session_length_alpha, stats->click_count_alpha);

  // 3. Regenerate synthetically and compare.
  auto generator =
      etude::workload::SessionGenerator::Create(catalog, *stats, 7);
  ETUDE_CHECK(generator.ok());
  const auto synthetic_log = generator->GenerateSessions(clicks);

  PrintLengthHistogram(real_log, "reference");
  PrintLengthHistogram(synthetic_log, "synthetic");

  const auto real_summary =
      etude::workload::SummarizeClickLog(real_log, catalog);
  const auto synthetic_summary =
      etude::workload::SummarizeClickLog(synthetic_log, catalog);
  etude::metrics::Table table({"statistic", "reference", "synthetic"});
  table.AddRow({"sessions", std::to_string(real_summary.num_sessions),
                std::to_string(synthetic_summary.num_sessions)});
  table.AddRow({"mean session length",
                etude::FormatDouble(real_summary.mean_session_length, 2),
                etude::FormatDouble(
                    synthetic_summary.mean_session_length, 2)});
  table.AddRow({"p90 session length",
                etude::FormatDouble(real_summary.p90_session_length, 1),
                etude::FormatDouble(
                    synthetic_summary.p90_session_length, 1)});
  table.AddRow({"top-1% item click share",
                etude::FormatDouble(real_summary.top1pct_click_share, 3),
                etude::FormatDouble(
                    synthetic_summary.top1pct_click_share, 3)});
  table.AddRow({"popularity gini",
                etude::FormatDouble(real_summary.gini_coefficient, 3),
                etude::FormatDouble(
                    synthetic_summary.gini_coefficient, 3)});
  std::printf("\n%s", table.ToText().c_str());

  std::printf("\nfirst three synthetic sessions:\n");
  auto preview =
      etude::workload::SessionGenerator::Create(catalog, *stats, 7);
  for (int i = 0; i < 3; ++i) {
    const auto session = preview->NextSession();
    std::printf("  session %lld:", static_cast<long long>(
        session.session_id));
    for (const int64_t item : session.items) {
      std::printf(" %lld", static_cast<long long>(item));
    }
    std::printf("\n");
  }
  return 0;
}

// Real serving demo: starts the EtudeServe HTTP inference server on
// localhost with a genuinely-initialised SBR model, then acts as its own
// client — health probe, a handful of prediction requests over real
// sockets, and the metrics endpoint. This is the paper's serving stack
// (Actix + tch-rs, here: epoll + the C++ tensor engine) end to end, with
// no simulation involved.
//
// Usage: serve_and_query [model] [catalog_size]
// Defaults: NARM over a 20,000-item catalog.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "common/strings.h"
#include "models/model_factory.h"
#include "serving/etude_serve.h"
#include "workload/session_generator.h"

namespace {

/// Minimal blocking HTTP client (one request per call).
std::string HttpCall(uint16_t port, const std::string& method,
                     const std::string& target, const std::string& body,
                     int64_t* latency_us) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&address),
              sizeof(address)) != 0) {
    close(fd);
    return "";
  }
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "host: localhost\r\nconnection: close\r\n";
  if (!body.empty()) {
    wire += "content-length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "\r\n" + body;

  const auto start = std::chrono::steady_clock::now();
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = write(fd, wire.data() + sent, wire.size() - sent);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = read(fd, chunk, sizeof(chunk))) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  const auto end = std::chrono::steady_clock::now();
  if (latency_us != nullptr) {
    *latency_us = std::chrono::duration_cast<std::chrono::microseconds>(
                      end - start)
                      .count();
  }
  close(fd);
  return response;
}

std::string BodyOf(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? response : response.substr(pos + 4);
}

}  // namespace

int main(int argc, char** argv) {
  etude::SetLogLevel(etude::LogLevel::kWarning);
  const std::string model_name = argc > 1 ? argv[1] : "NARM";
  const int64_t catalog = argc > 2 ? std::atoll(argv[2]) : 20000;

  etude::models::ModelConfig config;
  config.catalog_size = catalog;
  auto model = etude::models::CreateModel(model_name, config);
  if (!model.ok()) {
    std::fprintf(stderr, "cannot create model: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %s (C=%s, d=%lld, randomly initialised)\n",
              std::string((*model)->name()).c_str(),
              etude::FormatWithCommas(catalog).c_str(),
              static_cast<long long>((*model)->config().embedding_dim));

  etude::serving::EtudeServe serve(model->get(),
                                   etude::serving::EtudeServeConfig{});
  const etude::Status status = serve.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "server failed to start: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("EtudeServe listening on 127.0.0.1:%u\n\n", serve.port());

  // Readiness probe, as Kubernetes would issue it.
  std::printf("GET /healthz -> %s\n",
              BodyOf(HttpCall(serve.port(), "GET", "/healthz", "",
                              nullptr))
                  .c_str());

  // Replay a few synthetic sessions as real HTTP prediction requests.
  auto sessions = etude::workload::SessionGenerator::Create(
      catalog, etude::workload::WorkloadStats{}, 2026);
  ETUDE_CHECK(sessions.ok());
  const std::string route =
      "/predictions/" + etude::ToLower((*model)->name());
  for (int i = 0; i < 5; ++i) {
    const etude::workload::Session session = sessions->NextSession();
    std::string body = "{\"session\": [";
    for (size_t j = 0; j < session.items.size(); ++j) {
      if (j > 0) body += ", ";
      body += std::to_string(session.items[j]);
    }
    body += "]}";
    int64_t latency_us = 0;
    const std::string response =
        HttpCall(serve.port(), "POST", route, body, &latency_us);
    std::printf("POST %s  session=%zu clicks  %lld us end-to-end\n",
                route.c_str(), session.items.size(),
                static_cast<long long>(latency_us));
    std::printf("  -> %s\n", BodyOf(response).substr(0, 120).c_str());
  }

  std::printf("\nGET /metrics -> %s\n",
              BodyOf(HttpCall(serve.port(), "GET", "/metrics", "",
                              nullptr))
                  .c_str());
  serve.Stop();
  return 0;
}

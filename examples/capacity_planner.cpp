// Capacity planner: the Table-I workflow for a custom use case.
//
// A data scientist describes their shop (catalog size, target throughput,
// latency budget) and ETUDE searches, per model and instance type, for the
// smallest deployment that meets the constraints — then recommends the
// most cost-efficient option.
//
// Usage: capacity_planner [catalog_size] [target_rps] [p90_limit_ms]
// Defaults: 250,000 items at 300 req/s under 50 ms p90.

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"
#include "core/cost_planner.h"
#include "metrics/report.h"

int main(int argc, char** argv) {
  etude::SetLogLevel(etude::LogLevel::kWarning);

  etude::core::Scenario scenario;
  scenario.name = "my-shop";
  scenario.catalog_size = argc > 1 ? std::atoll(argv[1]) : 250000;
  scenario.target_rps = argc > 2 ? std::atof(argv[2]) : 300.0;
  scenario.p90_limit_ms = argc > 3 ? std::atof(argv[3]) : 50.0;
  if (scenario.catalog_size < 1 || scenario.target_rps <= 0) {
    std::fprintf(stderr,
                 "usage: capacity_planner [catalog] [rps] [p90_ms]\n");
    return 1;
  }

  std::printf(
      "Planning deployments for %s items at %.0f req/s (p90 <= %.0f ms)\n\n",
      etude::FormatWithCommas(scenario.catalog_size).c_str(),
      scenario.target_rps, scenario.p90_limit_ms);

  etude::core::PlannerOptions options;
  options.duration_s = 60;
  options.ramp_s = 30;
  options.repetitions = 3;
  etude::core::CostPlanner planner(options);

  const std::vector<etude::sim::DeviceSpec> devices = {
      etude::sim::DeviceSpec::Cpu(), etude::sim::DeviceSpec::GpuT4(),
      etude::sim::DeviceSpec::GpuA100()};

  etude::metrics::Table table({"model", "instance", "amount", "cost/month",
                               "p90 [ms]", "achieved req/s"});
  const etude::core::DeploymentPlan* overall_best = nullptr;
  std::string best_model;
  std::vector<etude::core::ModelPlan> plans;

  for (const auto model : etude::models::HealthyModelKinds()) {
    auto plan = planner.PlanModel(scenario, model, devices);
    if (!plan.ok()) {
      std::fprintf(stderr, "planning failed: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    plans.push_back(std::move(plan).value());
    const etude::core::ModelPlan& model_plan = plans.back();
    for (const auto& option : model_plan.options) {
      if (!option.feasible()) continue;
      std::string cost = "$";
      cost += etude::FormatDouble(option.monthly_cost_usd, 0);
      std::vector<std::string> row;
      row.emplace_back(etude::models::ModelKindToString(model));
      row.push_back(option.device.name);
      row.push_back(std::to_string(option.replicas));
      row.push_back(std::move(cost));
      row.push_back(
          etude::FormatDouble(option.report.load.steady_p90_ms, 1));
      row.push_back(
          etude::FormatDouble(option.report.load.steady_achieved_rps, 0));
      table.AddRow(std::move(row));
    }
    const auto* cheapest = model_plan.CheapestFeasible();
    if (cheapest != nullptr &&
        (overall_best == nullptr ||
         cheapest->monthly_cost_usd < overall_best->monthly_cost_usd)) {
      overall_best = cheapest;
      best_model = std::string(etude::models::ModelKindToString(model));
    }
  }

  std::printf("%s\n", table.ToText().c_str());
  if (overall_best == nullptr) {
    std::printf(
        "No feasible deployment found within %d instances per type; relax "
        "the constraints or shrink the catalog.\n",
        options.max_replicas);
    return 0;
  }
  std::printf(
      "Recommendation: %s on %d x %s at $%.0f/month (p90 %.1f ms at "
      "%.0f req/s).\n",
      best_model.c_str(), overall_best->replicas,
      overall_best->device.name.c_str(), overall_best->monthly_cost_usd,
      overall_best->report.load.steady_p90_ms,
      overall_best->report.load.steady_achieved_rps);
  return 0;
}

// Quickstart: evaluate one SBR model under one deployment option.
//
// This is the ETUDE workflow of Fig. 1 in miniature: declare the workload
// statistics and constraints, pick a model and hardware, run the deployed
// benchmark, and read off whether the deployment holds up.
//
// Usage: quickstart [path/to/spec.json]
// Without an argument a built-in spec (GRU4Rec on a GPU-T4 for a
// 1M-item catalog at 500 req/s) is used.

#include <cstdio>
#include <string>

#include "common/logging.h"
#include "core/benchmark.h"
#include "core/spec.h"

namespace {

constexpr const char kDefaultSpec[] = R"({
  "scenario": {
    "name": "quickstart-fashion",
    "catalog_size": 1000000,
    "target_rps": 500,
    "p90_limit_ms": 50,
    "session_length_alpha": 2.2,
    "click_count_alpha": 1.8
  },
  "model": "GRU4Rec",
  "mode": "jit",
  "device": "gpu-t4",
  "replicas": 1,
  "duration_s": 120,
  "ramp_s": 60
})";

}  // namespace

int main(int argc, char** argv) {
  etude::SetLogLevel(etude::LogLevel::kWarning);

  etude::Result<etude::core::BenchmarkSpec> spec =
      argc > 1 ? etude::core::LoadBenchmarkSpec(argv[1])
               : etude::core::ParseBenchmarkSpec(kDefaultSpec);
  if (!spec.ok()) {
    std::fprintf(stderr, "failed to load spec: %s\n",
                 spec.status().ToString().c_str());
    return 1;
  }

  std::printf("ETUDE quickstart\n");
  std::printf("  scenario : %s (C=%lld items, target %.0f req/s)\n",
              spec->scenario.name.c_str(),
              static_cast<long long>(spec->scenario.catalog_size),
              spec->scenario.target_rps);
  std::printf("  model    : %s (%s)\n",
              std::string(etude::models::ModelKindToString(spec->model))
                  .c_str(),
              spec->mode == etude::models::ExecutionMode::kJit ? "JIT"
                                                               : "eager");
  std::printf("  hardware : %d x %s\n\n", spec->replicas,
              spec->device.name.c_str());

  etude::Result<etude::core::BenchmarkReport> report =
      etude::core::RunDeployedBenchmark(*spec);
  if (!report.ok()) {
    std::fprintf(stderr, "benchmark failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("deployment ready after %lld ms\n",
              static_cast<long long>(report->ready_after_ms));
  std::printf("steady state (final quarter of the run):\n");
  std::printf("  p50 / p90 / p99 latency : %.2f / %.2f / %.2f ms\n",
              report->load.steady_p50_ms, report->load.steady_p90_ms,
              report->load.steady_p99_ms);
  std::printf("  achieved throughput     : %.0f req/s (target %.0f)\n",
              report->load.steady_achieved_rps, report->load.target_rps);
  std::printf("  error rate              : %.2f%%\n",
              100.0 * report->load.steady_error_rate);
  std::printf("  monthly cost            : $%.2f\n",
              report->monthly_cost_usd);
  std::printf("\nverdict: %s\n",
              report->meets_slo ? "deployment MEETS the constraints"
                                : "deployment VIOLATES the constraints");
  return 0;
}

// Ablation: latency/quality trade-offs for the catalog scan — the two
// techniques the paper's conclusion proposes to explore ("model
// quantisation or approximate nearest neighbor search", Sec. IV refs
// [36], [37]) implemented and measured for real on the CPU tensor engine.
//
// For a 200k-item catalog (d = 22) we compare, over real queries from a
// GRU4Rec model:
//   * exact fp32 MIPS (the baseline every SBR model runs today),
//   * int8-quantised scan (4x less memory traffic),
//   * IVF-flat with nprobe in {1, 2, 4, 8, 16, 32} (scans ~nprobe/nlist
//     of the catalog).
// Reported: measured per-query latency, recall@21 against the exact scan,
// and the projected CPU p90 at the Fashion scenario (1M items) obtained
// by scaling the cost model's scan bytes by the measured ratio.

#include <chrono>
#include <functional>
#include <cstdio>
#include <vector>

#include "ann/ivf_index.h"
#include "bench/harness.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "metrics/report.h"
#include "models/model_factory.h"
#include "sim/device.h"
#include "tensor/quantized.h"
#include "workload/session_generator.h"

namespace {

using Clock = std::chrono::steady_clock;

double MeasureUs(const std::function<void()>& fn, int repetitions) {
  const auto start = Clock::now();
  for (int i = 0; i < repetitions; ++i) fn();
  const auto end = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
             .count() /
         1000.0 / repetitions;
}

}  // namespace

int main(int argc, char** argv) {
  etude::SetLogLevel(etude::LogLevel::kWarning);
  etude::bench::BenchRun run =
      etude::bench::BenchRun::CreateOrExit("bench_ablation_ann", argc, argv);
  constexpr int64_t kCatalog = 200000;
  constexpr int64_t kTopK = 21;
  const int kQueries = run.quick() ? 4 : 12;

  std::printf(
      "=== Ablation: quantisation & ANN for the catalog scan (paper "
      "Sec. IV future work) ===\nC=%s, d=%lld, top-%lld, real CPU "
      "measurements\n\n",
      etude::FormatWithCommas(kCatalog).c_str(),
      static_cast<long long>(etude::models::HeuristicEmbeddingDim(kCatalog)),
      static_cast<long long>(kTopK));

  etude::models::ModelConfig config;
  config.catalog_size = kCatalog;
  config.top_k = kTopK;
  auto model = etude::models::CreateModel(
      etude::models::ModelKind::kGru4Rec, config);
  ETUDE_CHECK(model.ok());
  const etude::tensor::Tensor& items = (*model)->item_embeddings();

  // Real session queries.
  auto sessions = etude::workload::SessionGenerator::Create(
      kCatalog, etude::workload::WorkloadStats{}, run.seed_or(31));
  ETUDE_CHECK(sessions.ok());
  std::vector<etude::tensor::Tensor> queries;
  for (int q = 0; q < kQueries; ++q) {
    queries.push_back(
        (*model)->EncodeSession(sessions->NextSession().items));
  }

  // Exact baselines per query.
  std::vector<etude::tensor::TopKResult> exact(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    exact[q] = etude::tensor::Mips(items, queries[q], kTopK);
  }

  const auto quantized = etude::tensor::QuantizedMatrix::FromTensor(items);
  etude::ann::IvfIndex::BuildOptions ivf_options;
  ivf_options.nlist = 512;
  auto ivf = etude::ann::IvfIndex::Build(items, ivf_options);
  ETUDE_CHECK(ivf.ok());

  etude::metrics::Table table({"scan method", "latency/query [ms]",
                               "recall@21", "scan fraction",
                               "projected Fashion CPU p90 [ms]"});

  // Projection: the cost model's Fashion CPU p90 scales with the scanned
  // bytes; the exact scan is the 100% reference.
  const etude::sim::DeviceSpec cpu = etude::sim::DeviceSpec::Cpu();
  etude::models::ModelConfig fashion_config = config;
  fashion_config.catalog_size = 1000000;
  fashion_config.materialize_embeddings = false;
  auto fashion_model = etude::models::CreateModel(
      etude::models::ModelKind::kGru4Rec, fashion_config);
  const etude::sim::InferenceWork fashion_work =
      (*fashion_model)->CostModel(etude::models::ExecutionMode::kJit, 3);
  const double fashion_base_ms =
      etude::sim::SerialInferenceUs(cpu, fashion_work) / 1000.0;

  // Series identity is the structured (catalog, backend[, nprobe]) tuple —
  // an opaque "method" slug made it impossible to diff one knob across
  // runs or to tell backends apart once more sweeps joined the file.
  auto add_row = [&](const std::string& name, etude::bench::Params params,
                     double latency_us, double recall, double fraction) {
    etude::sim::InferenceWork scaled = fashion_work;
    scaled.scan_bytes *= fraction;
    scaled.scan_flops *= fraction;
    const double projected_ms =
        etude::sim::SerialInferenceUs(cpu, scaled) / 1000.0;
    table.AddRow({name, etude::FormatDouble(latency_us / 1000.0, 3),
                  etude::FormatDouble(recall, 3),
                  etude::FormatDouble(fraction, 3),
                  etude::FormatDouble(projected_ms, 1)});
    params.emplace_back("catalog", std::to_string(kCatalog));
    run.reporter().AddValue("latency_per_query_ms", "ms", params,
                            etude::bench::Direction::kLowerIsBetter,
                            latency_us / 1000.0);
    run.reporter().AddValue("recall_at_21", "fraction", params,
                            etude::bench::Direction::kHigherIsBetter,
                            recall);
    run.reporter().AddValue("projected_fashion_p90_ms", "ms", params,
                            etude::bench::Direction::kInfo, projected_ms);
  };

  // Exact fp32.
  {
    double latency = 0;
    for (const auto& query : queries) {
      latency += MeasureUs(
          [&] { etude::tensor::Mips(items, query, kTopK); }, 3);
    }
    add_row("exact fp32 (baseline)", {{"backend", "exact"}},
            latency / kQueries, 1.0, 1.0);
  }
  // Int8 quantised full scan: bytes drop ~4x.
  {
    double latency = 0, recall = 0;
    for (size_t q = 0; q < queries.size(); ++q) {
      const auto result = quantized.Mips(queries[q], kTopK);
      recall += etude::tensor::RecallAtK(exact[q], result);
      latency += MeasureUs(
          [&] { quantized.Mips(queries[q], kTopK); }, 3);
    }
    const double fraction =
        static_cast<double>(quantized.ScanBytes()) /
        (static_cast<double>(kCatalog) *
         static_cast<double>(items.dim(1)) * 4.0);
    add_row("int8 quantised scan", {{"backend", "int8"}},
            latency / kQueries, recall / kQueries, fraction);
  }
  // IVF with increasing probes.
  for (const int64_t nprobe : {1, 2, 4, 8, 16, 32}) {
    double latency = 0, recall = 0;
    for (size_t q = 0; q < queries.size(); ++q) {
      const auto result = ivf->Search(queries[q], kTopK, nprobe);
      recall += etude::tensor::RecallAtK(exact[q], result);
      latency += MeasureUs(
          [&] { ivf->Search(queries[q], kTopK, nprobe); }, 3);
    }
    add_row("IVF nlist=512 nprobe=" + std::to_string(nprobe),
            {{"backend", "ivf-flat"},
             {"nlist", "512"},
             {"nprobe", std::to_string(nprobe)}},
            latency / kQueries, recall / kQueries,
            ivf->ExpectedScanFraction(nprobe));
  }

  std::printf("%s", table.ToText().c_str());
  std::printf(
      "\nreference: exact Fashion CPU p90 from the cost model is %.1f ms "
      "(>50 ms SLO);\nscanning ~1/16 of the catalog would bring the CPU "
      "back under the paper's 50 ms budget\nat some recall cost — the "
      "trade-off the paper proposes to explore.\n"
      "notes: (i) the projection column assumes the bandwidth-bound "
      "regime of production\ncatalogs; at this measurement size the "
      "table is cache-resident, so the measured int8\nlatency shows the "
      "conversion overhead rather than the 4x traffic saving. (ii) these\n"
      "embeddings are randomly initialised and nearly isotropic — the "
      "worst case for IVF;\ntrained item embeddings cluster by "
      "category and reach far higher recall per probe.\n",
      fashion_base_ms);
  return run.Finish();
}
